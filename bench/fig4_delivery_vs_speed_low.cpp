// Figure 4: packet delivery vs maximum speed (0.1–1.0 m/s), range 75 m,
// 40 nodes. Expected: Gossip near-perfect (~100 % below 0.3 m/s per the
// paper), MAODV lower with wide error bars.
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Paper figure 4: delivery ratio vs maximum node speed (0.1-1 m/s).",
      "  max_speed_mps = {0.1..1.0}");
  const std::uint32_t seeds = harness::seeds_from_env(3);
  return bench::run_two_series_figure(
      argc, argv,
      "Figure 4: Packet Delivery vs Maximum Speed (low range: 0.1-1 m/s)",
      "speed(m/s)", "fig4.csv", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
      [](harness::ScenarioConfig& c, double x) {
        c.with_range(75.0).with_max_speed(x);
      },
      seeds, bench::paper_base(),
      bench::protocols_from_cli(argc, argv, bench::headline_protocols()));
}
