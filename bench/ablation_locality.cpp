// Ablation: does the nearest-member locality bias (paper section 4.2)
// matter? Runs AG with the gradient-weighted next-hop choice vs uniform
// random walks, comparing delivery and network load.
#include <cstdio>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  const std::uint32_t seeds = harness::seeds_from_env(2);
  const std::vector<harness::Protocol> protocols = bench::protocols_from_cli(
      argc, argv, {harness::Protocol::maodv_gossip});

  std::printf("== Ablation: nearest-member locality bias (section 4.2) ==\n");
  std::printf("%-8s %-10s | %10s %6s %6s | %9s | %s\n", "range", "walk bias", "avg",
              "min", "max", "goodput%", "tx/run");
  for (harness::Protocol protocol : protocols) {
    if (protocols.size() > 1) {
      std::printf("-- %s --\n",
                  harness::ProtocolRegistry::instance().name_of(protocol).c_str());
    }
    for (double range : {45.0, 55.0, 75.0}) {
      for (bool bias : {true, false}) {
        harness::ScenarioConfig c = bench::paper_base();
        c.with_range(range).with_max_speed(0.2);
        c.with_protocol(protocol);
        c.gossip.locality_bias = bias;
        harness::SeriesPoint p = harness::run_point(c, seeds, range);
        std::printf("%-8g %-10s | %10.1f %6.0f %6.0f | %9.2f | %llu\n", range,
                    bias ? "gradient" : "uniform", p.received.mean, p.received.min,
                    p.received.max, p.mean_goodput_pct,
                    static_cast<unsigned long long>(p.mean_transmissions));
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n");
  return 0;
}
