// Figure 3: packet delivery vs transmission range (45–85 m), 40 nodes,
// max speed 2 m/s. Same sweep as Fig. 2 at 10x the mobility: overall
// delivery drops, the Gossip-over-MAODV gap persists.
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Paper figure 3: delivery ratio vs transmission range at 2 m/s max speed.",
      "  range_m = {45..85} (transmission range, meters)");
  const std::uint32_t seeds = harness::seeds_from_env(3);
  return bench::run_two_series_figure(
      argc, argv,
      "Figure 3: Packet Delivery vs Transmission Range (speed 2 m/s)",
      "range(m)", "fig3.csv", {45, 50, 55, 60, 65, 70, 75, 80, 85},
      [](harness::ScenarioConfig& c, double x) {
        c.with_range(x).with_max_speed(2.0);
      },
      seeds, bench::paper_base(),
      bench::protocols_from_cli(argc, argv, bench::headline_protocols()));
}
