// Churn robustness: packet delivery vs membership churn rate while the
// network also suffers node crashes and one partition episode — the
// regimes where related work (Haas/Halpern/Li's gossip routing; the
// large-scale-topology gossip studies) predicts sharp reliability cliffs.
// Runs every registered protocol by default, so the paper's claim that
// Anonymous Gossip hardens *any* substrate is tested exactly where it
// matters. Delivery is accounted per live membership interval: a member
// is only charged for packets sourced while it was subscribed.
//
// Usage: figure_churn [--smoke] [--protocols=name,name] [--shards[=N]]
//                     [--resume] [--merge]
//   --smoke shrinks the run for CI (short duration, two churn points).
//   --shards runs through the crash-resumable sharded driver; CI uses it
//   with AG_SHARD_FAULT to prove recovery merges byte-identically.
#include <cstdio>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Robustness figure: delivery ratio vs membership churn rate, over a\n"
      "fault background (15% crashes, mid-run partition).",
      "  churn_per_min = {0..8} (member leave+rejoin cycles per minute)",
      "  --smoke           shrink the sweep for CI (short duration)\n");
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const std::uint32_t seeds = harness::seeds_from_env(smoke ? 1 : 2);

  // The fault background every churn point shares: 15 % of nodes crash
  // (wipe policy) and a mid-run partition cuts the area in half.
  harness::ScenarioConfig base = bench::paper_base();
  base.with_range(65.0).with_max_speed(1.0);
  base.faults.spec.crash_fraction = 0.15;
  base.faults.spec.crash_downtime_s = smoke ? 20.0 : 60.0;
  base.faults.spec.partition_duration_s = smoke ? 20.0 : 60.0;
  base.faults.spec.churn_downtime_s = smoke ? 15.0 : 30.0;
  if (smoke) {
    base.duration = sim::SimTime::seconds(120.0);
    base.workload.start = sim::SimTime::seconds(20.0);
    base.workload.end = sim::SimTime::seconds(100.0);
  }

  const std::vector<double> churn =
      smoke ? std::vector<double>{0, 4} : std::vector<double>{0, 0.5, 1, 2, 4};
  const std::vector<harness::Protocol> protocols = bench::protocols_from_cli(
      argc, argv, harness::ProtocolRegistry::instance().all());

  harness::ExperimentBuilder builder =
      harness::Experiment::sweep("churn_per_min", churn)
          .base(base)
          .protocols(protocols)
          .seeds(seeds)
          .parallel()
          .name("churn")
          .on_progress([](std::size_t done, std::size_t total) {
            std::printf("  [churn %zu/%zu runs]\n", done, total);
            std::fflush(stdout);
          });
  return bench::finish_figure(builder, bench::parse_shard_cli(argc, argv), argv[0],
                              "Delivery under churn + crashes + partition",
                              "churn/min", "churn.csv", "BENCH_churn.json", seeds);
}
