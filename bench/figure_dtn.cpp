// Custody-tier figure: "users served" under duty-cycled user sessions,
// swept over custody budget x duty cycle x churn. Every member node
// multiplexes 200 logical users (SessionManager), each subscribing at a
// staggered start and sleeping per its duty cycle; a delivery only
// counts for a user that is awake (or wakes within the wake TTL). The
// custody tier re-offers undeliverable payloads on contact, after
// reboots, and across the partition heal via gateway nodes, so the
// budget axis shows how much store-and-forward buys back from users the
// plain protocols miss. budget=0 is the custody-off baseline in-figure.
//
// Runs every registered protocol by default (custody is a decorator, so
// all five substrates get the tier for free). At full scale the paper's
// 40-node area is kept; --mega instead runs 10000 nodes with every node
// a member, i.e. 10000 x 200 = 2M logical users, as a scale exercise.
//
// Usage: figure_dtn [--smoke] [--mega] [--protocols=name,name]
//   --smoke shrinks the grid for CI (short duration, 2x1x2 grid).
//   --mega  10k nodes / 2M users, one cell (implies the smoke duration).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "figure_common.h"
#include "harness/atomic_io.h"

namespace {

// One (duty, churn, budget) grid cell: a single-value sweep across all
// protocols, timed like scale_smoke so BENCH_dtn.json doubles as a perf
// record for the custody tier.
struct CellReport {
  std::string label;
  double duty;
  double churn;
  double budget;
  std::size_t nodes;
  double wall_s;
  std::uint64_t sim_events;
  ag::harness::ExperimentResult result;  // one point per series
};

std::uint64_t total_sim_events(const ag::harness::ExperimentResult& result) {
  // Effective (engine-independent) count: events executed plus the work
  // the batched MAC/phy engines represented without an event, so the
  // emitted JSON is byte-identical across every AG_BATCHED_* mode.
  std::uint64_t events = 0;
  for (const ag::harness::FigureSeries& s : result.series) {
    for (const ag::harness::SeriesPoint& p : s.points) {
      for (const ag::stats::RunResult& r : p.runs) {
        events += r.totals.sim_events + r.totals.mac_events_elided() +
                  r.totals.phy_events_elided();
      }
    }
  }
  return events;
}

bool write_dtn_json(const std::string& path, const std::vector<CellReport>& cells,
                    std::uint32_t seeds, std::uint32_t sessions_per_node) {
  ag::harness::AtomicFile file{path};
  if (!file.ok()) return false;
  std::ostream& out = file.stream();
  out << "{\n";
  out << "  \"experiment\": \"dtn\",\n";
  out << "  \"param\": \"custody_max_msgs\",\n";
  out << "  \"seeds\": " << seeds << ",\n";
  out << "  \"sessions_per_node\": " << sessions_per_node << ",\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellReport& cell = cells[i];
    const double events_per_sec =
        cell.wall_s > 0.0 ? static_cast<double>(cell.sim_events) / cell.wall_s : 0.0;
    out << "    {\"label\": \"" << cell.label << "\", \"nodes\": " << cell.nodes
        << ", \"duty\": " << cell.duty << ", \"churn_per_min\": " << cell.churn
        << ", \"custody_max_msgs\": " << cell.budget
        << ", \"wall_clock_s\": " << cell.wall_s
        << ", \"sim_events\": " << cell.sim_events
        << ", \"events_per_sec\": " << events_per_sec << ", \"series\": [\n";
    for (std::size_t s = 0; s < cell.result.series.size(); ++s) {
      const ag::harness::FigureSeries& series = cell.result.series[s];
      const ag::harness::SeriesPoint& p = series.points.front();
      out << "      {\"name\": \"" << series.name << "\""
          << ", \"received_mean\": " << p.received.mean
          << ", \"delivery_ratio\": " << p.mean_delivery_ratio
          << ", \"transmissions\": " << p.mean_transmissions
          << ", \"sessions\": " << p.mean_sessions
          << ", \"users_served\": " << p.mean_users_served
          << ", \"user_eligible\": " << p.mean_user_eligible
          << ", \"users_served_ratio\": " << p.mean_users_ratio
          << ", \"custody_stored\": " << p.mean_custody_stored
          << ", \"custody_offers\": " << p.mean_custody_offers
          << ", \"custody_accepted\": " << p.mean_custody_accepted << "}"
          << (s + 1 < cell.result.series.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return file.commit();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Custody-tier figure: users served under duty-cycled sessions, swept\n"
      "over custody budget x duty cycle x churn (all registered protocols).",
      "  custody_max_msgs = {0,16,64,256} x session duty x churn_per_min",
      "  --smoke           2x1x2 grid, short duration (CI)\n"
      "  --mega            10k nodes / 2M logical users, one cell\n");
  harness::install_interrupt_handlers();
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  const bool mega = bench::has_flag(argc, argv, "--mega");
  const std::uint32_t seeds = harness::seeds_from_env(smoke || mega ? 1 : 2);
  const std::vector<harness::Protocol> protocols = bench::protocols_from_cli(
      argc, argv, harness::ProtocolRegistry::instance().all());
  constexpr std::uint32_t kSessionsPerNode = 200;

  // Fault background shared by every cell (the figure_churn recipe):
  // 15 % of nodes crash with state wipe and a mid-run partition cuts the
  // area in half — exactly the regimes custody is supposed to bridge.
  harness::ScenarioConfig base = bench::paper_base();
  base.with_range(65.0).with_max_speed(1.0);
  base.faults.spec.crash_fraction = 0.15;
  base.faults.spec.crash_downtime_s = smoke || mega ? 20.0 : 60.0;
  base.faults.spec.partition_duration_s = smoke || mega ? 20.0 : 60.0;
  base.faults.spec.churn_downtime_s = smoke || mega ? 15.0 : 30.0;
  if (smoke || mega) {
    base.duration = sim::SimTime::seconds(120.0);
    base.workload.start = sim::SimTime::seconds(20.0);
    base.workload.end = sim::SimTime::seconds(100.0);
  }
  // User sessions: 200 logical users per member node, 60 s activity
  // period, subscriptions staggered across the first half of the run.
  base.sessions.per_node = kSessionsPerNode;
  base.sessions.period_s = 60.0;
  base.sessions.wake_ttl_s = 30.0;
  base.sessions.subscribe_spread_s = smoke || mega ? 40.0 : 200.0;
  // Custody shape (the budget axis only sweeps max_messages): two
  // gateway nodes bridge the partition cut with 4x the per-node budget.
  base.custody.gateway_count = 2;
  if (mega) {
    // 10000 nodes, every node a member: 10000 x 200 = 2M logical users.
    // Range scales as in scale_smoke to hold mean degree constant.
    base.with_nodes(10000).with_range(75.0 * std::sqrt(40.0 / 10000.0));
    base.member_fraction = 1.0;
  }

  const std::vector<double> duties =
      smoke ? std::vector<double>{1.0, 0.25}
            : mega ? std::vector<double>{0.25}
                   : std::vector<double>{1.0, 0.5, 0.25};
  const std::vector<double> churns =
      smoke || mega ? std::vector<double>{4} : std::vector<double>{0, 4};
  const std::vector<double> budgets =
      smoke ? std::vector<double>{0, 64}
            : mega ? std::vector<double>{64} : std::vector<double>{0, 16, 64, 256};

  std::printf("== Custody tier x user sessions (%u users/node%s) ==\n",
              kSessionsPerNode, mega ? ", --mega: 2M users total" : "");

  std::vector<CellReport> cells;
  for (const double duty : duties) {
    for (const double churn : churns) {
      for (const double budget : budgets) {
        if (harness::interrupt_requested()) {
          std::fprintf(stderr, "%s: interrupted; no outputs written\n", argv[0]);
          return harness::interrupt_exit_code();
        }
        harness::ScenarioConfig cell_base = base;
        cell_base.sessions.duty = duty;
        cell_base.faults.spec.churn_per_min = churn;
        char label[96];
        std::snprintf(label, sizeof label, "duty=%.2f churn=%g budget=%g",
                      duty, churn, budget);
        std::printf("-- %s --\n", label);
        std::fflush(stdout);
        // ag-lint: allow(determinism, wall-clock measures the harness itself)
        const auto t0 = std::chrono::steady_clock::now();
        harness::ExperimentResult result =
            harness::Experiment::sweep("custody_max_msgs", {budget})
                .base(cell_base)
                .protocols(protocols)
                .seeds(seeds)
                .parallel()
                .name("dtn")
                .run();
        const double wall_s =
            // ag-lint: allow(determinism, wall-clock measures the harness itself)
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        for (const harness::FigureSeries& s : result.series) {
          const harness::SeriesPoint& p = s.points.front();
          std::printf("  %-16s delivery=%.2f users=%llu/%llu (%.2f) "
                      "custody stored=%llu offered=%llu accepted=%llu\n",
                      s.name.c_str(), p.mean_delivery_ratio,
                      static_cast<unsigned long long>(p.mean_users_served),
                      static_cast<unsigned long long>(p.mean_user_eligible),
                      p.mean_users_ratio,
                      static_cast<unsigned long long>(p.mean_custody_stored),
                      static_cast<unsigned long long>(p.mean_custody_offers),
                      static_cast<unsigned long long>(p.mean_custody_accepted));
        }
        std::fflush(stdout);
        const std::uint64_t events = total_sim_events(result);
        cells.push_back({label, duty, churn, budget, cell_base.node_count, wall_s,
                         events, std::move(result)});
      }
    }
  }

  if (harness::interrupt_requested()) {
    std::fprintf(stderr, "%s: interrupted; no outputs written\n", argv[0]);
    return harness::interrupt_exit_code();
  }
  if (!write_dtn_json("BENCH_dtn.json", cells, seeds, kSessionsPerNode)) {
    std::fprintf(stderr, "error: failed to write BENCH_dtn.json\n");
    return 1;
  }
  std::printf("(json written to BENCH_dtn.json; %u seeds; "
              "scripts/scale_summary.py renders it too)\n", seeds);
  return 0;
}
