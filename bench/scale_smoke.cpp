// Scaling smoke: pushes the simulator well past the paper's 40 nodes
// (ROADMAP: 500+ nodes need the phy spatial index — transmit() used to be
// O(n) per frame). Each node count is timed individually, so the bench
// reports wall-clock and simulator-event throughput per point alongside
// the delivery stats; everything lands in BENCH_scale.json so CI can
// accumulate a perf trajectory. Runs are kept short — this is a
// build-health and throughput check for large networks (default sweep
// now tops out at 2000 nodes on the dense data plane), not a paper
// figure; fig6/fig7 remain the measured node-count sweeps. Range scales
// as 75*sqrt(40/n) to hold mean degree roughly constant while the area
// stays 200x200 m, and the group stays at the paper's 13 members (1/3 of
// 40) so the bench measures simulator scale, not protocol collapse under
// ever-larger groups.
//
// Points up to 1000 nodes simulate the full 80 s (workload 20-60 s), so
// their numbers stay comparable across the perf trajectory. Beyond that
// the simulated duration shrinks to hold node-seconds constant at
// 1000 * 80 — a 5000-node point simulates 16 s — because a saturated
// medium generates events proportional to n * duration and huge points
// must still land inside a CI-sized wall-clock budget. The per-point
// duration is printed and recorded in BENCH_scale.json, and the
// workload window scales with it (25-75 % of the run), so every point
// states exactly what it measured.
//
// Usage: scale_smoke [--protocols=name,name] [--nodes=n,n,...]
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "figure_common.h"
#include "harness/atomic_io.h"
#include "mac/csma_mac.h"
#include "net/data_plane.h"
#include "phy/channel.h"
#include "sim/event_category.h"

namespace {

// Parses a `--nodes=250,500` flag anywhere in argv; returns `fallback`
// when absent. Bad values fail fast with exit(2) like --protocols=,
// naming the offending token and the expected form (same philosophy as
// sim::env_positive_u32: never silently run a different sweep than the
// one the user typed). Rejected outright: empty list, empty element
// ("250,,500"), trailing comma, zero/negative counts, non-numeric
// garbage, signs/whitespace inside a token, and overflow past the cap.
std::vector<std::size_t> nodes_from_cli(int argc, char** argv,
                                        std::vector<std::size_t> fallback) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--nodes=", 8) != 0) continue;
    const char* list = arg + 8;
    const auto fail = [&](const char* token) {
      const char* comma = std::strchr(token, ',');
      const int len = static_cast<int>(comma != nullptr
                                           ? comma - token
                                           : static_cast<std::ptrdiff_t>(
                                                 std::strlen(token)));
      std::fprintf(stderr,
                   "%s: bad --nodes= count \"%.*s\" in \"--nodes=%s\" — "
                   "expected --nodes=N[,N...] with each N an integer in "
                   "[2, 1000000]\n",
                   argv[0], len, token, list);
      std::exit(2);
    };
    if (*list == '\0') {
      std::fprintf(stderr,
                   "%s: --nodes= is empty — expected --nodes=N[,N...] with "
                   "each N an integer in [2, 1000000]\n",
                   argv[0]);
      std::exit(2);
    }
    std::vector<std::size_t> out;
    const char* p = list;
    while (true) {
      // strtol accepts leading whitespace and signs; the sweep grammar
      // does not — a token must start with a digit.
      if (*p < '0' || *p > '9') fail(p);
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(p, &end, 10);
      if (errno != 0 || end == p || v < 2 || v > 1'000'000 ||
          (*end != '\0' && *end != ',')) {
        fail(p);
      }
      out.push_back(static_cast<std::size_t>(v));
      if (*end == '\0') break;
      p = end + 1;  // past the comma; "250," leaves p on '\0' -> fail above
    }
    return out;
  }
  return fallback;
}

// Per-category scheduled/executed event counts plus the work the
// analytic engines elided (MAC slot/DIFS events, phy reception
// completions), summed over every run of a point.
struct EventMixTotals {
  std::uint64_t scheduled[ag::sim::kEventCategoryCount]{};
  std::uint64_t executed[ag::sim::kEventCategoryCount]{};
  std::uint64_t slots_elided{0};
  std::uint64_t difs_elided{0};
  std::uint64_t phy_rx_elided{0};
  std::uint64_t phy_rx_coalesced{0};
};

// Node-seconds ceiling: the full-length duration times the largest node
// count that still runs it (see the header comment).
constexpr double kFullDurationS = 80.0;
constexpr double kMaxNodeSeconds = 1000.0 * kFullDurationS;

struct PointReport {
  std::size_t nodes;
  double duration_s;
  double wall_s;
  std::uint64_t sim_events;
  EventMixTotals mix;
  ag::harness::ExperimentResult result;  // one sweep value, one point per series
};

std::uint64_t total_sim_events(const ag::harness::ExperimentResult& result) {
  std::uint64_t events = 0;
  for (const ag::harness::FigureSeries& s : result.series) {
    for (const ag::harness::SeriesPoint& p : s.points) {
      for (const ag::stats::RunResult& r : p.runs) events += r.totals.sim_events;
    }
  }
  return events;
}

EventMixTotals total_event_mix(const ag::harness::ExperimentResult& result) {
  EventMixTotals mix;
  for (const ag::harness::FigureSeries& s : result.series) {
    for (const ag::harness::SeriesPoint& p : s.points) {
      for (const ag::stats::RunResult& r : p.runs) {
        for (std::size_t c = 0; c < ag::sim::kEventCategoryCount; ++c) {
          mix.scheduled[c] += r.totals.ev_scheduled[c];
          mix.executed[c] += r.totals.ev_executed[c];
        }
        mix.slots_elided += r.totals.mac_slots_elided();
        mix.difs_elided += r.totals.mac_difs_elided;
        mix.phy_rx_elided += r.totals.phy_rx_elided;
        mix.phy_rx_coalesced += r.totals.phy_rx_coalesced;
      }
    }
  }
  return mix;
}

bool write_scale_json(const std::string& path, const std::vector<PointReport>& reports,
                      std::uint32_t seeds, bool index_on) {
  ag::harness::AtomicFile file{path};
  if (!file.ok()) return false;
  std::ostream& out = file.stream();
  out << "{\n";
  out << "  \"experiment\": \"scale_smoke\",\n";
  out << "  \"param\": \"node_count\",\n";
  out << "  \"seeds\": " << seeds << ",\n";
  out << "  \"spatial_index\": " << (index_on ? "true" : "false") << ",\n";
  out << "  \"dense_tables\": " << (ag::net::dense_tables_enabled() ? "true" : "false")
      << ",\n";
  out << "  \"batched_backoff\": "
      << (ag::mac::batched_backoff_enabled() ? "true" : "false") << ",\n";
  out << "  \"batched_phy\": "
      << (ag::phy::batched_phy_enabled() ? "true" : "false") << ",\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const PointReport& rep = reports[i];
    const double events_per_sec =
        rep.wall_s > 0.0 ? static_cast<double>(rep.sim_events) / rep.wall_s : 0.0;
    // Mode-comparable throughput: elided backoff slots, absorbed DIFS
    // waits, and reception completions the batched phy resolved without
    // an event all represent the same simulated work whether or not they
    // became events, so adding them back makes every engine combination
    // directly comparable (and the rates coincide when nothing is
    // elided).
    const std::uint64_t effective_events =
        rep.sim_events + rep.mix.slots_elided + rep.mix.difs_elided +
        rep.mix.phy_rx_elided + rep.mix.phy_rx_coalesced;
    const double effective_per_sec =
        rep.wall_s > 0.0 ? static_cast<double>(effective_events) / rep.wall_s : 0.0;
    out << "    {\"nodes\": " << rep.nodes << ", \"sim_duration_s\": " << rep.duration_s
        << ", \"wall_clock_s\": " << rep.wall_s
        << ", \"sim_events\": " << rep.sim_events
        << ", \"events_per_sec\": " << events_per_sec
        << ", \"mac_slots_elided\": " << rep.mix.slots_elided
        << ", \"mac_difs_elided\": " << rep.mix.difs_elided
        << ", \"phy_rx_elided\": " << rep.mix.phy_rx_elided
        << ", \"phy_rx_coalesced\": " << rep.mix.phy_rx_coalesced
        << ", \"effective_events\": " << effective_events
        << ", \"effective_events_per_sec\": " << effective_per_sec
        << ", \"event_mix\": {";
    for (std::size_t c = 0; c < ag::sim::kEventCategoryCount; ++c) {
      out << (c > 0 ? ", " : "") << "\"" << ag::sim::event_category_name(c)
          << "\": {\"scheduled\": " << rep.mix.scheduled[c]
          << ", \"executed\": " << rep.mix.executed[c] << "}";
    }
    out << "}, \"series\": [\n";
    for (std::size_t s = 0; s < rep.result.series.size(); ++s) {
      const ag::harness::FigureSeries& series = rep.result.series[s];
      const ag::harness::SeriesPoint& p = series.points.front();
      out << "      {\"name\": \"" << series.name << "\""
          << ", \"received_mean\": " << p.received.mean
          << ", \"delivery_ratio\": " << p.mean_delivery_ratio
          << ", \"transmissions\": " << p.mean_transmissions
          << ", \"deliveries\": " << p.mean_deliveries
          << ", \"suppressed_down\": " << p.mean_suppressed_down
          << ", \"suppressed_partition\": " << p.mean_suppressed_partition
          << ", \"table_probes\": " << p.mean_table_probes
          << ", \"pool_hits\": " << p.mean_pool_hits
          << ", \"pool_misses\": " << p.mean_pool_misses << "}"
          << (s + 1 < rep.result.series.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return file.commit();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ag;
  harness::install_interrupt_handlers();
  const std::uint32_t seeds = harness::seeds_from_env(1);
  const std::vector<harness::Protocol> protocols =
      bench::protocols_from_cli(argc, argv, bench::headline_protocols());
  const std::vector<std::size_t> node_counts =
      nodes_from_cli(argc, argv, {40, 120, 250, 500, 1000, 2000});

  harness::ScenarioConfig base = bench::paper_base();
  const bool index_on = base.phy.use_spatial_index && !phy::spatial_index_env_off();

  std::printf("== Scaling smoke (constant mean degree, short run; spatial index %s, "
              "batched backoff %s, batched phy %s) ==\n",
              index_on ? "on" : "OFF", mac::batched_backoff_enabled() ? "on" : "OFF",
              phy::batched_phy_enabled() ? "on" : "OFF");
  std::printf("%-8s %-7s %-10s %-12s %-12s per-protocol received avg (delivery)\n",
              "#nodes", "sim(s)", "wall(s)", "sim events", "events/s");

  std::vector<PointReport> reports;
  for (const std::size_t n : node_counts) {
    if (harness::interrupt_requested()) {
      std::fprintf(stderr, "%s: interrupted; no outputs written\n", argv[0]);
      return harness::interrupt_exit_code();
    }
    // Node-seconds cap: full 80 s through 1000 nodes, shrinking beyond
    // (see the header comment). Workload occupies the middle half.
    const double duration_s =
        std::min(kFullDurationS, kMaxNodeSeconds / static_cast<double>(n));
    harness::ScenarioConfig point_base = base;
    point_base.duration = sim::SimTime::seconds(duration_s);
    point_base.workload.start = sim::SimTime::seconds(0.25 * duration_s);
    point_base.workload.end = sim::SimTime::seconds(0.75 * duration_s);
    // ag-lint: allow(determinism, wall-clock measures the harness itself)
    const auto t0 = std::chrono::steady_clock::now();
    harness::ExperimentResult result =
        harness::Experiment::sweep("node_count", {static_cast<double>(n)},
                                   [](harness::ScenarioConfig& c, double x) {
                                     c.with_nodes(static_cast<std::size_t>(x))
                                         .with_range(75.0 * std::sqrt(40.0 / x))
                                         .with_max_speed(1.0);
                                     c.member_fraction = std::min(1.0, 13.0 / x);
                                   })
            .base(point_base)
            .protocols(protocols)
            .seeds(seeds)
            .parallel()
            .name("scale_smoke")
            .run();
    const double wall_s =
        // ag-lint: allow(determinism, wall-clock measures the harness itself)
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const std::uint64_t events = total_sim_events(result);
    EventMixTotals mix = total_event_mix(result);

    std::printf("%-8zu %-7.0f %-10.2f %-12llu %-12.3g",
                n, duration_s, wall_s, static_cast<unsigned long long>(events),
                wall_s > 0.0 ? static_cast<double>(events) / wall_s : 0.0);
    for (const harness::FigureSeries& s : result.series) {
      const harness::SeriesPoint& p = s.points.front();
      std::printf("  %s=%.1f (%.2f)", s.name.c_str(), p.received.mean,
                  p.mean_delivery_ratio);
    }
    std::printf("\n");
    std::fflush(stdout);
    reports.push_back({n, duration_s, wall_s, events, mix, std::move(result)});
  }

  if (harness::interrupt_requested()) {
    std::fprintf(stderr, "%s: interrupted; no outputs written\n", argv[0]);
    return harness::interrupt_exit_code();
  }
  if (!write_scale_json("BENCH_scale.json", reports, seeds, index_on)) {
    std::fprintf(stderr, "error: failed to write BENCH_scale.json\n");
    return 1;
  }
  std::printf("(json written to BENCH_scale.json; %u seeds; wall-clock covers "
              "all parallel jobs of a point)\n", seeds);
  return 0;
}
