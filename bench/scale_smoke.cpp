// Scaling smoke: exercises the parallel ExperimentBuilder on topologies
// up to 3x the paper's 40 nodes (ROADMAP open item). The run is kept
// short — this is a build-health and throughput check for larger
// networks, not a paper figure; fig6/fig7 remain the measured node-count
// sweeps. Range scales as 75*sqrt(40/n) to hold mean degree roughly
// constant while the area stays 200x200 m.
//
// Usage: scale_smoke [--protocols=name,name]
#include <cmath>
#include <cstdio>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  const std::uint32_t seeds = harness::seeds_from_env(1);

  harness::ScenarioConfig base = bench::paper_base();
  base.duration = sim::SimTime::seconds(80.0);
  base.workload.start = sim::SimTime::seconds(20.0);
  base.workload.end = sim::SimTime::seconds(60.0);

  harness::ExperimentResult result =
      harness::Experiment::sweep("node_count", {40, 80, 120},
                                 [](harness::ScenarioConfig& c, double x) {
                                   const double n = x;
                                   c.with_nodes(static_cast<std::size_t>(n))
                                       .with_range(75.0 * std::sqrt(40.0 / n))
                                       .with_max_speed(1.0);
                                 })
          .base(base)
          .protocols(bench::protocols_from_cli(argc, argv, bench::headline_protocols()))
          .seeds(seeds)
          .parallel()
          .name("scale_smoke")
          .run();

  result.print("Scaling smoke (constant mean degree, short run)", "#nodes");
  if (!result.write_json("BENCH_scale_smoke.json")) {
    std::fprintf(stderr, "error: failed to write BENCH_scale_smoke.json\n");
    return 1;
  }
  std::printf("(json written to BENCH_scale_smoke.json; %u seeds)\n", seeds);
  return 0;
}
