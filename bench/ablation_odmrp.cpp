// Extension bench (paper section 5.5: "Implementing anonymous gossip with
// other multicast protocols, such as ODMRP ... could also be done in a
// similar manner"): Anonymous Gossip layered over the ODMRP mesh vs over
// the MAODV tree, against both bare protocols.
#include <cstdio>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  const std::uint32_t seeds = harness::seeds_from_env(2);
  const std::vector<harness::Protocol> protocols = bench::protocols_from_cli(
      argc, argv, {harness::Protocol::maodv, harness::Protocol::maodv_gossip,
                   harness::Protocol::odmrp, harness::Protocol::odmrp_gossip});

  std::printf("== Extension: Anonymous Gossip over ODMRP (section 5.5) ==\n");
  std::printf("%-14s | %10s %6s %6s | %9s | %s\n", "protocol", "avg", "min", "max",
              "goodput%", "tx/run");
  for (harness::Protocol protocol : protocols) {
    harness::ScenarioConfig c = bench::paper_base();
    c.with_range(55.0).with_max_speed(1.0);  // mobile enough to break paths
    c.with_protocol(protocol);
    harness::SeriesPoint pt = harness::run_point(c, seeds, 0.0);
    std::printf("%-14s | %10.1f %6.0f %6.0f | %9.2f | %llu\n",
                harness::ProtocolRegistry::instance().name_of(protocol).c_str(),
                pt.received.mean, pt.received.min, pt.received.max,
                pt.mean_goodput_pct,
                static_cast<unsigned long long>(pt.mean_transmissions));
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
