// Ablation: anonymous vs cached gossip mix (paper section 4.3). p_anon=1
// is pure tree random walks; p_anon=0 relies entirely on the member cache
// (which itself is fed by walks' replies, join RREPs and data).
#include <cstdio>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  const std::uint32_t seeds = harness::seeds_from_env(2);
  const std::vector<harness::Protocol> protocols = bench::protocols_from_cli(
      argc, argv, {harness::Protocol::maodv_gossip});

  std::printf("== Ablation: p_anon (anonymous vs cached gossip mix) ==\n");
  std::printf("%-14s %-8s | %10s %6s %6s | %9s | %s\n", "protocol", "p_anon", "avg",
              "min", "max", "goodput%", "tx/run");
  for (harness::Protocol protocol : protocols) {
    const std::string& pname = harness::ProtocolRegistry::instance().name_of(protocol);
    for (double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      harness::ScenarioConfig c = bench::paper_base();
      c.with_range(55.0).with_max_speed(0.2);  // lossy enough to need recovery
      c.with_protocol(protocol);
      c.gossip.p_anon = p;
      harness::SeriesPoint pt = harness::run_point(c, seeds, p);
      std::printf("%-14s %-8g | %10.1f %6.0f %6.0f | %9.2f | %llu\n", pname.c_str(),
                  p, pt.received.mean, pt.received.min, pt.received.max,
                  pt.mean_goodput_pct,
                  static_cast<unsigned long long>(pt.mean_transmissions));
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  return 0;
}
