// Figure 2: packet delivery vs transmission range (45–85 m), 40 nodes,
// max speed 0.2 m/s. Expected shape: both protocols improve with range;
// Gossip dominates MAODV with far tighter min–max spread.
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Paper figure 2: delivery ratio vs transmission range at 0.2 m/s max speed.",
      "  range_m = {45..85} (transmission range, meters)");
  const std::uint32_t seeds = harness::seeds_from_env(3);
  return bench::run_two_series_figure(
      argc, argv,
      "Figure 2: Packet Delivery vs Transmission Range (speed 0.2 m/s)",
      "range(m)", "fig2.csv", {45, 50, 55, 60, 65, 70, 75, 80, 85},
      [](harness::ScenarioConfig& c, double x) {
        c.with_range(x).with_max_speed(0.2);
      },
      seeds, bench::paper_base(),
      bench::protocols_from_cli(argc, argv, bench::headline_protocols()));
}
