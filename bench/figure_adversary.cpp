// Adversary figure: graceful degradation and trust-based recovery. Sweeps
// adversary_fraction x adversary_mode x (isolation off/on) over the core
// protocols plus flooding_gossip ("gossip over flood", the substrate the
// trust watchdog is sharpest on), fault-free otherwise so the axis is
// isolated: every delivery delta against the fraction=0 column is the
// adversaries' (or the trust layer's) doing.
//
// Each cell is a single-value sweep timed like figure_dtn, so
// BENCH_adversary.json doubles as a perf record; per-series adversary
// counters (absorbed, poisoned, isolations, false positives, detection
// latency) land next to the delivery numbers.
//
// Usage: figure_adversary [--smoke] [--protocols=name,name]
//   --smoke shrinks the grid for CI: 2 modes x {0, 0.2, 0.35} x both
//   isolation settings over {flooding_gossip, maodv_gossip}, 120 s runs.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "figure_common.h"
#include "harness/atomic_io.h"

namespace {

struct CellReport {
  std::string label;
  std::string mode;
  bool isolation;
  double fraction;
  std::size_t nodes;
  double wall_s;
  std::uint64_t sim_events;
  ag::harness::ExperimentResult result;  // one point per series
};

std::uint64_t total_sim_events(const ag::harness::ExperimentResult& result) {
  // Effective (engine-independent) count: events executed plus the work
  // the batched MAC/phy engines represented without an event, so the
  // emitted JSON is byte-identical across every AG_BATCHED_* mode.
  std::uint64_t events = 0;
  for (const ag::harness::FigureSeries& s : result.series) {
    for (const ag::harness::SeriesPoint& p : s.points) {
      for (const ag::stats::RunResult& r : p.runs) {
        events += r.totals.sim_events + r.totals.mac_events_elided() +
                  r.totals.phy_events_elided();
      }
    }
  }
  return events;
}

bool write_adversary_json(const std::string& path,
                          const std::vector<CellReport>& cells,
                          std::uint32_t seeds) {
  ag::harness::AtomicFile file{path};
  if (!file.ok()) return false;
  std::ostream& out = file.stream();
  out << "{\n";
  out << "  \"experiment\": \"adversary\",\n";
  out << "  \"param\": \"adversary_fraction\",\n";
  out << "  \"seeds\": " << seeds << ",\n";
  out << "  \"points\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellReport& cell = cells[i];
    const double events_per_sec =
        cell.wall_s > 0.0 ? static_cast<double>(cell.sim_events) / cell.wall_s : 0.0;
    out << "    {\"label\": \"" << cell.label << "\", \"nodes\": " << cell.nodes
        << ", \"mode\": \"" << cell.mode << "\""
        << ", \"isolation\": " << (cell.isolation ? "true" : "false")
        << ", \"adversary_fraction\": " << cell.fraction
        << ", \"wall_clock_s\": " << cell.wall_s
        << ", \"sim_events\": " << cell.sim_events
        << ", \"events_per_sec\": " << events_per_sec << ", \"series\": [\n";
    for (std::size_t s = 0; s < cell.result.series.size(); ++s) {
      const ag::harness::FigureSeries& series = cell.result.series[s];
      const ag::harness::SeriesPoint& p = series.points.front();
      out << "      {\"name\": \"" << series.name << "\""
          << ", \"received_mean\": " << p.received.mean
          << ", \"delivery_ratio\": " << p.mean_delivery_ratio
          << ", \"transmissions\": " << p.mean_transmissions
          << ", \"adversary_nodes\": " << p.mean_adversary_nodes
          << ", \"adversary_absorbed\": " << p.mean_adversary_absorbed
          << ", \"adversary_poisoned\": " << p.mean_adversary_poisoned
          << ", \"trust_isolations\": " << p.mean_trust_isolations
          << ", \"trust_false_positives\": " << p.mean_trust_false_positives
          << ", \"trust_filtered\": " << p.mean_trust_filtered
          << ", \"detection_latency_s\": " << p.mean_detection_latency_s << "}"
          << (s + 1 < cell.result.series.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return file.commit();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Adversary figure: delivery degradation vs adversary_fraction per\n"
      "adversary mode, with and without trust-based isolation.",
      "  adversary_fraction x mode {blackhole, selective_forward,\n"
      "  gossip_poison} x isolation {off, on}",
      "  --smoke           2 modes x 3 fractions, 120 s runs (CI)\n");
  harness::install_interrupt_handlers();
  const bool smoke = bench::has_flag(argc, argv, "--smoke");
  // Two seeds even in smoke: the recovery margins this figure exists to
  // show are a handful of packets per run, and one seed of a 120 s
  // scenario is inside that noise band.
  const std::uint32_t seeds = harness::seeds_from_env(2);

  // Default protocol set: the five core substrates plus gossip-over-flood
  // (non-core, so it rides only here unless asked for by name elsewhere).
  std::vector<harness::Protocol> protocols =
      harness::ProtocolRegistry::instance().all();
  protocols.push_back(harness::Protocol::flooding_gossip);
  protocols = bench::protocols_from_cli(
      argc, argv,
      smoke ? std::vector<harness::Protocol>{harness::Protocol::flooding_gossip,
                                             harness::Protocol::maodv_gossip}
            : protocols);

  // Sparser than the paper midpoint on purpose: at range 65 the flood is
  // so redundant that even 35% blackholes cost nothing, and around range
  // 50 absorbing relays can *help* delivery by relieving MAC contention.
  // Range 42 puts the flood coverage-dominated: every absorbed relay is a
  // real coverage hole, so degradation is monotone in the adversary
  // fraction and the isolation layer's recovery is visible, not masked.
  harness::ScenarioConfig base = bench::paper_base();
  base.with_range(42.0).with_max_speed(1.0);
  if (smoke) {
    base.duration = sim::SimTime::seconds(120.0);
    base.workload.start = sim::SimTime::seconds(20.0);
    base.workload.end = sim::SimTime::seconds(100.0);
  }

  struct Mode {
    faults::AdversaryMode mode;
    const char* name;
  };
  // Smoke keeps the two modes the trust layer can actually fight:
  // selective_forward (watchdog-detectable — a pure blackhole goes
  // RF-silent on flooding and is invisible to overhearing) and
  // gossip_poison (junk-reply-detectable). The full grid adds blackhole
  // as the undetectable-limit column.
  const std::vector<Mode> modes =
      smoke ? std::vector<Mode>{{faults::AdversaryMode::selective_forward,
                                 "selective_forward"},
                                {faults::AdversaryMode::gossip_poison,
                                 "gossip_poison"}}
            : std::vector<Mode>{{faults::AdversaryMode::blackhole, "blackhole"},
                                {faults::AdversaryMode::selective_forward,
                                 "selective_forward"},
                                {faults::AdversaryMode::gossip_poison,
                                 "gossip_poison"}};
  const std::vector<double> fractions =
      smoke ? std::vector<double>{0.0, 0.2, 0.35}
            : std::vector<double>{0.0, 0.1, 0.2, 0.3};

  std::printf("== Adversary axis x trust isolation ==\n");

  std::vector<CellReport> cells;
  for (const Mode& mode : modes) {
    for (const bool isolation : {false, true}) {
      for (const double fraction : fractions) {
        if (harness::interrupt_requested()) {
          std::fprintf(stderr, "%s: interrupted; no outputs written\n", argv[0]);
          return harness::interrupt_exit_code();
        }
        harness::ScenarioConfig cell_base = base;
        cell_base.faults.spec.adversary_mode = mode.mode;
        cell_base.trust.enabled = isolation;
        // Arm the detector matched to the threat under test, the way an
        // operator hardens against a known attack class: the forwarding
        // watchdog for drop attacks (the only detector that can see a
        // selective forwarder), the always-on junk-reply scorer alone for
        // poisoning (where the watchdog could only add noise). The
        // watchdog ships with an inherent false-positive rate — the
        // fraction=0 column with isolation on prices exactly that cost.
        cell_base.trust.watchdog =
            isolation && mode.mode != faults::AdversaryMode::gossip_poison;
        // Watchdog operating point for this sparse regime: at degree ~5
        // honest capture ratios sit lower than in the dense unit-test
        // topologies the TrustParams defaults are tuned for, so the floor
        // drops and the evidence bar rises (fewer, better-founded
        // isolations — the probe grid showed 0.25/40 doubles the FP count
        // here for no extra recovery).
        cell_base.trust.forward_ratio_floor = 0.2;
        cell_base.trust.min_expected = 60.0;
        char label[96];
        std::snprintf(label, sizeof label, "mode=%s isolation=%s fraction=%g",
                      mode.name, isolation ? "on" : "off", fraction);
        std::printf("-- %s --\n", label);
        std::fflush(stdout);
        // ag-lint: allow(determinism, wall-clock measures the harness itself)
        const auto t0 = std::chrono::steady_clock::now();
        harness::ExperimentResult result =
            harness::Experiment::sweep("adversary_fraction", {fraction})
                .base(cell_base)
                .protocols(protocols)
                .seeds(seeds)
                .parallel()
                .name("adversary")
                .run();
        const double wall_s =
            // ag-lint: allow(determinism, wall-clock measures the harness itself)
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
        for (const harness::FigureSeries& s : result.series) {
          const harness::SeriesPoint& p = s.points.front();
          std::printf("  %-16s delivery=%.3f adversaries=%llu absorbed=%llu "
                      "poisoned=%llu isolated=%.1f fp=%.1f latency=%.1fs\n",
                      s.name.c_str(), p.mean_delivery_ratio,
                      static_cast<unsigned long long>(p.mean_adversary_nodes),
                      static_cast<unsigned long long>(p.mean_adversary_absorbed),
                      static_cast<unsigned long long>(p.mean_adversary_poisoned),
                      p.mean_trust_isolations, p.mean_trust_false_positives,
                      p.mean_detection_latency_s);
        }
        std::fflush(stdout);
        const std::uint64_t events = total_sim_events(result);
        cells.push_back({label, mode.name, isolation, fraction,
                         cell_base.node_count, wall_s, events, std::move(result)});
      }
    }
  }

  if (harness::interrupt_requested()) {
    std::fprintf(stderr, "%s: interrupted; no outputs written\n", argv[0]);
    return harness::interrupt_exit_code();
  }
  if (!write_adversary_json("BENCH_adversary.json", cells, seeds)) {
    std::fprintf(stderr, "error: failed to write BENCH_adversary.json\n");
    return 1;
  }
  std::printf("(json written to BENCH_adversary.json; %u seeds; "
              "scripts/scale_summary.py renders it too)\n", seeds);
  return 0;
}
