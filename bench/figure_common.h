// Shared plumbing for the per-figure reproduction benches: the paper's
// base configuration (section 5.1) and the sweep helper producing the
// Gossip-vs-MAODV series every figure plots, built on the fluent
// ExperimentBuilder (seeds run in parallel; results land as a table, a
// CSV, and a machine-readable BENCH_<fig>.json).
//
// Every ExperimentBuilder-based bench also speaks the sharded-driver CLI
// (see harness/shard_driver.h): `--shards[=N]` supervises one worker
// subprocess per (protocol, x, seed) cell with checkpoints, timeouts and
// retries; `--resume` reuses checkpoints from a crashed/killed run;
// `--shard=<i>` is the internal worker mode the supervisor re-invokes the
// binary with. A fully-completed sharded run merges byte-identically to
// the serial one.
#ifndef AG_BENCH_FIGURE_COMMON_H
#define AG_BENCH_FIGURE_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment_builder.h"
#include "harness/figure.h"
#include "harness/interrupt.h"
#include "harness/protocol_registry.h"
#include "harness/scenario.h"
#include "harness/shard.h"
#include "harness/shard_driver.h"

namespace ag::bench {

// The paper's headline comparison pair.
inline std::vector<harness::Protocol> headline_protocols() {
  return {harness::Protocol::maodv_gossip, harness::Protocol::maodv};
}

// Parses a `--protocols=name,name` flag (registry string names, see
// `quickstart` for the list) anywhere in argv; returns `fallback` when
// absent. Validation lives in ProtocolRegistry::parse_list (unit-tested):
// an unknown name or an empty list fails fast with exit(2) and the
// registry's message naming every registered protocol.
inline std::vector<harness::Protocol> protocols_from_cli(
    int argc, char** argv, std::vector<harness::Protocol> fallback) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--protocols=", 12) != 0) continue;
    try {
      return harness::ProtocolRegistry::instance().parse_list(arg + 12);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      std::exit(2);
    }
  }
  return fallback;
}

// True when `flag` (e.g. "--smoke") appears in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Shared --help/-h implementation for every figure bench: one place lists
// the common flags and environment knobs, each binary passes its one-line
// description, its swept axes, and any bench-specific flags. Prints and
// exits 0 when the flag is present; returns otherwise.
inline void handle_help_flag(int argc, char** argv, const char* description,
                             const char* axes, const char* extra_flags = nullptr) {
  if (!has_flag(argc, argv, "--help") && !has_flag(argc, argv, "-h")) return;
  std::printf("usage: %s [flags]\n\n%s\n\nSwept axes:\n%s\n\nFlags:\n", argv[0],
              description, axes);
  if (extra_flags != nullptr) std::printf("%s", extra_flags);
  std::printf(
      "  --protocols=a,b   protocol series to run (registry names; see error\n"
      "                    message of an unknown name for the full list)\n"
      "  --shards[=N]      sharded run: one worker subprocess per\n"
      "                    (protocol, x, seed) cell, N concurrent (default\n"
      "                    AG_SHARDS, else hardware threads), with per-shard\n"
      "                    checkpoints, timeouts, and retry with backoff\n"
      "  --resume          sharded run reusing checkpoints left by an\n"
      "                    earlier crashed/killed invocation\n"
      "  --merge           merge existing checkpoints only; never launches\n"
      "                    workers (missing cells land in failed_shards)\n"
      "  --shard-dir=<d>   checkpoint directory (default shards_<name>/)\n"
      "  --help, -h        this text\n"
      "\nEnvironment knobs (all runs are bit-identical across the engine\n"
      "hatches; see README \"Environment knobs\"):\n"
      "  AG_SEEDS=<n>            seeds per point (overrides the default)\n"
      "  AG_SPATIAL_INDEX=off    brute-force phy neighbor scan\n"
      "  AG_DENSE_TABLES=off     ordered-map table backends\n"
      "  AG_BATCHED_BACKOFF=off  per-slot MAC contention reference engine\n"
      "  AG_CUSTODY=off          force the DTN custody tier off\n"
      "  AG_ADVERSARY=off        force the adversary/trust axis off\n"
      "  AG_SHARDS=<n>           concurrent shard workers for --shards\n"
      "  AG_SHARD_TIMEOUT=<s>    per-shard wall-clock kill timeout (600)\n"
      "  AG_SHARD_RETRIES=<n>    attempts per shard before failing it (3)\n"
      "  AG_SHARD_BACKOFF_MS=<n> retry backoff base, doubled per retry (250)\n"
      "  AG_SHARD_FAULT=m@i[xT]  inject crash|hang|corrupt at shard i on\n"
      "                          attempts 1..T (self-test hook)\n");
  std::exit(0);
}

// Shard-control flags shared by every ExperimentBuilder bench. Everything
// not recognized here is forwarded verbatim to worker subprocesses so
// they rebuild the identical sweep (--smoke, --protocols=..., ...).
struct ShardCli {
  bool worker{false};           // --shard=<i>: run one cell, write checkpoint
  std::size_t shard_index{0};
  std::uint32_t shard_attempt{1};
  bool supervise{false};        // --shards[=N] / --resume / --merge
  unsigned concurrency{0};      // explicit N from --shards=N (0 = env/default)
  bool resume{false};
  bool merge_only{false};
  std::string shard_dir;        // --shard-dir= (empty = shards_<name>/)
  std::vector<std::string> forwarded;  // bench args minus shard-control flags
};

inline ShardCli parse_shard_cli(int argc, char** argv) {
  ShardCli cli;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--shard=", 8) == 0) {
      cli.worker = true;
      cli.shard_index = static_cast<std::size_t>(std::strtoull(arg + 8, nullptr, 10));
    } else if (std::strncmp(arg, "--shard-attempt=", 16) == 0) {
      const unsigned long v = std::strtoul(arg + 16, nullptr, 10);
      cli.shard_attempt = v > 0 ? static_cast<std::uint32_t>(v) : 1u;
    } else if (std::strncmp(arg, "--shard-dir=", 12) == 0) {
      cli.shard_dir = arg + 12;
    } else if (std::strcmp(arg, "--shards") == 0) {
      cli.supervise = true;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      cli.supervise = true;
      cli.concurrency = static_cast<unsigned>(std::strtoul(arg + 9, nullptr, 10));
    } else if (std::strcmp(arg, "--resume") == 0) {
      cli.supervise = true;
      cli.resume = true;
    } else if (std::strcmp(arg, "--merge") == 0) {
      cli.supervise = true;
      cli.merge_only = true;
    } else {
      cli.forwarded.emplace_back(arg);
    }
  }
  return cli;
}

// Shared tail for every ExperimentBuilder bench: dispatches on the shard
// CLI (worker cell / sharded supervisor / plain in-process run), prints
// the table, and writes the CSV + BENCH JSON atomically. Returns the
// process exit code; on SIGINT/SIGTERM no merged outputs are written and
// the code is 128+signo (shard checkpoints are kept for --resume).
inline int finish_figure(const harness::ExperimentBuilder& builder,
                         const ShardCli& cli, const char* exe,
                         const std::string& title, const std::string& x_label,
                         const std::string& csv_name, const std::string& json_name,
                         std::uint32_t seeds) {
  harness::install_interrupt_handlers();

  if (cli.worker) {
    if (cli.shard_index >= builder.cell_count()) {
      std::fprintf(stderr, "%s: --shard=%zu out of range (%zu cells)\n", exe,
                   cli.shard_index, builder.cell_count());
      return 2;
    }
    const std::string dir = cli.shard_dir.empty()
                                ? "shards_" + builder.experiment_name()
                                : cli.shard_dir;
    const std::string path = dir + "/" + harness::shard_file_name(cli.shard_index);
    harness::maybe_inject_shard_fault(harness::shard_fault_from_env(),
                                      cli.shard_index, cli.shard_attempt, path);
    const stats::RunResult result = builder.run_cell(cli.shard_index);
    if (harness::interrupt_requested()) return harness::interrupt_exit_code();
    if (!harness::write_shard_json(path, builder.experiment_name(), cli.shard_index,
                                   builder.cell_id(cli.shard_index), result)) {
      std::fprintf(stderr, "%s: failed to write %s\n", exe, path.c_str());
      return 1;
    }
    return 0;
  }

  harness::ExperimentResult result;
  if (cli.supervise) {
    harness::ShardDriverOptions opts;
    opts.exe = exe;
    opts.worker_args = cli.forwarded;
    opts.shard_dir = cli.shard_dir;
    opts.concurrency = cli.concurrency;
    opts.resume = cli.resume;
    opts.merge_only = cli.merge_only;
    harness::ShardRunReport report;
    try {
      report = harness::run_shards(builder, opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", exe, e.what());
      return 1;
    }
    if (report.interrupted) {
      std::fprintf(stderr,
                   "%s: interrupted; checkpoints kept, rerun with --resume\n", exe);
      return harness::interrupt_exit_code();
    }
    result = builder.assemble(std::move(report.results), std::move(report.sharding));
  } else {
    result = builder.run();
    if (harness::interrupt_requested()) {
      std::fprintf(stderr, "%s: interrupted; no outputs written\n", exe);
      return harness::interrupt_exit_code();
    }
  }

  result.print(title, x_label);
  for (const harness::FailedShard& f : result.sharding.failed) {
    std::fprintf(stderr,
                 "warning: shard %zu (%s, %s=%g, seed %u) failed after %u "
                 "attempt%s: %s — its seed is missing from the aggregate\n",
                 f.shard, f.cell.protocol.c_str(), result.param.c_str(), f.cell.x,
                 f.cell.seed, f.attempts, f.attempts == 1 ? "" : "s",
                 f.reason.c_str());
  }
  const bool csv_ok = result.write_csv(csv_name);
  const bool json_ok = result.write_json(json_name);
  if (!csv_ok || !json_ok) {
    std::fprintf(stderr, "error: failed to write %s\n",
                 (!csv_ok ? csv_name : json_name).c_str());
    return 1;
  }
  std::printf("(csv written to %s, json to %s; %u seeds — set AG_SEEDS to "
              "change)\n\n",
              csv_name.c_str(), json_name.c_str(), seeds);
  return 0;
}

// Paper section 5.1 defaults: 200x200 m, 40 nodes, 1/3 members, 600 s,
// 2201 packets from t=120 s, gossip 1 msg/s. Range/speed set per figure.
inline harness::ScenarioConfig paper_base() {
  harness::ScenarioConfig c;
  return c;
}

// Strips a trailing extension: "fig2.csv" -> "fig2".
inline std::string stem_of(const std::string& file_name) {
  const std::size_t dot = file_name.rfind('.');
  return dot == std::string::npos ? file_name : file_name.substr(0, dot);
}

// Runs one x-sweep over `protocols` (default: the headline pair; benches
// pass protocols_from_cli so `--protocols=` selects any registered set)
// and emits the figure as a table, a CSV, and BENCH_<stem>.json. `apply`
// mutates the config for a given x value. argc/argv select the run mode
// (serial, `--shards`, `--resume`, worker `--shard=`); the return value
// is the process exit code.
inline int run_two_series_figure(
    int argc, char** argv, const std::string& title, const std::string& x_label,
    const std::string& csv_name, const std::vector<double>& xs,
    const std::function<void(harness::ScenarioConfig&, double)>& apply,
    std::uint32_t seeds, harness::ScenarioConfig base = paper_base(),
    std::vector<harness::Protocol> protocols = headline_protocols()) {
  const std::string stem = stem_of(csv_name);
  const std::string json_name = "BENCH_" + stem + ".json";
  harness::ExperimentBuilder builder =
      harness::Experiment::sweep(x_label, xs, apply)
          .base(base)
          .protocols(std::move(protocols))
          .seeds(seeds)
          .parallel()
          .name(stem)
          .on_progress([&title](std::size_t done, std::size_t total) {
            std::printf("  [%s %zu/%zu runs]\n", title.c_str(), done, total);
            std::fflush(stdout);
          });
  return finish_figure(builder, parse_shard_cli(argc, argv), argv[0], title,
                       x_label, csv_name, json_name, seeds);
}

}  // namespace ag::bench

#endif  // AG_BENCH_FIGURE_COMMON_H
