// Shared plumbing for the per-figure reproduction benches: the paper's
// base configuration (section 5.1) and sweep helpers producing the
// Gossip-vs-MAODV series every figure plots.
#ifndef AG_BENCH_FIGURE_COMMON_H
#define AG_BENCH_FIGURE_COMMON_H

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/figure.h"
#include "harness/scenario.h"

namespace ag::bench {

// Paper section 5.1 defaults: 200x200 m, 40 nodes, 1/3 members, 600 s,
// 2201 packets from t=120 s, gossip 1 msg/s. Range/speed set per figure.
inline harness::ScenarioConfig paper_base() {
  harness::ScenarioConfig c;
  return c;
}

// Runs one x-sweep for both protocols and prints/writes the figure.
// `apply` mutates the config for a given x value.
inline void run_two_series_figure(
    const std::string& title, const std::string& x_label, const std::string& csv_name,
    const std::vector<double>& xs,
    const std::function<void(harness::ScenarioConfig&, double)>& apply,
    std::uint32_t seeds, harness::ScenarioConfig base = paper_base()) {
  harness::FigureSeries gossip{"Gossip", {}};
  harness::FigureSeries maodv{"Maodv", {}};
  for (double x : xs) {
    harness::ScenarioConfig c = base;
    apply(c, x);
    c.with_protocol(harness::Protocol::maodv_gossip);
    gossip.points.push_back(harness::run_point(c, seeds, x));
    c.with_protocol(harness::Protocol::maodv);
    maodv.points.push_back(harness::run_point(c, seeds, x));
    std::printf("  [%s x=%g done]\n", title.c_str(), x);
    std::fflush(stdout);
  }
  harness::print_figure(title, x_label, {gossip, maodv});
  harness::write_figure_csv(csv_name, {gossip, maodv});
  std::printf("(csv written to %s; paper used 10 seeds, this run used %u — set "
              "AG_SEEDS to change)\n\n",
              csv_name.c_str(), seeds);
}

}  // namespace ag::bench

#endif  // AG_BENCH_FIGURE_COMMON_H
