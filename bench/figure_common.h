// Shared plumbing for the per-figure reproduction benches: the paper's
// base configuration (section 5.1) and the sweep helper producing the
// Gossip-vs-MAODV series every figure plots, built on the fluent
// ExperimentBuilder (seeds run in parallel; results land as a table, a
// CSV, and a machine-readable BENCH_<fig>.json).
#ifndef AG_BENCH_FIGURE_COMMON_H
#define AG_BENCH_FIGURE_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment_builder.h"
#include "harness/figure.h"
#include "harness/protocol_registry.h"
#include "harness/scenario.h"

namespace ag::bench {

// The paper's headline comparison pair.
inline std::vector<harness::Protocol> headline_protocols() {
  return {harness::Protocol::maodv_gossip, harness::Protocol::maodv};
}

// Parses a `--protocols=name,name` flag (registry string names, see
// `quickstart` for the list) anywhere in argv; returns `fallback` when
// absent. Validation lives in ProtocolRegistry::parse_list (unit-tested):
// an unknown name or an empty list fails fast with exit(2) and the
// registry's message naming every registered protocol.
inline std::vector<harness::Protocol> protocols_from_cli(
    int argc, char** argv, std::vector<harness::Protocol> fallback) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--protocols=", 12) != 0) continue;
    try {
      return harness::ProtocolRegistry::instance().parse_list(arg + 12);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      std::exit(2);
    }
  }
  return fallback;
}

// True when `flag` (e.g. "--smoke") appears in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Shared --help/-h implementation for every figure bench: one place lists
// the common flags and environment knobs, each binary passes its one-line
// description, its swept axes, and any bench-specific flags. Prints and
// exits 0 when the flag is present; returns otherwise.
inline void handle_help_flag(int argc, char** argv, const char* description,
                             const char* axes, const char* extra_flags = nullptr) {
  if (!has_flag(argc, argv, "--help") && !has_flag(argc, argv, "-h")) return;
  std::printf("usage: %s [flags]\n\n%s\n\nSwept axes:\n%s\n\nFlags:\n", argv[0],
              description, axes);
  if (extra_flags != nullptr) std::printf("%s", extra_flags);
  std::printf(
      "  --protocols=a,b   protocol series to run (registry names; see error\n"
      "                    message of an unknown name for the full list)\n"
      "  --help, -h        this text\n"
      "\nEnvironment knobs (all runs are bit-identical across the engine\n"
      "hatches; see README \"Environment knobs\"):\n"
      "  AG_SEEDS=<n>            seeds per point (overrides the default)\n"
      "  AG_SPATIAL_INDEX=off    brute-force phy neighbor scan\n"
      "  AG_DENSE_TABLES=off     ordered-map table backends\n"
      "  AG_BATCHED_BACKOFF=off  per-slot MAC contention reference engine\n"
      "  AG_CUSTODY=off          force the DTN custody tier off\n"
      "  AG_ADVERSARY=off        force the adversary/trust axis off\n");
  std::exit(0);
}

// Paper section 5.1 defaults: 200x200 m, 40 nodes, 1/3 members, 600 s,
// 2201 packets from t=120 s, gossip 1 msg/s. Range/speed set per figure.
inline harness::ScenarioConfig paper_base() {
  harness::ScenarioConfig c;
  return c;
}

// Strips a trailing extension: "fig2.csv" -> "fig2".
inline std::string stem_of(const std::string& file_name) {
  const std::size_t dot = file_name.rfind('.');
  return dot == std::string::npos ? file_name : file_name.substr(0, dot);
}

// Runs one x-sweep over `protocols` (default: the headline pair; benches
// pass protocols_from_cli so `--protocols=` selects any registered set)
// and emits the figure as a table, a CSV, and BENCH_<stem>.json. `apply`
// mutates the config for a given x value.
inline void run_two_series_figure(
    const std::string& title, const std::string& x_label, const std::string& csv_name,
    const std::vector<double>& xs,
    const std::function<void(harness::ScenarioConfig&, double)>& apply,
    std::uint32_t seeds, harness::ScenarioConfig base = paper_base(),
    std::vector<harness::Protocol> protocols = headline_protocols()) {
  const std::string stem = stem_of(csv_name);
  const std::string json_name = "BENCH_" + stem + ".json";
  harness::ExperimentResult result =
      harness::Experiment::sweep(x_label, xs, apply)
          .base(base)
          .protocols(std::move(protocols))
          .seeds(seeds)
          .parallel()
          .name(stem)
          .on_progress([&title](std::size_t done, std::size_t total) {
            std::printf("  [%s %zu/%zu runs]\n", title.c_str(), done, total);
            std::fflush(stdout);
          })
          .run();
  result.print(title, x_label);
  const bool csv_ok = result.write_csv(csv_name);
  const bool json_ok = result.write_json(json_name);
  if (!csv_ok || !json_ok) {
    std::fprintf(stderr, "error: failed to write %s\n",
                 (!csv_ok ? csv_name : json_name).c_str());
  }
  std::printf("(%s written to %s, %s to %s; paper used 10 seeds, this run "
              "used %u — set AG_SEEDS to change)\n\n",
              csv_ok ? "csv" : "NO csv", csv_name.c_str(),
              json_ok ? "json" : "NO json", json_name.c_str(), seeds);
}

}  // namespace ag::bench

#endif  // AG_BENCH_FIGURE_COMMON_H
