// Figure 5: packet delivery vs maximum speed (1–10 m/s), range 75 m,
// 40 nodes. Expected: gradual decay with speed as link breakage becomes
// more frequent; Gossip stays on top (paper: 80-90 % across this band).
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Paper figure 5: delivery ratio vs maximum node speed (1-10 m/s).",
      "  max_speed_mps = {1..10}");
  const std::uint32_t seeds = harness::seeds_from_env(3);
  return bench::run_two_series_figure(
      argc, argv,
      "Figure 5: Packet Delivery vs Maximum Speed (high range: 1-10 m/s)",
      "speed(m/s)", "fig5.csv", {1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
      [](harness::ScenarioConfig& c, double x) {
        c.with_range(75.0).with_max_speed(x);
      },
      seeds, bench::paper_base(),
      bench::protocols_from_cli(argc, argv, bench::headline_protocols()));
}
