// Ablation: direction of information exchange (paper section 4.4 cites
// Demers et al. on why this matters). The paper's protocol is pull; this
// bench quantifies what push and push-pull would have cost: pushing
// without knowing the partner's losses ships duplicates, which shows up
// directly in the goodput column.
#include <cstdio>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  const std::uint32_t seeds = harness::seeds_from_env(2);
  const std::vector<harness::Protocol> protocols = bench::protocols_from_cli(
      argc, argv, {harness::Protocol::maodv_gossip});

  std::printf("== Ablation: push vs pull gossip (range 55 m, 0.2 m/s) ==\n");
  std::printf("%-10s | %10s %6s %6s | %9s | %s\n", "mode", "avg", "min", "max",
              "goodput%", "tx/run");
  struct Mode {
    const char* name;
    gossip::ExchangeMode mode;
  };
  for (harness::Protocol protocol : protocols) {
    if (protocols.size() > 1) {
      std::printf("-- %s --\n",
                  harness::ProtocolRegistry::instance().name_of(protocol).c_str());
    }
    for (const Mode& m : {Mode{"pull", gossip::ExchangeMode::pull},
                          Mode{"push", gossip::ExchangeMode::push},
                          Mode{"push_pull", gossip::ExchangeMode::push_pull}}) {
      harness::ScenarioConfig c = bench::paper_base();
      c.with_range(55.0).with_max_speed(0.2);
      c.with_protocol(protocol);
      c.gossip.exchange_mode = m.mode;
      harness::SeriesPoint pt = harness::run_point(c, seeds, 0.0);
      std::printf("%-10s | %10.1f %6.0f %6.0f | %9.2f | %llu\n", m.name,
                  pt.received.mean, pt.received.min, pt.received.max,
                  pt.mean_goodput_pct,
                  static_cast<unsigned long long>(pt.mean_transmissions));
      std::fflush(stdout);
    }
  }
  std::printf("\n");
  return 0;
}
