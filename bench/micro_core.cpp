// Micro-benchmarks (google-benchmark) for the simulator's hot paths: the
// event queue, RNG streams, gossip bookkeeping tables and the end-to-end
// events-per-second rate of a full protocol stack.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "gossip/history_table.h"
#include "gossip/lost_table.h"
#include "gossip/member_cache.h"
#include "harness/network.h"
#include "harness/scenario.h"
#include "mac/csma_mac.h"
#include "mobility/static_mobility.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/event_category.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace ag;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule(sim::SimTime::us(i * 7 % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(q.schedule(sim::SimTime::us(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < 10000) {
        sim.schedule_after(sim::Duration::us(10), chain, sim::EventCategory::other);
      }
    };
    sim.schedule_after(sim::Duration::us(10), chain, sim::EventCategory::other);
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorTimerChurn);

void BM_RngWeightedIndex(benchmark::State& state) {
  sim::Rng rng{42};
  std::vector<double> weights{1.0, 0.25, 4.0, 0.0625, 1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.weighted_index(weights));
  }
}
BENCHMARK(BM_RngWeightedIndex);

void BM_LostTableChurn(benchmark::State& state) {
  const net::NodeId origin{1};
  for (auto _ : state) {
    gossip::LostTable t{200};
    // Every third message missing, later recovered: the paper's workload.
    for (std::uint32_t s = 0; s < 2000; s += 3) {
      t.on_data({origin, s});
      t.on_data({origin, s + 1});
      // s+2 lost
    }
    for (std::uint32_t s = 2; s < 600; s += 3) t.on_data({origin, s});
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(BM_LostTableChurn);

void BM_HistoryTableLookup(benchmark::State& state) {
  gossip::HistoryTable h{100};
  net::MulticastData d;
  d.origin = net::NodeId{1};
  for (std::uint32_t s = 0; s < 100; ++s) {
    d.seq = s;
    h.push(d);
  }
  std::uint32_t s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.find({net::NodeId{1}, s++ % 150}));
  }
}
BENCHMARK(BM_HistoryTableLookup);

void BM_MemberCacheObserve(benchmark::State& state) {
  sim::Rng rng{7};
  gossip::MemberCache cache{10};
  std::uint32_t n = 0;
  for (auto _ : state) {
    ++n;
    cache.observe(net::NodeId{n % 40}, static_cast<std::uint16_t>(1 + n % 6),
                  sim::SimTime::us(static_cast<std::int64_t>(n)));
    benchmark::DoNotOptimize(cache.pick_random(rng));
  }
}
BENCHMARK(BM_MemberCacheObserve);

// Saturated single-cell contention: every node in mutual range, every
// interface queue stuffed with broadcasts, so the run is pure CSMA
// contention — the isolation bench for the analytic backoff countdown.
// Reports events per delivered frame (the elision metric: the per-slot
// machine burns a tick event per backoff slot, the batched engine one
// fused deadline per countdown) and the mac_slot share of all events.
// Arg(1) = batched analytic engine (default), Arg(0) = per-slot
// reference via AG_BATCHED_BACKOFF=off.
void BM_SaturatedCellContention(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  // Save/restore any user-set engine choice so later benchmarks in this
  // process still measure what the caller asked for.
  // ag-lint: allow(env, A/B bench saves the caller's engine choice)
  const char* prior_raw = getenv("AG_BATCHED_BACKOFF");
  const std::string prior = prior_raw == nullptr ? "" : prior_raw;
  const bool had_prior = prior_raw != nullptr;
  // ag-lint: allow(env, A/B bench toggles the escape hatch per Arg)
  setenv("AG_BATCHED_BACKOFF", batched ? "on" : "off", 1);
  constexpr std::size_t kNodes = 10;
  constexpr int kFramesPerNode = 40;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t mac_slot_events = 0;
  for (auto _ : state) {
    std::vector<mobility::Vec2> positions;
    for (std::size_t i = 0; i < kNodes; ++i) {
      positions.push_back({static_cast<double>(i) * 5.0, 0.0});
    }
    sim::Simulator sim;
    mobility::StaticMobility mobility{std::move(positions)};
    phy::Channel channel{sim, mobility, phy::PhyParams{100.0, 2e6, 192.0, 3e8}};
    std::vector<std::unique_ptr<phy::Radio>> radios;
    std::vector<std::unique_ptr<mac::CsmaMac>> macs;
    for (std::size_t i = 0; i < kNodes; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(sim, channel, i));
      channel.attach(radios.back().get());
      macs.push_back(std::make_unique<mac::CsmaMac>(
          sim, *radios.back(), channel, net::NodeId{static_cast<std::uint32_t>(i)},
          mac::MacParams{}, sim.rng().stream("mac", i)));
    }
    for (int f = 0; f < kFramesPerNode; ++f) {
      for (auto& m : macs) {
        net::Packet p;
        p.src = m->self();
        p.payload = aodv::HelloMsg{m->self(), net::SeqNo{1}};
        m->send(net::NodeId::broadcast(), std::move(p));
      }
    }
    sim.run_all();
    events += sim.executed_events();
    mac_slot_events +=
        sim.event_mix().executed[sim::category_index(sim::EventCategory::mac_slot)];
    for (auto& m : macs) delivered += m->counters().delivered_up;
  }
  if (had_prior) {
    // ag-lint: allow(env, A/B bench restores the caller's engine choice)
    setenv("AG_BATCHED_BACKOFF", prior.c_str(), 1);
  } else {
    // ag-lint: allow(env, A/B bench restores the caller's engine choice)
    unsetenv("AG_BATCHED_BACKOFF");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  if (delivered > 0) {
    state.counters["events_per_delivered_frame"] =
        static_cast<double>(events) / static_cast<double>(delivered);
  }
  if (events > 0) {
    state.counters["mac_slot_share"] =
        static_cast<double>(mac_slot_events) / static_cast<double>(events);
  }
}
BENCHMARK(BM_SaturatedCellContention)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Dense-cell delivery storm: every node in mutual range, every queue
// stuffed with broadcasts — each transmission fans out to n-1 receivers,
// so the per-receiver reference engine executes one finish event per
// (frame, receiver) pair while the batched engine sweeps each group
// with one completion event and elides doomed receptions outright. The
// isolation bench for phy::BatchedPhy. Reports events per delivered
// frame plus the elided/coalesced reception split. Arg(1) = batched
// delivery engine (default), Arg(0) = per-receiver reference via
// AG_BATCHED_PHY=off.
void BM_DenseCellDeliveryStorm(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  // Save/restore any user-set engine choice so later benchmarks in this
  // process still measure what the caller asked for.
  // ag-lint: allow(env, A/B bench saves the caller's engine choice)
  const char* prior_raw = getenv("AG_BATCHED_PHY");
  const std::string prior = prior_raw == nullptr ? "" : prior_raw;
  const bool had_prior = prior_raw != nullptr;
  // ag-lint: allow(env, A/B bench toggles the escape hatch per Arg)
  setenv("AG_BATCHED_PHY", batched ? "on" : "off", 1);
  constexpr std::size_t kNodes = 24;
  constexpr int kFramesPerNode = 30;
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t rx_elided = 0;
  std::uint64_t rx_coalesced = 0;
  for (auto _ : state) {
    std::vector<mobility::Vec2> positions;
    for (std::size_t i = 0; i < kNodes; ++i) {
      positions.push_back({static_cast<double>(i % 6) * 8.0,
                           static_cast<double>(i / 6) * 8.0});
    }
    sim::Simulator sim;
    mobility::StaticMobility mobility{std::move(positions)};
    phy::Channel channel{sim, mobility, phy::PhyParams{100.0, 2e6, 192.0, 3e8}};
    std::vector<std::unique_ptr<phy::Radio>> radios;
    std::vector<std::unique_ptr<mac::CsmaMac>> macs;
    for (std::size_t i = 0; i < kNodes; ++i) {
      radios.push_back(std::make_unique<phy::Radio>(sim, channel, i));
      channel.attach(radios.back().get());
      macs.push_back(std::make_unique<mac::CsmaMac>(
          sim, *radios.back(), channel, net::NodeId{static_cast<std::uint32_t>(i)},
          mac::MacParams{}, sim.rng().stream("mac", i)));
    }
    for (int f = 0; f < kFramesPerNode; ++f) {
      for (auto& m : macs) {
        net::Packet p;
        p.src = m->self();
        p.payload = aodv::HelloMsg{m->self(), net::SeqNo{1}};
        m->send(net::NodeId::broadcast(), std::move(p));
      }
    }
    sim.run_all();
    events += sim.executed_events();
    rx_elided += channel.rx_elided();
    rx_coalesced += channel.rx_coalesced();
    for (auto& m : macs) delivered += m->counters().delivered_up;
  }
  if (had_prior) {
    // ag-lint: allow(env, A/B bench restores the caller's engine choice)
    setenv("AG_BATCHED_PHY", prior.c_str(), 1);
  } else {
    // ag-lint: allow(env, A/B bench restores the caller's engine choice)
    unsetenv("AG_BATCHED_PHY");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  if (delivered > 0) {
    state.counters["events_per_delivered_frame"] =
        static_cast<double>(events) / static_cast<double>(delivered);
  }
  if (events > 0) {
    state.counters["phy_rx_elided_share"] =
        static_cast<double>(rx_elided) / static_cast<double>(events + rx_elided + rx_coalesced);
    state.counters["phy_rx_coalesced_share"] =
        static_cast<double>(rx_coalesced) /
        static_cast<double>(events + rx_elided + rx_coalesced);
  }
}
BENCHMARK(BM_DenseCellDeliveryStorm)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// Whole-stack throughput: a complete 40-node scenario, measured in
// simulated events per second of wall clock.
void BM_FullScenarioEventsPerSecond(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    harness::ScenarioConfig c;
    c.seed = 11;
    c.duration = sim::SimTime::seconds(30.0);
    c.workload.start = sim::SimTime::seconds(10.0);
    c.workload.end = sim::SimTime::seconds(25.0);
    c.with_protocol(harness::Protocol::maodv_gossip);
    harness::Network net{c};
    net.run();
    events += net.simulator().executed_events();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FullScenarioEventsPerSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
