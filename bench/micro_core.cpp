// Micro-benchmarks (google-benchmark) for the simulator's hot paths: the
// event queue, RNG streams, gossip bookkeeping tables and the end-to-end
// events-per-second rate of a full protocol stack.
#include <benchmark/benchmark.h>

#include "gossip/history_table.h"
#include "gossip/lost_table.h"
#include "gossip/member_cache.h"
#include "harness/network.h"
#include "harness/scenario.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

using namespace ag;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::int64_t i = 0; i < n; ++i) {
      q.schedule(sim::SimTime::us(i * 7 % 1000), [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(10000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    std::vector<sim::EventId> ids;
    ids.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      ids.push_back(q.schedule(sim::SimTime::us(i), [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_SimulatorTimerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int fired = 0;
    std::function<void()> chain = [&] {
      if (++fired < 10000) sim.schedule_after(sim::Duration::us(10), chain);
    };
    sim.schedule_after(sim::Duration::us(10), chain);
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorTimerChurn);

void BM_RngWeightedIndex(benchmark::State& state) {
  sim::Rng rng{42};
  std::vector<double> weights{1.0, 0.25, 4.0, 0.0625, 1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.weighted_index(weights));
  }
}
BENCHMARK(BM_RngWeightedIndex);

void BM_LostTableChurn(benchmark::State& state) {
  const net::NodeId origin{1};
  for (auto _ : state) {
    gossip::LostTable t{200};
    // Every third message missing, later recovered: the paper's workload.
    for (std::uint32_t s = 0; s < 2000; s += 3) {
      t.on_data({origin, s});
      t.on_data({origin, s + 1});
      // s+2 lost
    }
    for (std::uint32_t s = 2; s < 600; s += 3) t.on_data({origin, s});
    benchmark::DoNotOptimize(t.size());
  }
}
BENCHMARK(BM_LostTableChurn);

void BM_HistoryTableLookup(benchmark::State& state) {
  gossip::HistoryTable h{100};
  net::MulticastData d;
  d.origin = net::NodeId{1};
  for (std::uint32_t s = 0; s < 100; ++s) {
    d.seq = s;
    h.push(d);
  }
  std::uint32_t s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.find({net::NodeId{1}, s++ % 150}));
  }
}
BENCHMARK(BM_HistoryTableLookup);

void BM_MemberCacheObserve(benchmark::State& state) {
  sim::Rng rng{7};
  gossip::MemberCache cache{10};
  std::uint32_t n = 0;
  for (auto _ : state) {
    cache.observe(net::NodeId{n++ % 40}, static_cast<std::uint16_t>(1 + n % 6),
                  sim::SimTime::us(static_cast<std::int64_t>(n)));
    benchmark::DoNotOptimize(cache.pick_random(rng));
  }
}
BENCHMARK(BM_MemberCacheObserve);

// Whole-stack throughput: a complete 40-node scenario, measured in
// simulated events per second of wall clock.
void BM_FullScenarioEventsPerSecond(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    harness::ScenarioConfig c;
    c.seed = 11;
    c.duration = sim::SimTime::seconds(30.0);
    c.workload.start = sim::SimTime::seconds(10.0);
    c.workload.end = sim::SimTime::seconds(25.0);
    c.with_protocol(harness::Protocol::maodv_gossip);
    harness::Network net{c};
    net.run();
    events += net.simulator().executed_events();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_FullScenarioEventsPerSecond)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
