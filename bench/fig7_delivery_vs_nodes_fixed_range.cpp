// Figure 7: packet delivery vs number of nodes (40–100) at a fixed 55 m
// range, max speed 0.2 m/s. Expected: delivery first improves with
// density (better connectivity), then congestion takes a toll — the
// paper's rise-then-flatten shape.
#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Paper figure 7: delivery ratio vs node count at a fixed 55 m range.",
      "  node_count = {40..100}");
  const std::uint32_t seeds = harness::seeds_from_env(2);
  return bench::run_two_series_figure(
      argc, argv,
      "Figure 7: Packet Delivery vs Number of Nodes (fixed 55 m range)",
      "#nodes", "fig7.csv", {40, 50, 60, 70, 80, 90, 100},
      [](harness::ScenarioConfig& c, double x) {
        c.with_nodes(static_cast<std::size_t>(x)).with_range(55.0).with_max_speed(0.2);
      },
      seeds, bench::paper_base(),
      bench::protocols_from_cli(argc, argv, bench::headline_protocols()));
}
