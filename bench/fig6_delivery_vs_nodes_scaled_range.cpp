// Figure 6: packet delivery vs number of nodes (40–100) with the
// transmission range scaled as r = 75·sqrt(40/n) so the mean neighbor
// count stays constant (the paper's "average number of neighbors ...
// approximately the same" experiment; the 40-node anchor of 75 m is our
// documented assumption — see DESIGN.md). Expected: gradual decline as
// routes get longer and link failures more frequent.
#include <cmath>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Paper figure 6: delivery ratio vs node count at constant mean degree\n(range shrinks as nodes grow).",
      "  node_count = {40..100} (range scaled to hold mean degree)");
  const std::uint32_t seeds = harness::seeds_from_env(2);
  return bench::run_two_series_figure(
      argc, argv,
      "Figure 6: Packet Delivery vs Number of Nodes (constant mean degree)",
      "#nodes", "fig6.csv", {40, 50, 60, 70, 80, 90, 100},
      [](harness::ScenarioConfig& c, double x) {
        const double range = 75.0 * std::sqrt(40.0 / x);
        c.with_nodes(static_cast<std::size_t>(x)).with_range(range).with_max_speed(0.2);
      },
      seeds, bench::paper_base(),
      bench::protocols_from_cli(argc, argv, bench::headline_protocols()));
}
