// Ablation: gossip rate (paper section 5.5 — "the gossip rate should be
// tuned so that the network does not get congested and the goodput is
// nearly 100 percent"). Sweeps the round interval from 4 s to 250 ms on
// the ExperimentBuilder (seeds in parallel, JSON emitted).
#include <cstdio>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  harness::install_interrupt_handlers();
  const std::uint32_t seeds = harness::seeds_from_env(2);

  harness::ScenarioConfig base = bench::paper_base();
  base.with_range(55.0).with_max_speed(0.2);

  harness::ExperimentResult result =
      harness::Experiment::sweep("gossip_interval_ms", {4000, 2000, 1000, 500, 250})
          .base(base)
          .protocols(bench::protocols_from_cli(argc, argv,
                                               {harness::Protocol::maodv_gossip}))
          .seeds(seeds)
          .parallel()
          .name("ablation_gossip_rate")
          .run();
  if (harness::interrupt_requested()) {
    std::fprintf(stderr, "%s: interrupted; no outputs written\n", argv[0]);
    return harness::interrupt_exit_code();
  }

  std::printf("== Ablation: gossip round interval ==\n");
  std::printf("%-14s %-12s | %10s %6s %6s | %9s | %s\n", "protocol", "interval(ms)",
              "avg", "min", "max", "goodput%", "tx/run");
  for (const harness::FigureSeries& series : result.series) {
    for (const harness::SeriesPoint& pt : series.points) {
      std::printf("%-14s %-12g | %10.1f %6.0f %6.0f | %9.2f | %llu\n",
                  series.name.c_str(), pt.x, pt.received.mean, pt.received.min,
                  pt.received.max, pt.mean_goodput_pct,
                  static_cast<unsigned long long>(pt.mean_transmissions));
    }
  }
  if (result.write_json("BENCH_ablation_gossip_rate.json")) {
    std::printf("(json written to BENCH_ablation_gossip_rate.json; %u seeds)\n",
                seeds);
  } else {
    std::fprintf(stderr, "error: failed to write BENCH_ablation_gossip_rate.json\n");
  }
  return 0;
}
