// Ablation: gossip rate (paper section 5.5 — "the gossip rate should be
// tuned so that the network does not get congested and the goodput is
// nearly 100 percent"). Sweeps the round interval from 4 s to 250 ms.
#include <cstdio>

#include "figure_common.h"

int main() {
  using namespace ag;
  const std::uint32_t seeds = harness::seeds_from_env(2);

  std::printf("== Ablation: gossip round interval ==\n");
  std::printf("%-12s | %10s %6s %6s | %9s | %s\n", "interval(ms)", "avg", "min",
              "max", "goodput%", "tx/run");
  for (std::int64_t ms : {4000, 2000, 1000, 500, 250}) {
    harness::ScenarioConfig c = bench::paper_base();
    c.with_range(55.0).with_max_speed(0.2);
    c.with_protocol(harness::Protocol::maodv_gossip);
    c.gossip.round_interval = sim::Duration::ms(ms);
    harness::SeriesPoint pt = harness::run_point(c, seeds, static_cast<double>(ms));
    std::printf("%-12lld | %10.1f %6.0f %6.0f | %9.2f | %llu\n",
                static_cast<long long>(ms), pt.received.mean, pt.received.min,
                pt.received.max, pt.mean_goodput_pct,
                static_cast<unsigned long long>(pt.mean_transmissions));
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
