// Ablation: MAODV vs MAODV+AG vs blind flooding (the related-work
// comparison of paper section 6 — flooding is reliable but "extremely
// expensive since it generates a large number of messages"). Reports
// delivery plus the cost metric flooding loses on: transmissions per
// delivered packet.
#include <cstdio>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  const std::uint32_t seeds = harness::seeds_from_env(2);
  const std::vector<harness::Protocol> protocols = bench::protocols_from_cli(
      argc, argv, {harness::Protocol::maodv, harness::Protocol::maodv_gossip,
                   harness::Protocol::flooding});

  std::printf("== Ablation: protocol cost comparison (range 55 m, 0.2 m/s) ==\n");
  std::printf("%-14s | %10s %6s %6s | %12s | %s\n", "protocol", "avg", "min", "max",
              "tx/run", "tx per delivered pkt");

  for (harness::Protocol protocol : protocols) {
    harness::ScenarioConfig c = bench::paper_base();
    c.with_range(55.0).with_max_speed(0.2);
    c.with_protocol(protocol);
    harness::SeriesPoint pt = harness::run_point(c, seeds, 0.0);
    double delivered_total = 0.0;
    for (const auto& run : pt.runs) {
      for (const auto& m : run.members) delivered_total += static_cast<double>(m.received);
    }
    delivered_total /= static_cast<double>(pt.runs.size());
    const double cost = delivered_total > 0
                            ? static_cast<double>(pt.mean_transmissions) / delivered_total
                            : 0.0;
    std::printf("%-14s | %10.1f %6.0f %6.0f | %12llu | %.2f\n",
                harness::ProtocolRegistry::instance().name_of(protocol).c_str(),
                pt.received.mean, pt.received.min, pt.received.max,
                static_cast<unsigned long long>(pt.mean_transmissions), cost);
    std::fflush(stdout);
  }
  std::printf("\n");
  return 0;
}
