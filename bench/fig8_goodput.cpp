// Figure 8: gossip goodput (% of non-duplicate messages among gossip-reply
// messages) at each group member, for two transmission ranges x two
// maximum speeds. The paper reports 97-100 % everywhere — nearly every
// gossip reply carried a useful (non-redundant) message.
#include <cstdio>
#include <vector>

#include "figure_common.h"

int main(int argc, char** argv) {
  using namespace ag;
  bench::handle_help_flag(
      argc, argv,
      "Paper figure 8 (section 5.5): gossip goodput — % non-duplicate messages\namong gossip-reply traffic.",
      "  range_m = {45..85}");
  const std::uint32_t seeds = harness::seeds_from_env(3);
  // Goodput is a gossip metric; default to the paper's gossip-over-MAODV,
  // but any registered substrate can be measured via --protocols=.
  const std::vector<harness::Protocol> protocols = bench::protocols_from_cli(
      argc, argv, {harness::Protocol::maodv_gossip});

  struct Config {
    double range;
    double speed;
  };
  const std::vector<Config> configs = {{45, 0.2}, {75, 0.2}, {45, 2.0}, {75, 2.0}};

  std::printf("== Figure 8: Goodput at different group members ==\n");
  std::printf("(averaged over %u seeds; paper used 10 — set AG_SEEDS to change)\n", seeds);
  std::printf("%-14s | per-member goodput (%%)                          | mean\n",
              "range,speed");

  FILE* csv = std::fopen("fig8.csv", "w");
  if (csv != nullptr) std::fprintf(csv, "protocol,range,speed,member,goodput_pct\n");

  for (harness::Protocol protocol : protocols) {
    const std::string& pname = harness::ProtocolRegistry::instance().name_of(protocol);
    if (protocols.size() > 1) std::printf("-- %s --\n", pname.c_str());
    for (const Config& cfg : configs) {
      harness::ScenarioConfig c = bench::paper_base();
      c.with_range(cfg.range).with_max_speed(cfg.speed);
      c.with_protocol(protocol);

      // Per-member goodput, averaged across seeds.
      std::vector<double> sums;
      for (std::uint32_t s = 1; s <= seeds; ++s) {
        stats::RunResult r = harness::run_scenario(c.with_seed(s));
        if (sums.empty()) sums.assign(r.members.size(), 0.0);
        for (std::size_t i = 0; i < r.members.size(); ++i) {
          sums[i] += r.members[i].goodput_pct();
        }
      }
      std::printf("%4.0fm, %.1fm/s |", cfg.range, cfg.speed);
      double total = 0.0;
      for (std::size_t i = 0; i < sums.size(); ++i) {
        const double g = sums[i] / seeds;
        total += g;
        std::printf(" %5.1f", g);
        if (csv != nullptr) {
          std::fprintf(csv, "%s,%g,%g,%zu,%f\n", pname.c_str(), cfg.range, cfg.speed,
                       i + 1, g);
        }
      }
      std::printf(" | %5.1f\n",
                  sums.empty() ? 100.0 : total / static_cast<double>(sums.size()));
      std::fflush(stdout);
    }
  }
  if (csv != nullptr) std::fclose(csv);
  std::printf("(csv written to fig8.csv)\n\n");
  return 0;
}
