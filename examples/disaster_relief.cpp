// Disaster-relief field operation (one of the paper's motivating
// applications): rescue squads sweep a large area on foot; a coordinator
// multicasts situation updates to all squad radios. The example contrasts
// bare MAODV with MAODV + Anonymous Gossip on delivery and on the spread
// between the best- and worst-served squad — the paper's two headline
// metrics — and prints the gossip machinery's own accounting.
//
// Usage: disaster_relief [seed]
#include <cstdio>
#include <cstdlib>

#include "harness/network.h"
#include "harness/scenario.h"

using namespace ag;

namespace {

harness::ScenarioConfig field_operation(std::uint64_t seed) {
  harness::ScenarioConfig c;
  c.seed = seed;
  c.node_count = 60;                  // 20 rescuers + support radios
  c.member_fraction = 1.0 / 3.0;      // the squad-leader multicast group
  c.waypoint.area_width_m = 300.0;    // a collapsed city block
  c.waypoint.area_height_m = 300.0;
  c.waypoint.max_speed_mps = 1.5;     // brisk walking pace over rubble
  c.waypoint.max_pause_s = 30.0;      // stop, search, move on
  c.phy.transmission_range_m = 90.0;  // handheld radio
  c.duration = sim::SimTime::seconds(300.0);
  c.workload.start = sim::SimTime::seconds(60.0);
  c.workload.end = sim::SimTime::seconds(280.0);
  c.workload.interval = sim::Duration::ms(500);  // situation updates
  c.workload.payload_bytes = 64;
  return c;
}

void report(const char* name, const stats::RunResult& r) {
  const stats::Summary s = r.received_summary();
  std::printf("%-14s delivery %5.1f%%  best member %4.0f  worst member %4.0f  "
              "spread %4.0f\n",
              name, 100.0 * r.delivery_ratio(), s.max, s.min, s.max - s.min);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  harness::ScenarioConfig base = field_operation(seed);
  std::printf("Disaster relief: %zu radios over %.0fx%.0f m, %zu-member command "
              "group, %u situation updates\n\n",
              base.node_count, base.waypoint.area_width_m, base.waypoint.area_height_m,
              base.member_count(), base.workload.packet_count());

  harness::ScenarioConfig maodv = base;
  maodv.with_protocol(harness::Protocol::maodv);
  report("MAODV", harness::run_scenario(maodv));

  harness::ScenarioConfig ag_cfg = base;
  ag_cfg.with_protocol(harness::Protocol::maodv_gossip);
  harness::Network net{ag_cfg};
  net.run();
  const stats::RunResult r = net.result();
  report("MAODV+Gossip", r);

  // What the gossip layer actually did.
  std::uint64_t walks = 0, cached = 0, replies = 0, recovered = 0, nm = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto& g = net.agent(i).counters();
    walks += g.walks_initiated;
    cached += g.cached_initiated;
    replies += g.replies_sent;
    recovered += g.delivered_via_gossip;
    nm += g.nm_updates_sent;
  }
  std::printf("\ngossip activity: %llu anonymous walks, %llu cached gossips, "
              "%llu replies sent, %llu packets recovered, %llu nearest-member "
              "updates, goodput %.1f%%\n",
              static_cast<unsigned long long>(walks),
              static_cast<unsigned long long>(cached),
              static_cast<unsigned long long>(replies),
              static_cast<unsigned long long>(recovered),
              static_cast<unsigned long long>(nm), r.mean_goodput_pct());
  return 0;
}
