// Quickstart: build the paper's default scenario (40 nodes, 200x200 m,
// 13-member group, CBR source) and compare bare MAODV with MAODV +
// Anonymous Gossip on packet delivery — the paper's headline result.
//
// Usage: quickstart [seed]
#include <cstdio>
#include <cstdlib>

#include "harness/network.h"
#include "harness/scenario.h"

using namespace ag;

namespace {

void report(const char* name, const stats::RunResult& r) {
  const stats::Summary s = r.received_summary();
  std::printf("%-16s sent=%u  received: avg=%.1f min=%.0f max=%.0f  "
              "delivery=%.1f%%  goodput=%.1f%%\n",
              name, r.packets_sent, s.mean, s.min, s.max, 100.0 * r.delivery_ratio(),
              r.mean_goodput_pct());
  std::printf("%-16s   per-member:", "");
  for (const stats::MemberResult& m : r.members) {
    std::printf(" %llu", static_cast<unsigned long long>(m.received));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // A shortened version of the paper's section 5.1 setup so the example
  // finishes quickly: 200 s run, data from 30 s to 170 s (701 packets).
  harness::ScenarioConfig base;
  base.seed = seed;
  base.phy.transmission_range_m = 75.0;
  base.waypoint.max_speed_mps = 1.0;
  base.duration = sim::SimTime::seconds(200.0);
  base.workload.start = sim::SimTime::seconds(30.0);
  base.workload.end = sim::SimTime::seconds(170.0);

  std::printf("Anonymous Gossip quickstart: %zu nodes, %zu members, range %.0fm, "
              "vmax %.1fm/s, seed %llu\n\n",
              base.node_count, base.member_count(), base.phy.transmission_range_m,
              base.waypoint.max_speed_mps, static_cast<unsigned long long>(seed));

  harness::ScenarioConfig maodv = base;
  maodv.with_protocol(harness::Protocol::maodv);
  report("MAODV", harness::run_scenario(maodv));

  harness::ScenarioConfig with_gossip = base;
  with_gossip.with_protocol(harness::Protocol::maodv_gossip);
  report("MAODV+Gossip", harness::run_scenario(with_gossip));

  return 0;
}
