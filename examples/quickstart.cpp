// Quickstart: build the paper's default scenario (40 nodes, 200x200 m,
// 13-member group, CBR source) and compare bare MAODV with MAODV +
// Anonymous Gossip on packet delivery — the paper's headline result.
// Passing protocol names compares any registered substrates instead.
//
// Usage: quickstart [seed] [protocol ...]   (e.g. quickstart 7 odmrp odmrp_gossip)
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <vector>

#include "harness/network.h"
#include "harness/protocol_registry.h"
#include "harness/scenario.h"

using namespace ag;

namespace {

void report(const char* name, const stats::RunResult& r) {
  const stats::Summary s = r.received_summary();
  std::printf("%-16s sent=%u  received: avg=%.1f min=%.0f max=%.0f  "
              "delivery=%.1f%%  goodput=%.1f%%\n",
              name, r.packets_sent, s.mean, s.min, s.max, 100.0 * r.delivery_ratio(),
              r.mean_goodput_pct());
  std::printf("%-16s   per-member:", "");
  for (const stats::MemberResult& m : r.members) {
    std::printf(" %llu", static_cast<unsigned long long>(m.received));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  // First argument is the seed when fully numeric; protocol names may
  // follow (or start at argv[1] when the seed is omitted).
  std::uint64_t seed = 7;
  int first_protocol_arg = 1;
  if (argc > 1) {
    char* end = nullptr;
    const std::uint64_t parsed = std::strtoull(argv[1], &end, 10);
    if (end != argv[1] && *end == '\0') {
      seed = parsed;
      first_protocol_arg = 2;
    }
  }

  // A shortened version of the paper's section 5.1 setup so the example
  // finishes quickly: 200 s run, data from 30 s to 170 s (701 packets).
  harness::ScenarioConfig base;
  base.seed = seed;
  base.phy.transmission_range_m = 75.0;
  base.waypoint.max_speed_mps = 1.0;
  base.duration = sim::SimTime::seconds(200.0);
  base.workload.start = sim::SimTime::seconds(30.0);
  base.workload.end = sim::SimTime::seconds(170.0);

  std::printf("Anonymous Gossip quickstart: %zu nodes, %zu members, range %.0fm, "
              "vmax %.1fm/s, seed %llu\n\n",
              base.node_count, base.member_count(), base.phy.transmission_range_m,
              base.waypoint.max_speed_mps, static_cast<unsigned long long>(seed));

  // Protocols to compare: CLI names resolved through the registry, or the
  // paper's headline pair by default.
  const auto& registry = harness::ProtocolRegistry::instance();
  std::vector<harness::Protocol> protocols;
  for (int i = first_protocol_arg; i < argc; ++i) {
    try {
      protocols.push_back(registry.parse(argv[i]));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
  }
  if (protocols.empty()) {
    protocols = {harness::Protocol::maodv, harness::Protocol::maodv_gossip};
  }

  for (harness::Protocol p : protocols) {
    harness::ScenarioConfig c = base;
    c.with_protocol(p);
    report(registry.name_of(p).c_str(), harness::run_scenario(c));
  }

  return 0;
}
