// Partition and heal: two squads drift apart until the network splits,
// MAODV elects a second group leader in the orphan partition, and when
// the squads reunite the leaders discover each other through group hellos
// and merge the trees. Demonstrates the partition/merge machinery of
// section 3 and gossip's recovery of the messages lost while split.
//
// Usage: partition_heal [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "gossip/gossip_agent.h"
#include "mac/csma_mac.h"
#include "maodv/maodv_router.h"
#include "mobility/static_mobility.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/simulator.h"

using namespace ag;

namespace {

constexpr net::GroupId kGroup{1};

struct Node {
  std::unique_ptr<phy::Radio> radio;
  std::unique_ptr<mac::CsmaMac> mac;
  std::unique_ptr<maodv::MaodvRouter> router;
  std::unique_ptr<gossip::GossipAgent> agent;
};

int leader_count(std::vector<std::unique_ptr<Node>>& nodes) {
  int count = 0;
  for (auto& n : nodes) {
    const maodv::GroupEntry* e = n->router->group_entry(kGroup);
    if (e != nullptr && e->is_leader) ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  sim::Simulator sim{seed};

  // Squad A: nodes 0-2 around x=0; squad B: nodes 3-5 around x=240,
  // bridged while close (range 100 m, gap 80 m between squad edges).
  std::vector<mobility::Vec2> positions = {
      {0, 0}, {80, 0}, {160, 0}, {240, 0}, {320, 0}, {400, 0}};
  mobility::StaticMobility mobility{positions};

  phy::PhyParams phy;
  phy.transmission_range_m = 100.0;
  phy::Channel channel{sim, mobility, phy};

  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < positions.size(); ++i) {
    auto n = std::make_unique<Node>();
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    n->radio = std::make_unique<phy::Radio>(sim, channel, i);
    channel.attach(n->radio.get());
    n->mac = std::make_unique<mac::CsmaMac>(sim, *n->radio, channel, id,
                                            mac::MacParams{}, sim.rng().stream("mac", i));
    n->router = std::make_unique<maodv::MaodvRouter>(
        sim, *n->mac, id, aodv::AodvParams{}, maodv::MaodvParams{},
        sim.rng().stream("aodv", i));
    n->agent = std::make_unique<gossip::GossipAgent>(sim, *n->router,
                                                     gossip::GossipParams{},
                                                     sim.rng().stream("gossip", i));
    n->router->set_observer(n->agent.get());
    n->router->start();
    n->agent->start();
    nodes.push_back(std::move(n));
  }

  // Members: 0 (source, squad A) and 5 (far end of squad B).
  nodes[0]->router->join_group(kGroup);
  sim.schedule_after(sim::Duration::seconds(8.0),
                     [&] { nodes[5]->router->join_group(kGroup); });
  sim.run_until(sim::SimTime::seconds(25.0));
  std::printf("t= 25s  joined: leaders=%d (one tree spanning both squads)\n",
              leader_count(nodes));

  // Source streams one packet per second throughout.
  for (int i = 0; i < 150; ++i) {
    sim.schedule_at(sim::SimTime::seconds(25.0 + i),
                    [&] { nodes[0]->router->send_multicast(kGroup, 64); });
  }

  // t=60 s: squad B drives off — the bridge node 3 moves out of range.
  sim.schedule_at(sim::SimTime::seconds(60.0), [&] {
    mobility.move_to(3, {1240, 0});
    mobility.move_to(4, {1320, 0});
    mobility.move_to(5, {1400, 0});
  });
  sim.run_until(sim::SimTime::seconds(110.0));
  std::printf("t=110s  split:  leaders=%d (orphan partition elected its own)\n",
              leader_count(nodes));
  const auto received_at_split = nodes[5]->agent->counters().delivered_unique;

  // t=110 s: squad B returns.
  mobility.move_to(3, {240, 0});
  mobility.move_to(4, {320, 0});
  mobility.move_to(5, {400, 0});
  sim.run_until(sim::SimTime::seconds(185.0));
  std::printf("t=185s  healed: leaders=%d (group hellos crossed, trees merged)\n",
              leader_count(nodes));

  const auto& g = nodes[5]->agent->counters();
  std::printf("\nmember 5: received %llu/150 total (%llu before heal), "
              "%llu recovered via gossip after the merge\n",
              static_cast<unsigned long long>(g.delivered_unique),
              static_cast<unsigned long long>(received_at_split),
              static_cast<unsigned long long>(g.delivered_via_gossip));
  std::printf("(packets multicast while split are pulled from peers' history "
              "tables;\n losses older than the 100-entry history are gone for "
              "good — the paper's\n bounded-buffer trade-off)\n");
  return 0;
}
