// Tree inspector: runs the paper's default scenario and periodically
// dumps the multicast tree — leader, per-node upstream/branches, member
// flags, join states — plus the protocol counters that explain what the
// tree has been through. The tool we wished we had while debugging MAODV;
// shipped as an example because downstream users will want it too.
//
// Usage: tree_inspector [seed] [max_speed_mps] [range_m]
#include <cstdio>
#include <cstdlib>

#include "harness/network.h"
#include "maodv/maodv_router.h"
#include "harness/scenario.h"

using namespace ag;

namespace {

void dump_tree(harness::Network& net, double t_s) {
  std::printf("--- t=%.0fs ---\n", t_s);
  std::size_t members_attached = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const maodv::MaodvRouter* r = net.router_as<maodv::MaodvRouter>(i);
    if (r == nullptr) continue;
    const maodv::GroupEntry* e = r->group_entry(harness::kGroup);
    if (e == nullptr || (!e->on_tree() && !e->is_member)) continue;
    if (e->is_member && e->on_tree()) ++members_attached;
    std::printf("  node %2zu %s%s  leader=%-3d hops=%-5u up=%-3d branches=[",
                i, e->is_member ? "M" : " ", e->is_leader ? "L" : " ",
                e->leader.is_valid() ? static_cast<int>(e->leader.value()) : -1,
                e->hops_to_leader,
                e->upstream().is_valid() ? static_cast<int>(e->upstream().value()) : -1);
    for (net::NodeId hop : e->enabled_hops()) {
      if (hop != e->upstream()) std::printf("%u ", hop.value());
    }
    std::printf("]%s\n", e->join_state == maodv::JoinState::none
                             ? ""
                             : (e->join_state == maodv::JoinState::repairing
                                    ? "  <repairing>"
                                    : "  <joining>"));
  }
  std::printf("  members attached: %zu/%zu\n", members_attached,
              net.config().member_count());
}

void dump_counters(harness::Network& net) {
  maodv::MaodvRouter::McastCounters total;
  std::uint64_t breaks_mac = 0, breaks_hello = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const maodv::MaodvRouter* r = net.router_as<maodv::MaodvRouter>(i);
    if (r == nullptr) continue;
    const auto& c = r->mcast_counters();
    total.joins_completed += c.joins_completed;
    total.leaders_elected += c.leaders_elected;
    total.repairs_started += c.repairs_started;
    total.repairs_succeeded += c.repairs_succeeded;
    total.partitions += c.partitions;
    total.merges_initiated += c.merges_initiated;
    total.data_forwarded += c.data_forwarded;
    total.data_delivered += c.data_delivered;
    total.prunes_sent += c.prunes_sent;
    breaks_mac += r->counters().link_breaks_mac;
    breaks_hello += r->counters().link_breaks_hello;
  }
  std::printf("\nprotocol history: %llu joins, %llu leader elections, "
              "%llu/%llu repairs, %llu partitions, %llu merges, %llu prunes\n",
              static_cast<unsigned long long>(total.joins_completed),
              static_cast<unsigned long long>(total.leaders_elected),
              static_cast<unsigned long long>(total.repairs_succeeded),
              static_cast<unsigned long long>(total.repairs_started),
              static_cast<unsigned long long>(total.partitions),
              static_cast<unsigned long long>(total.merges_initiated),
              static_cast<unsigned long long>(total.prunes_sent));
  std::printf("link breaks: %llu via MAC feedback, %llu via hello timeout\n",
              static_cast<unsigned long long>(breaks_mac),
              static_cast<unsigned long long>(breaks_hello));
  std::printf("data plane: %llu forwards, %llu deliveries\n",
              static_cast<unsigned long long>(total.data_forwarded),
              static_cast<unsigned long long>(total.data_delivered));
}

}  // namespace

int main(int argc, char** argv) {
  harness::ScenarioConfig c;
  c.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  c.waypoint.max_speed_mps = argc > 2 ? std::atof(argv[2]) : 1.0;
  c.phy.transmission_range_m = argc > 3 ? std::atof(argv[3]) : 75.0;
  c.duration = sim::SimTime::seconds(300.0);
  c.workload.start = sim::SimTime::seconds(60.0);
  c.workload.end = sim::SimTime::seconds(280.0);
  c.with_protocol(harness::Protocol::maodv_gossip);

  std::printf("Tree inspector: %zu nodes, range %.0f m, vmax %.1f m/s, seed %llu\n",
              c.node_count, c.phy.transmission_range_m, c.waypoint.max_speed_mps,
              static_cast<unsigned long long>(c.seed));

  harness::Network net{c};
  for (double t : {20.0, 60.0, 150.0, 300.0}) {
    net.run_until(sim::SimTime::seconds(t));
    dump_tree(net, t);
  }
  dump_counters(net);

  const stats::RunResult r = net.result();
  const stats::Summary s = r.received_summary();
  std::printf("\nresult: %u sent, received avg %.1f [min %.0f, max %.0f], "
              "goodput %.1f%%\n",
              r.packets_sent, s.mean, s.min, s.max, r.mean_goodput_pct());
  return 0;
}
