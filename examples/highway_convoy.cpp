// Vehicular scenario (the paper's "communication between automobiles on
// highways"): vehicles on a two-lane highway exchange hazard warnings in
// a multicast group. Opposing-lane traffic makes links short-lived, so
// the multicast tree churns constantly — the regime where Anonymous
// Gossip's recovery earns its keep. Uses the HighwayMobility model and
// hand-assembled protocol stacks, demonstrating the library below the
// harness level.
//
// Usage: highway_convoy [seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "gossip/gossip_agent.h"
#include "mac/csma_mac.h"
#include "maodv/maodv_router.h"
#include "mobility/highway.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/simulator.h"

using namespace ag;

namespace {

constexpr net::GroupId kHazardGroup{1};

struct Vehicle {
  std::unique_ptr<phy::Radio> radio;
  std::unique_ptr<mac::CsmaMac> mac;
  std::unique_ptr<maodv::MaodvRouter> router;
  std::unique_ptr<gossip::GossipAgent> agent;
  std::uint64_t warnings_received{0};
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  constexpr std::size_t kVehicles = 30;
  constexpr double kSimSeconds = 180.0;

  sim::Simulator sim{seed};

  mobility::HighwayConfig highway;
  highway.length_m = 1500.0;
  highway.lanes = 2;
  highway.min_speed_mps = 22.0;  // ~80 km/h
  highway.max_speed_mps = 33.0;  // ~120 km/h
  mobility::HighwayMobility mobility{kVehicles, highway, sim.rng().stream("mobility")};

  phy::PhyParams phy;
  phy.transmission_range_m = 250.0;  // DSRC-class radio
  phy::Channel channel{sim, mobility, phy};

  gossip::GossipParams gossip_params;
  gossip_params.round_interval = sim::Duration::ms(500);  // hazard data is urgent

  std::vector<std::unique_ptr<Vehicle>> vehicles;
  for (std::size_t i = 0; i < kVehicles; ++i) {
    auto v = std::make_unique<Vehicle>();
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    v->radio = std::make_unique<phy::Radio>(sim, channel, i);
    channel.attach(v->radio.get());
    v->mac = std::make_unique<mac::CsmaMac>(sim, *v->radio, channel, id,
                                            mac::MacParams{}, sim.rng().stream("mac", i));
    v->router = std::make_unique<maodv::MaodvRouter>(sim, *v->mac, id,
                                                     aodv::AodvParams{},
                                                     maodv::MaodvParams{},
                                                     sim.rng().stream("aodv", i));
    v->agent = std::make_unique<gossip::GossipAgent>(sim, *v->router, gossip_params,
                                                     sim.rng().stream("gossip", i));
    v->router->set_observer(v->agent.get());
    Vehicle* raw = v.get();
    v->agent->set_deliver([raw](const net::MulticastData&, bool) {
      ++raw->warnings_received;
    });
    v->router->start();
    v->agent->start();
    vehicles.push_back(std::move(v));
  }

  // Every vehicle subscribes to hazard warnings, staggered over 3 s.
  for (std::size_t i = 0; i < kVehicles; ++i) {
    sim.schedule_after(sim::Duration::ms(100 * static_cast<std::int64_t>(i)),
                       [&vehicles, i] { vehicles[i]->router->join_group(kHazardGroup); });
  }

  // Vehicle 0 spots black ice and broadcasts a warning burst every 2 s.
  constexpr int kWarnings = 60;
  for (int w = 0; w < kWarnings; ++w) {
    sim.schedule_at(sim::SimTime::seconds(30.0 + 2.0 * w), [&vehicles] {
      vehicles[0]->router->send_multicast(kHazardGroup, 48);
    });
  }

  sim.run_until(sim::SimTime::seconds(kSimSeconds));

  std::printf("Highway convoy: %zu vehicles, %d hazard warnings multicast\n\n",
              kVehicles, kWarnings);
  std::uint64_t total = 0, min = kWarnings, recovered = 0, repairs = 0;
  for (std::size_t i = 1; i < kVehicles; ++i) {
    total += vehicles[i]->warnings_received;
    if (vehicles[i]->warnings_received < min) min = vehicles[i]->warnings_received;
    recovered += vehicles[i]->agent->counters().delivered_via_gossip;
    repairs += vehicles[i]->router->mcast_counters().repairs_started;
  }
  std::printf("mean warnings received %.1f / %d, worst vehicle %llu, "
              "%llu recovered by gossip, %llu tree repairs\n",
              static_cast<double>(total) / (kVehicles - 1), kWarnings,
              static_cast<unsigned long long>(min),
              static_cast<unsigned long long>(recovered),
              static_cast<unsigned long long>(repairs));
  std::printf("\n(opposing-lane links break every few seconds at a 55 m/s closing "
              "speed;\n gossip backfills what the tree drops mid-repair)\n");
  return 0;
}
