// Unit coverage for the user-session multiplexer: staggered subscribes
// (the per-packet eligibility denominator), duty-cycle wake windows, and
// the served-credit rule (awake now, or waking within the wake TTL).
#include <gtest/gtest.h>

#include <cstddef>

#include "session/session_manager.h"

namespace ag::session {
namespace {

SessionParams params(std::uint32_t per_node, double duty,
                     double spread_s = 0.0, double wake_ttl_s = 0.0) {
  SessionParams p;
  p.per_node = per_node;
  p.duty = duty;
  p.period_s = 60.0;
  p.subscribe_spread_s = spread_s;
  p.wake_ttl_s = wake_ttl_s;
  return p;
}

net::MulticastData sent_at(double t_s) {
  net::MulticastData d;
  d.group = net::GroupId{1};
  d.origin = net::NodeId{0};
  d.seq = 0;
  d.sent_at = sim::SimTime::seconds(t_s);
  return d;
}

sim::SimTime at(double s) { return sim::SimTime::seconds(s); }

TEST(SessionManager, ZeroSpreadMakesEveryoneEligibleImmediately) {
  SessionManager sm{params(50, 1.0), sim::Rng{1}};
  EXPECT_EQ(sm.session_count(), 50u);
  EXPECT_EQ(sm.eligible_at(at(0.0)), 50u);
}

TEST(SessionManager, SpreadStaggersEligibilityMonotonically) {
  SessionManager sm{params(200, 1.0, /*spread_s=*/40.0), sim::Rng{7}};
  const std::uint64_t early = sm.eligible_at(at(1.0));
  const std::uint64_t mid = sm.eligible_at(at(20.0));
  const std::uint64_t late = sm.eligible_at(at(40.0));
  EXPECT_LE(early, mid);
  EXPECT_LE(mid, late);
  EXPECT_EQ(late, 200u);            // spread is [0, 40): all in by t=40
  EXPECT_LT(early, 200u);           // but not all at t=1
  EXPECT_GT(mid, 0u);               // and roughly half-way by t=20
}

TEST(SessionManager, FullDutyIsAlwaysAwake) {
  SessionManager sm{params(20, 1.0), sim::Rng{3}};
  for (std::size_t s = 0; s < 20; ++s) {
    for (double t : {0.0, 13.7, 59.9, 60.0, 123.4}) {
      EXPECT_TRUE(sm.awake(s, at(t)));
      EXPECT_DOUBLE_EQ(sm.next_wake_in_s(s, at(t)), 0.0);
    }
  }
}

TEST(SessionManager, DutyCycleAwakeFractionTracksDuty) {
  // Phases are uniform over the period, so at any instant about
  // duty*sessions are awake (stddev ~ sqrt(n*d*(1-d)) ~ 6 for n=200).
  SessionManager sm{params(200, 0.25), sim::Rng{11}};
  std::size_t awake = 0;
  for (std::size_t s = 0; s < 200; ++s) {
    if (sm.awake(s, at(100.0))) ++awake;
  }
  EXPECT_GT(awake, 25u);
  EXPECT_LT(awake, 75u);
}

TEST(SessionManager, NextWakeIsConsistentWithAwake) {
  SessionManager sm{params(100, 0.3), sim::Rng{5}};
  for (std::size_t s = 0; s < 100; ++s) {
    const sim::SimTime t = at(42.0);
    if (sm.awake(s, t)) {
      EXPECT_DOUBLE_EQ(sm.next_wake_in_s(s, t), 0.0);
    } else {
      const double wait = sm.next_wake_in_s(s, t);
      EXPECT_GT(wait, 0.0);
      EXPECT_LE(wait, 60.0);
      // Just past the predicted wake instant the session is awake.
      EXPECT_TRUE(sm.awake(s, at(42.0 + wait + 1e-6))) << "session " << s;
    }
  }
}

TEST(SessionManager, ServedCreditsExactlyTheAwakeSessions) {
  SessionManager sm{params(150, 0.25), sim::Rng{9}};
  const sim::SimTime now = at(77.0);
  std::uint64_t awake = 0;
  for (std::size_t s = 0; s < 150; ++s) {
    if (sm.awake(s, now)) ++awake;
  }
  sm.on_unique_delivery(sent_at(10.0), now);  // wake_ttl = 0: awake only
  EXPECT_EQ(sm.users_served(), awake);
}

TEST(SessionManager, WakeTtlCreditsSoonWakingSessions) {
  // A full period of wake TTL means every subscribed session is credited
  // no matter where it is in its sleep cycle.
  SessionManager sm{params(80, 0.1, 0.0, /*wake_ttl_s=*/60.0), sim::Rng{13}};
  sm.on_unique_delivery(sent_at(5.0), at(30.0));
  EXPECT_EQ(sm.users_served(), 80u);
}

TEST(SessionManager, LateSubscribersNotCreditedForOldPackets) {
  // All sessions subscribe in (0, 40); a packet sourced at t=0 predates
  // every one of them, so nobody is credited — while a late packet
  // credits everyone (duty 1.0).
  SessionManager sm{params(60, 1.0, /*spread_s=*/40.0), sim::Rng{17}};
  sm.on_unique_delivery(sent_at(0.0), at(50.0));
  const std::uint64_t early_credit = sm.users_served();
  EXPECT_EQ(early_credit, sm.eligible_at(at(0.0)));
  sm.on_unique_delivery(sent_at(45.0), at(50.0));
  EXPECT_EQ(sm.users_served() - early_credit, 60u);
}

TEST(SessionManager, DeterministicForEqualSeeds) {
  SessionManager a{params(100, 0.5, 30.0, 10.0), sim::Rng{21}};
  SessionManager b{params(100, 0.5, 30.0, 10.0), sim::Rng{21}};
  a.on_unique_delivery(sent_at(10.0), at(35.0));
  b.on_unique_delivery(sent_at(10.0), at(35.0));
  EXPECT_EQ(a.users_served(), b.users_served());
  EXPECT_EQ(a.eligible_at(at(20.0)), b.eligible_at(at(20.0)));
}

}  // namespace
}  // namespace ag::session
