// ODMRP mesh multicast: query floods, join replies, forwarding-group soft
// state, data distribution, mesh redundancy and Anonymous Gossip layered
// over the mesh (the paper's section 5.5 proposal).
#include "odmrp/odmrp_router.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gossip/gossip_agent.h"
#include "mobility/static_mobility.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/simulator.h"

namespace ag::odmrp {
namespace {

const net::GroupId kG{1};

struct Node {
  std::unique_ptr<phy::Radio> radio;
  std::unique_ptr<mac::CsmaMac> mac;
  std::unique_ptr<OdmrpRouter> router;
  std::unique_ptr<gossip::GossipAgent> agent;
};

class OdmrpNetwork {
 public:
  explicit OdmrpNetwork(std::vector<mobility::Vec2> positions, bool gossip_on = false,
                        double range = 100.0, std::uint64_t seed = 5)
      : sim_{seed},
        mobility_{std::move(positions)},
        channel_{sim_, mobility_, phy::PhyParams{range, 2e6, 192.0, 3e8}} {
    gossip::GossipParams gp;
    gp.enabled = gossip_on;
    gp.p_anon = 1.0;  // walks only: exercises the mesh adapter
    for (std::size_t i = 0; i < mobility_.node_count(); ++i) {
      auto n = std::make_unique<Node>();
      const net::NodeId id{static_cast<std::uint32_t>(i)};
      n->radio = std::make_unique<phy::Radio>(sim_, channel_, i);
      channel_.attach(n->radio.get());
      n->mac = std::make_unique<mac::CsmaMac>(sim_, *n->radio, channel_, id,
                                              mac::MacParams{},
                                              sim_.rng().stream("mac", i));
      n->router = std::make_unique<OdmrpRouter>(sim_, *n->mac, id, aodv::AodvParams{},
                                                OdmrpParams{},
                                                sim_.rng().stream("aodv", i));
      n->agent = std::make_unique<gossip::GossipAgent>(sim_, *n->router, gp,
                                                       sim_.rng().stream("gossip", i));
      n->router->set_observer(n->agent.get());
      n->router->start();
      n->agent->start();
      nodes_.push_back(std::move(n));
    }
  }

  void run_for(double seconds) {
    sim_.run_until(sim_.now() + sim::Duration::seconds(seconds));
  }
  OdmrpRouter& router(std::size_t i) { return *nodes_[i]->router; }
  gossip::GossipAgent& agent(std::size_t i) { return *nodes_[i]->agent; }

  sim::Simulator sim_;
  mobility::StaticMobility mobility_;
  phy::Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

std::vector<mobility::Vec2> line(std::size_t n, double spacing = 80.0) {
  std::vector<mobility::Vec2> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<double>(i) * spacing, 0.0});
  }
  return out;
}

TEST(Odmrp, QueryFloodBuildsForwardingGroupAndDelivers) {
  OdmrpNetwork net{line(4)};
  net.router(0).join_group(kG);
  net.router(3).join_group(kG);
  net.run_for(1.0);
  net.router(0).send_multicast(kG, 64);  // triggers the first Join Query
  net.run_for(4.0);                      // query + reply + FG establishment
  // Interior nodes joined the forwarding group; the first packet may
  // predate the mesh, so send another.
  EXPECT_TRUE(net.router(1).is_forwarding(kG));
  EXPECT_TRUE(net.router(2).is_forwarding(kG));
  net.router(0).send_multicast(kG, 64);
  net.run_for(2.0);
  EXPECT_GE(net.agent(3).counters().delivered_unique, 1u);
}

TEST(Odmrp, MembersDoNotForwardUnlessOnPath) {
  OdmrpNetwork net{line(3)};
  net.router(0).join_group(kG);
  net.router(2).join_group(kG);
  net.run_for(1.0);
  net.router(0).send_multicast(kG, 64);
  net.run_for(4.0);
  // Node 2 is a leaf member: it receives but has no reason to forward.
  net.router(0).send_multicast(kG, 64);
  net.run_for(2.0);
  EXPECT_FALSE(net.router(2).is_forwarding(kG));
  EXPECT_EQ(net.router(2).odmrp_counters().data_forwarded, 0u);
  EXPECT_GE(net.agent(2).counters().delivered_unique, 1u);
}

TEST(Odmrp, ForwardingStateExpiresWithoutRefresh) {
  OdmrpNetwork net{line(4)};
  net.router(0).join_group(kG);
  net.router(3).join_group(kG);
  net.run_for(1.0);
  net.router(0).send_multicast(kG, 64);
  net.run_for(4.0);
  ASSERT_TRUE(net.router(1).is_forwarding(kG));
  // Source falls silent: queries stop after source_linger, FG_FLAG times
  // out after fg_timeout.
  net.run_for(20.0);
  EXPECT_FALSE(net.router(1).is_forwarding(kG));
}

TEST(Odmrp, QueriesStopAfterSourceGoesIdle) {
  OdmrpNetwork net{line(3)};
  net.router(0).join_group(kG);
  net.router(2).join_group(kG);
  net.run_for(1.0);
  net.router(0).send_multicast(kG, 64);
  net.run_for(20.0);
  const std::uint64_t queries = net.router(0).odmrp_counters().queries_sent;
  net.run_for(10.0);
  EXPECT_EQ(net.router(0).odmrp_counters().queries_sent, queries);
}

TEST(Odmrp, ContinuousTrafficDeliversReliablyOnStaticMesh) {
  OdmrpNetwork net{line(5)};
  net.router(0).join_group(kG);
  net.router(4).join_group(kG);
  net.run_for(1.0);
  for (int i = 0; i < 30; ++i) {
    net.sim_.schedule_after(sim::Duration::ms(500 * i),
                            [&net] { net.router(0).send_multicast(kG, 64); });
  }
  net.run_for(25.0);
  // The very first packets race the mesh construction; everything after
  // the first refresh round must arrive.
  EXPECT_GE(net.agent(4).counters().delivered_unique, 28u);
}

TEST(Odmrp, MeshHealsAroundFailedRelayOnRefresh) {
  // 0 - (1 | 4) - 2: two possible relays between source 0 and member 2.
  std::vector<mobility::Vec2> pos = {{0, 0}, {80, 0}, {160, 0}, {0, 0}, {80, 60}};
  pos.erase(pos.begin() + 3);  // nodes: 0,1,2 on a line, 3 parallel at (80,60)
  OdmrpNetwork net{pos};
  net.router(0).join_group(kG);
  net.router(2).join_group(kG);
  net.run_for(1.0);
  for (int i = 0; i < 60; ++i) {
    net.sim_.schedule_after(sim::Duration::ms(500 * i),
                            [&net] { net.router(0).send_multicast(kG, 64); });
  }
  net.run_for(10.0);
  const auto before = net.agent(2).counters().delivered_unique;
  EXPECT_GT(before, 10u);
  // Kill whichever relay is active; the next query flood re-selects.
  net.mobility_.move_to(1, {5000, 0});
  net.run_for(20.0);
  const auto after = net.agent(2).counters().delivered_unique;
  EXPECT_GT(after, before + 20u) << "mesh must re-form through node 3";
}

TEST(Odmrp, MeshNeighborsExposedToGossipAdapter) {
  OdmrpNetwork net{line(4)};
  net.router(0).join_group(kG);
  net.router(3).join_group(kG);
  net.run_for(1.0);
  net.router(0).send_multicast(kG, 64);
  net.run_for(4.0);
  // Interior FG node 1 must know mesh peers on both sides.
  EXPECT_TRUE(net.router(1).on_tree(kG));
  EXPECT_GE(net.router(1).mesh_neighbors(kG).size(), 2u);
  // The member's mesh view contains its forwarding neighbor.
  auto peers = net.router(3).tree_neighbors(kG);
  EXPECT_FALSE(peers.empty());
}

TEST(Odmrp, UnicastRoutingInheritedFromAodv) {
  OdmrpNetwork net{line(3)};
  net.run_for(1.0);
  bool delivered = false;
  net.router(2).set_local_deliver(
      [&](const net::Packet&, net::NodeId) { delivered = true; });
  gossip::GossipReplyMsg probe;
  probe.group = kG;
  probe.responder = net::NodeId{0};
  net.router(0).unicast(net::NodeId{2}, probe);
  net.run_for(3.0);
  EXPECT_TRUE(delivered);
}

TEST(Odmrp, GossipOverMeshRecoversInjectedLoss) {
  OdmrpNetwork net{line(4), /*gossip_on=*/true};
  net.router(0).join_group(kG);
  net.router(2).join_group(kG);
  net.router(3).join_group(kG);
  net.run_for(1.0);
  // Warm the mesh first.
  net.router(0).send_multicast(kG, 64);
  net.run_for(4.0);
  // Every second frame into node 3 vanishes.
  int counter = 0;
  net.channel_.set_drop_hook([&counter](std::size_t, std::size_t to) {
    return to == 3 && (++counter % 2) == 0;
  });
  for (int i = 0; i < 40; ++i) {
    net.sim_.schedule_after(sim::Duration::ms(200 * i),
                            [&net] { net.router(0).send_multicast(kG, 64); });
  }
  net.run_for(60.0);
  // 41 packets total (1 warmup + 40): gossip walks over the mesh plus
  // unicast replies must fill every hole the lossy link created.
  EXPECT_EQ(net.agent(3).counters().delivered_unique, 41u);
  EXPECT_GT(net.agent(3).counters().delivered_via_gossip, 0u);
}

TEST(Odmrp, DataDeduplicated) {
  OdmrpNetwork net{line(3)};
  net.router(0).join_group(kG);
  net.router(2).join_group(kG);
  net.run_for(1.0);
  net.router(0).send_multicast(kG, 64);
  net.run_for(4.0);
  net.router(0).send_multicast(kG, 64);
  net.run_for(3.0);
  EXPECT_EQ(net.agent(2).counters().duplicates, 0u);
}

}  // namespace
}  // namespace ag::odmrp
