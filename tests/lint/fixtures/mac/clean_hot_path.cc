// Fixture: hot-path (mac/) file that follows every rule — must lint
// clean. Pins the false-positive guards: deleted members, "new" in
// comments/strings, member calls containing "time(", ordered containers.
#include <map>
#include <memory>
#include <vector>

namespace fixture {

struct Frame {
  int id;
};

struct CleanQueue {
  // raw `new Packet` would be flagged here; shared ownership is fine:
  std::vector<std::shared_ptr<const Frame>> in_flight;
  std::map<int, int> last_seq;  // ordered: iteration order is stable

  double airtime_of(const Frame&) const { return 0.0; }  // not time()

  CleanQueue(const CleanQueue&) = delete;  // declaration, not deallocation
  CleanQueue& operator=(const CleanQueue&) = delete;
  CleanQueue() = default;
};

}  // namespace fixture
