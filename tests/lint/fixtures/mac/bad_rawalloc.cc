// Fixture: lives under a mac/ path component, so the `rawalloc`
// hot-path rule applies — raw allocation must be flagged.
namespace fixture {

struct Packet {
  int bytes[64];
};

struct BadQueue {
  Packet* slot{nullptr};

  void push() {
    slot = new Packet();  // flagged: raw new in the hot path
  }
  void pop() {
    delete slot;  // flagged: raw delete in the hot path
    slot = nullptr;
  }

  // Deleted members are declarations, not allocation — must NOT fire:
  BadQueue(const BadQueue&) = delete;
  BadQueue& operator=(const BadQueue&) = delete;
  BadQueue() = default;
};

}  // namespace fixture
