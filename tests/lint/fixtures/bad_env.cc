// Fixture: the `env` rule must fire on getenv/setenv outside
// src/sim/env.h — AG_* knobs are parsed in exactly one place.
#include <cstdlib>

namespace fixture {

inline bool bad_knob() {
  const char* v = std::getenv("AG_MY_KNOB");  // flagged
  setenv("AG_MY_KNOB", "off", 1);             // flagged
  return v != nullptr;
}

}  // namespace fixture
