// Fixture: the `unordered` rule must fire on hash-map containers whose
// iteration order can leak into simulation results.
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct SeenTable {
  // Both of these must be flagged; a commented-out std::unordered_map
  // and the "std::unordered_set" inside this string must NOT be:
  const char* doc = "std::unordered_set is banned";
  std::unordered_map<int, int> seq_by_node;
  std::unordered_set<long> seen;
};

}  // namespace fixture
