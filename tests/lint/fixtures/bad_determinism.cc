// Fixture: the `determinism` rule must fire on every ambient
// randomness/wall-clock source (simulation randomness comes from
// sim::RngFactory streams, time from the sim clock).
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

inline int bad_sources() {
  std::random_device rd;                       // flagged
  std::srand(42);                              // flagged
  int r = std::rand();                         // flagged (qualified form)
  r += rand();                                 // flagged
  long t = time(nullptr);                      // flagged
  auto wall = std::chrono::steady_clock::now();  // flagged
  (void)wall;
  (void)rd;
  // airtime_of(frame) and run.time() style member calls must NOT match:
  // handled by lookbehind — see clean usage below.
  return r + static_cast<int>(t);
}

struct Clocked {
  double airtime_of(int) { return 0.0; }  // "time(" substring, clean
};

}  // namespace fixture
