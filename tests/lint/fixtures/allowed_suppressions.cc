// Fixture: every violation below carries an ag-lint allow annotation
// with a reason, so the file must lint clean — this pins the
// suppression mechanism itself (same-line, next-line, and file forms).
#include <cstdlib>
#include <unordered_map>

// ag-lint: allow-file(determinism, fixture exercising the file-wide form)
#include <chrono>

namespace fixture {

struct Allowed {
  // ag-lint: allow(unordered, reference backend kept for A/B bisection)
  std::unordered_map<int, int> reference_backend;

  long wall() {
    // covered by the allow-file(determinism) above
    return std::chrono::steady_clock::now().time_since_epoch().count();
  }

  bool knob() {
    const char* v = std::getenv("AG_FIXTURE");  // ag-lint: allow(env, fixture A/B toggle)
    return v != nullptr;
  }
};

}  // namespace fixture
