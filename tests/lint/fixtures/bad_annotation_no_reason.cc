// Fixture: an allow annotation without a reason is itself a finding
// (`annotation`) and does NOT suppress — the unordered use below must
// still be flagged.
#include <unordered_map>

namespace fixture {

struct Unjustified {
  // ag-lint: allow(unordered)
  std::unordered_map<int, int> table;
};

}  // namespace fixture
