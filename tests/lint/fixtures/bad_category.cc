// Fixture: the `category` rule must fire on schedule/Timer call sites
// that do not pass an explicit sim::EventCategory (and do not forward a
// `category` parameter).
namespace fixture {

struct Sim {
  template <typename A, typename F>
  int schedule_after(A, F) { return 0; }
  template <typename A, typename F, typename C>
  int schedule_after(A, F, C) { return 0; }
};

inline void bad(Sim& sim) {
  sim.schedule_after(10, [] {});  // flagged: no category argument
}

struct HasTimer {
  Sim& sim;
  int beacon_timer_;
  // flagged: timer member constructed without a category
  explicit HasTimer(Sim& s) : sim{s}, beacon_timer_{0} {}
};

}  // namespace fixture
