// Property-style sweeps (TEST_P over seeds): structural invariants that
// must hold for any random scenario, not just hand-picked topologies.
#include <gtest/gtest.h>

#include "harness/network.h"
#include "harness/scenario.h"
#include "testutil/stack_fixture.h"

namespace ag {
namespace {

using harness::kGroup;

class SeededScenario : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  harness::ScenarioConfig config() const {
    harness::ScenarioConfig c;
    c.seed = GetParam();
    c.node_count = 20;
    c.phy.transmission_range_m = 70.0;
    c.waypoint.max_speed_mps = 1.0;
    c.duration = sim::SimTime::seconds(90.0);
    c.workload.start = sim::SimTime::seconds(20.0);
    c.workload.end = sim::SimTime::seconds(80.0);
    return c;
  }
};

TEST_P(SeededScenario, SinkNeverSeesDuplicatesOrPhantoms) {
  harness::ScenarioConfig c = config();
  c.with_protocol(harness::Protocol::maodv_gossip);
  harness::Network net{c};
  net.run();
  const std::uint32_t sent = net.packets_sent();
  for (std::size_t i = 1; i < c.member_count(); ++i) {
    // The sink counts the agent's deduplicated deliveries; they can never
    // exceed what the source emitted.
    EXPECT_LE(net.sink(i)->received(), sent);
    // And the agent's own accounting must agree with the sink's.
    EXPECT_EQ(net.sink(i)->received(), net.agent(i).counters().delivered_unique);
  }
}

TEST_P(SeededScenario, GossipRepliesNeverExceedRequestsServed) {
  harness::ScenarioConfig c = config();
  c.with_protocol(harness::Protocol::maodv_gossip);
  harness::Network net{c};
  net.run();
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const auto& g = net.agent(i).counters();
    EXPECT_LE(g.replies_sent,
              g.requests_handled * net.agent(i).params().reply_budget);
    EXPECT_LE(g.replies_useful, g.replies_received);
  }
}

TEST_P(SeededScenario, TreeSettlesToSingleUpstreamPerNode) {
  harness::ScenarioConfig c = config();
  c.waypoint.max_speed_mps = 0.0;  // static topology after placement
  c.with_protocol(harness::Protocol::maodv);
  harness::Network net{c};
  net.run_until(sim::SimTime::seconds(60.0));
  int leaders = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const maodv::GroupEntry* e = net.router_as<maodv::MaodvRouter>(i)->group_entry(kGroup);
    if (e == nullptr || !e->on_tree()) continue;
    if (e->is_leader) {
      ++leaders;
      EXPECT_FALSE(e->upstream().is_valid()) << "leader must have no upstream";
    }
    // At most one activated upstream hop (single-parent invariant).
    int upstreams = 0;
    for (const auto& h : e->next_hops) {
      if (h.enabled && h.upstream) ++upstreams;
    }
    EXPECT_LE(upstreams, 1);
  }
  EXPECT_GE(leaders, 1);
}

TEST_P(SeededScenario, StaticConnectedNetworkConvergesToOneLeader) {
  harness::ScenarioConfig c = config();
  c.waypoint.max_speed_mps = 0.0;
  c.phy.transmission_range_m = 90.0;  // dense: very likely connected
  c.with_protocol(harness::Protocol::maodv);
  harness::Network net{c};
  net.run_until(sim::SimTime::seconds(80.0));
  int leaders = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    const maodv::GroupEntry* e = net.router_as<maodv::MaodvRouter>(i)->group_entry(kGroup);
    if (e != nullptr && e->is_leader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST_P(SeededScenario, MemberDeliveryCountsAreMonotoneInProtocol) {
  // AG = MAODV + recovery, so per-run mean delivery must not get worse.
  harness::ScenarioConfig c = config();
  c.with_protocol(harness::Protocol::maodv);
  const double plain = harness::run_scenario(c).received_summary().mean;
  c.with_protocol(harness::Protocol::maodv_gossip);
  const double gossip = harness::run_scenario(c).received_summary().mean;
  EXPECT_GE(gossip, plain * 0.95);  // tolerate tiny noise from extra traffic
}

TEST_P(SeededScenario, ChannelCountsConsistent) {
  harness::ScenarioConfig c = config();
  c.with_protocol(harness::Protocol::maodv_gossip);
  harness::Network net{c};
  net.run();
  const stats::RunResult r = net.result();
  // Every MAC transmission goes over the channel exactly once (data +
  // broadcast + acks); channel count can only exceed MAC data counts.
  EXPECT_GE(r.totals.channel_transmissions,
            r.totals.mac_unicast + r.totals.mac_broadcast);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededScenario,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace ag
