// Test utility: assembles full protocol stacks (radio/MAC/router/gossip)
// on a hand-placed static topology, so routing and gossip tests can build
// lines, grids and the paper's Fig. 1 tree deterministically. Routers are
// built through the harness ProtocolRegistry — the same factories the
// Network uses — so any registered protocol can be exercised on a static
// topology by setting StackOptions::protocol.
#ifndef AG_TESTS_TESTUTIL_STACK_FIXTURE_H
#define AG_TESTS_TESTUTIL_STACK_FIXTURE_H

#include <memory>
#include <stdexcept>
#include <vector>

#include "gossip/gossip_agent.h"
#include "harness/protocol_registry.h"
#include "mac/csma_mac.h"
#include "maodv/maodv_router.h"
#include "mobility/static_mobility.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/simulator.h"

namespace ag::testutil {

inline constexpr net::GroupId kGroup{1};

struct StackOptions {
  double range_m{100.0};
  std::uint64_t seed{42};
  harness::Protocol protocol{harness::Protocol::maodv_gossip};
  bool gossip_enabled{true};
  gossip::GossipParams gossip{};
  aodv::AodvParams aodv{};
  maodv::MaodvParams maodv{};
  odmrp::OdmrpParams odmrp{};
};

class StaticNetwork {
 public:
  StaticNetwork(std::vector<mobility::Vec2> positions, StackOptions options = {})
      : sim_{options.seed},
        mobility_{std::move(positions)},
        channel_{sim_, mobility_, phy::PhyParams{options.range_m, 2e6, 192.0, 3e8}} {
    const harness::ProtocolEntry& entry =
        harness::ProtocolRegistry::instance().entry(options.protocol);
    config_.protocol = options.protocol;
    config_.seed = options.seed;
    config_.aodv = options.aodv;
    config_.maodv = options.maodv;
    config_.odmrp = options.odmrp;
    config_.gossip = options.gossip;
    config_.gossip.enabled = options.gossip_enabled && entry.gossip_capable;
    const std::size_t n = mobility_.node_count();
    for (std::size_t i = 0; i < n; ++i) {
      auto node = std::make_unique<Node>();
      const net::NodeId id{static_cast<std::uint32_t>(i)};
      node->radio = std::make_unique<phy::Radio>(sim_, channel_, i);
      channel_.attach(node->radio.get());
      node->mac = std::make_unique<mac::CsmaMac>(sim_, *node->radio, channel_, id,
                                                 mac::MacParams{},
                                                 sim_.rng().stream("mac", i));
      node->router = harness::ProtocolRegistry::instance().build(
          harness::RouterContext{sim_, *node->mac, id, i, config_});
      node->agent = std::make_unique<gossip::GossipAgent>(
          sim_, *node->router, config_.gossip, sim_.rng().stream("gossip", i));
      node->router->set_observer(node->agent.get());
      node->router->start();
      node->agent->start();
      nodes_.push_back(std::move(node));
    }
  }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] phy::Channel& channel() { return channel_; }
  [[nodiscard]] mobility::StaticMobility& mobility() { return mobility_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  // The protocol-agnostic router surface (join/leave/send/adapter).
  [[nodiscard]] harness::MulticastRouter& multicast_router(std::size_t i) {
    return *nodes_[i]->router;
  }
  // Typed view; nullptr when node i's router is a different type.
  template <typename Router>
  [[nodiscard]] Router* router_as(std::size_t i) {
    return dynamic_cast<Router*>(nodes_[i]->router.get());
  }
  // MAODV view — the fixture's historical accessor; valid only for the
  // (default) maodv-family protocols.
  [[nodiscard]] maodv::MaodvRouter& router(std::size_t i) {
    maodv::MaodvRouter* r = router_as<maodv::MaodvRouter>(i);
    if (r == nullptr) {
      throw std::logic_error("StaticNetwork::router(i) requires a "
                             "maodv-family protocol; use router_as<T>");
    }
    return *r;
  }
  [[nodiscard]] gossip::GossipAgent& agent(std::size_t i) { return *nodes_[i]->agent; }
  [[nodiscard]] mac::CsmaMac& mac(std::size_t i) { return *nodes_[i]->mac; }

  void run_for(double seconds) {
    sim_.run_until(sim_.now() + sim::Duration::seconds(seconds));
  }

  // Joins each listed node to the test group, spaced 100 ms apart, then
  // settles the tree/mesh.
  void join_all(const std::vector<std::size_t>& members, double settle_s = 10.0) {
    double delay = 0.0;
    for (std::size_t m : members) {
      sim_.schedule_after(sim::Duration::seconds(delay),
                          [this, m] { multicast_router(m).join_group(kGroup); });
      delay += 0.1;
    }
    run_for(settle_s);
  }

  // True when every listed member reports itself on the distribution
  // structure (tree or mesh) through the protocol-agnostic adapter.
  [[nodiscard]] bool all_on_tree(const std::vector<std::size_t>& members) {
    for (std::size_t m : members) {
      if (!multicast_router(m).on_tree(kGroup)) return false;
    }
    return true;
  }

  // Number of distinct leaders currently claimed (MAODV-family only).
  [[nodiscard]] int leader_count() {
    int count = 0;
    for (std::size_t i = 0; i < size(); ++i) {
      const maodv::MaodvRouter* r = router_as<maodv::MaodvRouter>(i);
      if (r == nullptr) continue;
      const maodv::GroupEntry* e = r->group_entry(kGroup);
      if (e != nullptr && e->is_leader) ++count;
    }
    return count;
  }

 private:
  struct Node {
    std::unique_ptr<phy::Radio> radio;
    std::unique_ptr<mac::CsmaMac> mac;
    std::unique_ptr<harness::MulticastRouter> router;
    std::unique_ptr<gossip::GossipAgent> agent;
  };

  harness::ScenarioConfig config_;
  sim::Simulator sim_;
  mobility::StaticMobility mobility_;
  phy::Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

// Positions for a line of n nodes spaced `spacing` meters apart.
inline std::vector<mobility::Vec2> line_positions(std::size_t n, double spacing) {
  std::vector<mobility::Vec2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<double>(i) * spacing, 0.0});
  }
  return out;
}

}  // namespace ag::testutil

#endif  // AG_TESTS_TESTUTIL_STACK_FIXTURE_H
