// AODV routing behaviour on hand-built static topologies.
#include <gtest/gtest.h>

#include <vector>

#include "testutil/stack_fixture.h"

namespace ag::aodv {
namespace {

using testutil::StaticNetwork;
using testutil::line_positions;

net::Packet routed_probe(std::uint32_t src, std::uint32_t dst) {
  // A gossip reply doubles as a generic routed unicast payload.
  net::Packet p;
  p.src = net::NodeId{src};
  p.dst = net::NodeId{dst};
  gossip::GossipReplyMsg reply;
  reply.group = testutil::kGroup;
  reply.responder = net::NodeId{src};
  reply.data.origin = net::NodeId{src};
  reply.data.seq = 1;
  p.payload = reply;
  return p;
}

// Captures packets that reach a node's local-delivery hook.
struct Capture {
  std::vector<net::Packet> packets;
  void attach(maodv::MaodvRouter& router) {
    router.set_local_deliver(
        [this](const net::Packet& pkt, net::NodeId) { packets.push_back(pkt); });
  }
};

TEST(AodvRouter, DiscoversMultiHopRouteAndDelivers) {
  // 5 nodes, 80 m apart, 100 m range: only adjacent nodes hear each other.
  StaticNetwork net{line_positions(5, 80.0)};
  Capture at4;
  at4.attach(net.router(4));
  net.run_for(1.0);  // let hellos populate neighbor tables

  net.router(0).send_unicast(routed_probe(0, 4));
  net.run_for(5.0);

  ASSERT_EQ(at4.packets.size(), 1u);
  EXPECT_GE(net.router(0).counters().rreq_originated, 1u);
  const RouteEntry* route = net.router(0).route_table().find(net::NodeId{4});
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->hops, 4);
  EXPECT_EQ(route->next_hop, net::NodeId{1});
}

TEST(AodvRouter, SecondSendUsesCachedRoute) {
  StaticNetwork net{line_positions(3, 80.0)};
  Capture at2;
  at2.attach(net.router(2));
  net.run_for(1.0);
  net.router(0).send_unicast(routed_probe(0, 2));
  net.run_for(3.0);
  const std::uint64_t rreqs_after_first = net.router(0).counters().rreq_originated;
  net.router(0).send_unicast(routed_probe(0, 2));
  net.run_for(1.0);
  EXPECT_EQ(at2.packets.size(), 2u);
  EXPECT_EQ(net.router(0).counters().rreq_originated, rreqs_after_first);
}

TEST(AodvRouter, DiscoveryToNonexistentNodeFailsAfterRetries) {
  StaticNetwork net{line_positions(3, 80.0)};
  net.run_for(1.0);
  net.router(0).send_unicast(routed_probe(0, 77));  // no such node
  net.run_for(15.0);
  EXPECT_EQ(net.router(0).counters().discovery_failures, 1u);
  EXPECT_GE(net.router(0).counters().rreq_originated,
            1u + net.router(0).params().rreq_retries);
  EXPECT_GT(net.router(0).counters().no_route_drops, 0u);
}

TEST(AodvRouter, HelloBeaconsPopulateNeighborTables) {
  StaticNetwork net{line_positions(3, 80.0)};
  net.run_for(2.0);
  EXPECT_TRUE(net.router(1).neighbors().contains(net::NodeId{0}));
  EXPECT_TRUE(net.router(1).neighbors().contains(net::NodeId{2}));
  EXPECT_FALSE(net.router(0).neighbors().contains(net::NodeId{2}));  // 160 m away
  // Hellos also install 1-hop routes.
  EXPECT_NE(net.router(1).route_table().find_valid(net::NodeId{0}, net.sim().now()),
            nullptr);
}

TEST(AodvRouter, NeighborTimeoutAfterNodeMovesAway) {
  StaticNetwork net{line_positions(2, 50.0)};
  net.run_for(2.0);
  ASSERT_TRUE(net.router(0).neighbors().contains(net::NodeId{1}));
  net.mobility().move_to(1, {5000.0, 0.0});
  net.run_for(5.0);  // > allowed_hello_loss * hello_interval
  EXPECT_FALSE(net.router(0).neighbors().contains(net::NodeId{1}));
  EXPECT_GT(net.router(0).counters().link_breaks_hello, 0u);
}

TEST(AodvRouter, BrokenRouteIsInvalidatedAndRediscovered) {
  StaticNetwork net{line_positions(4, 80.0)};
  Capture at3;
  at3.attach(net.router(3));
  net.run_for(1.0);
  net.router(0).send_unicast(routed_probe(0, 3));
  net.run_for(3.0);
  ASSERT_EQ(at3.packets.size(), 1u);

  // Break the chain: node 1 jumps far away. A parallel relay (node 4,
  // appended below line spacing) is not present, so bring node 1 back
  // within range of nobody and give the network a replacement path by
  // moving it near the midpoint between 0 and 2 is not possible — instead
  // verify the route is torn down and discovery fails cleanly.
  net.mobility().move_to(1, {5000.0, 0.0});
  net.run_for(6.0);
  net.router(0).send_unicast(routed_probe(0, 3));
  net.run_for(15.0);
  EXPECT_EQ(at3.packets.size(), 1u);  // unreachable now
  EXPECT_GE(net.router(0).counters().discovery_failures, 1u);
}

TEST(AodvRouter, ReroutesViaAlternatePathAfterBreak) {
  // 0 - 1 - 2 line plus node 3 parallel to 1 (reaches both 0 and 2).
  std::vector<mobility::Vec2> pos = {{0, 0}, {80, 0}, {160, 0}, {80, 60}};
  StaticNetwork net{pos};
  Capture at2;
  at2.attach(net.router(2));
  net.run_for(1.0);
  net.router(0).send_unicast(routed_probe(0, 2));
  net.run_for(3.0);
  ASSERT_EQ(at2.packets.size(), 1u);

  net.mobility().move_to(1, {5000.0, 0.0});
  net.run_for(6.0);  // neighbor timeout + RERR
  net.router(0).send_unicast(routed_probe(0, 2));
  net.run_for(5.0);
  EXPECT_EQ(at2.packets.size(), 2u);  // rerouted via node 3
  const RouteEntry* route = net.router(0).route_table().find(net::NodeId{2});
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->next_hop, net::NodeId{3});
}

TEST(AodvRouter, RouteHintAvoidsDiscovery) {
  StaticNetwork net{line_positions(3, 80.0)};
  Capture at2;
  at2.attach(net.router(2));
  net.run_for(1.0);
  net.router(0).route_hint(net::NodeId{2}, net::NodeId{1}, 2);
  net.router(1).route_hint(net::NodeId{2}, net::NodeId{2}, 1);
  net.router(0).send_unicast(routed_probe(0, 2));
  net.run_for(2.0);
  EXPECT_EQ(at2.packets.size(), 1u);
  EXPECT_EQ(net.router(0).counters().rreq_originated, 0u);
}

TEST(AodvRouter, SendToSelfDeliversLocally) {
  StaticNetwork net{line_positions(2, 50.0)};
  Capture at0;
  at0.attach(net.router(0));
  net.router(0).send_unicast(routed_probe(0, 0));
  net.run_for(0.5);
  EXPECT_EQ(at0.packets.size(), 1u);
}

TEST(AodvRouter, SendToNeighborBypassesRouting) {
  StaticNetwork net{line_positions(2, 50.0)};
  Capture at1;
  at1.attach(net.router(1));
  gossip::NearestMemberMsg nm{testutil::kGroup, 3};
  net.router(0).send_to_neighbor(net::NodeId{1}, nm);
  net.run_for(0.5);
  ASSERT_EQ(at1.packets.size(), 1u);
  EXPECT_TRUE(at1.packets[0].is<gossip::NearestMemberMsg>());
  EXPECT_EQ(net.router(0).counters().rreq_originated, 0u);
}

}  // namespace
}  // namespace ag::aodv
