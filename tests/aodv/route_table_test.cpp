#include "aodv/route_table.h"

#include <gtest/gtest.h>

namespace ag::aodv {
namespace {

const net::NodeId kDest{9};
const net::NodeId kHopA{1};
const net::NodeId kHopB{2};
const sim::SimTime kT0 = sim::SimTime::seconds(10);
const sim::SimTime kLater = sim::SimTime::seconds(20);

TEST(RouteTable, OfferCreatesEntry) {
  RouteTable rt;
  EXPECT_TRUE(rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, kLater));
  RouteEntry* e = rt.find_valid(kDest, kT0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->next_hop, kHopA);
  EXPECT_EQ(e->hops, 3);
  EXPECT_EQ(e->seq, net::SeqNo{5});
}

TEST(RouteTable, FresherSequenceReplaces) {
  RouteTable rt;
  rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, kLater);
  EXPECT_TRUE(rt.offer(kDest, net::SeqNo{6}, true, 7, kHopB, kLater));
  EXPECT_EQ(rt.find(kDest)->next_hop, kHopB);  // fresher wins despite more hops
}

TEST(RouteTable, StaleSequenceRejected) {
  RouteTable rt;
  rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, kLater);
  EXPECT_FALSE(rt.offer(kDest, net::SeqNo{4}, true, 1, kHopB, kLater));
  EXPECT_EQ(rt.find(kDest)->next_hop, kHopA);
}

TEST(RouteTable, EqualSequenceShorterPathReplaces) {
  RouteTable rt;
  rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, kLater);
  EXPECT_TRUE(rt.offer(kDest, net::SeqNo{5}, true, 2, kHopB, kLater));
  EXPECT_EQ(rt.find(kDest)->next_hop, kHopB);
  EXPECT_FALSE(rt.offer(kDest, net::SeqNo{5}, true, 2, kHopA, kLater));  // equal hops
}

TEST(RouteTable, UnknownSeqOfferCannotReplaceKnown) {
  RouteTable rt;
  rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, kLater);
  EXPECT_FALSE(rt.offer(kDest, net::SeqNo{}, false, 1, kHopB, kLater));
}

TEST(RouteTable, InvalidEntryAcceptsAnyOfferButKeepsSeqKnowledge) {
  RouteTable rt;
  rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, kLater);
  rt.invalidate(kDest);
  EXPECT_TRUE(rt.offer(kDest, net::SeqNo{}, false, 4, kHopB, kLater));
  RouteEntry* e = rt.find(kDest);
  EXPECT_TRUE(e->valid);
  EXPECT_EQ(e->next_hop, kHopB);
  EXPECT_TRUE(e->seq_known);  // sequence knowledge survives (draft rule)
}

TEST(RouteTable, ExpiryIsLazy) {
  RouteTable rt;
  rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, sim::SimTime::seconds(15));
  EXPECT_NE(rt.find_valid(kDest, kT0), nullptr);
  EXPECT_EQ(rt.find_valid(kDest, kLater), nullptr);  // expired
  EXPECT_FALSE(rt.find(kDest)->valid);
}

TEST(RouteTable, RefreshExtendsLifetime) {
  RouteTable rt;
  rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, sim::SimTime::seconds(15));
  rt.refresh(kDest, sim::SimTime::seconds(30));
  EXPECT_NE(rt.find_valid(kDest, kLater), nullptr);
}

TEST(RouteTable, InvalidateBumpsSequence) {
  RouteTable rt;
  rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, kLater);
  RouteEntry* e = rt.invalidate(kDest);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->valid);
  EXPECT_EQ(e->seq, net::SeqNo{6});
  EXPECT_EQ(rt.invalidate(kDest), nullptr);  // already invalid
}

TEST(RouteTable, DestsViaListsOnlyValidRoutesThroughHop) {
  RouteTable rt;
  rt.offer(net::NodeId{10}, net::SeqNo{1}, true, 2, kHopA, kLater);
  rt.offer(net::NodeId{11}, net::SeqNo{1}, true, 2, kHopA, kLater);
  rt.offer(net::NodeId{12}, net::SeqNo{1}, true, 2, kHopB, kLater);
  rt.invalidate(net::NodeId{11});
  const auto via = rt.dests_via(kHopA);
  ASSERT_EQ(via.size(), 1u);
  EXPECT_EQ(via[0], net::NodeId{10});
}

TEST(RouteTable, SameRouteOfferRefreshesLifetime) {
  RouteTable rt;
  rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, sim::SimTime::seconds(15));
  EXPECT_FALSE(rt.offer(kDest, net::SeqNo{5}, true, 3, kHopA, sim::SimTime::seconds(40)));
  EXPECT_NE(rt.find_valid(kDest, sim::SimTime::seconds(30)), nullptr);
}

}  // namespace
}  // namespace ag::aodv
