#include "mac/csma_mac.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mobility/static_mobility.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/simulator.h"

namespace ag::mac {
namespace {

struct Received {
  net::Packet packet;
  net::NodeId from;
};

class RecordingRouting : public MacListener {
 public:
  void on_packet_received(const net::Packet& packet, net::NodeId from) override {
    received.push_back({packet, from});
  }
  void on_unicast_failed(const net::Packet& packet, net::NodeId next_hop) override {
    failed.push_back({packet, next_hop});
  }
  std::vector<Received> received;
  std::vector<Received> failed;
};

net::Packet hello_packet(std::uint32_t src) {
  net::Packet p;
  p.src = net::NodeId{src};
  p.payload = aodv::HelloMsg{net::NodeId{src}, net::SeqNo{1}};
  return p;
}

class MacFixture {
 public:
  explicit MacFixture(std::vector<mobility::Vec2> positions, double range = 100.0)
      : mobility_{std::move(positions)},
        channel_{sim_, mobility_, phy::PhyParams{range, 2e6, 192.0, 3e8}} {
    for (std::size_t i = 0; i < mobility_.node_count(); ++i) {
      radios_.push_back(std::make_unique<phy::Radio>(sim_, channel_, i));
      channel_.attach(radios_.back().get());
      macs_.push_back(std::make_unique<CsmaMac>(
          sim_, *radios_.back(), channel_, net::NodeId{static_cast<std::uint32_t>(i)},
          MacParams{}, sim_.rng().stream("mac", i)));
      listeners_.push_back(std::make_unique<RecordingRouting>());
      macs_.back()->set_listener(listeners_.back().get());
    }
  }
  sim::Simulator sim_;
  mobility::StaticMobility mobility_;
  phy::Channel channel_;
  std::vector<std::unique_ptr<phy::Radio>> radios_;
  std::vector<std::unique_ptr<CsmaMac>> macs_;
  std::vector<std::unique_ptr<RecordingRouting>> listeners_;
};

TEST(CsmaMac, BroadcastReachesAllNeighbors) {
  MacFixture f{{{0, 0}, {50, 0}, {90, 0}, {250, 0}}};
  f.macs_[0]->send(net::NodeId::broadcast(), hello_packet(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->received.size(), 1u);
  EXPECT_EQ(f.listeners_[2]->received.size(), 1u);
  EXPECT_EQ(f.listeners_[3]->received.size(), 0u);  // out of range
  EXPECT_EQ(f.macs_[0]->counters().broadcast_sent, 1u);
}

TEST(CsmaMac, UnicastDeliversOnlyToAddressee) {
  MacFixture f{{{0, 0}, {50, 0}, {60, 0}}};
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->received.size(), 1u);
  EXPECT_EQ(f.listeners_[1]->received[0].from, net::NodeId{0});
  EXPECT_EQ(f.listeners_[2]->received.size(), 0u);  // overheard but filtered
}

TEST(CsmaMac, UnicastIsAcknowledged) {
  MacFixture f{{{0, 0}, {50, 0}}};
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  f.sim_.run_all();
  EXPECT_EQ(f.macs_[1]->counters().acks_sent, 1u);
  EXPECT_EQ(f.macs_[0]->counters().unicast_failed, 0u);
  EXPECT_EQ(f.listeners_[0]->failed.size(), 0u);
}

TEST(CsmaMac, UnicastToUnreachableNodeFailsAfterRetries) {
  MacFixture f{{{0, 0}, {500, 0}}};  // out of range
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  f.sim_.run_all();
  ASSERT_EQ(f.listeners_[0]->failed.size(), 1u);
  EXPECT_EQ(f.listeners_[0]->failed[0].from, net::NodeId{1});  // next hop
  EXPECT_EQ(f.macs_[0]->counters().unicast_failed, 1u);
  EXPECT_EQ(f.macs_[0]->counters().retries, MacParams{}.retry_limit);
}

TEST(CsmaMac, QueueDrainsInOrder) {
  MacFixture f{{{0, 0}, {50, 0}}};
  for (std::uint32_t i = 0; i < 5; ++i) {
    net::Packet p = hello_packet(0);
    p.ttl = static_cast<std::uint8_t>(i + 1);  // tag to check ordering
    f.macs_[0]->send(net::NodeId{1}, std::move(p));
  }
  f.sim_.run_all();
  ASSERT_EQ(f.listeners_[1]->received.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(f.listeners_[1]->received[i].packet.ttl, i + 1);
  }
}

TEST(CsmaMac, QueueOverflowDropsTail) {
  MacFixture f{{{0, 0}, {500, 0}}};  // unreachable: queue cannot drain fast
  const std::size_t limit = MacParams{}.queue_limit;
  for (std::size_t i = 0; i < limit + 10; ++i) {
    f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  }
  EXPECT_EQ(f.macs_[0]->counters().queue_drops, 10u);
  EXPECT_EQ(f.macs_[0]->queue_depth(), limit);
}

TEST(CsmaMac, ContendersSerializeOnTheMedium) {
  // All three in mutual range: CSMA + random backoff should deliver all
  // broadcasts without loss.
  MacFixture f{{{0, 0}, {30, 0}, {60, 0}}};
  f.macs_[0]->send(net::NodeId::broadcast(), hello_packet(0));
  f.macs_[1]->send(net::NodeId::broadcast(), hello_packet(1));
  f.macs_[2]->send(net::NodeId::broadcast(), hello_packet(2));
  f.sim_.run_all();
  // Node 1 is in range of both others: should hear both their frames.
  EXPECT_EQ(f.listeners_[1]->received.size(), 2u);
}

TEST(CsmaMac, HiddenTerminalRetryEventuallyDelivers) {
  // 0 and 2 are hidden from each other, both unicast to 1 simultaneously.
  // First transmissions collide at 1; ACK-less senders back off and retry
  // until both get through.
  MacFixture f{{{0, 0}, {80, 0}, {160, 0}}, 100.0};
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  f.macs_[2]->send(net::NodeId{1}, hello_packet(2));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->received.size(), 2u);
  EXPECT_EQ(f.macs_[0]->counters().unicast_failed, 0u);
  EXPECT_EQ(f.macs_[2]->counters().unicast_failed, 0u);
  EXPECT_GT(f.macs_[0]->counters().retries + f.macs_[2]->counters().retries, 0u);
}

TEST(CsmaMac, DuplicateRetransmissionFilteredWhenAckLost) {
  // Drop every ACK from 1 to 0: the sender retries, receiver must deliver
  // the packet only once despite receiving several copies.
  MacFixture f{{{0, 0}, {50, 0}}};
  f.channel_.set_drop_hook([](std::size_t from, std::size_t to) {
    return from == 1 && to == 0;  // ACK direction
  });
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->received.size(), 1u);
  EXPECT_GT(f.macs_[1]->counters().dup_frames_dropped, 0u);
  // Sender exhausted retries (never saw an ACK).
  EXPECT_EQ(f.macs_[0]->counters().unicast_failed, 1u);
}

TEST(CsmaMac, BackToBackBroadcastsAllArrive) {
  MacFixture f{{{0, 0}, {50, 0}}};
  for (int i = 0; i < 20; ++i) {
    f.macs_[0]->send(net::NodeId::broadcast(), hello_packet(0));
  }
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->received.size(), 20u);
}

TEST(CsmaMac, MixedTrafficUnderLoadDeliversAllUnicasts) {
  MacFixture f{{{0, 0}, {40, 0}, {80, 0}}};
  for (int i = 0; i < 10; ++i) {
    f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
    f.macs_[1]->send(net::NodeId::broadcast(), hello_packet(1));
    f.macs_[2]->send(net::NodeId{1}, hello_packet(2));
  }
  f.sim_.run_all();
  // Unicasts are ACK-protected and must all arrive. Broadcasts are
  // fire-and-forget: a half-duplex receiver busy with its own frame can
  // legitimately miss some, so only a floor is asserted.
  EXPECT_EQ(f.macs_[0]->counters().unicast_failed, 0u);
  EXPECT_EQ(f.macs_[2]->counters().unicast_failed, 0u);
  EXPECT_GE(f.listeners_[1]->received.size(), 20u);
  EXPECT_LE(f.listeners_[1]->received.size(), 30u);
  EXPECT_GE(f.listeners_[0]->received.size() + f.listeners_[2]->received.size(), 10u);
}

TEST(CsmaMac, PowerCycleDropsQueueAndRecovers) {
  MacFixture f{{{0, 0}, {40, 0}}};
  for (int i = 0; i < 5; ++i) f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  EXPECT_GT(f.macs_[0]->queue_depth(), 0u);

  f.macs_[0]->power_cycle();
  EXPECT_EQ(f.macs_[0]->queue_depth(), 0u);
  f.sim_.run_all();  // any in-flight frame completes harmlessly
  const std::size_t delivered_before = f.listeners_[1]->received.size();
  EXPECT_LE(delivered_before, 1u);  // at most the frame already on the air

  // The MAC keeps working after the cycle.
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->received.size(), delivered_before + 1);
  EXPECT_EQ(f.macs_[0]->counters().unicast_failed, 0u);
}

TEST(CsmaMac, AckSuppressedWhenRadioTransmittingAtSifsExpiry) {
  // The receiver owes an ACK but its own frame is on the air when the
  // SIFS expires: the ACK is silently dropped (the sender retries) and
  // the drop must be counted, not invisible. The overlap cannot occur
  // with in-band timings (DIFS > SIFS), so the reception is injected
  // directly while node 1 is mid-transmission.
  MacFixture f{{{0, 0}, {50, 0}}};
  f.macs_[1]->send(net::NodeId::broadcast(), hello_packet(1));
  // Step until node 1's transmission starts (DIFS + drawn backoff).
  while (!f.radios_[1]->transmitting()) {
    f.sim_.run_until(f.sim_.now() + sim::Duration::us(10));
  }
  const Frame data{FrameKind::data, net::NodeId{0}, net::NodeId{1}, 0,
                   net::PacketPool::local().make(hello_packet(0))};
  f.macs_[1]->on_frame_received(data);  // schedules the ACK at now + SIFS
  // SIFS (10 us) expires well inside the frame airtime (hundreds of us).
  f.sim_.run_all();
  EXPECT_EQ(f.macs_[1]->counters().acks_suppressed, 1u);
  EXPECT_EQ(f.macs_[1]->counters().acks_sent, 0u);
  EXPECT_EQ(f.macs_[1]->counters().delivered_up, 1u);  // data still went up
}

TEST(CsmaMac, BatchedPowerCycleMidCountdownDoesNotFireStaleDeadline) {
  // A crash landing between DIFS completion and the fused deadline must
  // cancel the pending analytic countdown: nothing may transmit at the
  // stale deadline, and a fresh send afterwards contends from scratch.
  ASSERT_TRUE(batched_backoff_enabled());  // default engine
  MacFixture f{{{0, 0}, {50, 0}}};
  f.macs_[0]->send(net::NodeId::broadcast(), hello_packet(0));
  // Mid-countdown: past begin_access, before any transmission (the
  // earliest possible deadline is DIFS = 50 us).
  f.sim_.run_until(f.sim_.now() + sim::Duration::us(30));
  ASSERT_EQ(f.macs_[0]->counters().broadcast_sent, 0u);
  f.macs_[0]->power_cycle();
  f.sim_.run_all();
  EXPECT_EQ(f.macs_[0]->counters().broadcast_sent, 0u);
  EXPECT_EQ(f.listeners_[1]->received.size(), 0u);
  // The MAC keeps working after the cycle.
  f.macs_[0]->send(net::NodeId::broadcast(), hello_packet(0));
  f.sim_.run_all();
  EXPECT_EQ(f.macs_[0]->counters().broadcast_sent, 1u);
  EXPECT_EQ(f.listeners_[1]->received.size(), 1u);
}

TEST(CsmaMac, AckArrivingAtTimeoutDeadlineBeatsTheTimer) {
  // An ACK reception event landing at exactly the timeout deadline fires
  // first (it was scheduled before the timeout was armed — FIFO order),
  // so the transmission succeeds with no retry. Real ACKs are dropped and
  // the deadline-grazing ACK is injected at the computed expiry.
  MacFixture f{{{0, 0}, {50, 0}}};
  f.channel_.set_drop_hook([](std::size_t from, std::size_t to) {
    return from == 1 && to == 0;  // ACK direction
  });
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  while (!f.radios_[0]->transmitting()) {
    f.sim_.run_until(f.sim_.now() + sim::Duration::us(10));
  }
  // Reconstruct the deadline from the MAC's own arithmetic: data airtime
  // (tx just started), then SIFS + ACK airtime + 3 slots.
  const Frame data{FrameKind::data, net::NodeId{0}, net::NodeId{1}, 0,
                   net::PacketPool::local().make(hello_packet(0))};
  const Frame ack{FrameKind::ack, net::NodeId{1}, net::NodeId{0}, 0, {}};
  const MacParams params{};
  const sim::SimTime deadline = f.sim_.now() + f.channel_.airtime_of(data) +
                                params.sifs + f.channel_.airtime_of(ack) +
                                params.slot * 3;
  // Scheduled now — before the MAC arms the timeout at tx completion —
  // so at the shared deadline this event pops first.
  f.sim_.schedule_at(deadline, [&f, ack] { f.macs_[0]->on_frame_received(ack); });
  f.sim_.run_all();
  EXPECT_EQ(f.macs_[0]->counters().retries, 0u);
  EXPECT_EQ(f.macs_[0]->counters().unicast_failed, 0u);
  EXPECT_EQ(f.macs_[0]->queue_depth(), 0u);
}

TEST(CsmaMac, StaleAckJustAfterTimeoutIsIgnoredAndRetryProceeds) {
  // The mirror ordering: the timeout fires first (same microsecond, the
  // ACK injection is scheduled after the timer was armed, so it pops
  // second). The stale ACK must be ignored — the MAC is already
  // contending for the retry — and the retransmission must succeed via
  // the receiver's real ACK, with the duplicate filtered.
  MacFixture f{{{0, 0}, {50, 0}}};
  int acks_dropped = 0;
  f.channel_.set_drop_hook([&acks_dropped](std::size_t from, std::size_t to) {
    return from == 1 && to == 0 && acks_dropped++ < 1;  // first ACK only
  });
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  while (!f.radios_[0]->transmitting()) {
    f.sim_.run_until(f.sim_.now() + sim::Duration::us(10));
  }
  const Frame data{FrameKind::data, net::NodeId{0}, net::NodeId{1}, 0,
                   net::PacketPool::local().make(hello_packet(0))};
  const Frame ack{FrameKind::ack, net::NodeId{1}, net::NodeId{0}, 0, {}};
  const MacParams params{};
  const sim::SimTime tx_end = f.sim_.now() + f.channel_.airtime_of(data);
  const sim::SimTime deadline =
      tx_end + params.sifs + f.channel_.airtime_of(ack) + params.slot * 3;
  // Run past tx completion so the MAC has armed the ACK timeout, then
  // schedule the stale ACK at the very same deadline (larger seq ⇒ the
  // timeout pops first).
  f.sim_.run_until(tx_end);
  f.sim_.schedule_at(deadline, [&f, ack] { f.macs_[0]->on_frame_received(ack); });
  f.sim_.run_all();
  EXPECT_EQ(f.macs_[0]->counters().retries, 1u);
  EXPECT_EQ(f.macs_[0]->counters().unicast_failed, 0u);
  EXPECT_EQ(f.listeners_[1]->received.size(), 1u);
  EXPECT_EQ(f.macs_[1]->counters().dup_frames_dropped, 1u);
  EXPECT_EQ(f.macs_[0]->queue_depth(), 0u);
}

TEST(CsmaMac, BackoffSlotsCreditedMatchesAcrossEngines) {
  // The analytic credit arithmetic consumes exactly the slots the
  // per-slot tick chain does, on a contended cell where pauses interrupt
  // countdowns constantly.
  std::uint64_t credited[2] = {0, 0};
  std::uint64_t sent[2] = {0, 0};
  for (const bool batched : {true, false}) {
    if (batched) {
      unsetenv("AG_BATCHED_BACKOFF");
    } else {
      setenv("AG_BATCHED_BACKOFF", "off", 1);
    }
    MacFixture f{{{0, 0}, {30, 0}, {60, 0}}};
    for (int i = 0; i < 10; ++i) {
      f.macs_[0]->send(net::NodeId::broadcast(), hello_packet(0));
      f.macs_[1]->send(net::NodeId{0}, hello_packet(1));
      f.macs_[2]->send(net::NodeId::broadcast(), hello_packet(2));
    }
    f.sim_.run_all();
    for (const auto& mac : f.macs_) {
      credited[batched ? 0 : 1] += mac->counters().backoff_slots_credited;
      sent[batched ? 0 : 1] +=
          mac->counters().broadcast_sent + mac->counters().unicast_sent;
    }
    unsetenv("AG_BATCHED_BACKOFF");
  }
  EXPECT_EQ(credited[0], credited[1]);
  EXPECT_EQ(sent[0], sent[1]);
  EXPECT_GT(credited[0], 0u);
}

TEST(CsmaMac, PowerCycleMidTransmissionStaysConsistent) {
  MacFixture f{{{0, 0}, {40, 0}}};
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  // Let contention start, then cycle while the state machine is active.
  f.sim_.run_until(f.sim_.now() + sim::Duration::us(500));
  f.macs_[0]->power_cycle();
  f.sim_.run_all();
  // Whatever was on the air completes; nothing dangles afterwards.
  f.macs_[0]->send(net::NodeId{1}, hello_packet(0));
  f.sim_.run_all();
  EXPECT_GE(f.listeners_[1]->received.size(), 1u);
  EXPECT_EQ(f.macs_[0]->queue_depth(), 0u);
}

}  // namespace
}  // namespace ag::mac
