// Whole-run equivalence of the analytic (event-elided) MAC backoff
// countdown against the AG_BATCHED_BACKOFF=off per-slot reference
// machine: fusing DIFS + backoff into one deadline and crediting slots
// analytically on pause must not move a single transmission, so full
// simulations are bit-identical — only the number of simulator events
// differs (that's the point). This is the suite the
// BENCH_fig2/BENCH_churn byte-identity claim rests on, the analogue of
// dense_tables_equivalence_test for the contention engine.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/network.h"
#include "harness/scenario.h"
#include "mac/csma_mac.h"
#include "net/data_plane.h"
#include "sim/event_category.h"
#include "stats/run_result.h"

namespace ag::mac {
namespace {

harness::ScenarioConfig short_scenario() {
  harness::ScenarioConfig c;
  c.node_count = 40;
  c.duration = sim::SimTime::seconds(40.0);
  c.workload.start = sim::SimTime::seconds(10.0);
  c.workload.end = sim::SimTime::seconds(30.0);
  return c;
}

stats::RunResult run_with_mode(const harness::ScenarioConfig& config, bool batched) {
  if (batched) {
    unsetenv("AG_BATCHED_BACKOFF");
  } else {
    setenv("AG_BATCHED_BACKOFF", "off", 1);
  }
  EXPECT_EQ(batched_backoff_enabled(), batched);
  stats::RunResult r = harness::run_scenario(config);
  unsetenv("AG_BATCHED_BACKOFF");
  return r;
}

// Everything the model produced must match; the event-mix counters and
// sim_events legitimately differ (the batched engine executes fewer
// events for the same simulated run) and are checked separately.
void expect_identical_runs(const stats::RunResult& batched,
                           const stats::RunResult& reference) {
  const stats::RunResult& a = batched;
  const stats::RunResult& b = reference;
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].received, b.members[i].received) << "member " << i;
    EXPECT_EQ(a.members[i].via_gossip, b.members[i].via_gossip) << "member " << i;
    EXPECT_EQ(a.members[i].eligible, b.members[i].eligible) << "member " << i;
    EXPECT_DOUBLE_EQ(a.members[i].mean_latency_s, b.members[i].mean_latency_s)
        << "member " << i;
  }
  EXPECT_EQ(a.totals.channel_transmissions, b.totals.channel_transmissions);
  EXPECT_EQ(a.totals.phy_deliveries, b.totals.phy_deliveries);
  EXPECT_EQ(a.totals.mac_unicast, b.totals.mac_unicast);
  EXPECT_EQ(a.totals.mac_broadcast, b.totals.mac_broadcast);
  EXPECT_EQ(a.totals.mac_collisions, b.totals.mac_collisions);
  EXPECT_EQ(a.totals.mac_queue_drops, b.totals.mac_queue_drops);
  EXPECT_EQ(a.totals.data_forwarded, b.totals.data_forwarded);
  EXPECT_EQ(a.totals.gossip_walks, b.totals.gossip_walks);
  EXPECT_EQ(a.totals.gossip_replies, b.totals.gossip_replies);
  EXPECT_EQ(a.totals.nm_updates, b.totals.nm_updates);
  EXPECT_EQ(a.totals.table_probes, b.totals.table_probes);
  EXPECT_EQ(a.totals.pool_hits, b.totals.pool_hits);
  EXPECT_EQ(a.totals.pool_misses, b.totals.pool_misses);
  EXPECT_DOUBLE_EQ(a.delivery_ratio(), b.delivery_ratio());

  // The analytic credit must consume exactly the slots the tick chain
  // consumed — the strongest pin on the pause/resume arithmetic. (Caveat
  // if this ever trips after a scenario change: a countdown still in
  // flight at the run cutoff has its elapsed ticks already credited by
  // the reference engine but not yet by the batched one — these
  // scenarios end with no countdown in flight, keeping equality exact.)
  EXPECT_EQ(a.totals.mac_backoff_slots_credited, b.totals.mac_backoff_slots_credited);

  // And the engines must agree on how much work was *represented*: the
  // reference executes one mac_slot event per consumed slot (nothing
  // elided), so its tick count reconstructs exactly from the batched
  // run's elision accounting.
  const auto slot_idx = sim::category_index(sim::EventCategory::mac_slot);
  const auto difs_idx = sim::category_index(sim::EventCategory::mac_difs);
  EXPECT_EQ(b.totals.mac_slots_elided(), 0u);
  EXPECT_EQ(b.totals.mac_difs_elided, 0u);
  EXPECT_EQ(b.totals.ev_executed[slot_idx], b.totals.mac_backoff_slots_credited);
  // DIFS waits the fused deadline absorbed + the difs events the batched
  // engine still executed reconstruct the reference's difs event count.
  // (Caveats if this ever trips after a scenario change: a countdown in
  // flight at the run cutoff, or an arrival landing in the exact
  // microsecond of an anchor with a 1 us DIFS remainder, each shift the
  // reconstruction by one — these scenarios hit neither.)
  EXPECT_EQ(a.totals.ev_executed[difs_idx] + a.totals.mac_difs_elided,
            b.totals.ev_executed[difs_idx]);
  if (b.totals.ev_executed[slot_idx] > 0) {
    EXPECT_LT(a.totals.ev_executed[slot_idx], b.totals.ev_executed[slot_idx])
        << "batched engine should execute fewer mac_slot events";
  }
  EXPECT_LE(a.totals.sim_events, b.totals.sim_events);
}

TEST(BatchedBackoffEquivalence, WholeRunBitIdenticalToPerSlotReference) {
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    const stats::RunResult batched =
        run_with_mode(short_scenario().with_seed(seed), true);
    const stats::RunResult reference =
        run_with_mode(short_scenario().with_seed(seed), false);
    expect_identical_runs(batched, reference);
  }
}

TEST(BatchedBackoffEquivalence, ChurnRunBitIdenticalToPerSlotReference) {
  // Churn exercises power_cycle mid-countdown, partition-driven busy/idle
  // flapping, and membership-driven queue churn.
  harness::ScenarioConfig base = short_scenario();
  base.faults.spec.churn_per_min = 3.0;
  base.faults.spec.crash_fraction = 0.2;
  base.faults.spec.partition_duration_s = 8.0;

  const stats::RunResult batched = run_with_mode(base.with_seed(5), true);
  const stats::RunResult reference = run_with_mode(base.with_seed(5), false);
  EXPECT_GT(batched.faults.crashes + batched.faults.leaves + batched.faults.partitions,
            0u);
  expect_identical_runs(batched, reference);
}

TEST(BatchedBackoffEquivalence, EveryProtocolBitIdentical) {
  // Different substrates drive very different MAC mixes (flooding is
  // broadcast-only and saturates; MAODV/ODMRP mix ACKed unicast in).
  for (const harness::Protocol p :
       {harness::Protocol::maodv_gossip, harness::Protocol::odmrp_gossip,
        harness::Protocol::flooding}) {
    harness::ScenarioConfig c = short_scenario();
    c.duration = sim::SimTime::seconds(25.0);
    c.workload.end = sim::SimTime::seconds(20.0);
    c.with_protocol(p).with_seed(3);
    expect_identical_runs(run_with_mode(c, true), run_with_mode(c, false));
  }
}

TEST(BatchedBackoffEquivalence, BitIdenticalOnReferenceTableBackendToo) {
  // Cross the two escape hatches: the contention engines must agree on
  // the std::map reference data plane exactly as they do on the dense
  // one (four-way equivalence, pinned pairwise here and by the dense
  // suite).
  harness::ScenarioConfig c = short_scenario();
  c.duration = sim::SimTime::seconds(25.0);
  c.workload.end = sim::SimTime::seconds(20.0);
  c.with_seed(7);

  setenv("AG_DENSE_TABLES", "off", 1);
  EXPECT_FALSE(net::dense_tables_enabled());
  const stats::RunResult batched = run_with_mode(c, true);
  const stats::RunResult reference = run_with_mode(c, false);
  unsetenv("AG_DENSE_TABLES");
  expect_identical_runs(batched, reference);
}

}  // namespace
}  // namespace ag::mac
