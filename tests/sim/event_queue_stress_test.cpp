// Stress coverage for the slot-map + 4-ary-heap event queue: randomized
// schedule/cancel/execute interleavings that force heavy slot reuse, and
// a recorded-trace comparison pinning the 4-ary heap's pop order to a
// reference binary heap with the queue's historical comparator. Pop order
// is a total order on (time, seq) — seq unique — so any correct heap must
// produce the identical sequence; this suite is what makes that claim
// checkable instead of rhetorical.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <queue>
#include <random>
#include <vector>

namespace ag::sim {
namespace {

// The pre-4-ary comparator, verbatim: a max-heap adapter popping the
// smallest (at, seq).
struct RefEntry {
  SimTime at;
  std::uint64_t seq;
};
struct RefLater {
  bool operator()(const RefEntry& a, const RefEntry& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};
using ReferenceBinaryHeap =
    std::priority_queue<RefEntry, std::vector<RefEntry>, RefLater>;

TEST(EventQueueStress, PopsMatchReferenceBinaryHeapOnRecordedTrace) {
  std::mt19937_64 rng{20260802};
  EventQueue q;
  ReferenceBinaryHeap ref;
  std::vector<std::uint64_t> fired;

  // Record a trace: 20k events over a coarse time grid (lots of exact
  // ties, so FIFO tie-breaking is exercised for real), a third of them
  // cancelled before anything runs.
  const int kEvents = 20000;
  std::vector<EventId> ids;
  std::vector<RefEntry> entries;
  ids.reserve(kEvents);
  for (std::uint64_t seq = 1; seq <= kEvents; ++seq) {
    const SimTime at = SimTime::us(static_cast<std::int64_t>(rng() % 64));
    ids.push_back(q.schedule(at, [&fired, seq] { fired.push_back(seq); }));
    entries.push_back({at, seq});
  }
  std::vector<bool> cancelled(kEvents + 1, false);
  for (int i = 0; i < kEvents / 3; ++i) {
    const auto victim = static_cast<std::size_t>(rng() % kEvents);
    if (q.cancel(ids[victim])) cancelled[victim + 1] = true;
  }
  for (const RefEntry& e : entries) {
    if (!cancelled[e.seq]) ref.push(e);
  }

  while (!q.empty()) (void)q.pop().action();

  std::vector<std::uint64_t> expected;
  while (!ref.empty()) {
    expected.push_back(ref.top().seq);
    ref.pop();
  }
  ASSERT_EQ(fired.size(), expected.size());
  EXPECT_EQ(fired, expected) << "4-ary pop order diverged from the binary heap";
}

TEST(EventQueueStress, ScheduleCancelExecuteInterleavingsReuseSlots) {
  std::mt19937_64 rng{7};
  EventQueue q;
  std::vector<std::uint64_t> fired;
  // Model of what must still fire: (at, seq) of live events.
  std::vector<RefEntry> live;
  std::vector<std::pair<EventId, std::uint64_t>> pending_ids;
  std::uint64_t next_seq = 1;
  SimTime now = SimTime::us(0);

  for (int phase = 0; phase < 200; ++phase) {
    // Schedule a burst (reusing slots freed by earlier phases).
    const int burst = 1 + static_cast<int>(rng() % 40);
    for (int i = 0; i < burst; ++i) {
      const std::uint64_t seq = next_seq++;
      const SimTime at = now + Duration::us(static_cast<std::int64_t>(rng() % 50));
      pending_ids.emplace_back(
          q.schedule(at, [&fired, seq] { fired.push_back(seq); }), seq);
      live.push_back({at, seq});
    }
    // Cancel a random subset of everything still pending.
    for (auto& [id, seq] : pending_ids) {
      if (rng() % 4 != 0) continue;
      if (q.cancel(id)) {
        const std::uint64_t s = seq;
        live.erase(std::find_if(live.begin(), live.end(),
                                [s](const RefEntry& e) { return e.seq == s; }));
      }
    }
    // Execute everything due in the next few microseconds.
    const SimTime horizon = now + Duration::us(static_cast<std::int64_t>(rng() % 30));
    while (!q.empty() && q.next_time() <= horizon) {
      const auto f = q.pop();
      now = f.at;
      f.action();
    }
    now = horizon;
  }
  while (!q.empty()) (void)q.pop().action();

  // The queue must have fired exactly the uncancelled events in (at, seq)
  // order per drain segment — globally, every live seq exactly once.
  std::vector<std::uint64_t> expected_set;
  for (const RefEntry& e : live) expected_set.push_back(e.seq);
  std::vector<std::uint64_t> fired_sorted = fired;
  std::sort(fired_sorted.begin(), fired_sorted.end());
  std::sort(expected_set.begin(), expected_set.end());
  EXPECT_EQ(fired_sorted, expected_set);
}

TEST(EventQueueStress, StaleIdsNeverCancelASlotsNewTenant) {
  EventQueue q;
  // Single-slot churn: with one pending event at a time, the same slot is
  // reused every cycle and its generation increments each time. 40
  // generation bits cannot realistically wrap (10^12 reuses), so what
  // must hold is: every EventId is distinct across reuse, and an id from
  // tenant N can never cancel tenant N+k.
  EventId previous{};
  int fired = 0;
  for (int cycle = 0; cycle < 100000; ++cycle) {
    const EventId id = q.schedule(SimTime::us(cycle), [&fired] { ++fired; });
    EXPECT_NE(id, previous) << "EventId reused verbatim at cycle " << cycle;
    EXPECT_FALSE(q.cancel(previous)) << "stale id cancelled a new tenant";
    (void)q.pop().action();
    EXPECT_FALSE(q.cancel(id)) << "id of a fired event still cancels";
    previous = id;
  }
  EXPECT_EQ(fired, 100000);
}

TEST(EventQueueStress, CancelledCorpsesDoNotDisturbOrderAcrossReuse) {
  // Alternate cancel-heavy and fire-heavy rounds so heap corpses from one
  // round sit above live reused slots of the next.
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventId> doomed;
  for (int round = 0; round < 50; ++round) {
    doomed.clear();
    for (int i = 0; i < 100; ++i) {
      doomed.push_back(q.schedule(SimTime::us(round * 1000 + 500 + i), [] {}));
    }
    for (int i = 0; i < 100; ++i) {
      const int tag = round * 100 + i;
      q.schedule(SimTime::us(round * 1000 + i),
                 [&fired, tag] { fired.push_back(tag); });
    }
    for (EventId id : doomed) EXPECT_TRUE(q.cancel(id));
  }
  while (!q.empty()) (void)q.pop().action();
  ASSERT_EQ(fired.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

}  // namespace
}  // namespace ag::sim
