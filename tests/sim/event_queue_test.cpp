#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ag::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), SimTime::max());
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::ms(30), [&] { fired.push_back(3); });
  q.schedule(SimTime::ms(10), [&] { fired.push_back(1); });
  q.schedule(SimTime::ms(20), [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 8; ++i) {
    q.schedule(SimTime::ms(5), [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, ReportsNextTime) {
  EventQueue q;
  q.schedule(SimTime::ms(42), [] {});
  q.schedule(SimTime::ms(7), [] {});
  EXPECT_EQ(q.next_time(), SimTime::ms(7));
}

TEST(EventQueue, CancelRemovesEvent) {
  EventQueue q;
  bool fired = false;
  EventId id = q.schedule(SimTime::ms(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotent) {
  EventQueue q;
  EventId id = q.schedule(SimTime::ms(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventId{}));
}

TEST(EventQueue, CancelFiredEventIsNoop) {
  EventQueue q;
  EventId id = q.schedule(SimTime::ms(1), [] {});
  q.pop().action();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelMiddleEventPreservesOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime::ms(1), [&] { fired.push_back(1); });
  EventId mid = q.schedule(SimTime::ms(2), [&] { fired.push_back(2); });
  q.schedule(SimTime::ms(3), [&] { fired.push_back(3); });
  q.cancel(mid);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, NextTimeSkipsCancelledFront) {
  EventQueue q;
  EventId front = q.schedule(SimTime::ms(1), [] {});
  q.schedule(SimTime::ms(9), [] {});
  q.cancel(front);
  EXPECT_EQ(q.next_time(), SimTime::ms(9));
}

TEST(EventQueue, SizeTracksLiveEventsOnly) {
  EventQueue q;
  EventId a = q.schedule(SimTime::ms(1), [] {});
  q.schedule(SimTime::ms(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, ManyInterleavedScheduleCancel) {
  EventQueue q;
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.schedule(SimTime::us(i), [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 500);
}

}  // namespace
}  // namespace ag::sim
