#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/timer.h"

namespace ag::sim {
namespace {

TEST(SimTime, ArithmeticAndComparison) {
  const SimTime t = SimTime::seconds(1.5);
  EXPECT_EQ(t.count_us(), 1'500'000);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.5);
  EXPECT_EQ(t + Duration::ms(500), SimTime::seconds(2.0));
  EXPECT_EQ(t - SimTime::seconds(1.0), Duration::ms(500));
  EXPECT_LT(SimTime::zero(), t);
}

TEST(Duration, ScalingAndDivision) {
  const Duration d = Duration::ms(100);
  EXPECT_EQ(d * std::int64_t{3}, Duration::ms(300));
  EXPECT_EQ(d / 2, Duration::ms(50));
  EXPECT_EQ(d.scaled(0.5), Duration::ms(50));
  EXPECT_TRUE(Duration::zero().is_zero());
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule_at(SimTime::seconds(1.0), [&] { times.push_back(sim.now().to_seconds()); });
  sim.schedule_at(SimTime::seconds(2.0), [&] { times.push_back(sim.now().to_seconds()); });
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime::seconds(1.0), [&] { ++fired; });
  sim.schedule_at(SimTime::seconds(2.0), [&] { ++fired; });
  sim.schedule_at(SimTime::seconds(3.0), [&] { ++fired; });
  sim.run_until(SimTime::seconds(2.0));  // inclusive boundary
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::seconds(2.0));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(Duration::ms(1), recurse);
  };
  sim.schedule_after(Duration::ms(1), recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::ms(5));
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime inner;
  sim.schedule_at(SimTime::ms(10), [&] {
    sim.schedule_after(Duration::ms(5), [&] { inner = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(inner, SimTime::ms(15));
}

TEST(Timer, FiresOnceAfterDelay) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.restart(Duration::ms(10));
  EXPECT_TRUE(t.pending());
  sim.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RestartReplacesPreviousSchedule) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.restart(Duration::ms(10));
  t.restart(Duration::ms(50));
  sim.run_until(SimTime::ms(20));
  EXPECT_EQ(fired, 0);  // the 10 ms schedule was cancelled
  sim.run_until(SimTime::ms(60));
  EXPECT_EQ(fired, 1);
}

TEST(Timer, CancelPreventsFiring) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] { ++fired; }};
  t.restart(Duration::ms(10));
  t.cancel();
  sim.run_all();
  EXPECT_EQ(fired, 0);
}

TEST(Timer, DestructionCancelsOutstandingEvent) {
  Simulator sim;
  int fired = 0;
  {
    Timer t{sim, [&] { ++fired; }};
    t.restart(Duration::ms(10));
  }
  sim.run_all();  // must not crash or fire
  EXPECT_EQ(fired, 0);
}

TEST(Timer, CanRestartItselfFromCallback) {
  Simulator sim;
  int fired = 0;
  Timer t{sim, [&] {
    if (++fired < 3) t.restart(Duration::ms(1));
  }};
  t.restart(Duration::ms(1));
  sim.run_all();
  EXPECT_EQ(fired, 3);
}

TEST(PeriodicTimer, TicksAtFixedPeriod) {
  Simulator sim;
  std::vector<std::int64_t> ticks;
  PeriodicTimer t{sim, [&] { ticks.push_back(sim.now().count_us()); }};
  t.start(Duration::ms(100));
  sim.run_until(SimTime::ms(350));
  EXPECT_EQ(ticks, (std::vector<std::int64_t>{100'000, 200'000, 300'000}));
}

TEST(PeriodicTimer, StopHaltsTicking) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer t{sim, [&] {
    if (++ticks == 2) t.stop();
  }};
  t.start(Duration::ms(10));
  sim.run_until(SimTime::seconds(1.0));
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimer, JitterStaysWithinBound) {
  Simulator sim;
  Rng rng{7};
  std::vector<std::int64_t> ticks;
  PeriodicTimer t{sim, [&] { ticks.push_back(sim.now().count_us()); }};
  t.start(Duration::ms(100), &rng, Duration::ms(20));
  sim.run_until(SimTime::seconds(2.0));
  ASSERT_GE(ticks.size(), 10u);
  std::int64_t prev = 0;
  for (std::int64_t tick : ticks) {
    const std::int64_t gap = tick - prev;
    EXPECT_GE(gap, 100'000);
    EXPECT_LT(gap, 120'000);
    prev = tick;
  }
}

}  // namespace
}  // namespace ag::sim
