// Unit coverage for the shared AG_* knob parsers (sim/env.h): every
// degraded input class — unset, empty, whitespace, zero, negative,
// non-numeric, trailing garbage, overflow — must fall back instead of
// silently changing the run.
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/env.h"

namespace ag::sim {
namespace {

// RAII guard: the variable is unset on entry and on exit, so tests never
// leak state into each other (or into a developer's shell-inherited
// environment reads elsewhere in the binary).
class EnvVar {
 public:
  explicit EnvVar(const char* name) : name_{name} { ::unsetenv(name_); }
  ~EnvVar() { ::unsetenv(name_); }
  EnvVar(const EnvVar&) = delete;
  EnvVar& operator=(const EnvVar&) = delete;
  void set(const char* value) { ::setenv(name_, value, 1); }

 private:
  const char* name_;
};

constexpr char kVar[] = "AG_ENV_TEST_KNOB";

TEST(EnvFlagOff, UnsetMeansFeatureStaysOn) {
  EnvVar v{kVar};
  EXPECT_FALSE(env_flag_off(kVar));
}

TEST(EnvFlagOff, RecognizedOffSpellings) {
  EnvVar v{kVar};
  for (const char* s : {"off", "0", "false"}) {
    v.set(s);
    EXPECT_TRUE(env_flag_off(kVar)) << "value \"" << s << "\"";
  }
}

TEST(EnvFlagOff, AnythingElseMeansOn) {
  EnvVar v{kVar};
  // Only the exact lowercase spellings disable; everything else —
  // including empty, whitespace, and shouty variants — leaves the
  // feature on.
  for (const char* s : {"", " ", "OFF", "Off", "no", "1", "on", "true", "0 "}) {
    v.set(s);
    EXPECT_FALSE(env_flag_off(kVar)) << "value \"" << s << "\"";
  }
}

TEST(EnvPositiveU32, UnsetReturnsFallback) {
  EnvVar v{kVar};
  EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 7u);
}

TEST(EnvPositiveU32, EmptyReturnsFallback) {
  EnvVar v{kVar};
  v.set("");
  EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 7u);
}

TEST(EnvPositiveU32, ParsesPlainPositiveIntegers) {
  EnvVar v{kVar};
  v.set("1");
  EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 1u);
  v.set("42");
  EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 42u);
  v.set("1000");  // max_value itself is allowed
  EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 1000u);
}

TEST(EnvPositiveU32, ZeroFallsBack) {
  EnvVar v{kVar};
  v.set("0");
  EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 7u);
}

TEST(EnvPositiveU32, NegativeFallsBack) {
  EnvVar v{kVar};
  v.set("-3");
  EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 7u);
}

TEST(EnvPositiveU32, WhitespaceFallsBack) {
  EnvVar v{kVar};
  for (const char* s : {" ", "\t", " 5", "5 ", " 5 "}) {
    v.set(s);
    EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 7u) << "value \"" << s << "\"";
  }
}

TEST(EnvPositiveU32, NonNumericFallsBack) {
  EnvVar v{kVar};
  for (const char* s : {"abc", "5x", "x5", "1.5", "0x10", "+5", "--2"}) {
    v.set(s);
    EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 7u) << "value \"" << s << "\"";
  }
}

TEST(EnvPositiveU32, AboveMaxFallsBack) {
  EnvVar v{kVar};
  v.set("1001");
  EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 7u);
  // Far past long range: strtol saturates with ERANGE — still fallback.
  v.set("999999999999999999999999999");
  EXPECT_EQ(env_positive_u32(kVar, 7, 1000), 7u);
}

}  // namespace
}  // namespace ag::sim
