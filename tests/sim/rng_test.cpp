#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ag::sim {
namespace {

TEST(Rng, UniformStaysInRange) {
  Rng rng{1};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{2};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.uniform_int(0, 3);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == 0;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbabilityRoughly) {
  Rng rng{3};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, WeightedIndexPrefersHeavyWeights) {
  Rng rng{4};
  std::vector<double> weights{1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.weighted_index(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng{5};
  std::vector<double> weights{0.0, 0.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) counts[rng.weighted_index(weights)]++;
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(RngFactory, SameSeedSameStreamIsDeterministic) {
  RngFactory f1{99}, f2{99};
  Rng a = f1.stream("mac", 3);
  Rng b = f2.stream("mac", 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngFactory, DifferentStreamNamesDecorrelate) {
  RngFactory f{99};
  Rng a = f.stream("mac");
  Rng b = f.stream("mobility");
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(RngFactory, DifferentInstancesDecorrelate) {
  RngFactory f{99};
  Rng a = f.stream("mac", 0);
  Rng b = f.stream("mac", 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(RngFactory, DifferentSeedsDecorrelate) {
  Rng a = RngFactory{1}.stream("x");
  Rng b = RngFactory{2}.stream("x");
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ExponentialHasRoughlyRequestedMean) {
  Rng rng{6};
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

}  // namespace
}  // namespace ag::sim
