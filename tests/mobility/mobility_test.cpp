#include <gtest/gtest.h>

#include <cmath>

#include "mobility/highway.h"
#include "mobility/random_waypoint.h"
#include "mobility/static_mobility.h"
#include "sim/simulator.h"

namespace ag::mobility {
namespace {

TEST(Vec2, DistanceAndNorm) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{1, 1} + Vec2{2, 3}).x, 3.0);
  EXPECT_DOUBLE_EQ((Vec2{5, 5} - Vec2{2, 1}).y, 4.0);
  EXPECT_DOUBLE_EQ((Vec2{1, 2} * 2.0).y, 4.0);
}

TEST(Vec2, SquaredDistanceMatchesDistance) {
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ((Vec2{3, 4}).norm_sq(), 25.0);
  // The range predicate the channel relies on: d <= r iff d^2 <= r^2.
  const Vec2 a{12.5, -3.75};
  const Vec2 b{-41.25, 88.0};
  EXPECT_DOUBLE_EQ(distance_sq(a, b), distance(a, b) * distance(a, b));
}

TEST(StaticMobility, HoldsPositions) {
  StaticMobility m{{{1, 2}, {3, 4}}};
  EXPECT_EQ(m.node_count(), 2u);
  EXPECT_EQ(m.position_of(0, sim::SimTime::seconds(100)), (Vec2{1, 2}));
  m.move_to(0, {9, 9});
  EXPECT_EQ(m.position_of(0, sim::SimTime::zero()), (Vec2{9, 9}));
}

TEST(StaticMobility, LineBuilder) {
  StaticMobility m = StaticMobility::line(4, 10.0);
  EXPECT_EQ(m.node_count(), 4u);
  EXPECT_EQ(m.position_of(3, {}), (Vec2{30.0, 0.0}));
}

TEST(StaticMobility, GridBuilder) {
  StaticMobility m = StaticMobility::grid(3, 2, 5.0);
  EXPECT_EQ(m.node_count(), 6u);
  EXPECT_EQ(m.position_of(4, {}), (Vec2{5.0, 5.0}));  // col 1, row 1
}

TEST(StaticMobility, BoundsTrackPositionsAndMovesBumpGeneration) {
  StaticMobility m{{{10, 5}, {-3, 40}, {25, 0}}};
  EXPECT_EQ(m.bounds().min, (Vec2{-3, 0}));
  EXPECT_EQ(m.bounds().max, (Vec2{25, 40}));
  EXPECT_DOUBLE_EQ(m.max_speed_mps(), 0.0);
  EXPECT_FALSE(m.wraps_x());

  const std::uint64_t before = m.position_generation();
  m.move_to(0, {100, 100});
  EXPECT_GT(m.position_generation(), before);
  EXPECT_EQ(m.bounds().max, (Vec2{100, 100}));
}

TEST(RandomWaypoint, DeclaresAreaBoundsAndSpeedBound) {
  sim::Simulator sim{3};
  RandomWaypointConfig cfg;
  cfg.area_width_m = 300.0;
  cfg.area_height_m = 150.0;
  cfg.max_speed_mps = 7.0;
  RandomWaypoint rwp{sim, 4, cfg, sim.rng().stream("mobility")};
  EXPECT_EQ(rwp.bounds().min, (Vec2{0, 0}));
  EXPECT_EQ(rwp.bounds().max, (Vec2{300.0, 150.0}));
  EXPECT_DOUBLE_EQ(rwp.max_speed_mps(), 7.0);
  EXPECT_FALSE(rwp.wraps_x());
}

TEST(RandomWaypoint, SpeedBoundCoversTheMinimumSpeedClamp) {
  sim::Simulator sim{3};
  RandomWaypointConfig cfg;
  cfg.min_speed_mps = 0.0;
  cfg.max_speed_mps = 0.0;  // every draw gets clamped up to the floor
  RandomWaypoint rwp{sim, 2, cfg, sim.rng().stream("mobility")};
  EXPECT_GE(rwp.max_speed_mps(), kMinEffectiveSpeedMps);
}

TEST(Highway, DeclaresWrapAndBounds) {
  sim::Rng rng{4};
  HighwayConfig cfg;
  cfg.length_m = 800.0;
  cfg.lanes = 3;
  cfg.lane_spacing_m = 5.0;
  cfg.max_speed_mps = 35.0;
  HighwayMobility hw{6, cfg, rng};
  EXPECT_TRUE(hw.wraps_x());
  EXPECT_EQ(hw.bounds().min, (Vec2{0, 0}));
  EXPECT_EQ(hw.bounds().max, (Vec2{800.0, 10.0}));
  EXPECT_DOUBLE_EQ(hw.max_speed_mps(), 35.0);
}

class RandomWaypointTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomWaypointTest, PositionsStayWithinArea) {
  sim::Simulator sim{GetParam()};
  RandomWaypointConfig cfg;
  cfg.max_speed_mps = 5.0;
  cfg.max_pause_s = 10.0;
  RandomWaypoint rwp{sim, 10, cfg, sim.rng().stream("mobility")};
  for (int t = 0; t <= 600; t += 7) {
    sim.run_until(sim::SimTime::seconds(t));
    for (std::size_t i = 0; i < 10; ++i) {
      const Vec2 p = rwp.position_of(i, sim.now());
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, cfg.area_width_m);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, cfg.area_height_m);
    }
  }
}

TEST_P(RandomWaypointTest, MotionRespectsSpeedBound) {
  sim::Simulator sim{GetParam()};
  RandomWaypointConfig cfg;
  cfg.max_speed_mps = 2.0;
  cfg.max_pause_s = 5.0;
  RandomWaypoint rwp{sim, 5, cfg, sim.rng().stream("mobility")};
  Vec2 prev[5];
  sim.run_until(sim::SimTime::zero());
  for (std::size_t i = 0; i < 5; ++i) prev[i] = rwp.position_of(i, sim.now());
  const double dt = 0.5;
  for (double t = dt; t < 120.0; t += dt) {
    sim.run_until(sim::SimTime::seconds(t));
    for (std::size_t i = 0; i < 5; ++i) {
      const Vec2 p = rwp.position_of(i, sim.now());
      // Allow a tiny epsilon for floating-point interpolation.
      EXPECT_LE(distance(prev[i], p), cfg.max_speed_mps * dt + 1e-6);
      prev[i] = p;
    }
  }
}

TEST_P(RandomWaypointTest, PositionIsContinuousAcrossLegChanges) {
  sim::Simulator sim{GetParam()};
  RandomWaypointConfig cfg;
  cfg.max_speed_mps = 10.0;
  cfg.max_pause_s = 1.0;
  RandomWaypoint rwp{sim, 3, cfg, sim.rng().stream("mobility")};
  Vec2 prev = rwp.position_of(0, sim.now());
  for (double t = 0.05; t < 200.0; t += 0.05) {
    sim.run_until(sim::SimTime::seconds(t));
    const Vec2 p = rwp.position_of(0, sim.now());
    EXPECT_LE(distance(prev, p), 10.0 * 0.05 + 1e-6) << "jump at t=" << t;
    prev = p;
  }
}

TEST_P(RandomWaypointTest, NodesActuallyMove) {
  sim::Simulator sim{GetParam()};
  RandomWaypointConfig cfg;
  cfg.min_speed_mps = 1.0;
  cfg.max_speed_mps = 2.0;
  cfg.max_pause_s = 1.0;
  RandomWaypoint rwp{sim, 4, cfg, sim.rng().stream("mobility")};
  const Vec2 start = rwp.position_of(0, sim.now());
  sim.run_until(sim::SimTime::seconds(60));
  double moved = distance(start, rwp.position_of(0, sim.now()));
  // After 60 s at >= 1 m/s with short pauses the node cannot still be at
  // its starting point (destinations could coincidentally be close, so
  // only require *some* displacement over the observation).
  double max_disp = moved;
  for (double t = 61; t < 120; t += 1) {
    sim.run_until(sim::SimTime::seconds(t));
    max_disp = std::max(max_disp, distance(start, rwp.position_of(0, sim.now())));
  }
  EXPECT_GT(max_disp, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWaypointTest, ::testing::Values(1, 7, 42, 1234));

TEST(Highway, WrapsAroundAndKeepsLane) {
  sim::Rng rng{5};
  HighwayConfig cfg;
  cfg.length_m = 100.0;
  cfg.lanes = 2;
  cfg.min_speed_mps = 10.0;
  cfg.max_speed_mps = 10.0;
  HighwayMobility hw{4, cfg, rng};
  for (double t = 0; t < 60; t += 0.5) {
    for (std::size_t i = 0; i < 4; ++i) {
      const Vec2 p = hw.position_of(i, sim::SimTime::seconds(t));
      EXPECT_GE(p.x, 0.0);
      EXPECT_LT(p.x, cfg.length_m);
      EXPECT_DOUBLE_EQ(p.y, static_cast<double>(i % 2) * cfg.lane_spacing_m);
    }
  }
}

TEST(Highway, OppositeLanesMoveInOppositeDirections) {
  sim::Rng rng{6};
  HighwayConfig cfg;
  cfg.length_m = 10000.0;  // long stretch: no wraparound during the test
  cfg.lanes = 2;
  cfg.min_speed_mps = 20.0;
  cfg.max_speed_mps = 20.0;
  HighwayMobility hw{2, cfg, rng};
  const double dx0 = hw.position_of(0, sim::SimTime::seconds(1)).x -
                     hw.position_of(0, sim::SimTime::zero()).x;
  const double dx1 = hw.position_of(1, sim::SimTime::seconds(1)).x -
                     hw.position_of(1, sim::SimTime::zero()).x;
  EXPECT_GT(dx0, 0.0);
  EXPECT_LT(dx1, 0.0);
}

}  // namespace
}  // namespace ag::mobility
