#include <gtest/gtest.h>

#include "app/multicast_sink.h"
#include "app/multicast_source.h"
#include "app/workload.h"
#include "stats/run_result.h"
#include "stats/summary.h"

namespace ag {
namespace {

TEST(Workload, PaperPacketCountIs2201) {
  app::Workload w;  // defaults: 120 s .. 560 s every 200 ms
  EXPECT_EQ(w.packet_count(), 2201u);
}

TEST(Workload, DegenerateWindows) {
  app::Workload w;
  w.end = w.start;
  EXPECT_EQ(w.packet_count(), 1u);  // single packet at start
  w.end = w.start - sim::Duration::ms(1);
  EXPECT_EQ(w.packet_count(), 0u);
}

TEST(MulticastSource, EmitsExactlyTheWorkload) {
  sim::Simulator sim;
  app::Workload w;
  w.start = sim::SimTime::seconds(1.0);
  w.end = sim::SimTime::seconds(2.0);
  w.interval = sim::Duration::ms(100);
  int sends = 0;
  app::MulticastSource src{sim, w, [&](std::uint16_t bytes) {
    EXPECT_EQ(bytes, 64);
    ++sends;
  }};
  src.start();
  sim.run_all();
  EXPECT_EQ(sends, 11);
  EXPECT_EQ(src.sent(), 11u);
}

TEST(MulticastSource, FirstPacketAtStartTime) {
  sim::Simulator sim;
  app::Workload w;
  w.start = sim::SimTime::seconds(3.0);
  w.end = sim::SimTime::seconds(3.0);
  sim::SimTime sent_at;
  app::MulticastSource src{sim, w, [&](std::uint16_t) { sent_at = sim.now(); }};
  src.start();
  sim.run_all();
  EXPECT_EQ(sent_at, sim::SimTime::seconds(3.0));
}

TEST(MulticastSink, CountsAndLatency) {
  sim::Simulator sim;
  app::MulticastSink sink{sim};
  sim.schedule_at(sim::SimTime::seconds(1.0), [&] {
    net::MulticastData d;
    d.sent_at = sim::SimTime::seconds(0.4);
    sink.on_deliver(d, false);
    sink.on_deliver(d, true);
  });
  sim.run_all();
  EXPECT_EQ(sink.received(), 2u);
  EXPECT_EQ(sink.via_gossip(), 1u);
  EXPECT_DOUBLE_EQ(sink.mean_latency_s(), 0.6);
  EXPECT_DOUBLE_EQ(sink.max_latency_s(), 0.6);
}

TEST(Summary, BasicStatistics) {
  stats::Summary s = stats::summarize({2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
  EXPECT_EQ(s.n, 3u);
}

TEST(Summary, EmptyAndSingle) {
  EXPECT_EQ(stats::summarize({}).n, 0u);
  stats::Summary s = stats::summarize({5.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(MemberResult, GoodputDefinition) {
  stats::MemberResult m;
  EXPECT_DOUBLE_EQ(m.goodput_pct(), 100.0);  // no replies -> no redundancy
  m.replies_received = 200;
  m.replies_useful = 197;
  EXPECT_DOUBLE_EQ(m.goodput_pct(), 98.5);
}

TEST(RunResult, AggregatesAcrossMembers) {
  stats::RunResult r;
  r.packets_sent = 100;
  for (std::uint64_t recv : {80, 90, 100}) {
    stats::MemberResult m;
    m.received = recv;
    r.members.push_back(m);
  }
  EXPECT_DOUBLE_EQ(r.received_summary().mean, 90.0);
  EXPECT_DOUBLE_EQ(r.delivery_ratio(), 0.9);
}

TEST(RunResult, EmptyMembersIsSafe) {
  stats::RunResult r;
  r.packets_sent = 10;
  EXPECT_DOUBLE_EQ(r.delivery_ratio(), 0.0);
  EXPECT_DOUBLE_EQ(r.mean_goodput_pct(), 100.0);
}

}  // namespace
}  // namespace ag
