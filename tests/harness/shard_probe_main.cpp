// Real worker binary for the sharded-driver self-tests: speaks the exact
// shard CLI the figure benches do (worker --shard=, supervisor --shards,
// --resume, --merge) over the tiny shared probe sweep, so the tests
// exercise the same finish_figure path production benches use.
#include "figure_common.h"
#include "harness/shard_probe_config.h"

int main(int argc, char** argv) {
  const ag::harness::ExperimentBuilder builder = ag::tests::make_probe_builder();
  return ag::bench::finish_figure(builder, ag::bench::parse_shard_cli(argc, argv),
                                  argv[0], "Shard probe", "range_m",
                                  "shard_probe.csv", "BENCH_shard_probe.json",
                                  /*seeds=*/2);
}
