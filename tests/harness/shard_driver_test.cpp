// Self-tests for the crash-resumable sharded driver: checkpoint
// round-trip exactness, atomic-write semantics, the AG_SHARD_FAULT
// grammar, and — driving the real shard_probe worker binary through
// fork/exec — every recovery path: crash + retry, hang + timeout,
// corrupt-output detection, retry exhaustion degrading to failed_shards,
// resume-after-crash, merge-only, and interrupt. The headline invariant
// throughout: a sharded run that completes merges byte-identically to
// the in-process serial run.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <unistd.h>

#include "harness/experiment_builder.h"
#include "harness/atomic_io.h"
#include "harness/interrupt.h"
#include "harness/shard.h"
#include "harness/shard_driver.h"
#include "harness/shard_probe_config.h"

namespace fs = std::filesystem;
using namespace ag;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ShardDriverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("ag_shard_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    ::unsetenv("AG_SHARD_FAULT");
    ::unsetenv("AG_SHARDS");
    ::unsetenv("AG_SHARD_TIMEOUT");
    ::unsetenv("AG_SHARD_RETRIES");
    ::unsetenv("AG_SHARD_BACKOFF_MS");
    harness::clear_interrupt_for_test();
  }

  void TearDown() override {
    ::unsetenv("AG_SHARD_FAULT");
    harness::clear_interrupt_for_test();
    fs::remove_all(dir_);
  }

  [[nodiscard]] std::string path_in(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Driver options every subprocess test shares: the probe worker binary,
  // fast backoff, quiet output.
  [[nodiscard]] harness::ShardDriverOptions probe_options() const {
    harness::ShardDriverOptions opts;
    opts.exe = AG_SHARD_PROBE_EXE;
    opts.shard_dir = path_in("shards");
    opts.concurrency = 2;
    opts.timeout_s = 120;
    opts.max_attempts = 3;
    opts.backoff_ms = 1;
    opts.quiet = true;
    return opts;
  }

  // The serial reference: the in-process run every merged sharded run
  // must reproduce byte-for-byte.
  [[nodiscard]] std::string serial_json() {
    const harness::ExperimentBuilder builder = tests::make_probe_builder();
    const harness::ExperimentResult result = builder.run();
    const std::string path = path_in("serial.json");
    EXPECT_TRUE(result.write_json(path));
    return read_file(path);
  }

  [[nodiscard]] std::string merged_json(const harness::ShardRunReport& report) {
    const harness::ExperimentBuilder builder = tests::make_probe_builder();
    const harness::ExperimentResult result =
        builder.assemble(report.results, report.sharding);
    const std::string path = path_in("merged.json");
    EXPECT_TRUE(result.write_json(path));
    return read_file(path);
  }

  fs::path dir_;
};

TEST_F(ShardDriverTest, CellDecompositionMatchesSlotOrder) {
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  ASSERT_EQ(builder.cell_count(), 4u);  // 2 values x 1 protocol x 2 seeds
  const harness::CellId c0 = builder.cell_id(0);
  const harness::CellId c1 = builder.cell_id(1);
  const harness::CellId c2 = builder.cell_id(2);
  EXPECT_EQ(c0.protocol, "maodv_gossip");
  EXPECT_DOUBLE_EQ(c0.x, 60.0);
  EXPECT_EQ(c0.seed, 1u);
  EXPECT_EQ(c1.seed, 2u);
  EXPECT_DOUBLE_EQ(c2.x, 80.0);
  EXPECT_EQ(c2.seed, 1u);
}

TEST_F(ShardDriverTest, CheckpointRoundTripIsExact) {
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const stats::RunResult original = builder.run_cell(0);

  const std::string path = path_in("shard_0.json");
  ASSERT_TRUE(harness::write_shard_json(path, builder.experiment_name(), 0,
                                        builder.cell_id(0), original));
  std::string error;
  const std::optional<stats::RunResult> reread =
      harness::read_shard_json(path, builder.experiment_name(), 0, &error);
  ASSERT_TRUE(reread.has_value()) << error;

  // Exactness check without an operator==: re-serialize and byte-compare.
  const std::string again = path_in("shard_0_again.json");
  ASSERT_TRUE(harness::write_shard_json(again, builder.experiment_name(), 0,
                                        builder.cell_id(0), *reread));
  EXPECT_EQ(read_file(path), read_file(again));
}

TEST_F(ShardDriverTest, CheckpointRejectsMismatchAndCorruption) {
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const stats::RunResult result = builder.run_cell(0);
  const std::string path = path_in("shard_0.json");
  ASSERT_TRUE(harness::write_shard_json(path, builder.experiment_name(), 0,
                                        builder.cell_id(0), result));

  std::string error;
  EXPECT_FALSE(harness::read_shard_json(path, builder.experiment_name(), 1, &error)
                   .has_value());
  EXPECT_FALSE(harness::read_shard_json(path, "other_experiment", 0, &error)
                   .has_value());
  EXPECT_FALSE(harness::read_shard_json(path_in("absent.json"),
                                        builder.experiment_name(), 0, &error)
                   .has_value());

  // Truncate mid-file: must read as corrupt, not as a zeroed result.
  const std::string whole = read_file(path);
  std::ofstream torn{path, std::ios::trunc | std::ios::binary};
  torn << whole.substr(0, whole.size() / 2);
  torn.close();
  EXPECT_FALSE(harness::read_shard_json(path, builder.experiment_name(), 0, &error)
                   .has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(ShardDriverTest, AtomicFileCommitsOrLeavesNothing) {
  const std::string path = path_in("out.txt");
  ASSERT_TRUE(harness::write_file_atomic(path, [](std::ostream& out) {
    out << "payload";
  }));
  EXPECT_EQ(read_file(path), "payload");

  const std::string dropped = path_in("dropped.txt");
  {
    harness::AtomicFile file{dropped};
    file.stream() << "never visible";
    // no commit: destructor must remove the temp file
  }
  EXPECT_FALSE(fs::exists(dropped));
  std::size_t residue = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      ++residue;
    }
  }
  EXPECT_EQ(residue, 0u);
}

TEST_F(ShardDriverTest, FaultGrammarParsesAndRejects) {
  ::setenv("AG_SHARD_FAULT", "crash@3", 1);
  harness::ShardFault fault = harness::shard_fault_from_env();
  EXPECT_EQ(fault.mode, harness::ShardFault::Mode::crash);
  EXPECT_EQ(fault.shard, 3u);
  EXPECT_EQ(fault.times, 1u);
  EXPECT_TRUE(fault.matches(3, 1));
  EXPECT_FALSE(fault.matches(3, 2));
  EXPECT_FALSE(fault.matches(2, 1));

  ::setenv("AG_SHARD_FAULT", "hang@0x99", 1);
  fault = harness::shard_fault_from_env();
  EXPECT_EQ(fault.mode, harness::ShardFault::Mode::hang);
  EXPECT_EQ(fault.times, 99u);
  EXPECT_TRUE(fault.matches(0, 99));
  EXPECT_FALSE(fault.matches(0, 100));

  ::setenv("AG_SHARD_FAULT", "corrupt@1x2", 1);
  fault = harness::shard_fault_from_env();
  EXPECT_EQ(fault.mode, harness::ShardFault::Mode::corrupt);

  for (const char* bad : {"", "crash", "crash@", "crash@x2", "melt@1",
                          "crash@1x", "crash@1x0", "crash@-1", "crash@1y2"}) {
    ::setenv("AG_SHARD_FAULT", bad, 1);
    EXPECT_EQ(harness::shard_fault_from_env().mode,
              harness::ShardFault::Mode::none)
        << "accepted malformed AG_SHARD_FAULT=\"" << bad << "\"";
  }
  ::unsetenv("AG_SHARD_FAULT");
  EXPECT_EQ(harness::shard_fault_from_env().mode, harness::ShardFault::Mode::none);
}

TEST_F(ShardDriverTest, ShardedRunMergesByteIdenticalToSerial) {
  const std::string serial = serial_json();
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const harness::ShardRunReport report = run_shards(builder, probe_options());
  ASSERT_FALSE(report.interrupted);
  EXPECT_EQ(report.launched, 4u);
  EXPECT_EQ(report.reused, 0u);
  EXPECT_EQ(report.sharding.retried, 0u);
  ASSERT_TRUE(report.sharding.failed.empty());
  EXPECT_EQ(merged_json(report), serial);
  // Healthy runs must not carry a sharding section — that would break
  // byte-identity with pre-shard BENCH files.
  EXPECT_EQ(merged_json(report).find("\"sharding\""), std::string::npos);
}

TEST_F(ShardDriverTest, CrashedShardIsRetriedAndStillMergesClean) {
  const std::string serial = serial_json();
  ::setenv("AG_SHARD_FAULT", "crash@1", 1);  // first attempt of shard 1 dies
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const harness::ShardRunReport report = run_shards(builder, probe_options());
  ASSERT_FALSE(report.interrupted);
  EXPECT_EQ(report.sharding.retried, 1u);
  ASSERT_TRUE(report.sharding.failed.empty());
  EXPECT_EQ(merged_json(report), serial);
}

TEST_F(ShardDriverTest, HangingShardIsKilledByTimeoutAndRetried) {
  const std::string serial = serial_json();
  ::setenv("AG_SHARD_FAULT", "hang@2", 1);
  harness::ShardDriverOptions opts = probe_options();
  opts.timeout_s = 1;
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const harness::ShardRunReport report = run_shards(builder, opts);
  ASSERT_FALSE(report.interrupted);
  EXPECT_GE(report.sharding.retried, 1u);
  ASSERT_TRUE(report.sharding.failed.empty());
  EXPECT_EQ(merged_json(report), serial);
}

TEST_F(ShardDriverTest, CorruptOutputIsDetectedAndRetried) {
  const std::string serial = serial_json();
  ::setenv("AG_SHARD_FAULT", "corrupt@0", 1);
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const harness::ShardRunReport report = run_shards(builder, probe_options());
  ASSERT_FALSE(report.interrupted);
  EXPECT_EQ(report.sharding.retried, 1u);
  ASSERT_TRUE(report.sharding.failed.empty());
  EXPECT_EQ(merged_json(report), serial);
}

TEST_F(ShardDriverTest, RetryExhaustionDegradesToFailedShards) {
  ::setenv("AG_SHARD_FAULT", "crash@1x99", 1);  // every attempt of shard 1 dies
  harness::ShardDriverOptions opts = probe_options();
  opts.max_attempts = 2;
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const harness::ShardRunReport report = run_shards(builder, opts);
  ASSERT_FALSE(report.interrupted);
  ASSERT_EQ(report.sharding.failed.size(), 1u);
  EXPECT_EQ(report.sharding.failed[0].shard, 1u);
  EXPECT_EQ(report.sharding.failed[0].attempts, 2u);
  EXPECT_EQ(report.sharding.failed[0].cell.seed, 2u);
  EXPECT_FALSE(report.results[1].has_value());
  ASSERT_TRUE(report.results[0].has_value());

  // The sweep degrades instead of aborting: the merged JSON still has
  // every point, plus a failed_shards section naming the lost cell.
  const std::string merged = merged_json(report);
  EXPECT_NE(merged.find("\"failed_shards\""), std::string::npos);
  EXPECT_NE(merged.find("\"sharding\""), std::string::npos);
  EXPECT_NE(merged.find("\"series\""), std::string::npos);
}

TEST_F(ShardDriverTest, ResumeAfterCrashReusesCheckpointsAndMergesClean) {
  const std::string serial = serial_json();
  // Run 1: shard 2 fails every attempt — three checkpoints land, one hole.
  ::setenv("AG_SHARD_FAULT", "crash@2x99", 1);
  harness::ShardDriverOptions opts = probe_options();
  opts.max_attempts = 1;
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const harness::ShardRunReport first = run_shards(builder, opts);
  ASSERT_EQ(first.sharding.failed.size(), 1u);

  // Run 2: fault gone, --resume. Only the missing cell re-runs.
  ::unsetenv("AG_SHARD_FAULT");
  opts = probe_options();
  opts.resume = true;
  const harness::ShardRunReport second = run_shards(builder, opts);
  ASSERT_FALSE(second.interrupted);
  EXPECT_EQ(second.reused, 3u);
  EXPECT_EQ(second.launched, 1u);
  ASSERT_TRUE(second.sharding.failed.empty());
  EXPECT_EQ(merged_json(second), serial);
}

TEST_F(ShardDriverTest, MergeOnlyDegradesMissingCells) {
  harness::ShardDriverOptions opts = probe_options();
  opts.merge_only = true;
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const harness::ShardRunReport report = run_shards(builder, opts);
  ASSERT_FALSE(report.interrupted);
  EXPECT_EQ(report.launched, 0u);
  EXPECT_EQ(report.reused, 0u);
  EXPECT_EQ(report.sharding.failed.size(), 4u);
}

TEST_F(ShardDriverTest, FreshRunClearsStaleCheckpoints) {
  // A checkpoint from some other sweep must not leak into a fresh run.
  fs::create_directories(path_in("shards"));
  std::ofstream stale{path_in("shards") + "/shard_0.json"};
  stale << "{\"format\": 1, \"experiment\": \"other\"}";
  stale.close();
  const std::string serial = serial_json();
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const harness::ShardRunReport report = run_shards(builder, probe_options());
  EXPECT_EQ(report.reused, 0u);
  EXPECT_EQ(report.launched, 4u);
  EXPECT_EQ(merged_json(report), serial);
}

TEST_F(ShardDriverTest, InterruptStopsDriverWithoutResults) {
  harness::install_interrupt_handlers();
  ::raise(SIGTERM);
  ASSERT_TRUE(harness::interrupt_requested());
  const harness::ExperimentBuilder builder = tests::make_probe_builder();
  const harness::ShardRunReport report = run_shards(builder, probe_options());
  EXPECT_TRUE(report.interrupted);
  EXPECT_EQ(report.launched, 0u);
  EXPECT_EQ(harness::interrupt_exit_code(), 128 + SIGTERM);
  harness::clear_interrupt_for_test();
}

TEST_F(ShardDriverTest, ProbeBinaryEndToEndThroughItsOwnCli) {
  const std::string serial = serial_json();
  // Drive the probe exactly like a user: supervisor CLI with an injected
  // crash, then --resume, asserting the merged file matches serial bytes.
  const std::string cd = "cd '" + dir_.string() + "' && ";
  const std::string exe = "'" AG_SHARD_PROBE_EXE "'";
  int rc = std::system((cd + "AG_SHARD_FAULT=crash@0x99 AG_SHARD_RETRIES=2 "
                        "AG_SHARD_BACKOFF_MS=1 " +
                        exe + " --shards=2 > probe1.log 2>&1")
                           .c_str());
  ASSERT_EQ(rc, 0);  // degrades gracefully, still exits 0 with outputs
  std::string merged = read_file((dir_ / "BENCH_shard_probe.json").string());
  EXPECT_NE(merged.find("\"failed_shards\""), std::string::npos);

  rc = std::system((cd + exe + " --resume > probe2.log 2>&1").c_str());
  ASSERT_EQ(rc, 0);
  merged = read_file((dir_ / "BENCH_shard_probe.json").string());
  EXPECT_EQ(merged, serial);

  // The manifest journal recorded the whole story.
  const std::string manifest =
      read_file((dir_ / "shards_shard_probe" / "manifest.jsonl").string());
  EXPECT_NE(manifest.find("\"event\": \"plan\""), std::string::npos);
  EXPECT_NE(manifest.find("\"event\": \"failed\""), std::string::npos);
  EXPECT_NE(manifest.find("\"event\": \"reused\""), std::string::npos);
  EXPECT_NE(manifest.find("\"event\": \"done\""), std::string::npos);
}

}  // namespace
