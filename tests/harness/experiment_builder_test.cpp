// The fluent experiment API: sweep wiring, JSON emission, and the
// parallelism contract — multi-seed points executed across N worker
// threads must be bit-identical to the serial run for fixed seeds.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "harness/experiment_builder.h"

namespace ag::harness {
namespace {

ScenarioConfig tiny_base() {
  ScenarioConfig c;
  c.node_count = 10;
  c.phy.transmission_range_m = 75.0;
  c.waypoint.max_speed_mps = 0.5;
  c.duration = sim::SimTime::seconds(40.0);
  c.workload.start = sim::SimTime::seconds(12.0);
  c.workload.end = sim::SimTime::seconds(32.0);
  return c;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    EXPECT_EQ(a.series[s].name, b.series[s].name);
    ASSERT_EQ(a.series[s].points.size(), b.series[s].points.size());
    for (std::size_t i = 0; i < a.series[s].points.size(); ++i) {
      const SeriesPoint& pa = a.series[s].points[i];
      const SeriesPoint& pb = b.series[s].points[i];
      EXPECT_DOUBLE_EQ(pa.x, pb.x);
      EXPECT_DOUBLE_EQ(pa.received.mean, pb.received.mean);
      EXPECT_DOUBLE_EQ(pa.received.min, pb.received.min);
      EXPECT_DOUBLE_EQ(pa.received.max, pb.received.max);
      EXPECT_DOUBLE_EQ(pa.received.stddev, pb.received.stddev);
      EXPECT_EQ(pa.received.n, pb.received.n);
      EXPECT_DOUBLE_EQ(pa.mean_delivery_ratio, pb.mean_delivery_ratio);
      EXPECT_DOUBLE_EQ(pa.mean_goodput_pct, pb.mean_goodput_pct);
      EXPECT_EQ(pa.mean_transmissions, pb.mean_transmissions);
      ASSERT_EQ(pa.runs.size(), pb.runs.size());
      for (std::size_t r = 0; r < pa.runs.size(); ++r) {
        EXPECT_EQ(pa.runs[r].seed, pb.runs[r].seed);
        EXPECT_EQ(pa.runs[r].totals.channel_transmissions,
                  pb.runs[r].totals.channel_transmissions);
      }
    }
  }
}

TEST(ExperimentBuilder, ParallelSeedsMatchSerialExactly) {
  auto build = [] {
    return Experiment::sweep("range_m", {65.0, 80.0})
        .base(tiny_base())
        .protocols({Protocol::maodv_gossip, Protocol::maodv})
        .seeds(2);
  };
  ExperimentResult serial = build().parallel(1).run();
  ExperimentResult threaded = build().parallel(4).run();
  expect_identical(serial, threaded);
}

TEST(ExperimentBuilder, MatchesRunPointAggregation) {
  ScenarioConfig c = tiny_base();
  c.with_range(70.0).with_protocol(Protocol::maodv_gossip);
  SeriesPoint direct = run_point(c, 2, 70.0);
  ExperimentResult viaBuilder = Experiment::sweep("range_m", {70.0})
                                    .base(tiny_base())
                                    .protocols({Protocol::maodv_gossip})
                                    .seeds(2)
                                    .parallel(3)
                                    .run();
  const SeriesPoint& p = viaBuilder.series.front().points.front();
  EXPECT_DOUBLE_EQ(p.received.mean, direct.received.mean);
  EXPECT_DOUBLE_EQ(p.received.min, direct.received.min);
  EXPECT_DOUBLE_EQ(p.received.max, direct.received.max);
  EXPECT_EQ(p.received.n, direct.received.n);
  EXPECT_EQ(p.mean_transmissions, direct.mean_transmissions);
}

TEST(ExperimentBuilder, SeriesNamedFromRegistryAndSized) {
  ExperimentResult r = Experiment::sweep("range_m", {70.0, 80.0})
                           .base(tiny_base())
                           .protocols({Protocol::flooding})
                           .seeds(1)
                           .run();
  ASSERT_EQ(r.series.size(), 1u);
  EXPECT_EQ(r.series.front().name, "flooding");
  ASSERT_EQ(r.series.front().points.size(), 2u);
  EXPECT_EQ(r.series.front().points.front().runs.size(), 1u);
  EXPECT_GT(r.series.front().points.front().received.mean, 0.0);
}

TEST(ExperimentBuilder, UnknownSweepParameterThrowsImmediately) {
  EXPECT_THROW(Experiment::sweep("warp_factor", {9.0}), std::invalid_argument);
}

TEST(ExperimentBuilder, FaultAxesAreNamedKnobs) {
  // The churn bench sweeps these; a rename there must fail here.
  EXPECT_NO_THROW(Experiment::sweep("churn_per_min", {0.0, 1.0}));
  EXPECT_NO_THROW(Experiment::sweep("crash_fraction", {0.1}));
  EXPECT_NO_THROW(Experiment::sweep("partition_s", {30.0}));
}

TEST(ExperimentBuilder, CustomApplySweepsArbitraryKnobs) {
  ExperimentResult r =
      Experiment::sweep("pause_s", {0.0, 10.0},
                        [](ScenarioConfig& c, double x) { c.waypoint.max_pause_s = x; })
          .base(tiny_base())
          .protocols({Protocol::maodv})
          .seeds(1)
          .run();
  ASSERT_EQ(r.series.front().points.size(), 2u);
  EXPECT_EQ(r.param, "pause_s");
}

TEST(ExperimentBuilder, WritesJson) {
  const std::string path = "/tmp/ag_experiment_builder_test.json";
  ExperimentResult r = Experiment::sweep("range_m", {70.0})
                           .base(tiny_base())
                           .protocols({Protocol::maodv_gossip})
                           .seeds(1)
                           .name("builder_test")
                           .run();
  ASSERT_TRUE(r.write_json(path));
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"experiment\": \"builder_test\""), std::string::npos);
  EXPECT_NE(json.find("\"param\": \"range_m\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"maodv_gossip\""), std::string::npos);
  EXPECT_NE(json.find("\"x\": 70"), std::string::npos);
  EXPECT_NE(json.find("\"delivery_ratio\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SeedsFromEnv, RejectsZeroAndGarbage) {
  unsetenv("AG_SEEDS");
  EXPECT_EQ(seeds_from_env(4), 4u);
  setenv("AG_SEEDS", "0", 1);
  EXPECT_EQ(seeds_from_env(4), 4u);
  setenv("AG_SEEDS", "-3", 1);
  EXPECT_EQ(seeds_from_env(4), 4u);
  setenv("AG_SEEDS", "7abc", 1);
  EXPECT_EQ(seeds_from_env(4), 4u);
  setenv("AG_SEEDS", "", 1);
  EXPECT_EQ(seeds_from_env(4), 4u);
  setenv("AG_SEEDS", "12", 1);
  EXPECT_EQ(seeds_from_env(4), 12u);
  unsetenv("AG_SEEDS");
}

}  // namespace
}  // namespace ag::harness
