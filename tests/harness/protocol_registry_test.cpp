// The protocol-stack plugin API: enum and string lookup, the unknown-name
// error path, and — the paper's portability claim made executable — one
// generic delivery scenario iterated over every registered protocol,
// built through the same factories the harness uses.
#include <gtest/gtest.h>

#include <stdexcept>

#include "harness/protocol_registry.h"
#include "testutil/stack_fixture.h"

namespace ag::harness {
namespace {

TEST(ProtocolRegistry, EnumLookupReturnsEntries) {
  const ProtocolRegistry& reg = ProtocolRegistry::instance();
  EXPECT_EQ(reg.entry(Protocol::maodv).name, "maodv");
  EXPECT_EQ(reg.entry(Protocol::maodv_gossip).name, "maodv_gossip");
  EXPECT_EQ(reg.entry(Protocol::flooding).name, "flooding");
  EXPECT_EQ(reg.entry(Protocol::odmrp).name, "odmrp");
  EXPECT_EQ(reg.entry(Protocol::odmrp_gossip).name, "odmrp_gossip");
  EXPECT_FALSE(reg.entry(Protocol::maodv).gossip_capable);
  EXPECT_TRUE(reg.entry(Protocol::maodv_gossip).gossip_capable);
  EXPECT_TRUE(reg.entry(Protocol::odmrp_gossip).gossip_capable);
}

TEST(ProtocolRegistry, StringLookupRoundTrips) {
  const ProtocolRegistry& reg = ProtocolRegistry::instance();
  for (Protocol p : reg.all()) {
    EXPECT_EQ(reg.parse(reg.name_of(p)), p);
  }
  EXPECT_GE(reg.all().size(), 5u);
}

TEST(ProtocolRegistry, ParseListSplitsAndSkipsEmptySegments) {
  const ProtocolRegistry& reg = ProtocolRegistry::instance();
  const std::vector<Protocol> both = reg.parse_list("maodv_gossip,flooding");
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0], Protocol::maodv_gossip);
  EXPECT_EQ(both[1], Protocol::flooding);
  // Stray commas (trailing, doubled) are tolerated, as the CLI always has.
  const std::vector<Protocol> one = reg.parse_list(",odmrp,");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], Protocol::odmrp);
}

TEST(ProtocolRegistry, ParseListRejectsUnknownNamesWithTheRegisteredList) {
  const ProtocolRegistry& reg = ProtocolRegistry::instance();
  try {
    (void)reg.parse_list("maodv,no_such_protocol");
    FAIL() << "parse_list must throw on unknown names";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_protocol"), std::string::npos);
    // Every registered name must be in the message — that is what makes
    // the bench CLI failure actionable.
    for (const Protocol p : reg.all()) {
      EXPECT_NE(what.find(reg.name_of(p)), std::string::npos) << reg.name_of(p);
    }
  }
}

TEST(ProtocolRegistry, ParseListRejectsEmptyLists) {
  const ProtocolRegistry& reg = ProtocolRegistry::instance();
  EXPECT_THROW((void)reg.parse_list(""), std::invalid_argument);
  EXPECT_THROW((void)reg.parse_list(",,"), std::invalid_argument);
}

TEST(ProtocolRegistry, UnknownNameIsAnError) {
  const ProtocolRegistry& reg = ProtocolRegistry::instance();
  EXPECT_EQ(reg.find("no_such_protocol"), nullptr);
  try {
    (void)reg.parse("no_such_protocol");
    FAIL() << "parse must throw on unknown names";
  } catch (const std::invalid_argument& e) {
    // The error must name the offender and list the alternatives.
    EXPECT_NE(std::string(e.what()).find("no_such_protocol"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("maodv_gossip"), std::string::npos);
  }
}

TEST(ProtocolRegistry, FactoriesBuildWorkingRouters) {
  const ProtocolRegistry& reg = ProtocolRegistry::instance();
  for (Protocol p : reg.all()) {
    testutil::StackOptions opts;
    opts.protocol = p;
    testutil::StaticNetwork net{testutil::line_positions(3, 80.0), opts};
    EXPECT_EQ(net.multicast_router(1).self(), net::NodeId{1})
        << reg.name_of(p);
  }
}

// The same three-node line scenario, run once per registered protocol:
// members at both ends, source at node 0, five packets. Every substrate
// must deliver to the far member — that is what "pluggable" means.
class EveryProtocol : public ::testing::TestWithParam<Protocol> {};

TEST_P(EveryProtocol, DeliversAcrossALine) {
  testutil::StackOptions opts;
  opts.protocol = GetParam();
  testutil::StaticNetwork net{testutil::line_positions(3, 80.0), opts};
  net.join_all({0, 2}, 15.0);
  for (int i = 0; i < 5; ++i) {
    net.sim().schedule_after(sim::Duration::ms(500 * i), [&net] {
      net.multicast_router(0).send_multicast(testutil::kGroup, 64);
    });
  }
  net.run_for(15.0);
  EXPECT_GE(net.agent(2).counters().delivered_unique, 4u)
      << ProtocolRegistry::instance().name_of(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, EveryProtocol,
    ::testing::ValuesIn(ProtocolRegistry::instance().all()),
    [](const ::testing::TestParamInfo<Protocol>& param_info) {
      return ProtocolRegistry::instance().name_of(param_info.param);
    });

}  // namespace
}  // namespace ag::harness
