// The sweep the shard_probe worker binary and shard_driver_test share:
// both sides must build the identical ExperimentBuilder grid (same
// experiment name, cells, seeds) or checkpoint verification would reject
// every shard. Deliberately tiny — 12 nodes, 30 s runs, 2 values x 1
// protocol x 2 seeds = 4 cells — so the full fault-injection matrix
// (crash, hang, corrupt, resume, byte-identity) stays test-suite fast.
#ifndef AG_TESTS_HARNESS_SHARD_PROBE_CONFIG_H
#define AG_TESTS_HARNESS_SHARD_PROBE_CONFIG_H

#include "harness/experiment_builder.h"
#include "harness/scenario.h"

namespace ag::tests {

inline harness::ExperimentBuilder make_probe_builder() {
  harness::ScenarioConfig base;
  base.with_nodes(12).with_max_speed(1.0);
  base.duration = sim::SimTime::seconds(30.0);
  base.workload.start = sim::SimTime::seconds(5.0);
  base.workload.end = sim::SimTime::seconds(25.0);
  return harness::Experiment::sweep("range_m", {60.0, 80.0})
      .base(base)
      .protocols({harness::Protocol::maodv_gossip})
      .seeds(2)
      .name("shard_probe");
}

}  // namespace ag::tests

#endif  // AG_TESTS_HARNESS_SHARD_PROBE_CONFIG_H
