// TSan stress companion to experiment_builder_test: the sanitizer CI
// matrix (AG_SANITIZE=tsan) runs this to hammer the two concurrency
// surfaces the builder owns — the work-stealing worker pool writing the
// pre-sized result grid, and the thread-local PacketPool slab reuse
// across runs executed on the same worker. The assertions re-pin the
// serial == parallel equality contract under contention (many more jobs
// than the per-test sweep in experiment_builder_test), so a data race
// surfaces either as a TSan report or as a diverging aggregate.
//
// Added by the correctness-tooling PR: the initial ASan/UBSan/TSan
// matrix run over tier-1 + smokes came back clean, so per ISSUE 6 this
// explicit stress test guards the builder instead of a finding fix.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "harness/experiment_builder.h"
#include "net/data_plane.h"

namespace ag::harness {
namespace {

ScenarioConfig stress_base() {
  ScenarioConfig c;
  c.node_count = 8;
  c.phy.transmission_range_m = 80.0;
  c.waypoint.max_speed_mps = 1.0;
  c.duration = sim::SimTime::seconds(25.0);
  c.workload.start = sim::SimTime::seconds(8.0);
  c.workload.end = sim::SimTime::seconds(20.0);
  return c;
}

void expect_identical(const ExperimentResult& a, const ExperimentResult& b) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t s = 0; s < a.series.size(); ++s) {
    EXPECT_EQ(a.series[s].name, b.series[s].name);
    ASSERT_EQ(a.series[s].points.size(), b.series[s].points.size());
    for (std::size_t i = 0; i < a.series[s].points.size(); ++i) {
      const SeriesPoint& pa = a.series[s].points[i];
      const SeriesPoint& pb = b.series[s].points[i];
      EXPECT_DOUBLE_EQ(pa.received.mean, pb.received.mean);
      EXPECT_DOUBLE_EQ(pa.received.stddev, pb.received.stddev);
      EXPECT_DOUBLE_EQ(pa.mean_delivery_ratio, pb.mean_delivery_ratio);
      EXPECT_EQ(pa.mean_transmissions, pb.mean_transmissions);
      EXPECT_EQ(pa.mean_deliveries, pb.mean_deliveries);
      // Pool and table counters are logical-op counts, so they must be
      // scheduling-independent too — a thread-local slab leaking state
      // between workers shows up here before it corrupts payloads.
      EXPECT_EQ(pa.mean_table_probes, pb.mean_table_probes);
      EXPECT_EQ(pa.mean_pool_hits, pb.mean_pool_hits);
      EXPECT_EQ(pa.mean_pool_misses, pb.mean_pool_misses);
      ASSERT_EQ(pa.runs.size(), pb.runs.size());
      for (std::size_t r = 0; r < pa.runs.size(); ++r) {
        EXPECT_EQ(pa.runs[r].seed, pb.runs[r].seed);
        EXPECT_EQ(pa.runs[r].totals.channel_transmissions,
                  pb.runs[r].totals.channel_transmissions);
        EXPECT_EQ(pa.runs[r].totals.phy_deliveries, pb.runs[r].totals.phy_deliveries);
        EXPECT_EQ(pa.runs[r].totals.sim_events, pb.runs[r].totals.sim_events);
      }
    }
  }
}

// Many small jobs across more threads than cores: maximizes preemption
// inside run_scenario and slab churn inside each worker's PacketPool.
TEST(BuilderParallelStress, ManyJobsManyThreadsMatchSerial) {
  auto build = [] {
    return Experiment::sweep("range_m", {60.0, 70.0, 80.0, 90.0})
        .base(stress_base())
        .protocols({Protocol::maodv_gossip, Protocol::flooding})
        .seeds(3);  // 4 x 2 x 3 = 24 jobs
  };
  ExperimentResult serial = build().parallel(1).run();
  ExperimentResult threaded = build().parallel(8).run();
  expect_identical(serial, threaded);
}

// The progress callback runs on every worker thread concurrently; the
// builder's contract is that `completed` observes each increment once.
// An atomic tally is the race-free way to consume it — this pins that
// the callback is invoked exactly once per job with a full final count.
TEST(BuilderParallelStress, ProgressCallbackCountsEveryJobOnce) {
  std::atomic<std::size_t> calls{0};
  std::atomic<std::size_t> max_completed{0};
  ExperimentResult r = Experiment::sweep("range_m", {70.0, 85.0})
                           .base(stress_base())
                           .protocols({Protocol::maodv_gossip})
                           .seeds(4)  // 2 x 1 x 4 = 8 jobs
                           .parallel(4)
                           .on_progress([&](std::size_t completed, std::size_t total) {
                             calls.fetch_add(1);
                             EXPECT_LE(completed, total);
                             std::size_t seen = max_completed.load();
                             while (completed > seen &&
                                    !max_completed.compare_exchange_weak(seen, completed)) {
                             }
                           })
                           .run();
  EXPECT_EQ(calls.load(), 8u);
  EXPECT_EQ(max_completed.load(), 8u);
  ASSERT_EQ(r.series.size(), 1u);
}

// Back-to-back parallel builds on the same thread pool pattern: slabs
// recycled by earlier runs must not perturb later ones (Network clears
// the local pool at construction; this exercises that contract under
// TSan with interleaved lifetimes).
TEST(BuilderParallelStress, RepeatedParallelBuildsStayIdentical) {
  auto build = [] {
    return Experiment::sweep("range_m", {75.0})
        .base(stress_base())
        .protocols({Protocol::maodv_gossip})
        .seeds(4)
        .parallel(4);
  };
  ExperimentResult first = build().run();
  for (int i = 0; i < 3; ++i) {
    ExperimentResult again = build().run();
    expect_identical(first, again);
  }
  // The local (main-thread) pool keeps at most kMaxFree slabs and never
  // goes negative-size — cheap invariant that would trip on a recycle
  // race corrupting the free list.
  EXPECT_LE(net::PacketPool::local().free_count(), 4096u);
}

}  // namespace
}  // namespace ag::harness
