#include <gtest/gtest.h>

#include <cstdio>

#include "harness/experiment.h"
#include "harness/figure.h"
#include "harness/network.h"
#include "harness/scenario.h"

namespace ag::harness {
namespace {

TEST(Scenario, PaperDefaults) {
  ScenarioConfig c;
  EXPECT_EQ(c.node_count, 40u);
  EXPECT_EQ(c.member_count(), 13u);  // one third of 40, rounded
  EXPECT_DOUBLE_EQ(c.waypoint.area_width_m, 200.0);
  EXPECT_DOUBLE_EQ(c.waypoint.max_pause_s, 80.0);
  EXPECT_EQ(c.workload.packet_count(), 2201u);
  EXPECT_DOUBLE_EQ(c.phy.bitrate_bps, 2e6);
  EXPECT_EQ(c.aodv.hello_interval, sim::Duration::ms(600));
  EXPECT_EQ(c.aodv.allowed_hello_loss, 4u);
  EXPECT_EQ(c.maodv.group_hello_interval, sim::Duration::ms(5000));
  EXPECT_EQ(c.gossip.round_interval, sim::Duration::ms(1000));
  EXPECT_EQ(c.gossip.max_lost_in_message, 10u);
  EXPECT_EQ(c.gossip.member_cache_size, 10u);
  EXPECT_EQ(c.gossip.lost_table_capacity, 200u);
  EXPECT_EQ(c.gossip.history_capacity, 100u);
}

TEST(Scenario, WithersChainAndApply) {
  ScenarioConfig c;
  c.with_range(55.0).with_max_speed(2.0).with_nodes(100).with_seed(9);
  EXPECT_DOUBLE_EQ(c.phy.transmission_range_m, 55.0);
  EXPECT_DOUBLE_EQ(c.waypoint.max_speed_mps, 2.0);
  EXPECT_EQ(c.node_count, 100u);
  EXPECT_EQ(c.seed, 9u);
  c.with_protocol(Protocol::maodv);
  EXPECT_FALSE(c.gossip.enabled);
  c.with_protocol(Protocol::maodv_gossip);
  EXPECT_TRUE(c.gossip.enabled);
}

TEST(Scenario, MemberCountNeverBelowTwo) {
  ScenarioConfig c;
  c.node_count = 3;
  EXPECT_EQ(c.member_count(), 2u);
}

TEST(Scenario, MemberFractionOutsideUnitIntervalThrows) {
  ScenarioConfig c;
  c.member_fraction = 0.0;
  EXPECT_THROW((void)c.member_count(), std::invalid_argument);
  c.member_fraction = -0.5;
  EXPECT_THROW((void)c.member_count(), std::invalid_argument);
  c.member_fraction = 1.5;
  EXPECT_THROW((void)c.member_count(), std::invalid_argument);
  c.member_fraction = 1.0;  // inclusive upper bound is fine
  EXPECT_EQ(c.member_count(), c.node_count);
}

TEST(Scenario, MemberCountExceedingNodesThrows) {
  // The two-member floor cannot be met on a one-node network; this used
  // to clamp silently into an impossible configuration.
  ScenarioConfig c;
  c.node_count = 1;
  EXPECT_THROW((void)c.member_count(), std::invalid_argument);
}

TEST(Experiment, RunPointAggregatesSeeds) {
  ScenarioConfig c;
  c.node_count = 12;
  c.duration = sim::SimTime::seconds(40.0);
  c.workload.start = sim::SimTime::seconds(15.0);
  c.workload.end = sim::SimTime::seconds(35.0);
  c.with_protocol(Protocol::maodv_gossip);
  SeriesPoint p = run_point(c, 2, 75.0);
  EXPECT_DOUBLE_EQ(p.x, 75.0);
  EXPECT_EQ(p.runs.size(), 2u);
  // 3 receivers (4 members minus source) x 2 seeds.
  EXPECT_EQ(p.received.n, 6u);
  EXPECT_GE(p.received.max, p.received.mean);
  EXPECT_LE(p.received.min, p.received.mean);
}

TEST(Experiment, SeedsFromEnvFallback) {
  unsetenv("AG_SEEDS");
  EXPECT_EQ(seeds_from_env(4), 4u);
  setenv("AG_SEEDS", "7", 1);
  EXPECT_EQ(seeds_from_env(4), 7u);
  setenv("AG_SEEDS", "junk", 1);
  EXPECT_EQ(seeds_from_env(4), 4u);
  unsetenv("AG_SEEDS");
}

TEST(Figure, CsvRoundTrip) {
  FigureSeries gossip{"Gossip", {}};
  SeriesPoint p;
  p.x = 45.0;
  p.received.mean = 100.5;
  p.received.min = 90;
  p.received.max = 110;
  gossip.points.push_back(p);
  const std::string path = "/tmp/ag_figure_test.csv";
  ASSERT_TRUE(write_figure_csv(path, {gossip}));
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "x,Gossip_avg,Gossip_min,Gossip_max\n");
  ASSERT_NE(std::fgets(buf, sizeof buf, f), nullptr);
  EXPECT_STREQ(buf, "45,100.5,90,110\n");
  std::fclose(f);
}

TEST(Network, MembersAreFirstThirdAndSourceIsMemberZero) {
  ScenarioConfig c;
  c.node_count = 12;
  c.duration = sim::SimTime::seconds(1.0);
  Network net{c};
  EXPECT_EQ(net.source_index(), 0u);
  EXPECT_TRUE(net.is_member(0));
  EXPECT_TRUE(net.is_member(3));
  EXPECT_FALSE(net.is_member(4));
  EXPECT_EQ(net.node_count(), 12u);
}

TEST(Network, ResultExcludesSourceFromMembers) {
  ScenarioConfig c;
  c.node_count = 12;
  c.duration = sim::SimTime::seconds(30.0);
  c.workload.start = sim::SimTime::seconds(10.0);
  c.workload.end = sim::SimTime::seconds(20.0);
  Network net{c};
  net.run();
  stats::RunResult r = net.result();
  EXPECT_EQ(r.members.size(), c.member_count() - 1);
  for (const auto& m : r.members) EXPECT_NE(m.node, net::NodeId{0});
  EXPECT_EQ(r.packets_sent, 51u);
}

TEST(Network, FloodingProtocolRuns) {
  ScenarioConfig c;
  c.node_count = 10;
  c.duration = sim::SimTime::seconds(30.0);
  c.workload.start = sim::SimTime::seconds(5.0);
  c.workload.end = sim::SimTime::seconds(25.0);
  c.with_protocol(Protocol::flooding);
  stats::RunResult r = run_scenario(c);
  EXPECT_GT(r.received_summary().mean, 0.0);
  EXPECT_GT(r.totals.data_forwarded, 0u);
  EXPECT_EQ(r.totals.grph_sent, 0u);  // no MAODV machinery in this mode
}

}  // namespace
}  // namespace ag::harness
