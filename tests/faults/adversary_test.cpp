// End-to-end coverage of the adversary axis and trust layer on a full
// harness Network: the zero-cost guarantees (armed-but-zero adversaries,
// trust bookkeeping on an all-honest run, the AG_ADVERSARY=off hatch),
// role synthesis, the attack modes degrading delivery, decorator
// stacking under custody, detection/isolation, and the churn
// interaction (trust state across a reboot per RebootPolicy).
#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "dtn/custody_router.h"
#include "faults/adversary.h"
#include "faults/fault_plan.h"
#include "harness/network.h"
#include "harness/scenario.h"
#include "stats/run_result.h"

namespace ag::harness {
namespace {

// The fault_injection_test recipe: 14 nodes at good connectivity, 401
// data packets between t=20 s and t=100 s.
ScenarioConfig small_scenario(std::uint64_t seed = 1,
                              Protocol protocol = Protocol::maodv_gossip) {
  ScenarioConfig c;
  c.seed = seed;
  c.node_count = 14;
  c.phy.transmission_range_m = 80.0;
  c.waypoint.max_speed_mps = 0.5;
  c.duration = sim::SimTime::seconds(120.0);
  c.workload.start = sim::SimTime::seconds(20.0);
  c.workload.end = sim::SimTime::seconds(100.0);
  c.with_protocol(protocol);
  return c;
}

// Whole-run equivalence, down to the event count: two runs that pass
// this executed the same simulation.
void expect_same_results(const stats::RunResult& a, const stats::RunResult& b) {
  ASSERT_EQ(a.members.size(), b.members.size());
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].received, b.members[i].received) << "member " << i;
    EXPECT_EQ(a.members[i].via_gossip, b.members[i].via_gossip) << "member " << i;
  }
  EXPECT_EQ(a.totals.channel_transmissions, b.totals.channel_transmissions);
  EXPECT_EQ(a.totals.mac_unicast, b.totals.mac_unicast);
  EXPECT_EQ(a.totals.mac_broadcast, b.totals.mac_broadcast);
  EXPECT_EQ(a.totals.gossip_walks, b.totals.gossip_walks);
  EXPECT_EQ(a.totals.sim_events, b.totals.sim_events);
}

// RAII guard for the AG_ADVERSARY hatch (Network reads it at construction).
class AdversaryHatch {
 public:
  AdversaryHatch() { ::unsetenv("AG_ADVERSARY"); }
  ~AdversaryHatch() { ::unsetenv("AG_ADVERSARY"); }
  void off() { ::setenv("AG_ADVERSARY", "off", 1); }
};

TEST(Adversary, ArmedButZeroAdversariesMatchesPlainRun) {
  // Trust enabled at adversary_fraction zero builds the whole axis
  // (decorator on every node, junk-reply scoring on every monitor) but
  // no role misbehaves and no isolation fires: the run must be
  // bit-identical to a plain one, on both a tree substrate and the
  // flooding family.
  AdversaryHatch hatch;
  for (const Protocol protocol :
       {Protocol::maodv_gossip, Protocol::flooding_gossip}) {
    const stats::RunResult plain = run_scenario(small_scenario(1, protocol));

    ScenarioConfig armed = small_scenario(1, protocol);
    armed.with_adversaries(0.0).with_trust();
    Network net{armed};
    ASSERT_TRUE(net.adversary_enabled());
    ASSERT_NE(net.adversary(1), nullptr);
    EXPECT_TRUE(net.adversary(1)->monitoring());
    net.run();
    const stats::RunResult zero = net.result();

    expect_same_results(plain, zero);
    EXPECT_TRUE(zero.totals.adversary_active);
    EXPECT_EQ(zero.totals.adversary_nodes, 0u);
    EXPECT_EQ(zero.totals.trust_isolations, 0u);
    EXPECT_EQ(zero.totals.trust_false_positives, 0u);
  }
}

TEST(Adversary, EnvHatchRestoresThePlainStack) {
  // AG_ADVERSARY=off with the axis fully armed (roles AND trust): not
  // even the decorator is built, so the run is event-for-event the
  // plain one and the "adversary" rng stream is never drawn from.
  AdversaryHatch hatch;
  const stats::RunResult plain = run_scenario(small_scenario());

  ScenarioConfig configured = small_scenario();
  configured.with_adversaries(0.3, faults::AdversaryMode::blackhole).with_trust();
  hatch.off();
  Network net{configured};
  EXPECT_FALSE(net.adversary_enabled());
  EXPECT_EQ(net.adversary(0), nullptr);
  net.run();
  const stats::RunResult off = net.result();

  expect_same_results(plain, off);
  EXPECT_FALSE(off.totals.adversary_active);
  EXPECT_EQ(off.totals.adversary_nodes, 0u);
}

TEST(AdversarySynthesis, DeterministicSparesSourceAndValidates) {
  faults::FaultSpec spec;
  spec.adversary_fraction = 0.25;
  spec.adversary_mode = faults::AdversaryMode::selective_forward;
  spec.adversary_drop = 0.5;

  faults::FaultPlan a;
  faults::synthesize_adversaries_into(a, spec, 20, 0, sim::Rng{42});
  faults::FaultPlan b;
  faults::synthesize_adversaries_into(b, spec, 20, 0, sim::Rng{42});

  // round(0.25 * 20) distinct non-source nodes, identically for the
  // same stream.
  ASSERT_EQ(a.adversaries.size(), 5u);
  ASSERT_EQ(b.adversaries.size(), 5u);
  for (std::size_t i = 0; i < a.adversaries.size(); ++i) {
    EXPECT_EQ(a.adversaries[i].node, b.adversaries[i].node);
    EXPECT_EQ(a.adversaries[i].mode, spec.adversary_mode);
    EXPECT_DOUBLE_EQ(a.adversaries[i].drop_fraction, 0.5);
    EXPECT_NE(a.adversaries[i].node, 0u);  // source never compromised
    EXPECT_LT(a.adversaries[i].node, 20u);
  }
  EXPECT_NO_THROW(a.validate(20));
  // Roles are not timed events: an adversary-only plan stays "empty" so
  // it never flips the fault-run machinery.
  EXPECT_TRUE(a.empty());
}

TEST(AdversaryValidate, RejectionsNameTheOffendingIndex) {
  // Out-of-range node.
  faults::FaultPlan range_bad;
  range_bad.adversary(3, faults::AdversaryMode::blackhole)
      .adversary(10, faults::AdversaryMode::blackhole);
  try {
    range_bad.validate(10);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("adversaries[1]"), std::string::npos)
        << e.what();
  }

  // drop_fraction outside [0, 1].
  faults::FaultPlan drop_bad;
  drop_bad.adversary(3, faults::AdversaryMode::selective_forward, 1.5);
  try {
    drop_bad.validate(10);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("adversaries[0]"), std::string::npos)
        << e.what();
  }

  // Duplicate assignment of one node.
  faults::FaultPlan dup_bad;
  dup_bad.adversary(3, faults::AdversaryMode::blackhole)
      .adversary(3, faults::AdversaryMode::gossip_poison);
  try {
    dup_bad.validate(10);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("adversaries[1]"), std::string::npos)
        << e.what();
  }
}

TEST(Adversary, BlackholesDegradeFloodingDelivery) {
  // Five scripted blackholes in a sparse flooding mesh absorb relayed
  // payloads while still ACKing at the MAC: honest members downstream
  // lose coverage, so delivery must drop against the clean run.
  AdversaryHatch hatch;
  ScenarioConfig clean = small_scenario(1, Protocol::flooding_gossip);
  clean.phy.transmission_range_m = 60.0;
  const stats::RunResult plain = run_scenario(clean);

  ScenarioConfig attacked = clean;
  for (const std::size_t node : {2u, 5u, 7u, 9u, 11u}) {
    attacked.faults.plan.adversary(node, faults::AdversaryMode::blackhole);
  }
  const stats::RunResult r = run_scenario(attacked);

  EXPECT_TRUE(r.totals.adversary_active);
  EXPECT_EQ(r.totals.adversary_nodes, 5u);
  EXPECT_GT(r.totals.adversary_absorbed, 0u);
  EXPECT_LT(r.delivery_ratio(), plain.delivery_ratio());
  // Compromised nodes are excluded from the member rows: only honest
  // members score delivery.
  for (const stats::MemberResult& m : r.members) {
    EXPECT_NE(m.node, net::NodeId{2});
  }
}

TEST(Adversary, GossipPoisonFabricatesReplies) {
  // Poisoners sit on member nodes of a lossy tree substrate, so gossip
  // recovery walks reach them and get junk (or silence) back.
  AdversaryHatch hatch;
  ScenarioConfig c = small_scenario(1, Protocol::maodv_gossip);
  c.phy.transmission_range_m = 60.0;
  c.waypoint.max_speed_mps = 2.0;
  c.faults.plan.adversary(2, faults::AdversaryMode::gossip_poison)
      .adversary(3, faults::AdversaryMode::gossip_poison);
  const stats::RunResult r = run_scenario(c);

  EXPECT_TRUE(r.totals.adversary_active);
  EXPECT_EQ(r.totals.adversary_nodes, 2u);
  // Every gossip request reaching a poisoner is consumed: answered with
  // a fabricated duplicate or swallowed.
  EXPECT_GT(r.totals.adversary_poisoned, 0u);
}

TEST(Adversary, CustodyStacksOverAdversaryRouter) {
  // Both decorators on every node, custody outermost: custody handoffs
  // flow through the adversary seam, and the typed accessors agree.
  AdversaryHatch hatch;
  ScenarioConfig c = small_scenario();
  c.with_custody(/*max_messages=*/16, /*gateway_count=*/2);
  c.faults.plan.adversary(3, faults::AdversaryMode::blackhole);
  c.with_trust();
  Network net{c};
  ASSERT_TRUE(net.custody_enabled());
  ASSERT_TRUE(net.adversary_enabled());
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    ASSERT_NE(net.custody(i), nullptr) << "node " << i;
    auto* inner = dynamic_cast<faults::AdversaryRouter*>(&net.custody(i)->inner());
    ASSERT_NE(inner, nullptr) << "node " << i;
    EXPECT_EQ(inner, net.adversary(i)) << "node " << i;
  }
  EXPECT_TRUE(net.is_adversary(3));
  EXPECT_TRUE(net.adversary(3)->role().adversarial);
  EXPECT_FALSE(net.adversary(4)->role().adversarial);
  // The stacked run completes and keeps both axes' accounting.
  net.run();
  const stats::RunResult r = net.result();
  EXPECT_TRUE(r.totals.dtn_active);
  EXPECT_TRUE(r.totals.adversary_active);
  EXPECT_EQ(r.totals.adversary_nodes, 1u);
}

TEST(Adversary, WatchdogDetectsAndIsolatesSelectiveForwarders) {
  // With trust on, honest flooding monitors overhear the selective
  // forwarders relaying far less than a diligent neighbor would and
  // isolate them; the ground-truth classification in Network::result()
  // reports detections, not false positives. (A pure blackhole goes
  // RF-silent on flooding and is invisible to overhearing — the partial
  // dropper is the watchdog's quarry.)
  AdversaryHatch hatch;
  ScenarioConfig c = small_scenario(1, Protocol::flooding_gossip);
  c.phy.transmission_range_m = 60.0;
  for (const std::size_t node : {2u, 5u, 7u, 9u, 11u}) {
    c.faults.plan.adversary(node, faults::AdversaryMode::selective_forward);
  }
  c.with_trust();
  c.trust.watchdog = true;
  const stats::RunResult r = run_scenario(c);

  EXPECT_GT(r.totals.trust_isolations, 0u);
  EXPECT_GT(r.totals.trust_detection_latency_s, 0.0);
  // Honest nodes vastly outnumber misbehaviors seen from them; the
  // watchdog floors must not misfire on them wholesale.
  EXPECT_LT(r.totals.trust_false_positives, r.totals.trust_isolations);
}

TEST(Adversary, RebootWipesOrPreservesTrustStatePerPolicy) {
  // Churn x adversary interaction: a monitor that has isolated a
  // selective forwarder crashes and reboots. RebootPolicy::wipe
  // power-cycles the trust tables (it forgets who it distrusted);
  // preserve models a radio outage, so the isolation survives.
  AdversaryHatch hatch;
  ScenarioConfig base = small_scenario(1, Protocol::flooding_gossip);
  base.phy.transmission_range_m = 60.0;
  for (const std::size_t node : {2u, 5u, 7u, 9u, 11u}) {
    base.faults.plan.adversary(node, faults::AdversaryMode::selective_forward);
  }
  base.with_trust();
  base.trust.watchdog = true;

  // Probe run: find a monitor that isolated someone by t = 80 s.
  std::size_t monitor = 0;
  {
    Network probe{base};
    probe.run_until(sim::SimTime::seconds(80.0));
    std::size_t found = SIZE_MAX;
    for (std::size_t i = 0; i < probe.node_count(); ++i) {
      if (probe.is_adversary(i)) continue;
      if (probe.adversary(i)->isolated_count() > 0) {
        found = i;
        break;
      }
    }
    ASSERT_NE(found, SIZE_MAX) << "no monitor isolated anyone by t=80";
    monitor = found;
  }

  for (const faults::RebootPolicy policy :
       {faults::RebootPolicy::wipe, faults::RebootPolicy::preserve}) {
    ScenarioConfig c = base;
    c.faults.plan.crash(monitor, 85.0, 20.0, policy);
    Network net{c};
    // Just past the reboot at t = 105 s: the watchdog needs fresh
    // expectation mass before it can re-isolate, so the distinction is
    // visible at this instant.
    net.run_until(sim::SimTime::seconds(105.01));
    if (policy == faults::RebootPolicy::wipe) {
      EXPECT_EQ(net.adversary(monitor)->isolated_count(), 0u)
          << "wipe reboot must forget trust state";
    } else {
      EXPECT_GT(net.adversary(monitor)->isolated_count(), 0u)
          << "preserve reboot must keep trust state";
    }
  }
}

}  // namespace
}  // namespace ag::harness
