// End-to-end coverage of the fault & churn subsystem: the FaultInjector
// driving a full harness Network (crashes, dynamic membership, partition
// heal) plus the zero-cost guarantee that an armed-but-idle fault layer
// perturbs nothing.
#include <gtest/gtest.h>

#include "faults/fault_injector.h"
#include "harness/network.h"
#include "harness/scenario.h"
#include "testutil/stack_fixture.h"

namespace ag::harness {
namespace {

// Small, fast scenario: 14 nodes at good connectivity, 401 data packets
// between t=20 s and t=100 s.
ScenarioConfig small_scenario(std::uint64_t seed = 1) {
  ScenarioConfig c;
  c.seed = seed;
  c.node_count = 14;
  c.phy.transmission_range_m = 80.0;
  c.waypoint.max_speed_mps = 0.5;
  c.duration = sim::SimTime::seconds(120.0);
  c.workload.start = sim::SimTime::seconds(20.0);
  c.workload.end = sim::SimTime::seconds(100.0);
  c.with_protocol(Protocol::maodv_gossip);
  return c;
}

void expect_same_results(const stats::RunResult& a, const stats::RunResult& b) {
  ASSERT_EQ(a.members.size(), b.members.size());
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].received, b.members[i].received) << "member " << i;
    EXPECT_EQ(a.members[i].via_gossip, b.members[i].via_gossip) << "member " << i;
  }
  EXPECT_EQ(a.totals.channel_transmissions, b.totals.channel_transmissions);
  EXPECT_EQ(a.totals.mac_unicast, b.totals.mac_unicast);
  EXPECT_EQ(a.totals.mac_broadcast, b.totals.mac_broadcast);
  EXPECT_EQ(a.totals.gossip_walks, b.totals.gossip_walks);
}

TEST(FaultInjection, ArmedButIdlePlanIsZeroCost) {
  // A plan whose only event lies beyond the end of the run arms the whole
  // fault machinery (injector, per-node sinks, subscription tracking) but
  // never fires: the simulation must be bit-identical to a plain run.
  const stats::RunResult plain = run_scenario(small_scenario());

  ScenarioConfig faulty = small_scenario();
  faulty.faults.plan.crash(3, 500.0, 10.0);  // after duration; never fires
  const stats::RunResult armed = run_scenario(faulty);

  expect_same_results(plain, armed);
  EXPECT_FALSE(armed.faults.any());
  // Members are tracked in a fault run, but a full-run subscription makes
  // every sourced packet eligible — the legacy denominator.
  for (const stats::MemberResult& m : armed.members) {
    EXPECT_EQ(armed.eligible_of(m), armed.packets_sent);
  }
  EXPECT_DOUBLE_EQ(plain.delivery_ratio(), armed.delivery_ratio());
}

TEST(FaultInjection, NoFaultRunUsesLegacyAccounting) {
  const stats::RunResult r = run_scenario(small_scenario());
  EXPECT_EQ(r.members.size(), small_scenario().member_count() - 1);
  EXPECT_FALSE(r.faults.any());
  EXPECT_DOUBLE_EQ(r.faults.node_down_s, 0.0);
  for (const stats::MemberResult& m : r.members) {
    EXPECT_EQ(m.eligible, stats::MemberResult::kEligibleAll);
  }
}

TEST(FaultInjection, CrashWipeTakesMemberDownAndRebootRecovers) {
  ScenarioConfig c = small_scenario();
  // Member 3 dies at t=40 for 30 s with its state wiped.
  c.faults.plan.crash(3, 40.0, 30.0, faults::RebootPolicy::wipe);
  const stats::RunResult r = run_scenario(c);

  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.reboots, 1u);
  EXPECT_NEAR(r.faults.node_down_s, 30.0, 0.1);

  const stats::MemberResult* m3 = nullptr;
  for (const stats::MemberResult& m : r.members) {
    if (m.node == net::NodeId{3}) m3 = &m;
  }
  ASSERT_NE(m3, nullptr);
  // Packets sourced while member 3 was down are not charged against it...
  EXPECT_LT(m3->eligible, r.packets_sent);
  EXPECT_GT(m3->eligible, 0u);
  // ...and it can never be credited more than its eligible window.
  EXPECT_LE(m3->received, m3->eligible);
  // Roughly 30 s of a 200 ms CBR stream falls out of the window.
  EXPECT_NEAR(static_cast<double>(r.packets_sent - m3->eligible), 150.0, 15.0);
}

TEST(FaultInjection, CrashPreservePolicyAlsoRecovers) {
  ScenarioConfig c = small_scenario();
  c.faults.plan.crash(3, 40.0, 30.0, faults::RebootPolicy::preserve);
  const stats::RunResult r = run_scenario(c);
  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.reboots, 1u);
  const stats::MemberResult* m3 = nullptr;
  for (const stats::MemberResult& m : r.members) {
    if (m.node == net::NodeId{3}) m3 = &m;
  }
  ASSERT_NE(m3, nullptr);
  EXPECT_LT(m3->eligible, r.packets_sent);
  EXPECT_LE(m3->received, m3->eligible);
}

TEST(FaultInjection, LeaveThenRejoinCountsOnlyInSubscriptionPackets) {
  ScenarioConfig c = small_scenario();
  c.faults.plan.leave(2, 40.0).join(2, 70.0);
  const stats::RunResult r = run_scenario(c);

  EXPECT_EQ(r.faults.leaves, 1u);
  EXPECT_EQ(r.faults.joins, 1u);

  const stats::MemberResult* m2 = nullptr;
  for (const stats::MemberResult& m : r.members) {
    if (m.node == net::NodeId{2}) m2 = &m;
  }
  ASSERT_NE(m2, nullptr);
  // The [40 s, 70 s) gap removes ~150 of the 401 packets from member 2's
  // denominator, and nothing sourced in the gap may be credited — even if
  // gossip recovers it after the rejoin.
  EXPECT_NEAR(static_cast<double>(r.packets_sent - m2->eligible), 150.0, 5.0);
  EXPECT_LE(m2->received, m2->eligible);
  // Everyone else answers for the full stream.
  for (const stats::MemberResult& m : r.members) {
    if (m.node != net::NodeId{2}) {
      EXPECT_EQ(m.eligible, r.packets_sent);
    }
  }
}

TEST(FaultInjection, DeterministicAcrossIdenticalRuns) {
  ScenarioConfig c = small_scenario(3);
  c.faults.plan.leave(2, 40.0).join(2, 70.0).crash(5, 50.0, 20.0);
  c.faults.spec.churn_per_min = 1.0;
  const stats::RunResult a = run_scenario(c);
  const stats::RunResult b = run_scenario(c);
  expect_same_results(a, b);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].eligible, b.members[i].eligible);
  }
  EXPECT_EQ(a.faults.crashes, b.faults.crashes);
  EXPECT_EQ(a.faults.leaves, b.faults.leaves);
  EXPECT_EQ(a.faults.joins, b.faults.joins);
  EXPECT_DOUBLE_EQ(a.faults.node_down_s, b.faults.node_down_s);
}

TEST(FaultInjection, PartitionSeversAndHealResumesDelivery) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    ScenarioConfig c = small_scenario(seed);
    c.waypoint.max_speed_mps = 0.2;  // near-static so the cut stays real
    c.faults.plan.partition_at_x(-1.0, 50.0, 30.0);
    const stats::RunResult r = run_scenario(c);

    EXPECT_EQ(r.faults.partitions, 1u) << "seed " << seed;
    EXPECT_EQ(r.faults.heals, 1u) << "seed " << seed;
    EXPECT_NEAR(r.faults.partitioned_s, 30.0, 0.1) << "seed " << seed;

    // The run still delivers: the source side is never cut off, and after
    // the heal gossip pulls recover losses on the far side.
    EXPECT_GT(r.delivery_ratio(), 0.3) << "seed " << seed;
    std::uint64_t via_gossip = 0;
    for (const stats::MemberResult& m : r.members) via_gossip += m.via_gossip;
    EXPECT_GT(via_gossip, 0u) << "seed " << seed;
  }
}

TEST(FaultInjection, SynthesizedChurnRunsEndToEnd) {
  ScenarioConfig c = small_scenario();
  c.faults.spec.churn_per_min = 4.0;
  c.faults.spec.churn_downtime_s = 15.0;
  const stats::RunResult r = run_scenario(c);
  EXPECT_GT(r.faults.leaves, 0u);
  EXPECT_GT(r.packets_sent, 0u);
  for (const stats::MemberResult& m : r.members) {
    EXPECT_LE(m.received, r.eligible_of(m));
  }
}

TEST(FaultInjection, MidRunJoinerGetsAccounted) {
  ScenarioConfig c = small_scenario();
  // Node 10 is outside the configured member set; a plan event subscribes
  // it mid-run.
  ASSERT_GE(c.node_count, 11u);
  ASSERT_LT(c.member_count(), 11u);
  c.faults.plan.join(10, 60.0);
  const stats::RunResult r = run_scenario(c);

  const stats::MemberResult* joiner = nullptr;
  for (const stats::MemberResult& m : r.members) {
    if (m.node == net::NodeId{10}) joiner = &m;
  }
  ASSERT_NE(joiner, nullptr);
  // Accountable only for the tail of the stream it was subscribed for.
  EXPECT_LT(joiner->eligible, r.packets_sent);
  EXPECT_LE(joiner->received, joiner->eligible);
}

// --- gossip-layer churn semantics on a hand-built static topology -------

TEST(FaultInjection, CrashedMemberAgesOutOfPeersMemberCache) {
  using testutil::kGroup;
  testutil::StackOptions opt;
  opt.gossip.member_cache_ttl = sim::Duration::seconds(8.0);
  testutil::StaticNetwork net{testutil::line_positions(3, 80.0), opt};

  net.join_all({0, 2});
  // Traffic plus gossip rounds populate the caches.
  for (int i = 0; i < 20; ++i) {
    net.sim().schedule_after(sim::Duration::seconds(0.5 * i),
                             [&net] { net.multicast_router(0).send_multicast(kGroup, 64); });
  }
  net.run_for(30.0);
  const gossip::MemberCache* cache = net.agent(0).member_cache(kGroup);
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(cache->contains(net::NodeId{2}))
      << "precondition: node 0 must have learned member 2";

  // Member 2's radio dies; with no fresh traffic evidence its entry must
  // age out of node 0's cache within the TTL.
  net.channel().set_node_down(2, true);
  net.run_for(20.0);
  EXPECT_FALSE(net.agent(0).member_cache(kGroup)->contains(net::NodeId{2}));
}

TEST(FaultInjection, LeavingMemberDropsItsGossipState) {
  using testutil::kGroup;
  testutil::StaticNetwork net{testutil::line_positions(3, 80.0)};
  net.join_all({0, 2});
  for (int i = 0; i < 10; ++i) {
    net.sim().schedule_after(sim::Duration::seconds(0.5 * i),
                             [&net] { net.multicast_router(0).send_multicast(kGroup, 64); });
  }
  net.run_for(15.0);
  ASSERT_NE(net.agent(2).history(kGroup), nullptr);

  net.multicast_router(2).leave_group(kGroup);
  net.run_for(1.0);
  // The departed member forgot the group: rejoining starts cold instead
  // of pulling the entire gap it was unsubscribed for.
  EXPECT_EQ(net.agent(2).history(kGroup), nullptr);
  EXPECT_EQ(net.agent(2).member_cache(kGroup), nullptr);
}

}  // namespace
}  // namespace ag::harness
