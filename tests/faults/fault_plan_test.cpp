#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace ag::faults {
namespace {

TEST(FaultPlan, EmptyByDefault) {
  FaultPlan p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.event_count(), 0u);
  EXPECT_NO_THROW(p.validate(10));
  FaultConfig cfg;
  EXPECT_FALSE(cfg.active());
}

TEST(FaultPlan, FluentBuildersRecordEvents) {
  FaultPlan p;
  p.crash(3, 10.0, 20.0, RebootPolicy::preserve)
      .partition_at_x(100.0, 40.0, 30.0)
      .leave(1, 5.0)
      .join(1, 25.0);
  EXPECT_EQ(p.crashes.size(), 1u);
  EXPECT_EQ(p.crashes[0].policy, RebootPolicy::preserve);
  EXPECT_EQ(p.partitions.size(), 1u);
  EXPECT_DOUBLE_EQ(p.partitions[0].a, 1.0);
  EXPECT_DOUBLE_EQ(p.partitions[0].c, 100.0);
  EXPECT_EQ(p.membership.size(), 2u);
  EXPECT_FALSE(p.membership[0].join);
  EXPECT_TRUE(p.membership[1].join);
  EXPECT_NO_THROW(p.validate(10));
}

TEST(FaultPlan, AutoMedianPartitionHasNoLine) {
  FaultPlan p;
  p.partition_at_x(-1.0, 40.0, 30.0);
  EXPECT_DOUBLE_EQ(p.partitions[0].a, 0.0);
  EXPECT_DOUBLE_EQ(p.partitions[0].b, 0.0);
}

TEST(FaultPlanValidate, RejectsOutOfRangeNodes) {
  FaultPlan crash_bad;
  crash_bad.crash(10, 1.0, 5.0);
  EXPECT_THROW(crash_bad.validate(10), std::invalid_argument);

  FaultPlan member_bad;
  member_bad.leave(12, 1.0);
  EXPECT_THROW(member_bad.validate(10), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsNegativeTimesAndZeroHeal) {
  FaultPlan crash_bad;
  crash_bad.crash(1, -1.0, 5.0);
  EXPECT_THROW(crash_bad.validate(10), std::invalid_argument);

  FaultPlan heal_bad;
  heal_bad.partitions.push_back({10.0, 0.0, 0.0, 0.0, 0.0});
  EXPECT_THROW(heal_bad.validate(10), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsOverlappingCrashesOnOneNode) {
  FaultPlan p;
  p.crash(2, 10.0, 30.0).crash(2, 20.0, 10.0);
  EXPECT_THROW(p.validate(10), std::invalid_argument);

  // The same intervals on different nodes are fine.
  FaultPlan ok;
  ok.crash(2, 10.0, 30.0).crash(3, 20.0, 10.0);
  EXPECT_NO_THROW(ok.validate(10));
}

TEST(FaultPlanValidate, PermanentCrashBlocksLaterCrashOfSameNode) {
  FaultPlan p;
  p.crash(2, 10.0, 0.0);  // never reboots
  p.crash(2, 500.0, 10.0);
  EXPECT_THROW(p.validate(10), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsCrashAtExactRebootInstant) {
  // The event queue is FIFO at equal timestamps: a crash landing exactly
  // on the previous reboot could fire first and be silently lost, so
  // touching intervals are rejected outright.
  FaultPlan p;
  p.crash(2, 10.0, 20.0).crash(2, 30.0, 20.0);
  EXPECT_THROW(p.validate(10), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectsPartitionAtExactHealInstant) {
  FaultPlan p;
  p.partition_at_x(-1.0, 100.0, 30.0).partition_at_x(-1.0, 10.0, 90.0);
  EXPECT_THROW(p.validate(10), std::invalid_argument);
}

TEST(FaultPlanValidate, RejectionsNameTheOffendingEntryByIndex) {
  // The error message contract: every rejection points at its plan entry
  // ("crashes[1]"), not just at "a node somewhere" — a bad synthesized
  // sweep is debugged from this string alone.
  const auto message_of = [](const FaultPlan& p) {
    try {
      p.validate(10);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string{};
  };

  FaultPlan crash_bad;
  crash_bad.crash(1, 10.0, 5.0).crash(12, 30.0, 5.0);
  EXPECT_NE(message_of(crash_bad).find("crashes[1]"), std::string::npos)
      << message_of(crash_bad);

  FaultPlan overlap;
  overlap.crash(2, 10.0, 30.0).crash(2, 20.0, 10.0);
  const std::string overlap_msg = message_of(overlap);
  EXPECT_NE(overlap_msg.find("crashes[1]"), std::string::npos) << overlap_msg;
  EXPECT_NE(overlap_msg.find("crashes[0]"), std::string::npos) << overlap_msg;

  FaultPlan part_bad;
  part_bad.partition_at_x(-1.0, 10.0, 30.0).partition_at_x(-1.0, 20.0, 5.0);
  EXPECT_NE(message_of(part_bad).find("partitions[1]"), std::string::npos)
      << message_of(part_bad);

  FaultPlan member_bad;
  member_bad.leave(1, 5.0);
  member_bad.leave(12, 6.0);
  EXPECT_NE(message_of(member_bad).find("membership[1]"), std::string::npos)
      << message_of(member_bad);
}

TEST(FaultPlanValidate, RejectsOverlappingPartitions) {
  FaultPlan p;
  p.partition_at_x(-1.0, 10.0, 30.0).partition_at_x(-1.0, 20.0, 5.0);
  EXPECT_THROW(p.validate(10), std::invalid_argument);

  FaultPlan ok;
  ok.partition_at_x(-1.0, 10.0, 30.0).partition_at_x(-1.0, 50.0, 5.0);
  EXPECT_NO_THROW(ok.validate(10));
}

TEST(FaultSpec, AnyReflectsAxes) {
  FaultSpec spec;
  EXPECT_FALSE(spec.any());
  spec.churn_per_min = 1.0;
  EXPECT_TRUE(spec.any());
  spec = FaultSpec{};
  spec.crash_fraction = 0.2;
  EXPECT_TRUE(spec.any());
  spec = FaultSpec{};
  spec.partition_duration_s = 10.0;
  EXPECT_TRUE(spec.any());
}

TEST(Synthesize, DeterministicForSameSeed) {
  FaultSpec spec;
  spec.churn_per_min = 2.0;
  spec.crash_fraction = 0.25;
  spec.partition_duration_s = 40.0;

  FaultPlan a;
  synthesize_into(a, spec, 20, 7, 0, 600.0, sim::Rng{42});
  FaultPlan b;
  synthesize_into(b, spec, 20, 7, 0, 600.0, sim::Rng{42});

  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (std::size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].node, b.crashes[i].node);
    EXPECT_DOUBLE_EQ(a.crashes[i].at_s, b.crashes[i].at_s);
  }
  ASSERT_EQ(a.membership.size(), b.membership.size());
  for (std::size_t i = 0; i < a.membership.size(); ++i) {
    EXPECT_EQ(a.membership[i].node, b.membership[i].node);
    EXPECT_DOUBLE_EQ(a.membership[i].at_s, b.membership[i].at_s);
    EXPECT_EQ(a.membership[i].join, b.membership[i].join);
  }
  ASSERT_EQ(a.partitions.size(), 1u);
  EXPECT_EQ(b.partitions.size(), 1u);
}

TEST(Synthesize, SparesTheSourceAndStaysInBounds) {
  FaultSpec spec;
  spec.churn_per_min = 6.0;
  spec.crash_fraction = 0.5;
  constexpr double kDuration = 600.0;
  FaultPlan plan;
  synthesize_into(plan, spec, 20, 7, 0, kDuration, sim::Rng{7});

  EXPECT_FALSE(plan.crashes.empty());
  EXPECT_FALSE(plan.membership.empty());
  for (const CrashEvent& e : plan.crashes) {
    EXPECT_NE(e.node, 0u);  // source never crashed
    EXPECT_GE(e.at_s, 0.0);
    EXPECT_LT(e.at_s, kDuration);
  }
  for (const MembershipEvent& e : plan.membership) {
    EXPECT_NE(e.node, 0u);  // source never churned
    EXPECT_LT(e.node, 7u);  // members only
    EXPECT_GE(e.at_s, 0.0);
    EXPECT_LT(e.at_s, kDuration);
  }
  // Synthesized plans always pass their own validation.
  EXPECT_NO_THROW(plan.validate(20));
}

TEST(Synthesize, EveryLeaveBeforeItsRejoin) {
  FaultSpec spec;
  spec.churn_per_min = 4.0;
  spec.churn_downtime_s = 25.0;
  FaultPlan plan;
  synthesize_into(plan, spec, 20, 7, 0, 600.0, sim::Rng{11});

  // Events are emitted leave-first per cycle; a member's rejoin follows
  // its leave by exactly the configured downtime.
  std::size_t leaves = 0;
  std::size_t joins = 0;
  for (std::size_t i = 0; i < plan.membership.size(); ++i) {
    if (plan.membership[i].join) {
      ++joins;
      ASSERT_GT(i, 0u);
      const MembershipEvent& leave = plan.membership[i - 1];
      EXPECT_FALSE(leave.join);
      EXPECT_EQ(leave.node, plan.membership[i].node);
      EXPECT_DOUBLE_EQ(plan.membership[i].at_s, leave.at_s + spec.churn_downtime_s);
    } else {
      ++leaves;
    }
  }
  EXPECT_GT(leaves, 0u);
  EXPECT_GE(leaves, joins);  // a cycle ending after the run has no rejoin
}

TEST(Synthesize, RealizedChurnTracksRequestedRate) {
  // 4 cycles/min over 600 s requests 40 cycles; the redraw-on-busy logic
  // must land close to that instead of dropping source/busy collisions.
  FaultSpec spec;
  spec.churn_per_min = 4.0;
  spec.churn_downtime_s = 25.0;
  FaultPlan plan;
  synthesize_into(plan, spec, 20, 7, 0, 600.0, sim::Rng{5});
  std::size_t leaves = 0;
  for (const MembershipEvent& e : plan.membership) leaves += e.join ? 0 : 1;
  EXPECT_GE(leaves, 34u);
  EXPECT_LE(leaves, 40u);
}

}  // namespace
}  // namespace ag::faults
