// Full-stack integration: the paper's core claims on small, fast
// scenarios — gossip recovers what the multicast tree loses, goodput
// stays near 100 %, and runs are deterministic per seed.
#include <gtest/gtest.h>

#include "harness/network.h"
#include "harness/scenario.h"
#include "testutil/stack_fixture.h"

namespace ag {
namespace {

using harness::kGroup;

harness::ScenarioConfig small_scenario() {
  harness::ScenarioConfig c;
  c.node_count = 20;
  c.phy.transmission_range_m = 75.0;
  c.waypoint.max_speed_mps = 0.5;
  c.duration = sim::SimTime::seconds(120.0);
  c.workload.start = sim::SimTime::seconds(30.0);
  c.workload.end = sim::SimTime::seconds(100.0);
  c.workload.interval = sim::Duration::ms(200);
  return c;
}

TEST(EndToEnd, GossipImprovesDeliveryOverBareMaodv) {
  double maodv_total = 0.0, gossip_total = 0.0;
  for (std::uint64_t seed : {11, 12, 13}) {
    harness::ScenarioConfig c = small_scenario();
    c.seed = seed;
    c.with_protocol(harness::Protocol::maodv);
    maodv_total += harness::run_scenario(c).received_summary().mean;
    c.with_protocol(harness::Protocol::maodv_gossip);
    gossip_total += harness::run_scenario(c).received_summary().mean;
  }
  EXPECT_GT(gossip_total, maodv_total);
}

TEST(EndToEnd, GossipNarrowsReceiverVariance) {
  double maodv_spread = 0.0, gossip_spread = 0.0;
  for (std::uint64_t seed : {21, 22, 23}) {
    harness::ScenarioConfig c = small_scenario();
    c.seed = seed;
    c.with_protocol(harness::Protocol::maodv);
    auto m = harness::run_scenario(c).received_summary();
    maodv_spread += m.max - m.min;
    c.with_protocol(harness::Protocol::maodv_gossip);
    auto g = harness::run_scenario(c).received_summary();
    gossip_spread += g.max - g.min;
  }
  EXPECT_LT(gossip_spread, maodv_spread);
}

TEST(EndToEnd, GoodputStaysNearHundredPercent) {
  harness::ScenarioConfig c = small_scenario();
  c.seed = 5;
  c.with_protocol(harness::Protocol::maodv_gossip);
  stats::RunResult r = harness::run_scenario(c);
  // Paper figure 8 reports 97-100 % at full scale (600 s, 2201 packets);
  // this shortened scenario has far fewer replies per member, so each
  // stray duplicate weighs heavier. The paper-scale check lives in
  // bench/fig8_goodput.
  EXPECT_GE(r.mean_goodput_pct(), 90.0);
}

TEST(EndToEnd, DeterministicAcrossIdenticalRuns) {
  harness::ScenarioConfig c = small_scenario();
  c.seed = 33;
  c.with_protocol(harness::Protocol::maodv_gossip);
  stats::RunResult a = harness::run_scenario(c);
  stats::RunResult b = harness::run_scenario(c);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].received, b.members[i].received);
    EXPECT_EQ(a.members[i].via_gossip, b.members[i].via_gossip);
  }
  EXPECT_EQ(a.totals.channel_transmissions, b.totals.channel_transmissions);
}

TEST(EndToEnd, DifferentSeedsProduceDifferentRuns) {
  harness::ScenarioConfig c = small_scenario();
  c.with_protocol(harness::Protocol::maodv_gossip);
  stats::RunResult a = harness::run_scenario(c.with_seed(1));
  stats::RunResult b = harness::run_scenario(c.with_seed(2));
  EXPECT_NE(a.totals.channel_transmissions, b.totals.channel_transmissions);
}

TEST(EndToEnd, NoMemberEverReceivesMoreThanSent) {
  harness::ScenarioConfig c = small_scenario();
  c.seed = 44;
  c.with_protocol(harness::Protocol::maodv_gossip);
  stats::RunResult r = harness::run_scenario(c);
  for (const stats::MemberResult& m : r.members) {
    EXPECT_LE(m.received, r.packets_sent);
  }
}

TEST(EndToEnd, FloodingBaselineDeliversButCostsMore) {
  harness::ScenarioConfig c = small_scenario();
  c.seed = 55;
  c.with_protocol(harness::Protocol::flooding);
  stats::RunResult flood = harness::run_scenario(c);
  c.with_protocol(harness::Protocol::maodv);
  stats::RunResult maodv = harness::run_scenario(c);
  EXPECT_GT(flood.received_summary().mean, 0.0);
  // Flooding transmits far more frames for the same workload.
  EXPECT_GT(flood.totals.data_forwarded, maodv.totals.data_forwarded);
}

// Deterministic loss injection: the tree link into one member is severed
// at the channel while everything else flows. Bare MAODV starves that
// member; anonymous gossip recovers the stream.
TEST(EndToEnd, GossipRecoversInjectedLoss) {
  using testutil::StaticNetwork;
  using testutil::line_positions;

  for (bool gossip_on : {false, true}) {
    testutil::StackOptions opts;
    opts.gossip_enabled = gossip_on;
    opts.gossip.p_anon = 1.0;  // pure anonymous walks
    StaticNetwork net{line_positions(4, 70.0), opts};
    net.join_all({0, 2, 3}, 25.0);
    ASSERT_TRUE(net.all_on_tree({0, 2, 3}));

    // Make node 3's inbound link lossy: every second frame vanishes.
    // Tree data (unACKed broadcast) develops holes; gossip replies are
    // MAC-retried unicasts, so the recovery path survives the loss.
    int counter = 0;
    net.channel().set_drop_hook([&counter](std::size_t, std::size_t to) {
      if (to != 3) return false;
      return (++counter % 2) == 0;
    });

    for (int i = 0; i < 40; ++i) {
      net.sim().schedule_after(sim::Duration::ms(200 * i),
                               [&net] { net.router(0).send_multicast(kGroup, 64); });
    }
    net.run_for(60.0);

    const auto delivered = net.agent(3).counters().delivered_unique;
    if (gossip_on) {
      EXPECT_EQ(delivered, 40u) << "gossip must fill every hole";
      EXPECT_GT(net.agent(3).counters().delivered_via_gossip, 0u);
    } else {
      EXPECT_LT(delivered, 40u) << "bare MAODV cannot recover the losses";
    }
  }
}

}  // namespace
}  // namespace ag
