// Gossip-over-real-stack integration: anonymous walks across an actual
// MAODV tree, the nearest-member gradient fed by real protocol events,
// member caches filled from live traffic, and multi-group independence.
#include <gtest/gtest.h>

#include "harness/protocol_registry.h"
#include "testutil/stack_fixture.h"

namespace ag {
namespace {

using testutil::StaticNetwork;
using testutil::kGroup;
using testutil::line_positions;

testutil::StackOptions walk_only() {
  testutil::StackOptions opts;
  opts.gossip.p_anon = 1.0;  // anonymous walks only
  return opts;
}

TEST(GossipStack, WalksTraverseIntermediateRouters) {
  StaticNetwork net{line_positions(5, 80.0), walk_only()};
  net.join_all({0, 4}, 25.0);
  ASSERT_TRUE(net.all_on_tree({0, 4}));
  net.run_for(20.0);  // ~20 gossip rounds per member
  // Pure tree routers forwarded walks without accepting any.
  std::uint64_t forwarded = 0;
  for (std::size_t i : {1u, 2u, 3u}) {
    forwarded += net.agent(i).counters().walks_forwarded;
    EXPECT_EQ(net.agent(i).counters().walks_accepted, 0u)
        << "non-member " << i << " must never accept";
  }
  EXPECT_GT(forwarded, 0u);
  EXPECT_GT(net.agent(0).counters().walks_initiated, 0u);
  EXPECT_GT(net.agent(4).counters().walks_initiated, 0u);
}

TEST(GossipStack, NearestMemberGradientMatchesTopology) {
  StaticNetwork net{line_positions(5, 80.0), walk_only()};
  net.join_all({0, 4}, 25.0);
  net.run_for(10.0);  // let MODIFY messages settle
  // Node 2 sits mid-line: members 0 and 4 are both two hops away.
  const auto& nm2 = net.agent(2).nearest_member();
  EXPECT_EQ(nm2.value_for(kGroup, net::NodeId{1}), 2);
  EXPECT_EQ(nm2.value_for(kGroup, net::NodeId{3}), 2);
  // Node 1 sees member 0 adjacent and member 4 three hops the other way.
  const auto& nm1 = net.agent(1).nearest_member();
  EXPECT_EQ(nm1.value_for(kGroup, net::NodeId{0}), 1);
  EXPECT_EQ(nm1.value_for(kGroup, net::NodeId{2}), 3);
}

TEST(GossipStack, MemberCacheSeededByJoinReplies) {
  StaticNetwork net{line_positions(4, 80.0)};
  net.join_all({0}, 10.0);
  net.join_all({3}, 15.0);
  // Node 3's join RREP came from member 0 (the tree), so 0 must already
  // be in 3's member cache without any gossip having run.
  const gossip::MemberCache* cache = net.agent(3).member_cache(kGroup);
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->contains(net::NodeId{0}));
}

TEST(GossipStack, RepliesReuseWalkReversePath) {
  StaticNetwork net{line_positions(4, 80.0), walk_only()};
  net.join_all({0, 3}, 25.0);
  // Create a hole at member 3 so its walks request something.
  int counter = 0;
  net.channel().set_drop_hook([&counter](std::size_t, std::size_t to) {
    return to == 3 && (++counter % 3) == 0;
  });
  for (int i = 0; i < 20; ++i) {
    net.sim().schedule_after(sim::Duration::ms(200 * i),
                             [&net] { net.router(0).send_multicast(kGroup, 64); });
  }
  const std::uint64_t rreqs_before = net.router(0).counters().rreq_originated;
  net.run_for(40.0);
  EXPECT_EQ(net.agent(3).counters().delivered_unique, 20u);
  EXPECT_GT(net.agent(3).counters().delivered_via_gossip, 0u);
  // The responder (member 0) answered along the walk's reverse-path route
  // hints; recovery must not have required a RREQ storm from node 0.
  EXPECT_LE(net.router(0).counters().rreq_originated, rreqs_before + 3);
}

TEST(GossipStack, TwoGroupsKeepIndependentState) {
  const net::GroupId g2{2};
  StaticNetwork net{line_positions(4, 80.0)};
  net.join_all({0, 3}, 25.0);  // group 1
  net.router(0).join_group(g2);
  net.router(2).join_group(g2);
  net.run_for(20.0);

  // Traffic on both groups from node 0.
  std::vector<std::uint32_t> g1_seen, g2_seen;
  for (int i = 0; i < 5; ++i) {
    net.sim().schedule_after(sim::Duration::ms(400 * i), [&net, g2] {
      net.router(0).send_multicast(kGroup, 64);
      net.router(0).send_multicast(g2, 64);
    });
  }
  net.run_for(10.0);

  // Member 3 belongs only to group 1; member 2 only to group 2.
  const gossip::HistoryTable* h3_g1 = net.agent(3).history(kGroup);
  ASSERT_NE(h3_g1, nullptr);
  EXPECT_EQ(h3_g1->size(), 5u);
  const gossip::HistoryTable* h2_g2 = net.agent(2).history(g2);
  ASSERT_NE(h2_g2, nullptr);
  EXPECT_EQ(h2_g2->size(), 5u);
  // No cross-group leakage into group-1 state at node 2 beyond its router
  // role: node 2 is not a member of group 1, so it has no deliveries.
  EXPECT_EQ(net.router(2).group_entry(kGroup) == nullptr ||
                !net.router(2).group_entry(kGroup)->is_member,
            true);
}

TEST(GossipStack, GoodputNearPerfectOnCleanNetwork) {
  StaticNetwork net{line_positions(5, 80.0)};
  net.join_all({0, 2, 4}, 25.0);
  for (int i = 0; i < 50; ++i) {
    net.sim().schedule_after(sim::Duration::ms(200 * i),
                             [&net] { net.router(0).send_multicast(kGroup, 64); });
  }
  net.run_for(30.0);
  for (std::size_t i : {2u, 4u}) {
    const auto& c = net.agent(i).counters();
    // With virtually nothing lost, the absolute volume of redundant
    // gossip-reply traffic must stay tiny (a ratio would be dominated by
    // small-sample noise here; the paper-scale goodput lives in fig8).
    EXPECT_LE(c.replies_received - c.replies_useful, 3u);
  }
}

// The paper's portability claim, executed: Anonymous Gossip must recover
// injected loss over every gossip-capable substrate in the registry
// (shared tree and forwarding mesh alike), with no per-protocol test code.
std::vector<harness::Protocol> gossip_substrates() {
  std::vector<harness::Protocol> out;
  const auto& reg = harness::ProtocolRegistry::instance();
  for (harness::Protocol p : reg.all()) {
    if (reg.entry(p).gossip_capable) out.push_back(p);
  }
  return out;
}

class GossipOverEverySubstrate
    : public ::testing::TestWithParam<harness::Protocol> {};

TEST_P(GossipOverEverySubstrate, RecoversInjectedLoss) {
  testutil::StackOptions opts;
  opts.protocol = GetParam();
  opts.gossip.p_anon = 1.0;  // pure anonymous walks
  StaticNetwork net{line_positions(4, 80.0), opts};
  net.join_all({0, 2, 3}, 25.0);
  ASSERT_TRUE(net.all_on_tree({0, 2}));
  // Warm the distribution structure (ODMRP builds its mesh on first data).
  net.multicast_router(0).send_multicast(kGroup, 64);
  net.run_for(5.0);
  // Every second frame into member 3 vanishes; gossip must fill the holes.
  int counter = 0;
  net.channel().set_drop_hook([&counter](std::size_t, std::size_t to) {
    return to == 3 && (++counter % 2) == 0;
  });
  for (int i = 0; i < 40; ++i) {
    net.sim().schedule_after(sim::Duration::ms(200 * i), [&net] {
      net.multicast_router(0).send_multicast(kGroup, 64);
    });
  }
  net.run_for(60.0);
  EXPECT_EQ(net.agent(3).counters().delivered_unique, 41u)
      << harness::ProtocolRegistry::instance().name_of(GetParam());
  EXPECT_GT(net.agent(3).counters().delivered_via_gossip, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, GossipOverEverySubstrate, ::testing::ValuesIn(gossip_substrates()),
    [](const ::testing::TestParamInfo<harness::Protocol>& param_info) {
      return harness::ProtocolRegistry::instance().name_of(param_info.param);
    });

TEST(GossipStack, WalkLoadStaysBoundedWhenNothingIsLost) {
  StaticNetwork net{line_positions(3, 80.0)};
  net.join_all({0, 2}, 25.0);
  net.run_for(30.0);
  // ~30 rounds/member; replies only flow when something is missing, so a
  // loss-free network must see (almost) no reply traffic.
  for (std::size_t i : {0u, 2u}) {
    EXPECT_LE(net.agent(i).counters().replies_sent, 2u);
  }
}

}  // namespace
}  // namespace ag
