// Nearest-member gradient algebra, including a reconstruction of the
// paper's Fig. 1 fragment: members D and H bracket the router chain
// D - E - F - G - H, and "for the router E, the nearest group member
// through D is at a distance 1 and through F is at a distance 3".
#include "gossip/nearest_member.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

namespace ag::gossip {
namespace {

const net::GroupId kG{1};

// Several trackers wired so MODIFY messages deliver synchronously.
class Mesh {
 public:
  NearestMemberTracker& add(net::NodeId id) {
    auto tracker = std::make_unique<NearestMemberTracker>(
        [this, id](net::GroupId g, net::NodeId to, std::uint16_t v) {
          ++messages_sent;
          if (auto it = trackers_.find(to); it != trackers_.end()) {
            it->second->on_update_received(g, id, v);
          }
        });
    auto [it, ok] = trackers_.emplace(id, std::move(tracker));
    (void)ok;
    return *it->second;
  }

  // Symmetric tree edge.
  void link(net::NodeId a, net::NodeId b) {
    trackers_.at(a)->on_neighbor_added(kG, b, 0);
    trackers_.at(b)->on_neighbor_added(kG, a, 0);
  }

  NearestMemberTracker& at(net::NodeId id) { return *trackers_.at(id); }
  int messages_sent{0};

 private:
  std::map<net::NodeId, std::unique_ptr<NearestMemberTracker>> trackers_;
};

const net::NodeId D{1}, E{2}, F{3}, G{4}, H{5};

Mesh build_fig1_fragment() {
  Mesh mesh;
  for (net::NodeId n : {D, E, F, G, H}) mesh.add(n);
  mesh.link(D, E);
  mesh.link(E, F);
  mesh.link(F, G);
  mesh.link(G, H);
  mesh.at(D).on_self_membership(kG, true);
  mesh.at(H).on_self_membership(kG, true);
  return mesh;
}

TEST(NearestMember, Fig1RouterEValues) {
  Mesh mesh = build_fig1_fragment();
  // The paper's example: at E, nearest member through D is 1, through F is 3.
  EXPECT_EQ(mesh.at(E).value_for(kG, D), 1);
  EXPECT_EQ(mesh.at(E).value_for(kG, F), 3);
}

TEST(NearestMember, Fig1FullGradient) {
  Mesh mesh = build_fig1_fragment();
  EXPECT_EQ(mesh.at(F).value_for(kG, E), 2);
  EXPECT_EQ(mesh.at(F).value_for(kG, G), 2);
  EXPECT_EQ(mesh.at(G).value_for(kG, F), 3);
  EXPECT_EQ(mesh.at(G).value_for(kG, H), 1);
  EXPECT_EQ(mesh.at(D).value_for(kG, E), 4);  // D's member is H, 4 hops away
  EXPECT_EQ(mesh.at(H).value_for(kG, G), 4);
}

TEST(NearestMember, PaperAdvertisementFormula) {
  // Paper section 4.2: D with next hops {B, C, E} and values {b, c, e}
  // sends 1 + min(c, e) to B, 1 + min(b, e) to C, 1 + min(b, c) to E.
  const net::NodeId center{10}, B{11}, C{12}, Echo{13};
  Mesh mesh;
  for (net::NodeId n : {center, B, C, Echo}) mesh.add(n);
  mesh.link(center, B);
  mesh.link(center, C);
  mesh.link(center, Echo);
  // Inject values b=5, c=2, e=7 as if reported from subtrees.
  mesh.at(center).on_update_received(kG, B, 5);
  mesh.at(center).on_update_received(kG, C, 2);
  mesh.at(center).on_update_received(kG, Echo, 7);
  EXPECT_EQ(mesh.at(center).advertised_to(kG, B), 1 + 2);     // 1+min(c,e)
  EXPECT_EQ(mesh.at(center).advertised_to(kG, C), 1 + 5);     // 1+min(b,e)
  EXPECT_EQ(mesh.at(center).advertised_to(kG, Echo), 1 + 2);  // 1+min(b,c)
}

TEST(NearestMember, MemberAdvertisesOne) {
  Mesh mesh;
  mesh.add(D);
  mesh.add(E);
  mesh.link(D, E);
  mesh.at(D).on_self_membership(kG, true);
  EXPECT_EQ(mesh.at(D).advertised_to(kG, E), 1);
  EXPECT_EQ(mesh.at(E).value_for(kG, D), 1);
}

TEST(NearestMember, UnknownSubtreeIsInfinity) {
  Mesh mesh;
  mesh.add(D);
  mesh.add(E);
  mesh.link(D, E);
  // No members anywhere: everything stays at infinity.
  EXPECT_EQ(mesh.at(E).value_for(kG, D), NearestMemberTracker::kInfinity);
  EXPECT_EQ(mesh.at(E).advertised_to(kG, D), NearestMemberTracker::kInfinity);
}

TEST(NearestMember, MembershipLossPropagates) {
  Mesh mesh = build_fig1_fragment();
  ASSERT_EQ(mesh.at(E).value_for(kG, D), 1);
  mesh.at(D).on_self_membership(kG, false);
  // D no longer a member: the nearest member through D (via E's link) is
  // now H... but H lies the other way, so through D there is nothing.
  EXPECT_EQ(mesh.at(E).value_for(kG, D), NearestMemberTracker::kInfinity);
  // And G's view through F now only leads to nothing past E.
  EXPECT_EQ(mesh.at(G).value_for(kG, F), NearestMemberTracker::kInfinity);
}

TEST(NearestMember, NeighborRemovalRecomputes) {
  Mesh mesh = build_fig1_fragment();
  // Remove the F-G edge: E's value through F must go to infinity.
  mesh.at(F).on_neighbor_removed(kG, G);
  EXPECT_EQ(mesh.at(E).value_for(kG, F), NearestMemberTracker::kInfinity);
}

TEST(NearestMember, MemberDistanceHintSeedsValue) {
  Mesh mesh;
  mesh.add(D);
  mesh.at(D).on_neighbor_added(kG, E, 1);  // hint: E itself is a member
  EXPECT_EQ(mesh.at(D).value_for(kG, E), 1);
}

TEST(NearestMember, ChangeSuppressionLimitsTraffic) {
  Mesh mesh = build_fig1_fragment();
  const int settled = mesh.messages_sent;
  // Re-announcing the same membership produces no new MODIFY messages.
  mesh.at(D).on_self_membership(kG, true);
  EXPECT_EQ(mesh.messages_sent, settled);
}

TEST(NearestMember, StaleUpdateFromNonNeighborIgnored) {
  Mesh mesh;
  mesh.add(D);
  mesh.at(D).on_update_received(kG, net::NodeId{99}, 2);
  EXPECT_EQ(mesh.at(D).value_for(kG, net::NodeId{99}),
            NearestMemberTracker::kInfinity);
}

}  // namespace
}  // namespace ag::gossip
