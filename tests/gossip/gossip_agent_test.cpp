// GossipAgent unit tests against a scripted mock routing adapter — no
// network involved, so each protocol rule is isolated.
#include "gossip/gossip_agent.h"

#include <gtest/gtest.h>

#include <vector>

namespace ag::gossip {
namespace {

const net::GroupId kG{1};
const net::NodeId kSelf{10};

struct SentUnicast {
  net::NodeId dest;
  net::Payload payload;
};
struct SentNeighbor {
  net::NodeId neighbor;
  net::Payload payload;
};

class MockAdapter : public RoutingAdapter {
 public:
  [[nodiscard]] net::NodeId self() const override { return kSelf; }
  [[nodiscard]] bool is_member(net::GroupId) const override { return member; }
  [[nodiscard]] bool on_tree(net::GroupId) const override { return !neighbors.empty(); }
  [[nodiscard]] std::vector<net::NodeId> tree_neighbors(net::GroupId) const override {
    return neighbors;
  }
  void unicast(net::NodeId dest, net::Payload payload) override {
    unicasts.push_back({dest, std::move(payload)});
  }
  void send_to_neighbor(net::NodeId neighbor, net::Payload payload) override {
    neighbor_sends.push_back({neighbor, std::move(payload)});
  }
  void route_hint(net::NodeId dest, net::NodeId via, std::uint8_t hops) override {
    hints.push_back({dest, via, hops});
  }
  [[nodiscard]] std::uint8_t route_hops(net::NodeId) const override { return 3; }

  bool member{true};
  std::vector<net::NodeId> neighbors;
  std::vector<SentUnicast> unicasts;
  std::vector<SentNeighbor> neighbor_sends;
  struct Hint {
    net::NodeId dest, via;
    std::uint8_t hops;
  };
  std::vector<Hint> hints;
};

net::MulticastData data(std::uint32_t seq, std::uint32_t origin = 1) {
  net::MulticastData d;
  d.group = kG;
  d.origin = net::NodeId{origin};
  d.seq = seq;
  d.payload_bytes = 64;
  return d;
}

net::Packet packet_of(net::Payload payload, net::NodeId dst = kSelf) {
  net::Packet p;
  p.src = net::NodeId{1};
  p.dst = dst;
  p.payload = std::move(payload);
  return p;
}

class GossipAgentTest : public ::testing::Test {
 protected:
  GossipAgentTest() { params_.round_jitter = sim::Duration::zero(); }

  GossipAgent& make_agent() {
    agent_ = std::make_unique<GossipAgent>(sim_, adapter_, params_,
                                           sim_.rng().stream("gossip"));
    agent_->on_self_membership_changed(kG, true);
    return *agent_;
  }

  sim::Simulator sim_{123};
  MockAdapter adapter_;
  GossipParams params_;
  std::unique_ptr<GossipAgent> agent_;
};

TEST_F(GossipAgentTest, DeliversUniqueDataInOrder) {
  GossipAgent& agent = make_agent();
  std::vector<std::uint32_t> delivered;
  agent.set_deliver([&](const net::MulticastData& d, bool) { delivered.push_back(d.seq); });
  agent.on_multicast_data(data(0), net::NodeId{2});
  agent.on_multicast_data(data(1), net::NodeId{2});
  agent.on_multicast_data(data(1), net::NodeId{2});  // duplicate
  EXPECT_EQ(delivered, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(agent.counters().duplicates, 1u);
  EXPECT_EQ(agent.counters().delivered_unique, 2u);
}

TEST_F(GossipAgentTest, GapPopulatesLostTableAndGossipMessage) {
  params_.p_anon = 1.0;
  GossipAgent& agent = make_agent();
  agent.on_multicast_data(data(0), net::NodeId{2});
  agent.on_multicast_data(data(5), net::NodeId{2});
  const LostTable* lost = agent.lost_table(kG);
  ASSERT_NE(lost, nullptr);
  EXPECT_EQ(lost->size(), 4u);

  // A round must put those losses into a walk message.
  adapter_.neighbors = {net::NodeId{2}};
  agent_->start();
  sim_.run_until(sim_.now() + sim::Duration::ms(1100));
  ASSERT_EQ(adapter_.neighbor_sends.size(), 1u);
  const auto* msg = std::get_if<GossipMsg>(&adapter_.neighbor_sends[0].payload);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->initiator, kSelf);
  EXPECT_EQ(msg->lost.size(), 4u);
  EXPECT_EQ(msg->hops_walked, 1u);
  EXPECT_FALSE(msg->cached);
}

TEST_F(GossipAgentTest, LostBufferCappedAtTen) {
  params_.p_anon = 1.0;
  GossipAgent& agent = make_agent();
  agent.on_multicast_data(data(50), net::NodeId{2});  // 50 holes
  adapter_.neighbors = {net::NodeId{2}};
  agent_->start();
  sim_.run_until(sim_.now() + sim::Duration::ms(1100));
  ASSERT_FALSE(adapter_.neighbor_sends.empty());
  const auto* msg = std::get_if<GossipMsg>(&adapter_.neighbor_sends[0].payload);
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->lost.size(), 10u);  // paper: at most 10 requested losses
}

TEST_F(GossipAgentTest, CachedGossipUnicastsToCachedMember) {
  params_.p_anon = 0.0;  // always cached
  GossipAgent& agent = make_agent();
  agent.on_member_learned(kG, net::NodeId{7}, 2);
  agent.start();
  sim_.run_until(sim_.now() + sim::Duration::ms(1100));
  ASSERT_EQ(adapter_.unicasts.size(), 1u);
  EXPECT_EQ(adapter_.unicasts[0].dest, net::NodeId{7});
  const auto* msg = std::get_if<GossipMsg>(&adapter_.unicasts[0].payload);
  ASSERT_NE(msg, nullptr);
  EXPECT_TRUE(msg->cached);
  EXPECT_EQ(agent.counters().cached_initiated, 1u);
}

TEST_F(GossipAgentTest, CachedModeFallsBackToWalkWhenCacheEmpty) {
  params_.p_anon = 0.0;
  make_agent();
  adapter_.neighbors = {net::NodeId{3}};
  agent_->start();
  sim_.run_until(sim_.now() + sim::Duration::ms(1100));
  EXPECT_TRUE(adapter_.unicasts.empty());
  EXPECT_EQ(adapter_.neighbor_sends.size(), 1u);  // fell back to anonymous
}

TEST_F(GossipAgentTest, NoRoundActionWithoutTreeOrCache) {
  make_agent();
  agent_->start();
  sim_.run_until(sim_.now() + sim::Duration::ms(2100));
  EXPECT_TRUE(adapter_.unicasts.empty());
  EXPECT_TRUE(adapter_.neighbor_sends.empty());
}

TEST_F(GossipAgentTest, WalkForwardedExcludesArrivalNeighbor) {
  params_.p_accept = 0.0;  // never accept: always forward
  make_agent();
  adapter_.neighbors = {net::NodeId{2}, net::NodeId{3}};

  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{99};
  msg.hops_walked = 1;
  agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
  ASSERT_EQ(adapter_.neighbor_sends.size(), 1u);
  EXPECT_EQ(adapter_.neighbor_sends[0].neighbor, net::NodeId{3});  // not back to 2
  const auto* fwd = std::get_if<GossipMsg>(&adapter_.neighbor_sends[0].payload);
  ASSERT_NE(fwd, nullptr);
  EXPECT_EQ(fwd->hops_walked, 2u);
}

TEST_F(GossipAgentTest, WalkInstallsRouteHintTowardInitiator) {
  params_.p_accept = 0.0;
  make_agent();
  adapter_.neighbors = {net::NodeId{2}, net::NodeId{3}};
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{99};
  msg.hops_walked = 2;
  agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
  ASSERT_EQ(adapter_.hints.size(), 1u);
  EXPECT_EQ(adapter_.hints[0].dest, net::NodeId{99});
  EXPECT_EQ(adapter_.hints[0].via, net::NodeId{2});
  EXPECT_EQ(adapter_.hints[0].hops, 2);
}

TEST_F(GossipAgentTest, MemberLeafForcedToAcceptAndReplies) {
  params_.p_accept = 0.0;  // would normally propagate...
  make_agent();
  adapter_.neighbors = {net::NodeId{2}};  // ...but 2 is the arrival neighbor
  agent_->on_multicast_data(data(4), net::NodeId{2});  // history: seq 4 (+ holes)

  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{99};
  msg.lost = {net::MsgId{net::NodeId{1}, 4}};
  msg.hops_walked = 3;
  agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
  sim_.run_until(sim_.now() + sim::Duration::seconds(1));

  EXPECT_EQ(agent_->counters().walks_accepted, 1u);
  ASSERT_EQ(adapter_.unicasts.size(), 1u);
  EXPECT_EQ(adapter_.unicasts[0].dest, net::NodeId{99});
  const auto* reply = std::get_if<GossipReplyMsg>(&adapter_.unicasts[0].payload);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->data.seq, 4u);
  EXPECT_EQ(reply->responder, kSelf);
}

TEST_F(GossipAgentTest, NonMemberDeadEndDropsWalk) {
  make_agent();
  adapter_.member = false;
  adapter_.neighbors = {net::NodeId{2}};
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{99};
  msg.hops_walked = 1;
  agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
  EXPECT_EQ(agent_->counters().walks_dropped, 1u);
  EXPECT_TRUE(adapter_.neighbor_sends.empty());
}

TEST_F(GossipAgentTest, WalkTtlForcesResolution) {
  params_.p_accept = 0.0;
  params_.walk_ttl = 4;
  make_agent();
  adapter_.neighbors = {net::NodeId{2}, net::NodeId{3}};
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{99};
  msg.hops_walked = 4;  // at TTL
  agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
  EXPECT_TRUE(adapter_.neighbor_sends.empty());   // not forwarded
  EXPECT_EQ(agent_->counters().walks_accepted, 1u);  // member accepts at TTL
}

TEST_F(GossipAgentTest, RequestServesExpectedSeqPush) {
  make_agent();
  for (std::uint32_t s = 0; s < 5; ++s) {
    agent_->on_multicast_data(data(s), net::NodeId{2});
  }
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{99};
  msg.expected = {{net::NodeId{1}, 3}};  // initiator expects seq 3 next
  msg.cached = true;
  agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
  sim_.run_until(sim_.now() + sim::Duration::seconds(1));
  // Messages 3 and 4 pushed.
  ASSERT_EQ(adapter_.unicasts.size(), 2u);
  const auto* r0 = std::get_if<GossipReplyMsg>(&adapter_.unicasts[0].payload);
  const auto* r1 = std::get_if<GossipReplyMsg>(&adapter_.unicasts[1].payload);
  ASSERT_NE(r0, nullptr);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r0->data.seq, 3u);
  EXPECT_EQ(r1->data.seq, 4u);
}

TEST_F(GossipAgentTest, ReplyBudgetBoundsResponse) {
  params_.reply_budget = 3;
  make_agent();
  for (std::uint32_t s = 0; s < 10; ++s) {
    agent_->on_multicast_data(data(s), net::NodeId{2});
  }
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{99};
  msg.expected = {{net::NodeId{1}, 0}};
  msg.cached = true;
  agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
  sim_.run_until(sim_.now() + sim::Duration::seconds(1));
  EXPECT_EQ(adapter_.unicasts.size(), 3u);
}

TEST_F(GossipAgentTest, ReplyRecoversLossAndCountsGoodput) {
  GossipAgent& agent = make_agent();
  std::vector<std::pair<std::uint32_t, bool>> delivered;
  agent.set_deliver([&](const net::MulticastData& d, bool via_gossip) {
    delivered.emplace_back(d.seq, via_gossip);
  });
  agent.on_multicast_data(data(0), net::NodeId{2});
  agent.on_multicast_data(data(2), net::NodeId{2});  // hole at 1

  GossipReplyMsg reply;
  reply.group = kG;
  reply.responder = net::NodeId{7};
  reply.data = data(1);
  agent.on_gossip_packet(packet_of(reply), net::NodeId{2});

  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[2], (std::pair<std::uint32_t, bool>{1, true}));
  EXPECT_EQ(agent.counters().replies_received, 1u);
  EXPECT_EQ(agent.counters().replies_useful, 1u);
  EXPECT_EQ(agent.lost_table(kG)->size(), 0u);
}

TEST_F(GossipAgentTest, DuplicateReplyHurtsGoodput) {
  GossipAgent& agent = make_agent();
  agent.on_multicast_data(data(0), net::NodeId{2});
  GossipReplyMsg reply;
  reply.group = kG;
  reply.responder = net::NodeId{7};
  reply.data = data(0);  // already have it
  agent.on_gossip_packet(packet_of(reply), net::NodeId{2});
  EXPECT_EQ(agent.counters().replies_received, 1u);
  EXPECT_EQ(agent.counters().replies_useful, 0u);
  EXPECT_EQ(agent.counters().duplicates, 1u);
}

TEST_F(GossipAgentTest, AcceptorLearnsInitiatorIntoMemberCache) {
  params_.p_accept = 1.0;
  make_agent();
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{55};
  msg.hops_walked = 4;
  msg.cached = false;
  agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
  const MemberCache* cache = agent_->member_cache(kG);
  ASSERT_NE(cache, nullptr);
  ASSERT_TRUE(cache->contains(net::NodeId{55}));
  EXPECT_EQ(cache->entries()[0].numhops, 4);
}

TEST_F(GossipAgentTest, OwnWalkLoopedBackIsDropped) {
  make_agent();
  adapter_.neighbors = {net::NodeId{2}};
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = kSelf;  // our own walk came back
  msg.hops_walked = 5;
  agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
  EXPECT_TRUE(adapter_.neighbor_sends.empty());
  EXPECT_EQ(agent_->counters().walks_accepted, 0u);
}

TEST_F(GossipAgentTest, LocalityBiasPrefersCloserSubtree) {
  params_.p_accept = 0.0;
  params_.locality_alpha = 2.0;
  make_agent();
  adapter_.member = false;
  adapter_.neighbors = {net::NodeId{2}, net::NodeId{3}, net::NodeId{4}};
  // Neighbor 3 leads to a member at distance 1; neighbor 4 at distance 8.
  agent_->on_tree_neighbor_added(kG, net::NodeId{2}, 0);
  agent_->on_tree_neighbor_added(kG, net::NodeId{3}, 1);
  agent_->on_tree_neighbor_added(kG, net::NodeId{4}, 0);
  // Feed an explicit distance for 4.
  NearestMemberMsg nm{kG, 8};
  agent_->on_gossip_packet(packet_of(nm), net::NodeId{4});

  int to3 = 0, to4 = 0;
  for (int i = 0; i < 400; ++i) {
    adapter_.neighbor_sends.clear();
    GossipMsg msg;
    msg.group = kG;
    msg.initiator = net::NodeId{99};
    msg.hops_walked = 1;
    agent_->on_gossip_packet(packet_of(msg), net::NodeId{2});
    ASSERT_EQ(adapter_.neighbor_sends.size(), 1u);
    if (adapter_.neighbor_sends[0].neighbor == net::NodeId{3}) ++to3;
    if (adapter_.neighbor_sends[0].neighbor == net::NodeId{4}) ++to4;
  }
  EXPECT_GT(to3, to4 * 5);  // strong preference for the nearby member
  EXPECT_GT(to4, 0);        // but distant subtrees still reachable
}

TEST_F(GossipAgentTest, DisabledAgentStillTracksDeliveryButNeverGossips) {
  params_.enabled = false;
  GossipAgent& agent = make_agent();
  adapter_.neighbors = {net::NodeId{2}};
  agent.on_member_learned(kG, net::NodeId{7}, 2);
  agent.start();
  agent.on_multicast_data(data(0), net::NodeId{2});
  sim_.run_until(sim_.now() + sim::Duration::seconds(5));
  EXPECT_EQ(agent.counters().delivered_unique, 1u);
  EXPECT_EQ(agent.counters().rounds, 0u);
  EXPECT_TRUE(adapter_.unicasts.empty());
  EXPECT_TRUE(adapter_.neighbor_sends.empty());
}

}  // namespace
}  // namespace ag::gossip
