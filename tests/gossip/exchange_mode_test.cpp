// Push vs pull exchange modes (paper section 4.4 references the Demers et
// al. taxonomy; the paper's protocol is pull — push/push-pull are our
// design-space extension).
#include <gtest/gtest.h>

#include "gossip/gossip_agent.h"

namespace ag::gossip {
namespace {

const net::GroupId kG{1};
const net::NodeId kSelf{10};

class PushAdapter : public RoutingAdapter {
 public:
  [[nodiscard]] net::NodeId self() const override { return kSelf; }
  [[nodiscard]] bool is_member(net::GroupId) const override { return true; }
  [[nodiscard]] bool on_tree(net::GroupId) const override { return true; }
  [[nodiscard]] std::vector<net::NodeId> tree_neighbors(net::GroupId) const override {
    return {net::NodeId{2}};
  }
  void unicast(net::NodeId, net::Payload) override {}
  void send_to_neighbor(net::NodeId, net::Payload payload) override {
    sent.push_back(std::move(payload));
  }
  void route_hint(net::NodeId, net::NodeId, std::uint8_t) override {}
  [[nodiscard]] std::uint8_t route_hops(net::NodeId) const override { return 1; }
  std::vector<net::Payload> sent;
};

net::MulticastData data(std::uint32_t seq) {
  net::MulticastData d;
  d.group = kG;
  d.origin = net::NodeId{1};
  d.seq = seq;
  return d;
}

net::Packet packet_of(net::Payload payload) {
  net::Packet p;
  p.src = net::NodeId{2};
  p.dst = kSelf;
  p.payload = std::move(payload);
  return p;
}

struct ModeFixture {
  explicit ModeFixture(ExchangeMode mode) {
    params.exchange_mode = mode;
    params.push_budget = 3;
    params.round_jitter = sim::Duration::zero();
    params.p_anon = 1.0;
    agent = std::make_unique<GossipAgent>(sim, adapter, params,
                                          sim.rng().stream("gossip"));
    agent->on_self_membership_changed(kG, true);
  }
  sim::Simulator sim{9};
  PushAdapter adapter;
  GossipParams params;
  std::unique_ptr<GossipAgent> agent;
};

TEST(ExchangeMode, PushRoundCarriesRecentHistoryAndNoPullLists) {
  ModeFixture f{ExchangeMode::push};
  for (std::uint32_t s = 0; s < 5; ++s) f.agent->on_multicast_data(data(s), net::NodeId{2});
  f.agent->start();
  f.sim.run_until(f.sim.now() + sim::Duration::ms(1100));
  ASSERT_EQ(f.adapter.sent.size(), 1u);
  const auto* msg = std::get_if<GossipMsg>(&f.adapter.sent[0]);
  ASSERT_NE(msg, nullptr);
  EXPECT_FALSE(msg->pull);
  EXPECT_TRUE(msg->lost.empty());
  EXPECT_TRUE(msg->expected.empty());
  ASSERT_EQ(msg->pushed.size(), 3u);       // push_budget
  EXPECT_EQ(msg->pushed[0].seq, 4u);       // newest first
}

TEST(ExchangeMode, PushPullCarriesBoth) {
  ModeFixture f{ExchangeMode::push_pull};
  f.agent->on_multicast_data(data(0), net::NodeId{2});
  f.agent->on_multicast_data(data(3), net::NodeId{2});  // holes 1,2
  f.agent->start();
  f.sim.run_until(f.sim.now() + sim::Duration::ms(1100));
  ASSERT_EQ(f.adapter.sent.size(), 1u);
  const auto* msg = std::get_if<GossipMsg>(&f.adapter.sent[0]);
  ASSERT_NE(msg, nullptr);
  EXPECT_TRUE(msg->pull);
  EXPECT_EQ(msg->lost.size(), 2u);
  EXPECT_FALSE(msg->pushed.empty());
}

TEST(ExchangeMode, PullRoundCarriesNoPushedData) {
  ModeFixture f{ExchangeMode::pull};
  for (std::uint32_t s = 0; s < 5; ++s) f.agent->on_multicast_data(data(s), net::NodeId{2});
  f.agent->start();
  f.sim.run_until(f.sim.now() + sim::Duration::ms(1100));
  ASSERT_EQ(f.adapter.sent.size(), 1u);
  const auto* msg = std::get_if<GossipMsg>(&f.adapter.sent[0]);
  ASSERT_NE(msg, nullptr);
  EXPECT_TRUE(msg->pull);
  EXPECT_TRUE(msg->pushed.empty());
}

TEST(ExchangeMode, ReceivedPushIsDeliveredAndCountsTowardGoodput) {
  ModeFixture f{ExchangeMode::pull};  // receiver mode is irrelevant
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{7};
  msg.pull = false;
  msg.pushed = {data(0), data(1)};
  msg.cached = true;
  f.agent->on_gossip_packet(packet_of(msg), net::NodeId{2});
  EXPECT_EQ(f.agent->counters().delivered_unique, 2u);
  EXPECT_EQ(f.agent->counters().replies_received, 2u);
  EXPECT_EQ(f.agent->counters().replies_useful, 2u);
}

TEST(ExchangeMode, DuplicatePushHurtsGoodput) {
  ModeFixture f{ExchangeMode::pull};
  f.agent->on_multicast_data(data(0), net::NodeId{2});
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{7};
  msg.pull = false;
  msg.pushed = {data(0)};  // we already have it: redundant gossip traffic
  msg.cached = true;
  f.agent->on_gossip_packet(packet_of(msg), net::NodeId{2});
  EXPECT_EQ(f.agent->counters().replies_received, 1u);
  EXPECT_EQ(f.agent->counters().replies_useful, 0u);
}

TEST(ExchangeMode, PureWalkWithoutPullDoesNotTriggerReplies) {
  ModeFixture f{ExchangeMode::pull};
  for (std::uint32_t s = 0; s < 5; ++s) f.agent->on_multicast_data(data(s), net::NodeId{2});
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{7};
  msg.pull = false;  // push-only round from the initiator's side
  msg.cached = true;
  f.agent->on_gossip_packet(packet_of(msg), net::NodeId{2});
  f.sim.run_until(f.sim.now() + sim::Duration::seconds(1));
  // No unicasts were produced: the acceptor must not answer a push round.
  EXPECT_EQ(f.agent->counters().replies_sent, 0u);
}

TEST(ExchangeMode, PushRoundStillUpdatesMemberCache) {
  ModeFixture f{ExchangeMode::pull};
  GossipMsg msg;
  msg.group = kG;
  msg.initiator = net::NodeId{7};
  msg.pull = false;
  msg.hops_walked = 5;
  msg.cached = false;
  f.agent->on_gossip_packet(packet_of(msg), net::NodeId{2});
  // Member + p_accept default 0.5 may accept or forward; force via TTL.
  // Simplest: check after handle via cached unicast (always accepted).
  GossipMsg cached = msg;
  cached.cached = true;
  f.agent->on_gossip_packet(packet_of(cached), net::NodeId{2});
  const MemberCache* cache = f.agent->member_cache(kG);
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->contains(net::NodeId{7}));
}

}  // namespace
}  // namespace ag::gossip
