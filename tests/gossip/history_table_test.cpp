#include "gossip/history_table.h"

#include <gtest/gtest.h>

namespace ag::gossip {
namespace {

net::MulticastData data(std::uint32_t seq, std::uint32_t origin = 1) {
  net::MulticastData d;
  d.group = net::GroupId{1};
  d.origin = net::NodeId{origin};
  d.seq = seq;
  return d;
}

TEST(HistoryTable, StoresAndFinds) {
  HistoryTable h{10};
  h.push(data(5));
  const net::MulticastData* found = h.find({net::NodeId{1}, 5});
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->seq, 5u);
  EXPECT_EQ(h.find({net::NodeId{1}, 6}), nullptr);
  EXPECT_EQ(h.find({net::NodeId{2}, 5}), nullptr);
}

TEST(HistoryTable, FifoEvictionAtCapacity) {
  HistoryTable h{3};
  for (std::uint32_t s = 0; s < 5; ++s) h.push(data(s));
  EXPECT_EQ(h.size(), 3u);
  EXPECT_FALSE(h.contains({net::NodeId{1}, 0}));
  EXPECT_FALSE(h.contains({net::NodeId{1}, 1}));
  EXPECT_TRUE(h.contains({net::NodeId{1}, 2}));
  EXPECT_TRUE(h.contains({net::NodeId{1}, 4}));
}

TEST(HistoryTable, DuplicatePushIgnored) {
  HistoryTable h{3};
  h.push(data(1));
  h.push(data(1));
  EXPECT_EQ(h.size(), 1u);
}

TEST(HistoryTable, CollectFromFiltersByOriginAndSeq) {
  HistoryTable h{10};
  h.push(data(1, 1));
  h.push(data(2, 1));
  h.push(data(3, 1));
  h.push(data(2, 9));  // different origin
  auto got = h.collect_from(net::NodeId{1}, 2, 10);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, 2u);
  EXPECT_EQ(got[1].seq, 3u);
}

TEST(HistoryTable, CollectFromRespectsBudget) {
  HistoryTable h{10};
  for (std::uint32_t s = 0; s < 8; ++s) h.push(data(s));
  EXPECT_EQ(h.collect_from(net::NodeId{1}, 0, 3).size(), 3u);
}

TEST(HistoryTable, CollectFromEmptyOrigin) {
  HistoryTable h{10};
  h.push(data(1, 1));
  EXPECT_TRUE(h.collect_from(net::NodeId{42}, 0, 10).empty());
}

}  // namespace
}  // namespace ag::gossip
