#include "gossip/lost_table.h"

#include <gtest/gtest.h>

namespace ag::gossip {
namespace {

const net::NodeId kS{7};
net::MsgId id(std::uint32_t seq, std::uint32_t sender = 7) {
  return {net::NodeId{sender}, seq};
}

TEST(LostTable, InOrderSequenceCreatesNoHoles) {
  LostTable t{100};
  EXPECT_EQ(t.on_data(id(0)), ReceiveOutcome::in_order);
  EXPECT_EQ(t.on_data(id(1)), ReceiveOutcome::in_order);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.expected_for(kS), 2u);
}

TEST(LostTable, GapRecordsEveryMissingSeq) {
  LostTable t{100};
  t.on_data(id(0));
  EXPECT_EQ(t.on_data(id(5)), ReceiveOutcome::created_holes);
  EXPECT_EQ(t.size(), 4u);  // 1,2,3,4
  for (std::uint32_t s = 1; s <= 4; ++s) EXPECT_TRUE(t.contains(id(s)));
  EXPECT_EQ(t.expected_for(kS), 6u);
}

TEST(LostTable, FirstMessageAheadOfZeroCreatesHoles) {
  LostTable t{100};
  EXPECT_EQ(t.on_data(id(3)), ReceiveOutcome::created_holes);
  EXPECT_EQ(t.size(), 3u);  // 0,1,2
}

TEST(LostTable, RecoveryFillsHole) {
  LostTable t{100};
  t.on_data(id(0));
  t.on_data(id(3));
  EXPECT_EQ(t.on_data(id(1)), ReceiveOutcome::recovered);
  EXPECT_FALSE(t.contains(id(1)));
  EXPECT_TRUE(t.contains(id(2)));
  EXPECT_EQ(t.size(), 1u);
}

TEST(LostTable, DuplicateDetected) {
  LostTable t{100};
  t.on_data(id(0));
  EXPECT_EQ(t.on_data(id(0)), ReceiveOutcome::duplicate);
  t.on_data(id(2));
  t.on_data(id(1));
  EXPECT_EQ(t.on_data(id(1)), ReceiveOutcome::duplicate);
}

TEST(LostTable, SendersAreIndependent) {
  LostTable t{100};
  t.on_data(id(0, 1));
  t.on_data(id(2, 2));  // sender 2 jumps ahead
  EXPECT_EQ(t.expected_for(net::NodeId{1}), 1u);
  EXPECT_EQ(t.expected_for(net::NodeId{2}), 3u);
  EXPECT_TRUE(t.contains(id(0, 2)));
  EXPECT_FALSE(t.contains(id(0, 1)));
}

TEST(LostTable, CapacityEvictsOldestHoles) {
  LostTable t{5};
  t.on_data(id(10));  // holes 0..9, capacity 5 -> oldest five abandoned
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.abandoned(), 5u);
  EXPECT_FALSE(t.contains(id(0)));
  EXPECT_TRUE(t.contains(id(9)));
  // An abandoned hole arriving late counts as duplicate (given up).
  EXPECT_EQ(t.on_data(id(0)), ReceiveOutcome::duplicate);
}

TEST(LostTable, MostRecentReturnsNewestFirst) {
  LostTable t{100};
  t.on_data(id(3));              // holes 0,1,2
  const auto recent = t.most_recent(2);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].seq, 2u);
  EXPECT_EQ(recent[1].seq, 1u);
}

TEST(LostTable, MostRecentSkipsRecoveredEntries) {
  LostTable t{100};
  t.on_data(id(3));
  t.on_data(id(2));  // recover newest hole
  const auto recent = t.most_recent(10);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].seq, 1u);
}

TEST(LostTable, ExpectationsListAllSenders) {
  LostTable t{100};
  t.on_data(id(0, 1));
  t.on_data(id(4, 2));
  auto exps = t.expectations();
  ASSERT_EQ(exps.size(), 2u);
}

TEST(LostTable, LargeGapBoundedByCapacity) {
  LostTable t{200};  // the paper's size
  t.on_data(id(0));
  t.on_data(id(1000));
  EXPECT_EQ(t.size(), 200u);
  EXPECT_EQ(t.abandoned(), 999u - 200u);
  EXPECT_TRUE(t.contains(id(999)));
  EXPECT_FALSE(t.contains(id(1)));
}

}  // namespace
}  // namespace ag::gossip
