#include "gossip/member_cache.h"

#include <gtest/gtest.h>

namespace ag::gossip {
namespace {

const sim::SimTime kT1 = sim::SimTime::seconds(1);
const sim::SimTime kT2 = sim::SimTime::seconds(2);

TEST(MemberCache, ObserveAddsUpToCapacity) {
  MemberCache c{3};
  c.observe(net::NodeId{1}, 2, kT1);
  c.observe(net::NodeId{2}, 3, kT1);
  c.observe(net::NodeId{3}, 4, kT1);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_TRUE(c.contains(net::NodeId{1}));
}

TEST(MemberCache, ObserveExistingUpdatesHops) {
  MemberCache c{3};
  c.observe(net::NodeId{1}, 5, kT1);
  c.observe(net::NodeId{1}, 2, kT2);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.entries()[0].numhops, 2);
}

TEST(MemberCache, ZeroHopsMeansUnknownAndKeepsEstimate) {
  MemberCache c{3};
  c.observe(net::NodeId{1}, 4, kT1);
  c.observe(net::NodeId{1}, 0, kT2);  // unknown distance
  EXPECT_EQ(c.entries()[0].numhops, 4);
}

TEST(MemberCache, FullCacheEvictsFartherMember) {
  // Paper: "a member with a greater numhops is deleted".
  MemberCache c{2};
  c.observe(net::NodeId{1}, 2, kT1);
  c.observe(net::NodeId{2}, 8, kT1);
  c.observe(net::NodeId{3}, 4, kT1);  // closer than node 2
  EXPECT_TRUE(c.contains(net::NodeId{1}));
  EXPECT_FALSE(c.contains(net::NodeId{2}));  // farthest evicted
  EXPECT_TRUE(c.contains(net::NodeId{3}));
}

TEST(MemberCache, NoFartherMemberEvictsMostRecentlyGossiped) {
  // Paper: "the member with most recent last_gossip is replaced" (avoids
  // gossiping with the same members repeatedly).
  MemberCache c{2};
  c.observe(net::NodeId{1}, 2, kT1);
  c.observe(net::NodeId{2}, 2, kT1);
  c.note_gossiped(net::NodeId{1}, kT2);  // 1 was gossiped with most recently
  c.observe(net::NodeId{3}, 9, kT2);     // farther than both
  EXPECT_FALSE(c.contains(net::NodeId{1}));
  EXPECT_TRUE(c.contains(net::NodeId{2}));
  EXPECT_TRUE(c.contains(net::NodeId{3}));
}

TEST(MemberCache, PickRandomFromEmptyIsInvalid) {
  MemberCache c{2};
  sim::Rng rng{1};
  EXPECT_FALSE(c.pick_random(rng).is_valid());
}

TEST(MemberCache, PickRandomCoversAllEntries) {
  MemberCache c{3};
  c.observe(net::NodeId{1}, 1, kT1);
  c.observe(net::NodeId{2}, 1, kT1);
  c.observe(net::NodeId{3}, 1, kT1);
  sim::Rng rng{2};
  bool seen[4] = {};
  for (int i = 0; i < 200; ++i) seen[c.pick_random(rng).value()] = true;
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_TRUE(seen[3]);
}

TEST(MemberCache, NoteGossipedOnUnknownMemberIsNoop) {
  MemberCache c{2};
  c.note_gossiped(net::NodeId{9}, kT1);  // must not crash or insert
  EXPECT_EQ(c.size(), 0u);
}

TEST(MemberCache, ExpireDropsEntriesWithoutRecentEvidence) {
  MemberCache c{3};
  c.observe(net::NodeId{1}, 2, kT1);
  c.observe(net::NodeId{2}, 2, kT2);
  EXPECT_EQ(c.expire_older_than(kT2), 1u);  // node 1 last seen at kT1
  EXPECT_FALSE(c.contains(net::NodeId{1}));
  EXPECT_TRUE(c.contains(net::NodeId{2}));
}

TEST(MemberCache, ReobservingRefreshesExpiryClock) {
  MemberCache c{3};
  c.observe(net::NodeId{1}, 2, kT1);
  c.observe(net::NodeId{1}, 0, kT2);  // fresh evidence, distance unknown
  EXPECT_EQ(c.expire_older_than(kT2), 0u);
  EXPECT_TRUE(c.contains(net::NodeId{1}));
}

TEST(MemberCache, GossipingIsNotLivenessEvidence) {
  // note_gossiped stamps last_gossip (the eviction heuristic), not
  // last_seen: initiating gossip toward a member says nothing about the
  // member being alive.
  MemberCache c{3};
  c.observe(net::NodeId{1}, 2, kT1);
  c.note_gossiped(net::NodeId{1}, kT2);
  EXPECT_EQ(c.expire_older_than(kT2), 1u);
  EXPECT_FALSE(c.contains(net::NodeId{1}));
}

}  // namespace
}  // namespace ag::gossip
