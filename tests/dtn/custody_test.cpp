// End-to-end coverage of the custody tier on a full harness Network:
// the zero-cost guarantees (armed-but-empty store, AG_CUSTODY=off
// hatch), the reboot re-offer path with sink-level dedup, gateway
// bridging across a partition heal, and determinism.
#include <gtest/gtest.h>

#include <cstdlib>

#include "dtn/custody_router.h"
#include "harness/network.h"
#include "harness/scenario.h"
#include "stats/run_result.h"

namespace ag::harness {
namespace {

// The fault_injection_test recipe: 14 nodes at good connectivity, 401
// data packets between t=20 s and t=100 s.
ScenarioConfig small_scenario(std::uint64_t seed = 1) {
  ScenarioConfig c;
  c.seed = seed;
  c.node_count = 14;
  c.phy.transmission_range_m = 80.0;
  c.waypoint.max_speed_mps = 0.5;
  c.duration = sim::SimTime::seconds(120.0);
  c.workload.start = sim::SimTime::seconds(20.0);
  c.workload.end = sim::SimTime::seconds(100.0);
  c.with_protocol(Protocol::maodv_gossip);
  return c;
}

void expect_same_results(const stats::RunResult& a, const stats::RunResult& b) {
  ASSERT_EQ(a.members.size(), b.members.size());
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].received, b.members[i].received) << "member " << i;
    EXPECT_EQ(a.members[i].via_gossip, b.members[i].via_gossip) << "member " << i;
  }
  EXPECT_EQ(a.totals.channel_transmissions, b.totals.channel_transmissions);
  EXPECT_EQ(a.totals.mac_unicast, b.totals.mac_unicast);
  EXPECT_EQ(a.totals.mac_broadcast, b.totals.mac_broadcast);
  EXPECT_EQ(a.totals.gossip_walks, b.totals.gossip_walks);
}

// RAII guard for the AG_CUSTODY hatch (Network reads it at construction).
class CustodyHatch {
 public:
  CustodyHatch() { ::unsetenv("AG_CUSTODY"); }
  ~CustodyHatch() { ::unsetenv("AG_CUSTODY"); }
  void off() { ::setenv("AG_CUSTODY", "off", 1); }
};

TEST(Custody, ArmedButEmptyStoreMatchesPlainRun) {
  // max_messages = 0 builds the whole tier (decorators, contact monitor,
  // gateway flags) but the store refuses everything: no offers ever hit
  // the MAC, so delivery and traffic are identical to a plain run.
  CustodyHatch hatch;
  const stats::RunResult plain = run_scenario(small_scenario());

  ScenarioConfig armed = small_scenario();
  armed.with_custody(/*max_messages=*/0, /*gateway_count=*/2);
  const stats::RunResult empty = run_scenario(armed);

  expect_same_results(plain, empty);
  EXPECT_TRUE(empty.totals.dtn_active);
  EXPECT_EQ(empty.totals.custody_stored, 0u);
  EXPECT_EQ(empty.totals.custody_offers, 0u);
}

TEST(Custody, EnvHatchRestoresThePlainStack) {
  // AG_CUSTODY=off with custody fully configured: not even the contact
  // monitor is built, so the run is event-for-event the plain one.
  CustodyHatch hatch;
  const stats::RunResult plain = run_scenario(small_scenario());

  ScenarioConfig configured = small_scenario();
  configured.with_custody(/*max_messages=*/64, /*gateway_count=*/2);
  hatch.off();
  Network net{configured};
  EXPECT_FALSE(net.custody_enabled());
  EXPECT_EQ(net.custody(0), nullptr);
  net.run();
  const stats::RunResult off = net.result();

  expect_same_results(plain, off);
  EXPECT_EQ(plain.totals.sim_events, off.totals.sim_events);
  EXPECT_FALSE(off.totals.dtn_active);
}

TEST(Custody, DecoratorWrapsEveryNodeAndMarksGateways) {
  CustodyHatch hatch;
  ScenarioConfig c = small_scenario();
  c.with_custody(/*max_messages=*/16, /*gateway_count=*/2);
  Network net{c};
  ASSERT_TRUE(net.custody_enabled());
  std::size_t gateways = 0;
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    ASSERT_NE(net.custody(i), nullptr) << "node " << i;
    EXPECT_EQ(net.custody(i)->self(), net::NodeId{static_cast<std::uint32_t>(i)});
    if (net.is_gateway(i)) {
      ++gateways;
      EXPECT_TRUE(net.custody(i)->gateway());
    }
  }
  EXPECT_EQ(gateways, 2u);
  EXPECT_FALSE(net.is_gateway(0)) << "the source is never a gateway";
}

TEST(Custody, RebootReofferDoesNotDoubleDeliver) {
  // Member 3 crashes with a full state wipe (the gossip dedup tables die
  // with it); on reboot its neighbors re-offer custody. The sink's MsgId
  // dedup must keep every re-delivered packet from being counted twice:
  // received can never exceed the member's eligible window.
  CustodyHatch hatch;
  ScenarioConfig c = small_scenario();
  c.with_custody(/*max_messages=*/64, /*gateway_count=*/0);
  c.faults.plan.crash(3, 40.0, 30.0, faults::RebootPolicy::wipe);
  const stats::RunResult r = run_scenario(c);

  EXPECT_EQ(r.faults.crashes, 1u);
  EXPECT_EQ(r.faults.reboots, 1u);
  // The custody path actually ran: deliveries were taken into custody
  // and the reboot/contact bursts put offers on the air.
  EXPECT_GT(r.totals.custody_stored, 0u);
  EXPECT_GT(r.totals.custody_offers, 0u);
  for (const stats::MemberResult& m : r.members) {
    EXPECT_LE(m.received, r.eligible_of(m)) << "member " << m.node.value();
  }
}

TEST(Custody, GatewayBridgesThePartitionHeal) {
  CustodyHatch hatch;
  ScenarioConfig c = small_scenario();
  c.waypoint.max_speed_mps = 0.2;  // near-static so the cut stays real
  c.with_custody(/*max_messages=*/32, /*gateway_count=*/2);
  c.faults.plan.partition_at_x(-1.0, 50.0, 30.0);
  const stats::RunResult r = run_scenario(c);

  EXPECT_EQ(r.faults.partitions, 1u);
  EXPECT_EQ(r.faults.heals, 1u);
  EXPECT_GT(r.totals.custody_stored, 0u);
  EXPECT_GT(r.totals.custody_offers, 0u);
  EXPECT_GT(r.delivery_ratio(), 0.3);
  for (const stats::MemberResult& m : r.members) {
    EXPECT_LE(m.received, r.eligible_of(m));
  }
}

TEST(Custody, DeterministicAcrossIdenticalRuns) {
  CustodyHatch hatch;
  ScenarioConfig c = small_scenario(3);
  c.with_custody(/*max_messages=*/8, /*gateway_count=*/1);
  c.faults.spec.churn_per_min = 1.0;
  const stats::RunResult a = run_scenario(c);
  const stats::RunResult b = run_scenario(c);
  expect_same_results(a, b);
  EXPECT_EQ(a.totals.custody_stored, b.totals.custody_stored);
  EXPECT_EQ(a.totals.custody_offers, b.totals.custody_offers);
  EXPECT_EQ(a.totals.custody_accepted, b.totals.custody_accepted);
  EXPECT_EQ(a.totals.custody_duplicates, b.totals.custody_duplicates);
  EXPECT_EQ(a.totals.sim_events, b.totals.sim_events);
}

TEST(Custody, SessionsAccountUsersServed) {
  // 50 users per member node with a 50 % duty cycle: the session layer
  // must report hosted sessions and a served count bounded by the
  // eligible (session, packet) pairs — without perturbing delivery.
  CustodyHatch hatch;
  const stats::RunResult plain = run_scenario(small_scenario());

  ScenarioConfig c = small_scenario();
  c.with_sessions(/*per_node=*/50, /*duty=*/0.5);
  c.sessions.wake_ttl_s = 10.0;
  c.sessions.subscribe_spread_s = 30.0;
  const stats::RunResult r = run_scenario(c);

  // Sessions are purely analytic: the packet trace is untouched.
  expect_same_results(plain, r);
  EXPECT_TRUE(r.totals.dtn_active);
  // Every member except the source hosts 50 sessions.
  const std::uint64_t hosts = small_scenario().member_count() - 1;
  EXPECT_EQ(r.totals.sessions.sessions, hosts * 50u);
  EXPECT_GT(r.totals.sessions.user_eligible, 0u);
  EXPECT_GT(r.totals.sessions.users_served, 0u);
  EXPECT_LE(r.totals.sessions.users_served, r.totals.sessions.user_eligible);
  EXPECT_GT(r.totals.sessions.served_ratio(), 0.0);
  EXPECT_LE(r.totals.sessions.served_ratio(), 1.0);
}

}  // namespace
}  // namespace ag::harness
