// Unit coverage for the per-node custody store: explicit budgets
// (messages and bytes), TTL expiry on the sim clock, deterministic
// oldest-first eviction, and MsgId dedup.
#include <gtest/gtest.h>

#include <vector>

#include "dtn/custody_store.h"

namespace ag::dtn {
namespace {

net::MulticastData payload(std::uint32_t seq, double sent_at_s = 0.0,
                           std::uint16_t bytes = 64) {
  net::MulticastData d;
  d.group = net::GroupId{1};
  d.origin = net::NodeId{0};
  d.seq = seq;
  d.payload_bytes = bytes;
  d.sent_at = sim::SimTime::seconds(sent_at_s);
  return d;
}

sim::SimTime at(double s) { return sim::SimTime::seconds(s); }

TEST(CustodyStore, StoresAndHoldsByMsgId) {
  CustodyStore store{4, 1024, sim::Duration::seconds(100.0)};
  EXPECT_TRUE(store.store(payload(0), at(1.0)));
  EXPECT_TRUE(store.store(payload(1), at(2.0)));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.bytes(), 128u);
  EXPECT_TRUE(store.holds(net::MsgId{net::NodeId{0}, 0}));
  EXPECT_TRUE(store.holds(net::MsgId{net::NodeId{0}, 1}));
  EXPECT_FALSE(store.holds(net::MsgId{net::NodeId{0}, 2}));
  EXPECT_EQ(store.counters().stored, 2u);
}

TEST(CustodyStore, RefusesDuplicates) {
  CustodyStore store{4, 1024, sim::Duration::seconds(100.0)};
  EXPECT_TRUE(store.store(payload(0), at(1.0)));
  EXPECT_FALSE(store.store(payload(0), at(2.0)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.counters().refused_duplicate, 1u);
}

TEST(CustodyStore, ZeroBudgetsRefuseEverything) {
  CustodyStore no_messages{0, 1024, sim::Duration::seconds(100.0)};
  EXPECT_FALSE(no_messages.store(payload(0), at(1.0)));
  EXPECT_TRUE(no_messages.empty());

  CustodyStore no_bytes{4, 0, sim::Duration::seconds(100.0)};
  EXPECT_FALSE(no_bytes.store(payload(0), at(1.0)));
  EXPECT_TRUE(no_bytes.empty());
}

TEST(CustodyStore, OversizedPayloadRefusedWithoutEvicting) {
  CustodyStore store{4, 100, sim::Duration::seconds(100.0)};
  EXPECT_TRUE(store.store(payload(0, 0.0, 64), at(1.0)));
  // 200 B can never fit in a 100 B store: refuse it outright instead of
  // draining the whole queue first.
  EXPECT_FALSE(store.store(payload(1, 0.0, 200), at(2.0)));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.holds(net::MsgId{net::NodeId{0}, 0}));
}

TEST(CustodyStore, MessageCapacityEvictsOldestFirst) {
  CustodyStore store{2, 1024, sim::Duration::seconds(100.0)};
  EXPECT_TRUE(store.store(payload(0), at(1.0)));
  EXPECT_TRUE(store.store(payload(1), at(2.0)));
  EXPECT_TRUE(store.store(payload(2), at(3.0)));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.holds(net::MsgId{net::NodeId{0}, 0}));  // oldest went
  EXPECT_TRUE(store.holds(net::MsgId{net::NodeId{0}, 1}));
  EXPECT_TRUE(store.holds(net::MsgId{net::NodeId{0}, 2}));
  EXPECT_EQ(store.counters().evicted_capacity, 1u);
}

TEST(CustodyStore, ByteBudgetEvictsUntilTheNewcomerFits) {
  CustodyStore store{8, 200, sim::Duration::seconds(100.0)};
  EXPECT_TRUE(store.store(payload(0, 0.0, 64), at(1.0)));
  EXPECT_TRUE(store.store(payload(1, 0.0, 64), at(2.0)));
  EXPECT_TRUE(store.store(payload(2, 0.0, 64), at(3.0)));
  // 3*64=192 <= 200; a fourth 64 B payload needs one eviction.
  EXPECT_TRUE(store.store(payload(3, 0.0, 64), at(4.0)));
  EXPECT_EQ(store.size(), 3u);
  EXPECT_LE(store.bytes(), 200u);
  EXPECT_FALSE(store.holds(net::MsgId{net::NodeId{0}, 0}));
  EXPECT_EQ(store.counters().evicted_capacity, 1u);
}

TEST(CustodyStore, TtlExpiresOnTheSimClock) {
  CustodyStore store{4, 1024, sim::Duration::seconds(10.0)};
  EXPECT_TRUE(store.store(payload(0), at(0.0)));
  EXPECT_TRUE(store.store(payload(1), at(5.0)));
  store.expire(at(10.5));  // entry 0 expired at t=10, entry 1 lives to 15
  EXPECT_EQ(store.size(), 1u);
  EXPECT_FALSE(store.holds(net::MsgId{net::NodeId{0}, 0}));
  EXPECT_TRUE(store.holds(net::MsgId{net::NodeId{0}, 1}));
  EXPECT_EQ(store.counters().evicted_ttl, 1u);
  // After expiry the key is free again: the same MsgId can re-enter.
  EXPECT_TRUE(store.store(payload(0), at(11.0)));
}

TEST(CustodyStore, CollectOldestIsDeterministicInsertionOrder) {
  CustodyStore store{8, 1024, sim::Duration::seconds(100.0)};
  for (std::uint32_t seq : {7u, 3u, 5u}) {
    EXPECT_TRUE(store.store(payload(seq), at(1.0)));
  }
  std::vector<net::MulticastData> out;
  store.collect_oldest(at(2.0), 2, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 7u);  // insertion order, not seq order
  EXPECT_EQ(out[1].seq, 3u);
  // Collecting does not drop custody.
  EXPECT_EQ(store.size(), 3u);

  out.clear();
  store.collect_oldest(at(2.0), 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(CustodyStore, CollectExpiresBeforeOffering) {
  CustodyStore store{8, 1024, sim::Duration::seconds(10.0)};
  EXPECT_TRUE(store.store(payload(0), at(0.0)));
  EXPECT_TRUE(store.store(payload(1), at(8.0)));
  std::vector<net::MulticastData> out;
  store.collect_oldest(at(12.0), 8, out);  // entry 0 is already stale
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(store.counters().evicted_ttl, 1u);
}

}  // namespace
}  // namespace ag::dtn
