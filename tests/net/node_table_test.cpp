// The dense data-plane containers: NodeTable/IdSet (flat, bitmap-backed)
// and DenseMap/DenseSet (open addressing), in both the dense and the
// AG_DENSE_TABLES=off std::map reference modes — same observable
// behaviour, ascending iteration, probe counters, and the packet pool's
// slab reuse.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "net/data_plane.h"
#include "net/dense_map.h"
#include "net/node_table.h"

namespace ag::net {
namespace {

// Runs `body` once with dense tables on and once with the reference
// backend, restoring the environment afterwards.
template <typename F>
void in_both_modes(F&& body) {
  unsetenv("AG_DENSE_TABLES");
  ASSERT_TRUE(dense_tables_enabled());
  body("dense");
  setenv("AG_DENSE_TABLES", "off", 1);
  ASSERT_FALSE(dense_tables_enabled());
  body("reference");
  unsetenv("AG_DENSE_TABLES");
}

TEST(NodeTable, InsertFindEraseRoundTrip) {
  in_both_modes([](const std::string& mode) {
    NodeTable<int> t;
    EXPECT_TRUE(t.empty()) << mode;
    EXPECT_EQ(t.find(NodeId{3}), nullptr) << mode;

    t[NodeId{3}] = 30;
    auto [v, inserted] = t.try_emplace(NodeId{100}, 7);
    EXPECT_TRUE(inserted) << mode;
    EXPECT_EQ(*v, 7) << mode;
    auto [again, second] = t.try_emplace(NodeId{100}, 99);
    EXPECT_FALSE(second) << mode;
    EXPECT_EQ(*again, 7) << mode << ": try_emplace must not clobber";

    EXPECT_EQ(t.size(), 2u) << mode;
    ASSERT_NE(t.find(NodeId{3}), nullptr) << mode;
    EXPECT_EQ(*t.find(NodeId{3}), 30) << mode;
    EXPECT_TRUE(t.erase(NodeId{3})) << mode;
    EXPECT_FALSE(t.erase(NodeId{3})) << mode << ": double erase";
    EXPECT_EQ(t.size(), 1u) << mode;
    t.clear();
    EXPECT_TRUE(t.empty()) << mode;
  });
}

TEST(NodeTable, IterationIsAscendingInBothModes) {
  in_both_modes([](const std::string& mode) {
    NodeTable<int> t;
    // Insert deliberately out of order, spanning several bitmap words.
    for (const std::uint32_t k : {200u, 5u, 130u, 0u, 64u, 63u, 65u}) {
      t[NodeId{k}] = static_cast<int>(k);
    }
    std::vector<std::uint32_t> keys;
    t.for_each([&](NodeId id, int& v) {
      keys.push_back(id.value());
      EXPECT_EQ(v, static_cast<int>(id.value())) << mode;
    });
    EXPECT_EQ(keys, (std::vector<std::uint32_t>{0, 5, 63, 64, 65, 130, 200})) << mode;
  });
}

TEST(NodeTable, EraseIfVisitsAscendingAndErases) {
  in_both_modes([](const std::string& mode) {
    NodeTable<int> t;
    for (std::uint32_t k = 0; k < 40; ++k) t[NodeId{k}] = static_cast<int>(k);
    std::vector<std::uint32_t> visited;
    const std::size_t erased = t.erase_if([&](NodeId id, int& v) {
      visited.push_back(id.value());
      return v % 2 == 0;
    });
    EXPECT_EQ(erased, 20u) << mode;
    EXPECT_EQ(t.size(), 20u) << mode;
    EXPECT_TRUE(std::is_sorted(visited.begin(), visited.end())) << mode;
    EXPECT_FALSE(t.contains(NodeId{0})) << mode;
    EXPECT_TRUE(t.contains(NodeId{1})) << mode;
  });
}

TEST(NodeTable, ErasedSlotsReleaseCapturedState) {
  // erase() must reset the slot to T{} so captured resources free eagerly.
  NodeTable<std::vector<int>> t;
  t[NodeId{1}] = std::vector<int>(1000, 7);
  EXPECT_TRUE(t.erase(NodeId{1}));
  EXPECT_TRUE(t[NodeId{1}].empty());  // re-created slot starts from T{}
}

TEST(IdSet, SetSemantics) {
  in_both_modes([](const std::string& mode) {
    IdSet<GroupId> s;
    EXPECT_TRUE(s.insert(GroupId{1})) << mode;
    EXPECT_FALSE(s.insert(GroupId{1})) << mode;
    EXPECT_TRUE(s.contains(GroupId{1})) << mode;
    EXPECT_EQ(s.size(), 1u) << mode;
    EXPECT_TRUE(s.erase(GroupId{1})) << mode;
    EXPECT_FALSE(s.erase(GroupId{1})) << mode;
    EXPECT_TRUE(s.empty()) << mode;
  });
}

TEST(DenseMap, InsertFindEraseWithCollisionsAndTombstones) {
  in_both_modes([](const std::string& mode) {
    DenseMap<int> m;
    // Enough keys to force several growth rounds past the 16-slot start.
    for (std::uint64_t k = 0; k < 500; ++k) {
      auto [v, inserted] = m.try_emplace(k * 0x9e3779b9ULL, static_cast<int>(k));
      EXPECT_TRUE(inserted) << mode;
      EXPECT_EQ(*v, static_cast<int>(k)) << mode;
    }
    EXPECT_EQ(m.size(), 500u) << mode;
    for (std::uint64_t k = 0; k < 500; ++k) {
      ASSERT_NE(m.find(k * 0x9e3779b9ULL), nullptr) << mode << " key " << k;
      EXPECT_EQ(*m.find(k * 0x9e3779b9ULL), static_cast<int>(k)) << mode;
    }
    // Erase half (tombstones), then re-insert and look everything up again:
    // tombstone reuse and the rebuild path must not lose entries.
    for (std::uint64_t k = 0; k < 500; k += 2) {
      EXPECT_TRUE(m.erase(k * 0x9e3779b9ULL)) << mode;
    }
    EXPECT_EQ(m.size(), 250u) << mode;
    for (std::uint64_t k = 500; k < 900; ++k) {
      m.try_emplace(k * 0x9e3779b9ULL, static_cast<int>(k));
    }
    for (std::uint64_t k = 1; k < 500; k += 2) {
      ASSERT_NE(m.find(k * 0x9e3779b9ULL), nullptr) << mode << " key " << k;
    }
    for (std::uint64_t k = 0; k < 500; k += 2) {
      EXPECT_EQ(m.find(k * 0x9e3779b9ULL), nullptr) << mode;
    }
  });
}

TEST(DenseMap, EraseIfPurgesMatchingEntries) {
  in_both_modes([](const std::string& mode) {
    DenseMap<int> m;
    for (std::uint64_t k = 0; k < 100; ++k) m[k] = static_cast<int>(k);
    const std::size_t erased =
        m.erase_if([](std::uint64_t, int& v) { return v >= 50; });
    EXPECT_EQ(erased, 50u) << mode;
    EXPECT_EQ(m.size(), 50u) << mode;
    EXPECT_TRUE(m.contains(0)) << mode;
    EXPECT_FALSE(m.contains(99)) << mode;
  });
}

TEST(DenseSet, MsgIdKeysRoundTrip) {
  DenseSet s;
  const MsgId a{NodeId{7}, 3};
  const MsgId b{NodeId{3}, 7};  // must not collide with a
  EXPECT_NE(msg_key(a), msg_key(b));
  EXPECT_TRUE(s.insert(msg_key(a)));
  EXPECT_FALSE(s.insert(msg_key(a)));
  EXPECT_FALSE(s.contains(msg_key(b)));
  EXPECT_TRUE(s.erase(msg_key(a)));
  EXPECT_TRUE(s.empty());
}

TEST(DataPlaneCounters, TableOpsCountIdenticallyInBothModes) {
  // The probe counter counts logical operations, so dense and reference
  // backends must report the same number for the same op sequence.
  std::vector<std::uint64_t> per_mode;
  in_both_modes([&](const std::string&) {
    const std::uint64_t before = data_plane_counters().table_probes;
    NodeTable<int> t;
    DenseMap<int> m;
    for (std::uint32_t k = 0; k < 50; ++k) {
      t[NodeId{k}] = 1;
      (void)t.find(NodeId{k});
      m[k] = 1;
      (void)m.find(k);
    }
    t.erase(NodeId{0});
    m.erase(0);
    per_mode.push_back(data_plane_counters().table_probes - before);
  });
  ASSERT_EQ(per_mode.size(), 2u);
  EXPECT_EQ(per_mode[0], per_mode[1]);
  EXPECT_GT(per_mode[0], 0u);
}

TEST(PacketPool, ReusesSlabsAndCountsHits) {
  PacketPool& pool = PacketPool::local();
  DataPlaneCounters& c = data_plane_counters();
  Packet p;
  p.src = NodeId{1};
  p.payload = MulticastData{GroupId{1}, NodeId{1}, 0, 64, {}, 0};

  PacketPtr first = pool.make(Packet{p});
  const Packet* slab = first.get();
  first.reset();  // slab returns to the free list
  ASSERT_GT(pool.free_count(), 0u);

  const std::uint64_t hits_before = c.pool_hits;
  PacketPtr second = pool.make(Packet{p});
  EXPECT_EQ(second.get(), slab) << "slab must be recycled LIFO";
  EXPECT_EQ(c.pool_hits, hits_before + 1);
  EXPECT_EQ(second->src, NodeId{1});
}

}  // namespace
}  // namespace ag::net
