#include <gtest/gtest.h>

#include <unordered_set>

#include "net/data.h"
#include "net/ids.h"
#include "net/packet.h"

namespace ag::net {
namespace {

TEST(Ids, InvalidAndBroadcastAreDistinct) {
  EXPECT_FALSE(NodeId::invalid().is_valid());
  EXPECT_TRUE(NodeId::broadcast().is_valid());
  EXPECT_TRUE(NodeId::broadcast().is_broadcast());
  EXPECT_NE(NodeId::invalid(), NodeId::broadcast());
}

TEST(Ids, DefaultConstructedIsInvalid) {
  EXPECT_FALSE(NodeId{}.is_valid());
  EXPECT_FALSE(GroupId{}.is_valid());
}

TEST(Ids, HashableAndComparable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_LT(NodeId{1}, NodeId{2});
}

TEST(SeqNo, FresherThanHandlesWraparound) {
  EXPECT_TRUE(SeqNo{2}.fresher_than(SeqNo{1}));
  EXPECT_FALSE(SeqNo{1}.fresher_than(SeqNo{2}));
  EXPECT_FALSE(SeqNo{1}.fresher_than(SeqNo{1}));
  EXPECT_TRUE(SeqNo{1}.at_least_as_fresh_as(SeqNo{1}));
  // Wraparound: 0 is fresher than 0xFFFFFFFF.
  EXPECT_TRUE(SeqNo{0}.fresher_than(SeqNo{0xFFFFFFFF}));
  EXPECT_FALSE(SeqNo{0xFFFFFFFF}.fresher_than(SeqNo{0}));
}

TEST(SeqNo, NextIncrements) {
  EXPECT_EQ(SeqNo{41}.next(), SeqNo{42});
  EXPECT_EQ(SeqNo{0xFFFFFFFF}.next(), SeqNo{0});
}

TEST(MsgId, OrderingAndHash) {
  std::unordered_set<MsgId> set;
  set.insert({NodeId{1}, 5});
  set.insert({NodeId{1}, 5});
  set.insert({NodeId{1}, 6});
  set.insert({NodeId{2}, 5});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_LT((MsgId{NodeId{1}, 5}), (MsgId{NodeId{1}, 6}));
}

TEST(Packet, TypedAccessors) {
  Packet p;
  p.payload = aodv::HelloMsg{NodeId{3}, SeqNo{1}};
  EXPECT_TRUE(p.is<aodv::HelloMsg>());
  EXPECT_FALSE(p.is<MulticastData>());
  ASSERT_NE(p.get_if<aodv::HelloMsg>(), nullptr);
  EXPECT_EQ(p.get_if<aodv::HelloMsg>()->origin, NodeId{3});
  EXPECT_EQ(p.get_if<MulticastData>(), nullptr);
}

TEST(Packet, WireBytesReflectPayloadSize) {
  Packet data;
  MulticastData d;
  d.payload_bytes = 64;
  data.payload = d;
  // 20 IP + 8 encapsulation + 64 payload.
  EXPECT_EQ(data.wire_bytes(), 92u);

  Packet hello;
  hello.payload = aodv::HelloMsg{};
  EXPECT_EQ(hello.wire_bytes(), 32u);

  Packet gossip_small, gossip_large;
  gossip::GossipMsg small;
  small.lost = {MsgId{NodeId{1}, 2}};
  gossip::GossipMsg large = small;
  large.lost.resize(10, MsgId{NodeId{1}, 3});
  gossip_small.payload = small;
  gossip_large.payload = large;
  EXPECT_GT(gossip_large.wire_bytes(), gossip_small.wire_bytes());
}

TEST(Packet, TreeScopedGrphCarriesChildListBytes) {
  Packet flood, beat;
  maodv::GrphMsg f;
  maodv::GrphMsg b;
  b.tree_scoped = true;
  b.tree_children = {NodeId{1}, NodeId{2}, NodeId{3}};
  flood.payload = f;
  beat.payload = b;
  EXPECT_EQ(beat.wire_bytes() - flood.wire_bytes(), 12u);  // 3 children x 4 B
}

TEST(Packet, PushedGossipDataDominatesMessageSize) {
  Packet pull, push;
  gossip::GossipMsg p;
  gossip::GossipMsg q;
  MulticastData d;
  d.payload_bytes = 64;
  q.pushed = {d, d};
  pull.payload = p;
  push.payload = q;
  EXPECT_EQ(push.wire_bytes() - pull.wire_bytes(), 2u * (8u + 64u));
}

TEST(Packet, OdmrpMessageSizes) {
  Packet query, reply;
  query.payload = odmrp::JoinQueryMsg{};
  odmrp::JoinReplyMsg jr;
  jr.entries.push_back({NodeId{1}, NodeId{2}, 3});
  jr.entries.push_back({NodeId{1}, NodeId{4}, 3});
  reply.payload = jr;
  EXPECT_EQ(query.wire_bytes(), 20u + 16u);
  EXPECT_EQ(reply.wire_bytes(), 20u + 8u + 2u * 12u);
}

TEST(Packet, RerrGrowsWithUnreachableList) {
  Packet p1, p2;
  aodv::RerrMsg one, two;
  one.unreachable.push_back({NodeId{1}, SeqNo{1}});
  two.unreachable.push_back({NodeId{1}, SeqNo{1}});
  two.unreachable.push_back({NodeId{2}, SeqNo{4}});
  p1.payload = one;
  p2.payload = two;
  EXPECT_EQ(p2.wire_bytes() - p1.wire_bytes(), 8u);
}

}  // namespace
}  // namespace ag::net
