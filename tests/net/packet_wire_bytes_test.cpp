// Exhaustive wire-size coverage of every Payload alternative: the sizing
// visitor in packet.cpp has no catch-all, so a new message type without a
// sizing lambda already breaks the build — this suite additionally pins
// that every alternative reports a sane on-air size and that the
// variable-length messages actually grow with their contents, so a new
// type can't ship with a placeholder size either.
#include <gtest/gtest.h>

#include <cstdint>
#include <variant>

#include "mac/frame.h"
#include "net/data_plane.h"
#include "net/packet.h"

namespace ag::net {
namespace {

constexpr std::uint32_t kIpHeaderBytes = 20;

// Instantiates every variant alternative (default-constructed) and checks
// the packet reports the IP header plus a non-empty payload encoding.
template <std::size_t I = 0>
void check_every_alternative() {
  if constexpr (I < std::variant_size_v<Payload>) {
    using Alternative = std::variant_alternative_t<I, Payload>;
    Packet p;
    p.payload = Alternative{};
    EXPECT_GT(p.wire_bytes(), kIpHeaderBytes)
        << "Payload alternative " << I << " encodes to zero bytes";
    check_every_alternative<I + 1>();
  }
}

TEST(PacketWireBytes, EveryPayloadAlternativeHasANonZeroEncoding) {
  check_every_alternative();
}

TEST(PacketWireBytes, DataPayloadScalesWithPayloadBytes) {
  Packet small;
  small.payload = MulticastData{GroupId{1}, NodeId{1}, 0, 64, {}, 0};
  Packet big;
  big.payload = MulticastData{GroupId{1}, NodeId{1}, 0, 512, {}, 0};
  EXPECT_EQ(big.wire_bytes() - small.wire_bytes(), 512u - 64u);
}

TEST(PacketWireBytes, VariableLengthMessagesGrowWithTheirContents) {
  // RERR: 8 bytes per unreachable destination.
  Packet rerr;
  rerr.payload = aodv::RerrMsg{};
  const std::uint32_t rerr_empty = rerr.wire_bytes();
  aodv::RerrMsg two;
  two.unreachable.push_back({NodeId{1}, SeqNo{1}});
  two.unreachable.push_back({NodeId{2}, SeqNo{2}});
  rerr.payload = two;
  EXPECT_EQ(rerr.wire_bytes(), rerr_empty + 2 * 8u);

  // GRPH: 4 bytes per listed tree child.
  Packet grph;
  grph.payload = maodv::GrphMsg{};
  const std::uint32_t grph_empty = grph.wire_bytes();
  maodv::GrphMsg beat;
  beat.tree_children = {NodeId{1}, NodeId{2}, NodeId{3}};
  grph.payload = beat;
  EXPECT_EQ(grph.wire_bytes(), grph_empty + 3 * 4u);

  // Gossip message: 8 bytes per lost id and per expectation, and full
  // encapsulated data per pushed message.
  Packet gm;
  gm.payload = gossip::GossipMsg{};
  const std::uint32_t gm_empty = gm.wire_bytes();
  gossip::GossipMsg msg;
  msg.lost = {MsgId{NodeId{1}, 0}, MsgId{NodeId{1}, 1}};
  msg.expected = {gossip::SenderExpectation{NodeId{1}, 2}};
  gm.payload = msg;
  EXPECT_EQ(gm.wire_bytes(), gm_empty + 2 * 8u + 8u);
  msg.pushed.push_back(MulticastData{GroupId{1}, NodeId{1}, 0, 64, {}, 0});
  gm.payload = msg;
  EXPECT_EQ(gm.wire_bytes(), gm_empty + 2 * 8u + 8u + 8u + 64u);

  // ODMRP join reply: 12 bytes per entry.
  Packet jr;
  jr.payload = odmrp::JoinReplyMsg{};
  const std::uint32_t jr_empty = jr.wire_bytes();
  odmrp::JoinReplyMsg reply;
  reply.entries.push_back({NodeId{1}, NodeId{2}, 1});
  jr.payload = reply;
  EXPECT_EQ(jr.wire_bytes(), jr_empty + 12u);
}

TEST(PacketWireBytes, FrameOverheadRidesOnTopOfThePacket) {
  Packet p;
  p.payload = aodv::HelloMsg{NodeId{1}, SeqNo{1}};
  const std::uint32_t packet_bytes = p.wire_bytes();
  mac::Frame data{mac::FrameKind::data, NodeId{1}, NodeId::broadcast(), 0,
                  PacketPool::local().make(Packet{p})};
  EXPECT_EQ(data.wire_bytes(), packet_bytes + 34u);
  const mac::Frame ack{mac::FrameKind::ack, NodeId{1}, NodeId{2}, 0, nullptr};
  EXPECT_EQ(ack.wire_bytes(), 14u);  // ACKs carry no packet at all
}

}  // namespace
}  // namespace ag::net
