// Whole-run equivalence of the dense data-plane tables against the
// AG_DENSE_TABLES=off std::map reference backend: both iterate in
// ascending key order, so full simulations — including churn runs that
// exercise reset/erase paths — must be bit-identical. This is the suite
// the BENCH_fig2/BENCH_churn byte-identity claim rests on.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/network.h"
#include "harness/scenario.h"
#include "net/data_plane.h"
#include "stats/run_result.h"

namespace ag::net {
namespace {

harness::ScenarioConfig short_scenario() {
  harness::ScenarioConfig c;
  c.node_count = 40;
  c.duration = sim::SimTime::seconds(40.0);
  c.workload.start = sim::SimTime::seconds(10.0);
  c.workload.end = sim::SimTime::seconds(30.0);
  return c;
}

stats::RunResult run_with_mode(const harness::ScenarioConfig& config, bool dense) {
  if (dense) {
    unsetenv("AG_DENSE_TABLES");
  } else {
    setenv("AG_DENSE_TABLES", "off", 1);
  }
  EXPECT_EQ(dense_tables_enabled(), dense);
  stats::RunResult r = harness::run_scenario(config);
  unsetenv("AG_DENSE_TABLES");
  return r;
}

void expect_identical_runs(const stats::RunResult& a, const stats::RunResult& b) {
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].received, b.members[i].received) << "member " << i;
    EXPECT_EQ(a.members[i].via_gossip, b.members[i].via_gossip) << "member " << i;
    EXPECT_EQ(a.members[i].eligible, b.members[i].eligible) << "member " << i;
    EXPECT_DOUBLE_EQ(a.members[i].mean_latency_s, b.members[i].mean_latency_s)
        << "member " << i;
  }
  EXPECT_EQ(a.totals.channel_transmissions, b.totals.channel_transmissions);
  EXPECT_EQ(a.totals.phy_deliveries, b.totals.phy_deliveries);
  EXPECT_EQ(a.totals.sim_events, b.totals.sim_events);
  EXPECT_EQ(a.totals.mac_unicast, b.totals.mac_unicast);
  EXPECT_EQ(a.totals.mac_broadcast, b.totals.mac_broadcast);
  EXPECT_EQ(a.totals.mac_collisions, b.totals.mac_collisions);
  EXPECT_EQ(a.totals.data_forwarded, b.totals.data_forwarded);
  EXPECT_EQ(a.totals.gossip_walks, b.totals.gossip_walks);
  EXPECT_EQ(a.totals.gossip_replies, b.totals.gossip_replies);
  EXPECT_EQ(a.totals.nm_updates, b.totals.nm_updates);
  // The work counters are logical-op counts, mode-independent by design;
  // the pool split is exact too because every Network starts from a cold
  // pool (see PacketPool::clear).
  EXPECT_EQ(a.totals.table_probes, b.totals.table_probes);
  EXPECT_EQ(a.totals.pool_hits, b.totals.pool_hits);
  EXPECT_EQ(a.totals.pool_misses, b.totals.pool_misses);
  EXPECT_DOUBLE_EQ(a.delivery_ratio(), b.delivery_ratio());
}

TEST(DenseTablesEquivalence, WholeRunBitIdenticalToReferenceBackend) {
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    const stats::RunResult dense = run_with_mode(short_scenario().with_seed(seed), true);
    const stats::RunResult reference =
        run_with_mode(short_scenario().with_seed(seed), false);
    expect_identical_runs(dense, reference);
  }
}

TEST(DenseTablesEquivalence, ChurnRunBitIdenticalToReferenceBackend) {
  // Churn exercises the erase/reset paths (crash wipes, membership
  // leaves, partition suppression) in every migrated table.
  harness::ScenarioConfig base = short_scenario();
  base.faults.spec.churn_per_min = 3.0;
  base.faults.spec.crash_fraction = 0.2;
  base.faults.spec.partition_duration_s = 8.0;

  const stats::RunResult dense = run_with_mode(base.with_seed(5), true);
  const stats::RunResult reference = run_with_mode(base.with_seed(5), false);
  EXPECT_GT(dense.faults.crashes + dense.faults.leaves + dense.faults.partitions, 0u);
  expect_identical_runs(dense, reference);
}

TEST(DenseTablesEquivalence, EveryProtocolBitIdentical) {
  // The flood and ODMRP stacks migrated different tables than MAODV;
  // cover each substrate end to end (short runs keep this suite fast).
  for (const harness::Protocol p :
       {harness::Protocol::maodv_gossip, harness::Protocol::odmrp_gossip,
        harness::Protocol::flooding}) {
    harness::ScenarioConfig c = short_scenario();
    c.duration = sim::SimTime::seconds(25.0);
    c.workload.end = sim::SimTime::seconds(20.0);
    c.with_protocol(p).with_seed(3);
    expect_identical_runs(run_with_mode(c, true), run_with_mode(c, false));
  }
}

}  // namespace
}  // namespace ag::net
