#include "flood/flood_router.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gossip/gossip_agent.h"
#include "mobility/static_mobility.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/simulator.h"

namespace ag::flood {
namespace {

const net::GroupId kG{1};

class FloodFixture {
 public:
  explicit FloodFixture(std::vector<mobility::Vec2> positions, double range = 100.0)
      : mobility_{std::move(positions)},
        channel_{sim_, mobility_, phy::PhyParams{range, 2e6, 192.0, 3e8}} {
    for (std::size_t i = 0; i < mobility_.node_count(); ++i) {
      radios_.push_back(std::make_unique<phy::Radio>(sim_, channel_, i));
      channel_.attach(radios_.back().get());
      macs_.push_back(std::make_unique<mac::CsmaMac>(
          sim_, *radios_.back(), channel_, net::NodeId{static_cast<std::uint32_t>(i)},
          mac::MacParams{}, sim_.rng().stream("mac", i)));
      routers_.push_back(std::make_unique<FloodRouter>(
          *macs_.back(), net::NodeId{static_cast<std::uint32_t>(i)}));
      agents_.push_back(std::make_unique<gossip::GossipAgent>(
          sim_, *routers_.back(), gossip::GossipParams{.enabled = false},
          sim_.rng().stream("gossip", i)));
      routers_.back()->set_observer(agents_.back().get());
    }
  }
  sim::Simulator sim_;
  mobility::StaticMobility mobility_;
  phy::Channel channel_;
  std::vector<std::unique_ptr<phy::Radio>> radios_;
  std::vector<std::unique_ptr<mac::CsmaMac>> macs_;
  std::vector<std::unique_ptr<FloodRouter>> routers_;
  std::vector<std::unique_ptr<gossip::GossipAgent>> agents_;
};

TEST(FloodRouter, DeliversAcrossMultipleHops) {
  FloodFixture f{{{0, 0}, {80, 0}, {160, 0}, {240, 0}}};
  f.routers_[0]->join_group(kG);
  f.routers_[3]->join_group(kG);
  f.routers_[0]->send_multicast(kG, 64);
  f.sim_.run_until(f.sim_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(f.agents_[3]->counters().delivered_unique, 1u);
}

TEST(FloodRouter, EveryNodeRebroadcastsOnce) {
  FloodFixture f{{{0, 0}, {50, 0}, {100, 0}}};
  f.routers_[0]->join_group(kG);
  f.routers_[0]->send_multicast(kG, 64);
  f.sim_.run_until(f.sim_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(f.routers_[1]->counters().rebroadcasts, 1u);
  EXPECT_EQ(f.routers_[2]->counters().rebroadcasts, 1u);
  EXPECT_GT(f.routers_[1]->counters().duplicates + f.routers_[2]->counters().duplicates,
            0u);
}

TEST(FloodRouter, NonMembersForwardButDoNotDeliver) {
  FloodFixture f{{{0, 0}, {80, 0}, {160, 0}}};
  f.routers_[0]->join_group(kG);
  f.routers_[2]->join_group(kG);
  f.routers_[0]->send_multicast(kG, 64);
  f.sim_.run_until(f.sim_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(f.agents_[1]->counters().delivered_unique, 0u);
  EXPECT_EQ(f.agents_[2]->counters().delivered_unique, 1u);
}

TEST(FloodRouter, TtlBoundsPropagation) {
  std::vector<mobility::Vec2> line;
  for (int i = 0; i < 6; ++i) line.push_back({i * 80.0, 0});
  FloodFixture f{line};
  f.routers_[0]->join_group(kG);
  f.routers_[5]->join_group(kG);
  // data_ttl = 3: packet dies after 2 rebroadcast hops, node 5 unreachable.
  auto limited = std::make_unique<FloodRouter>(*f.macs_[0], net::NodeId{0}, 3);
  limited->join_group(kG);
  limited->send_multicast(kG, 64);
  f.sim_.run_until(f.sim_.now() + sim::Duration::seconds(2));
  EXPECT_EQ(f.agents_[5]->counters().delivered_unique, 0u);
}

TEST(FloodRouter, LeaveStopsDelivery) {
  FloodFixture f{{{0, 0}, {50, 0}}};
  f.routers_[0]->join_group(kG);
  f.routers_[1]->join_group(kG);
  f.routers_[1]->leave_group(kG);
  f.routers_[0]->send_multicast(kG, 64);
  f.sim_.run_until(f.sim_.now() + sim::Duration::seconds(1));
  EXPECT_EQ(f.agents_[1]->counters().delivered_unique, 0u);
}

}  // namespace
}  // namespace ag::flood
