// Regression tests for protocol bugs found while bringing the stack up —
// each of these silently destroyed delivery in full-scale runs before it
// was fixed, so they are pinned here (see DESIGN.md "Implementation
// findings").
#include <gtest/gtest.h>

#include "testutil/stack_fixture.h"

namespace ag::maodv {
namespace {

using testutil::StaticNetwork;
using testutil::kGroup;
using testutil::line_positions;

testutil::StackOptions no_gossip() {
  testutil::StackOptions opts;
  opts.gossip_enabled = false;
  return opts;
}

// Bug 1: the leader adopted hop counts from re-flooded copies of its own
// group hello (leader's hops_to_leader drifted to 2+, breaking repair
// eligibility checks, which compare distances to the leader).
TEST(MaodvRegression, LeaderNeverAdoptsItsOwnFloodedHello) {
  StaticNetwork net{line_positions(4, 80.0), no_gossip()};
  net.join_all({0}, 10.0);
  net.join_all({3}, 20.0);
  net.run_for(30.0);  // several group-hello cycles with re-floods
  const GroupEntry* e = net.router(0).group_entry(kGroup);
  ASSERT_NE(e, nullptr);
  ASSERT_TRUE(e->is_leader);
  EXPECT_EQ(e->hops_to_leader, 0);
  EXPECT_FALSE(e->upstream().is_valid());
}

// Bug 2: a one-sided hello timeout left the victim feeding a dead edge
// forever — the parent had dropped it, but network-wide GRPH floods kept
// arriving "from an enabled hop", so tree liveness never fired. The
// tree-scoped beat (parent lists its children) makes the orphan repair.
TEST(MaodvRegression, OrphanedSubtreeRepairsWithinLivenessWindow) {
  StaticNetwork net{line_positions(4, 80.0), no_gossip()};
  net.join_all({0}, 10.0);
  net.join_all({3}, 20.0);
  ASSERT_TRUE(net.all_on_tree({0, 3}));

  // Simulate the one-sided break: node 1 (on the path 0-1-2-3) silently
  // drops its downstream hop toward 2, as a false-positive hello timeout
  // would. Node 2/3 still believe the edge exists.
  GroupEntry* e1 = const_cast<GroupEntry*>(net.router(1).group_entry(kGroup));
  ASSERT_NE(e1, nullptr);
  // Reach into the entry the way the timeout path does.
  for (auto& hop : e1->next_hops) {
    if (hop.id == net::NodeId{2}) hop.enabled = false;
  }

  // Within a few group-hello intervals the beat stops reaching 2 and 3;
  // they must repair and data must flow again.
  net.run_for(40.0);
  const auto before = net.agent(3).counters().delivered_unique;
  for (int i = 0; i < 5; ++i) {
    net.sim().schedule_after(sim::Duration::ms(200 * i),
                             [&net] { net.router(0).send_multicast(kGroup, 64); });
  }
  net.run_for(10.0);
  EXPECT_EQ(net.agent(3).counters().delivered_unique, before + 5);
}

// Bug 3: a member that lost its last tree link (failed graft, cascading
// prune) with join_state == none was never re-joined by any timer.
TEST(MaodvRegression, FullyDetachedMemberKeepsRejoining) {
  StaticNetwork net{line_positions(3, 80.0), no_gossip()};
  net.join_all({0}, 10.0);
  net.join_all({2}, 20.0);
  ASSERT_TRUE(net.all_on_tree({0, 2}));

  // Forcibly strip node 2's tree state, as a botched graft would.
  GroupEntry* e2 = const_cast<GroupEntry*>(net.router(2).group_entry(kGroup));
  ASSERT_NE(e2, nullptr);
  e2->next_hops.clear();
  ASSERT_FALSE(e2->on_tree());
  ASSERT_TRUE(e2->is_member);

  net.run_for(30.0);  // liveness sweep must re-join the member
  const GroupEntry* healed = net.router(2).group_entry(kGroup);
  ASSERT_NE(healed, nullptr);
  EXPECT_TRUE(healed->on_tree());
  const auto before = net.agent(2).counters().delivered_unique;
  net.router(0).send_multicast(kGroup, 64);
  net.run_for(5.0);
  EXPECT_EQ(net.agent(2).counters().delivered_unique, before + 1);
}

// Bug 4 (gossip): a member that had received nothing sent empty pull
// requests, so recovery never started (cold-start hole).
TEST(MaodvRegression, GossipColdStartRecoversMemberThatMissedEverything) {
  testutil::StackOptions opts;
  opts.gossip.p_anon = 1.0;
  StaticNetwork net{line_positions(4, 70.0), opts};
  net.join_all({0}, 10.0);
  net.join_all({3}, 15.0);
  ASSERT_TRUE(net.all_on_tree({0, 3}));

  // Node 3 hears no data at all while the source streams.
  net.channel().set_drop_hook([](std::size_t, std::size_t to) { return to == 3; });
  for (int i = 0; i < 10; ++i) {
    net.sim().schedule_after(sim::Duration::ms(200 * i),
                             [&net] { net.router(0).send_multicast(kGroup, 64); });
  }
  net.run_for(10.0);
  ASSERT_EQ(net.agent(3).counters().delivered_unique, 0u);

  // Link heals: node 3 knows of no sender, so only the acceptor-side
  // cold-start push can recover the backlog.
  net.channel().set_drop_hook(nullptr);
  net.run_for(30.0);
  EXPECT_EQ(net.agent(3).counters().delivered_unique, 10u);
  EXPECT_EQ(net.agent(3).counters().delivered_via_gossip, 10u);
}

}  // namespace
}  // namespace ag::maodv
