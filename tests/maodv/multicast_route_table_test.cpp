#include "maodv/multicast_route_table.h"

#include <gtest/gtest.h>

namespace ag::maodv {
namespace {

const net::GroupId kG{1};
const net::NodeId kA{1};
const net::NodeId kB{2};
const net::NodeId kC{3};

TEST(GroupEntry, AddFindRemoveHops) {
  GroupEntry e;
  e.add_or_get_hop(kA);
  e.add_or_get_hop(kB);
  EXPECT_NE(e.find_hop(kA), nullptr);
  EXPECT_EQ(e.find_hop(kC), nullptr);
  EXPECT_TRUE(e.remove_hop(kA));
  EXPECT_FALSE(e.remove_hop(kA));
  EXPECT_EQ(e.find_hop(kA), nullptr);
}

TEST(GroupEntry, AddOrGetIsIdempotent) {
  GroupEntry e;
  e.add_or_get_hop(kA).enabled = true;
  MulticastNextHop& again = e.add_or_get_hop(kA);
  EXPECT_TRUE(again.enabled);
  EXPECT_EQ(e.next_hops.size(), 1u);
}

TEST(GroupEntry, EnabledCountIgnoresPotentialEntries) {
  GroupEntry e;
  e.add_or_get_hop(kA).enabled = true;
  e.add_or_get_hop(kB);  // potential (enabled=false)
  EXPECT_EQ(e.enabled_count(), 1u);
  EXPECT_EQ(e.enabled_hops(), std::vector<net::NodeId>{kA});
}

TEST(GroupEntry, UpstreamTracking) {
  GroupEntry e;
  EXPECT_FALSE(e.upstream().is_valid());
  auto& a = e.add_or_get_hop(kA);
  a.enabled = true;
  a.upstream = true;
  EXPECT_EQ(e.upstream(), kA);
  e.clear_upstream_flags();
  EXPECT_FALSE(e.upstream().is_valid());
}

TEST(GroupEntry, OnTreeRequiresLeaderOrEnabledHop) {
  GroupEntry e;
  EXPECT_FALSE(e.on_tree());
  e.add_or_get_hop(kA);  // not enabled yet
  EXPECT_FALSE(e.on_tree());
  e.find_hop(kA)->enabled = true;
  EXPECT_TRUE(e.on_tree());
  e.remove_hop(kA);
  e.is_leader = true;
  EXPECT_TRUE(e.on_tree());
}

TEST(GroupEntry, SelfPruneConditionForNonMemberLeaf) {
  GroupEntry e;
  e.add_or_get_hop(kA).enabled = true;
  EXPECT_TRUE(e.should_self_prune());  // non-member leaf router
  e.is_member = true;
  EXPECT_FALSE(e.should_self_prune());
  e.is_member = false;
  e.add_or_get_hop(kB).enabled = true;
  EXPECT_FALSE(e.should_self_prune());  // interior router must stay
}

TEST(MulticastRouteTable, GetOrCreateAndErase) {
  MulticastRouteTable t;
  GroupEntry& e = t.get_or_create(kG);
  EXPECT_EQ(e.group, kG);
  EXPECT_EQ(t.find(kG), &e);
  EXPECT_EQ(t.size(), 1u);
  t.erase(kG);
  EXPECT_EQ(t.find(kG), nullptr);
}

}  // namespace
}  // namespace ag::maodv
