// MAODV tree protocol behaviour: joins, leader election, group hello,
// data distribution, prune, repair, partition and merge.
#include <gtest/gtest.h>

#include <vector>

#include "testutil/stack_fixture.h"

namespace ag::maodv {
namespace {

using testutil::StaticNetwork;
using testutil::kGroup;
using testutil::line_positions;

testutil::StackOptions no_gossip() {
  testutil::StackOptions opts;
  opts.gossip_enabled = false;
  return opts;
}

TEST(Maodv, FirstMemberBecomesLeader) {
  StaticNetwork net{line_positions(3, 80.0), no_gossip()};
  net.run_for(1.0);
  net.router(0).join_group(kGroup);
  net.run_for(10.0);  // join retries exhaust, then leadership
  const GroupEntry* e = net.router(0).group_entry(kGroup);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->is_leader);
  EXPECT_TRUE(e->is_member);
  EXPECT_EQ(e->leader, net::NodeId{0});
  EXPECT_EQ(e->hops_to_leader, 0);
}

TEST(Maodv, SecondMemberJoinsExistingTree) {
  StaticNetwork net{line_positions(3, 80.0), no_gossip()};
  net.join_all({0}, 10.0);
  net.router(2).join_group(kGroup);
  net.run_for(10.0);
  const GroupEntry* e2 = net.router(2).group_entry(kGroup);
  ASSERT_NE(e2, nullptr);
  EXPECT_TRUE(e2->on_tree());
  EXPECT_FALSE(e2->is_leader);
  EXPECT_EQ(e2->leader, net::NodeId{0});
  // The intermediate node became a tree router without being a member.
  const GroupEntry* e1 = net.router(1).group_entry(kGroup);
  ASSERT_NE(e1, nullptr);
  EXPECT_TRUE(e1->on_tree());
  EXPECT_FALSE(e1->is_member);
  EXPECT_EQ(e1->enabled_count(), 2u);
  EXPECT_EQ(net.leader_count(), 1);
}

TEST(Maodv, GroupHelloDistributesLeaderAndHopCounts) {
  StaticNetwork net{line_positions(4, 80.0), no_gossip()};
  // Sequential joins: 0 settles as the unambiguous leader before 3 joins
  // (simultaneous joins may elect 3 and merge the other way).
  net.join_all({0}, 10.0);
  net.join_all({3}, 20.0);
  const GroupEntry* e3 = net.router(3).group_entry(kGroup);
  ASSERT_NE(e3, nullptr);
  EXPECT_EQ(e3->leader, net::NodeId{0});
  EXPECT_EQ(e3->hops_to_leader, 3);
  EXPECT_EQ(net.router(1).group_entry(kGroup)->hops_to_leader, 1);
  EXPECT_EQ(net.router(2).group_entry(kGroup)->hops_to_leader, 2);
}

TEST(Maodv, MulticastDataReachesAllMembersOverTree) {
  StaticNetwork net{line_positions(5, 80.0), no_gossip()};
  net.join_all({0, 2, 4}, 20.0);
  ASSERT_TRUE(net.all_on_tree({0, 2, 4}));
  // Paced like the paper's CBR source; an instantaneous burst would lose
  // packets to hidden-terminal collisions between pipeline forwarders
  // (that loss mode is exercised by the gossip recovery tests instead).
  for (int i = 0; i < 10; ++i) {
    net.sim().schedule_after(sim::Duration::ms(200 * i),
                             [&net] { net.router(0).send_multicast(kGroup, 64); });
  }
  net.run_for(10.0);
  EXPECT_EQ(net.agent(2).counters().delivered_unique, 10u);
  EXPECT_EQ(net.agent(4).counters().delivered_unique, 10u);
  // Non-members forward but do not deliver.
  EXPECT_EQ(net.agent(1).counters().delivered_unique, 0u);
  EXPECT_GT(net.router(1).mcast_counters().data_forwarded, 0u);
}

TEST(Maodv, DataFlowsUpstreamFromLeafMember) {
  StaticNetwork net{line_positions(4, 80.0), no_gossip()};
  net.join_all({0, 3}, 20.0);
  for (int i = 0; i < 5; ++i) {
    net.sim().schedule_after(sim::Duration::ms(200 * i),
                             [&net] { net.router(3).send_multicast(kGroup, 64); });
  }
  net.run_for(6.0);
  EXPECT_EQ(net.agent(0).counters().delivered_unique, 5u);
}

TEST(Maodv, DuplicateDataSuppressed) {
  StaticNetwork net{line_positions(3, 80.0), no_gossip()};
  net.join_all({0, 2}, 20.0);
  net.router(0).send_multicast(kGroup, 64);
  net.run_for(5.0);
  EXPECT_EQ(net.agent(2).counters().delivered_unique, 1u);
  EXPECT_EQ(net.agent(2).counters().duplicates, 0u);
}

TEST(Maodv, LeafMemberLeavingPrunesItselfAndOrphanRouters) {
  StaticNetwork net{line_positions(5, 80.0), no_gossip()};
  // Sequential joins pin the leadership to node 0; a simultaneous cold
  // start may legitimately elect node 4 (merge keeps the higher id).
  net.join_all({0}, 10.0);
  net.join_all({4}, 20.0);
  ASSERT_TRUE(net.router(2).on_tree(kGroup));
  net.router(4).leave_group(kGroup);
  net.run_for(10.0);
  // 4 left; routers 1..3 had no other branch and must cascade-prune.
  EXPECT_FALSE(net.router(4).on_tree(kGroup));
  EXPECT_FALSE(net.router(3).on_tree(kGroup));
  EXPECT_FALSE(net.router(2).on_tree(kGroup));
  // Leader 0 remains (it is still a member).
  EXPECT_TRUE(net.router(0).on_tree(kGroup));
}

TEST(Maodv, InteriorMemberLeavingStaysRouter) {
  StaticNetwork net{line_positions(5, 80.0), no_gossip()};
  net.join_all({0, 2, 4}, 20.0);
  net.router(2).leave_group(kGroup);
  net.run_for(5.0);
  const GroupEntry* e = net.router(2).group_entry(kGroup);
  ASSERT_NE(e, nullptr);
  EXPECT_FALSE(e->is_member);
  EXPECT_TRUE(e->on_tree());  // still forwards between 0 and 4
  net.router(0).send_multicast(kGroup, 64);
  net.run_for(3.0);
  EXPECT_EQ(net.agent(4).counters().delivered_unique, 1u);
}

TEST(Maodv, TreeRepairsAroundFailedRouter) {
  // Line 0-1-2 with a parallel relay 3 near node 1; members 0 and 2.
  std::vector<mobility::Vec2> pos = {{0, 0}, {80, 0}, {160, 0}, {80, 60}};
  StaticNetwork net{pos, no_gossip()};
  net.join_all({0, 2}, 20.0);
  net.router(0).send_multicast(kGroup, 64);
  net.run_for(3.0);
  ASSERT_EQ(net.agent(2).counters().delivered_unique, 1u);

  net.mobility().move_to(1, {5000.0, 0.0});  // kill the original relay
  net.run_for(30.0);                          // hello timeout + repair

  net.router(0).send_multicast(kGroup, 64);
  net.run_for(5.0);
  EXPECT_EQ(net.agent(2).counters().delivered_unique, 2u);
  EXPECT_EQ(net.leader_count(), 1);
}

TEST(Maodv, PartitionElectsSecondLeaderThenMergesOnReconnect) {
  StaticNetwork net{line_positions(4, 80.0), no_gossip()};
  net.join_all({0}, 10.0);
  net.join_all({3}, 20.0);
  ASSERT_EQ(net.leader_count(), 1);

  // Physically partition: 2 and 3 move far from 0 and 1 but stay together.
  net.mobility().move_to(2, {5000.0, 0.0});
  net.mobility().move_to(3, {5080.0, 0.0});
  net.run_for(40.0);  // timeout, repair failure, partition leader election
  EXPECT_EQ(net.leader_count(), 2);

  // Reconnect.
  net.mobility().move_to(2, {160.0, 0.0});
  net.mobility().move_to(3, {240.0, 0.0});
  net.run_for(60.0);  // group hellos cross, lower-id leader merges
  EXPECT_EQ(net.leader_count(), 1);
  // Data flows across the healed tree again.
  const auto before = net.agent(3).counters().delivered_unique;
  net.router(0).send_multicast(kGroup, 64);
  net.run_for(5.0);
  EXPECT_EQ(net.agent(3).counters().delivered_unique, before + 1);
}

TEST(Maodv, ColdStartConvergesToSingleLeader) {
  // Several members joining simultaneously on a connected topology must
  // end with exactly one leader after the merge protocol settles.
  StaticNetwork net{line_positions(6, 70.0), no_gossip()};
  for (std::size_t i : {0u, 2u, 4u, 5u}) net.router(i).join_group(kGroup);
  net.run_for(90.0);
  EXPECT_EQ(net.leader_count(), 1);
  EXPECT_TRUE(net.all_on_tree({0, 2, 4, 5}));
}

TEST(Maodv, SendMulticastAssignsSequentialSeqs) {
  StaticNetwork net{line_positions(2, 50.0), no_gossip()};
  net.join_all({0}, 8.0);
  EXPECT_EQ(net.router(0).send_multicast(kGroup, 64), 0u);
  EXPECT_EQ(net.router(0).send_multicast(kGroup, 64), 1u);
  EXPECT_EQ(net.router(0).send_multicast(kGroup, 64), 2u);
}

TEST(Maodv, RejoinAfterTotalIsolation) {
  StaticNetwork net{line_positions(3, 80.0), no_gossip()};
  net.join_all({0}, 10.0);
  net.join_all({2}, 20.0);
  net.mobility().move_to(2, {5000.0, 0.0});
  net.run_for(40.0);
  net.mobility().move_to(2, {160.0, 0.0});
  net.run_for(60.0);
  EXPECT_EQ(net.leader_count(), 1);
  const auto before = net.agent(2).counters().delivered_unique;
  net.router(0).send_multicast(kGroup, 64);
  net.run_for(5.0);
  EXPECT_EQ(net.agent(2).counters().delivered_unique, before + 1);
}

}  // namespace
}  // namespace ag::maodv
