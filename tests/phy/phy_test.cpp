#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "mobility/static_mobility.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/simulator.h"

namespace ag::phy {
namespace {

// Records everything the radio reports.
class RecordingListener : public RadioListener {
 public:
  void on_frame_received(const mac::Frame& frame) override { frames.push_back(frame); }
  void on_medium_busy() override { ++busy_events; }
  void on_medium_idle() override { ++idle_events; }
  void on_transmit_complete() override { ++tx_complete; }

  std::vector<mac::Frame> frames;
  int busy_events{0};
  int idle_events{0};
  int tx_complete{0};
};

mac::Frame test_frame(std::uint32_t src, std::uint32_t dst_broadcast = 1) {
  mac::Frame f;
  f.kind = mac::FrameKind::data;
  f.mac_src = net::NodeId{src};
  f.mac_dst = dst_broadcast != 0 ? net::NodeId::broadcast() : net::NodeId{1};
  f.mac_seq = 7;
  f.packet = net::make_packet(net::NodeId{src}, net::NodeId::broadcast(), 32,
                              aodv::HelloMsg{net::NodeId{src}, net::SeqNo{1}});
  return f;
}

class PhyFixture {
 public:
  explicit PhyFixture(std::vector<mobility::Vec2> positions, double range = 100.0)
      : mobility_{std::move(positions)},
        channel_{sim_, mobility_, PhyParams{range, 2e6, 192.0, 3e8}} {
    for (std::size_t i = 0; i < mobility_.node_count(); ++i) {
      radios_.push_back(std::make_unique<Radio>(sim_, channel_, i));
      channel_.attach(radios_.back().get());
      listeners_.push_back(std::make_unique<RecordingListener>());
      radios_.back()->set_listener(listeners_.back().get());
    }
  }
  sim::Simulator sim_;
  mobility::StaticMobility mobility_;
  Channel channel_;
  std::vector<std::unique_ptr<Radio>> radios_;
  std::vector<std::unique_ptr<RecordingListener>> listeners_;
};

TEST(Channel, DeliversWithinRangeOnly) {
  PhyFixture f{{{0, 0}, {50, 0}, {150, 0}}, 100.0};
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->frames.size(), 1u);  // 50 m: in range
  EXPECT_EQ(f.listeners_[2]->frames.size(), 0u);  // 150 m: out of range
}

TEST(Channel, RangeBoundaryIsInclusive) {
  PhyFixture f{{{0, 0}, {100, 0}}, 100.0};
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->frames.size(), 1u);
}

TEST(Channel, SenderDoesNotHearItself) {
  PhyFixture f{{{0, 0}, {10, 0}}};
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[0]->frames.size(), 0u);
}

TEST(Channel, AirtimeScalesWithFrameSize) {
  PhyFixture f{{{0, 0}}};
  mac::Frame small = test_frame(0);
  mac::Frame ack;
  ack.kind = mac::FrameKind::ack;
  EXPECT_GT(f.channel_.airtime_of(small).count_us(), f.channel_.airtime_of(ack).count_us());
  // 14-byte ACK at 2 Mbps = 56 us + 192 us preamble.
  EXPECT_EQ(f.channel_.airtime_of(ack).count_us(), 192 + 56);
}

TEST(Channel, DropHookSuppressesDelivery) {
  PhyFixture f{{{0, 0}, {10, 0}, {20, 0}}};
  f.channel_.set_drop_hook([](std::size_t, std::size_t to) { return to == 1; });
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->frames.size(), 0u);
  EXPECT_EQ(f.listeners_[2]->frames.size(), 1u);
}

TEST(Radio, OverlappingReceptionsCollide) {
  // 1 and 2 are both in range of 0 but out of range of each other
  // (hidden terminals): simultaneous transmissions collide at 0.
  PhyFixture f{{{0, 0}, {80, 0}, {-80, 0}}, 100.0};
  f.radios_[1]->transmit(test_frame(1));
  f.radios_[2]->transmit(test_frame(2));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[0]->frames.size(), 0u);
  EXPECT_GE(f.radios_[0]->counters().frames_corrupted, 1u);
}

TEST(Radio, StaggeredTransmissionsAlsoCollideWhileOverlapping) {
  PhyFixture f{{{0, 0}, {80, 0}, {-80, 0}}, 100.0};
  f.radios_[1]->transmit(test_frame(1));
  // Second transmission starts mid-air of the first.
  f.sim_.schedule_after(sim::Duration::us(100), [&] { f.radios_[2]->transmit(test_frame(2)); });
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[0]->frames.size(), 0u);
}

TEST(Radio, SequentialTransmissionsBothDeliver) {
  PhyFixture f{{{0, 0}, {80, 0}, {-80, 0}}, 100.0};
  f.radios_[1]->transmit(test_frame(1));
  f.sim_.schedule_after(sim::Duration::ms(5), [&] { f.radios_[2]->transmit(test_frame(2)); });
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[0]->frames.size(), 2u);
}

TEST(Radio, DeafWhileTransmitting) {
  PhyFixture f{{{0, 0}, {50, 0}}, 100.0};
  f.radios_[0]->transmit(test_frame(0));
  f.radios_[1]->transmit(test_frame(1));  // starts while 0 still transmitting
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[0]->frames.size(), 0u);
  EXPECT_GE(f.radios_[0]->counters().frames_missed_while_tx, 1u);
}

TEST(Radio, MediumBusyDuringForeignTransmission) {
  PhyFixture f{{{0, 0}, {50, 0}}, 100.0};
  EXPECT_FALSE(f.radios_[1]->medium_busy());
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.schedule_after(sim::Duration::us(300), [&] {
    EXPECT_TRUE(f.radios_[1]->medium_busy());
    EXPECT_EQ(f.radios_[1]->idle_for(), sim::Duration::zero());
  });
  f.sim_.run_all();
  EXPECT_FALSE(f.radios_[1]->medium_busy());
  EXPECT_GE(f.listeners_[1]->busy_events, 1);
  EXPECT_GE(f.listeners_[1]->idle_events, 1);
}

TEST(Radio, TransmitCompleteFires) {
  PhyFixture f{{{0, 0}}};
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[0]->tx_complete, 1);
  EXPECT_FALSE(f.radios_[0]->transmitting());
}

TEST(Radio, IdleForTracksQuietTime) {
  PhyFixture f{{{0, 0}, {50, 0}}};
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  const sim::SimTime end = f.sim_.now();
  f.sim_.schedule_at(end + sim::Duration::ms(3), [&] {
    EXPECT_GE(f.radios_[1]->idle_for().count_us(), 2'900);
  });
  f.sim_.run_all();
}

TEST(Channel, CountsDeliveriesAndInRangeSuppressionsOnly) {
  // Node 1 in range and down; node 2 in range and up; node 3 down but far
  // out of range — only in-range suppression counts, so the counters are
  // identical between the spatial index and the brute-force scan.
  PhyFixture f{{{0, 0}, {50, 0}, {90, 0}, {1000, 0}}, 100.0};
  f.channel_.set_node_down(1, true);
  f.channel_.set_node_down(3, true);
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.channel_.deliveries(), 1u);        // node 2
  EXPECT_EQ(f.channel_.suppressed_down(), 1u);   // node 1, not node 3
  EXPECT_EQ(f.channel_.suppressed_partition(), 0u);

  f.channel_.set_node_down(1, false);
  f.channel_.set_partition({0, 1, 0, 0});
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.channel_.deliveries(), 2u);            // node 2 again
  EXPECT_EQ(f.channel_.suppressed_partition(), 1u);  // node 1 across the cut
}

TEST(Channel, CountsTransmissions) {
  PhyFixture f{{{0, 0}, {50, 0}}};
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  f.radios_[1]->transmit(test_frame(1));
  f.sim_.run_all();
  EXPECT_EQ(f.channel_.transmissions(), 2u);
}

TEST(Channel, DownedNodeNeitherSendsNorReceives) {
  PhyFixture f{{{0, 0}, {50, 0}, {90, 0}}};
  f.channel_.set_node_down(1, true);

  // A downed sender radiates nothing (and the attempt is not counted).
  f.radios_[1]->transmit(test_frame(1));
  f.sim_.run_all();
  EXPECT_EQ(f.channel_.transmissions(), 0u);
  EXPECT_TRUE(f.listeners_[0]->frames.empty());

  // A downed receiver hears nothing; everyone else still does.
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_TRUE(f.listeners_[1]->frames.empty());
  EXPECT_EQ(f.listeners_[2]->frames.size(), 1u);

  // Back up: traffic flows again.
  f.channel_.set_node_down(1, false);
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->frames.size(), 1u);
}

TEST(Channel, GoingDownDestroysReceptionInProgress) {
  PhyFixture f{{{0, 0}, {50, 0}}};
  f.radios_[0]->transmit(test_frame(0));
  // Let the first bit arrive, then crash the receiver mid-frame.
  f.sim_.run_until(f.sim_.now() + sim::Duration::us(100));
  f.channel_.set_node_down(1, true);
  f.sim_.run_all();
  EXPECT_TRUE(f.listeners_[1]->frames.empty());
  // Not a collision: nothing interfered with the frame.
  EXPECT_EQ(f.radios_[1]->counters().frames_corrupted, 0u);
}

// Pins AG_BATCHED_PHY for the scope of one fixture; the default
// (unset) runs the batched engine, "off" the per-receiver reference.
struct PhyModeGuard {
  explicit PhyModeGuard(bool batched) {
    if (batched) {
      unsetenv("AG_BATCHED_PHY");
    } else {
      setenv("AG_BATCHED_PHY", "off", 1);
    }
    EXPECT_EQ(batched_phy_enabled(), batched);
  }
  ~PhyModeGuard() { unsetenv("AG_BATCHED_PHY"); }
};

TEST(Radio, AbortMidFrameDropsDeliveryUnderBothEngines) {
  for (const bool batched : {true, false}) {
    PhyModeGuard mode{batched};
    PhyFixture f{{{0, 0}, {50, 0}}};
    f.radios_[0]->transmit(test_frame(0));
    // First bit has arrived (prop ~1 us); kill the reception mid-frame.
    f.sim_.run_until(f.sim_.now() + sim::Duration::us(100));
    f.radios_[1]->abort_receptions();
    f.sim_.run_all();
    EXPECT_TRUE(f.listeners_[1]->frames.empty()) << "batched=" << batched;
    // Not a collision and not a half-duplex miss — nothing interfered.
    EXPECT_EQ(f.radios_[1]->counters().frames_corrupted, 0u) << "batched=" << batched;
    EXPECT_EQ(f.radios_[1]->counters().frames_missed_while_tx, 0u)
        << "batched=" << batched;
    // The aborted frame still occupies the air until its last bit: the
    // busy/idle envelope is unchanged, the medium ends idle.
    EXPECT_FALSE(f.radios_[1]->medium_busy()) << "batched=" << batched;
    EXPECT_EQ(f.listeners_[1]->busy_events, 1) << "batched=" << batched;
    EXPECT_EQ(f.listeners_[1]->idle_events, 1) << "batched=" << batched;
  }
}

TEST(Radio, TxStartMidReceptionCorruptsItUnderBothEngines) {
  for (const bool batched : {true, false}) {
    PhyModeGuard mode{batched};
    PhyFixture f{{{0, 0}, {50, 0}}};
    f.radios_[0]->transmit(test_frame(0));
    // Let the frame's first bit land at node 1, then start transmitting
    // there: half duplex destroys the reception in progress.
    f.sim_.run_until(f.sim_.now() + sim::Duration::us(100));
    ASSERT_TRUE(f.radios_[1]->medium_busy()) << "batched=" << batched;
    f.radios_[1]->transmit(test_frame(1));
    f.sim_.run_all();
    EXPECT_TRUE(f.listeners_[1]->frames.empty()) << "batched=" << batched;
    EXPECT_EQ(f.radios_[1]->counters().frames_missed_while_tx, 1u)
        << "batched=" << batched;
    EXPECT_EQ(f.radios_[1]->counters().frames_corrupted, 0u) << "batched=" << batched;
    EXPECT_EQ(f.listeners_[1]->tx_complete, 1) << "batched=" << batched;
    // Node 0 is itself still transmitting when node 1's frame arrives,
    // so it misses it too — counters must agree across engines.
    EXPECT_TRUE(f.listeners_[0]->frames.empty()) << "batched=" << batched;
    EXPECT_EQ(f.radios_[0]->counters().frames_missed_while_tx, 1u)
        << "batched=" << batched;
  }
}

TEST(Radio, EqualEndCollisionFiresSingleIdleTransitionUnderBothEngines) {
  // Hidden terminals transmitting the same-size frame at the same time:
  // both receptions at node 0 end in the same microsecond. The reference
  // runs two finish events in FIFO order and only the last flips the
  // medium idle; the batched engine must reproduce exactly one
  // busy->idle transition — and must NOT analytically elide the second
  // reception (its end only *equals* the cover, and eliding it would
  // move on_medium_idle to the first finish). Regression for the strict
  // `<` in the elision rule.
  for (const bool batched : {true, false}) {
    PhyModeGuard mode{batched};
    PhyFixture f{{{0, 0}, {80, 0}, {-80, 0}}, 100.0};
    f.radios_[1]->transmit(test_frame(1));
    f.radios_[2]->transmit(test_frame(2));
    f.sim_.run_all();
    EXPECT_TRUE(f.listeners_[0]->frames.empty()) << "batched=" << batched;
    EXPECT_EQ(f.radios_[0]->counters().frames_corrupted, 2u) << "batched=" << batched;
    EXPECT_EQ(f.listeners_[0]->busy_events, 1) << "batched=" << batched;
    EXPECT_EQ(f.listeners_[0]->idle_events, 1) << "batched=" << batched;
    EXPECT_EQ(f.channel_.rx_elided(), 0u) << "batched=" << batched;
  }
}

TEST(Channel, PartitionBlocksOnlyCrossSideFrames) {
  PhyFixture f{{{0, 0}, {50, 0}, {90, 0}}};
  // Nodes 0 and 1 on one side, node 2 on the other.
  f.channel_.set_partition({0, 0, 1});
  ASSERT_TRUE(f.channel_.partition_active());

  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[1]->frames.size(), 1u);  // same side
  EXPECT_TRUE(f.listeners_[2]->frames.empty());   // across the cut

  f.channel_.clear_partition();
  f.radios_[0]->transmit(test_frame(0));
  f.sim_.run_all();
  EXPECT_EQ(f.listeners_[2]->frames.size(), 1u);  // healed
}

}  // namespace
}  // namespace ag::phy
