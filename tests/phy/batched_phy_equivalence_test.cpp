// Whole-run equivalence of the batched phy delivery engine against the
// AG_BATCHED_PHY=off per-receiver reference machine: sweeping one
// completion event over a delivery group and analytically eliding
// doomed receptions must not move a single listener callback, so full
// simulations are bit-identical — only the number of simulator events
// differs (that's the point). This is the suite the
// BENCH_fig2/BENCH_churn byte-identity claim rests on, the phy-layer
// analogue of batched_backoff_equivalence_test.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "harness/network.h"
#include "harness/scenario.h"
#include "mac/csma_mac.h"
#include "mobility/static_mobility.h"
#include "net/data_plane.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/event_category.h"
#include "sim/simulator.h"
#include "stats/run_result.h"

namespace ag::phy {
namespace {

harness::ScenarioConfig short_scenario() {
  harness::ScenarioConfig c;
  c.node_count = 40;
  c.duration = sim::SimTime::seconds(40.0);
  c.workload.start = sim::SimTime::seconds(10.0);
  c.workload.end = sim::SimTime::seconds(30.0);
  return c;
}

stats::RunResult run_with_mode(const harness::ScenarioConfig& config, bool batched) {
  if (batched) {
    unsetenv("AG_BATCHED_PHY");
  } else {
    setenv("AG_BATCHED_PHY", "off", 1);
  }
  EXPECT_EQ(batched_phy_enabled(), batched);
  stats::RunResult r = harness::run_scenario(config);
  unsetenv("AG_BATCHED_PHY");
  return r;
}

// Everything the model produced must match; sim_events and the
// phy_delivery event counts legitimately differ (the batched engine
// executes fewer events for the same simulated run) and are pinned
// separately through the elision accounting.
void expect_identical_runs(const stats::RunResult& batched,
                           const stats::RunResult& reference) {
  const stats::RunResult& a = batched;
  const stats::RunResult& b = reference;
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].received, b.members[i].received) << "member " << i;
    EXPECT_EQ(a.members[i].via_gossip, b.members[i].via_gossip) << "member " << i;
    EXPECT_EQ(a.members[i].eligible, b.members[i].eligible) << "member " << i;
    EXPECT_DOUBLE_EQ(a.members[i].mean_latency_s, b.members[i].mean_latency_s)
        << "member " << i;
  }
  EXPECT_EQ(a.totals.channel_transmissions, b.totals.channel_transmissions);
  EXPECT_EQ(a.totals.phy_deliveries, b.totals.phy_deliveries);
  EXPECT_EQ(a.totals.phy_suppressed_down, b.totals.phy_suppressed_down);
  EXPECT_EQ(a.totals.phy_suppressed_partition, b.totals.phy_suppressed_partition);
  EXPECT_EQ(a.totals.mac_unicast, b.totals.mac_unicast);
  EXPECT_EQ(a.totals.mac_broadcast, b.totals.mac_broadcast);
  EXPECT_EQ(a.totals.mac_collisions, b.totals.mac_collisions);
  EXPECT_EQ(a.totals.mac_queue_drops, b.totals.mac_queue_drops);
  EXPECT_EQ(a.totals.mac_backoff_slots_credited, b.totals.mac_backoff_slots_credited);
  EXPECT_EQ(a.totals.data_forwarded, b.totals.data_forwarded);
  EXPECT_EQ(a.totals.gossip_walks, b.totals.gossip_walks);
  EXPECT_EQ(a.totals.gossip_replies, b.totals.gossip_replies);
  EXPECT_EQ(a.totals.nm_updates, b.totals.nm_updates);
  EXPECT_EQ(a.totals.table_probes, b.totals.table_probes);
  EXPECT_EQ(a.totals.pool_hits, b.totals.pool_hits);
  EXPECT_EQ(a.totals.pool_misses, b.totals.pool_misses);
  EXPECT_DOUBLE_EQ(a.delivery_ratio(), b.delivery_ratio());

  // The engines must agree on how much work was *represented*. The
  // reference never elides, and every non-phy category is untouched by
  // the phy engine choice — the MACs above see the identical callback
  // sequence, so their RNG streams and event schedules match event for
  // event.
  EXPECT_EQ(b.totals.phy_rx_elided, 0u);
  EXPECT_EQ(b.totals.phy_rx_coalesced, 0u);
  const auto phy_idx = sim::category_index(sim::EventCategory::phy_delivery);
  for (std::size_t c = 0; c < sim::kEventCategoryCount; ++c) {
    if (c == phy_idx) continue;
    EXPECT_EQ(a.totals.ev_scheduled[c], b.totals.ev_scheduled[c]) << "category " << c;
    EXPECT_EQ(a.totals.ev_executed[c], b.totals.ev_executed[c]) << "category " << c;
  }
  // Reconstruction identity: completions the batched engine coalesced
  // into group sweeps or elided outright, added back to the events it
  // did execute, reproduce the reference engine's phy_delivery event
  // count exactly (elided credits settle as their would-be finish times
  // pass, so the identity holds across run cutoffs too).
  EXPECT_EQ(a.totals.ev_executed[phy_idx] + a.totals.phy_rx_elided +
                a.totals.phy_rx_coalesced,
            b.totals.ev_executed[phy_idx]);
  EXPECT_LE(a.totals.ev_scheduled[phy_idx], b.totals.ev_scheduled[phy_idx]);
  EXPECT_LE(a.totals.sim_events, b.totals.sim_events);
  // A 40-node broadcast mesh has multi-receiver delivery groups in every
  // run — the batched engine must actually be batching.
  EXPECT_GT(a.totals.phy_events_elided(), 0u);
  EXPECT_LT(a.totals.ev_executed[phy_idx], b.totals.ev_executed[phy_idx]);
}

TEST(BatchedPhyEquivalence, WholeRunBitIdenticalToPerReceiverReference) {
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    const stats::RunResult batched =
        run_with_mode(short_scenario().with_seed(seed), true);
    const stats::RunResult reference =
        run_with_mode(short_scenario().with_seed(seed), false);
    expect_identical_runs(batched, reference);
  }
}

TEST(BatchedPhyEquivalence, ChurnRunBitIdenticalToPerReceiverReference) {
  // Churn exercises abort_receptions on crash (radio loses power
  // mid-frame), down-node suppression inside delivery groups, and
  // partition-driven group membership changes.
  harness::ScenarioConfig base = short_scenario();
  base.faults.spec.churn_per_min = 3.0;
  base.faults.spec.crash_fraction = 0.2;
  base.faults.spec.partition_duration_s = 8.0;

  const stats::RunResult batched = run_with_mode(base.with_seed(5), true);
  const stats::RunResult reference = run_with_mode(base.with_seed(5), false);
  EXPECT_GT(batched.faults.crashes + batched.faults.leaves + batched.faults.partitions,
            0u);
  expect_identical_runs(batched, reference);
}

TEST(BatchedPhyEquivalence, EveryProtocolBitIdentical) {
  // Different substrates drive very different delivery-group shapes
  // (flooding saturates every cell; MAODV/ODMRP mix ACKed unicast in).
  for (const harness::Protocol p :
       {harness::Protocol::maodv_gossip, harness::Protocol::odmrp_gossip,
        harness::Protocol::flooding}) {
    harness::ScenarioConfig c = short_scenario();
    c.duration = sim::SimTime::seconds(25.0);
    c.workload.end = sim::SimTime::seconds(20.0);
    c.with_protocol(p).with_seed(3);
    expect_identical_runs(run_with_mode(c, true), run_with_mode(c, false));
  }
}

TEST(BatchedPhyEquivalence, BitIdenticalUnderPerSlotMacReferenceToo) {
  // Cross the two contention escape hatches: the per-slot reference MAC
  // polls medium_busy()/idle_for() far more aggressively than the
  // batched countdown, so run the phy A/B under it to pin the facade
  // queries at every slot edge.
  harness::ScenarioConfig c = short_scenario();
  c.duration = sim::SimTime::seconds(25.0);
  c.workload.end = sim::SimTime::seconds(20.0);
  c.with_seed(7);

  setenv("AG_BATCHED_BACKOFF", "off", 1);
  EXPECT_FALSE(mac::batched_backoff_enabled());
  const stats::RunResult batched = run_with_mode(c, true);
  const stats::RunResult reference = run_with_mode(c, false);
  unsetenv("AG_BATCHED_BACKOFF");
  expect_identical_runs(batched, reference);
}

TEST(BatchedPhyEquivalence, BitIdenticalOnReferenceTableBackendToo) {
  // And the data-plane hatch: four-way equivalence with AG_DENSE_TABLES,
  // pinned pairwise here and by the dense suite.
  harness::ScenarioConfig c = short_scenario();
  c.duration = sim::SimTime::seconds(25.0);
  c.workload.end = sim::SimTime::seconds(20.0);
  c.with_seed(11);

  setenv("AG_DENSE_TABLES", "off", 1);
  EXPECT_FALSE(net::dense_tables_enabled());
  const stats::RunResult batched = run_with_mode(c, true);
  const stats::RunResult reference = run_with_mode(c, false);
  unsetenv("AG_DENSE_TABLES");
  expect_identical_runs(batched, reference);
}

// ---------------------------------------------------------------------------
// Radio-level trace equivalence: drive bare Radios (no MAC above) with a
// fixed pseudo-random transmit schedule across two dense cells and
// compare the complete per-node listener callback traces, timestamps
// included. This catches any reordering the whole-run statistics could
// mask.

struct TraceEvent {
  std::int64_t t_us;
  char kind;  // 'b' busy, 'i' idle, 'r' frame received, 'c' tx complete
  std::uint32_t src{0};
  std::uint32_t seq{0};
  bool operator==(const TraceEvent&) const = default;
};

class TracingListener : public RadioListener {
 public:
  explicit TracingListener(sim::Simulator& sim) : sim_{&sim} {}
  void on_frame_received(const mac::Frame& frame) override {
    trace.push_back({sim_->now().count_us(), 'r', frame.mac_src.value(),
                     frame.mac_seq});
  }
  void on_medium_busy() override { trace.push_back({sim_->now().count_us(), 'b'}); }
  void on_medium_idle() override { trace.push_back({sim_->now().count_us(), 'i'}); }
  void on_transmit_complete() override {
    trace.push_back({sim_->now().count_us(), 'c'});
  }

  std::vector<TraceEvent> trace;

 private:
  sim::Simulator* sim_;
};

mac::Frame trace_frame(std::uint32_t src, std::uint16_t seq, std::uint16_t payload) {
  // Mixed airtimes matter: a short frame arriving doomed mid-way through
  // a long reception is the case the batched engine elides (its end is
  // strictly covered), so the schedule must interleave sizes.
  mac::Frame f;
  f.kind = mac::FrameKind::data;
  f.mac_src = net::NodeId{src};
  f.mac_dst = net::NodeId::broadcast();
  f.mac_seq = seq;
  net::MulticastData data;
  data.group = net::GroupId{1};
  data.origin = net::NodeId{src};
  data.seq = seq;
  data.payload_bytes = payload;
  f.packet = net::make_packet(net::NodeId{src}, net::NodeId::broadcast(), 32, data);
  return f;
}

struct TraceRun {
  std::vector<std::vector<TraceEvent>> traces;  // per node
  std::vector<Radio::Counters> counters;        // per node
  std::uint64_t transmissions{0};
  std::uint64_t deliveries{0};
  std::uint64_t rx_elided{0};
  std::uint64_t rx_coalesced{0};
};

TraceRun run_trace(bool batched) {
  if (batched) {
    unsetenv("AG_BATCHED_PHY");
  } else {
    setenv("AG_BATCHED_PHY", "off", 1);
  }
  EXPECT_EQ(batched_phy_enabled(), batched);

  // Two dense cells 600 m apart: every node hears its whole cell and
  // nothing across — delivery groups of up to 11 receivers, overlapping
  // storms within a cell, and concurrent independent traffic per cell.
  std::vector<mobility::Vec2> positions;
  for (std::uint32_t i = 0; i < 12; ++i) {
    positions.push_back({static_cast<double>(i % 4) * 12.0,
                         static_cast<double>(i / 4) * 12.0});
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    positions.push_back({600.0 + static_cast<double>(i % 4) * 12.0,
                         static_cast<double>(i / 4) * 12.0});
  }
  const std::size_t n = positions.size();

  sim::Simulator sim;
  mobility::StaticMobility mobility{std::move(positions)};
  Channel channel{sim, mobility, PhyParams{100.0, 2e6, 192.0, 3e8}};
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::unique_ptr<TracingListener>> listeners;
  for (std::size_t i = 0; i < n; ++i) {
    radios.push_back(std::make_unique<Radio>(sim, channel, i));
    channel.attach(radios.back().get());
    listeners.push_back(std::make_unique<TracingListener>(sim));
    radios.back()->set_listener(listeners.back().get());
  }

  // Deterministic LCG (same constants as glibc) so both modes see the
  // byte-identical schedule; a node already mid-transmission skips its
  // slot — that decision reads engine state, so a divergence would
  // cascade into the traces and fail the comparison below.
  std::uint64_t lcg = 12345;
  const auto next = [&lcg] {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(lcg >> 33);
  };
  for (std::uint16_t k = 0; k < 400; ++k) {
    const std::int64_t at = 200 + static_cast<std::int64_t>(k) * 250 +
                            static_cast<std::int64_t>(next() % 200);
    const std::uint32_t node = next() % static_cast<std::uint32_t>(n);
    const auto payload =
        static_cast<std::uint16_t>(8u + (next() % 4u) * 250u);  // ~0.3 to ~3.3 ms air
    sim.schedule_at(sim::SimTime::us(at), [&radios, node, k, payload] {
      if (!radios[node]->transmitting()) {
        radios[node]->transmit(trace_frame(node, k, payload));
      }
    });
  }
  sim.run_all();

  TraceRun out;
  for (std::size_t i = 0; i < n; ++i) {
    out.traces.push_back(listeners[i]->trace);
    out.counters.push_back(radios[i]->counters());
  }
  out.transmissions = channel.transmissions();
  out.deliveries = channel.deliveries();
  out.rx_elided = channel.rx_elided();
  out.rx_coalesced = channel.rx_coalesced();
  unsetenv("AG_BATCHED_PHY");
  return out;
}

TEST(BatchedPhyEquivalence, DenseCellRandomTraceBitIdentical) {
  const TraceRun a = run_trace(true);
  const TraceRun b = run_trace(false);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.deliveries, b.deliveries);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    ASSERT_EQ(a.traces[i].size(), b.traces[i].size()) << "node " << i;
    for (std::size_t j = 0; j < a.traces[i].size(); ++j) {
      EXPECT_EQ(a.traces[i][j], b.traces[i][j])
          << "node " << i << " event " << j << ": " << a.traces[i][j].kind << "@"
          << a.traces[i][j].t_us << " vs " << b.traces[i][j].kind << "@"
          << b.traces[i][j].t_us;
    }
    EXPECT_EQ(a.counters[i].frames_sent, b.counters[i].frames_sent) << "node " << i;
    EXPECT_EQ(a.counters[i].frames_received, b.counters[i].frames_received)
        << "node " << i;
    EXPECT_EQ(a.counters[i].frames_corrupted, b.counters[i].frames_corrupted)
        << "node " << i;
    EXPECT_EQ(a.counters[i].frames_missed_while_tx, b.counters[i].frames_missed_while_tx)
        << "node " << i;
  }
  // The storm must actually exercise the batched machinery: coalesced
  // multi-receiver sweeps and analytically elided doomed receptions.
  EXPECT_GT(a.rx_coalesced, 0u);
  EXPECT_GT(a.rx_elided, 0u);
  EXPECT_EQ(b.rx_elided, 0u);
  EXPECT_EQ(b.rx_coalesced, 0u);
}

}  // namespace
}  // namespace ag::phy
