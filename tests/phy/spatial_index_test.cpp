// The spatial index's contract: candidate sets always cover every
// receiver the brute-force scan would deliver to (the exact range check
// stays in the channel), across area borders, motion up to the declared
// max speed, highway wrap-around, teleports, and faults — and whole runs
// are bit-identical with the index on vs. off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment_builder.h"
#include "harness/network.h"
#include "mobility/highway.h"
#include "mobility/random_waypoint.h"
#include "mobility/static_mobility.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "phy/spatial_index.h"
#include "sim/simulator.h"

namespace ag::phy {
namespace {

// Every node within `range_m` of every sender must appear in the sender's
// candidate set (the index may over-approximate, never under-approximate).
void expect_candidates_cover_range(const mobility::MobilityModel& model,
                                   SpatialIndex& index, sim::SimTime now,
                                   double range_m) {
  index.refresh_if_stale(now);
  std::vector<std::uint32_t> candidates;
  for (std::size_t s = 0; s < index.node_count(); ++s) {
    const mobility::Vec2 from = model.position_of(s, now);
    candidates.clear();
    index.collect_candidates(from, candidates);
    for (std::size_t i = 0; i < index.node_count(); ++i) {
      if (mobility::distance_sq(from, model.position_of(i, now)) >
          range_m * range_m) {
        continue;
      }
      EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                            static_cast<std::uint32_t>(i)) != candidates.end())
          << "node " << i << " in range of sender " << s << " at t="
          << now.to_seconds() << "s but not a candidate";
    }
  }
}

TEST(SpatialIndex, CellAssignmentAtAreaBorders) {
  // Nodes on every corner, edge midpoint, and the exact bounds maxima —
  // positions that land on cell boundaries and the clamped last cells.
  mobility::StaticMobility m{{{0, 0}, {200, 0}, {0, 200}, {200, 200},
                              {100, 0}, {0, 100}, {200, 100}, {100, 200},
                              {100, 100}, {199.999, 199.999}, {0.001, 0.001}}};
  SpatialIndex index{m, m.node_count(), 75.0};
  expect_candidates_cover_range(m, index, sim::SimTime::zero(), 75.0);
  EXPECT_GE(index.cell_size_m(), 75.0);
  EXPECT_GE(index.cols(), 1u);
  EXPECT_GE(index.rows(), 1u);
}

TEST(SpatialIndex, DegenerateGeometriesStillCover) {
  // A line (zero height) and a single point (zero area).
  mobility::StaticMobility line = mobility::StaticMobility::line(7, 30.0);
  SpatialIndex line_index{line, line.node_count(), 50.0};
  expect_candidates_cover_range(line, line_index, sim::SimTime::zero(), 50.0);

  mobility::StaticMobility point{{{5, 5}, {5, 5}, {5, 5}}};
  SpatialIndex point_index{point, point.node_count(), 10.0};
  expect_candidates_cover_range(point, point_index, sim::SimTime::zero(), 10.0);
}

TEST(SpatialIndex, TeleportsOutsideBoundsAreFound) {
  mobility::StaticMobility m{{{0, 0}, {50, 0}, {100, 0}}};
  SpatialIndex index{m, m.node_count(), 60.0};
  index.refresh_if_stale(sim::SimTime::zero());

  // Teleport two nodes far outside the original bounds, near each other:
  // the generation bump must invalidate the buckets, and clamping must
  // still put them in each other's neighborhoods.
  m.move_to(0, {5000.0, -3000.0});
  m.move_to(1, {5040.0, -3000.0});
  expect_candidates_cover_range(m, index, sim::SimTime::zero(), 60.0);
}

TEST(SpatialIndex, MarginCoversMotionAtMaxSpeed) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    sim::Simulator sim{seed};
    mobility::RandomWaypointConfig cfg;
    cfg.max_speed_mps = 5.0;
    cfg.max_pause_s = 0.5;
    mobility::RandomWaypoint rwp{sim, 50, cfg, sim.rng().stream("mobility")};
    ASSERT_DOUBLE_EQ(rwp.max_speed_mps(), 5.0);
    SpatialIndex index{rwp, 50, 40.0};
    ASSERT_GT(index.margin_m(), 0.0);

    // Walk through several epochs; between the sweep steps, also query at
    // exactly the epoch horizon — the worst case the margin must cover.
    for (double t = 0.0; t < 12.0; t += 0.61) {
      sim.run_until(sim::SimTime::seconds(t));
      expect_candidates_cover_range(rwp, index, sim.now(), 40.0);
      const sim::SimTime horizon = index.valid_until();
      if (horizon < sim::SimTime::seconds(12.0)) {
        sim.run_until(horizon);
        expect_candidates_cover_range(rwp, index, sim.now(), 40.0);
      }
    }
    EXPECT_GT(index.rebuilds(), 1u) << "margin test never crossed an epoch";
  }
}

TEST(SpatialIndex, HighwayWrapAroundKeepsCoverage) {
  sim::Rng rng{9};
  mobility::HighwayConfig cfg;
  cfg.length_m = 400.0;
  cfg.lanes = 2;
  cfg.min_speed_mps = 25.0;
  cfg.max_speed_mps = 35.0;
  mobility::HighwayMobility hw{20, cfg, rng};
  ASSERT_TRUE(hw.wraps_x());
  SpatialIndex index{hw, 20, 60.0};

  // 30 s at ~30 m/s over a 400 m stretch: every car wraps at least twice;
  // coverage must hold right through the wrap instants.
  for (double t = 0.0; t < 30.0; t += 0.29) {
    expect_candidates_cover_range(hw, index, sim::SimTime::seconds(t), 60.0);
  }
  EXPECT_GT(index.rebuilds(), 1u);
}

TEST(SpatialIndex, WrapSeamWithNonDividingLengthKeepsCoverage) {
  // Regression: 1000 m / (120 + 30) cell leaves a narrow seam column
  // unless columns are widened to tile the circumference exactly. A car
  // bucketed just past the seam that drifts backward across it within
  // one epoch used to vanish from the candidate set of senders one
  // column away on the other side.
  sim::Rng rng{11};
  mobility::HighwayConfig cfg;
  cfg.length_m = 1000.0;
  cfg.lanes = 2;
  cfg.min_speed_mps = 25.0;
  cfg.max_speed_mps = 35.0;
  mobility::HighwayMobility hw{100, cfg, rng};
  SpatialIndex index{hw, 100, 120.0};
  ASSERT_GE(index.cols(), 2u);

  for (double t = 0.0; t < 60.0; t += 0.31) {
    expect_candidates_cover_range(hw, index, sim::SimTime::seconds(t), 120.0);
  }
  EXPECT_GT(index.rebuilds(), 1u);
}

// ---------------------------------------------------------------- channel

class CountingListener : public RadioListener {
 public:
  void on_frame_received(const mac::Frame&) override { ++received; }
  void on_medium_busy() override {}
  void on_medium_idle() override {}
  void on_transmit_complete() override {}
  int received{0};
};

struct IndexedFixture {
  explicit IndexedFixture(std::vector<mobility::Vec2> positions, double range,
                          bool use_index)
      : mobility{std::move(positions)},
        channel{sim, mobility,
                PhyParams{range, 2e6, 192.0, 3e8, use_index}} {
    for (std::size_t i = 0; i < mobility.node_count(); ++i) {
      radios.push_back(std::make_unique<Radio>(sim, channel, i));
      channel.attach(radios.back().get());
      listeners.push_back(std::make_unique<CountingListener>());
      radios.back()->set_listener(listeners.back().get());
    }
  }
  sim::Simulator sim;
  mobility::StaticMobility mobility;
  Channel channel;
  std::vector<std::unique_ptr<Radio>> radios;
  std::vector<std::unique_ptr<CountingListener>> listeners;
};

mac::Frame broadcast_frame(std::uint32_t src) {
  mac::Frame f;
  f.kind = mac::FrameKind::data;
  f.mac_src = net::NodeId{src};
  f.mac_dst = net::NodeId::broadcast();
  f.packet = net::make_packet(net::NodeId{src}, net::NodeId::broadcast(), 32,
                              aodv::HelloMsg{net::NodeId{src}, net::SeqNo{1}});
  return f;
}

TEST(ChannelSpatialIndex, FaultedNodesNeverReceiveWithIndexOn) {
  IndexedFixture f{{{0, 0}, {40, 0}, {80, 0}, {500, 0}}, 100.0, /*use_index=*/true};
  ASSERT_TRUE(f.channel.spatial_index_enabled());

  f.channel.set_node_down(1, true);
  f.radios[0]->transmit(broadcast_frame(0));
  f.sim.run_all();
  EXPECT_EQ(f.listeners[1]->received, 0);  // downed: suppressed
  EXPECT_EQ(f.listeners[2]->received, 1);
  EXPECT_EQ(f.listeners[3]->received, 0);  // out of range entirely
  EXPECT_EQ(f.channel.suppressed_down(), 1u);
  EXPECT_EQ(f.channel.deliveries(), 1u);

  f.channel.set_node_down(1, false);
  f.channel.set_partition({0, 1, 0, 0});
  f.radios[0]->transmit(broadcast_frame(0));
  f.sim.run_all();
  EXPECT_EQ(f.listeners[1]->received, 0);  // across the cut: suppressed
  EXPECT_EQ(f.listeners[2]->received, 2);
  EXPECT_EQ(f.channel.suppressed_partition(), 1u);
  EXPECT_EQ(f.channel.deliveries(), 2u);
}

TEST(ChannelSpatialIndex, CountersMatchBruteForce) {
  const std::vector<mobility::Vec2> positions{
      {0, 0}, {30, 0}, {60, 10}, {90, 40}, {150, 150}, {10, 95}, {95, 95}};
  std::uint64_t expected[3] = {0, 0, 0};
  for (const bool use_index : {false, true}) {
    IndexedFixture f{positions, 100.0, use_index};
    ASSERT_EQ(f.channel.spatial_index_enabled(), use_index);
    f.channel.set_node_down(2, true);
    f.channel.set_partition({0, 1, 0, 0, 0, 1, 0});
    for (std::size_t s = 0; s < positions.size(); ++s) {
      if (s == 2) continue;
      f.radios[s]->transmit(broadcast_frame(static_cast<std::uint32_t>(s)));
      f.sim.run_all();
    }
    if (!use_index) {
      expected[0] = f.channel.deliveries();
      expected[1] = f.channel.suppressed_down();
      expected[2] = f.channel.suppressed_partition();
      EXPECT_GT(expected[0], 0u);
      EXPECT_GT(expected[1], 0u);
      EXPECT_GT(expected[2], 0u);
    } else {
      EXPECT_EQ(f.channel.deliveries(), expected[0]);
      EXPECT_EQ(f.channel.suppressed_down(), expected[1]);
      EXPECT_EQ(f.channel.suppressed_partition(), expected[2]);
    }
  }
}

// ------------------------------------------------- whole-run equivalence

harness::ScenarioConfig short_scenario(bool use_index) {
  harness::ScenarioConfig c;
  c.node_count = 40;
  c.duration = sim::SimTime::seconds(40.0);
  c.workload.start = sim::SimTime::seconds(10.0);
  c.workload.end = sim::SimTime::seconds(30.0);
  c.phy.use_spatial_index = use_index;
  return c;
}

void expect_identical_runs(const stats::RunResult& a, const stats::RunResult& b) {
  EXPECT_EQ(a.packets_sent, b.packets_sent);
  ASSERT_EQ(a.members.size(), b.members.size());
  for (std::size_t i = 0; i < a.members.size(); ++i) {
    EXPECT_EQ(a.members[i].received, b.members[i].received) << "member " << i;
    EXPECT_EQ(a.members[i].via_gossip, b.members[i].via_gossip) << "member " << i;
    EXPECT_EQ(a.members[i].eligible, b.members[i].eligible) << "member " << i;
    EXPECT_DOUBLE_EQ(a.members[i].mean_latency_s, b.members[i].mean_latency_s)
        << "member " << i;
  }
  EXPECT_EQ(a.totals.channel_transmissions, b.totals.channel_transmissions);
  EXPECT_EQ(a.totals.phy_deliveries, b.totals.phy_deliveries);
  EXPECT_EQ(a.totals.phy_suppressed_down, b.totals.phy_suppressed_down);
  EXPECT_EQ(a.totals.phy_suppressed_partition, b.totals.phy_suppressed_partition);
  EXPECT_EQ(a.totals.sim_events, b.totals.sim_events);
  EXPECT_EQ(a.totals.mac_unicast, b.totals.mac_unicast);
  EXPECT_EQ(a.totals.mac_broadcast, b.totals.mac_broadcast);
  EXPECT_EQ(a.totals.mac_collisions, b.totals.mac_collisions);
  EXPECT_DOUBLE_EQ(a.delivery_ratio(), b.delivery_ratio());
}

TEST(ChannelSpatialIndex, WholeRunBitIdenticalToBruteForce) {
  for (const std::uint64_t seed : {1ULL, 2ULL}) {
    stats::RunResult on = harness::run_scenario(short_scenario(true).with_seed(seed));
    stats::RunResult off = harness::run_scenario(short_scenario(false).with_seed(seed));
    expect_identical_runs(on, off);
  }
}

TEST(ChannelSpatialIndex, ChurnRunBitIdenticalToBruteForce) {
  harness::ScenarioConfig base = short_scenario(true);
  base.faults.spec.churn_per_min = 3.0;
  base.faults.spec.crash_fraction = 0.2;
  base.faults.spec.partition_duration_s = 8.0;

  harness::ScenarioConfig brute = base;
  brute.phy.use_spatial_index = false;

  stats::RunResult on = harness::run_scenario(base.with_seed(5));
  stats::RunResult off = harness::run_scenario(brute.with_seed(5));
  // Faults exercise the suppression paths for real.
  EXPECT_GT(on.totals.phy_suppressed_down + on.totals.phy_suppressed_partition, 0u);
  expect_identical_runs(on, off);
}

TEST(ChannelSpatialIndex, Fig2StyleJsonBitIdentical) {
  auto run_json = [](bool use_index, const std::string& path) {
    harness::ExperimentResult r =
        harness::Experiment::sweep("range_m", {55.0, 75.0})
            .base(short_scenario(use_index))
            .protocols({harness::Protocol::maodv_gossip, harness::Protocol::maodv})
            .seeds(2)
            .parallel(2)
            .name("fig2_equiv")
            .run();
    ASSERT_TRUE(r.write_json(path));
  };
  run_json(true, "EQUIV_index_on.json");
  run_json(false, "EQUIV_index_off.json");

  auto slurp = [](const std::string& path) {
    std::ifstream in{path};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string on = slurp("EQUIV_index_on.json");
  const std::string off = slurp("EQUIV_index_off.json");
  ASSERT_FALSE(on.empty());
  EXPECT_EQ(on, off) << "BENCH json differs between index on and off";
  std::remove("EQUIV_index_on.json");
  std::remove("EQUIV_index_off.json");
}

}  // namespace
}  // namespace ag::phy
