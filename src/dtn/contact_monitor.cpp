#include "dtn/contact_monitor.h"

#include <algorithm>

namespace ag::dtn {

ContactMonitor::ContactMonitor(sim::Simulator& sim,
                               const mobility::MobilityModel& mobility,
                               const phy::Channel& channel, std::size_t node_count,
                               double range_m, sim::Duration poll,
                               ContactFn on_contact)
    : sim_{sim},
      mobility_{mobility},
      channel_{channel},
      node_count_{node_count},
      range_m_{range_m},
      poll_interval_{poll},
      on_contact_{std::move(on_contact)},
      index_{mobility, node_count, range_m},
      prev_(node_count),
      timer_{sim, [this] { this->poll(); }, sim::EventCategory::dtn} {}

void ContactMonitor::start() { timer_.start(poll_interval_); }

bool ContactMonitor::in_contact(std::size_t a, std::size_t b, mobility::Vec2 pa,
                                sim::SimTime now) const {
  if (a == b) return false;
  if (!channel_.link_allowed(a, b)) return false;
  const mobility::Vec2 pb = mobility_.position_of(b, now);
  const double dx = pa.x - pb.x;
  const double dy = pa.y - pb.y;
  return dx * dx + dy * dy <= range_m_ * range_m_;
}

std::vector<std::size_t> ContactMonitor::neighbors_of(std::size_t node) {
  std::vector<std::size_t> out;
  const sim::SimTime now = sim_.now();
  if (channel_.is_node_down(node)) return out;
  index_.refresh_if_stale(now);
  const mobility::Vec2 pa = mobility_.position_of(node, now);
  candidates_.clear();
  index_.collect_candidates(pa, candidates_);
  for (const std::uint32_t b : candidates_) {
    if (in_contact(node, b, pa, now)) out.push_back(b);
  }
  return out;
}

void ContactMonitor::poll() {
  const sim::SimTime now = sim_.now();
  index_.refresh_if_stale(now);
  for (std::size_t a = 0; a < node_count_; ++a) {
    if (channel_.is_node_down(a)) {
      // A downed node keeps no neighborhood: everything it meets on the
      // way back up is a fresh contact.
      prev_[a].clear();
      continue;
    }
    const mobility::Vec2 pa = mobility_.position_of(a, now);
    candidates_.clear();
    index_.collect_candidates(pa, candidates_);
    current_.clear();
    for (const std::uint32_t b : candidates_) {
      if (in_contact(a, b, pa, now)) current_.push_back(b);
    }
    // Candidates arrive in ascending node order, so current_ is sorted;
    // diff against the previous (also sorted) poll.
    for (const std::uint32_t b : current_) {
      if (!std::binary_search(prev_[a].begin(), prev_[a].end(), b)) {
        on_contact_(a, b);
      }
    }
    prev_[a] = current_;
  }
}

}  // namespace ag::dtn
