// Configuration of the DTN custody tier (ROADMAP item 4): per-node
// store-and-forward of multicast payloads under explicit budgets, re-offered
// on contact. Disabled by default — a scenario without custody builds the
// exact pre-custody stack (no decorator, no contact monitor, no events).
#ifndef AG_DTN_PARAMS_H
#define AG_DTN_PARAMS_H

#include <cstdint>

#include "sim/time.h"

namespace ag::dtn {

struct CustodyParams {
  // Master switch. The AG_CUSTODY=off environment hatch (read by the
  // harness through sim/env.h) forces this off process-wide.
  bool enabled{false};

  // Store budgets: a node holds at most max_messages payloads totalling at
  // most max_bytes. Capacity evictions drop the oldest entry first
  // (insertion order — deterministic). max_messages == 0 "arms" custody
  // (decorator + contact monitor in place) while storing nothing; useful
  // to measure the machinery's own cost.
  std::uint32_t max_messages{64};
  std::uint32_t max_bytes{16 * 1024};

  // Entries older than ttl expire against the sim clock. Expiry is checked
  // lazily at every store/offer interaction — no per-entry timer events.
  sim::Duration ttl{sim::Duration::seconds(120.0)};

  // Contact detection: the monitor re-checks neighborhoods every poll
  // interval and fires a contact when a node pair newly comes into range.
  sim::Duration contact_poll{sim::Duration::seconds(2.0)};

  // Oldest-first messages handed to a peer per contact.
  std::uint32_t offer_batch{8};

  // Designated gateway nodes (deterministically spread over the node index
  // space): elevated budgets, and a burst re-offer when a partition heals —
  // they bridge the median-x cut by holding traffic across it.
  std::uint32_t gateway_count{0};
  std::uint32_t gateway_budget_factor{4};
};

}  // namespace ag::dtn

#endif  // AG_DTN_PARAMS_H
