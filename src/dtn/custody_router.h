// DTN custody tier as a decorator over any harness::MulticastRouter. The
// wrapped protocol keeps its whole machinery; the decorator interposes on
// exactly two seams and adds one of its own:
//
//  - MAC listener: built after the inner router (whose constructor
//    registered itself with the MAC), the decorator re-registers and
//    forwards everything except CustodyHandoffMsg — the custody wire
//    message no protocol needs to understand.
//  - Router observer: set_observer() chains the decorator between router
//    and gossip agent, so every unique delivery is also taken into
//    custody before flowing up unchanged.
//  - offer_to(): the contact-driven path. On a contact (neighbor
//    appearance, reboot/rejoin, partition heal) the store's oldest batch
//    is handed to the peer as one-hop MAC unicasts; the receiver delivers
//    fresh payloads up (the gossip agent and the sink both deduplicate)
//    and takes custody itself, so payloads diffuse across disruptions.
//
// The store survives reset() — custody is the promise that a message
// outlives the disruption, so it is modeled as stable storage exactly
// like the data-plane sequence counters (see MulticastRouter::reset()).
#ifndef AG_DTN_CUSTODY_ROUTER_H
#define AG_DTN_CUSTODY_ROUTER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "dtn/custody_store.h"
#include "dtn/params.h"
#include "gossip/routing_adapter.h"
#include "harness/multicast_router.h"
#include "mac/csma_mac.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace ag::dtn {

class CustodyRouter final : public harness::MulticastRouter,
                            public mac::MacListener,
                            public gossip::RouterObserver {
 public:
  CustodyRouter(sim::Simulator& sim, mac::CsmaMac& mac,
                std::unique_ptr<harness::MulticastRouter> inner,
                const CustodyParams& params, bool gateway);

  // --- harness::MulticastRouter ---
  void start() override { inner_->start(); }
  // Volatile protocol state wipes; the custody store survives.
  void reset() override { inner_->reset(); }
  void set_observer(gossip::RouterObserver* observer) override {
    observer_ = observer;
    inner_->set_observer(this);
  }
  void join_group(net::GroupId group) override { inner_->join_group(group); }
  void leave_group(net::GroupId group) override { inner_->leave_group(group); }
  std::uint32_t send_multicast(net::GroupId group,
                               std::uint16_t payload_bytes) override;
  void add_totals(stats::NetworkTotals& totals) const override;

  // --- gossip::RoutingAdapter (pure passthrough) ---
  [[nodiscard]] net::NodeId self() const override { return inner_->self(); }
  [[nodiscard]] bool is_member(net::GroupId group) const override {
    return inner_->is_member(group);
  }
  [[nodiscard]] bool on_tree(net::GroupId group) const override {
    return inner_->on_tree(group);
  }
  [[nodiscard]] std::vector<net::NodeId> tree_neighbors(
      net::GroupId group) const override {
    return inner_->tree_neighbors(group);
  }
  void unicast(net::NodeId dest, net::Payload payload) override {
    inner_->unicast(dest, std::move(payload));
  }
  void send_to_neighbor(net::NodeId neighbor, net::Payload payload) override {
    inner_->send_to_neighbor(neighbor, std::move(payload));
  }
  void route_hint(net::NodeId dest, net::NodeId via_neighbor,
                  std::uint8_t hops) override {
    inner_->route_hint(dest, via_neighbor, hops);
  }
  [[nodiscard]] std::uint8_t route_hops(net::NodeId dest) const override {
    return inner_->route_hops(dest);
  }

  // --- mac::MacListener (custody interception, else passthrough) ---
  void on_packet_received(const net::Packet& packet, net::NodeId from) override;
  void on_unicast_failed(const net::Packet& packet, net::NodeId next_hop) override;

  // --- gossip::RouterObserver (custody tap, else passthrough) ---
  void on_multicast_data(const net::MulticastData& data, net::NodeId from) override;
  void on_tree_neighbor_added(net::GroupId group, net::NodeId neighbor,
                              std::uint16_t member_distance_hint) override {
    if (observer_ != nullptr) {
      observer_->on_tree_neighbor_added(group, neighbor, member_distance_hint);
    }
  }
  void on_tree_neighbor_removed(net::GroupId group, net::NodeId neighbor) override {
    if (observer_ != nullptr) observer_->on_tree_neighbor_removed(group, neighbor);
  }
  void on_self_membership_changed(net::GroupId group, bool member) override {
    if (observer_ != nullptr) observer_->on_self_membership_changed(group, member);
  }
  void on_member_learned(net::GroupId group, net::NodeId member,
                         std::uint8_t hops) override {
    if (observer_ != nullptr) observer_->on_member_learned(group, member, hops);
  }
  void on_gossip_packet(const net::Packet& packet, net::NodeId from) override {
    if (observer_ != nullptr) observer_->on_gossip_packet(packet, from);
  }

  // --- custody (contact hooks and introspection) ---
  // Hands the store's oldest offer-batch to `peer` as one-hop unicasts.
  void offer_to(net::NodeId peer);

  [[nodiscard]] CustodyStore& store() { return store_; }
  [[nodiscard]] const CustodyStore& store() const { return store_; }
  [[nodiscard]] harness::MulticastRouter& inner() { return *inner_; }
  [[nodiscard]] bool gateway() const { return gateway_; }

  struct Counters {
    std::uint64_t offers_sent{0};       // handoff packets put on the air
    std::uint64_t offers_failed{0};     // handoffs whose MAC retries ran out
    std::uint64_t accepted_fresh{0};    // received handoffs new to this node
    std::uint64_t accepted_duplicate{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  sim::Simulator& sim_;
  mac::CsmaMac& mac_;
  std::unique_ptr<harness::MulticastRouter> inner_;
  mac::MacListener* inner_listener_;  // the inner router as a MAC listener
  CustodyParams params_;
  bool gateway_;
  CustodyStore store_;
  gossip::RouterObserver* observer_{nullptr};
  net::DenseSet seen_;  // classifies received handoffs fresh/duplicate
  std::vector<net::MulticastData> offer_scratch_;
  Counters counters_;
};

}  // namespace ag::dtn

#endif  // AG_DTN_CUSTODY_ROUTER_H
