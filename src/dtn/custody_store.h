// Per-node custody store: multicast payloads held for later re-offer,
// under explicit budgets. Entries live in insertion order, which makes
// every eviction decision deterministic: TTL expiry walks the front of
// the queue (same TTL for every entry, so expiry order == insertion
// order) and capacity pressure drops the oldest entry first. Keyed by
// MsgId, so a payload is never stored twice. Modeled as stable storage:
// a crash/reboot wipe does not clear the store (the DTN custody promise
// is exactly that the message survives the disruption).
#ifndef AG_DTN_CUSTODY_STORE_H
#define AG_DTN_CUSTODY_STORE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "net/data.h"
#include "net/dense_map.h"
#include "sim/time.h"

namespace ag::dtn {

class CustodyStore {
 public:
  CustodyStore(std::uint32_t max_messages, std::uint32_t max_bytes,
               sim::Duration ttl)
      : max_messages_{max_messages}, max_bytes_{max_bytes}, ttl_{ttl} {}

  // Takes custody of `d` at `now`. Duplicates (by MsgId) and zero budgets
  // are refused; capacity pressure evicts expired entries first, then the
  // oldest live one. Returns true when the payload was stored fresh.
  bool store(const net::MulticastData& d, sim::SimTime now);

  // Drops every entry whose TTL elapsed by `now` (called lazily from
  // store/collect — custody needs no timer events of its own).
  void expire(sim::SimTime now);

  // Appends up to `batch` live entries into `out`, oldest first (the
  // deterministic re-offer order). Runs expire(now) first.
  void collect_oldest(sim::SimTime now, std::uint32_t batch,
                      std::vector<net::MulticastData>& out);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] bool holds(const net::MsgId& id) const {
    return keys_.contains(net::msg_key(id));
  }

  struct Counters {
    std::uint64_t stored{0};             // fresh payloads accepted
    std::uint64_t refused_duplicate{0};  // already under custody
    std::uint64_t evicted_ttl{0};
    std::uint64_t evicted_capacity{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct Entry {
    net::MulticastData data;
    sim::SimTime expires_at;
  };
  void drop_front(std::uint64_t& counter);

  std::uint32_t max_messages_;
  std::uint32_t max_bytes_;
  sim::Duration ttl_;
  std::deque<Entry> entries_;  // insertion order == eviction order
  net::DenseSet keys_;         // MsgIds currently held
  std::uint64_t bytes_{0};
  Counters counters_;
};

}  // namespace ag::dtn

#endif  // AG_DTN_CUSTODY_STORE_H
