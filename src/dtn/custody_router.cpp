#include "dtn/custody_router.h"

namespace ag::dtn {

namespace {

std::uint32_t scaled_budget(std::uint32_t budget, bool gateway,
                            std::uint32_t factor) {
  // Gateways hold more (they bridge partitions); a zero budget stays zero
  // so the armed-but-empty configuration is gateway-independent.
  if (!gateway || factor <= 1 || budget == 0) return budget;
  const std::uint64_t scaled = static_cast<std::uint64_t>(budget) * factor;
  return scaled > 0xFFFFFFFFull ? 0xFFFFFFFFu : static_cast<std::uint32_t>(scaled);
}

}  // namespace

CustodyRouter::CustodyRouter(sim::Simulator& sim, mac::CsmaMac& mac,
                             std::unique_ptr<harness::MulticastRouter> inner,
                             const CustodyParams& params, bool gateway)
    : sim_{sim},
      mac_{mac},
      inner_{std::move(inner)},
      inner_listener_{dynamic_cast<mac::MacListener*>(inner_.get())},
      params_{params},
      gateway_{gateway},
      store_{scaled_budget(params.max_messages, gateway, params.gateway_budget_factor),
             scaled_budget(params.max_bytes, gateway, params.gateway_budget_factor),
             params.ttl} {
  // The inner router registered itself with the MAC in its constructor;
  // interpose so custody handoffs never reach it.
  mac_.set_listener(this);
}

std::uint32_t CustodyRouter::send_multicast(net::GroupId group,
                                            std::uint16_t payload_bytes) {
  const std::uint32_t seq = inner_->send_multicast(group, payload_bytes);
  // The origin seeds its own custody: if the network is partitioned right
  // now, the payload still reaches the far side on a later contact.
  net::MulticastData d;
  d.group = group;
  d.origin = inner_->self();
  d.seq = seq;
  d.payload_bytes = payload_bytes;
  d.sent_at = sim_.now();
  d.hops = 0;
  seen_.insert(net::msg_key(net::MsgId{d.origin, d.seq}));
  store_.store(d, sim_.now());
  return seq;
}

void CustodyRouter::on_multicast_data(const net::MulticastData& data,
                                      net::NodeId from) {
  // Tap every unique protocol delivery into custody, then pass it up
  // unchanged (the gossip agent stays the router's logical observer).
  seen_.insert(net::msg_key(net::MsgId{data.origin, data.seq}));
  store_.store(data, sim_.now());
  if (observer_ != nullptr) observer_->on_multicast_data(data, from);
}

void CustodyRouter::on_packet_received(const net::Packet& packet, net::NodeId from) {
  const auto* handoff = packet.get_if<CustodyHandoffMsg>();
  if (handoff == nullptr) {
    if (inner_listener_ != nullptr) inner_listener_->on_packet_received(packet, from);
    return;
  }
  const net::MulticastData& d = handoff->data;
  if (seen_.insert(net::msg_key(net::MsgId{d.origin, d.seq}))) {
    ++counters_.accepted_fresh;
  } else {
    ++counters_.accepted_duplicate;
  }
  // Take custody ourselves (store dedups), so payloads keep diffusing
  // through intermittently connected relays.
  store_.store(d, sim_.now());
  // Deliver up when we are a member. The gossip agent and (under faults)
  // the sink's MsgId set both deduplicate, so a re-offer after a reboot
  // can never double-count.
  if (observer_ != nullptr && inner_->is_member(d.group)) {
    observer_->on_multicast_data(d, from);
  }
}

void CustodyRouter::on_unicast_failed(const net::Packet& packet,
                                      net::NodeId next_hop) {
  if (packet.is<CustodyHandoffMsg>()) {
    // The payload stays under custody; a later contact retries. The inner
    // protocol never sent this frame, so it gets no link-break signal.
    ++counters_.offers_failed;
    return;
  }
  if (inner_listener_ != nullptr) inner_listener_->on_unicast_failed(packet, next_hop);
}

void CustodyRouter::offer_to(net::NodeId peer) {
  if (peer == inner_->self()) return;
  offer_scratch_.clear();
  store_.collect_oldest(sim_.now(), params_.offer_batch, offer_scratch_);
  for (const net::MulticastData& d : offer_scratch_) {
    net::Packet pkt;
    pkt.src = inner_->self();
    pkt.dst = peer;
    pkt.ttl = 1;  // handoffs are strictly one-hop; relaying is a new offer
    pkt.payload = CustodyHandoffMsg{d, static_cast<std::uint8_t>(gateway_ ? 1 : 0)};
    if (mac_.send(peer, std::move(pkt))) {
      ++counters_.offers_sent;
    } else {
      ++counters_.offers_failed;  // interface queue full; retry on next contact
    }
  }
}

void CustodyRouter::add_totals(stats::NetworkTotals& totals) const {
  const CustodyStore::Counters& s = store_.counters();
  totals.custody_stored += s.stored;
  totals.custody_evicted_ttl += s.evicted_ttl;
  totals.custody_evicted_capacity += s.evicted_capacity;
  totals.custody_offers += counters_.offers_sent;
  totals.custody_offers_failed += counters_.offers_failed;
  totals.custody_accepted += counters_.accepted_fresh;
  totals.custody_duplicates += counters_.accepted_duplicate;
  inner_->add_totals(totals);
}

}  // namespace ag::dtn
