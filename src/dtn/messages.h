// Wire message of the custody tier: a one-hop handoff carrying a stored
// multicast payload to a freshly met neighbor. Custody handoffs ride the
// normal MAC unicast path (airtime, contention, ACK/retry) but are
// intercepted by the CustodyRouter decorator before the wrapped protocol
// ever sees them, so no routing protocol needs to understand custody.
#ifndef AG_DTN_MESSAGES_H
#define AG_DTN_MESSAGES_H

#include <cstdint>

#include "net/data.h"

namespace ag::dtn {

struct CustodyHandoffMsg {
  net::MulticastData data;        // the payload under custody
  std::uint8_t from_gateway{0};   // 1 when a designated gateway re-offered it
};

}  // namespace ag::dtn

#endif  // AG_DTN_MESSAGES_H
