#include "dtn/custody_store.h"

namespace ag::dtn {

void CustodyStore::drop_front(std::uint64_t& counter) {
  const Entry& e = entries_.front();
  keys_.erase(net::msg_key(net::MsgId{e.data.origin, e.data.seq}));
  bytes_ -= e.data.payload_bytes;
  entries_.pop_front();
  ++counter;
}

void CustodyStore::expire(sim::SimTime now) {
  while (!entries_.empty() && entries_.front().expires_at <= now) {
    drop_front(counters_.evicted_ttl);
  }
}

bool CustodyStore::store(const net::MulticastData& d, sim::SimTime now) {
  expire(now);
  if (max_messages_ == 0 || max_bytes_ == 0) return false;  // armed but empty
  if (d.payload_bytes > max_bytes_) return false;           // can never fit
  if (!keys_.insert(net::msg_key(net::MsgId{d.origin, d.seq}))) {
    ++counters_.refused_duplicate;
    return false;
  }
  while (entries_.size() >= max_messages_ ||
         bytes_ + d.payload_bytes > max_bytes_) {
    drop_front(counters_.evicted_capacity);
  }
  entries_.push_back({d, now + ttl_});
  bytes_ += d.payload_bytes;
  ++counters_.stored;
  return true;
}

void CustodyStore::collect_oldest(sim::SimTime now, std::uint32_t batch,
                                  std::vector<net::MulticastData>& out) {
  expire(now);
  std::uint32_t taken = 0;
  for (const Entry& e : entries_) {
    if (taken++ >= batch) break;
    out.push_back(e.data);
  }
}

}  // namespace ag::dtn
