// Contact detection for the custody tier: a periodic sweep over its own
// phy::SpatialIndex that diffs every node's in-range, link-up neighbor set
// against the previous poll and reports each newly appeared pair. Purely
// observational — it reads mobility/channel state and never touches the
// phy/MAC hot path; when custody is off the monitor is simply not built,
// so the simulation schedules zero extra events.
#ifndef AG_DTN_CONTACT_MONITOR_H
#define AG_DTN_CONTACT_MONITOR_H

#include <cstdint>
#include <functional>
#include <vector>

#include "mobility/mobility_model.h"
#include "phy/channel.h"
#include "phy/spatial_index.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace ag::dtn {

class ContactMonitor {
 public:
  // Fired once per newly in-contact ordered pair (both directions, so each
  // endpoint gets a chance to offer custody to the other).
  using ContactFn = std::function<void(std::size_t node, std::size_t peer)>;

  ContactMonitor(sim::Simulator& sim, const mobility::MobilityModel& mobility,
                 const phy::Channel& channel, std::size_t node_count,
                 double range_m, sim::Duration poll, ContactFn on_contact);

  // Starts the periodic sweep (no jitter: polls draw no randomness, so an
  // armed monitor never perturbs the run's rng streams).
  void start();
  void stop() { timer_.stop(); }

  // Fresh neighborhood of `node` right now: in range, both radios up, not
  // separated by an active partition. Ascending node order. Used by the
  // fault hooks (reboot/rejoin/heal) to direct re-offers outside the poll.
  [[nodiscard]] std::vector<std::size_t> neighbors_of(std::size_t node);

 private:
  void poll();
  [[nodiscard]] bool in_contact(std::size_t a, std::size_t b,
                                mobility::Vec2 pa, sim::SimTime now) const;

  sim::Simulator& sim_;
  const mobility::MobilityModel& mobility_;
  const phy::Channel& channel_;
  std::size_t node_count_;
  double range_m_;
  sim::Duration poll_interval_;
  ContactFn on_contact_;
  phy::SpatialIndex index_;
  std::vector<std::vector<std::uint32_t>> prev_;  // sorted neighbor lists
  std::vector<std::uint32_t> candidates_;         // reused per query
  std::vector<std::uint32_t> current_;            // reused per node
  sim::PeriodicTimer timer_;
};

}  // namespace ag::dtn

#endif  // AG_DTN_CONTACT_MONITOR_H
