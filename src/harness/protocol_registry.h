// Maps Protocol enum values (and stable string names, for CLI/env
// selection) to factories that build one node's MulticastRouter. Adding a
// fourth protocol is a registration call plus a router implementing
// harness::MulticastRouter — no harness surgery.
#ifndef AG_HARNESS_PROTOCOL_REGISTRY_H
#define AG_HARNESS_PROTOCOL_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "harness/multicast_router.h"
#include "harness/scenario.h"
#include "mac/csma_mac.h"
#include "sim/simulator.h"

namespace ag::harness {

// Everything a protocol factory may draw on when building one node's
// router. `index` is the node index, used for per-node rng streams.
struct RouterContext {
  sim::Simulator& sim;
  mac::CsmaMac& mac;
  net::NodeId id;
  std::size_t index;
  const ScenarioConfig& config;
};

using RouterFactory =
    std::function<std::unique_ptr<MulticastRouter>(const RouterContext&)>;

struct ProtocolEntry {
  Protocol protocol;
  std::string name;     // stable string id ("maodv_gossip", ...)
  bool gossip_capable;  // whether Anonymous Gossip layers on top
  RouterFactory factory;
  // Core protocols form the historical five-way sweep all() returns —
  // the one the headline benches iterate, so their BENCH JSON stays
  // byte-identical as auxiliary protocols (flooding_gossip) register.
  // Non-core entries remain reachable by enum and by name.
  bool core{true};
};

class ProtocolRegistry {
 public:
  // The process-wide registry, pre-populated with the built-in protocols.
  // Reads are safe from worker threads; registration is not (do it at
  // startup, before experiments run).
  [[nodiscard]] static ProtocolRegistry& instance();

  // Registers a protocol; replaces an existing entry for the same enum
  // value (tests use this to shadow built-ins).
  void add(ProtocolEntry entry);

  // Throws std::out_of_range when the enum value was never registered.
  [[nodiscard]] const ProtocolEntry& entry(Protocol p) const;
  // nullptr when the name is unknown.
  [[nodiscard]] const ProtocolEntry* find(std::string_view name) const;
  // Parses a protocol name; throws std::invalid_argument naming the
  // known protocols when it does not resolve.
  [[nodiscard]] Protocol parse(std::string_view name) const;
  // Parses a comma-separated protocol list ("maodv,flooding"). Empty
  // segments are skipped; an empty result or any unknown name throws
  // std::invalid_argument listing the registered names — the bench CLIs
  // (`--protocols=`) fail fast with that message instead of depending on
  // downstream registry lookups.
  [[nodiscard]] std::vector<Protocol> parse_list(std::string_view names) const;
  [[nodiscard]] const std::string& name_of(Protocol p) const;
  // Core protocols in registration order (non-core entries excluded).
  [[nodiscard]] std::vector<Protocol> all() const;

  // Builds the router for one node running `ctx.config.protocol`.
  [[nodiscard]] std::unique_ptr<MulticastRouter> build(
      const RouterContext& ctx) const;

 private:
  ProtocolRegistry();  // registers the built-ins

  // "maodv, maodv_gossip, ..." — the list both error messages carry.
  [[nodiscard]] std::string known_names() const;

  std::vector<ProtocolEntry> entries_;
};

}  // namespace ag::harness

#endif  // AG_HARNESS_PROTOCOL_REGISTRY_H
