#include "harness/experiment.h"

#include <string>

namespace ag::harness {

SeriesPoint run_point(ScenarioConfig config, std::uint32_t seeds, double x) {
  SeriesPoint point;
  point.x = x;
  std::vector<double> all_received;
  double goodput_sum = 0.0;
  double ratio_sum = 0.0;
  std::uint64_t tx_sum = 0;
  for (std::uint32_t s = 1; s <= seeds; ++s) {
    stats::RunResult r = run_scenario(config.with_seed(s));
    for (double v : r.received_per_member()) all_received.push_back(v);
    goodput_sum += r.mean_goodput_pct();
    ratio_sum += r.delivery_ratio();
    tx_sum += r.totals.channel_transmissions;
    point.runs.push_back(std::move(r));
  }
  point.received = stats::summarize(all_received);
  if (seeds > 0) {
    point.mean_goodput_pct = goodput_sum / seeds;
    point.mean_delivery_ratio = ratio_sum / seeds;
    point.mean_transmissions = tx_sum / seeds;
  }
  return point;
}

std::uint32_t seeds_from_env(std::uint32_t fallback) {
  if (const char* env = std::getenv("AG_SEEDS")) {
    const int v = std::atoi(env);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  return fallback;
}

}  // namespace ag::harness
