#include "harness/experiment.h"

#include <utility>

#include "sim/env.h"

namespace ag::harness {

SeriesPoint aggregate_point(double x, std::vector<stats::RunResult> runs) {
  SeriesPoint point;
  point.x = x;
  std::vector<double> all_received;
  double goodput_sum = 0.0;
  double ratio_sum = 0.0;
  std::uint64_t tx_sum = 0;
  std::uint64_t deliveries_sum = 0;
  std::uint64_t down_sum = 0;
  std::uint64_t partition_sum = 0;
  std::uint64_t probes_sum = 0;
  std::uint64_t pool_hits_sum = 0;
  std::uint64_t pool_misses_sum = 0;
  std::uint64_t sessions_sum = 0;
  std::uint64_t served_sum = 0;
  std::uint64_t eligible_sum = 0;
  double users_ratio_sum = 0.0;
  std::uint64_t custody_stored_sum = 0;
  std::uint64_t custody_offers_sum = 0;
  std::uint64_t custody_accepted_sum = 0;
  std::uint64_t adversary_nodes_sum = 0;
  std::uint64_t adversary_absorbed_sum = 0;
  std::uint64_t adversary_poisoned_sum = 0;
  std::uint64_t isolations_sum = 0;
  std::uint64_t false_positives_sum = 0;
  std::uint64_t trust_filtered_sum = 0;
  double detection_latency_sum = 0.0;
  for (stats::RunResult& r : runs) {
    for (double v : r.received_per_member()) all_received.push_back(v);
    goodput_sum += r.mean_goodput_pct();
    ratio_sum += r.delivery_ratio();
    tx_sum += r.totals.channel_transmissions;
    deliveries_sum += r.totals.phy_deliveries;
    down_sum += r.totals.phy_suppressed_down;
    partition_sum += r.totals.phy_suppressed_partition;
    probes_sum += r.totals.table_probes;
    pool_hits_sum += r.totals.pool_hits;
    pool_misses_sum += r.totals.pool_misses;
    point.dtn_active = point.dtn_active || r.totals.dtn_active;
    sessions_sum += r.totals.sessions.sessions;
    served_sum += r.totals.sessions.users_served;
    eligible_sum += r.totals.sessions.user_eligible;
    users_ratio_sum += r.totals.sessions.served_ratio();
    custody_stored_sum += r.totals.custody_stored;
    custody_offers_sum += r.totals.custody_offers;
    custody_accepted_sum += r.totals.custody_accepted;
    point.adversary_active = point.adversary_active || r.totals.adversary_active;
    adversary_nodes_sum += r.totals.adversary_nodes;
    adversary_absorbed_sum += r.totals.adversary_absorbed;
    adversary_poisoned_sum += r.totals.adversary_poisoned;
    isolations_sum += r.totals.trust_isolations;
    false_positives_sum += r.totals.trust_false_positives;
    trust_filtered_sum += r.totals.trust_filtered;
    detection_latency_sum += r.totals.trust_detection_latency_s;
    point.runs.push_back(std::move(r));
  }
  point.received = stats::summarize(all_received);
  const std::size_t seeds = point.runs.size();
  if (seeds > 0) {
    point.mean_goodput_pct = goodput_sum / static_cast<double>(seeds);
    point.mean_delivery_ratio = ratio_sum / static_cast<double>(seeds);
    point.mean_transmissions = tx_sum / seeds;
    point.mean_deliveries = deliveries_sum / seeds;
    point.mean_suppressed_down = down_sum / seeds;
    point.mean_suppressed_partition = partition_sum / seeds;
    point.mean_table_probes = probes_sum / seeds;
    point.mean_pool_hits = pool_hits_sum / seeds;
    point.mean_pool_misses = pool_misses_sum / seeds;
    point.mean_sessions = sessions_sum / seeds;
    point.mean_users_served = served_sum / seeds;
    point.mean_user_eligible = eligible_sum / seeds;
    point.mean_users_ratio = users_ratio_sum / static_cast<double>(seeds);
    point.mean_custody_stored = custody_stored_sum / seeds;
    point.mean_custody_offers = custody_offers_sum / seeds;
    point.mean_custody_accepted = custody_accepted_sum / seeds;
    point.mean_adversary_nodes = adversary_nodes_sum / seeds;
    point.mean_adversary_absorbed = adversary_absorbed_sum / seeds;
    point.mean_adversary_poisoned = adversary_poisoned_sum / seeds;
    point.mean_trust_isolations =
        static_cast<double>(isolations_sum) / static_cast<double>(seeds);
    point.mean_trust_false_positives =
        static_cast<double>(false_positives_sum) / static_cast<double>(seeds);
    point.mean_trust_filtered = trust_filtered_sum / seeds;
    point.mean_detection_latency_s = detection_latency_sum / static_cast<double>(seeds);
  }
  return point;
}

SeriesPoint run_point(ScenarioConfig config, std::uint32_t seeds, double x) {
  std::vector<stats::RunResult> runs;
  runs.reserve(seeds);
  for (std::uint32_t s = 1; s <= seeds; ++s) {
    runs.push_back(run_scenario(config.with_seed(s)));
  }
  return aggregate_point(x, std::move(runs));
}

std::uint32_t seeds_from_env(std::uint32_t fallback) {
  // All AG_* knob reads live in sim/env.h (ag-lint rule `env`).
  return sim::env_positive_u32("AG_SEEDS", fallback, 1'000'000);
}

}  // namespace ag::harness
