// Per-shard checkpoint IO and the deterministic fault-injection hook for
// the crash-resumable sharded experiment driver (shard_driver.h).
//
// One shard = one (protocol, x, seed) cell of an ExperimentBuilder grid.
// A worker subprocess runs its cell and writes `shard_<index>.json`
// atomically (temp file + rename, see atomic_io.h), so any shard file
// that exists is complete: resume scans the shard directory, re-parses
// each file (a parse failure is treated as "not done" and re-run), and
// only missing or failed cells execute again.
//
// The serialization round-trips every stats::RunResult field exactly —
// u64 counters as decimal text, doubles at 17 significant digits (the
// shortest form guaranteed to reproduce the same IEEE double) — so a
// merged sharded run aggregates bit-identically to the in-process serial
// run and the BENCH JSON byte-compares clean (the repo's established
// equivalence discipline).
#ifndef AG_HARNESS_SHARD_H
#define AG_HARNESS_SHARD_H

#include <cstdint>
#include <optional>
#include <string>

#include "harness/experiment_builder.h"
#include "stats/run_result.h"

namespace ag::harness {

// "shard_<index>.json" — the checkpoint file a worker writes into the
// shard directory.
[[nodiscard]] std::string shard_file_name(std::size_t index);

// Writes one completed cell as a self-describing JSON checkpoint
// (atomically). `experiment` and `index` are embedded and verified on
// read, so a stale file from a different sweep can never be merged.
[[nodiscard]] bool write_shard_json(const std::string& path,
                                    const std::string& experiment,
                                    std::size_t index, const CellId& cell,
                                    const stats::RunResult& result);

// Parses a shard checkpoint back into the RunResult it recorded.
// Returns nullopt — with a human-readable reason in *error when non-null
// — on any IO/syntax/shape problem or an experiment/index mismatch.
[[nodiscard]] std::optional<stats::RunResult> read_shard_json(
    const std::string& path, const std::string& experiment, std::size_t index,
    std::string* error = nullptr);

// --- deterministic fault injection (AG_SHARD_FAULT) -----------------------
//
// AG_SHARD_FAULT=<mode>@<shard>[x<times>] makes the worker assigned to
// shard <shard> misbehave on attempts 1..<times> (default 1, so the
// first retry succeeds; use a large count to exhaust the retry budget):
//   crash    exit immediately with a nonzero status, work unwritten
//   hang     never finish (the supervisor's wall-clock timeout kills it)
//   corrupt  write a torn, unparseable shard file (deliberately
//            bypassing the atomic writer) and exit 0
// The hook is how tests and CI exercise every recovery path: retry with
// backoff, timeout kill, corrupt-output detection, graceful degradation
// to a failed_shards entry, and --resume after a crash.
struct ShardFault {
  enum class Mode : std::uint8_t { none, crash, hang, corrupt };
  Mode mode{Mode::none};
  std::size_t shard{0};
  std::uint32_t times{1};  // fires on attempts 1..times

  [[nodiscard]] bool matches(std::size_t index, std::uint32_t attempt) const {
    return mode != Mode::none && index == shard && attempt <= times;
  }
};

// Parses AG_SHARD_FAULT (warning on stderr + no fault for a malformed
// value, mirroring the AG_SEEDS contract).
[[nodiscard]] ShardFault shard_fault_from_env();

// Applies `fault` if it matches (crash/hang never return; corrupt writes
// the torn file at `shard_path` and exits 0); no-op otherwise. Called by
// the worker before it starts simulating, so a crash loses the whole
// attempt — exactly the failure resume must tolerate.
void maybe_inject_shard_fault(const ShardFault& fault, std::size_t index,
                              std::uint32_t attempt, const std::string& shard_path);

}  // namespace ag::harness

#endif  // AG_HARNESS_SHARD_H
