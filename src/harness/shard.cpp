#include "harness/shard.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include <unistd.h>

#include "harness/atomic_io.h"
#include "sim/env.h"
#include "sim/event_category.h"

namespace ag::harness {

namespace {

// ---------------------------------------------------------------------------
// number formatting: exact round-trips
// ---------------------------------------------------------------------------

// 17 significant digits reproduce any IEEE-754 double exactly through
// strtod, so the merged sharded run aggregates bit-identically to the
// serial one.
std::string f64_text(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// ---------------------------------------------------------------------------
// minimal JSON value + recursive-descent parser (shard checkpoints and
// nothing else — trusted shape, but must reject truncation/corruption
// cleanly so a torn file reads as "not done", never as bad data)
// ---------------------------------------------------------------------------

struct Json {
  enum class Type : std::uint8_t { null, boolean, number, string, array, object };
  Type type{Type::null};
  bool b{false};
  std::string text;  // number literal (verbatim) or decoded string
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;

  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& src) : s_{src} {}

  [[nodiscard]] std::optional<Json> parse(std::string* error) {
    std::optional<Json> v = value(0);
    if (!v) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      if (error != nullptr) *error = "trailing garbage at byte " + std::to_string(pos_);
      return std::nullopt;
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool fail(const std::string& what) {
    if (error_.empty()) error_ = what + " at byte " + std::to_string(pos_);
    return false;
  }

  [[nodiscard]] bool literal(const char* word) {
    const std::size_t n = std::strlen(word);
    if (s_.compare(pos_, n, word) != 0) return fail(std::string{"expected "} + word);
    pos_ += n;
    return true;
  }

  [[nodiscard]] std::optional<Json> value(int depth) {
    if (depth > 64) {
      (void)fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= s_.size()) {
      (void)fail("unexpected end of input");
      return std::nullopt;
    }
    Json out;
    const char c = s_[pos_];
    if (c == 'n') {
      if (!literal("null")) return std::nullopt;
      return out;
    }
    if (c == 't' || c == 'f') {
      out.type = Json::Type::boolean;
      out.b = c == 't';
      if (!literal(c == 't' ? "true" : "false")) return std::nullopt;
      return out;
    }
    if (c == '"') {
      out.type = Json::Type::string;
      if (!string_into(out.text)) return std::nullopt;
      return out;
    }
    if (c == '[') {
      out.type = Json::Type::array;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return out;
      }
      while (true) {
        std::optional<Json> item = value(depth + 1);
        if (!item) return std::nullopt;
        out.items.push_back(std::move(*item));
        skip_ws();
        if (pos_ >= s_.size()) {
          (void)fail("unterminated array");
          return std::nullopt;
        }
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == ']') {
          ++pos_;
          return out;
        }
        (void)fail("expected , or ] in array");
        return std::nullopt;
      }
    }
    if (c == '{') {
      out.type = Json::Type::object;
      ++pos_;
      skip_ws();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return out;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (pos_ >= s_.size() || s_[pos_] != '"' || !string_into(key)) {
          (void)fail("expected object key");
          return std::nullopt;
        }
        skip_ws();
        if (pos_ >= s_.size() || s_[pos_] != ':') {
          (void)fail("expected : after key");
          return std::nullopt;
        }
        ++pos_;
        std::optional<Json> item = value(depth + 1);
        if (!item) return std::nullopt;
        out.fields.emplace_back(std::move(key), std::move(*item));
        skip_ws();
        if (pos_ >= s_.size()) {
          (void)fail("unterminated object");
          return std::nullopt;
        }
        if (s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (s_[pos_] == '}') {
          ++pos_;
          return out;
        }
        (void)fail("expected , or } in object");
        return std::nullopt;
      }
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      out.type = Json::Type::number;
      const std::size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::strchr("+-.eE", s_[pos_]) != nullptr ||
              (s_[pos_] >= '0' && s_[pos_] <= '9'))) {
        ++pos_;
      }
      out.text = s_.substr(start, pos_ - start);
      return out;
    }
    (void)fail(std::string{"unexpected character '"} + c + "'");
    return std::nullopt;
  }

  [[nodiscard]] bool string_into(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // Only control characters are emitted this way by our writer.
          out += static_cast<char>(code);
          break;
        }
        default: return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  const std::string& s_;
  std::size_t pos_{0};
  std::string error_;
};

// ---------------------------------------------------------------------------
// RunResult <-> JSON via one shared field list
// ---------------------------------------------------------------------------

// Serializer visitor: appends `"name": value` pairs into an object body.
class FieldWriter {
 public:
  void u64(const char* name, const std::uint64_t& v) {
    sep();
    out_ += '"';
    out_ += name;
    out_ += "\": ";
    out_ += std::to_string(v);
  }
  void f64(const char* name, const double& v) {
    sep();
    out_ += '"';
    out_ += name;
    out_ += "\": ";
    out_ += f64_text(v);
  }
  void boolean(const char* name, const bool& v) {
    sep();
    out_ += '"';
    out_ += name;
    out_ += "\": ";
    out_ += v ? "true" : "false";
  }
  void u64_array(const char* name, const std::uint64_t* v, std::size_t n) {
    sep();
    out_ += '"';
    out_ += name;
    out_ += "\": [";
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) out_ += ',';
      out_ += std::to_string(v[i]);
    }
    out_ += ']';
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  void sep() {
    if (!out_.empty()) out_ += ", ";
  }
  std::string out_;
};

// Deserializer visitor over a parsed object: every field is mandatory,
// so a checkpoint from a different schema version reads as corrupt (and
// the shard simply re-runs) instead of merging half-garbage.
class FieldReader {
 public:
  explicit FieldReader(const Json& obj) : obj_{obj} {}

  void u64(const char* name, std::uint64_t& v) {
    const Json* j = need(name, Json::Type::number);
    if (j == nullptr) return;
    errno = 0;
    char* end = nullptr;
    v = std::strtoull(j->text.c_str(), &end, 10);
    if (errno != 0 || end == j->text.c_str() || *end != '\0') {
      fail(std::string{"bad u64 in "} + name);
    }
  }
  void f64(const char* name, double& v) {
    const Json* j = need(name, Json::Type::number);
    if (j == nullptr) return;
    char* end = nullptr;
    v = std::strtod(j->text.c_str(), &end);
    if (end == j->text.c_str() || *end != '\0') {
      fail(std::string{"bad double in "} + name);
    }
  }
  void boolean(const char* name, bool& v) {
    const Json* j = need(name, Json::Type::boolean);
    if (j != nullptr) v = j->b;
  }
  void u64_array(const char* name, std::uint64_t* v, std::size_t n) {
    const Json* j = need(name, Json::Type::array);
    if (j == nullptr) return;
    if (j->items.size() != n) {
      fail(std::string{name} + " length " + std::to_string(j->items.size()) +
           " != " + std::to_string(n));
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (j->items[i].type != Json::Type::number) {
        fail(std::string{"non-number in "} + name);
        return;
      }
      errno = 0;
      char* end = nullptr;
      v[i] = std::strtoull(j->items[i].text.c_str(), &end, 10);
      if (errno != 0 || end == j->items[i].text.c_str() || *end != '\0') {
        fail(std::string{"bad u64 in "} + name);
        return;
      }
    }
  }

  [[nodiscard]] bool ok() const { return error_.empty(); }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  const Json* need(const char* name, Json::Type type) {
    if (!error_.empty()) return nullptr;
    const Json* j = obj_.find(name);
    if (j == nullptr) {
      fail(std::string{"missing field "} + name);
      return nullptr;
    }
    if (j->type != type) {
      fail(std::string{"wrong type for "} + name);
      return nullptr;
    }
    return j;
  }
  void fail(std::string what) {
    if (error_.empty()) error_ = std::move(what);
  }

  const Json& obj_;
  std::string error_;
};

// The one field list both directions share. Adding a NetworkTotals
// counter? Add one line here and the checkpoint round-trips it.
template <typename V, typename Totals>
void visit_totals(Totals& t, V& v) {
  v.u64("channel_transmissions", t.channel_transmissions);
  v.u64("phy_deliveries", t.phy_deliveries);
  v.u64("phy_suppressed_down", t.phy_suppressed_down);
  v.u64("phy_suppressed_partition", t.phy_suppressed_partition);
  v.u64("sim_events", t.sim_events);
  v.u64_array("ev_scheduled", t.ev_scheduled, sim::kEventCategoryCount);
  v.u64_array("ev_executed", t.ev_executed, sim::kEventCategoryCount);
  v.u64("mac_backoff_slots_credited", t.mac_backoff_slots_credited);
  v.u64("mac_difs_elided", t.mac_difs_elided);
  v.u64("phy_rx_elided", t.phy_rx_elided);
  v.u64("phy_rx_coalesced", t.phy_rx_coalesced);
  v.u64("table_probes", t.table_probes);
  v.u64("pool_hits", t.pool_hits);
  v.u64("pool_misses", t.pool_misses);
  v.u64("mac_unicast", t.mac_unicast);
  v.u64("mac_broadcast", t.mac_broadcast);
  v.u64("mac_collisions", t.mac_collisions);
  v.u64("mac_queue_drops", t.mac_queue_drops);
  v.u64("rreq_originated", t.rreq_originated);
  v.u64("rerr_sent", t.rerr_sent);
  v.u64("grph_sent", t.grph_sent);
  v.u64("mact_sent", t.mact_sent);
  v.u64("data_forwarded", t.data_forwarded);
  v.u64("gossip_walks", t.gossip_walks);
  v.u64("gossip_replies", t.gossip_replies);
  v.u64("nm_updates", t.nm_updates);
  v.u64("repairs_started", t.repairs_started);
  v.u64("partitions", t.partitions);
  v.u64("leaders_elected", t.leaders_elected);
  v.u64("custody_stored", t.custody_stored);
  v.u64("custody_evicted_ttl", t.custody_evicted_ttl);
  v.u64("custody_evicted_capacity", t.custody_evicted_capacity);
  v.u64("custody_offers", t.custody_offers);
  v.u64("custody_offers_failed", t.custody_offers_failed);
  v.u64("custody_accepted", t.custody_accepted);
  v.u64("custody_duplicates", t.custody_duplicates);
  v.u64("adversary_nodes", t.adversary_nodes);
  v.u64("adversary_absorbed", t.adversary_absorbed);
  v.u64("adversary_poisoned", t.adversary_poisoned);
  v.u64("trust_isolations", t.trust_isolations);
  v.u64("trust_false_positives", t.trust_false_positives);
  v.u64("trust_filtered", t.trust_filtered);
  v.f64("trust_detection_latency_s", t.trust_detection_latency_s);
  v.boolean("adversary_active", t.adversary_active);
  v.u64("sessions", t.sessions.sessions);
  v.u64("users_served", t.sessions.users_served);
  v.u64("user_eligible", t.sessions.user_eligible);
  v.boolean("dtn_active", t.dtn_active);
}

template <typename V, typename Faults>
void visit_faults(Faults& f, V& v) {
  v.u64("crashes", f.crashes);
  v.u64("reboots", f.reboots);
  v.u64("leaves", f.leaves);
  v.u64("joins", f.joins);
  v.u64("partitions", f.partitions);
  v.u64("heals", f.heals);
  v.f64("node_down_s", f.node_down_s);
  v.f64("partitioned_s", f.partitioned_s);
}

std::string member_json(const stats::MemberResult& m) {
  FieldWriter w;
  std::uint64_t node = m.node.value();
  std::uint64_t received = m.received;
  std::uint64_t via_gossip = m.via_gossip;
  std::uint64_t replies_received = m.replies_received;
  std::uint64_t replies_useful = m.replies_useful;
  std::uint64_t eligible = m.eligible;
  double mean_latency_s = m.mean_latency_s;
  w.u64("node", node);
  w.u64("received", received);
  w.u64("via_gossip", via_gossip);
  w.u64("replies_received", replies_received);
  w.u64("replies_useful", replies_useful);
  w.u64("eligible", eligible);
  w.f64("mean_latency_s", mean_latency_s);
  return "{" + w.take() + "}";
}

bool member_from_json(const Json& obj, stats::MemberResult& m, std::string& error) {
  FieldReader r{obj};
  std::uint64_t node = 0;
  double mean_latency_s = 0.0;
  r.u64("node", node);
  r.u64("received", m.received);
  r.u64("via_gossip", m.via_gossip);
  r.u64("replies_received", m.replies_received);
  r.u64("replies_useful", m.replies_useful);
  r.u64("eligible", m.eligible);
  r.f64("mean_latency_s", mean_latency_s);
  if (!r.ok()) {
    error = r.error();
    return false;
  }
  m.node = net::NodeId{static_cast<std::uint32_t>(node)};
  m.mean_latency_s = mean_latency_s;
  return true;
}

}  // namespace

std::string shard_file_name(std::size_t index) {
  return "shard_" + std::to_string(index) + ".json";
}

bool write_shard_json(const std::string& path, const std::string& experiment,
                      std::size_t index, const CellId& cell,
                      const stats::RunResult& result) {
  std::ostringstream body;
  body << "{\n\"format\": 1,\n";
  body << "\"experiment\": \"" << experiment << "\",\n";
  body << "\"shard\": " << index << ",\n";
  body << "\"protocol\": \"" << cell.protocol << "\",\n";
  body << "\"x\": " << f64_text(cell.x) << ",\n";
  body << "\"seed\": " << cell.seed << ",\n";
  {
    FieldWriter w;
    std::uint64_t seed = result.seed;
    std::uint64_t packets_sent = result.packets_sent;
    w.u64("seed", seed);
    w.u64("packets_sent", packets_sent);
    body << "\"result\": {" << w.take() << ",\n";
  }
  body << "\"members\": [";
  for (std::size_t i = 0; i < result.members.size(); ++i) {
    body << (i > 0 ? ",\n" : "\n") << member_json(result.members[i]);
  }
  body << "],\n";
  {
    FieldWriter w;
    // visit_totals only mutates through the reader visitor; the writer
    // takes const refs, so the const_cast-free trick is a non-const
    // local copy.
    stats::NetworkTotals totals = result.totals;
    visit_totals(totals, w);
    body << "\"totals\": {" << w.take() << "},\n";
  }
  {
    FieldWriter w;
    stats::FaultStats faults = result.faults;
    visit_faults(faults, w);
    body << "\"faults\": {" << w.take() << "}\n";
  }
  body << "}\n}\n";
  const std::string text = body.str();
  return write_file_atomic(path, [&text](std::ostream& out) { out << text; });
}

std::optional<stats::RunResult> read_shard_json(const std::string& path,
                                                const std::string& experiment,
                                                std::size_t index,
                                                std::string* error) {
  const auto fail = [error](std::string what) -> std::optional<stats::RunResult> {
    if (error != nullptr) *error = std::move(what);
    return std::nullopt;
  };
  std::ifstream in{path};
  if (!in) return fail("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::string parse_error;
  JsonParser parser{text};
  std::optional<Json> root = parser.parse(&parse_error);
  if (!root || root->type != Json::Type::object) {
    return fail("parse error in " + path + ": " +
                (parse_error.empty() ? "not an object" : parse_error));
  }

  // Identity checks: the file must belong to this sweep and this cell.
  {
    FieldReader r{*root};
    std::uint64_t format = 0;
    std::uint64_t shard = 0;
    r.u64("format", format);
    r.u64("shard", shard);
    if (!r.ok()) return fail(path + ": " + r.error());
    if (format != 1) return fail(path + ": unknown format " + std::to_string(format));
    if (shard != index) {
      return fail(path + ": records shard " + std::to_string(shard) +
                  ", expected " + std::to_string(index));
    }
    const Json* exp = root->find("experiment");
    if (exp == nullptr || exp->type != Json::Type::string || exp->text != experiment) {
      return fail(path + ": experiment mismatch (want \"" + experiment + "\")");
    }
  }

  const Json* res = root->find("result");
  if (res == nullptr || res->type != Json::Type::object) {
    return fail(path + ": missing result object");
  }
  stats::RunResult out;
  {
    FieldReader r{*res};
    std::uint64_t seed = 0;
    std::uint64_t packets_sent = 0;
    r.u64("seed", seed);
    r.u64("packets_sent", packets_sent);
    if (!r.ok()) return fail(path + ": " + r.error());
    out.seed = seed;
    out.packets_sent = static_cast<std::uint32_t>(packets_sent);
  }
  const Json* members = res->find("members");
  if (members == nullptr || members->type != Json::Type::array) {
    return fail(path + ": missing members array");
  }
  out.members.reserve(members->items.size());
  for (const Json& item : members->items) {
    if (item.type != Json::Type::object) return fail(path + ": non-object member");
    stats::MemberResult m;
    std::string member_error;
    if (!member_from_json(item, m, member_error)) {
      return fail(path + ": member: " + member_error);
    }
    out.members.push_back(m);
  }
  const Json* totals = res->find("totals");
  if (totals == nullptr || totals->type != Json::Type::object) {
    return fail(path + ": missing totals object");
  }
  {
    FieldReader r{*totals};
    visit_totals(out.totals, r);
    if (!r.ok()) return fail(path + ": totals: " + r.error());
  }
  const Json* faults = res->find("faults");
  if (faults == nullptr || faults->type != Json::Type::object) {
    return fail(path + ": missing faults object");
  }
  {
    FieldReader r{*faults};
    visit_faults(out.faults, r);
    if (!r.ok()) return fail(path + ": faults: " + r.error());
  }
  return out;
}

ShardFault shard_fault_from_env() {
  const char* raw = sim::env_cstr("AG_SHARD_FAULT");
  ShardFault fault;
  if (raw == nullptr || *raw == '\0') return fault;
  const char* at = std::strchr(raw, '@');
  const auto warn = [raw] {
    std::fprintf(stderr,
                 "warning: ignoring invalid AG_SHARD_FAULT=\"%s\" (want "
                 "crash|hang|corrupt@<shard>[x<times>])\n",
                 raw);
    return ShardFault{};
  };
  if (at == nullptr) return warn();
  const std::string mode{raw, static_cast<std::size_t>(at - raw)};
  if (mode == "crash") fault.mode = ShardFault::Mode::crash;
  else if (mode == "hang") fault.mode = ShardFault::Mode::hang;
  else if (mode == "corrupt") fault.mode = ShardFault::Mode::corrupt;
  else return warn();
  const char* p = at + 1;
  if (*p < '0' || *p > '9') return warn();
  char* end = nullptr;
  errno = 0;
  fault.shard = static_cast<std::size_t>(std::strtoull(p, &end, 10));
  if (errno != 0 || end == p) return warn();
  if (*end == 'x') {
    const char* times = end + 1;
    if (*times < '0' || *times > '9') return warn();
    errno = 0;
    const unsigned long long n = std::strtoull(times, &end, 10);
    if (errno != 0 || *end != '\0' || n == 0 || n > 0xFFFFFFFFull) return warn();
    fault.times = static_cast<std::uint32_t>(n);
  } else if (*end != '\0') {
    return warn();
  }
  return fault;
}

void maybe_inject_shard_fault(const ShardFault& fault, std::size_t index,
                              std::uint32_t attempt, const std::string& shard_path) {
  if (!fault.matches(index, attempt)) return;
  switch (fault.mode) {
    case ShardFault::Mode::crash:
      std::fprintf(stderr, "[shard %zu] AG_SHARD_FAULT: crashing (attempt %u)\n",
                   index, attempt);
      std::_Exit(134);
    case ShardFault::Mode::hang:
      std::fprintf(stderr, "[shard %zu] AG_SHARD_FAULT: hanging (attempt %u)\n",
                   index, attempt);
      // Sleep until the supervisor's timeout kills us; pause() wakes only
      // on a signal, and SIGKILL needs no cooperation.
      while (true) pause();
    case ShardFault::Mode::corrupt: {
      std::fprintf(stderr,
                   "[shard %zu] AG_SHARD_FAULT: writing torn output (attempt %u)\n",
                   index, attempt);
      // Deliberately bypass the atomic writer: this simulates the torn
      // file a crash mid-write would have produced without it.
      std::ofstream torn{shard_path, std::ios::trunc};
      torn << "{\"format\": 1, \"experiment\": \"torn";
      torn.flush();
      std::_Exit(0);
    }
    case ShardFault::Mode::none: break;
  }
}

}  // namespace ag::harness
