// Full description of one simulation run — defaults reproduce the paper's
// environment (section 5.1): 200x200 m, 40 nodes, 1/3 members, random
// waypoint with pause U(0,80) s, 2 Mbps 802.11, 600 s runs, CBR source.
#ifndef AG_HARNESS_SCENARIO_H
#define AG_HARNESS_SCENARIO_H

#include <cstdint>
#include <stdexcept>
#include <string>

#include "aodv/params.h"
#include "app/workload.h"
#include "dtn/params.h"
#include "faults/fault_plan.h"
#include "gossip/params.h"
#include "session/session_params.h"
#include "mac/mac_params.h"
#include "maodv/params.h"
#include "mobility/random_waypoint.h"
#include "odmrp/params.h"
#include "phy/phy_params.h"

namespace ag::harness {

enum class Protocol : std::uint8_t {
  maodv,         // bare MAODV (the paper's baseline curves)
  maodv_gossip,  // MAODV + Anonymous Gossip (the paper's contribution)
  flooding,      // blind flooding (related-work comparison, ablations)
  odmrp,         // bare ODMRP mesh (paper section 5.5's next target)
  odmrp_gossip,  // ODMRP + Anonymous Gossip over the mesh
  // Flooding + Anonymous Gossip ("gossip over flood"): the flood router
  // grows just enough adapter surface (heard-neighbor links, reverse-path
  // hints) for gossip walks and replies to ride on it. Registered outside
  // the core set — ProtocolRegistry::all() excludes it, so the headline
  // benches keep their historical five-protocol sweeps byte-identical.
  flooding_gossip,
};

struct ScenarioConfig {
  std::uint64_t seed{1};
  Protocol protocol{Protocol::maodv_gossip};

  std::size_t node_count{40};
  double member_fraction{1.0 / 3.0};

  mobility::RandomWaypointConfig waypoint{};  // 200x200 m, pause U(0,80) s
  phy::PhyParams phy{};                       // range set per experiment
  mac::MacParams mac{};
  aodv::AodvParams aodv{};
  maodv::MaodvParams maodv{};
  odmrp::OdmrpParams odmrp{};
  gossip::GossipParams gossip{};
  app::Workload workload{};
  // Fault & churn injection: scripted events plus the synthesizable spec
  // (churn rate, crash fraction, partition duration). Empty by default —
  // fault hooks are zero-cost when unused.
  faults::FaultConfig faults{};
  // DTN custody tier (store-and-forward over any protocol) and the
  // user-session layer ("users served" accounting). Both off by default:
  // without them the stack built is exactly the pre-custody one, and the
  // AG_CUSTODY=off environment hatch forces custody off regardless.
  dtn::CustodyParams custody{};
  session::SessionParams sessions{};
  // Trust-based detection & isolation (the defensive half of the
  // adversary axis; the offensive half lives on faults.spec/plan). Off by
  // default; AG_ADVERSARY=off forces the whole axis off regardless.
  faults::TrustParams trust{};

  sim::SimTime duration{sim::SimTime::seconds(600.0)};
  // Members join within [0, join_spread) of the start ("all the nodes
  // joined the group at the beginning of the simulation").
  sim::Duration join_spread{sim::Duration::seconds(5.0)};

  // Group size implied by member_fraction, floored at 2 (a source plus at
  // least one receiver). Rejects configurations that used to be clamped
  // silently: fractions outside (0, 1] and groups larger than the network.
  [[nodiscard]] std::size_t member_count() const {
    if (!(member_fraction > 0.0) || member_fraction > 1.0) {
      throw std::invalid_argument(
          "ScenarioConfig: member_fraction must be in (0, 1], got " +
          std::to_string(member_fraction));
    }
    auto k = static_cast<std::size_t>(static_cast<double>(node_count) * member_fraction + 0.5);
    if (k < 2) k = 2;
    if (k > node_count) {
      throw std::invalid_argument(
          "ScenarioConfig: member_count " + std::to_string(k) +
          " exceeds node_count " + std::to_string(node_count) +
          " (node_count must be at least 2)");
    }
    return k;
  }

  // Convenience setters used by benches/examples.
  ScenarioConfig& with_range(double meters) {
    phy.transmission_range_m = meters;
    return *this;
  }
  ScenarioConfig& with_max_speed(double mps) {
    waypoint.max_speed_mps = mps;
    return *this;
  }
  ScenarioConfig& with_nodes(std::size_t n) {
    node_count = n;
    return *this;
  }
  ScenarioConfig& with_protocol(Protocol p) {
    protocol = p;
    gossip.enabled = (p == Protocol::maodv_gossip || p == Protocol::odmrp_gossip ||
                      p == Protocol::flooding_gossip);
    return *this;
  }
  ScenarioConfig& with_seed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  ScenarioConfig& with_custody(std::uint32_t max_messages,
                               std::uint32_t gateway_count = 0) {
    custody.enabled = true;
    custody.max_messages = max_messages;
    custody.gateway_count = gateway_count;
    return *this;
  }
  ScenarioConfig& with_sessions(std::uint32_t per_node, double duty = 1.0) {
    sessions.per_node = per_node;
    sessions.duty = duty;
    return *this;
  }
  ScenarioConfig& with_adversaries(double fraction,
                                   faults::AdversaryMode mode =
                                       faults::AdversaryMode::blackhole) {
    faults.spec.adversary_fraction = fraction;
    faults.spec.adversary_mode = mode;
    return *this;
  }
  ScenarioConfig& with_trust(bool enabled = true) {
    trust.enabled = enabled;
    return *this;
  }
};

}  // namespace ag::harness

#endif  // AG_HARNESS_SCENARIO_H
