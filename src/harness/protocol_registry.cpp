#include "harness/protocol_registry.h"

#include <stdexcept>
#include <utility>

#include "flood/flood_router.h"
#include "maodv/maodv_router.h"
#include "odmrp/odmrp_router.h"

namespace ag::harness {

namespace {

std::unique_ptr<MulticastRouter> make_maodv(const RouterContext& ctx) {
  return std::make_unique<maodv::MaodvRouter>(
      ctx.sim, ctx.mac, ctx.id, ctx.config.aodv, ctx.config.maodv,
      ctx.sim.rng().stream("aodv", ctx.index));
}

std::unique_ptr<MulticastRouter> make_odmrp(const RouterContext& ctx) {
  return std::make_unique<odmrp::OdmrpRouter>(
      ctx.sim, ctx.mac, ctx.id, ctx.config.aodv, ctx.config.odmrp,
      ctx.sim.rng().stream("aodv", ctx.index));
}

std::unique_ptr<MulticastRouter> make_flood(const RouterContext& ctx) {
  return std::make_unique<flood::FloodRouter>(ctx.mac, ctx.id,
                                              ctx.config.maodv.data_ttl);
}

std::unique_ptr<MulticastRouter> make_flood_gossip(const RouterContext& ctx) {
  return std::make_unique<flood::FloodRouter>(ctx.mac, ctx.id,
                                              ctx.config.maodv.data_ttl,
                                              flood::FloodRouter::kDedupCapacity,
                                              /*gossip_links=*/true);
}

}  // namespace

ProtocolRegistry::ProtocolRegistry() {
  add({Protocol::maodv, "maodv", /*gossip_capable=*/false, make_maodv});
  add({Protocol::maodv_gossip, "maodv_gossip", /*gossip_capable=*/true,
       make_maodv});
  add({Protocol::flooding, "flooding", /*gossip_capable=*/false, make_flood});
  add({Protocol::odmrp, "odmrp", /*gossip_capable=*/false, make_odmrp});
  add({Protocol::odmrp_gossip, "odmrp_gossip", /*gossip_capable=*/true,
       make_odmrp});
  add({Protocol::flooding_gossip, "flooding_gossip", /*gossip_capable=*/true,
       make_flood_gossip, /*core=*/false});
}

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry;
  return registry;
}

void ProtocolRegistry::add(ProtocolEntry entry) {
  for (ProtocolEntry& e : entries_) {
    if (e.protocol == entry.protocol) {
      e = std::move(entry);
      return;
    }
  }
  entries_.push_back(std::move(entry));
}

const ProtocolEntry& ProtocolRegistry::entry(Protocol p) const {
  for (const ProtocolEntry& e : entries_) {
    if (e.protocol == p) return e;
  }
  throw std::out_of_range("unregistered Protocol enum value " +
                          std::to_string(static_cast<int>(p)));
}

const ProtocolEntry* ProtocolRegistry::find(std::string_view name) const {
  for (const ProtocolEntry& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::string ProtocolRegistry::known_names() const {
  std::string known;
  for (const ProtocolEntry& e : entries_) {
    if (!known.empty()) known += ", ";
    known += e.name;
  }
  return known;
}

Protocol ProtocolRegistry::parse(std::string_view name) const {
  if (const ProtocolEntry* e = find(name)) return e->protocol;
  throw std::invalid_argument("unknown protocol \"" + std::string(name) +
                              "\" (known: " + known_names() + ")");
}

std::vector<Protocol> ProtocolRegistry::parse_list(std::string_view names) const {
  std::vector<Protocol> out;
  std::size_t start = 0;
  while (start <= names.size()) {
    const std::size_t comma = names.find(',', start);
    const std::string_view name =
        names.substr(start, comma == std::string_view::npos ? comma : comma - start);
    if (!name.empty()) out.push_back(parse(name));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (out.empty()) {
    throw std::invalid_argument("empty protocol list (known: " + known_names() + ")");
  }
  return out;
}

const std::string& ProtocolRegistry::name_of(Protocol p) const {
  return entry(p).name;
}

std::vector<Protocol> ProtocolRegistry::all() const {
  std::vector<Protocol> out;
  out.reserve(entries_.size());
  for (const ProtocolEntry& e : entries_) {
    if (e.core) out.push_back(e.protocol);
  }
  return out;
}

std::unique_ptr<MulticastRouter> ProtocolRegistry::build(
    const RouterContext& ctx) const {
  return entry(ctx.config.protocol).factory(ctx);
}

}  // namespace ag::harness
