// Atomic file output: write to `<path>.tmp.<pid>`, then rename onto the
// final path on commit. POSIX rename is atomic within a filesystem, so a
// reader (or a resumed sharded run scanning for completed shard files)
// can never observe a truncated or half-written file — either the old
// content is there, or the complete new content is. Every BENCH_*.json /
// CSV emitter in the tree writes through this, so an interrupted bench
// leaves at worst a stale `.tmp.*` file behind, never a torn output.
#ifndef AG_HARNESS_ATOMIC_IO_H
#define AG_HARNESS_ATOMIC_IO_H

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

#include <unistd.h>

namespace ag::harness {

class AtomicFile {
 public:
  explicit AtomicFile(std::string path)
      : path_{std::move(path)},
        tmp_path_{path_ + ".tmp." + std::to_string(::getpid())},
        out_{tmp_path_, std::ios::trunc} {}

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  ~AtomicFile() {
    // Not committed (error path or exception unwind): drop the partial
    // temp file so nothing mistakes it for output.
    if (!committed_) {
      out_.close();
      std::remove(tmp_path_.c_str());
    }
  }

  [[nodiscard]] std::ofstream& stream() { return out_; }
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  // Flush + close + rename over the final path. Returns false (and
  // removes the temp file) if any write failed or the rename did.
  [[nodiscard]] bool commit() {
    out_.flush();
    const bool wrote_ok = static_cast<bool>(out_);
    out_.close();
    if (!wrote_ok || std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
      std::remove(tmp_path_.c_str());
      return false;
    }
    committed_ = true;
    return true;
  }

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream out_;
  bool committed_{false};
};

// Convenience wrapper: `fill` writes the whole payload; returns true only
// when every write and the final rename succeeded.
[[nodiscard]] inline bool write_file_atomic(
    const std::string& path, const std::function<void(std::ostream&)>& fill) {
  AtomicFile file{path};
  if (!file.ok()) return false;
  fill(file.stream());
  return file.commit();
}

}  // namespace ag::harness

#endif  // AG_HARNESS_ATOMIC_IO_H
