// Fluent experiment API over the protocol registry: declare a parameter
// sweep once, run it for any set of protocols across seeds — serially or
// on a thread pool (each Network is self-contained, so seeds parallelize
// freely) — and emit the results as a table, CSV, or machine-readable
// JSON (the BENCH_*.json files).
//
//   auto r = Experiment::sweep("range_m", {45, 55, 65, 75, 85})
//                .protocols({Protocol::maodv_gossip, Protocol::maodv})
//                .seeds(10)
//                .parallel()
//                .run();
//   r.print("Figure 2", "range(m)");
//   r.write_json("BENCH_fig2.json");
#ifndef AG_HARNESS_EXPERIMENT_BUILDER_H
#define AG_HARNESS_EXPERIMENT_BUILDER_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/figure.h"
#include "harness/scenario.h"

namespace ag::harness {

struct ExperimentResult {
  std::string name;       // experiment id ("fig2", "ablation_gossip_rate")
  std::string param;      // swept parameter name
  std::uint32_t seeds{0};
  std::vector<FigureSeries> series;  // one per protocol, registry names

  // Table and CSV output reuse the figure helpers.
  void print(const std::string& title, const std::string& x_label) const;
  [[nodiscard]] bool write_csv(const std::string& path) const;
  // Machine-readable series: {"experiment", "param", "seeds", "series":
  // [{"name", "points": [{"x", received stats, delivery, goodput, tx}]}]}.
  [[nodiscard]] bool write_json(const std::string& path) const;
};

class ExperimentBuilder {
 public:
  using ApplyFn = std::function<void(ScenarioConfig&, double)>;

  // Sweep a named ScenarioConfig knob: "range_m", "max_speed_mps",
  // "node_count", "member_fraction", "gossip_interval_ms", or a fault
  // axis — "churn_per_min", "crash_fraction", "partition_s". Unknown
  // names throw std::invalid_argument immediately.
  ExperimentBuilder(std::string param, std::vector<double> values);
  // Sweep an arbitrary knob: `apply(config, x)` mutates the config.
  ExperimentBuilder(std::string param, std::vector<double> values, ApplyFn apply);

  ExperimentBuilder& base(ScenarioConfig config);
  ExperimentBuilder& protocols(std::vector<Protocol> protocols);
  // Seeds per point; when never set (or set to 0), run() falls back to
  // seeds_from_env().
  ExperimentBuilder& seeds(std::uint32_t n);
  // Run seeds/points/protocols on `threads` workers (0 = one per
  // hardware thread). Results are aggregated in seed order, so parallel
  // runs are bit-identical to serial ones.
  ExperimentBuilder& parallel(unsigned threads = 0);
  ExperimentBuilder& name(std::string experiment_name);
  // Progress callback, invoked (from the coordinating thread in serial
  // runs, worker threads in parallel ones) after each completed seed run.
  ExperimentBuilder& on_progress(std::function<void(std::size_t done, std::size_t total)> fn);

  [[nodiscard]] ExperimentResult run() const;

 private:
  std::string param_;
  std::vector<double> values_;
  ApplyFn apply_;
  ScenarioConfig base_{};
  std::vector<Protocol> protocols_;
  std::uint32_t seeds_{0};  // 0 = unset; resolved via seeds_from_env() in run()
  unsigned threads_{1};
  std::string name_{"experiment"};
  std::function<void(std::size_t, std::size_t)> progress_;
};

// Entry point matching the fluent style: Experiment::sweep(...).run().
class Experiment {
 public:
  [[nodiscard]] static ExperimentBuilder sweep(std::string param,
                                               std::vector<double> values) {
    return ExperimentBuilder{std::move(param), std::move(values)};
  }
  [[nodiscard]] static ExperimentBuilder sweep(std::string param,
                                               std::vector<double> values,
                                               ExperimentBuilder::ApplyFn apply) {
    return ExperimentBuilder{std::move(param), std::move(values), std::move(apply)};
  }
};

}  // namespace ag::harness

#endif  // AG_HARNESS_EXPERIMENT_BUILDER_H
