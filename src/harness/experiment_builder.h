// Fluent experiment API over the protocol registry: declare a parameter
// sweep once, run it for any set of protocols across seeds — serially or
// on a thread pool (each Network is self-contained, so seeds parallelize
// freely) — and emit the results as a table, CSV, or machine-readable
// JSON (the BENCH_*.json files).
//
//   auto r = Experiment::sweep("range_m", {45, 55, 65, 75, 85})
//                .protocols({Protocol::maodv_gossip, Protocol::maodv})
//                .seeds(10)
//                .parallel()
//                .run();
//   r.print("Figure 2", "range(m)");
//   r.write_json("BENCH_fig2.json");
//
// The sweep also decomposes into shards — one per (protocol, x, seed)
// cell, indexed in slot order — for the crash-resumable multi-process
// driver (shard_driver.h): `cell_count()/cell_id()/run_cell()` expose the
// grid, and `assemble()` folds per-cell results (with holes for failed
// shards) into the same ExperimentResult `run()` produces, bit-identical
// when every cell is present.
#ifndef AG_HARNESS_EXPERIMENT_BUILDER_H
#define AG_HARNESS_EXPERIMENT_BUILDER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "harness/figure.h"
#include "harness/scenario.h"

namespace ag::harness {

// Identity of one shardable sweep cell: cell index i maps to protocol
// p = i / (values * seeds), value v = (i / seeds) % values, seed
// s = i % seeds + 1 — the exact slot order run() aggregates in.
struct CellId {
  std::string protocol;  // registry name
  double x{0.0};         // swept parameter value
  std::uint32_t seed{0};
};

// One shard that exhausted its retry budget: recorded in the merged
// BENCH JSON's `failed_shards` section instead of aborting the sweep.
struct FailedShard {
  std::size_t shard{0};
  CellId cell;
  std::uint32_t attempts{0};
  std::string reason;  // "exit 134", "timeout after 5 s", "corrupt output"
};

// Sharded-run accounting carried into ExperimentResult. The JSON section
// it feeds is emitted ONLY when shards actually failed: a sharded run
// whose every cell eventually completed (retries included) stays
// byte-identical to the in-process serial run — the repo's equivalence
// discipline. Retry counts for healthy runs live in the manifest journal.
struct ShardingInfo {
  std::uint64_t shards{0};   // cells in the decomposition
  std::uint64_t retried{0};  // attempts beyond the first, across shards
  std::vector<FailedShard> failed;
};

struct ExperimentResult {
  std::string name;       // experiment id ("fig2", "ablation_gossip_rate")
  std::string param;      // swept parameter name
  std::uint32_t seeds{0};
  std::vector<FigureSeries> series;  // one per protocol, registry names
  ShardingInfo sharding;  // empty `failed` on in-process and healthy runs

  // Table and CSV output reuse the figure helpers (CSV lands atomically:
  // temp file + rename).
  void print(const std::string& title, const std::string& x_label) const;
  [[nodiscard]] bool write_csv(const std::string& path) const;
  // Machine-readable series: {"experiment", "param", "seeds", "series":
  // [{"name", "points": [{"x", received stats, delivery, goodput, tx}]}]}.
  // Written atomically (temp file + rename) so an interrupted bench can
  // never leave a truncated BENCH_*.json behind. A trailing "sharding"
  // object (shards/retried/failed counts + per-shard entries) appears
  // only when sharding.failed is non-empty.
  [[nodiscard]] bool write_json(const std::string& path) const;
};

class ExperimentBuilder {
 public:
  using ApplyFn = std::function<void(ScenarioConfig&, double)>;

  // Sweep a named ScenarioConfig knob: "range_m", "max_speed_mps",
  // "node_count", "member_fraction", "gossip_interval_ms", or a fault
  // axis — "churn_per_min", "crash_fraction", "partition_s". Unknown
  // names throw std::invalid_argument immediately.
  ExperimentBuilder(std::string param, std::vector<double> values);
  // Sweep an arbitrary knob: `apply(config, x)` mutates the config.
  ExperimentBuilder(std::string param, std::vector<double> values, ApplyFn apply);

  ExperimentBuilder& base(ScenarioConfig config);
  ExperimentBuilder& protocols(std::vector<Protocol> protocols);
  // Seeds per point; when never set (or set to 0), run() falls back to
  // seeds_from_env().
  ExperimentBuilder& seeds(std::uint32_t n);
  // Run seeds/points/protocols on `threads` workers (0 = one per
  // hardware thread). Results are aggregated in seed order, so parallel
  // runs are bit-identical to serial ones.
  ExperimentBuilder& parallel(unsigned threads = 0);
  ExperimentBuilder& name(std::string experiment_name);
  // Progress callback, invoked (from the coordinating thread in serial
  // runs, worker threads in parallel ones) after each completed seed run.
  ExperimentBuilder& on_progress(std::function<void(std::size_t done, std::size_t total)> fn);

  [[nodiscard]] const std::string& experiment_name() const { return name_; }

  // --- shard decomposition (one cell per protocol × value × seed) ---
  // Cells are indexed in the slot order run() aggregates in, so a merged
  // sharded run reproduces the serial result bit for bit.
  [[nodiscard]] std::size_t cell_count() const;
  [[nodiscard]] CellId cell_id(std::size_t index) const;
  // Runs exactly one cell in-process (the worker half of the sharded
  // driver). Throws std::out_of_range on a bad index.
  [[nodiscard]] stats::RunResult run_cell(std::size_t index) const;
  // Folds per-cell results (indexed by cell, holes = failed shards whose
  // seeds are dropped from their point's aggregate) into the result
  // run() would produce. With every cell present and `sharding.failed`
  // empty, the output is bit-identical to run().
  [[nodiscard]] ExperimentResult assemble(
      std::vector<std::optional<stats::RunResult>> cells,
      ShardingInfo sharding = {}) const;

  // In-process run. Polls harness::interrupt_requested() between jobs:
  // on SIGINT/SIGTERM the workers stop claiming cells and run() returns
  // early — callers must check the flag before writing outputs.
  [[nodiscard]] ExperimentResult run() const;

 private:
  [[nodiscard]] std::vector<Protocol> resolved_protocols() const;
  [[nodiscard]] std::uint32_t resolved_seeds() const;
  [[nodiscard]] ScenarioConfig cell_config(std::size_t index) const;

  std::string param_;
  std::vector<double> values_;
  ApplyFn apply_;
  ScenarioConfig base_{};
  std::vector<Protocol> protocols_;
  std::uint32_t seeds_{0};  // 0 = unset; resolved via seeds_from_env() in run()
  unsigned threads_{1};
  std::string name_{"experiment"};
  std::function<void(std::size_t, std::size_t)> progress_;
};

// Entry point matching the fluent style: Experiment::sweep(...).run().
class Experiment {
 public:
  [[nodiscard]] static ExperimentBuilder sweep(std::string param,
                                               std::vector<double> values) {
    return ExperimentBuilder{std::move(param), std::move(values)};
  }
  [[nodiscard]] static ExperimentBuilder sweep(std::string param,
                                               std::vector<double> values,
                                               ExperimentBuilder::ApplyFn apply) {
    return ExperimentBuilder{std::move(param), std::move(values), std::move(apply)};
  }
};

}  // namespace ag::harness

#endif  // AG_HARNESS_EXPERIMENT_BUILDER_H
