// Table-style output for the paper's figures: one row per x value with
// the average and min–max error-bar bounds per protocol, matching what
// the paper plots ("each data point ... average of the number of packets
// received by each group member", error bars = range across receivers).
#ifndef AG_HARNESS_FIGURE_H
#define AG_HARNESS_FIGURE_H

#include <string>
#include <vector>

#include "harness/experiment.h"

namespace ag::harness {

struct FigureSeries {
  std::string name;  // "Gossip" / "Maodv"
  std::vector<SeriesPoint> points;
};

// Prints:
//   == Figure N: <title> ==
//   <x_label>  Gossip(avg min max)  Maodv(avg min max)
void print_figure(const std::string& title, const std::string& x_label,
                  const std::vector<FigureSeries>& series);

// Writes the same data as CSV (path is created/truncated); columns:
// x, <name>_avg, <name>_min, <name>_max, ... Returns false on IO failure.
bool write_figure_csv(const std::string& path, const std::vector<FigureSeries>& series);

}  // namespace ag::harness

#endif  // AG_HARNESS_FIGURE_H
