// Supervisor for the sharded experiment driver: spawns bench workers
// (`exe --shard=<i>`), enforces wall-clock timeouts, retries with
// exponential backoff, journals every transition into an append-only
// manifest, and degrades exhausted shards to failed_shards entries
// instead of aborting the sweep.
//
// ag-lint: allow-file(determinism, supervisor wall clock drives subprocess timeouts and retry backoff, never simulation state)
#include "harness/shard_driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/interrupt.h"
#include "harness/shard.h"
#include "sim/env.h"

namespace ag::harness {

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kDefaultTimeoutS = 600;
constexpr std::uint32_t kDefaultMaxAttempts = 3;
constexpr std::uint32_t kDefaultBackoffMs = 250;
constexpr std::uint32_t kBackoffCapMs = 30'000;

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

// Append-only journal of shard lifecycle events: one JSON object per
// line, flushed per event, so a killed supervisor leaves an accurate
// history for --resume (and for the tests asserting recovery paths).
class Manifest {
 public:
  Manifest(const std::string& dir, bool truncate)
      : out_{dir + "/manifest.jsonl",
             truncate ? std::ios::trunc : std::ios::app} {}

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void line(const std::string& text) {
    out_ << text << '\n';
    out_.flush();
  }

 private:
  std::ofstream out_;
};

struct Attempt {
  std::size_t index{0};
  std::uint32_t attempt{1};          // 1-based
  Clock::time_point ready{};         // backoff gate (pending only)
};

struct Running {
  std::size_t index{0};
  std::uint32_t attempt{1};
  pid_t pid{-1};
  Clock::time_point deadline{};
  bool timed_out{false};
};

pid_t spawn_worker(const ShardDriverOptions& opts, std::size_t index,
                   std::uint32_t attempt) {
  std::vector<std::string> args;
  args.push_back(opts.exe);
  args.insert(args.end(), opts.worker_args.begin(), opts.worker_args.end());
  args.push_back("--shard=" + std::to_string(index));
  args.push_back("--shard-dir=" + opts.shard_dir);
  args.push_back("--shard-attempt=" + std::to_string(attempt));

  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    // execvp so a PATH-resolved argv[0] (no slash) still re-invokes the
    // same binary; with a slash it behaves exactly like execv.
    ::execvp(argv[0], argv.data());
    // exec only returns on failure; an exotic exe path must not fall
    // back into the supervisor's code.
    std::fprintf(stderr, "shard worker: cannot exec %s\n", argv[0]);
    std::_Exit(127);
  }
  return pid;
}

std::uint32_t resolved_or(std::uint32_t value, const char* env_name,
                          std::uint32_t fallback, long max_value) {
  if (value != 0) return value;
  return sim::env_positive_u32(env_name, fallback, max_value);
}

}  // namespace

ShardRunReport run_shards(const ExperimentBuilder& builder,
                          const ShardDriverOptions& options) {
  ShardDriverOptions opts = options;
  if (opts.shard_dir.empty()) {
    opts.shard_dir = "shards_" + builder.experiment_name();
  }
  opts.timeout_s =
      resolved_or(opts.timeout_s, "AG_SHARD_TIMEOUT", kDefaultTimeoutS, 86'400);
  opts.max_attempts =
      resolved_or(opts.max_attempts, "AG_SHARD_RETRIES", kDefaultMaxAttempts, 100);
  opts.backoff_ms =
      resolved_or(opts.backoff_ms, "AG_SHARD_BACKOFF_MS", kDefaultBackoffMs,
                  static_cast<long>(kBackoffCapMs));
  unsigned concurrency = opts.concurrency != 0
                             ? opts.concurrency
                             : sim::env_positive_u32("AG_SHARDS",
                                                     std::max(1u, std::thread::hardware_concurrency()),
                                                     4096);

  const std::size_t total = builder.cell_count();
  const std::string& experiment = builder.experiment_name();
  concurrency = static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, concurrency), std::max<std::size_t>(total, 1)));

  std::error_code ec;
  fs::create_directories(opts.shard_dir, ec);
  if (ec) {
    throw std::runtime_error("shard driver: cannot create shard dir " +
                             opts.shard_dir + ": " + ec.message());
  }
  if (!opts.resume && !opts.merge_only) {
    // Fresh run: stale checkpoints from an earlier (possibly different)
    // sweep must not be mistaken for completed work.
    for (const fs::directory_entry& entry : fs::directory_iterator(opts.shard_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("shard_", 0) == 0 || name == "manifest.jsonl") {
        fs::remove(entry.path(), ec);
      }
    }
  }

  Manifest manifest{opts.shard_dir, /*truncate=*/!opts.resume && !opts.merge_only};
  if (!manifest.ok()) {
    throw std::runtime_error("shard driver: cannot open manifest in " + opts.shard_dir);
  }
  manifest.line("{\"event\": \"plan\", \"experiment\": \"" + json_escaped(experiment) +
                "\", \"shards\": " + std::to_string(total) +
                ", \"concurrency\": " + std::to_string(concurrency) +
                ", \"timeout_s\": " + std::to_string(opts.timeout_s) +
                ", \"max_attempts\": " + std::to_string(opts.max_attempts) +
                ", \"resume\": " + (opts.resume ? "true" : "false") +
                ", \"merge_only\": " + (opts.merge_only ? "true" : "false") + "}");

  ShardRunReport report;
  report.results.resize(total);
  report.sharding.shards = total;

  const auto record_failure = [&](std::size_t index, std::uint32_t attempts,
                                  const std::string& reason) {
    FailedShard failed;
    failed.shard = index;
    failed.cell = builder.cell_id(index);
    failed.attempts = attempts;
    failed.reason = reason;
    report.sharding.failed.push_back(std::move(failed));
    manifest.line("{\"event\": \"failed\", \"shard\": " + std::to_string(index) +
                  ", \"attempts\": " + std::to_string(attempts) +
                  ", \"reason\": \"" + json_escaped(reason) + "\"}");
    if (!opts.quiet) {
      std::fprintf(stderr, "  [shard %zu FAILED after %u attempt%s: %s]\n", index,
                   attempts, attempts == 1 ? "" : "s", reason.c_str());
    }
  };

  // Phase 1: satisfy cells from existing checkpoints (resume/merge).
  std::vector<Attempt> pending;
  pending.reserve(total);
  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < total; ++i) {
    const std::string path = opts.shard_dir + "/" + shard_file_name(i);
    if (opts.resume || opts.merge_only) {
      std::string error;
      std::optional<stats::RunResult> prior = read_shard_json(path, experiment, i, &error);
      if (prior.has_value()) {
        report.results[i] = std::move(prior);
        ++report.reused;
        manifest.line("{\"event\": \"reused\", \"shard\": " + std::to_string(i) + "}");
        continue;
      }
      if (opts.merge_only) {
        record_failure(i, 0, "missing or unreadable checkpoint (merge-only): " + error);
        continue;
      }
      // Unreadable/torn checkpoint on resume: treat as not done.
      std::error_code remove_ec;
      fs::remove(path, remove_ec);
    }
    pending.push_back(Attempt{i, 1, start});
  }
  if (!opts.quiet && (opts.resume || opts.merge_only) && report.reused > 0) {
    std::printf("  [shards: %llu/%zu reused from %s]\n",
                static_cast<unsigned long long>(report.reused), total,
                opts.shard_dir.c_str());
    std::fflush(stdout);
  }

  // Phase 2: drive workers. Backoff never blocks other shards — a shard
  // waiting out its backoff just isn't eligible for launch yet.
  std::vector<Running> running;
  std::size_t completed = report.reused;
  const auto timeout = std::chrono::seconds{opts.timeout_s};
  while (!pending.empty() || !running.empty()) {
    if (interrupt_requested()) {
      for (const Running& r : running) {
        ::kill(r.pid, SIGKILL);
        int status = 0;
        ::waitpid(r.pid, &status, 0);
        manifest.line("{\"event\": \"killed_on_interrupt\", \"shard\": " +
                      std::to_string(r.index) + "}");
      }
      running.clear();
      manifest.line("{\"event\": \"interrupted\"}");
      report.interrupted = true;
      return report;
    }

    // Launch every ready pending shard while worker slots are free.
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < pending.size() && running.size() < concurrency;) {
      if (pending[i].ready > now) {
        ++i;
        continue;
      }
      const Attempt a = pending[i];
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      const pid_t pid = spawn_worker(opts, a.index, a.attempt);
      if (pid < 0) {
        throw std::runtime_error("shard driver: fork failed");
      }
      manifest.line("{\"event\": \"start\", \"shard\": " + std::to_string(a.index) +
                    ", \"attempt\": " + std::to_string(a.attempt) +
                    ", \"pid\": " + std::to_string(pid) + "}");
      ++report.launched;
      running.push_back(Running{a.index, a.attempt, pid, Clock::now() + timeout, false});
    }

    // Reap exited workers.
    bool reaped = false;
    for (std::size_t i = 0; i < running.size();) {
      int status = 0;
      const pid_t r = ::waitpid(running[i].pid, &status, WNOHANG);
      if (r == 0) {
        ++i;
        continue;
      }
      reaped = true;
      const Running worker = running[i];
      running.erase(running.begin() + static_cast<std::ptrdiff_t>(i));

      const std::string path = opts.shard_dir + "/" + shard_file_name(worker.index);
      std::string reason;
      if (worker.timed_out) {
        reason = "timeout after " + std::to_string(opts.timeout_s) + " s";
      } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        std::string parse_error;
        std::optional<stats::RunResult> result =
            read_shard_json(path, experiment, worker.index, &parse_error);
        if (result.has_value()) {
          report.results[worker.index] = std::move(result);
          ++completed;
          manifest.line("{\"event\": \"done\", \"shard\": " +
                        std::to_string(worker.index) +
                        ", \"attempt\": " + std::to_string(worker.attempt) + "}");
          if (!opts.quiet) {
            std::printf("  [shard %zu done (attempt %u) %zu/%zu]\n", worker.index,
                        worker.attempt, completed, total);
            std::fflush(stdout);
          }
          continue;
        }
        reason = "corrupt output: " + parse_error;
      } else if (WIFEXITED(status)) {
        reason = "exit " + std::to_string(WEXITSTATUS(status));
      } else if (WIFSIGNALED(status)) {
        reason = "killed by signal " + std::to_string(WTERMSIG(status));
      } else {
        reason = "unknown wait status " + std::to_string(status);
      }

      // A failed attempt may have left a torn checkpoint behind — drop
      // it so resume can never trust it (corrupt-mode writes bypass the
      // atomic writer on purpose).
      std::error_code remove_ec;
      fs::remove(path, remove_ec);

      if (worker.attempt < opts.max_attempts) {
        const std::uint32_t shift = std::min(worker.attempt - 1, 20u);
        const std::uint64_t delay_ms = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(opts.backoff_ms) << shift, kBackoffCapMs);
        ++report.sharding.retried;
        manifest.line("{\"event\": \"retry\", \"shard\": " +
                      std::to_string(worker.index) +
                      ", \"attempt\": " + std::to_string(worker.attempt) +
                      ", \"reason\": \"" + json_escaped(reason) +
                      "\", \"backoff_ms\": " + std::to_string(delay_ms) + "}");
        if (!opts.quiet) {
          std::fprintf(stderr, "  [shard %zu attempt %u failed (%s); retrying in %llu ms]\n",
                       worker.index, worker.attempt, reason.c_str(),
                       static_cast<unsigned long long>(delay_ms));
        }
        pending.push_back(Attempt{worker.index, worker.attempt + 1,
                                  Clock::now() + std::chrono::milliseconds{delay_ms}});
      } else {
        record_failure(worker.index, worker.attempt, reason);
      }
    }

    // Enforce wall-clock timeouts: SIGKILL now, reap on the next pass.
    const Clock::time_point deadline_check = Clock::now();
    for (Running& r : running) {
      if (!r.timed_out && deadline_check >= r.deadline) {
        r.timed_out = true;
        ::kill(r.pid, SIGKILL);
        manifest.line("{\"event\": \"timeout_kill\", \"shard\": " +
                      std::to_string(r.index) +
                      ", \"attempt\": " + std::to_string(r.attempt) + "}");
      }
    }

    if (!reaped && !running.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds{5});
    } else if (running.empty() && !pending.empty()) {
      // Everything alive is waiting out a backoff window.
      std::this_thread::sleep_for(std::chrono::milliseconds{2});
    }
  }

  manifest.line("{\"event\": \"complete\", \"done\": " + std::to_string(completed) +
                ", \"retried\": " + std::to_string(report.sharding.retried) +
                ", \"failed\": " + std::to_string(report.sharding.failed.size()) + "}");
  return report;
}

}  // namespace ag::harness
