// Multi-seed experiment driver: runs one configuration across seeds and
// aggregates per-member delivery exactly the way the paper's figures do
// (average line + min/max error bars over the full set of receivers).
#ifndef AG_HARNESS_EXPERIMENT_H
#define AG_HARNESS_EXPERIMENT_H

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "harness/network.h"
#include "harness/scenario.h"
#include "stats/run_result.h"
#include "stats/summary.h"

namespace ag::harness {

struct SeriesPoint {
  double x{0.0};                // swept parameter value
  stats::Summary received;      // per-member received packets across seeds
  double mean_goodput_pct{100.0};
  double mean_delivery_ratio{0.0};
  std::uint64_t mean_transmissions{0};  // network-wide MAC transmissions
  // Phy work done (channel receiver decisions), averaged across seeds.
  std::uint64_t mean_deliveries{0};
  std::uint64_t mean_suppressed_down{0};
  std::uint64_t mean_suppressed_partition{0};
  // Data-plane work (table ops + packet-pool behaviour), averaged.
  std::uint64_t mean_table_probes{0};
  std::uint64_t mean_pool_hits{0};
  std::uint64_t mean_pool_misses{0};
  // DTN custody + user sessions, averaged. dtn_active gates the
  // conditional BENCH json fields (false on every pre-custody scenario,
  // so those files stay byte-identical).
  bool dtn_active{false};
  std::uint64_t mean_sessions{0};
  std::uint64_t mean_users_served{0};
  std::uint64_t mean_user_eligible{0};
  double mean_users_ratio{0.0};  // mean of per-run users_served/eligible
  std::uint64_t mean_custody_stored{0};
  std::uint64_t mean_custody_offers{0};
  std::uint64_t mean_custody_accepted{0};
  // Adversary axis + trust layer, averaged. adversary_active gates the
  // conditional BENCH json fields exactly like dtn_active.
  bool adversary_active{false};
  std::uint64_t mean_adversary_nodes{0};
  std::uint64_t mean_adversary_absorbed{0};
  std::uint64_t mean_adversary_poisoned{0};
  double mean_trust_isolations{0.0};
  double mean_trust_false_positives{0.0};
  std::uint64_t mean_trust_filtered{0};
  double mean_detection_latency_s{0.0};
  std::vector<stats::RunResult> runs;   // raw results (one per seed)
};

// Folds per-seed results (in seed order) into one point. Shared by the
// serial run_point and the parallel ExperimentBuilder so both produce
// bit-identical aggregates for the same seeds.
[[nodiscard]] SeriesPoint aggregate_point(double x, std::vector<stats::RunResult> runs);

// Runs `config` with seeds 1..seeds and aggregates.
[[nodiscard]] SeriesPoint run_point(ScenarioConfig config, std::uint32_t seeds, double x);

// Number of seeds per point: AG_SEEDS env var, else `fallback`. Zero,
// negative, or non-numeric AG_SEEDS values are rejected with a warning on
// stderr instead of silently running zero seeds.
[[nodiscard]] std::uint32_t seeds_from_env(std::uint32_t fallback = 5);

}  // namespace ag::harness

#endif  // AG_HARNESS_EXPERIMENT_H
