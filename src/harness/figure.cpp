#include "harness/figure.h"

#include <cstdio>

#include "harness/atomic_io.h"

namespace ag::harness {

void print_figure(const std::string& title, const std::string& x_label,
                  const std::vector<FigureSeries>& series) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("%-12s", x_label.c_str());
  for (const FigureSeries& s : series) {
    std::printf(" | %s avg    min    max", s.name.c_str());
  }
  std::printf("\n");
  if (series.empty() || series.front().points.empty()) return;
  const std::size_t rows = series.front().points.size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::printf("%-12g", series.front().points[i].x);
    for (const FigureSeries& s : series) {
      if (i < s.points.size()) {
        const auto& p = s.points[i].received;
        std::printf(" | %10.1f %6.0f %6.0f", p.mean, p.min, p.max);
      }
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

bool write_figure_csv(const std::string& path, const std::vector<FigureSeries>& series) {
  // Temp-file + rename (AtomicFile): an interrupted bench never leaves a
  // truncated CSV behind.
  AtomicFile file{path};
  if (!file.ok()) return false;
  std::ostream& out = file.stream();
  out << "x";
  for (const FigureSeries& s : series) {
    out << ',' << s.name << "_avg," << s.name << "_min," << s.name << "_max";
  }
  out << '\n';
  if (series.empty()) return file.commit();
  const std::size_t rows = series.front().points.size();
  for (std::size_t i = 0; i < rows; ++i) {
    out << series.front().points[i].x;
    for (const FigureSeries& s : series) {
      if (i < s.points.size()) {
        const auto& p = s.points[i].received;
        out << ',' << p.mean << ',' << p.min << ',' << p.max;
      }
    }
    out << '\n';
  }
  return file.commit();
}

}  // namespace ag::harness
