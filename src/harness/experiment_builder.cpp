#include "harness/experiment_builder.h"

#include <atomic>
#include <cstdio>
#include <iomanip>
#include <stdexcept>
#include <thread>
#include <utility>

#include "harness/atomic_io.h"
#include "harness/interrupt.h"
#include "harness/protocol_registry.h"

namespace ag::harness {

namespace {

ExperimentBuilder::ApplyFn named_knob(const std::string& param) {
  if (param == "range_m") {
    return [](ScenarioConfig& c, double x) { c.with_range(x); };
  }
  if (param == "max_speed_mps") {
    return [](ScenarioConfig& c, double x) { c.with_max_speed(x); };
  }
  if (param == "node_count") {
    return [](ScenarioConfig& c, double x) {
      c.with_nodes(static_cast<std::size_t>(x));
    };
  }
  if (param == "member_fraction") {
    return [](ScenarioConfig& c, double x) { c.member_fraction = x; };
  }
  if (param == "gossip_interval_ms") {
    return [](ScenarioConfig& c, double x) {
      c.gossip.round_interval = sim::Duration::ms(static_cast<std::int64_t>(x));
    };
  }
  // Fault axes (see faults::FaultSpec): membership churn rate, crashed
  // node fraction, and partition episode length.
  if (param == "churn_per_min") {
    return [](ScenarioConfig& c, double x) { c.faults.spec.churn_per_min = x; };
  }
  if (param == "crash_fraction") {
    return [](ScenarioConfig& c, double x) { c.faults.spec.crash_fraction = x; };
  }
  if (param == "partition_s") {
    return [](ScenarioConfig& c, double x) { c.faults.spec.partition_duration_s = x; };
  }
  // DTN/session axes: custody store budget in messages (0 disables the
  // custody tier entirely) and the user duty-cycle fraction.
  if (param == "custody_max_msgs") {
    return [](ScenarioConfig& c, double x) {
      c.custody.enabled = x > 0.0;
      c.custody.max_messages = static_cast<std::uint32_t>(x);
    };
  }
  if (param == "session_duty") {
    return [](ScenarioConfig& c, double x) { c.sessions.duty = x; };
  }
  // Adversary axis: fraction of nodes compromised (mode/trust come from
  // the base config — with_adversaries / with_trust).
  if (param == "adversary_fraction") {
    return [](ScenarioConfig& c, double x) { c.faults.spec.adversary_fraction = x; };
  }
  throw std::invalid_argument(
      "unknown sweep parameter \"" + param +
      "\" (known: range_m, max_speed_mps, node_count, member_fraction, "
      "gossip_interval_ms, churn_per_min, crash_fraction, partition_s, "
      "custody_max_msgs, session_duty, adversary_fraction); use "
      "Experiment::sweep(param, values, apply) for custom knobs");
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

ExperimentBuilder::ExperimentBuilder(std::string param, std::vector<double> values)
    : param_{std::move(param)}, values_{std::move(values)}, apply_{named_knob(param_)} {}

ExperimentBuilder::ExperimentBuilder(std::string param, std::vector<double> values,
                                     ApplyFn apply)
    : param_{std::move(param)}, values_{std::move(values)}, apply_{std::move(apply)} {}

ExperimentBuilder& ExperimentBuilder::base(ScenarioConfig config) {
  base_ = config;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::protocols(std::vector<Protocol> protocols) {
  protocols_ = std::move(protocols);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::seeds(std::uint32_t n) {
  seeds_ = n;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::parallel(unsigned threads) {
  threads_ = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (threads_ == 0) threads_ = 1;
  return *this;
}

ExperimentBuilder& ExperimentBuilder::name(std::string experiment_name) {
  name_ = std::move(experiment_name);
  return *this;
}

ExperimentBuilder& ExperimentBuilder::on_progress(
    std::function<void(std::size_t, std::size_t)> fn) {
  progress_ = std::move(fn);
  return *this;
}

std::vector<Protocol> ExperimentBuilder::resolved_protocols() const {
  if (!protocols_.empty()) return protocols_;
  return {base_.protocol};
}

std::uint32_t ExperimentBuilder::resolved_seeds() const {
  return seeds_ == 0 ? seeds_from_env() : seeds_;
}

std::size_t ExperimentBuilder::cell_count() const {
  return resolved_protocols().size() * values_.size() * resolved_seeds();
}

ScenarioConfig ExperimentBuilder::cell_config(std::size_t index) const {
  const std::vector<Protocol> protocols = resolved_protocols();
  const std::uint32_t seeds = resolved_seeds();
  const std::size_t per_protocol = values_.size() * seeds;
  if (index >= protocols.size() * per_protocol) {
    throw std::out_of_range("ExperimentBuilder: cell index " +
                            std::to_string(index) + " out of range (grid has " +
                            std::to_string(protocols.size() * per_protocol) +
                            " cells)");
  }
  const std::size_t p = index / per_protocol;
  const std::size_t v = (index % per_protocol) / seeds;
  const auto s = static_cast<std::uint32_t>(index % seeds) + 1;
  ScenarioConfig c = base_;
  apply_(c, values_[v]);
  c.with_protocol(protocols[p]);
  c.with_seed(s);
  return c;
}

CellId ExperimentBuilder::cell_id(std::size_t index) const {
  const std::vector<Protocol> protocols = resolved_protocols();
  const std::uint32_t seeds = resolved_seeds();
  const std::size_t per_protocol = values_.size() * seeds;
  if (index >= protocols.size() * per_protocol) {
    throw std::out_of_range("ExperimentBuilder: cell index " +
                            std::to_string(index) + " out of range");
  }
  CellId id;
  id.protocol =
      ProtocolRegistry::instance().name_of(protocols[index / per_protocol]);
  id.x = values_[(index % per_protocol) / seeds];
  id.seed = static_cast<std::uint32_t>(index % seeds) + 1;
  return id;
}

stats::RunResult ExperimentBuilder::run_cell(std::size_t index) const {
  return run_scenario(cell_config(index));
}

ExperimentResult ExperimentBuilder::assemble(
    std::vector<std::optional<stats::RunResult>> cells, ShardingInfo sharding) const {
  const ProtocolRegistry& registry = ProtocolRegistry::instance();
  const std::vector<Protocol> protocols = resolved_protocols();
  const std::uint32_t seeds = resolved_seeds();
  const std::size_t runs_per_point = seeds;
  cells.resize(protocols.size() * values_.size() * runs_per_point);

  ExperimentResult out;
  out.name = name_;
  out.param = param_;
  out.seeds = seeds;
  out.sharding = std::move(sharding);
  for (std::size_t p = 0; p < protocols.size(); ++p) {
    FigureSeries series{registry.name_of(protocols[p]), {}};
    for (std::size_t v = 0; v < values_.size(); ++v) {
      const std::size_t base_slot = (p * values_.size() + v) * runs_per_point;
      // Failed shards leave holes: their seeds drop out of the point's
      // aggregate (degraded but honest — the run never aborts).
      std::vector<stats::RunResult> runs;
      runs.reserve(runs_per_point);
      for (std::size_t s = 0; s < runs_per_point; ++s) {
        if (cells[base_slot + s].has_value()) {
          runs.push_back(std::move(*cells[base_slot + s]));
        }
      }
      series.points.push_back(aggregate_point(values_[v], std::move(runs)));
    }
    out.series.push_back(std::move(series));
  }
  return out;
}

ExperimentResult ExperimentBuilder::run() const {
  const std::size_t total = cell_count();
  std::vector<std::optional<stats::RunResult>> results(total);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  auto worker = [&] {
    while (!interrupt_requested()) {
      const std::size_t i = next.fetch_add(1);
      if (i >= total) return;
      results[i] = run_cell(i);
      const std::size_t completed = done.fetch_add(1) + 1;
      if (progress_) progress_(completed, total);
    }
  };

  const unsigned threads =
      static_cast<unsigned>(std::min<std::size_t>(threads_, total));
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  return assemble(std::move(results));
}

void ExperimentResult::print(const std::string& title, const std::string& x_label) const {
  print_figure(title, x_label, series);
}

bool ExperimentResult::write_csv(const std::string& path) const {
  return write_figure_csv(path, series);
}

bool ExperimentResult::write_json(const std::string& path) const {
  AtomicFile file{path};
  if (!file.ok()) return false;
  std::ostream& out = file.stream();
  out << std::setprecision(12);
  out << "{\n";
  out << "  \"experiment\": \"" << json_escaped(name) << "\",\n";
  out << "  \"param\": \"" << json_escaped(param) << "\",\n";
  out << "  \"seeds\": " << seeds << ",\n";
  out << "  \"series\": [\n";
  for (std::size_t s = 0; s < series.size(); ++s) {
    out << "    {\"name\": \"" << json_escaped(series[s].name) << "\", \"points\": [\n";
    for (std::size_t i = 0; i < series[s].points.size(); ++i) {
      const SeriesPoint& p = series[s].points[i];
      out << "      {\"x\": " << p.x << ", \"received_mean\": " << p.received.mean
          << ", \"received_min\": " << p.received.min
          << ", \"received_max\": " << p.received.max
          << ", \"received_stddev\": " << p.received.stddev
          << ", \"receivers\": " << p.received.n
          << ", \"delivery_ratio\": " << p.mean_delivery_ratio
          << ", \"goodput_pct\": " << p.mean_goodput_pct
          << ", \"transmissions\": " << p.mean_transmissions
          << ", \"deliveries\": " << p.mean_deliveries
          << ", \"suppressed_down\": " << p.mean_suppressed_down
          << ", \"suppressed_partition\": " << p.mean_suppressed_partition
          << ", \"table_probes\": " << p.mean_table_probes
          << ", \"pool_hits\": " << p.mean_pool_hits
          << ", \"pool_misses\": " << p.mean_pool_misses;
      // Custody/session fields only appear when a run in this point had
      // the DTN tier or sessions active, so pre-custody figures (fig2,
      // churn, ...) stay byte-identical to their pre-DTN output.
      if (p.dtn_active) {
        out << ", \"sessions\": " << p.mean_sessions
            << ", \"users_served\": " << p.mean_users_served
            << ", \"user_eligible\": " << p.mean_user_eligible
            << ", \"users_served_ratio\": " << p.mean_users_ratio
            << ", \"custody_stored\": " << p.mean_custody_stored
            << ", \"custody_offers\": " << p.mean_custody_offers
            << ", \"custody_accepted\": " << p.mean_custody_accepted;
      }
      // Adversary/trust fields only appear when a run in this point
      // carried the adversary axis — same gating contract as dtn_active.
      if (p.adversary_active) {
        out << ", \"adversary_nodes\": " << p.mean_adversary_nodes
            << ", \"adversary_absorbed\": " << p.mean_adversary_absorbed
            << ", \"adversary_poisoned\": " << p.mean_adversary_poisoned
            << ", \"trust_isolations\": " << p.mean_trust_isolations
            << ", \"trust_false_positives\": " << p.mean_trust_false_positives
            << ", \"trust_filtered\": " << p.mean_trust_filtered
            << ", \"detection_latency_s\": " << p.mean_detection_latency_s;
      }
      out << "}" << (i + 1 < series[s].points.size() ? "," : "") << "\n";
    }
    out << "    ]}" << (s + 1 < series.size() ? "," : "") << "\n";
  }
  // Degraded sharded runs only: a sharded run whose every cell completed
  // (even after retries) emits no section here, so its JSON stays
  // byte-identical to the in-process serial run.
  if (!sharding.failed.empty()) {
    out << "  ],\n";
    out << "  \"sharding\": {\"shards\": " << sharding.shards
        << ", \"retried\": " << sharding.retried
        << ", \"failed\": " << sharding.failed.size()
        << ", \"failed_shards\": [\n";
    for (std::size_t f = 0; f < sharding.failed.size(); ++f) {
      const FailedShard& fs = sharding.failed[f];
      out << "    {\"shard\": " << fs.shard << ", \"protocol\": \""
          << json_escaped(fs.cell.protocol) << "\", \"x\": " << fs.cell.x
          << ", \"seed\": " << fs.cell.seed << ", \"attempts\": " << fs.attempts
          << ", \"reason\": \"" << json_escaped(fs.reason) << "\"}"
          << (f + 1 < sharding.failed.size() ? "," : "") << "\n";
    }
    out << "  ]}\n";
  } else {
    out << "  ]\n";
  }
  out << "}\n";
  return file.commit();
}

}  // namespace ag::harness
