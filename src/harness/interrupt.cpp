#include "harness/interrupt.h"

#include <csignal>

namespace ag::harness {

namespace {

// Written from the signal handler, read from the experiment loops; only
// sig_atomic_t stores are async-signal-safe.
volatile std::sig_atomic_t g_signal{0};

extern "C" void ag_on_interrupt(int signo) { g_signal = signo; }

}  // namespace

void install_interrupt_handlers() {
  struct sigaction sa {};
  sa.sa_handler = ag_on_interrupt;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: interrupt blocking waits promptly
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool interrupt_requested() { return g_signal != 0; }

int interrupt_exit_code() {
  const int signo = g_signal;
  return signo == 0 ? 1 : 128 + signo;
}

void clear_interrupt_for_test() { g_signal = 0; }

}  // namespace ag::harness
