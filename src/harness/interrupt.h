// Cooperative SIGINT/SIGTERM handling for the benches and the sharded
// driver: the handler only sets a flag; the experiment loops poll it at
// job boundaries, the shard supervisor polls it in its wait loop (killing
// live workers and flushing the manifest journal), and the benches exit
// nonzero instead of dying mid-write. Combined with atomic_io.h this
// means an interrupted run can never leave a torn BENCH/CSV/shard file.
#ifndef AG_HARNESS_INTERRUPT_H
#define AG_HARNESS_INTERRUPT_H

namespace ag::harness {

// Installs the SIGINT/SIGTERM flag-setting handlers. Idempotent; safe to
// call from every bench main.
void install_interrupt_handlers();

// True once SIGINT or SIGTERM has been received.
[[nodiscard]] bool interrupt_requested();

// Conventional exit code for the received signal (128 + signo), or 1 if
// called without a pending interrupt. Benches return this after an
// orderly stop.
[[nodiscard]] int interrupt_exit_code();

// Clears the pending-interrupt flag (tests only).
void clear_interrupt_for_test();

}  // namespace ag::harness

#endif  // AG_HARNESS_INTERRUPT_H
