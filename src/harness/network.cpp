#include "harness/network.h"

#include "harness/protocol_registry.h"

namespace ag::harness {

Network::Network(const ScenarioConfig& config) : config_{config}, sim_{config.seed} {
  mobility_ = std::make_unique<mobility::RandomWaypoint>(
      sim_, config_.node_count, config_.waypoint, sim_.rng().stream("mobility"));
  channel_ = std::make_unique<phy::Channel>(sim_, *mobility_, config_.phy);

  const ProtocolEntry& protocol = ProtocolRegistry::instance().entry(config_.protocol);
  const std::size_t members = config_.member_count();
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    auto stack = std::make_unique<NodeStack>();
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    stack->radio = std::make_unique<phy::Radio>(sim_, *channel_, i);
    channel_->attach(stack->radio.get());
    stack->mac = std::make_unique<mac::CsmaMac>(sim_, *stack->radio, *channel_, id,
                                                config_.mac, sim_.rng().stream("mac", i));

    stack->router = ProtocolRegistry::instance().build(
        RouterContext{sim_, *stack->mac, id, i, config_});

    gossip::GossipParams gp = config_.gossip;
    gp.enabled = gp.enabled && protocol.gossip_capable;
    stack->agent = std::make_unique<gossip::GossipAgent>(sim_, *stack->router, gp,
                                                         sim_.rng().stream("gossip", i));
    stack->router->set_observer(stack->agent.get());

    if (i < members) {
      stack->sink = std::make_unique<app::MulticastSink>(sim_);
      app::MulticastSink* sink = stack->sink.get();
      stack->agent->set_deliver([sink](const net::MulticastData& d, bool via_gossip) {
        sink->on_deliver(d, via_gossip);
      });
    }
    stacks_.push_back(std::move(stack));
  }

  // Source application on member 0.
  NodeStack& src = *stacks_[source_index()];
  source_ = std::make_unique<app::MulticastSource>(
      sim_, config_.workload,
      [&src](std::uint16_t bytes) { src.router->send_multicast(kGroup, bytes); });

  // Start protocol machinery and schedule joins spread over join_spread.
  sim::Rng join_rng = sim_.rng().stream("join");
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    NodeStack& s = *stacks_[i];
    s.router->start();
    s.agent->start();
    if (i < members) {
      const auto delay = sim::Duration::us(
          join_rng.uniform_int(0, std::max<std::int64_t>(config_.join_spread.count_us(), 1)));
      sim_.schedule_after(delay,
                          [this, i] { stacks_[i]->router->join_group(kGroup); });
    }
  }
  source_->start();
}

void Network::run() { sim_.run_until(config_.duration); }

stats::RunResult Network::result() const {
  stats::RunResult r;
  r.seed = config_.seed;
  r.packets_sent = source_ == nullptr ? 0 : source_->sent();

  const std::size_t members = config_.member_count();
  for (std::size_t i = 0; i < members; ++i) {
    if (i == source_index()) continue;  // the source trivially has everything
    const NodeStack& s = *stacks_[i];
    stats::MemberResult m;
    m.node = net::NodeId{static_cast<std::uint32_t>(i)};
    m.received = s.sink != nullptr ? s.sink->received() : 0;
    m.via_gossip = s.sink != nullptr ? s.sink->via_gossip() : 0;
    m.replies_received = s.agent->counters().replies_received;
    m.replies_useful = s.agent->counters().replies_useful;
    m.mean_latency_s = s.sink != nullptr ? s.sink->mean_latency_s() : 0.0;
    r.members.push_back(m);
  }

  stats::NetworkTotals& t = r.totals;
  t.channel_transmissions = channel_->transmissions();
  for (const auto& s : stacks_) {
    t.mac_unicast += s->mac->counters().unicast_sent;
    t.mac_broadcast += s->mac->counters().broadcast_sent;
    t.mac_collisions += s->radio->counters().frames_corrupted;
    t.mac_queue_drops += s->mac->counters().queue_drops;
    const auto& g = s->agent->counters();
    t.gossip_walks += g.walks_initiated;
    t.gossip_replies += g.replies_sent;
    t.nm_updates += g.nm_updates_sent;
    s->router->add_totals(t);
  }
  return r;
}

stats::RunResult run_scenario(const ScenarioConfig& config) {
  Network net{config};
  net.run();
  return net.result();
}

}  // namespace ag::harness
