#include "harness/network.h"

namespace ag::harness {

Network::Network(const ScenarioConfig& config) : config_{config}, sim_{config.seed} {
  mobility_ = std::make_unique<mobility::RandomWaypoint>(
      sim_, config_.node_count, config_.waypoint, sim_.rng().stream("mobility"));
  channel_ = std::make_unique<phy::Channel>(sim_, *mobility_, config_.phy);

  const std::size_t members = config_.member_count();
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    auto stack = std::make_unique<NodeStack>();
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    stack->radio = std::make_unique<phy::Radio>(sim_, *channel_, i);
    channel_->attach(stack->radio.get());
    stack->mac = std::make_unique<mac::CsmaMac>(sim_, *stack->radio, *channel_, id,
                                                config_.mac, sim_.rng().stream("mac", i));

    gossip::RoutingAdapter* adapter = nullptr;
    switch (config_.protocol) {
      case Protocol::flooding:
        stack->flood = std::make_unique<flood::FloodRouter>(*stack->mac, id,
                                                            config_.maodv.data_ttl);
        adapter = stack->flood.get();
        break;
      case Protocol::odmrp:
      case Protocol::odmrp_gossip:
        stack->odmrp = std::make_unique<odmrp::OdmrpRouter>(
            sim_, *stack->mac, id, config_.aodv, config_.odmrp,
            sim_.rng().stream("aodv", i));
        adapter = stack->odmrp.get();
        break;
      case Protocol::maodv:
      case Protocol::maodv_gossip:
        stack->maodv = std::make_unique<maodv::MaodvRouter>(
            sim_, *stack->mac, id, config_.aodv, config_.maodv,
            sim_.rng().stream("aodv", i));
        adapter = stack->maodv.get();
        break;
    }

    gossip::GossipParams gp = config_.gossip;
    gp.enabled = gp.enabled && (config_.protocol == Protocol::maodv_gossip ||
                                config_.protocol == Protocol::odmrp_gossip);
    stack->agent = std::make_unique<gossip::GossipAgent>(sim_, *adapter, gp,
                                                         sim_.rng().stream("gossip", i));
    if (stack->maodv != nullptr) {
      stack->maodv->set_observer(stack->agent.get());
    } else if (stack->odmrp != nullptr) {
      stack->odmrp->set_observer(stack->agent.get());
    } else {
      stack->flood->set_observer(stack->agent.get());
    }

    if (i < members) {
      stack->sink = std::make_unique<app::MulticastSink>(sim_);
      app::MulticastSink* sink = stack->sink.get();
      stack->agent->set_deliver([sink](const net::MulticastData& d, bool via_gossip) {
        sink->on_deliver(d, via_gossip);
      });
    }
    stacks_.push_back(std::move(stack));
  }

  // Source application on member 0.
  NodeStack& src = *stacks_[source_index()];
  source_ = std::make_unique<app::MulticastSource>(
      sim_, config_.workload, [&src](std::uint16_t bytes) {
        if (src.maodv != nullptr) {
          src.maodv->send_multicast(kGroup, bytes);
        } else if (src.odmrp != nullptr) {
          src.odmrp->send_multicast(kGroup, bytes);
        } else {
          src.flood->send_multicast(kGroup, bytes);
        }
      });

  // Start protocol machinery and schedule joins spread over join_spread.
  sim::Rng join_rng = sim_.rng().stream("join");
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    NodeStack& s = *stacks_[i];
    if (s.maodv != nullptr) s.maodv->start();
    if (s.odmrp != nullptr) s.odmrp->start();
    s.agent->start();
    if (i < members) {
      const auto delay = sim::Duration::us(
          join_rng.uniform_int(0, std::max<std::int64_t>(config_.join_spread.count_us(), 1)));
      sim_.schedule_after(delay, [this, i] {
        NodeStack& st = *stacks_[i];
        if (st.maodv != nullptr) {
          st.maodv->join_group(kGroup);
        } else if (st.odmrp != nullptr) {
          st.odmrp->join_group(kGroup);
        } else {
          st.flood->join_group(kGroup);
        }
      });
    }
  }
  source_->start();
}

void Network::run() { sim_.run_until(config_.duration); }

stats::RunResult Network::result() const {
  stats::RunResult r;
  r.seed = config_.seed;
  r.packets_sent = source_ == nullptr ? 0 : source_->sent();

  const std::size_t members = config_.member_count();
  for (std::size_t i = 0; i < members; ++i) {
    if (i == source_index()) continue;  // the source trivially has everything
    const NodeStack& s = *stacks_[i];
    stats::MemberResult m;
    m.node = net::NodeId{static_cast<std::uint32_t>(i)};
    m.received = s.sink != nullptr ? s.sink->received() : 0;
    m.via_gossip = s.sink != nullptr ? s.sink->via_gossip() : 0;
    m.replies_received = s.agent->counters().replies_received;
    m.replies_useful = s.agent->counters().replies_useful;
    m.mean_latency_s = s.sink != nullptr ? s.sink->mean_latency_s() : 0.0;
    r.members.push_back(m);
  }

  stats::NetworkTotals& t = r.totals;
  t.channel_transmissions = channel_->transmissions();
  for (const auto& s : stacks_) {
    t.mac_unicast += s->mac->counters().unicast_sent;
    t.mac_broadcast += s->mac->counters().broadcast_sent;
    t.mac_collisions += s->radio->counters().frames_corrupted;
    t.mac_queue_drops += s->mac->counters().queue_drops;
    const auto& g = s->agent->counters();
    t.gossip_walks += g.walks_initiated;
    t.gossip_replies += g.replies_sent;
    t.nm_updates += g.nm_updates_sent;
    if (s->maodv != nullptr) {
      t.rreq_originated += s->maodv->counters().rreq_originated;
      t.rerr_sent += s->maodv->counters().rerr_sent;
      const auto& mc = s->maodv->mcast_counters();
      t.grph_sent += mc.grph_sent;
      t.mact_sent += mc.mact_sent;
      t.data_forwarded += mc.data_forwarded;
      t.repairs_started += mc.repairs_started;
      t.partitions += mc.partitions;
      t.leaders_elected += mc.leaders_elected;
    }
    if (s->odmrp != nullptr) {
      t.rreq_originated += s->odmrp->counters().rreq_originated;
      t.rerr_sent += s->odmrp->counters().rerr_sent;
      t.data_forwarded += s->odmrp->odmrp_counters().data_forwarded;
    }
    if (s->flood != nullptr) {
      t.data_forwarded += s->flood->counters().rebroadcasts;
    }
  }
  return r;
}

stats::RunResult run_scenario(const ScenarioConfig& config) {
  Network net{config};
  net.run();
  return net.result();
}

}  // namespace ag::harness
