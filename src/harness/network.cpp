#include "harness/network.h"

#include <algorithm>

#include "harness/protocol_registry.h"
#include "sim/env.h"

namespace ag::harness {

Network::Network(const ScenarioConfig& config)
    : config_{config}, sim_{config.seed}, dpc_baseline_{net::data_plane_counters()} {
  // Start from a cold packet pool: the hit/miss split this run reports
  // must not depend on what else this worker thread ran before.
  net::PacketPool::local().clear();
  mobility_ = std::make_unique<mobility::RandomWaypoint>(
      sim_, config_.node_count, config_.waypoint, sim_.rng().stream("mobility"));
  channel_ = std::make_unique<phy::Channel>(sim_, *mobility_, config_.phy);

  // Resolve the run's fault plan up front: scripted events plus whatever
  // the spec synthesizes for this seed (its own rng stream, so fault
  // synthesis never perturbs mobility/MAC/gossip draws).
  faults::FaultPlan plan = config_.faults.plan;
  if (config_.faults.spec.any()) {
    faults::synthesize_into(plan, config_.faults.spec, config_.node_count,
                            config_.member_count(), source_index(),
                            config_.duration.to_seconds(), sim_.rng().stream("faults"));
  }
  // Adversary axis: resolved the same way (scripted roles plus synthesis
  // on its own dedicated stream), gated by the AG_ADVERSARY hatch. Off —
  // by hatch or by an unarmed config — the stack built below is exactly
  // the pre-adversary one: no decorator, no sniffer, no extra stream use.
  const bool adversary_on =
      (config_.faults.spec.adversaries_any() || !plan.adversaries.empty() ||
       config_.trust.enabled) &&
      !sim::env_flag_off("AG_ADVERSARY");
  if (adversary_on && config_.faults.spec.adversaries_any()) {
    faults::synthesize_adversaries_into(plan, config_.faults.spec,
                                        config_.node_count, source_index(),
                                        sim_.rng().stream("adversary"));
  }
  plan.validate(config_.node_count);
  const bool faulted = !plan.empty();
  if (adversary_on) {
    adversary_.assign(config_.node_count, nullptr);
    adversary_role_.assign(config_.node_count, 0);
    adversary_drop_.assign(config_.node_count, 0.0);
    for (const faults::AdversaryAssignment& a : plan.adversaries) {
      adversary_role_[a.node] = static_cast<std::uint8_t>(a.mode) + 1;
      adversary_drop_[a.node] = a.drop_fraction;
    }
  }

  const ProtocolEntry& protocol = ProtocolRegistry::instance().entry(config_.protocol);
  const std::size_t members = config_.member_count();

  // DTN custody tier: decorator + contact monitor, built only when the
  // scenario asks for it AND the AG_CUSTODY=off hatch is not set. Off, the
  // stack below is exactly the pre-custody one.
  const bool custody_on = config_.custody.enabled && !sim::env_flag_off("AG_CUSTODY");
  if (custody_on) {
    custody_.assign(config_.node_count, nullptr);
    gateway_.assign(config_.node_count, 0);
    // Designated gateways, spread evenly over the node index space (node
    // placement is uniform, so index spread approximates spatial spread).
    const std::size_t g = config_.custody.gateway_count;
    for (std::size_t k = 1; k <= g && config_.node_count > 0; ++k) {
      gateway_[(k * config_.node_count) / (g + 1) % config_.node_count] = 1;
    }
  }

  for (std::size_t i = 0; i < config_.node_count; ++i) {
    auto stack = std::make_unique<NodeStack>();
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    stack->radio = std::make_unique<phy::Radio>(sim_, *channel_, i);
    channel_->attach(stack->radio.get());
    stack->mac = std::make_unique<mac::CsmaMac>(sim_, *stack->radio, *channel_, id,
                                                config_.mac, sim_.rng().stream("mac", i));

    stack->router = ProtocolRegistry::instance().build(
        RouterContext{sim_, *stack->mac, id, i, config_});
    if (adversary_on) {
      // Innermost decorator: adversarial misbehavior (or honest trust
      // monitoring) sits directly on the protocol, below any custody
      // wrap, so custody handoffs flow through the adversary seam too.
      faults::AdversaryRouter::Role role;
      role.adversarial = adversary_role_[i] != 0;
      if (role.adversarial) {
        role.mode = static_cast<faults::AdversaryMode>(adversary_role_[i] - 1);
        role.drop_fraction = adversary_drop_[i];
      }
      const bool expect_all_relays = config_.protocol == Protocol::flooding ||
                                     config_.protocol == Protocol::flooding_gossip;
      auto wrapped = std::make_unique<faults::AdversaryRouter>(
          sim_, *stack->mac, std::move(stack->router), role, config_.trust,
          expect_all_relays, sim_.rng().stream("adversary_drop", i));
      adversary_[i] = wrapped.get();
      stack->router = std::move(wrapped);
    }
    if (custody_on) {
      // Wrap whatever the registry built: custody is protocol-agnostic.
      auto wrapped = std::make_unique<dtn::CustodyRouter>(
          sim_, *stack->mac, std::move(stack->router), config_.custody,
          is_gateway(i));
      custody_[i] = wrapped.get();
      stack->router = std::move(wrapped);
    }

    gossip::GossipParams gp = config_.gossip;
    gp.enabled = gp.enabled && protocol.gossip_capable;
    stack->agent = std::make_unique<gossip::GossipAgent>(sim_, *stack->router, gp,
                                                         sim_.rng().stream("gossip", i));
    stack->router->set_observer(stack->agent.get());

    // Fault runs give every node a sink so that a node joining mid-run
    // (a plan membership event) is accounted from its first subscription.
    if (i < members || faulted) {
      stack->sink = std::make_unique<app::MulticastSink>(sim_);
      app::MulticastSink* sink = stack->sink.get();
      stack->agent->set_deliver([sink](const net::MulticastData& d, bool via_gossip) {
        sink->on_deliver(d, via_gossip);
      });
      if (faulted) sink->set_subscribed(i < members);
      // User-session layer: configured receiving members host per_node
      // logical users (the source is excluded, mirroring MemberResult).
      // Analytic only — its dedicated rng stream and accounting can never
      // perturb the packet-level run.
      if (config_.sessions.enabled() && i < members && i != source_index() &&
          !is_adversary(i)) {
        stack->sessions = std::make_unique<session::SessionManager>(
            config_.sessions, sim_.rng().stream("session", i));
        sink->attach_sessions(stack->sessions.get());
      }
    }
    stacks_.push_back(std::move(stack));
  }

  // Source application on member 0.
  NodeStack& src = *stacks_[source_index()];
  source_ = std::make_unique<app::MulticastSource>(
      sim_, config_.workload,
      [&src](std::uint16_t bytes) { src.router->send_multicast(kGroup, bytes); });

  // Start protocol machinery and schedule joins spread over join_spread.
  wants_member_.assign(config_.node_count, 0);
  sim::Rng join_rng = sim_.rng().stream("join");
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    NodeStack& s = *stacks_[i];
    s.router->start();
    s.agent->start();
    if (i < members) {
      wants_member_[i] = 1;
      const auto delay = sim::Duration::us(
          join_rng.uniform_int(0, std::max<std::int64_t>(config_.join_spread.count_us(), 1)));
      sim_.schedule_after(
          delay, [this, i] { stacks_[i]->router->join_group(kGroup); },
          sim::EventCategory::router);
    }
  }
  source_->start();

  if (faulted) {
    injector_ = std::make_unique<faults::FaultInjector>(
        sim_, std::move(plan),
        faults::FaultHooks{
            [this](std::size_t n, faults::RebootPolicy p) { fault_crash(n, p); },
            [this](std::size_t n, faults::RebootPolicy p) { fault_reboot(n, p); },
            [this](std::size_t n) { fault_leave(n); },
            [this](std::size_t n) { fault_join(n); },
            [this](const faults::PartitionEvent& ev) { fault_partition(ev); },
            [this] { fault_heal(); },
        });
    injector_->arm();
  }

  if (custody_on) {
    contact_monitor_ = std::make_unique<dtn::ContactMonitor>(
        sim_, *mobility_, *channel_, config_.node_count,
        config_.phy.transmission_range_m, config_.custody.contact_poll,
        [this](std::size_t node, std::size_t peer) {
          custody_[node]->offer_to(net::NodeId{static_cast<std::uint32_t>(peer)});
        });
    contact_monitor_->start();
  }
}

void Network::run() { sim_.run_until(config_.duration); }

// ------------------------------------------------------------ fault hooks

void Network::fault_crash(std::size_t node, faults::RebootPolicy policy) {
  channel_->set_node_down(node, true);
  NodeStack& s = *stacks_[node];
  if (policy == faults::RebootPolicy::wipe) {
    s.mac->power_cycle();
    s.router->reset();
    s.agent->reset();
  }
  if (s.sink != nullptr) s.sink->set_subscribed(false);
}

void Network::fault_reboot(std::size_t node, faults::RebootPolicy policy) {
  channel_->set_node_down(node, false);
  NodeStack& s = *stacks_[node];
  if (policy == faults::RebootPolicy::wipe) {
    s.router->start();
    s.agent->start();
  }
  if (wants_member_[node] != 0) {
    // The application relaunches and re-subscribes (a no-op join when the
    // preserve policy kept protocol membership alive).
    s.router->join_group(kGroup);
    if (s.sink != nullptr) s.sink->set_subscribed(true);
  }
  // Custody re-offer on rejoin: the node's current neighborhood hands it
  // whatever it missed while down (its own store also re-spreads).
  custody_contact_burst(node);
}

void Network::fault_leave(std::size_t node) {
  wants_member_[node] = 0;
  stacks_[node]->router->leave_group(kGroup);
  if (stacks_[node]->sink != nullptr) stacks_[node]->sink->set_subscribed(false);
}

void Network::fault_join(std::size_t node) {
  wants_member_[node] = 1;
  stacks_[node]->router->join_group(kGroup);
  if (stacks_[node]->sink != nullptr) stacks_[node]->sink->set_subscribed(true);
  // A fresh subscriber is a contact too: neighbors re-offer their custody
  // backlog so it can catch up on recent traffic it is now eligible for.
  custody_contact_burst(node);
}

void Network::custody_contact_burst(std::size_t node) {
  if (contact_monitor_ == nullptr) return;
  const net::NodeId id{static_cast<std::uint32_t>(node)};
  for (const std::size_t nb : contact_monitor_->neighbors_of(node)) {
    custody_[nb]->offer_to(id);
    custody_[node]->offer_to(net::NodeId{static_cast<std::uint32_t>(nb)});
  }
}

void Network::fault_partition(const faults::PartitionEvent& ev) {
  const sim::SimTime now = sim_.now();
  std::vector<std::uint8_t> side(stacks_.size(), 0);
  if (ev.a == 0.0 && ev.b == 0.0) {
    // Auto cut: vertical line through the median x coordinate, which
    // always splits the network into two non-trivial halves.
    std::vector<double> xs(stacks_.size());
    for (std::size_t i = 0; i < stacks_.size(); ++i) {
      xs[i] = mobility_->position_of(i, now).x;
    }
    std::vector<double> sorted = xs;
    auto mid = sorted.begin() + static_cast<std::ptrdiff_t>(sorted.size() / 2);
    std::nth_element(sorted.begin(), mid, sorted.end());
    const double median = *mid;
    for (std::size_t i = 0; i < stacks_.size(); ++i) side[i] = xs[i] < median ? 1 : 0;
  } else {
    for (std::size_t i = 0; i < stacks_.size(); ++i) {
      const mobility::Vec2 p = mobility_->position_of(i, now);
      side[i] = (ev.a * p.x + ev.b * p.y <= ev.c) ? 1 : 0;
    }
  }
  channel_->set_partition(std::move(side));
}

void Network::fault_heal() {
  channel_->clear_partition();
  if (contact_monitor_ == nullptr) return;
  // Gateway bridge: the designated gateways burst-offer their (elevated)
  // custody backlog into the freshly reunited neighborhood immediately —
  // the periodic contact poll would bridge the cut anyway, but only at
  // its next tick. Gateways act the instant the cut heals.
  for (std::size_t g = 0; g < gateway_.size(); ++g) {
    if (gateway_[g] == 0 || channel_->is_node_down(g)) continue;
    for (const std::size_t nb : contact_monitor_->neighbors_of(g)) {
      custody_[g]->offer_to(net::NodeId{static_cast<std::uint32_t>(nb)});
    }
  }
}

// ----------------------------------------------------------------- result

stats::RunResult Network::result() const {
  stats::RunResult r;
  r.seed = config_.seed;
  r.packets_sent = source_ == nullptr ? 0 : source_->sent();

  const std::size_t members = config_.member_count();
  for (std::size_t i = 0; i < stacks_.size(); ++i) {
    if (i == source_index()) continue;  // the source trivially has everything
    // Compromised nodes don't score delivery: a blackhole "member" that
    // absorbed everything would read as catastrophic loss when it is in
    // fact the attack — the honest members' ratios are the measurement.
    if (is_adversary(i)) continue;
    const NodeStack& s = *stacks_[i];
    // Rows: the configured members, plus any node a fault plan subscribed
    // mid-run. Nodes that never joined have nothing to report.
    const bool configured_member = i < members;
    if (!configured_member &&
        (s.sink == nullptr || !s.sink->ever_subscribed())) {
      continue;
    }
    stats::MemberResult m;
    m.node = net::NodeId{static_cast<std::uint32_t>(i)};
    m.received = s.sink != nullptr ? s.sink->received() : 0;
    m.via_gossip = s.sink != nullptr ? s.sink->via_gossip() : 0;
    m.replies_received = s.agent->counters().replies_received;
    m.replies_useful = s.agent->counters().replies_useful;
    m.mean_latency_s = s.sink != nullptr ? s.sink->mean_latency_s() : 0.0;
    if (s.sink != nullptr && s.sink->tracking() && source_ != nullptr) {
      // Churn accounting: the member answers only for packets sourced
      // while it was subscribed.
      m.eligible = 0;
      for (sim::SimTime t : source_->send_times()) {
        if (s.sink->subscribed_at(t)) ++m.eligible;
      }
    }
    r.members.push_back(m);
  }

  stats::NetworkTotals& t = r.totals;
  t.channel_transmissions = channel_->transmissions();
  t.phy_deliveries = channel_->deliveries();
  t.phy_suppressed_down = channel_->suppressed_down();
  t.phy_suppressed_partition = channel_->suppressed_partition();
  t.phy_rx_elided = channel_->rx_elided();
  t.phy_rx_coalesced = channel_->rx_coalesced();
  t.sim_events = sim_.executed_events();
  const sim::Simulator::EventMix& mix = sim_.event_mix();
  for (std::size_t c = 0; c < sim::kEventCategoryCount; ++c) {
    t.ev_scheduled[c] = mix.scheduled[c];
    t.ev_executed[c] = mix.executed[c];
  }
  const net::DataPlaneCounters& dpc = net::data_plane_counters();
  t.table_probes = dpc.table_probes - dpc_baseline_.table_probes;
  t.pool_hits = dpc.pool_hits - dpc_baseline_.pool_hits;
  t.pool_misses = dpc.pool_misses - dpc_baseline_.pool_misses;
  for (const auto& s : stacks_) {
    t.mac_unicast += s->mac->counters().unicast_sent;
    t.mac_broadcast += s->mac->counters().broadcast_sent;
    t.mac_backoff_slots_credited += s->mac->counters().backoff_slots_credited;
    t.mac_difs_elided += s->mac->counters().difs_events_elided;
    t.mac_collisions += s->radio->counters().frames_corrupted;
    t.mac_queue_drops += s->mac->counters().queue_drops;
    const auto& g = s->agent->counters();
    t.gossip_walks += g.walks_initiated;
    t.gossip_replies += g.replies_sent;
    t.nm_updates += g.nm_updates_sent;
    s->router->add_totals(t);
  }
  if (injector_ != nullptr) r.faults = injector_->stats();

  // Adversary axis accounting. Per-decorator counters flowed in through
  // add_totals above; isolation classification needs the ground-truth
  // role map, so it happens here.
  if (adversary_enabled()) {
    t.adversary_active = true;
    std::vector<sim::SimTime> first_detect(stacks_.size());
    std::vector<std::uint8_t> detected(stacks_.size(), 0);
    for (std::size_t i = 0; i < stacks_.size(); ++i) {
      if (adversary_[i] == nullptr) continue;
      for (const faults::AdversaryRouter::Isolation& iso :
           adversary_[i]->isolation_log()) {
        ++t.trust_isolations;
        const auto target = static_cast<std::size_t>(iso.neighbor.value());
        if (target >= stacks_.size() || adversary_role_[target] == 0) {
          ++t.trust_false_positives;
        } else if (detected[target] == 0 || iso.at < first_detect[target]) {
          detected[target] = 1;
          first_detect[target] = iso.at;
        }
      }
    }
    // Detection latency: workload start -> first isolation by ANY
    // monitor, averaged over the true adversaries detected at all.
    double latency_sum = 0.0;
    std::uint64_t detections = 0;
    for (std::size_t i = 0; i < stacks_.size(); ++i) {
      if (detected[i] == 0) continue;
      latency_sum += std::max(0.0, (first_detect[i] - config_.workload.start).to_seconds());
      ++detections;
    }
    t.trust_detection_latency_s =
        detections == 0 ? 0.0 : latency_sum / static_cast<double>(detections);
  }

  // DTN/session accounting ("users served"). The eligibility denominator
  // counts, per sourced packet, the sessions that had subscribed by its
  // source time on nodes that were themselves subscribed then.
  t.dtn_active = custody_enabled() || config_.sessions.enabled();
  if (config_.sessions.enabled() && source_ != nullptr) {
    for (const auto& s : stacks_) {
      if (s->sessions == nullptr) continue;
      t.sessions.sessions += s->sessions->session_count();
      t.sessions.users_served += s->sessions->users_served();
      for (const sim::SimTime ts : source_->send_times()) {
        if (s->sink != nullptr && s->sink->tracking() && !s->sink->subscribed_at(ts)) {
          continue;
        }
        t.sessions.user_eligible += s->sessions->eligible_at(ts);
      }
    }
  }
  return r;
}

stats::RunResult run_scenario(const ScenarioConfig& config) {
  Network net{config};
  net.run();
  return net.result();
}

}  // namespace ag::harness
