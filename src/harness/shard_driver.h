// Crash-resumable multi-process experiment driver: the supervisor half
// of the sharded sweep (the worker half is `--shard=` handled in
// bench/figure_common.h via ExperimentBuilder::run_cell + shard.h).
//
// Lifecycle of one shard (one (protocol, x, seed) cell):
//
//   pending ──spawn──► running ──exit 0 + parseable file──► done
//      ▲                  │
//      │                  ├─ nonzero exit / killed ─┐
//      │                  ├─ wall-clock timeout ────┤ attempt failed
//      │                  └─ torn/corrupt output ───┘
//      │                                  │
//      └── backoff (base · 2^attempt) ◄───┤ attempts left
//                                         └─ retries exhausted ──► failed
//                                            (failed_shards entry in the
//                                             merged BENCH JSON; the
//                                             sweep never aborts)
//
// Every completed shard is an atomically-written checkpoint
// (`shard_<i>.json`, temp + rename) plus an append-only line in
// `manifest.jsonl`; `--resume` re-parses existing checkpoints and only
// missing/failed cells re-run. Merging reproduces the in-process serial
// run byte-identically whenever every cell completed (see shard.h).
#ifndef AG_HARNESS_SHARD_DRIVER_H
#define AG_HARNESS_SHARD_DRIVER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment_builder.h"
#include "stats/run_result.h"

namespace ag::harness {

struct ShardDriverOptions {
  // Worker binary (normally argv[0]: the bench re-invokes itself) and
  // the bench args to forward so the worker rebuilds the same sweep
  // (e.g. --smoke, --protocols=...; shard-control flags are stripped by
  // the caller). The driver appends --shard=<i> --shard-dir=<dir>
  // --shard-attempt=<n>.
  std::string exe;
  std::vector<std::string> worker_args;
  // Scratch directory for checkpoints + manifest (created if missing).
  std::string shard_dir;
  // Concurrent worker processes. 0 = AG_SHARDS env, else hardware
  // concurrency.
  unsigned concurrency{0};
  // Per-shard wall-clock timeout in seconds before SIGKILL. 0 =
  // AG_SHARD_TIMEOUT env, else 600.
  std::uint32_t timeout_s{0};
  // Attempts per shard before degrading to a failed_shards entry. 0 =
  // AG_SHARD_RETRIES env, else 3.
  std::uint32_t max_attempts{0};
  // Exponential-backoff base in milliseconds (delay before attempt n+1 is
  // base * 2^(n-1), capped at 30 s). 0 = AG_SHARD_BACKOFF_MS env, else 250.
  std::uint32_t backoff_ms{0};
  // Reuse checkpoints already present in shard_dir (skip completed
  // cells). A fresh run (resume=false) clears stale checkpoints first.
  bool resume{false};
  // Merge-only: never launch workers; missing cells degrade to
  // failed_shards entries.
  bool merge_only{false};
  // Suppress per-shard progress lines on stdout (tests).
  bool quiet{false};
};

struct ShardRunReport {
  // Per-cell results in cell-index order; nullopt = shard failed (or
  // interrupted before it ran). Feed to ExperimentBuilder::assemble.
  std::vector<std::optional<stats::RunResult>> results;
  // Counts + failed entries for the merged BENCH JSON (section emitted
  // only when `failed` is non-empty — see ExperimentResult::write_json).
  ShardingInfo sharding;
  std::uint64_t reused{0};    // checkpoints satisfied from a prior run
  std::uint64_t launched{0};  // worker processes actually spawned
  // SIGINT/SIGTERM arrived: live workers were killed, the manifest was
  // flushed, results are partial — the caller must exit nonzero without
  // writing merged outputs.
  bool interrupted{false};
};

// Decomposes `builder`'s grid into one shard per cell and drives worker
// subprocesses to completion (timeouts, bounded retry with exponential
// backoff, crash/corrupt detection, resume, graceful degradation).
// Throws std::runtime_error only for environment-level failures (shard
// directory not creatable, fork failing outright).
[[nodiscard]] ShardRunReport run_shards(const ExperimentBuilder& builder,
                                        const ShardDriverOptions& options);

}  // namespace ag::harness

#endif  // AG_HARNESS_SHARD_DRIVER_H
