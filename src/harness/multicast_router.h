// The protocol-plugin boundary of the harness. The paper's claim is that
// Anonymous Gossip runs "on top of any of the tree-based and mesh-based
// protocols"; this interface is what "any" means concretely: a multicast
// routing substrate pluggable into a NodeStack. It unifies the gossip
// services (gossip::RoutingAdapter) with the lifecycle and data-plane
// calls the harness itself needs (start / join / leave / send) plus the
// stats hook the result extractor uses, so Network never names a concrete
// protocol type.
#ifndef AG_HARNESS_MULTICAST_ROUTER_H
#define AG_HARNESS_MULTICAST_ROUTER_H

#include <cstdint>

#include "gossip/routing_adapter.h"
#include "net/ids.h"
#include "stats/run_result.h"

namespace ag::harness {

class MulticastRouter : public gossip::RoutingAdapter {
 public:
  // Starts protocol machinery (hello beaconing, refresh timers). Called
  // once after wiring; stateless protocols need nothing. Called again
  // after reset() when a crashed node reboots.
  virtual void start() {}

  // Crash support (FaultInjector, wipe policy): drops all volatile
  // protocol state — routes, neighbors, tree/mesh membership, dedup
  // buffers — and stops periodic machinery, as a power-cycle would.
  // Data-plane sequence counters survive (modeled as stable storage) so
  // peers' duplicate suppression stays coherent when the node sources
  // again. start() brings the protocol back up.
  virtual void reset() {}

  // Wires the gossip layer (or any observer) into protocol events.
  virtual void set_observer(gossip::RouterObserver* observer) = 0;

  // --- membership / data plane (used by applications) ---
  virtual void join_group(net::GroupId group) = 0;
  virtual void leave_group(net::GroupId group) = 0;
  // Multicasts one data packet to the group; returns its sequence number.
  virtual std::uint32_t send_multicast(net::GroupId group,
                                       std::uint16_t payload_bytes) = 0;

  // Adds this node's protocol counters into the network-wide totals.
  virtual void add_totals(stats::NetworkTotals& totals) const = 0;
};

}  // namespace ag::harness

#endif  // AG_HARNESS_MULTICAST_ROUTER_H
