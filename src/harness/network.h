// Assembles a full network from a ScenarioConfig: mobility, channel, and
// one protocol stack (radio / MAC / router-plugin / gossip agent / app)
// per node; runs the scenario and extracts the RunResult. The router is
// built through the ProtocolRegistry, so Network never names a concrete
// protocol type.
#ifndef AG_HARNESS_NETWORK_H
#define AG_HARNESS_NETWORK_H

#include <memory>
#include <vector>

#include "app/multicast_sink.h"
#include "app/multicast_source.h"
#include "dtn/contact_monitor.h"
#include "dtn/custody_router.h"
#include "faults/adversary.h"
#include "faults/fault_injector.h"
#include "gossip/gossip_agent.h"
#include "session/session_manager.h"
#include "harness/multicast_router.h"
#include "harness/scenario.h"
#include "mac/csma_mac.h"
#include "net/data_plane.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/simulator.h"
#include "stats/run_result.h"

namespace ag::harness {

// The single multicast group used by the paper's experiments.
inline constexpr net::GroupId kGroup{1};

class Network {
 public:
  explicit Network(const ScenarioConfig& config);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Runs the configured scenario to completion (joins, traffic, drain).
  void run();
  // Runs only until `until` (for tests that inspect intermediate state).
  void run_until(sim::SimTime until) { sim_.run_until(until); }

  [[nodiscard]] stats::RunResult result() const;

  // --- accessors for tests and examples ---
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] phy::Channel& channel() { return *channel_; }
  [[nodiscard]] const ScenarioConfig& config() const { return config_; }
  [[nodiscard]] std::size_t node_count() const { return stacks_.size(); }
  [[nodiscard]] MulticastRouter& router(std::size_t i) { return *stacks_[i]->router; }
  // Typed view of node i's router; nullptr when the configured protocol
  // is implemented by a different router type.
  template <typename Router>
  [[nodiscard]] Router* router_as(std::size_t i) {
    return dynamic_cast<Router*>(stacks_[i]->router.get());
  }
  [[nodiscard]] gossip::GossipAgent& agent(std::size_t i) { return *stacks_[i]->agent; }
  [[nodiscard]] app::MulticastSink* sink(std::size_t i) { return stacks_[i]->sink.get(); }
  [[nodiscard]] mac::CsmaMac& mac(std::size_t i) { return *stacks_[i]->mac; }
  [[nodiscard]] bool is_member(std::size_t i) const { return i < config_.member_count(); }
  [[nodiscard]] std::size_t source_index() const { return 0; }
  [[nodiscard]] std::uint32_t packets_sent() const {
    return source_ == nullptr ? 0 : source_->sent();
  }
  // The fault injector driving this run, or nullptr when the effective
  // plan is empty (the common, zero-cost case).
  [[nodiscard]] faults::FaultInjector* fault_injector() { return injector_.get(); }
  // Node i's custody decorator, or nullptr when custody is off (config
  // disabled or the AG_CUSTODY=off hatch).
  [[nodiscard]] dtn::CustodyRouter* custody(std::size_t i) {
    return custody_.empty() ? nullptr : custody_[i];
  }
  [[nodiscard]] bool custody_enabled() const { return !custody_.empty(); }
  [[nodiscard]] bool is_gateway(std::size_t i) const {
    return i < gateway_.size() && gateway_[i] != 0;
  }
  // Node i's user-session multiplexer, or nullptr (sessions off/non-member).
  [[nodiscard]] session::SessionManager* sessions(std::size_t i) {
    return stacks_[i]->sessions.get();
  }
  // Node i's adversary/trust decorator, or nullptr when the axis is off
  // (no roles, trust disabled, or the AG_ADVERSARY=off hatch).
  [[nodiscard]] faults::AdversaryRouter* adversary(std::size_t i) {
    return adversary_.empty() ? nullptr : adversary_[i];
  }
  [[nodiscard]] bool adversary_enabled() const { return !adversary_.empty(); }
  [[nodiscard]] bool is_adversary(std::size_t i) const {
    return !adversary_role_.empty() && adversary_role_[i] != 0;
  }

 private:
  // FaultInjector hooks (no-ops unless the scenario carries a plan).
  void fault_crash(std::size_t node, faults::RebootPolicy policy);
  void fault_reboot(std::size_t node, faults::RebootPolicy policy);
  void fault_leave(std::size_t node);
  void fault_join(std::size_t node);
  void fault_partition(const faults::PartitionEvent& ev);
  void fault_heal();
  // Custody re-offer burst when `node` (re)appears: its current neighbors
  // offer their stores to it and vice versa. No-op when custody is off.
  void custody_contact_burst(std::size_t node);
  struct NodeStack {
    std::unique_ptr<phy::Radio> radio;
    std::unique_ptr<mac::CsmaMac> mac;
    std::unique_ptr<MulticastRouter> router;    // built by the registry
    std::unique_ptr<gossip::GossipAgent> agent;
    std::unique_ptr<app::MulticastSink> sink;   // members only
    std::unique_ptr<session::SessionManager> sessions;  // configured members
  };

  ScenarioConfig config_;
  sim::Simulator sim_;
  // Thread-local data-plane counters at construction; result() reports
  // the delta this network caused (construction, run and result all
  // happen on one thread).
  net::DataPlaneCounters dpc_baseline_;
  std::unique_ptr<mobility::RandomWaypoint> mobility_;
  std::unique_ptr<phy::Channel> channel_;
  std::vector<std::unique_ptr<NodeStack>> stacks_;
  std::unique_ptr<app::MulticastSource> source_;
  std::unique_ptr<faults::FaultInjector> injector_;
  // Custody tier (empty/null when custody is off — the zero-cost default):
  // per-node decorator pointers (owned by the stacks), the gateway flags,
  // and the contact monitor driving contact-based re-offers.
  std::vector<dtn::CustodyRouter*> custody_;
  std::vector<std::uint8_t> gateway_;
  std::unique_ptr<dtn::ContactMonitor> contact_monitor_;
  // Adversary axis (empty when the axis is off): per-node decorator
  // pointers (owned by the stacks, below any custody wrap), the resolved
  // role per node (0 = honest, else AdversaryMode + 1 — the ground truth
  // result() classifies isolations against), and the selective-forward
  // drop probability.
  std::vector<faults::AdversaryRouter*> adversary_;
  std::vector<std::uint8_t> adversary_role_;
  std::vector<double> adversary_drop_;
  // Application-level intent per node: whether it currently wants group
  // membership (drives the automatic rejoin after a reboot).
  std::vector<std::uint8_t> wants_member_;
};

// Builds, runs and summarizes one scenario.
[[nodiscard]] stats::RunResult run_scenario(const ScenarioConfig& config);

}  // namespace ag::harness

#endif  // AG_HARNESS_NETWORK_H
