// Model-level classification of scheduled events, powering the event-mix
// accounting layer: the simulator counts scheduled and executed events per
// category, Network surfaces the counts through stats::NetworkTotals, and
// the scale bench reports them — so claims like "per-slot MAC backoff
// ticks are 66% of all events" are tracked regression metrics instead of
// one-off profiler anecdotes, and future event-elision targets are
// visible straight from the bench artifacts.
#ifndef AG_SIM_EVENT_CATEGORY_H
#define AG_SIM_EVENT_CATEGORY_H

#include <cstddef>
#include <cstdint>

namespace ag::sim {

enum class EventCategory : std::uint8_t {
  other = 0,        // joins, app traffic, mobility legs, ACK tx at SIFS, ...
  mac_slot,         // CSMA backoff countdown (per-slot ticks, or the fused
                    // analytic deadline when it covers backoff slots)
  mac_difs,         // DIFS deference waits (no backoff slots pending)
  mac_ack_timeout,  // unicast ACK timers
  phy_delivery,     // frame arrivals, reception completions, tx completions
  router,           // routing + gossip protocol timers and jittered sends
  fault,            // fault-injection events (crash/reboot/partition/churn)
  dtn,              // custody-tier contact polling (zero when custody is off)
};

inline constexpr std::size_t kEventCategoryCount = 8;

[[nodiscard]] constexpr const char* event_category_name(std::size_t i) {
  constexpr const char* kNames[kEventCategoryCount] = {
      "other",        "mac_slot", "mac_difs", "mac_ack_timeout",
      "phy_delivery", "router",   "fault",    "dtn"};
  return i < kEventCategoryCount ? kNames[i] : "?";
}

[[nodiscard]] constexpr std::size_t category_index(EventCategory c) {
  return static_cast<std::size_t>(c);
}

}  // namespace ag::sim

#endif  // AG_SIM_EVENT_CATEGORY_H
