#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace ag::sim {

EventId Simulator::schedule_at(SimTime at, EventQueue::Action action) {
  assert(at >= now_ && "cannot schedule into the past");
  return queue_.schedule(at, std::move(action));
}

EventId Simulator::schedule_after(Duration delay, EventQueue::Action action) {
  return schedule_at(now_ + delay, std::move(action));
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t n = 0;
  EventQueue::Fired fired;
  while (queue_.pop_if_at_or_before(until, fired)) {
    now_ = fired.at;
    fired.action();
    ++n;
    ++executed_;
  }
  if (until != SimTime::max() && now_ < until) now_ = until;
  return n;
}

}  // namespace ag::sim
