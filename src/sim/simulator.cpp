#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace ag::sim {

EventId Simulator::schedule_at(SimTime at, EventQueue::Action action,
                               EventCategory category) {
  assert(at >= now_ && "cannot schedule into the past");
  ++event_mix_.scheduled[category_index(category)];
  return queue_.schedule(at, std::move(action), category);
}

EventId Simulator::schedule_after(Duration delay, EventQueue::Action action,
                                  EventCategory category) {
  return schedule_at(now_ + delay, std::move(action), category);
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t n = 0;
  EventQueue::Fired fired;
  while (queue_.pop_if_at_or_before(until, fired)) {
    now_ = fired.at;
    ++event_mix_.executed[category_index(fired.category)];
    fired.action();
    ++n;
    ++executed_;
  }
  if (until != SimTime::max() && now_ < until) now_ = until;
  return n;
}

}  // namespace ag::sim
