#include "sim/rng.h"

#include <vector>

namespace ag::sim {
namespace {

constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double pick = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (pick < acc) return i;
  }
  return weights.size() - 1;
}

Rng RngFactory::stream(std::string_view name, std::uint64_t instance) const {
  std::uint64_t h = splitmix64(run_seed_ ^ splitmix64(fnv1a(name) + instance));
  return Rng{h};
}

}  // namespace ag::sim
