// Deterministic random-number streams. Each protocol layer draws from its
// own named stream so that, e.g., adding one extra MAC backoff draw cannot
// perturb the mobility trace of an otherwise identical run.
#ifndef AG_SIM_RNG_H
#define AG_SIM_RNG_H

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace ag::sim {

// One random stream (thin wrapper over mt19937_64 with the draws we need).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_{seed} {}

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }
  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }
  bool bernoulli(double p) { return std::bernoulli_distribution{p}(engine_); }
  double exponential(double mean) {
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }
  std::uint64_t next_u64() { return engine_(); }

  // Index in [0, n) chosen with probability weights[i] / sum(weights).
  // Falls back to uniform choice when all weights are zero.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::mt19937_64 engine_;
};

// Derives independent named streams from a single run seed (splitmix64 over
// seed and a hash of the stream name, so stream sets are stable across runs).
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t run_seed) : run_seed_{run_seed} {}

  [[nodiscard]] Rng stream(std::string_view name, std::uint64_t instance = 0) const;
  [[nodiscard]] std::uint64_t run_seed() const { return run_seed_; }

 private:
  std::uint64_t run_seed_;
};

}  // namespace ag::sim

#endif  // AG_SIM_RNG_H
