// Simulation time: strongly typed time points and durations with
// integer-microsecond resolution (floating point would drift over a
// 600-second run with microsecond-scale MAC events).
#ifndef AG_SIM_TIME_H
#define AG_SIM_TIME_H

#include <cstdint>
#include <limits>

namespace ag::sim {

class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration us(std::int64_t v) { return Duration{v}; }
  static constexpr Duration ms(std::int64_t v) { return Duration{v * 1000}; }
  static constexpr Duration seconds(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e6)};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration infinity() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_us() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(us_) * 1e-6; }
  [[nodiscard]] constexpr bool is_zero() const { return us_ == 0; }

  constexpr Duration operator+(Duration o) const { return Duration{us_ + o.us_}; }
  constexpr Duration operator-(Duration o) const { return Duration{us_ - o.us_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{us_ * k}; }
  // Named to avoid int/double overload ambiguity at call sites.
  [[nodiscard]] constexpr Duration scaled(double k) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(us_) * k)};
  }
  constexpr Duration operator/(std::int64_t k) const { return Duration{us_ / k}; }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  explicit constexpr Duration(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime us(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime ms(std::int64_t v) { return SimTime{v * 1000}; }
  static constexpr SimTime seconds(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e6)};
  }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_us() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(us_) * 1e-6; }

  constexpr SimTime operator+(Duration d) const { return SimTime{us_ + d.count_us()}; }
  constexpr SimTime operator-(Duration d) const { return SimTime{us_ - d.count_us()}; }
  constexpr Duration operator-(SimTime o) const { return Duration::us(us_ - o.us_); }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  explicit constexpr SimTime(std::int64_t us) : us_{us} {}
  std::int64_t us_{0};
};

}  // namespace ag::sim

#endif  // AG_SIM_TIME_H
