#include "sim/timer.h"

namespace ag::sim {

void Timer::restart(Duration delay) {
  cancel();
  deadline_ = sim_->now() + delay;
  id_ = sim_->schedule_at(
      deadline_,
      [this] {
        id_ = EventId{};
        on_fire_();
      },
      category_);
}

void Timer::cancel() {
  if (id_.valid()) {
    sim_->cancel(id_);
    id_ = EventId{};
  }
}

void PeriodicTimer::start(Duration period, Rng* rng, Duration jitter) {
  period_ = period;
  jitter_ = jitter;
  rng_ = rng;
  arm();
}

void PeriodicTimer::arm() {
  Duration delay = period_;
  if (rng_ != nullptr && jitter_ > Duration::zero()) {
    delay = delay + Duration::us(rng_->uniform_int(0, jitter_.count_us() - 1));
  }
  timer_.restart(delay);
}

void PeriodicTimer::fire() {
  arm();  // rearm first so on_tick_ may stop() the timer
  on_tick_();
}

}  // namespace ag::sim
