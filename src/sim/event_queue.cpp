#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace ag::sim {

std::uint32_t EventQueue::acquire_slot(Action action) {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].action = std::move(action);
    slots_[slot].cancelled = false;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  assert(slots_.size() < kSlotMask && "too many concurrently pending events");
  slots_.push_back(Slot{std::move(action)});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) const {
  slots_[slot].action = nullptr;  // free captured state eagerly
  ++slots_[slot].generation;
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

EventId EventQueue::schedule(SimTime at, Action action) {
  const std::uint32_t slot = acquire_slot(std::move(action));
  heap_.push(Entry{at, next_seq_++, slot});
  ++live_count_;
  // Slot indices are offset by one so a packed id is never 0 (invalid).
  return EventId{(slots_[slot].generation << kSlotBits) | (slot + 1)};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint64_t slot_plus_one = id.id_ & kSlotMask;
  const std::uint64_t generation = id.id_ >> kSlotBits;
  const auto slot = static_cast<std::uint32_t>(slot_plus_one - 1);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // Stale generation: the event already fired (or was cancelled) and the
  // slot moved on. Same-generation cancelled: idempotent no-op.
  if (s.generation != generation || s.cancelled) return false;
  s.cancelled = true;
  --live_count_;
  return true;  // corpse stays in heap_, skipped on pop
}

void EventQueue::drop_cancelled_front() const {
  while (!heap_.empty() && slots_[heap_.top().slot].cancelled) {
    release_slot(heap_.top().slot);
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled_front();
  return heap_.empty() ? SimTime::max() : heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  Fired fired{top.at, std::move(slots_[top.slot].action)};
  release_slot(top.slot);
  heap_.pop();
  --live_count_;
  return fired;
}

}  // namespace ag::sim
