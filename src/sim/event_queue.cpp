#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace ag::sim {

std::uint32_t EventQueue::acquire_slot(Action action, EventCategory category) {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].action = std::move(action);
    slots_[slot].cancelled = false;
    slots_[slot].category = category;
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  assert(slots_.size() < kSlotMask && "too many concurrently pending events");
  slots_.push_back(Slot{std::move(action), 0, false, category, kNoSlot});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) const {
  slots_[slot].action = nullptr;  // free captured state eagerly
  ++slots_[slot].generation;
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

// --------------------------------------------------- 4-ary heap primitives
// Hole-based sifting: move entries into the hole and place the carried
// entry once at its final position, instead of three-move swaps.

void EventQueue::heap_push(Entry entry) const {
  std::size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::heap_pop() const {
  assert(!heap_.empty());
  const Entry carried = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    std::size_t best = first_child;
    const std::size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], carried)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = carried;
}

// ------------------------------------------------------------- public API

EventId EventQueue::schedule(SimTime at, Action action, EventCategory category) {
  const std::uint32_t slot = acquire_slot(std::move(action), category);
  heap_push(Entry{at, (next_seq_++ << kSlotBits) | slot});
  ++live_count_;
  // Slot indices are offset by one so a packed id is never 0 (invalid).
  return EventId{(slots_[slot].generation << kSlotBits) | (slot + 1)};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint64_t slot_plus_one = id.id_ & kSlotMask;
  const std::uint64_t generation = id.id_ >> kSlotBits;
  const auto slot = static_cast<std::uint32_t>(slot_plus_one - 1);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  // Stale generation: the event already fired (or was cancelled) and the
  // slot moved on. Same-generation cancelled: idempotent no-op.
  if (s.generation != generation || s.cancelled) return false;
  s.cancelled = true;
  --live_count_;
  return true;  // corpse stays in heap_, skipped on pop
}

void EventQueue::drop_cancelled_front() const {
  while (!heap_.empty() && slots_[heap_.front().slot()].cancelled) {
    release_slot(heap_.front().slot());
    heap_pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled_front();
  return heap_.empty() ? SimTime::max() : heap_.front().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty());
  const Entry top = heap_.front();
  Fired fired{top.at, std::move(slots_[top.slot()].action), slots_[top.slot()].category};
  release_slot(top.slot());
  heap_pop();
  --live_count_;
  return fired;
}

bool EventQueue::pop_if_at_or_before(SimTime until, Fired& out) {
  drop_cancelled_front();
  if (heap_.empty() || heap_.front().at > until) return false;
  const Entry top = heap_.front();
  out.at = top.at;
  out.action = std::move(slots_[top.slot()].action);
  out.category = slots_[top.slot()].category;
  release_slot(top.slot());
  heap_pop();
  --live_count_;
  return true;
}

}  // namespace ag::sim
