#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace ag::sim {

EventId EventQueue::schedule(SimTime at, Action action) {
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, id, std::move(action)});
  live_.insert(id);
  return EventId{id};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  return live_.erase(id.id_) > 0;  // corpse stays in heap_, skipped on pop
}

void EventQueue::drop_cancelled_front() const {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_cancelled_front();
  return heap_.empty() ? SimTime::max() : heap_.top().at;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty());
  // priority_queue::top() is const&; the Entry is moved out via const_cast,
  // which is safe because the entry is popped immediately after.
  Entry& top = const_cast<Entry&>(heap_.top());
  Fired fired{top.at, std::move(top.action)};
  live_.erase(top.id);
  heap_.pop();
  return fired;
}

}  // namespace ag::sim
