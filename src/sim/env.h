// Shared parser for the escape-hatch environment knobs (AG_SPATIAL_INDEX,
// AG_DENSE_TABLES, AG_BATCHED_BACKOFF): one definition of which spellings
// mean "off", so the three hatches can never drift apart.
#ifndef AG_SIM_ENV_H
#define AG_SIM_ENV_H

#include <cstdlib>
#include <cstring>

namespace ag::sim {

// True when the variable is set to off|0|false; unset or anything else
// means the feature stays on.
[[nodiscard]] inline bool env_flag_off(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
         std::strcmp(v, "false") == 0;
}

}  // namespace ag::sim

#endif  // AG_SIM_ENV_H
