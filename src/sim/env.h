// Shared parser for the AG_* environment knobs (AG_SEEDS, the escape
// hatches AG_SPATIAL_INDEX, AG_DENSE_TABLES, AG_BATCHED_BACKOFF, and the
// sharded-driver knobs AG_SHARDS/AG_SHARD_TIMEOUT/AG_SHARD_RETRIES/
// AG_SHARD_BACKOFF_MS/AG_SHARD_FAULT): the single place in the tree that
// reads AG_* variables, so knob spellings can never drift apart between
// call sites. Enforced by scripts/ag_lint.py rule `env` — getenv
// anywhere else must carry an allow annotation.
#ifndef AG_SIM_ENV_H
#define AG_SIM_ENV_H

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ag::sim {

// True when the variable is set to off|0|false; unset or anything else
// means the feature stays on.
[[nodiscard]] inline bool env_flag_off(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
         std::strcmp(v, "false") == 0;
}

// Strictly-positive integer knob (e.g. AG_SEEDS): unset/empty returns
// `fallback`; a malformed or out-of-range value warns on stderr and
// returns `fallback` rather than silently changing the run.
[[nodiscard]] inline std::uint32_t env_positive_u32(const char* name,
                                                    std::uint32_t fallback,
                                                    long max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  // strtol would accept leading whitespace and signs; the knob grammar
  // does not — a value must start with a digit.
  const bool digit_start = *env >= '0' && *env <= '9';
  const long v = std::strtol(env, &end, 10);
  if (!digit_start || errno != 0 || end == env || *end != '\0' || v <= 0 ||
      v > max_value) {
    std::fprintf(stderr,
                 "warning: ignoring invalid %s=\"%s\" (want a positive "
                 "integer); using %u\n",
                 name, env, fallback);
    return fallback;
  }
  return static_cast<std::uint32_t>(v);
}

// Raw string knob (e.g. AG_SHARD_FAULT's `<mode>@<shard>[x<times>]`
// grammar, parsed by harness::shard_fault_from_env): nullptr when unset.
// Exists so structured parsers elsewhere still route their one getenv
// through this file.
[[nodiscard]] inline const char* env_cstr(const char* name) {
  return std::getenv(name);
}

}  // namespace ag::sim

#endif  // AG_SIM_ENV_H
