// The simulation kernel: a clock plus the event queue. Single-threaded and
// deterministic — all model code runs inside event actions.
#ifndef AG_SIM_SIMULATOR_H
#define AG_SIM_SIMULATOR_H

#include <cstdint>

#include "sim/event_category.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ag::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t run_seed = 1) : rng_factory_{run_seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] const RngFactory& rng() const { return rng_factory_; }

  EventId schedule_at(SimTime at, EventQueue::Action action,
                      EventCategory category = EventCategory::other);
  EventId schedule_after(Duration delay, EventQueue::Action action,
                         EventCategory category = EventCategory::other);
  bool cancel(EventId id) { return queue_.cancel(id); }

  // Runs events until the queue drains or the clock passes `until`
  // (events at exactly `until` still fire). Returns events executed.
  std::size_t run_until(SimTime until);
  // Drains the queue completely (use only in tests with finite event sets).
  std::size_t run_all() { return run_until(SimTime::max()); }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  // Event-mix accounting: per-category scheduled/executed counts over the
  // whole run (cancelled events are scheduled but never executed). The
  // counters are bookkeeping only — nothing in the model reads them — so
  // they cannot perturb schedules.
  struct EventMix {
    std::uint64_t scheduled[kEventCategoryCount]{};
    std::uint64_t executed[kEventCategoryCount]{};
  };
  [[nodiscard]] const EventMix& event_mix() const { return event_mix_; }

 private:
  EventQueue queue_;
  SimTime now_;
  RngFactory rng_factory_;
  std::uint64_t executed_{0};
  EventMix event_mix_;
};

}  // namespace ag::sim

#endif  // AG_SIM_SIMULATOR_H
