// RAII timer on top of the simulator: protocol state machines hold Timers
// as members, so a destroyed router can never be called back by a stale
// event. Restarting implicitly cancels the previous schedule.
#ifndef AG_SIM_TIMER_H
#define AG_SIM_TIMER_H

#include <functional>
#include <utility>

#include "sim/simulator.h"

namespace ag::sim {

class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire,
        EventCategory category = EventCategory::other)
      : sim_{&sim}, on_fire_{std::move(on_fire)}, category_{category} {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  // (Re)arms the timer to fire after `delay` from now.
  void restart(Duration delay);
  // Same, recording the event under `category` for the event-mix
  // accounting (sticky: later plain restarts keep the last category).
  void restart(Duration delay, EventCategory category) {
    category_ = category;
    restart(delay);
  }
  void cancel();
  [[nodiscard]] bool pending() const { return id_.valid(); }
  // Expiry time of the armed timer (meaningful only when pending()).
  [[nodiscard]] SimTime deadline() const { return deadline_; }

 private:
  Simulator* sim_;
  std::function<void()> on_fire_;
  EventCategory category_;
  EventId id_;
  SimTime deadline_;
};

// Fixed-period timer with optional uniform jitter per tick; used for hello
// beacons, group hellos and gossip rounds.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, std::function<void()> on_tick,
                EventCategory category = EventCategory::other)
      : sim_{&sim},
        on_tick_{std::move(on_tick)},
        timer_{sim, [this] { fire(); }, category} {}

  // Starts ticking every `period`; each tick is displaced by a fresh uniform
  // draw in [0, jitter) using `rng` (pass nullptr for no jitter).
  void start(Duration period, Rng* rng = nullptr, Duration jitter = Duration::zero());
  void stop() { timer_.cancel(); }
  [[nodiscard]] bool running() const { return timer_.pending(); }

 private:
  void fire();
  void arm();

  Simulator* sim_;
  std::function<void()> on_tick_;
  Timer timer_;
  Duration period_;
  Duration jitter_;
  Rng* rng_{nullptr};
};

}  // namespace ag::sim

#endif  // AG_SIM_TIMER_H
