// Cancellable discrete-event queue. Events at equal times fire in
// scheduling order (FIFO), which keeps runs deterministic. Cancellation is
// lazy: cancelled entries stay in the heap and are skipped on pop, so both
// schedule and cancel are O(log n) / O(1) amortized.
#ifndef AG_SIM_EVENT_QUEUE_H
#define AG_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ag::sim {

// Opaque handle for cancelling a scheduled event. Value 0 is "invalid".
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class EventQueue;
  explicit constexpr EventId(std::uint64_t id) : id_{id} {}
  std::uint64_t id_{0};
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventId schedule(SimTime at, Action action);
  // Cancels a pending event. Returns false (harmless no-op) if the id is
  // invalid, already fired, or already cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] std::size_t size() const { return live_.size(); }
  // Time of the next live event; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time() const;

  // Pops and returns the next live event. Precondition: !empty().
  struct Fired {
    SimTime at;
    Action action;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t id;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among equal times
    }
  };

  void drop_cancelled_front() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> live_;  // scheduled, not yet fired/cancelled
  std::uint64_t next_id_{1};
};

}  // namespace ag::sim

#endif  // AG_SIM_EVENT_QUEUE_H
