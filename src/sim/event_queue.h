// Cancellable discrete-event queue. Events at equal times fire in
// scheduling order (FIFO), which keeps runs deterministic. Cancellation is
// lazy: cancelled entries stay in the heap and are skipped on pop, so both
// schedule and cancel are O(log n) / O(1) amortized.
//
// Liveness is tracked in a generational slot map instead of a hash set:
// an EventId packs {slot, generation}, so schedule/cancel/pop cost O(1)
// array reads with no hashing — this queue runs hundreds of millions of
// events in a large run, and per-event hash traffic used to dominate.
//
// The priority structure is an implicit 4-ary heap over 16-byte POD
// entries ({time, seq<<24|slot} — the schedule seq and the slot index
// pack into one word): half the tree depth of a binary heap, and the four
// children of a node fit in one cache line, so the sift-down loop (the
// hottest loop in the simulator) touches a fraction of the lines the old
// binary heap did. Pop order is a total order on (time, seq) — seq is
// unique — so heap arity cannot change schedules; the event-queue stress
// suite pins 4-ary pops against a reference binary heap on recorded
// traces.
#ifndef AG_SIM_EVENT_QUEUE_H
#define AG_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_category.h"
#include "sim/time.h"

namespace ag::sim {

// Opaque handle for cancelling a scheduled event. Value 0 is "invalid".
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class EventQueue;
  explicit constexpr EventId(std::uint64_t id) : id_{id} {}
  std::uint64_t id_{0};
};

class EventQueue {
 public:
  using Action = std::function<void()>;

  EventId schedule(SimTime at, Action action,
                   EventCategory category = EventCategory::other);
  // Cancels a pending event. Returns false (harmless no-op) if the id is
  // invalid, already fired, or already cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }
  // Time of the next live event; SimTime::max() when empty.
  [[nodiscard]] SimTime next_time() const;

  // Pops and returns the next live event. Precondition: !empty().
  struct Fired {
    SimTime at;
    Action action;
    EventCategory category{EventCategory::other};
  };
  Fired pop();
  // Fused empty/next_time/pop for the simulator's hot loop: pops into
  // `out` when the next live event fires at or before `until`; returns
  // false (leaving `out` untouched) otherwise.
  bool pop_if_at_or_before(SimTime until, Fired& out);

 private:
  // One slot per pending event, reused through a free list. The slot owns
  // the action (keeping heap entries small PODs — sift traffic is the
  // hottest loop in the simulator) and the liveness state; the generation
  // distinguishes a slot's current tenant from stale EventIds of past
  // tenants (40 generation bits: safe past 10^12 reuses).
  struct Slot {
    Action action;
    std::uint64_t generation{0};
    bool cancelled{false};
    EventCategory category{EventCategory::other};  // rides in padding
    std::uint32_t next_free{kNoSlot};
  };
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFF;
  static constexpr std::uint64_t kSlotBits = 24;  // 16M concurrently pending events
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

  struct Entry {
    SimTime at;
    // seq << kSlotBits | slot: comparing keys compares the monotone
    // schedule seq (slot bits only break ties between... nothing — seq is
    // already unique), keeping the entry at 16 bytes.
    std::uint64_t key;

    [[nodiscard]] std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key & kSlotMask);
    }
  };
  // Strict-weak "fires earlier": total order because seq is unique.
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;  // FIFO among equal times
  }

  [[nodiscard]] std::uint32_t acquire_slot(Action action, EventCategory category);
  void release_slot(std::uint32_t slot) const;
  void drop_cancelled_front() const;
  // Implicit 4-ary min-heap primitives over heap_.
  void heap_push(Entry entry) const;
  void heap_pop() const;

  mutable std::vector<Entry> heap_;
  mutable std::vector<Slot> slots_;
  mutable std::uint32_t free_head_{kNoSlot};
  std::size_t live_count_{0};
  std::uint64_t next_seq_{1};
};

}  // namespace ag::sim

#endif  // AG_SIM_EVENT_QUEUE_H
