#include "flood/flood_router.h"

namespace ag::flood {

FloodRouter::FloodRouter(mac::CsmaMac& mac, net::NodeId self, std::uint8_t data_ttl,
                         std::size_t dedup_capacity)
    : mac_{mac}, self_{self}, data_ttl_{data_ttl}, dedup_capacity_{dedup_capacity} {
  mac_.set_listener(this);
}

void FloodRouter::join_group(net::GroupId group) {
  if (members_.insert(group) && observer_ != nullptr) {
    observer_->on_self_membership_changed(group, true);
  }
}

void FloodRouter::leave_group(net::GroupId group) {
  if (members_.erase(group) && observer_ != nullptr) {
    observer_->on_self_membership_changed(group, false);
  }
}

bool FloodRouter::remember(const net::MsgId& id) {
  if (!seen_.insert(net::msg_key(id))) return false;
  seen_order_.push_back(id);
  while (seen_order_.size() > dedup_capacity_) {
    seen_.erase(net::msg_key(seen_order_.front()));
    seen_order_.pop_front();
  }
  return true;
}

std::uint32_t FloodRouter::send_multicast(net::GroupId group, std::uint16_t payload_bytes) {
  const std::uint32_t seq = next_seq_[group]++;
  net::MulticastData data;
  data.group = group;
  data.origin = self_;
  data.seq = seq;
  data.payload_bytes = payload_bytes;
  data.sent_at = mac_.now();
  data.hops = 0;
  remember(net::MsgId{self_, seq});
  ++counters_.data_originated;
  if (observer_ != nullptr) observer_->on_multicast_data(data, self_);
  net::Packet pkt;
  pkt.src = self_;
  pkt.dst = net::NodeId::broadcast();
  pkt.ttl = data_ttl_;
  pkt.payload = data;
  mac_.send(net::NodeId::broadcast(), std::move(pkt));
  return seq;
}

void FloodRouter::on_packet_received(const net::Packet& packet, net::NodeId from) {
  const auto* data = packet.get_if<net::MulticastData>();
  if (data == nullptr) return;
  if (!remember(net::MsgId{data->origin, data->seq})) {
    ++counters_.duplicates;
    return;
  }
  if (members_.contains(data->group)) {
    ++counters_.delivered;
    if (observer_ != nullptr) observer_->on_multicast_data(*data, from);
  }
  if (packet.ttl > 1) {
    net::Packet fwd = packet;
    fwd.ttl--;
    if (auto* d = fwd.get_if<net::MulticastData>()) d->hops++;
    ++counters_.rebroadcasts;
    mac_.send(net::NodeId::broadcast(), std::move(fwd));
  }
}

}  // namespace ag::flood
