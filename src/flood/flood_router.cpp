#include "flood/flood_router.h"

namespace ag::flood {

FloodRouter::FloodRouter(mac::CsmaMac& mac, net::NodeId self, std::uint8_t data_ttl,
                         std::size_t dedup_capacity, bool gossip_links)
    : mac_{mac},
      self_{self},
      data_ttl_{data_ttl},
      dedup_capacity_{dedup_capacity},
      gossip_links_{gossip_links} {
  mac_.set_listener(this);
}

void FloodRouter::join_group(net::GroupId group) {
  if (members_.insert(group) && observer_ != nullptr) {
    observer_->on_self_membership_changed(group, true);
  }
}

void FloodRouter::leave_group(net::GroupId group) {
  if (members_.erase(group) && observer_ != nullptr) {
    observer_->on_self_membership_changed(group, false);
  }
}

bool FloodRouter::remember(const net::MsgId& id) {
  if (!seen_.insert(net::msg_key(id))) return false;
  seen_order_.push_back(id);
  while (seen_order_.size() > dedup_capacity_) {
    seen_.erase(net::msg_key(seen_order_.front()));
    seen_order_.pop_front();
  }
  return true;
}

std::uint32_t FloodRouter::send_multicast(net::GroupId group, std::uint16_t payload_bytes) {
  const std::uint32_t seq = next_seq_[group]++;
  net::MulticastData data;
  data.group = group;
  data.origin = self_;
  data.seq = seq;
  data.payload_bytes = payload_bytes;
  data.sent_at = mac_.now();
  data.hops = 0;
  remember(net::MsgId{self_, seq});
  ++counters_.data_originated;
  if (observer_ != nullptr) observer_->on_multicast_data(data, self_);
  net::Packet pkt;
  pkt.src = self_;
  pkt.dst = net::NodeId::broadcast();
  pkt.ttl = data_ttl_;
  pkt.payload = data;
  mac_.send(net::NodeId::broadcast(), std::move(pkt));
  return seq;
}

void FloodRouter::on_packet_received(const net::Packet& packet, net::NodeId from) {
  if (gossip_links_) {
    heard_[from] = mac_.now();
    if (!packet.is<net::MulticastData>()) {
      handle_gossip_traffic(packet, from);
      return;
    }
  }
  const auto* data = packet.get_if<net::MulticastData>();
  if (data == nullptr) return;
  if (!remember(net::MsgId{data->origin, data->seq})) {
    ++counters_.duplicates;
    return;
  }
  if (members_.contains(data->group)) {
    ++counters_.delivered;
    if (observer_ != nullptr) observer_->on_multicast_data(*data, from);
  }
  if (packet.ttl > 1) {
    net::Packet fwd = packet;
    fwd.ttl--;
    if (auto* d = fwd.get_if<net::MulticastData>()) d->hops++;
    ++counters_.rebroadcasts;
    mac_.send(net::NodeId::broadcast(), std::move(fwd));
  }
}

void FloodRouter::handle_gossip_traffic(const net::Packet& packet, net::NodeId from) {
  if (packet.dst == self_) {
    if (observer_ != nullptr) observer_->on_gossip_packet(packet, from);
    return;
  }
  if (packet.dst.is_broadcast() || packet.ttl <= 1) return;
  // A reply (or cached-member walk) in transit: relay it one hop along
  // the freshest reverse-path hint.
  const net::NodeId next = next_hop_for(packet.dst);
  if (!next.is_valid()) {
    ++counters_.gossip_unroutable;
    return;
  }
  net::Packet fwd = packet;
  fwd.ttl--;
  ++counters_.gossip_relayed;
  mac_.send(next, std::move(fwd));
}

net::NodeId FloodRouter::next_hop_for(net::NodeId dest) const {
  const sim::SimTime now = mac_.now();
  if (const sim::SimTime* heard = heard_.find(dest);
      heard != nullptr && (now - *heard).to_seconds() <= kNeighborTtlS) {
    return dest;
  }
  if (const Hint* hint = hints_.find(dest); hint != nullptr) {
    if (const sim::SimTime* via = heard_.find(hint->via);
        via != nullptr && (now - *via).to_seconds() <= kNeighborTtlS) {
      return hint->via;
    }
  }
  return net::NodeId::invalid();
}

std::vector<net::NodeId> FloodRouter::tree_neighbors(net::GroupId) const {
  if (!gossip_links_) return {};
  // Every recently-heard transmitter is a peer on a relay-everything
  // substrate. Ascending node order (NodeTable contract) keeps walk
  // fan-out deterministic.
  std::vector<net::NodeId> out;
  const sim::SimTime now = mac_.now();
  heard_.for_each([&](net::NodeId id, const sim::SimTime& at) {
    if ((now - at).to_seconds() <= kNeighborTtlS) out.push_back(id);
  });
  return out;
}

void FloodRouter::unicast(net::NodeId dest, net::Payload payload) {
  if (!gossip_links_) return;
  const net::NodeId next = next_hop_for(dest);
  if (!next.is_valid()) {
    ++counters_.gossip_unroutable;
    return;
  }
  net::Packet pkt;
  pkt.src = self_;
  pkt.dst = dest;
  pkt.ttl = data_ttl_;
  pkt.payload = std::move(payload);
  mac_.send(next, std::move(pkt));
}

void FloodRouter::send_to_neighbor(net::NodeId neighbor, net::Payload payload) {
  if (!gossip_links_) return;
  net::Packet pkt;
  pkt.src = self_;
  pkt.dst = neighbor;
  pkt.ttl = 8;
  pkt.payload = std::move(payload);
  mac_.send(neighbor, std::move(pkt));
}

void FloodRouter::route_hint(net::NodeId dest, net::NodeId via_neighbor,
                             std::uint8_t hops) {
  if (!gossip_links_) return;
  hints_[dest] = Hint{via_neighbor, hops};
}

std::uint8_t FloodRouter::route_hops(net::NodeId dest) const {
  if (!gossip_links_) return 0;
  const Hint* h = hints_.find(dest);
  return h != nullptr ? h->hops : 0;
}

}  // namespace ag::flood
