// Blind-flooding multicast (the related-work baseline of paper section 6,
// Ho et al. [13]): every node rebroadcasts every data packet once. No
// routing state, maximal robustness, maximal cost. Implements the gossip
// RoutingAdapter degenerately (no tree, no unicast routing) to prove the
// adapter abstraction and to serve as the ablation baseline.
//
// With `gossip_links` set (the flooding_gossip protocol), the router
// additionally grows the minimum adapter surface Anonymous Gossip needs
// to ride on flooding: a heard-neighbor table (recently-overheard
// transmitters stand in for tree neighbors — on a relay-everything
// substrate every neighbor is a peer), and a reverse-path hint table
// (installed by the gossip agent as walks pass) that routes reply
// unicasts hop-by-hop back to their initiator. Plain flooding (the flag
// off) builds none of it and stays byte-identical to the historical
// baseline.
#ifndef AG_FLOOD_FLOOD_ROUTER_H
#define AG_FLOOD_FLOOD_ROUTER_H

#include <cstdint>
#include <deque>

#include "gossip/routing_adapter.h"
#include "harness/multicast_router.h"
#include "mac/csma_mac.h"
#include "net/data.h"
#include "net/dense_map.h"
#include "net/node_table.h"
#include "net/packet.h"

namespace ag::flood {

class FloodRouter final : public mac::MacListener, public harness::MulticastRouter {
 public:
  static constexpr std::size_t kDedupCapacity = 8192;
  // A transmitter counts as a live neighbor this long after last heard.
  static constexpr double kNeighborTtlS = 10.0;

  FloodRouter(mac::CsmaMac& mac, net::NodeId self, std::uint8_t data_ttl = 32,
              std::size_t dedup_capacity = kDedupCapacity, bool gossip_links = false);

  void set_observer(gossip::RouterObserver* observer) override {
    observer_ = observer;
  }

  // Crash support: membership, the dedup window and the gossip link
  // state are volatile; next_seq_ survives (see
  // harness::MulticastRouter::reset()).
  void reset() override {
    members_.clear();
    seen_.clear();
    seen_order_.clear();
    heard_.clear();
    hints_.clear();
  }

  void join_group(net::GroupId group) override;
  void leave_group(net::GroupId group) override;
  std::uint32_t send_multicast(net::GroupId group,
                               std::uint16_t payload_bytes) override;

  struct Counters {
    std::uint64_t data_originated{0};
    std::uint64_t rebroadcasts{0};
    std::uint64_t delivered{0};
    std::uint64_t duplicates{0};
    // gossip_links only: reply unicasts relayed along reverse-path hints,
    // and ones dropped because no live hop toward the destination exists.
    std::uint64_t gossip_relayed{0};
    std::uint64_t gossip_unroutable{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // harness::MulticastRouter stats hook: rebroadcasts (and hint-routed
  // gossip relays) are the flooding analogue of tree/mesh forwarding.
  void add_totals(stats::NetworkTotals& totals) const override {
    totals.data_forwarded += counters_.rebroadcasts + counters_.gossip_relayed;
  }

  // mac::MacListener:
  void on_packet_received(const net::Packet& packet, net::NodeId from) override;
  void on_unicast_failed(const net::Packet&, net::NodeId) override {}

  // gossip::RoutingAdapter (degenerate without gossip_links; heard-
  // neighbor peers and hint-routed unicasts with it).
  [[nodiscard]] net::NodeId self() const override { return self_; }
  [[nodiscard]] bool is_member(net::GroupId group) const override {
    return members_.contains(group);
  }
  [[nodiscard]] bool on_tree(net::GroupId) const override { return false; }
  [[nodiscard]] std::vector<net::NodeId> tree_neighbors(net::GroupId) const override;
  void unicast(net::NodeId dest, net::Payload payload) override;
  void send_to_neighbor(net::NodeId neighbor, net::Payload payload) override;
  void route_hint(net::NodeId dest, net::NodeId via_neighbor,
                  std::uint8_t hops) override;
  [[nodiscard]] std::uint8_t route_hops(net::NodeId dest) const override;

 private:
  struct Hint {
    net::NodeId via;
    std::uint8_t hops{0};
  };

  bool remember(const net::MsgId& id);
  // Live next hop toward `dest`: the node itself when recently heard,
  // else a recently-heard hint. invalid() when neither is live.
  [[nodiscard]] net::NodeId next_hop_for(net::NodeId dest) const;
  void handle_gossip_traffic(const net::Packet& packet, net::NodeId from);

  mac::CsmaMac& mac_;
  net::NodeId self_;
  std::uint8_t data_ttl_;
  std::size_t dedup_capacity_;
  const bool gossip_links_;
  gossip::RouterObserver* observer_{nullptr};
  net::IdSet<net::GroupId> members_;
  net::NodeTable<std::uint32_t, net::GroupId> next_seq_;
  net::DenseSet seen_;
  std::deque<net::MsgId> seen_order_;
  net::NodeTable<sim::SimTime> heard_;  // gossip_links: last frame per neighbor
  net::NodeTable<Hint> hints_;          // gossip_links: reverse-path hints
  Counters counters_;
};

}  // namespace ag::flood

#endif  // AG_FLOOD_FLOOD_ROUTER_H
