// Blind-flooding multicast (the related-work baseline of paper section 6,
// Ho et al. [13]): every node rebroadcasts every data packet once. No
// routing state, maximal robustness, maximal cost. Implements the gossip
// RoutingAdapter degenerately (no tree, no unicast routing) to prove the
// adapter abstraction and to serve as the ablation baseline.
#ifndef AG_FLOOD_FLOOD_ROUTER_H
#define AG_FLOOD_FLOOD_ROUTER_H

#include <cstdint>
#include <deque>

#include "gossip/routing_adapter.h"
#include "harness/multicast_router.h"
#include "mac/csma_mac.h"
#include "net/data.h"
#include "net/dense_map.h"
#include "net/node_table.h"
#include "net/packet.h"

namespace ag::flood {

class FloodRouter final : public mac::MacListener, public harness::MulticastRouter {
 public:
  FloodRouter(mac::CsmaMac& mac, net::NodeId self, std::uint8_t data_ttl = 32,
              std::size_t dedup_capacity = 8192);

  void set_observer(gossip::RouterObserver* observer) override {
    observer_ = observer;
  }

  // Crash support: membership and the dedup window are volatile;
  // next_seq_ survives (see harness::MulticastRouter::reset()).
  void reset() override {
    members_.clear();
    seen_.clear();
    seen_order_.clear();
  }

  void join_group(net::GroupId group) override;
  void leave_group(net::GroupId group) override;
  std::uint32_t send_multicast(net::GroupId group,
                               std::uint16_t payload_bytes) override;

  struct Counters {
    std::uint64_t data_originated{0};
    std::uint64_t rebroadcasts{0};
    std::uint64_t delivered{0};
    std::uint64_t duplicates{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // harness::MulticastRouter stats hook: rebroadcasts are the flooding
  // analogue of tree/mesh data forwarding.
  void add_totals(stats::NetworkTotals& totals) const override {
    totals.data_forwarded += counters_.rebroadcasts;
  }

  // mac::MacListener:
  void on_packet_received(const net::Packet& packet, net::NodeId from) override;
  void on_unicast_failed(const net::Packet&, net::NodeId) override {}

  // gossip::RoutingAdapter (degenerate: flooding has no tree or routes).
  [[nodiscard]] net::NodeId self() const override { return self_; }
  [[nodiscard]] bool is_member(net::GroupId group) const override {
    return members_.contains(group);
  }
  [[nodiscard]] bool on_tree(net::GroupId) const override { return false; }
  [[nodiscard]] std::vector<net::NodeId> tree_neighbors(net::GroupId) const override {
    return {};
  }
  void unicast(net::NodeId, net::Payload) override {}       // no unicast routing
  void send_to_neighbor(net::NodeId, net::Payload) override {}
  void route_hint(net::NodeId, net::NodeId, std::uint8_t) override {}
  [[nodiscard]] std::uint8_t route_hops(net::NodeId) const override { return 0; }

 private:
  bool remember(const net::MsgId& id);

  mac::CsmaMac& mac_;
  net::NodeId self_;
  std::uint8_t data_ttl_;
  std::size_t dedup_capacity_;
  gossip::RouterObserver* observer_{nullptr};
  net::IdSet<net::GroupId> members_;
  net::NodeTable<std::uint32_t, net::GroupId> next_seq_;
  net::DenseSet seen_;
  std::deque<net::MsgId> seen_order_;
  Counters counters_;
};

}  // namespace ag::flood

#endif  // AG_FLOOD_FLOOD_ROUTER_H
