// ODMRP control messages (Lee, Gerla, Chiang — "On-Demand Multicast
// Routing Protocol", WCNC 1999): the paper's section 5.5 names ODMRP as
// the next protocol Anonymous Gossip should layer over.
#ifndef AG_ODMRP_MESSAGES_H
#define AG_ODMRP_MESSAGES_H

#include <cstdint>
#include <vector>

#include "net/ids.h"

namespace ag::odmrp {

// Join Query: flooded by active sources every refresh interval. Receivers
// remember the previous hop as their path back toward the source.
struct JoinQueryMsg {
  net::GroupId group;
  net::NodeId source;
  std::uint32_t query_seq{0};  // dedups the flood, versions the soft state
  std::uint8_t hop_count{0};
};

// Join Reply: broadcast by members (and relayed by nodes finding
// themselves listed as a next hop), establishing the forwarding group.
struct JoinReplyMsg {
  struct Entry {
    net::NodeId source;
    net::NodeId next_hop;  // this neighbor becomes a forwarding-group node
    std::uint32_t query_seq{0};
  };
  net::GroupId group;
  net::NodeId sender;
  std::vector<Entry> entries;
};

}  // namespace ag::odmrp

#endif  // AG_ODMRP_MESSAGES_H
