// ODMRP timing constants (WCNC '99 defaults, scaled like our AODV ones).
#ifndef AG_ODMRP_PARAMS_H
#define AG_ODMRP_PARAMS_H

#include <cstddef>

#include "sim/time.h"

namespace ag::odmrp {

struct OdmrpParams {
  // Join Query refresh while a source is active.
  sim::Duration refresh_interval{sim::Duration::ms(3000)};
  // Forwarding-group membership lifetime (the classic 3x refresh).
  sim::Duration fg_timeout{sim::Duration::ms(9000)};
  // A source keeps querying this long after its last data packet.
  sim::Duration source_linger{sim::Duration::ms(6000)};
  std::uint8_t query_ttl{32};
  std::uint8_t data_ttl{32};
  std::size_t data_dedup_capacity{8192};
};

}  // namespace ag::odmrp

#endif  // AG_ODMRP_PARAMS_H
