// ODMRP: mesh-based on-demand multicast. Active sources periodically
// flood Join Queries; members answer with Join Replies that travel back
// hop-by-hop, turning the nodes they traverse into the forwarding group.
// Any forwarding-group node rebroadcasts non-duplicate data, so the mesh
// offers redundant paths a single tree cannot — at the price of the
// refresh floods (the trade-off the AG paper discusses in section 2).
//
// Derives from AodvRouter for unicast routing (cached gossip and gossip
// replies need it) and implements gossip::RoutingAdapter so Anonymous
// Gossip layers over the mesh exactly as it does over the MAODV tree —
// the generalization the paper's section 5.5 proposes. The "tree
// neighbors" exposed to the walk are the live mesh peers (neighbors known
// to be members or forwarding-group nodes).
#ifndef AG_ODMRP_ODMRP_ROUTER_H
#define AG_ODMRP_ODMRP_ROUTER_H

#include <cstdint>
#include <deque>

#include "aodv/aodv_router.h"
#include "gossip/routing_adapter.h"
#include "harness/multicast_router.h"
#include "net/data.h"
#include "net/dense_map.h"
#include "net/node_table.h"
#include "odmrp/messages.h"
#include "odmrp/params.h"

namespace ag::odmrp {

class OdmrpRouter final : public aodv::AodvRouter, public harness::MulticastRouter {
 public:
  OdmrpRouter(sim::Simulator& sim, mac::CsmaMac& mac, net::NodeId self,
              aodv::AodvParams aodv_params, OdmrpParams odmrp_params, sim::Rng rng);

  void start() override;
  void reset() override;
  void set_observer(gossip::RouterObserver* observer) override;

  void join_group(net::GroupId group) override;
  void leave_group(net::GroupId group) override;
  std::uint32_t send_multicast(net::GroupId group,
                               std::uint16_t payload_bytes) override;

  [[nodiscard]] bool is_forwarding(net::GroupId group) const;
  [[nodiscard]] std::vector<net::NodeId> mesh_neighbors(net::GroupId group) const;

  struct OdmrpCounters {
    std::uint64_t queries_sent{0};
    std::uint64_t queries_forwarded{0};
    std::uint64_t replies_sent{0};
    std::uint64_t fg_activations{0};
    std::uint64_t data_originated{0};
    std::uint64_t data_forwarded{0};
    std::uint64_t data_delivered{0};
    std::uint64_t data_duplicates{0};
  };
  [[nodiscard]] const OdmrpCounters& odmrp_counters() const { return ocounters_; }

  // harness::MulticastRouter stats hook.
  void add_totals(stats::NetworkTotals& totals) const override {
    totals.rreq_originated += counters().rreq_originated;
    totals.rerr_sent += counters().rerr_sent;
    totals.data_forwarded += ocounters_.data_forwarded;
  }

  // --- gossip::RoutingAdapter ---
  [[nodiscard]] net::NodeId self() const override { return AodvRouter::self(); }
  [[nodiscard]] bool is_member(net::GroupId group) const override {
    return members_.contains(group);
  }
  [[nodiscard]] bool on_tree(net::GroupId group) const override {
    return is_member(group) || is_forwarding(group);
  }
  [[nodiscard]] std::vector<net::NodeId> tree_neighbors(net::GroupId group) const override {
    return mesh_neighbors(group);
  }
  void unicast(net::NodeId dest, net::Payload payload) override;
  void send_to_neighbor(net::NodeId neighbor, net::Payload payload) override {
    AodvRouter::send_to_neighbor(neighbor, std::move(payload));
  }
  void route_hint(net::NodeId dest, net::NodeId via_neighbor, std::uint8_t hops) override {
    AodvRouter::route_hint(dest, via_neighbor, hops);
  }
  [[nodiscard]] std::uint8_t route_hops(net::NodeId dest) const override;

 protected:
  void handle_multicast_packet(const net::Packet& packet, net::NodeId from) override;

 private:
  struct GroupState {
    bool member{false};
    // Per active source: freshest query seq and the neighbor leading back.
    struct SourcePath {
      std::uint32_t query_seq{0};
      net::NodeId upstream{net::NodeId::invalid()};
      std::uint32_t replied_seq{0};  // last query answered with a JR
    };
    net::NodeTable<SourcePath> sources;
    sim::SimTime forwarding_until;               // FG_FLAG soft state
    net::NodeTable<sim::SimTime> mesh_peers;  // for gossip walks
    // Source-side state.
    std::uint32_t next_data_seq{0};
    std::uint32_t next_query_seq{1};
    sim::SimTime last_data_sent;
  };

  void process_query(const net::Packet& packet, const JoinQueryMsg& query,
                     net::NodeId from);
  void process_reply(const JoinReplyMsg& reply, net::NodeId from);
  void process_data(const net::Packet& packet, const net::MulticastData& data,
                    net::NodeId from);
  void send_reply(net::GroupId group, GroupState& gs, net::NodeId source);
  void refresh_tick();
  void note_mesh_peer(net::GroupId group, GroupState& gs, net::NodeId peer);
  void expire_soft_state(net::GroupId group, GroupState& gs);
  bool remember_data(const net::MsgId& id);
  GroupState& state_for(net::GroupId group);

  OdmrpParams oparams_;
  gossip::RouterObserver* observer_{nullptr};
  net::IdSet<net::GroupId> members_;
  net::NodeTable<GroupState, net::GroupId> groups_;
  net::DenseSet seen_data_;
  std::deque<net::MsgId> seen_data_order_;
  // Flood dedup for queries: (group, source) -> freshest query_seq.
  net::DenseMap<std::uint32_t> query_seen_;
  sim::PeriodicTimer refresh_timer_;
  OdmrpCounters ocounters_;
};

}  // namespace ag::odmrp

#endif  // AG_ODMRP_ODMRP_ROUTER_H
