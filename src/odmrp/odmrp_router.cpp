#include "odmrp/odmrp_router.h"

#include <algorithm>

namespace ag::odmrp {
namespace {

std::uint64_t query_key(net::GroupId group, net::NodeId source) {
  return (static_cast<std::uint64_t>(group.value()) << 32) | source.value();
}

}  // namespace

OdmrpRouter::OdmrpRouter(sim::Simulator& sim, mac::CsmaMac& mac, net::NodeId self,
                         aodv::AodvParams aodv_params, OdmrpParams odmrp_params,
                         sim::Rng rng)
    : AodvRouter{sim, mac, self, aodv_params, rng},
      oparams_{odmrp_params},
      refresh_timer_{sim, [this] { refresh_tick(); }, sim::EventCategory::router} {}

void OdmrpRouter::start() {
  AodvRouter::start();
  refresh_timer_.start(oparams_.refresh_interval, &rng(), oparams_.refresh_interval / 8);
}

void OdmrpRouter::reset() {
  refresh_timer_.stop();
  members_.clear();
  seen_data_.clear();
  seen_data_order_.clear();
  query_seen_.clear();
  // Per-group soft state is wiped, but data/query sequence counters
  // survive: see harness::MulticastRouter::reset().
  groups_.for_each([](net::GroupId, GroupState& gs) {
    GroupState fresh;
    fresh.next_data_seq = gs.next_data_seq;
    fresh.next_query_seq = gs.next_query_seq;
    gs = std::move(fresh);
  });
  reset_unicast_state();
}

void OdmrpRouter::set_observer(gossip::RouterObserver* observer) {
  observer_ = observer;
  if (observer_ != nullptr) {
    set_local_deliver([this](const net::Packet& pkt, net::NodeId from) {
      observer_->on_gossip_packet(pkt, from);
    });
  }
}

OdmrpRouter::GroupState& OdmrpRouter::state_for(net::GroupId group) {
  return groups_[group];
}

bool OdmrpRouter::is_forwarding(net::GroupId group) const {
  const GroupState* gs = groups_.find(group);
  return gs != nullptr && gs->forwarding_until >= simulator().now();
}

std::vector<net::NodeId> OdmrpRouter::mesh_neighbors(net::GroupId group) const {
  std::vector<net::NodeId> out;
  const GroupState* gs = groups_.find(group);
  if (gs == nullptr) return out;
  const sim::SimTime now = simulator().now();
  gs->mesh_peers.for_each([&](net::NodeId peer, const sim::SimTime& until) {
    if (until >= now) out.push_back(peer);
  });
  return out;
}

void OdmrpRouter::unicast(net::NodeId dest, net::Payload payload) {
  net::Packet pkt;
  pkt.src = self();
  pkt.dst = dest;
  pkt.ttl = params().net_ttl;
  pkt.payload = std::move(payload);
  send_unicast(std::move(pkt));
}

std::uint8_t OdmrpRouter::route_hops(net::NodeId dest) const {
  auto* self_mut = const_cast<OdmrpRouter*>(this);
  const aodv::RouteEntry* e = self_mut->route_table().find(dest);
  return e != nullptr && e->valid ? e->hops : 0;
}

// ------------------------------------------------------------- membership

void OdmrpRouter::join_group(net::GroupId group) {
  if (!members_.insert(group)) return;
  GroupState& gs = state_for(group);
  gs.member = true;
  if (observer_ != nullptr) observer_->on_self_membership_changed(group, true);
  // Answer any queries already flooding so the mesh reaches us quickly.
  std::vector<net::NodeId> sources;
  gs.sources.for_each(
      [&](net::NodeId source, const GroupState::SourcePath&) { sources.push_back(source); });
  for (net::NodeId source : sources) send_reply(group, gs, source);
}

void OdmrpRouter::leave_group(net::GroupId group) {
  if (!members_.erase(group)) return;
  GroupState& gs = state_for(group);
  gs.member = false;
  if (observer_ != nullptr) observer_->on_self_membership_changed(group, false);
  // Soft state simply stops being refreshed and times out.
}

// ------------------------------------------------------------- source side

std::uint32_t OdmrpRouter::send_multicast(net::GroupId group, std::uint16_t payload_bytes) {
  GroupState& gs = state_for(group);
  const bool first_activity = gs.last_data_sent == sim::SimTime::zero();
  gs.last_data_sent = simulator().now();

  const std::uint32_t seq = gs.next_data_seq++;
  net::MulticastData data;
  data.group = group;
  data.origin = self();
  data.seq = seq;
  data.payload_bytes = payload_bytes;
  data.sent_at = simulator().now();
  remember_data(net::MsgId{self(), seq});
  ++ocounters_.data_originated;
  if (gs.member && observer_ != nullptr) observer_->on_multicast_data(data, self());
  broadcast_packet(data, oparams_.data_ttl);

  if (first_activity) refresh_tick();  // flood the first Join Query now
  return seq;
}

void OdmrpRouter::refresh_tick() {
  const sim::SimTime now = simulator().now();
  groups_.for_each([&](net::GroupId group, GroupState& gs) {
    expire_soft_state(group, gs);
    const bool active_source = gs.last_data_sent != sim::SimTime::zero() &&
                               now - gs.last_data_sent <= oparams_.source_linger;
    if (!active_source) return;
    JoinQueryMsg query{group, self(), gs.next_query_seq++, 0};
    ++ocounters_.queries_sent;
    broadcast_packet(query, oparams_.query_ttl);
  });
}

void OdmrpRouter::expire_soft_state(net::GroupId group, GroupState& gs) {
  const sim::SimTime now = simulator().now();
  gs.mesh_peers.erase_if([&](net::NodeId peer, sim::SimTime& until) {
    if (until >= now) return false;
    if (observer_ != nullptr) observer_->on_tree_neighbor_removed(group, peer);
    return true;
  });
}

// ------------------------------------------------------------- mesh build

void OdmrpRouter::process_query(const net::Packet& packet, const JoinQueryMsg& query,
                                net::NodeId from) {
  if (query.source == self()) return;
  auto [seen, inserted] =
      query_seen_.try_emplace(query_key(query.group, query.source), query.query_seq);
  if (!inserted) {
    if (query.query_seq <= *seen) return;  // stale or duplicate flood copy
    *seen = query.query_seq;
  }
  GroupState& gs = state_for(query.group);
  auto& path = gs.sources[query.source];
  path.query_seq = query.query_seq;
  path.upstream = from;
  // The reverse path doubles as a unicast route to the source — exactly
  // the "collected at no extra cost" routes cached gossip wants.
  route_hint(query.source, from, static_cast<std::uint8_t>(query.hop_count + 1));

  if (gs.member) send_reply(query.group, gs, query.source);

  if (packet.ttl > 1) {
    JoinQueryMsg fwd = query;
    fwd.hop_count++;
    ++ocounters_.queries_forwarded;
    broadcast_jittered(fwd, static_cast<std::uint8_t>(packet.ttl - 1));
  }
}

void OdmrpRouter::send_reply(net::GroupId group, GroupState& gs, net::NodeId source) {
  if (source == self()) return;
  GroupState::SourcePath* found = gs.sources.find(source);
  if (found == nullptr) return;
  GroupState::SourcePath& path = *found;
  if (path.replied_seq >= path.query_seq) return;  // already answered this round
  if (!path.upstream.is_valid()) return;
  path.replied_seq = path.query_seq;
  JoinReplyMsg reply;
  reply.group = group;
  reply.sender = self();
  reply.entries.push_back({source, path.upstream, path.query_seq});
  ++ocounters_.replies_sent;
  broadcast_packet(reply, 1);
}

void OdmrpRouter::process_reply(const JoinReplyMsg& reply, net::NodeId from) {
  GroupState& gs = state_for(reply.group);
  // Whoever broadcasts a Join Reply is a member or forwarding-group node:
  // a live mesh peer for the gossip walk.
  note_mesh_peer(reply.group, gs, from);

  for (const JoinReplyMsg::Entry& entry : reply.entries) {
    if (entry.next_hop != self()) continue;
    // We are on a member-to-source path: join the forwarding group.
    const bool was_forwarding = gs.forwarding_until >= simulator().now();
    gs.forwarding_until = simulator().now() + oparams_.fg_timeout;
    if (!was_forwarding) ++ocounters_.fg_activations;
    note_mesh_peer(reply.group, gs, from);
    if (entry.source == self()) continue;  // the chain reached the source
    // Propagate the reply toward the source along our own reverse path.
    GroupState::SourcePath* path = gs.sources.find(entry.source);
    if (path == nullptr || !path->upstream.is_valid()) continue;
    if (path->replied_seq >= entry.query_seq) continue;
    path->replied_seq = entry.query_seq;
    JoinReplyMsg fwd;
    fwd.group = reply.group;
    fwd.sender = self();
    fwd.entries.push_back({entry.source, path->upstream, entry.query_seq});
    ++ocounters_.replies_sent;
    broadcast_packet(fwd, 1);
  }
}

void OdmrpRouter::note_mesh_peer(net::GroupId group, GroupState& gs, net::NodeId peer) {
  if (peer == self()) return;
  const auto until = simulator().now() + oparams_.fg_timeout;
  auto [expires, inserted] = gs.mesh_peers.try_emplace(peer, until);
  if (!inserted) {
    *expires = until;
    return;
  }
  if (observer_ != nullptr) observer_->on_tree_neighbor_added(group, peer, 0);
}

// -------------------------------------------------------------- data path

bool OdmrpRouter::remember_data(const net::MsgId& id) {
  if (!seen_data_.insert(net::msg_key(id))) return false;
  seen_data_order_.push_back(id);
  while (seen_data_order_.size() > oparams_.data_dedup_capacity) {
    seen_data_.erase(net::msg_key(seen_data_order_.front()));
    seen_data_order_.pop_front();
  }
  return true;
}

void OdmrpRouter::process_data(const net::Packet& packet, const net::MulticastData& data,
                               net::NodeId from) {
  GroupState& gs = state_for(data.group);
  if (!remember_data(net::MsgId{data.origin, data.seq})) {
    ++ocounters_.data_duplicates;
    return;
  }
  // The transmitter is the source or a forwarding-group node: mesh peer.
  note_mesh_peer(data.group, gs, from);
  if (gs.member) {
    ++ocounters_.data_delivered;
    if (observer_ != nullptr) observer_->on_multicast_data(data, from);
  }
  const bool forwarding = gs.forwarding_until >= simulator().now();
  if (forwarding && packet.ttl > 1) {
    net::MulticastData fwd = data;
    fwd.hops++;
    ++ocounters_.data_forwarded;
    broadcast_jittered(fwd, static_cast<std::uint8_t>(packet.ttl - 1),
                       sim::Duration::ms(5));
  }
}

void OdmrpRouter::handle_multicast_packet(const net::Packet& packet, net::NodeId from) {
  std::visit(net::overloaded{
                 [&](const JoinQueryMsg& q) { process_query(packet, q, from); },
                 [&](const JoinReplyMsg& r) { process_reply(r, from); },
                 [&](const net::MulticastData& d) { process_data(packet, d, from); },
                 [&](const auto&) {},
             },
             packet.payload);
}

}  // namespace ag::odmrp
