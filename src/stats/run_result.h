// Per-run measurement record: what the paper's figures are computed from.
#ifndef AG_STATS_RUN_RESULT_H
#define AG_STATS_RUN_RESULT_H

#include <cstdint>
#include <vector>

#include "net/ids.h"
#include "stats/summary.h"

namespace ag::stats {

struct MemberResult {
  net::NodeId node;
  std::uint64_t received{0};      // unique data packets delivered
  std::uint64_t via_gossip{0};    // of which recovered by gossip replies
  std::uint64_t replies_received{0};
  std::uint64_t replies_useful{0};
  double mean_latency_s{0.0};

  // Paper section 5.5: goodput = % of non-duplicate messages among all
  // messages received through gossip replies. A member that received no
  // replies has no redundant traffic; report 100.
  [[nodiscard]] double goodput_pct() const {
    if (replies_received == 0) return 100.0;
    return 100.0 * static_cast<double>(replies_useful) /
           static_cast<double>(replies_received);
  }
};

struct NetworkTotals {
  std::uint64_t channel_transmissions{0};
  std::uint64_t mac_unicast{0};
  std::uint64_t mac_broadcast{0};
  std::uint64_t mac_collisions{0};
  std::uint64_t mac_queue_drops{0};
  std::uint64_t rreq_originated{0};
  std::uint64_t rerr_sent{0};
  std::uint64_t grph_sent{0};
  std::uint64_t mact_sent{0};
  std::uint64_t data_forwarded{0};
  std::uint64_t gossip_walks{0};
  std::uint64_t gossip_replies{0};
  std::uint64_t nm_updates{0};
  std::uint64_t repairs_started{0};
  std::uint64_t partitions{0};
  std::uint64_t leaders_elected{0};
};

struct RunResult {
  std::uint64_t seed{0};
  std::uint32_t packets_sent{0};
  std::vector<MemberResult> members;  // receivers (source excluded)
  NetworkTotals totals;

  [[nodiscard]] std::vector<double> received_per_member() const {
    std::vector<double> out;
    out.reserve(members.size());
    for (const MemberResult& m : members) out.push_back(static_cast<double>(m.received));
    return out;
  }
  [[nodiscard]] Summary received_summary() const { return summarize(received_per_member()); }
  [[nodiscard]] double delivery_ratio() const {
    if (packets_sent == 0 || members.empty()) return 0.0;
    return received_summary().mean / static_cast<double>(packets_sent);
  }
  [[nodiscard]] double mean_goodput_pct() const {
    if (members.empty()) return 100.0;
    double sum = 0.0;
    for (const MemberResult& m : members) sum += m.goodput_pct();
    return sum / static_cast<double>(members.size());
  }
};

}  // namespace ag::stats

#endif  // AG_STATS_RUN_RESULT_H
