// Per-run measurement record: what the paper's figures are computed from.
#ifndef AG_STATS_RUN_RESULT_H
#define AG_STATS_RUN_RESULT_H

#include <cstdint>
#include <vector>

#include "net/ids.h"
#include "session/session_manager.h"
#include "sim/event_category.h"
#include "stats/summary.h"

namespace ag::stats {

struct MemberResult {
  // "All packets": the member was subscribed for the whole run, so every
  // sourced packet counts against it (the paper's static-membership case).
  static constexpr std::uint64_t kEligibleAll = ~std::uint64_t{0};

  net::NodeId node;
  std::uint64_t received{0};      // unique data packets delivered
  std::uint64_t via_gossip{0};    // of which recovered by gossip replies
  std::uint64_t replies_received{0};
  std::uint64_t replies_useful{0};
  // Packets sourced while this member was subscribed — the denominator of
  // its delivery ratio under churn. kEligibleAll outside fault runs.
  std::uint64_t eligible{kEligibleAll};
  double mean_latency_s{0.0};

  // Paper section 5.5: goodput = % of non-duplicate messages among all
  // messages received through gossip replies. A member that received no
  // replies has no redundant traffic; report 100.
  [[nodiscard]] double goodput_pct() const {
    if (replies_received == 0) return 100.0;
    return 100.0 * static_cast<double>(replies_useful) /
           static_cast<double>(replies_received);
  }
};

struct NetworkTotals {
  std::uint64_t channel_transmissions{0};
  // Phy-level work done by the channel: receptions scheduled, and
  // in-range receivers suppressed by a downed radio or an active
  // partition (identical whether the spatial index or the brute-force
  // scan found the receiver — see phy::Channel).
  std::uint64_t phy_deliveries{0};
  std::uint64_t phy_suppressed_down{0};
  std::uint64_t phy_suppressed_partition{0};
  // Simulator events executed over the run (the denominator of the
  // events/sec throughput the scale bench reports).
  std::uint64_t sim_events{0};
  // Event-mix accounting (sim::EventCategory order, names via
  // sim::event_category_name): events scheduled and executed per
  // category. These counts legitimately differ across the
  // AG_BATCHED_BACKOFF modes — the analytic countdown elides per-slot
  // tick events — so they feed BENCH_scale.json and the microbenches,
  // NOT the mode-independent figure JSONs.
  std::uint64_t ev_scheduled[sim::kEventCategoryCount]{};
  std::uint64_t ev_executed[sim::kEventCategoryCount]{};
  // Whole backoff slots consumed by every MAC's contention countdown —
  // engine-independent (ticked or analytically credited), so
  // sim_events + mac_events_elided() is a mode-comparable measure of
  // simulated work.
  std::uint64_t mac_backoff_slots_credited{0};
  // DIFS waits absorbed into a fused slot-countdown deadline (the
  // reference engine runs them as their own mac_difs events). Zero in
  // the per-slot reference engine.
  std::uint64_t mac_difs_elided{0};
  // Slot ticks the analytic countdown never scheduled: slots consumed
  // minus mac_slot events actually executed. Exactly zero in the
  // per-slot reference engine (every consumed slot was its own event).
  [[nodiscard]] std::uint64_t mac_slots_elided() const {
    const std::uint64_t ticked =
        ev_executed[sim::category_index(sim::EventCategory::mac_slot)];
    return mac_backoff_slots_credited > ticked ? mac_backoff_slots_credited - ticked
                                               : 0;
  }
  // Everything the analytic countdown represented without an event:
  // sim_events + this reconstructs what the reference engine executes.
  [[nodiscard]] std::uint64_t mac_events_elided() const {
    return mac_slots_elided() + mac_difs_elided;
  }
  // --- batched phy engine elision accounting (phy/batched_phy.h; both
  // zero in the per-receiver reference engine) ---
  // Receptions resolved analytically with no completion event scheduled,
  // credited as each would-be finish time passes, so counts stay exact
  // across run cutoffs.
  std::uint64_t phy_rx_elided{0};
  // Live receivers beyond the first swept by one batched completion
  // event (L receivers per event = L-1 reference finish events).
  std::uint64_t phy_rx_coalesced{0};
  // Reception completions the batched engine represented without their
  // own event: executed phy_delivery events + this reconstructs exactly
  // what the reference engine executes (pinned by
  // batched_phy_equivalence_test).
  [[nodiscard]] std::uint64_t phy_events_elided() const {
    return phy_rx_elided + phy_rx_coalesced;
  }
  // Data-plane work (net::DataPlaneCounters, diffed per run): logical
  // NodeTable/DenseMap operations and packet-pool allocation behaviour.
  // Counted at the container API level, so the dense and AG_DENSE_TABLES
  // =off reference backends report identical numbers.
  std::uint64_t table_probes{0};
  std::uint64_t pool_hits{0};
  std::uint64_t pool_misses{0};
  std::uint64_t mac_unicast{0};
  std::uint64_t mac_broadcast{0};
  std::uint64_t mac_collisions{0};
  std::uint64_t mac_queue_drops{0};
  std::uint64_t rreq_originated{0};
  std::uint64_t rerr_sent{0};
  std::uint64_t grph_sent{0};
  std::uint64_t mact_sent{0};
  std::uint64_t data_forwarded{0};
  std::uint64_t gossip_walks{0};
  std::uint64_t gossip_replies{0};
  std::uint64_t nm_updates{0};
  std::uint64_t repairs_started{0};
  std::uint64_t partitions{0};
  std::uint64_t leaders_elected{0};
  // --- DTN custody tier (src/dtn; all zero when custody is off) ---
  std::uint64_t custody_stored{0};            // fresh payloads taken into custody
  std::uint64_t custody_evicted_ttl{0};
  std::uint64_t custody_evicted_capacity{0};
  std::uint64_t custody_offers{0};            // handoff packets put on the air
  std::uint64_t custody_offers_failed{0};
  std::uint64_t custody_accepted{0};          // received handoffs new to the node
  std::uint64_t custody_duplicates{0};
  // --- adversary axis + trust layer (src/faults/adversary.h; all zero
  // when the axis is inactive) ---
  std::uint64_t adversary_nodes{0};       // compromised roles in the run
  std::uint64_t adversary_absorbed{0};    // payloads swallowed by adversaries
  std::uint64_t adversary_poisoned{0};    // gossip rounds poisoned or eaten
  std::uint64_t trust_isolations{0};      // (node, isolator) pairs fired
  std::uint64_t trust_false_positives{0}; // of which named an honest node
  std::uint64_t trust_filtered{0};        // packets/sends refused post-isolation
  // Mean sim-seconds from workload start to a true adversary's FIRST
  // isolation by any monitor, over the adversaries detected at all.
  double trust_detection_latency_s{0.0};
  // True when this run carried the adversary axis (roles assigned or the
  // trust layer armed). Gates the conditional BENCH json fields, exactly
  // like dtn_active.
  bool adversary_active{false};
  // --- user-session layer (src/session; zero sessions when disabled) ---
  session::SessionTotals sessions;
  // True when this run carried the DTN/session subsystem (custody enabled
  // or sessions hosted). Gates the conditional BENCH json fields, so runs
  // without the subsystem serialize byte-identically to pre-custody builds.
  bool dtn_active{false};
};

// Record of the faults a run actually experienced (all zero outside
// fault/churn scenarios).
struct FaultStats {
  std::uint64_t crashes{0};
  std::uint64_t reboots{0};
  std::uint64_t leaves{0};
  std::uint64_t joins{0};
  std::uint64_t partitions{0};
  std::uint64_t heals{0};
  double node_down_s{0.0};     // summed per-node radio downtime
  double partitioned_s{0.0};   // wall-clock the channel was cut

  [[nodiscard]] bool any() const {
    return crashes + reboots + leaves + joins + partitions + heals > 0;
  }
};

struct RunResult {
  std::uint64_t seed{0};
  std::uint32_t packets_sent{0};
  std::vector<MemberResult> members;  // receivers (source excluded)
  NetworkTotals totals;
  FaultStats faults;

  [[nodiscard]] std::vector<double> received_per_member() const {
    std::vector<double> out;
    out.reserve(members.size());
    for (const MemberResult& m : members) out.push_back(static_cast<double>(m.received));
    return out;
  }
  [[nodiscard]] Summary received_summary() const { return summarize(received_per_member()); }
  // Packets member `m` is accountable for (kEligibleAll resolves to the
  // full source output).
  [[nodiscard]] std::uint64_t eligible_of(const MemberResult& m) const {
    return m.eligible == MemberResult::kEligibleAll ? packets_sent : m.eligible;
  }
  [[nodiscard]] double delivery_ratio() const {
    if (packets_sent == 0 || members.empty()) return 0.0;
    bool full_run_members = true;
    for (const MemberResult& m : members) {
      if (eligible_of(m) != packets_sent) {
        full_run_members = false;
        break;
      }
    }
    // Static membership (the paper's experiments): the historical formula,
    // kept verbatim so fault-free runs aggregate bit-identically.
    if (full_run_members) {
      return received_summary().mean / static_cast<double>(packets_sent);
    }
    // Churn runs: each member is scored only over the packets sourced
    // while it was subscribed; members never eligible are skipped.
    double sum = 0.0;
    std::size_t scored = 0;
    for (const MemberResult& m : members) {
      const std::uint64_t eligible = eligible_of(m);
      if (eligible == 0) continue;
      sum += static_cast<double>(m.received) / static_cast<double>(eligible);
      ++scored;
    }
    return scored == 0 ? 0.0 : sum / static_cast<double>(scored);
  }
  [[nodiscard]] double mean_goodput_pct() const {
    if (members.empty()) return 100.0;
    double sum = 0.0;
    for (const MemberResult& m : members) sum += m.goodput_pct();
    return sum / static_cast<double>(members.size());
  }
};

}  // namespace ag::stats

#endif  // AG_STATS_RUN_RESULT_H
