// Small descriptive-statistics helpers used by results and benches.
#ifndef AG_STATS_SUMMARY_H
#define AG_STATS_SUMMARY_H

#include <cmath>
#include <cstddef>
#include <vector>

namespace ag::stats {

struct Summary {
  double mean{0.0};
  double min{0.0};
  double max{0.0};
  double stddev{0.0};
  std::size_t n{0};
};

[[nodiscard]] inline Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = xs.front();
  s.max = xs.front();
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    if (x < s.min) s.min = x;
    if (x > s.max) s.max = x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1 ? std::sqrt(var / static_cast<double>(xs.size() - 1)) : 0.0;
  return s;
}

}  // namespace ag::stats

#endif  // AG_STATS_SUMMARY_H
