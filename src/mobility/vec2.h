// Minimal 2-D vector for node positions (meters).
#ifndef AG_MOBILITY_VEC2_H
#define AG_MOBILITY_VEC2_H

#include <cmath>

namespace ag::mobility {

struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double k) const { return {x * k, y * k}; }
  constexpr bool operator==(const Vec2&) const = default;

  [[nodiscard]] double norm() const { return std::sqrt(x * x + y * y); }
  [[nodiscard]] constexpr double norm_sq() const { return x * x + y * y; }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

// Squared distance for range comparisons: d <= r on non-negative values is
// equivalent to d^2 <= r^2, so hot paths can skip the sqrt entirely.
[[nodiscard]] constexpr double distance_sq(Vec2 a, Vec2 b) { return (a - b).norm_sq(); }

}  // namespace ag::mobility

#endif  // AG_MOBILITY_VEC2_H
