// Highway mobility for the vehicular example from the paper's introduction
// ("communication between automobiles on highways"): nodes travel along
// parallel lanes at constant per-node speeds and wrap around at the end of
// the modeled stretch, so relative positions churn continuously.
#ifndef AG_MOBILITY_HIGHWAY_H
#define AG_MOBILITY_HIGHWAY_H

#include <vector>

#include "mobility/mobility_model.h"
#include "sim/rng.h"

namespace ag::mobility {

struct HighwayConfig {
  double length_m{1000.0};
  double lane_spacing_m{5.0};
  std::size_t lanes{2};
  double min_speed_mps{20.0};
  double max_speed_mps{35.0};
};

class HighwayMobility final : public MobilityModel {
 public:
  HighwayMobility(std::size_t node_count, const HighwayConfig& config, sim::Rng rng);

  [[nodiscard]] std::size_t node_count() const override { return cars_.size(); }
  [[nodiscard]] Vec2 position_of(std::size_t node, sim::SimTime at) const override;
  [[nodiscard]] Bounds bounds() const override {
    const double lanes_y =
        config_.lanes > 0 ? static_cast<double>(config_.lanes - 1) * config_.lane_spacing_m
                          : 0.0;
    return {{0.0, 0.0}, {config_.length_m, lanes_y}};
  }
  [[nodiscard]] double max_speed_mps() const override { return config_.max_speed_mps; }
  // Cars wrap from one end of the stretch to the other; the speed bound
  // holds in the circular x metric.
  [[nodiscard]] bool wraps_x() const override { return true; }

 private:
  struct Car {
    double start_x;
    double speed;  // signed: even lanes travel +x, odd lanes -x
    double lane_y;
  };

  HighwayConfig config_;
  std::vector<Car> cars_;
};

}  // namespace ag::mobility

#endif  // AG_MOBILITY_HIGHWAY_H
