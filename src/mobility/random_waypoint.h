// Random-waypoint mobility (the paper's model, section 5.1): each node
// starts at a uniform random position, repeatedly picks a uniform random
// destination in the area, travels at a speed drawn uniformly from
// [min_speed, max_speed], then rests for a pause drawn uniformly from
// [0, max_pause] before continuing.
#ifndef AG_MOBILITY_RANDOM_WAYPOINT_H
#define AG_MOBILITY_RANDOM_WAYPOINT_H

#include <vector>

#include "mobility/mobility_model.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ag::mobility {

// A uniform speed draw with min_speed = 0 (the paper's setting) can come
// out arbitrarily close to zero, making a leg effectively infinite.
// Clamping at 1 mm/s keeps legs finite without visibly changing the
// mobility pattern. Also the floor of max_speed_mps() below.
inline constexpr double kMinEffectiveSpeedMps = 1e-3;

struct RandomWaypointConfig {
  double area_width_m{200.0};
  double area_height_m{200.0};
  double min_speed_mps{0.0};
  double max_speed_mps{1.0};
  double max_pause_s{80.0};
};

class RandomWaypoint final : public MobilityModel {
 public:
  // Schedules waypoint-change events on `sim`; must outlive the run.
  RandomWaypoint(sim::Simulator& sim, std::size_t node_count,
                 const RandomWaypointConfig& config, sim::Rng rng);

  [[nodiscard]] std::size_t node_count() const override { return legs_.size(); }
  [[nodiscard]] Vec2 position_of(std::size_t node, sim::SimTime at) const override;
  [[nodiscard]] Bounds bounds() const override {
    return {{0.0, 0.0}, {config_.area_width_m, config_.area_height_m}};
  }
  [[nodiscard]] double max_speed_mps() const override;

 private:
  // One travel leg: linear motion from `from` (at depart) to `to`
  // (at arrive), then at rest until the next leg replaces this one.
  struct Leg {
    Vec2 from;
    Vec2 to;
    sim::SimTime depart;
    sim::SimTime arrive;
  };

  void start_next_leg(std::size_t node);
  [[nodiscard]] Vec2 random_point();

  sim::Simulator& sim_;
  RandomWaypointConfig config_;
  sim::Rng rng_;
  std::vector<Leg> legs_;
};

}  // namespace ag::mobility

#endif  // AG_MOBILITY_RANDOM_WAYPOINT_H
