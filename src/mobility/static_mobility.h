// Immobile nodes at fixed positions; used by unit tests and by examples
// that need hand-built topologies (lines, grids, the paper's Fig. 1 tree).
#ifndef AG_MOBILITY_STATIC_MOBILITY_H
#define AG_MOBILITY_STATIC_MOBILITY_H

#include <utility>
#include <vector>

#include "mobility/mobility_model.h"

namespace ag::mobility {

class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(std::vector<Vec2> positions)
      : positions_{std::move(positions)} {}

  [[nodiscard]] std::size_t node_count() const override { return positions_.size(); }
  [[nodiscard]] Vec2 position_of(std::size_t node, sim::SimTime) const override {
    return positions_[node];
  }
  // Tight box around the current positions.
  [[nodiscard]] Bounds bounds() const override;
  [[nodiscard]] double max_speed_mps() const override { return 0.0; }

  // Teleports are discontinuous: bump the generation so position caches
  // (the phy spatial index) rebuild before their next query.
  void move_to(std::size_t node, Vec2 p) {
    positions_[node] = p;
    bump_position_generation();
  }

  // Convenience builders for common test topologies.
  static StaticMobility line(std::size_t n, double spacing_m);
  static StaticMobility grid(std::size_t cols, std::size_t rows, double spacing_m);

 private:
  std::vector<Vec2> positions_;
};

}  // namespace ag::mobility

#endif  // AG_MOBILITY_STATIC_MOBILITY_H
