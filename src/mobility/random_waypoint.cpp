#include "mobility/random_waypoint.h"

#include <algorithm>
#include <cassert>

namespace ag::mobility {

RandomWaypoint::RandomWaypoint(sim::Simulator& sim, std::size_t node_count,
                               const RandomWaypointConfig& config, sim::Rng rng)
    : sim_{sim}, config_{config}, rng_{rng} {
  assert(config.max_speed_mps >= config.min_speed_mps);
  legs_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    const Vec2 start = random_point();
    legs_.push_back(Leg{start, start, sim::SimTime::zero(), sim::SimTime::zero()});
  }
  // First legs begin at t = 0, matching the paper (nodes placed randomly,
  // then immediately travel toward a random spot).
  for (std::size_t i = 0; i < node_count; ++i) {
    start_next_leg(i);
  }
}

Vec2 RandomWaypoint::random_point() {
  return Vec2{rng_.uniform(0.0, config_.area_width_m),
              rng_.uniform(0.0, config_.area_height_m)};
}

void RandomWaypoint::start_next_leg(std::size_t node) {
  Leg& leg = legs_[node];
  const Vec2 from = leg.to;  // rest position at end of previous leg
  const Vec2 to = random_point();
  const double speed = std::max(
      kMinEffectiveSpeedMps, rng_.uniform(config_.min_speed_mps, config_.max_speed_mps));
  const double travel_s = distance(from, to) / speed;
  const double pause_s = rng_.uniform(0.0, config_.max_pause_s);

  leg.from = from;
  leg.to = to;
  leg.depart = sim_.now();
  leg.arrive = sim_.now() + sim::Duration::seconds(travel_s);

  // Mobility legs stay under `other` (see sim::EventCategory — no
  // dedicated mobility bucket; they are a vanishing share of the mix).
  sim_.schedule_at(leg.arrive + sim::Duration::seconds(pause_s),
                   [this, node] { start_next_leg(node); },
                   sim::EventCategory::other);
}

double RandomWaypoint::max_speed_mps() const {
  // The clamp in start_next_leg can push an actual speed above the
  // configured maximum when max_speed_mps is below the clamp floor.
  return std::max(config_.max_speed_mps, kMinEffectiveSpeedMps);
}

Vec2 RandomWaypoint::position_of(std::size_t node, sim::SimTime at) const {
  const Leg& leg = legs_[node];
  if (at <= leg.depart) return leg.from;
  if (at >= leg.arrive) return leg.to;
  const double span = (leg.arrive - leg.depart).to_seconds();
  const double frac = span > 0.0 ? (at - leg.depart).to_seconds() / span : 1.0;
  return leg.from + (leg.to - leg.from) * frac;
}

}  // namespace ag::mobility
