// Interface for node mobility. A model owns the trajectories of all nodes
// in a run and answers position queries at the current simulation time.
// Models are closed-form between waypoints, so no per-tick events are
// needed; waypoint changes are scheduled on the simulator.
//
// Beyond positions, a model publishes the contract consumers such as the
// phy spatial index need to cache positions safely:
//  - bounds(): an axis-aligned box containing every trajectory,
//  - max_speed_mps(): a conservative bound on instantaneous node speed, so
//    |position_of(i, t) - position_of(i, t0)| <= max_speed_mps * (t - t0)
//    for closed-form motion (wrap-around excepted, see wraps_x()),
//  - wraps_x(): whether trajectories jump between the x extremes of the
//    bounds (toroidal motion, e.g. highway wrap-around),
//  - position_generation(): bumped on any discontinuous position change
//    outside the model's own motion law (e.g. StaticMobility::move_to), so
//    cached positions can be invalidated.
#ifndef AG_MOBILITY_MOBILITY_MODEL_H
#define AG_MOBILITY_MOBILITY_MODEL_H

#include <cstddef>
#include <cstdint>

#include "mobility/vec2.h"
#include "sim/time.h"

namespace ag::mobility {

// Axis-aligned bounding box of all trajectories.
struct Bounds {
  Vec2 min;
  Vec2 max;

  [[nodiscard]] constexpr double width() const { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const { return max.y - min.y; }
};

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  [[nodiscard]] virtual std::size_t node_count() const = 0;
  [[nodiscard]] virtual Vec2 position_of(std::size_t node, sim::SimTime at) const = 0;

  // Axis-aligned box every trajectory stays inside. Positions outside the
  // box (a test teleporting a node far away) are legal; consumers must
  // degrade gracefully, not misbehave.
  [[nodiscard]] virtual Bounds bounds() const = 0;

  // Conservative upper bound on instantaneous node speed in m/s. Zero
  // means positions never change except through position_generation()
  // bumps.
  [[nodiscard]] virtual double max_speed_mps() const = 0;

  // True when trajectories wrap between bounds().min.x and bounds().max.x
  // (the speed bound then holds in the circular x metric, not the plane).
  [[nodiscard]] virtual bool wraps_x() const { return false; }

  // Monotone counter, bumped whenever positions change discontinuously
  // outside the motion law (e.g. StaticMobility::move_to). Consumers
  // caching positions revalidate against it.
  [[nodiscard]] std::uint64_t position_generation() const { return generation_; }

 protected:
  void bump_position_generation() { ++generation_; }

 private:
  std::uint64_t generation_{0};
};

}  // namespace ag::mobility

#endif  // AG_MOBILITY_MOBILITY_MODEL_H
