// Interface for node mobility. A model owns the trajectories of all nodes
// in a run and answers position queries at the current simulation time.
// Models are closed-form between waypoints, so no per-tick events are
// needed; waypoint changes are scheduled on the simulator.
#ifndef AG_MOBILITY_MOBILITY_MODEL_H
#define AG_MOBILITY_MOBILITY_MODEL_H

#include <cstddef>

#include "mobility/vec2.h"
#include "sim/time.h"

namespace ag::mobility {

class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  [[nodiscard]] virtual std::size_t node_count() const = 0;
  [[nodiscard]] virtual Vec2 position_of(std::size_t node, sim::SimTime at) const = 0;
};

}  // namespace ag::mobility

#endif  // AG_MOBILITY_MOBILITY_MODEL_H
