#include "mobility/static_mobility.h"

namespace ag::mobility {

StaticMobility StaticMobility::line(std::size_t n, double spacing_m) {
  std::vector<Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(Vec2{static_cast<double>(i) * spacing_m, 0.0});
  }
  return StaticMobility{std::move(positions)};
}

StaticMobility StaticMobility::grid(std::size_t cols, std::size_t rows, double spacing_m) {
  std::vector<Vec2> positions;
  positions.reserve(cols * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      positions.push_back(
          Vec2{static_cast<double>(c) * spacing_m, static_cast<double>(r) * spacing_m});
    }
  }
  return StaticMobility{std::move(positions)};
}

}  // namespace ag::mobility
