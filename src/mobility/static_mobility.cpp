#include "mobility/static_mobility.h"

#include <algorithm>

namespace ag::mobility {

Bounds StaticMobility::bounds() const {
  Bounds b{};
  if (positions_.empty()) return b;
  b.min = b.max = positions_.front();
  for (const Vec2& p : positions_) {
    b.min.x = std::min(b.min.x, p.x);
    b.min.y = std::min(b.min.y, p.y);
    b.max.x = std::max(b.max.x, p.x);
    b.max.y = std::max(b.max.y, p.y);
  }
  return b;
}

StaticMobility StaticMobility::line(std::size_t n, double spacing_m) {
  std::vector<Vec2> positions;
  positions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(Vec2{static_cast<double>(i) * spacing_m, 0.0});
  }
  return StaticMobility{std::move(positions)};
}

StaticMobility StaticMobility::grid(std::size_t cols, std::size_t rows, double spacing_m) {
  std::vector<Vec2> positions;
  positions.reserve(cols * rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      positions.push_back(
          Vec2{static_cast<double>(c) * spacing_m, static_cast<double>(r) * spacing_m});
    }
  }
  return StaticMobility{std::move(positions)};
}

}  // namespace ag::mobility
