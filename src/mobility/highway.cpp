#include "mobility/highway.h"

#include <cmath>

namespace ag::mobility {

HighwayMobility::HighwayMobility(std::size_t node_count, const HighwayConfig& config,
                                 sim::Rng rng)
    : config_{config} {
  cars_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    const std::size_t lane = i % config.lanes;
    const double direction = (lane % 2 == 0) ? 1.0 : -1.0;
    cars_.push_back(Car{
        rng.uniform(0.0, config.length_m),
        direction * rng.uniform(config.min_speed_mps, config.max_speed_mps),
        static_cast<double>(lane) * config.lane_spacing_m,
    });
  }
}

Vec2 HighwayMobility::position_of(std::size_t node, sim::SimTime at) const {
  const Car& car = cars_[node];
  double x = std::fmod(car.start_x + car.speed * at.to_seconds(), config_.length_m);
  if (x < 0.0) x += config_.length_m;
  return Vec2{x, car.lane_y};
}

}  // namespace ag::mobility
