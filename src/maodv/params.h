// MAODV constants. Paper-pinned: group hello interval 5 s (section 5.1).
#ifndef AG_MAODV_PARAMS_H
#define AG_MAODV_PARAMS_H

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace ag::maodv {

struct MaodvParams {
  sim::Duration group_hello_interval{sim::Duration::ms(5000)};
  // Join: attempts = 1 + join_retries; first node to exhaust them becomes
  // the group leader (draft behaviour for the first member).
  std::uint32_t join_retries{2};
  sim::Duration join_wait{sim::Duration::ms(750)};
  std::uint32_t repair_retries{2};
  sim::Duration repair_wait{sim::Duration::ms(750)};
  // How long a forwarded join RREP's upstream candidate stays usable.
  sim::Duration graft_candidate_life{sim::Duration::ms(4000)};
  // Members that miss this many consecutive group hellos assume a silent
  // partition and start a repair.
  std::uint32_t allowed_group_hello_loss{3};
  std::size_t data_dedup_capacity{8192};
  sim::Duration merge_backoff{sim::Duration::ms(10000)};
  std::uint8_t grph_ttl{32};
  std::uint8_t join_ttl{16};
  std::uint8_t repair_ttl{16};
  std::uint8_t data_ttl{32};
};

}  // namespace ag::maodv

#endif  // AG_MAODV_PARAMS_H
