// MAODV-specific control messages (multicast tree activation and group
// hello). Join RREQ/RREP reuse the extended AODV messages.
#ifndef AG_MAODV_MESSAGES_H
#define AG_MAODV_MESSAGES_H

#include <cstdint>
#include <vector>

#include "net/ids.h"

namespace ag::maodv {

// Multicast activation. Unicast hop-by-hop along a path selected from join
// RREPs (J), upstream to leave the tree (P), or downstream to delegate
// group leadership after a partition (GL).
struct MactMsg {
  enum class Flag : std::uint8_t { join, prune, group_leader };

  net::GroupId group;
  net::NodeId origin;  // joining/pruning node (join: the RREQ originator)
  Flag flag{Flag::join};
  std::uint8_t hop_count{0};
};

// Group hello. Two propagation modes share this message:
//  - network-wide flood (tree_scoped = false): leader discovery, distance
//    estimation and partition/merge detection, as in the draft;
//  - tree-scoped beat (tree_scoped = true): travels strictly along
//    activated parent->child edges. `tree_children` lists the sender's
//    activated next hops, so a receiver only treats the copy as proof of
//    a live tree path if its parent actually lists it as a child —
//    one-sided (asymmetric) tree edges therefore time out and repair.
struct GrphMsg {
  net::GroupId group;
  net::NodeId leader;
  net::SeqNo group_seq;
  std::uint16_t hop_count{0};
  bool tree_scoped{false};
  std::vector<net::NodeId> tree_children;
};

}  // namespace ag::maodv

#endif  // AG_MAODV_MESSAGES_H
