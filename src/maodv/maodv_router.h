// Multicast AODV (IETF draft-05 multicast operation, paper section 3):
// shared-tree multicast with on-demand joins (RREQ-J / RREP-J / MACT),
// group leaders emitting periodic group hellos, downstream-initiated tree
// repair, partition handling with leader delegation, and tree merging when
// two leaders discover each other. Implements the gossip RoutingAdapter so
// Anonymous Gossip can layer on top without knowing MAODV internals.
#ifndef AG_MAODV_MAODV_ROUTER_H
#define AG_MAODV_MAODV_ROUTER_H

#include <cstdint>
#include <deque>
#include <memory>

#include "aodv/aodv_router.h"
#include "gossip/routing_adapter.h"
#include "harness/multicast_router.h"
#include "maodv/messages.h"
#include "maodv/multicast_route_table.h"
#include "maodv/params.h"
#include "net/data.h"

namespace ag::maodv {

class MaodvRouter : public aodv::AodvRouter, public harness::MulticastRouter {
 public:
  MaodvRouter(sim::Simulator& sim, mac::CsmaMac& mac, net::NodeId self,
              aodv::AodvParams aodv_params, MaodvParams maodv_params, sim::Rng rng);

  void start() override;
  void reset() override;

  // Wires the gossip layer (or any observer); also routes gossip-layer
  // unicast payloads delivered to this node into the observer.
  void set_observer(gossip::RouterObserver* observer) override;

  // --- membership / data API (used by applications) ---
  void join_group(net::GroupId group) override;
  void leave_group(net::GroupId group) override;
  // Multicasts one data packet to the group; returns its sequence number.
  std::uint32_t send_multicast(net::GroupId group,
                               std::uint16_t payload_bytes) override;

  [[nodiscard]] const GroupEntry* group_entry(net::GroupId group) const {
    return mrt_.find(group);
  }
  [[nodiscard]] const MaodvParams& maodv_params() const { return mparams_; }

  struct McastCounters {
    std::uint64_t joins_started{0};
    std::uint64_t joins_completed{0};
    std::uint64_t leaders_elected{0};
    std::uint64_t repairs_started{0};
    std::uint64_t repairs_succeeded{0};
    std::uint64_t partitions{0};
    std::uint64_t merges_initiated{0};
    std::uint64_t grph_sent{0};
    std::uint64_t grph_forwarded{0};
    std::uint64_t mact_sent{0};
    std::uint64_t prunes_sent{0};
    std::uint64_t data_originated{0};
    std::uint64_t data_forwarded{0};
    std::uint64_t data_delivered{0};
    std::uint64_t data_rejected_off_tree{0};
    std::uint64_t data_duplicates{0};
  };
  [[nodiscard]] const McastCounters& mcast_counters() const { return mcounters_; }

  // harness::MulticastRouter stats hook.
  void add_totals(stats::NetworkTotals& totals) const override {
    totals.rreq_originated += counters().rreq_originated;
    totals.rerr_sent += counters().rerr_sent;
    totals.grph_sent += mcounters_.grph_sent;
    totals.mact_sent += mcounters_.mact_sent;
    totals.data_forwarded += mcounters_.data_forwarded;
    totals.repairs_started += mcounters_.repairs_started;
    totals.partitions += mcounters_.partitions;
    totals.leaders_elected += mcounters_.leaders_elected;
  }

  // --- gossip::RoutingAdapter ---
  [[nodiscard]] net::NodeId self() const override { return AodvRouter::self(); }
  [[nodiscard]] bool is_member(net::GroupId group) const override;
  [[nodiscard]] bool on_tree(net::GroupId group) const override;
  [[nodiscard]] std::vector<net::NodeId> tree_neighbors(net::GroupId group) const override;
  void unicast(net::NodeId dest, net::Payload payload) override;
  void send_to_neighbor(net::NodeId neighbor, net::Payload payload) override {
    AodvRouter::send_to_neighbor(neighbor, std::move(payload));
  }
  void route_hint(net::NodeId dest, net::NodeId via_neighbor, std::uint8_t hops) override {
    AodvRouter::route_hint(dest, via_neighbor, hops);
  }
  [[nodiscard]] std::uint8_t route_hops(net::NodeId dest) const override;

 protected:
  bool try_answer_join_rreq(const aodv::RreqMsg& rreq, net::NodeId from) override;
  void handle_join_rrep(const aodv::RrepMsg& rrep, net::NodeId from) override;
  void handle_multicast_packet(const net::Packet& packet, net::NodeId from) override;
  void on_neighbor_lost(net::NodeId neighbor) override;

 private:
  struct JoinCandidate {
    net::NodeId via{net::NodeId::invalid()};
    net::NodeId responder{net::NodeId::invalid()};
    net::NodeId leader{net::NodeId::invalid()};
    net::SeqNo group_seq;
    std::uint16_t total_hops_to_leader{GroupEntry::kUnknownHops};
    std::uint8_t hops_to_responder{0};
    bool responder_is_member{false};
    bool valid{false};
  };
  struct JoinAttempt {
    std::uint32_t attempts{0};
    bool repair{false};
    net::NodeId merge_target{net::NodeId::invalid()};  // valid during merges
    JoinCandidate best;
    std::unique_ptr<sim::Timer> timer;
  };
  struct GraftCandidate {
    net::NodeId via{net::NodeId::invalid()};
    sim::SimTime expires;
  };

  void start_join(net::GroupId group, bool repair,
                  net::NodeId merge_target = net::NodeId::invalid());
  void join_wait_expired(net::GroupId group);
  void finish_join_success(net::GroupId group, JoinAttempt& attempt);
  void become_leader(net::GroupId group);
  void handle_partition(net::GroupId group);
  void send_mact(net::NodeId to, net::GroupId group, net::NodeId origin,
                 MactMsg::Flag flag, std::uint8_t hop_count = 0);
  void process_mact(const MactMsg& mact, net::NodeId from);
  void process_grph(const net::Packet& packet, const GrphMsg& grph, net::NodeId from);
  void process_tree_beat(const GrphMsg& beat, net::NodeId from);
  void process_data(const net::Packet& packet, const net::MulticastData& data,
                    net::NodeId from);
  void emit_group_hellos();
  void check_group_liveness();
  void maybe_self_prune(net::GroupId group);
  void initiate_merge(net::GroupId group, net::NodeId other_leader);
  void activate_hop(GroupEntry& entry, net::NodeId hop, bool upstream,
                    std::uint16_t member_distance_hint);
  void deactivate_hop(GroupEntry& entry, net::NodeId hop);
  bool remember_data(const net::MsgId& id);
  // Packs a (group, node) pair into a DenseMap key — graft candidates,
  // GRPH dedup and corrective-prune throttling all index on such pairs.
  [[nodiscard]] static std::uint64_t pair_key(net::GroupId g, net::NodeId node) {
    return (static_cast<std::uint64_t>(g.value()) << 32) | node.value();
  }

  MaodvParams mparams_;
  MulticastRouteTable mrt_;
  gossip::RouterObserver* observer_{nullptr};

  net::NodeTable<JoinAttempt, net::GroupId> joins_;
  net::DenseMap<GraftCandidate> grafts_;  // key pair_key(group, origin)
  net::NodeTable<std::uint32_t, net::GroupId> next_data_seq_;
  // GRPH dedup: per (group, leader), freshest sequence seen (flood and
  // tree-scoped beats tracked separately).
  net::DenseMap<net::SeqNo> grph_seen_;
  net::DenseMap<net::SeqNo> tree_beat_seen_;
  net::NodeTable<sim::SimTime, net::GroupId> last_merge_attempt_;
  net::DenseMap<sim::SimTime> corrective_prune_at_;
  net::DenseSet seen_data_;
  std::deque<net::MsgId> seen_data_order_;
  sim::PeriodicTimer grph_timer_;
  sim::PeriodicTimer liveness_timer_;
  McastCounters mcounters_;
};

}  // namespace ag::maodv

#endif  // AG_MAODV_MAODV_ROUTER_H
