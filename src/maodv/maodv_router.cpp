#include "maodv/maodv_router.h"

#include <algorithm>
#include <cassert>

namespace ag::maodv {

MaodvRouter::MaodvRouter(sim::Simulator& sim, mac::CsmaMac& mac, net::NodeId self,
                         aodv::AodvParams aodv_params, MaodvParams maodv_params,
                         sim::Rng rng)
    : AodvRouter{sim, mac, self, aodv_params, rng},
      mparams_{maodv_params},
      grph_timer_{sim, [this] { emit_group_hellos(); }, sim::EventCategory::router},
      liveness_timer_{sim, [this] { check_group_liveness(); },
                      sim::EventCategory::router} {}

void MaodvRouter::start() {
  AodvRouter::start();
  grph_timer_.start(mparams_.group_hello_interval, &rng(),
                    mparams_.group_hello_interval / 8);
  liveness_timer_.start(mparams_.group_hello_interval, &rng(),
                        mparams_.group_hello_interval / 8);
}

void MaodvRouter::reset() {
  grph_timer_.stop();
  liveness_timer_.stop();
  joins_.clear();  // RAII timers cancel any pending join retry
  grafts_.clear();
  grph_seen_.clear();
  tree_beat_seen_.clear();
  last_merge_attempt_.clear();
  corrective_prune_at_.clear();
  seen_data_.clear();
  seen_data_order_.clear();
  mrt_.clear();
  reset_unicast_state();
  // next_data_seq_ survives: see harness::MulticastRouter::reset().
}

void MaodvRouter::set_observer(gossip::RouterObserver* observer) {
  observer_ = observer;
  if (observer_ != nullptr) {
    set_local_deliver([this](const net::Packet& pkt, net::NodeId from) {
      observer_->on_gossip_packet(pkt, from);
    });
  }
}

// ------------------------------------------------------------- membership

bool MaodvRouter::is_member(net::GroupId group) const {
  const GroupEntry* e = mrt_.find(group);
  return e != nullptr && e->is_member;
}

bool MaodvRouter::on_tree(net::GroupId group) const {
  const GroupEntry* e = mrt_.find(group);
  return e != nullptr && e->on_tree();
}

std::vector<net::NodeId> MaodvRouter::tree_neighbors(net::GroupId group) const {
  const GroupEntry* e = mrt_.find(group);
  return e == nullptr ? std::vector<net::NodeId>{} : e->enabled_hops();
}

void MaodvRouter::unicast(net::NodeId dest, net::Payload payload) {
  net::Packet pkt;
  pkt.src = self();
  pkt.dst = dest;
  pkt.ttl = params().net_ttl;
  pkt.payload = std::move(payload);
  send_unicast(std::move(pkt));
}

std::uint8_t MaodvRouter::route_hops(net::NodeId dest) const {
  // Route table access is non-const in the base; cast is safe (lookup only).
  auto* self_mut = const_cast<MaodvRouter*>(this);
  const aodv::RouteEntry* e = self_mut->route_table().find(dest);
  return e != nullptr && e->valid ? e->hops : 0;
}

void MaodvRouter::join_group(net::GroupId group) {
  GroupEntry& e = mrt_.get_or_create(group);
  if (e.is_member) return;
  e.is_member = true;
  if (observer_ != nullptr) observer_->on_self_membership_changed(group, true);
  if (e.on_tree()) return;  // already a tree router; membership flag suffices
  if (e.join_state != JoinState::none) return;
  start_join(group, /*repair=*/false);
}

void MaodvRouter::leave_group(net::GroupId group) {
  GroupEntry* e = mrt_.find(group);
  if (e == nullptr || !e->is_member) return;
  e->is_member = false;
  if (observer_ != nullptr) observer_->on_self_membership_changed(group, false);
  maybe_self_prune(group);
}

// ------------------------------------------------------------------ joins

void MaodvRouter::start_join(net::GroupId group, bool repair, net::NodeId merge_target) {
  GroupEntry& e = mrt_.get_or_create(group);
  e.join_state = repair ? JoinState::repairing : JoinState::joining;

  JoinAttempt& attempt = joins_[group];
  if (attempt.timer == nullptr) {
    attempt.timer = std::make_unique<sim::Timer>(
        simulator(), [this, group] { join_wait_expired(group); },
        sim::EventCategory::router);
  }
  if (attempt.attempts == 0) {
    attempt.repair = repair;
    attempt.merge_target = merge_target;
    attempt.best = JoinCandidate{};
    mcounters_.joins_started += repair ? 0 : 1;
    mcounters_.repairs_started += repair ? 1 : 0;
  }
  ++attempt.attempts;

  aodv::RreqMsg rreq;
  rreq.rreq_id = next_rreq_id();
  rreq.origin = self();
  rreq.origin_seq = bump_own_seq();
  rreq.dest = merge_target;  // invalid() unless this is a merge
  rreq.join = true;
  rreq.repair = repair;
  rreq.group = group;
  if (e.seq_known) {
    rreq.group_seq = e.group_seq;
    rreq.group_seq_known = true;
  }
  if (repair) {
    rreq.mgl_present = true;
    rreq.mgl_hop_count = e.hops_to_leader;
  }
  broadcast_packet(rreq, repair ? mparams_.repair_ttl : mparams_.join_ttl);

  sim::Duration wait = repair ? mparams_.repair_wait : mparams_.join_wait;
  for (std::uint32_t i = 1; i < attempt.attempts; ++i) wait = wait * std::int64_t{2};
  attempt.timer->restart(wait);
}

bool MaodvRouter::try_answer_join_rreq(const aodv::RreqMsg& rreq, net::NodeId from) {
  GroupEntry* e = mrt_.find(rreq.group);
  if (e == nullptr || !e->on_tree()) return false;
  // A node mid-repair must not graft others onto a possibly detached
  // subtree.
  if (e->join_state == JoinState::repairing) return false;

  if (rreq.dest.is_valid()) {
    // Merge RREQ: only the targeted leader itself may answer.
    if (rreq.dest != self() || !e->is_leader) return false;
    // Win the freshness contest so every node of both partitions adopts
    // this leader on the next group hello.
    if (rreq.group_seq_known && rreq.group_seq.fresher_than(e->group_seq)) {
      e->group_seq = rreq.group_seq;
    }
    e->group_seq = e->group_seq.next();
  } else if (rreq.repair) {
    // Only nodes strictly closer to the leader may repair (prevents the
    // requester's own subtree from answering and forming a loop).
    if (!rreq.mgl_present || e->hops_to_leader >= rreq.mgl_hop_count) return false;
  } else {
    // Plain join: our group information must be at least as fresh.
    if (!e->seq_known) return false;
    if (rreq.group_seq_known && !e->group_seq.at_least_as_fresh_as(rreq.group_seq)) {
      return false;
    }
  }

  aodv::RrepMsg rrep;
  rrep.join = true;
  rrep.group = rreq.group;
  rrep.origin = rreq.origin;
  rrep.dest = rreq.origin;
  rrep.dest_seq = rreq.origin_seq;
  rrep.group_seq = e->group_seq;
  rrep.group_leader = e->is_leader ? self() : e->leader;
  rrep.mgl_hop_count = e->hops_to_leader == GroupEntry::kUnknownHops
                           ? GroupEntry::kUnknownHops
                           : e->hops_to_leader;
  rrep.responder = self();
  rrep.responder_is_member = e->is_member;
  rrep.hop_count = 0;
  rrep.lifetime = mparams_.graft_candidate_life;
  send_rrep(from, rrep);
  return true;
}

void MaodvRouter::handle_join_rrep(const aodv::RrepMsg& rrep, net::NodeId from) {
  if (rrep.origin == self()) {
    JoinAttempt* found = joins_.find(rrep.group);
    if (found == nullptr) return;  // late RREP, join already resolved
    JoinAttempt& attempt = *found;
    if (observer_ != nullptr && rrep.responder_is_member) {
      observer_->on_member_learned(rrep.group, rrep.responder,
                                   static_cast<std::uint8_t>(rrep.hop_count + 1));
    }
    const std::uint16_t total =
        rrep.mgl_hop_count == GroupEntry::kUnknownHops
            ? GroupEntry::kUnknownHops
            : static_cast<std::uint16_t>(rrep.mgl_hop_count + rrep.hop_count + 1);
    JoinCandidate cand{from,
                       rrep.responder,
                       rrep.group_leader,
                       rrep.group_seq,
                       total,
                       static_cast<std::uint8_t>(rrep.hop_count + 1),
                       rrep.responder_is_member,
                       /*valid=*/true};
    const bool better =
        !attempt.best.valid || cand.group_seq.fresher_than(attempt.best.group_seq) ||
        (cand.group_seq == attempt.best.group_seq &&
         cand.total_hops_to_leader < attempt.best.total_hops_to_leader);
    if (better) attempt.best = cand;
    return;
  }
  // Intermediate hop: remember the upstream candidate for this (group,
  // origin) graft and relay toward the origin along the reverse route.
  grafts_[pair_key(rrep.group, rrep.origin)] =
      GraftCandidate{from, simulator().now() + mparams_.graft_candidate_life};
  aodv::RouteEntry* back = route_table().find_valid(rrep.origin, simulator().now());
  if (back == nullptr) return;
  aodv::RrepMsg fwd = rrep;
  fwd.hop_count++;
  net::Packet pkt;
  pkt.src = self();
  pkt.dst = back->next_hop;
  pkt.ttl = params().net_ttl;
  pkt.payload = fwd;
  unicast_to_neighbor(back->next_hop, std::move(pkt));
}

void MaodvRouter::join_wait_expired(net::GroupId group) {
  JoinAttempt* found = joins_.find(group);
  if (found == nullptr) return;
  JoinAttempt& attempt = *found;
  GroupEntry& e = mrt_.get_or_create(group);

  if (attempt.best.valid) {
    finish_join_success(group, attempt);
    return;
  }
  const std::uint32_t max_attempts =
      1 + (attempt.repair ? mparams_.repair_retries : mparams_.join_retries);
  if (attempt.attempts < max_attempts) {
    start_join(group, attempt.repair, attempt.merge_target);
    return;
  }
  // All attempts exhausted.
  const bool was_repair = attempt.repair;
  const bool was_merge = attempt.merge_target.is_valid();
  joins_.erase(group);
  e.join_state = JoinState::none;
  if (was_merge) return;  // merge failed; stay leader, retry on next GRPH
  if (was_repair) {
    handle_partition(group);
  } else if (e.is_member) {
    // First member of the group: nobody answered, so found it (draft
    // behaviour: the first member becomes the group leader).
    become_leader(group);
  }
}

void MaodvRouter::finish_join_success(net::GroupId group, JoinAttempt& attempt) {
  GroupEntry& e = mrt_.get_or_create(group);
  const JoinCandidate best = attempt.best;
  const bool was_repair = attempt.repair;
  const bool was_merge = attempt.merge_target.is_valid();
  joins_.erase(group);
  e.join_state = JoinState::none;

  // Grafting onto a new parent: drop any previous upstream (single
  // upstream invariant keeps the structure a tree).
  const net::NodeId old_upstream = e.upstream();
  if (old_upstream.is_valid() && old_upstream != best.via) {
    send_mact(old_upstream, group, self(), MactMsg::Flag::prune);
    deactivate_hop(e, old_upstream);
  }

  // If the graft point is our direct neighbor and a member, the nearest
  // member through this hop is at distance 1.
  const std::uint16_t hint =
      best.via == best.responder && best.responder_is_member ? 1 : 0;
  activate_hop(e, best.via, /*upstream=*/true, hint);
  e.leader = best.leader;
  e.group_seq = best.group_seq;
  e.seq_known = true;
  e.hops_to_leader = best.total_hops_to_leader;
  e.last_group_hello = simulator().now();
  if (was_merge) {
    // Merged under the other tree: relinquish leadership; our old subtree
    // adopts the surviving leader from its fresher group hellos.
    e.is_leader = false;
  }
  send_mact(best.via, group, self(), MactMsg::Flag::join);
  mcounters_.joins_completed += was_repair ? 0 : 1;
  mcounters_.repairs_succeeded += was_repair ? 1 : 0;
}

void MaodvRouter::become_leader(net::GroupId group) {
  GroupEntry& e = mrt_.get_or_create(group);
  e.is_leader = true;
  e.leader = self();
  e.group_seq = e.seq_known ? e.group_seq.next() : net::SeqNo{1};
  e.seq_known = true;
  e.hops_to_leader = 0;
  e.clear_upstream_flags();  // a leader has no upstream
  e.join_state = JoinState::none;
  e.last_group_hello = simulator().now();
  ++mcounters_.leaders_elected;
  // Announce immediately so concurrent joiners find the tree quickly.
  emit_group_hellos();
}

void MaodvRouter::handle_partition(net::GroupId group) {
  GroupEntry& e = mrt_.get_or_create(group);
  ++mcounters_.partitions;
  // The broken upstream is already deactivated. Elect a leader within the
  // surviving downstream subtree.
  if (e.is_member) {
    become_leader(group);
    return;
  }
  const std::vector<net::NodeId> hops = e.enabled_hops();
  if (hops.empty()) {
    mrt_.erase(group);
    return;
  }
  // Delegate leadership toward the first member found downstream.
  send_mact(hops.front(), group, self(), MactMsg::Flag::group_leader);
  e.leader = net::NodeId::invalid();
  e.hops_to_leader = GroupEntry::kUnknownHops;
}

// ------------------------------------------------------------------- MACT

void MaodvRouter::send_mact(net::NodeId to, net::GroupId group, net::NodeId origin,
                            MactMsg::Flag flag, std::uint8_t hop_count) {
  MactMsg mact{group, origin, flag, hop_count};
  ++mcounters_.mact_sent;
  if (flag == MactMsg::Flag::prune) ++mcounters_.prunes_sent;
  AodvRouter::send_to_neighbor(to, mact);
}

void MaodvRouter::process_mact(const MactMsg& mact, net::NodeId from) {
  GroupEntry& e = mrt_.get_or_create(mact.group);
  switch (mact.flag) {
    case MactMsg::Flag::join: {
      const bool on_tree_before = e.on_tree();
      // The sender is our new downstream branch. If the sender is the
      // joining member itself, the nearest member through it is 1 hop.
      activate_hop(e, from, /*upstream=*/false,
                   mact.origin == from ? std::uint16_t{1} : std::uint16_t{0});
      if (on_tree_before || e.is_leader) return;  // graft completed here
      if (e.upstream().is_valid()) return;
      // Continue the activation chain toward the tree.
      const std::uint64_t key = pair_key(mact.group, mact.origin);
      const GraftCandidate* git = grafts_.find(key);
      if (git == nullptr || git->expires < simulator().now()) {
        // Candidate expired: we cannot reach the tree. Prune the orphan
        // branch; the joiner will retry.
        send_mact(from, mact.group, self(), MactMsg::Flag::prune);
        deactivate_hop(e, from);
        maybe_self_prune(mact.group);
        return;
      }
      const net::NodeId up = git->via;
      grafts_.erase(key);
      activate_hop(e, up, /*upstream=*/true, 0);
      send_mact(up, mact.group, mact.origin, MactMsg::Flag::join,
                static_cast<std::uint8_t>(mact.hop_count + 1));
      return;
    }
    case MactMsg::Flag::prune: {
      const MulticastNextHop* h = e.find_hop(from);
      const bool was_upstream = h != nullptr && h->enabled && h->upstream;
      if (h != nullptr) deactivate_hop(e, from);
      if (was_upstream) {
        // Our parent disowned us (often a one-sided hello timeout on its
        // side): re-attach the whole subtree below us.
        if ((e.is_member || e.enabled_count() > 0) && e.join_state == JoinState::none) {
          start_join(mact.group, /*repair=*/true);
        }
        return;
      }
      maybe_self_prune(mact.group);
      return;
    }
    case MactMsg::Flag::group_leader: {
      if (e.is_member || e.is_leader) {
        become_leader(mact.group);
        return;
      }
      for (net::NodeId hop : e.enabled_hops()) {
        if (hop != from) {
          send_mact(hop, mact.group, mact.origin, MactMsg::Flag::group_leader,
                    static_cast<std::uint8_t>(mact.hop_count + 1));
          return;
        }
      }
      // Degenerate: non-member leaf asked to delegate leadership.
      become_leader(mact.group);
      return;
    }
  }
}

void MaodvRouter::maybe_self_prune(net::GroupId group) {
  GroupEntry* e = mrt_.find(group);
  if (e == nullptr) return;
  if (e->is_member || e->is_leader) return;
  const std::vector<net::NodeId> hops = e->enabled_hops();
  if (hops.size() == 1) {
    // Leaf router with no local member: leave the tree (paper section 3).
    send_mact(hops.front(), group, self(), MactMsg::Flag::prune);
    deactivate_hop(*e, hops.front());
  }
  if (e->enabled_count() == 0) mrt_.erase(group);
}

void MaodvRouter::activate_hop(GroupEntry& entry, net::NodeId hop, bool upstream,
                               std::uint16_t member_distance_hint) {
  MulticastNextHop& h = entry.add_or_get_hop(hop);
  const bool newly_enabled = !h.enabled;
  h.enabled = true;
  if (upstream) {
    entry.clear_upstream_flags();
    h.upstream = true;
  }
  if (newly_enabled && observer_ != nullptr) {
    observer_->on_tree_neighbor_added(entry.group, hop, member_distance_hint);
  }
}

void MaodvRouter::deactivate_hop(GroupEntry& entry, net::NodeId hop) {
  MulticastNextHop* h = entry.find_hop(hop);
  if (h == nullptr) return;
  const bool was_enabled = h->enabled;
  entry.remove_hop(hop);
  if (was_enabled && observer_ != nullptr) {
    observer_->on_tree_neighbor_removed(entry.group, hop);
  }
}

// ------------------------------------------------------------------- GRPH

void MaodvRouter::emit_group_hellos() {
  mrt_.for_each([&](net::GroupId group, GroupEntry& e) {
    if (!e.is_leader) return;
    e.group_seq = e.group_seq.next();
    e.seq_known = true;
    e.last_group_hello = simulator().now();
    GrphMsg grph{group, self(), e.group_seq, 0, false, {}};
    ++mcounters_.grph_sent;
    broadcast_packet(grph, mparams_.grph_ttl);
    // Tree-scoped beat: proves, edge by edge, that the tree still hangs
    // together (the flood above reaches everyone regardless of the tree,
    // so it cannot serve as a liveness signal).
    if (e.enabled_count() > 0) {
      GrphMsg beat{group, self(), e.group_seq, 0, true, e.enabled_hops()};
      broadcast_packet(beat, 1);
    }
  });
}

void MaodvRouter::process_tree_beat(const GrphMsg& beat, net::NodeId from) {
  GroupEntry* e = mrt_.find(beat.group);
  if (e == nullptr || !e->on_tree() || e->is_leader) return;
  MulticastNextHop* h = e->find_hop(from);
  if (h == nullptr || !h->enabled) return;
  // Bidirectional check: our parent must list us among its children.
  if (std::find(beat.tree_children.begin(), beat.tree_children.end(), self()) ==
      beat.tree_children.end()) {
    return;
  }
  // Dedup per (leader, seq) so transient cycles cannot echo beats forever.
  auto [seen, inserted] =
      tree_beat_seen_.try_emplace(pair_key(beat.group, beat.leader), beat.group_seq);
  if (!inserted) {
    if (!beat.group_seq.fresher_than(*seen)) return;
    *seen = beat.group_seq;
  }
  e->leader = beat.leader;
  e->group_seq = beat.group_seq;
  e->seq_known = true;
  e->hops_to_leader = static_cast<std::uint16_t>(beat.hop_count + 1);
  e->last_group_hello = simulator().now();
  // The beat arrives from the live path to the leader: re-anchor upstream.
  e->clear_upstream_flags();
  h->upstream = true;
  // Relay down our own branches.
  std::vector<net::NodeId> children;
  for (net::NodeId hop : e->enabled_hops()) {
    if (hop != from) children.push_back(hop);
  }
  if (!children.empty()) {
    GrphMsg fwd{beat.group, beat.leader, beat.group_seq,
                static_cast<std::uint16_t>(beat.hop_count + 1), true,
                std::move(children)};
    broadcast_packet(fwd, 1);
  }
}

void MaodvRouter::process_grph(const net::Packet& packet, const GrphMsg& grph,
                               net::NodeId from) {
  if (grph.tree_scoped) {
    process_tree_beat(grph, from);
    return;
  }
  GroupEntry* e = mrt_.find(grph.group);

  // Flood dedup per (group, leader): only fresher sequence numbers pass.
  auto [seen, inserted] =
      grph_seen_.try_emplace(pair_key(grph.group, grph.leader), grph.group_seq);
  if (!inserted) {
    if (!grph.group_seq.fresher_than(*seen)) return;
    *seen = grph.group_seq;
  }
  if (e != nullptr && e->on_tree()) {
    if (e->is_leader) {
      // A leader never adopts leader/hop information — not even from
      // re-flooded copies of its own hello. Two distinct leaders for one
      // group trigger a merge, initiated by the lower id (documented
      // simplification of the draft's reconnection rules).
      if (grph.leader != self() && self().value() < grph.leader.value()) {
        initiate_merge(grph.group, grph.leader);
      }
    } else if (grph.leader == e->leader || !e->leader.is_valid() ||
               grph.group_seq.fresher_than(e->group_seq)) {
      e->leader = grph.leader;
      e->group_seq = grph.group_seq;
      e->seq_known = true;
      e->hops_to_leader = static_cast<std::uint16_t>(grph.hop_count + 1);
      // Upstream direction is owned by the tree-scoped beats, which carry
      // per-edge evidence; flood copies only refresh leader knowledge.
    }
  }

  if (packet.ttl > 1) {
    GrphMsg fwd = grph;
    fwd.hop_count++;
    ++mcounters_.grph_forwarded;
    broadcast_jittered(fwd, static_cast<std::uint8_t>(packet.ttl - 1));
  }
}

void MaodvRouter::initiate_merge(net::GroupId group, net::NodeId other_leader) {
  GroupEntry* e = mrt_.find(group);
  if (e == nullptr || !e->is_leader) return;
  if (e->join_state != JoinState::none) return;
  auto [last, inserted] = last_merge_attempt_.try_emplace(group, sim::SimTime::zero());
  if (!inserted && simulator().now() - *last < mparams_.merge_backoff) return;
  *last = simulator().now();
  ++mcounters_.merges_initiated;
  start_join(group, /*repair=*/false, other_leader);
}

void MaodvRouter::check_group_liveness() {
  const sim::Duration limit =
      mparams_.group_hello_interval *
      static_cast<std::int64_t>(mparams_.allowed_group_hello_loss);
  mrt_.for_each([&](net::GroupId group, GroupEntry& e) {
    if (e.is_leader) return;
    if (e.join_state != JoinState::none) return;
    // A member that lost its last tree link entirely (failed graft,
    // cascaded prune) must keep trying to rejoin.
    if (e.is_member && !e.on_tree()) {
      start_join(group, /*repair=*/false);
      return;
    }
    if (!e.on_tree()) return;
    if (simulator().now() - e.last_group_hello <= limit) return;
    // The leader went silent: treat as a broken tree. Members repair;
    // pure routers wait to be pruned or repaired through.
    if (e.is_member) {
      const net::NodeId up = e.upstream();
      if (up.is_valid()) {
        send_mact(up, group, self(), MactMsg::Flag::prune);
        deactivate_hop(e, up);
      }
      e.last_group_hello = simulator().now();  // backoff until next sweep
      start_join(group, /*repair=*/true);
    }
  });
}

// ------------------------------------------------------------------- data

std::uint32_t MaodvRouter::send_multicast(net::GroupId group, std::uint16_t payload_bytes) {
  GroupEntry& e = mrt_.get_or_create(group);
  (void)e;
  const std::uint32_t seq = next_data_seq_[group]++;
  net::MulticastData data;
  data.group = group;
  data.origin = self();
  data.seq = seq;
  data.payload_bytes = payload_bytes;
  data.sent_at = simulator().now();
  data.hops = 0;
  remember_data(net::MsgId{self(), seq});
  ++mcounters_.data_originated;
  if (observer_ != nullptr) observer_->on_multicast_data(data, self());
  broadcast_packet(data, mparams_.data_ttl);
  return seq;
}

bool MaodvRouter::remember_data(const net::MsgId& id) {
  if (!seen_data_.insert(net::msg_key(id))) return false;
  seen_data_order_.push_back(id);
  while (seen_data_order_.size() > mparams_.data_dedup_capacity) {
    seen_data_.erase(net::msg_key(seen_data_order_.front()));
    seen_data_order_.pop_front();
  }
  return true;
}

void MaodvRouter::process_data(const net::Packet& packet, const net::MulticastData& data,
                               net::NodeId from) {
  GroupEntry* e = mrt_.find(data.group);
  // Tree-scoped forwarding: accept only over an activated tree link.
  if (e == nullptr || !e->on_tree()) {
    ++mcounters_.data_rejected_off_tree;
    return;
  }
  const MulticastNextHop* h = e->find_hop(from);
  if (h == nullptr || !h->enabled) {
    ++mcounters_.data_rejected_off_tree;
    // The sender may wrongly believe we are its tree neighbor (asymmetric
    // state after a one-sided break). Tell it once a second at most; a
    // consistent sender treats the prune as a no-op.
    const std::uint64_t key = pair_key(data.group, from);
    auto [last, inserted] = corrective_prune_at_.try_emplace(key, sim::SimTime::zero());
    if (inserted || simulator().now() - *last >= sim::Duration::ms(1000)) {
      *last = simulator().now();
      send_mact(from, data.group, self(), MactMsg::Flag::prune);
    }
    return;
  }
  if (!remember_data(net::MsgId{data.origin, data.seq})) {
    ++mcounters_.data_duplicates;
    return;
  }
  if (e->is_member) {
    ++mcounters_.data_delivered;
    if (observer_ != nullptr) observer_->on_multicast_data(data, from);
  }
  // Relay along the remaining branches (one link-layer broadcast reaches
  // them all; non-tree neighbors reject it).
  const std::vector<net::NodeId> hops = e->enabled_hops();
  const bool has_other_branch =
      std::any_of(hops.begin(), hops.end(), [&](net::NodeId n) { return n != from; });
  if (has_other_branch && packet.ttl > 1) {
    net::MulticastData fwd = data;
    fwd.hops++;
    ++mcounters_.data_forwarded;
    broadcast_jittered(fwd, static_cast<std::uint8_t>(packet.ttl - 1),
                       sim::Duration::ms(5));
  }
}

// ------------------------------------------------------------ dispatching

void MaodvRouter::handle_multicast_packet(const net::Packet& packet, net::NodeId from) {
  std::visit(net::overloaded{
                 [&](const MactMsg& mact) { process_mact(mact, from); },
                 [&](const GrphMsg& grph) { process_grph(packet, grph, from); },
                 [&](const net::MulticastData& data) { process_data(packet, data, from); },
                 [&](const auto&) {},
             },
             packet.payload);
}

void MaodvRouter::on_neighbor_lost(net::NodeId neighbor) {
  // Collect first: the repair/prune actions below may erase MRT entries,
  // which would invalidate a live iterator.
  std::vector<std::pair<net::GroupId, bool>> affected;  // (group, was_upstream)
  mrt_.for_each([&](net::GroupId group, GroupEntry& e) {
    MulticastNextHop* h = e.find_hop(neighbor);
    if (h == nullptr) return;
    const bool was_enabled = h->enabled;
    affected.emplace_back(group, h->enabled && h->upstream);
    deactivate_hop(e, neighbor);
    // Best-effort prune toward the lost neighbor: if the break was a
    // one-sided false positive (hello loss under collisions), this makes
    // it mutual so the other side repairs instead of feeding a dead edge.
    if (was_enabled) send_mact(neighbor, group, self(), MactMsg::Flag::prune);
  });
  for (const auto& [group, was_upstream] : affected) {
    GroupEntry* e = mrt_.find(group);
    if (e == nullptr) continue;
    if (was_upstream) {
      // Downstream side of the broken link initiates the repair (paper
      // section 3: only the downstream node repairs, preventing loops).
      if (e->join_state == JoinState::none) start_join(group, /*repair=*/true);
    } else {
      maybe_self_prune(group);
    }
  }
}

}  // namespace ag::maodv
