#include "maodv/multicast_route_table.h"

#include <algorithm>

namespace ag::maodv {

MulticastNextHop* GroupEntry::find_hop(net::NodeId id) {
  auto it = std::find_if(next_hops.begin(), next_hops.end(),
                         [&](const MulticastNextHop& h) { return h.id == id; });
  return it == next_hops.end() ? nullptr : &*it;
}

const MulticastNextHop* GroupEntry::find_hop(net::NodeId id) const {
  auto it = std::find_if(next_hops.begin(), next_hops.end(),
                         [&](const MulticastNextHop& h) { return h.id == id; });
  return it == next_hops.end() ? nullptr : &*it;
}

MulticastNextHop& GroupEntry::add_or_get_hop(net::NodeId id) {
  if (MulticastNextHop* h = find_hop(id)) return *h;
  next_hops.push_back(MulticastNextHop{id});
  return next_hops.back();
}

bool GroupEntry::remove_hop(net::NodeId id) {
  auto it = std::find_if(next_hops.begin(), next_hops.end(),
                         [&](const MulticastNextHop& h) { return h.id == id; });
  if (it == next_hops.end()) return false;
  next_hops.erase(it);
  return true;
}

std::size_t GroupEntry::enabled_count() const {
  return static_cast<std::size_t>(std::count_if(
      next_hops.begin(), next_hops.end(),
      [](const MulticastNextHop& h) { return h.enabled; }));
}

std::vector<net::NodeId> GroupEntry::enabled_hops() const {
  std::vector<net::NodeId> out;
  for (const MulticastNextHop& h : next_hops) {
    if (h.enabled) out.push_back(h.id);
  }
  return out;
}

net::NodeId GroupEntry::upstream() const {
  for (const MulticastNextHop& h : next_hops) {
    if (h.enabled && h.upstream) return h.id;
  }
  return net::NodeId::invalid();
}

void GroupEntry::clear_upstream_flags() {
  for (MulticastNextHop& h : next_hops) h.upstream = false;
}

GroupEntry& MulticastRouteTable::get_or_create(net::GroupId group) {
  auto [entry, inserted] = entries_.try_emplace(group);
  if (inserted) entry->group = group;
  return *entry;
}

GroupEntry* MulticastRouteTable::find(net::GroupId group) { return entries_.find(group); }

const GroupEntry* MulticastRouteTable::find(net::GroupId group) const {
  return entries_.find(group);
}

}  // namespace ag::maodv
