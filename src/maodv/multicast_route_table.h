// The Multicast Route Table (paper section 3): per-group leader identity,
// group sequence number, hop count to the leader, and the activated /
// potential next hops that form this node's slice of the multicast tree.
#ifndef AG_MAODV_MULTICAST_ROUTE_TABLE_H
#define AG_MAODV_MULTICAST_ROUTE_TABLE_H

#include <cstdint>
#include <vector>

#include "net/ids.h"
#include "net/node_table.h"
#include "sim/time.h"

namespace ag::maodv {

struct MulticastNextHop {
  net::NodeId id;
  bool enabled{false};   // activated via MACT (paper's "enabled flag")
  bool upstream{false};  // toward the group leader
};

enum class JoinState : std::uint8_t { none, joining, repairing };

struct GroupEntry {
  net::GroupId group;
  net::NodeId leader{net::NodeId::invalid()};
  net::SeqNo group_seq;
  bool seq_known{false};
  std::uint16_t hops_to_leader{kUnknownHops};
  bool is_member{false};
  bool is_leader{false};
  JoinState join_state{JoinState::none};
  std::vector<MulticastNextHop> next_hops;
  sim::SimTime last_group_hello;

  static constexpr std::uint16_t kUnknownHops = 0xFFFF;

  [[nodiscard]] MulticastNextHop* find_hop(net::NodeId id);
  [[nodiscard]] const MulticastNextHop* find_hop(net::NodeId id) const;
  MulticastNextHop& add_or_get_hop(net::NodeId id);
  // Returns true if the hop existed (enabled or not).
  bool remove_hop(net::NodeId id);

  [[nodiscard]] std::size_t enabled_count() const;
  [[nodiscard]] std::vector<net::NodeId> enabled_hops() const;
  // The single activated upstream hop, or invalid() when none (leader or
  // detached node).
  [[nodiscard]] net::NodeId upstream() const;
  void clear_upstream_flags();

  // A node is on the tree when it is the leader or has at least one
  // activated branch.
  [[nodiscard]] bool on_tree() const { return is_leader || enabled_count() > 0; }
  // Leaf routers that are neither member nor leader must prune themselves.
  [[nodiscard]] bool should_self_prune() const {
    return !is_member && !is_leader && enabled_count() <= 1 && !next_hops.empty();
  }
};

class MulticastRouteTable {
 public:
  GroupEntry& get_or_create(net::GroupId group);
  [[nodiscard]] GroupEntry* find(net::GroupId group);
  [[nodiscard]] const GroupEntry* find(net::GroupId group) const;
  void erase(net::GroupId group) { entries_.erase(group); }
  // Crash support: forget every group (state wipe on reboot).
  void clear() { entries_.clear(); }

  // Visits groups in ascending id order; f(net::GroupId, GroupEntry&).
  // The callback must not create new groups (see net::NodeTable).
  template <typename F>
  void for_each(F&& f) {
    entries_.for_each(std::forward<F>(f));
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  net::NodeTable<GroupEntry, net::GroupId> entries_;
};

}  // namespace ag::maodv

#endif  // AG_MAODV_MULTICAST_ROUTE_TABLE_H
