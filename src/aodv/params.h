// AODV protocol constants. Paper-pinned values: hello interval 600 ms,
// allowed hello loss 4 (section 5.1). Timing constants are scaled to the
// paper's small (≤ 10 hop) networks rather than the draft's NET_DIAMETER=35.
#ifndef AG_AODV_PARAMS_H
#define AG_AODV_PARAMS_H

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace ag::aodv {

struct AodvParams {
  sim::Duration active_route_timeout{sim::Duration::ms(3000)};
  sim::Duration reverse_route_life{sim::Duration::ms(3000)};
  bool hello_enabled{true};
  sim::Duration hello_interval{sim::Duration::ms(600)};
  std::uint32_t allowed_hello_loss{4};
  std::uint32_t rreq_retries{2};
  // First-wait for RREPs; doubles on each retry (binary backoff).
  sim::Duration rreq_wait{sim::Duration::ms(500)};
  sim::Duration path_discovery_time{sim::Duration::ms(5000)};  // RREQ dedup cache
  std::uint8_t net_ttl{16};
  std::size_t max_buffered_per_dest{5};

  [[nodiscard]] sim::Duration neighbor_lifetime() const {
    return hello_interval * static_cast<std::int64_t>(allowed_hello_loss);
  }
};

}  // namespace ag::aodv

#endif  // AG_AODV_PARAMS_H
