#include "aodv/neighbor_table.h"

namespace ag::aodv {

std::vector<net::NodeId> NeighborTable::sweep_expired(sim::SimTime cutoff) {
  std::vector<net::NodeId> expired;
  for (auto it = last_heard_.begin(); it != last_heard_.end();) {
    if (it->second < cutoff) {
      expired.push_back(it->first);
      it = last_heard_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

}  // namespace ag::aodv
