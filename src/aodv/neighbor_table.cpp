#include "aodv/neighbor_table.h"

namespace ag::aodv {

std::vector<net::NodeId> NeighborTable::sweep_expired(sim::SimTime cutoff) {
  std::vector<net::NodeId> expired;
  last_heard_.erase_if([&](net::NodeId neighbor, sim::SimTime& heard_at) {
    if (heard_at >= cutoff) return false;
    expired.push_back(neighbor);
    return true;
  });
  return expired;
}

}  // namespace ag::aodv
