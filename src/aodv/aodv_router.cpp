#include "aodv/aodv_router.h"

#include <algorithm>
#include <cassert>

namespace ag::aodv {
namespace {

std::uint64_t rreq_key(net::NodeId origin, std::uint32_t rreq_id) {
  return (static_cast<std::uint64_t>(origin.value()) << 32) | rreq_id;
}

}  // namespace

AodvRouter::AodvRouter(sim::Simulator& sim, mac::CsmaMac& mac, net::NodeId self,
                       AodvParams params, sim::Rng rng)
    : sim_{sim},
      mac_{mac},
      self_{self},
      params_{params},
      rng_{rng},
      hello_timer_{sim, [this] { send_hello(); }, sim::EventCategory::router},
      sweep_timer_{sim, [this] { sweep_neighbors(); }, sim::EventCategory::router} {
  mac_.set_listener(this);
}

void AodvRouter::start() {
  if (params_.hello_enabled) {
    // Jitter desynchronizes beacons across nodes.
    hello_timer_.start(params_.hello_interval, &rng_, params_.hello_interval / 4);
    sweep_timer_.start(params_.hello_interval, &rng_, params_.hello_interval / 8);
  }
}

void AodvRouter::reset_unicast_state() {
  hello_timer_.stop();
  sweep_timer_.stop();
  routes_.clear();
  neighbors_.clear();
  rreq_cache_.clear();
  discoveries_.clear();  // RAII timers cancel any pending discovery retry
}

// ---------------------------------------------------------------- sending

void AodvRouter::send_unicast(net::Packet pkt) {
  if (pkt.dst == self_) {
    if (local_deliver_) local_deliver_(pkt, self_);
    return;
  }
  const sim::SimTime now = sim_.now();
  if (RouteEntry* route = routes_.find_valid(pkt.dst, now)) {
    routes_.refresh(pkt.dst, now + params_.active_route_timeout);
    mac_.send(route->next_hop, std::move(pkt));
    return;
  }
  const net::NodeId dst = pkt.dst;
  auto& pending = discoveries_[dst];
  if (pending.buffered.size() >= params_.max_buffered_per_dest) {
    ++counters_.no_route_drops;
  } else {
    pending.buffered.push_back(std::move(pkt));
  }
  discover(dst);
}

void AodvRouter::send_to_neighbor(net::NodeId neighbor, net::Payload payload) {
  net::Packet pkt;
  pkt.src = self_;
  pkt.dst = neighbor;
  pkt.ttl = 1;
  pkt.payload = std::move(payload);
  mac_.send(neighbor, std::move(pkt));
}

void AodvRouter::unicast_to_neighbor(net::NodeId neighbor, net::Packet pkt) {
  mac_.send(neighbor, std::move(pkt));
}

void AodvRouter::broadcast_packet(net::Payload payload, std::uint8_t ttl) {
  net::Packet pkt;
  pkt.src = self_;
  pkt.dst = net::NodeId::broadcast();
  pkt.ttl = ttl;
  pkt.payload = std::move(payload);
  mac_.send(net::NodeId::broadcast(), std::move(pkt));
}

void AodvRouter::broadcast_jittered(net::Payload payload, std::uint8_t ttl,
                                    sim::Duration max_jitter) {
  const auto delay = sim::Duration::us(rng_.uniform_int(0, max_jitter.count_us()));
  // Build the pooled packet now (the content is already final): the event
  // captures one shared_ptr instead of copying the whole payload twice.
  net::PacketPtr pkt =
      net::make_packet(self_, net::NodeId::broadcast(), ttl, std::move(payload));
  sim_.schedule_after(
      delay, [this, pkt = std::move(pkt)] { mac_.send(net::NodeId::broadcast(), pkt); },
      sim::EventCategory::router);
}

void AodvRouter::route_hint(net::NodeId dest, net::NodeId via_neighbor, std::uint8_t hops) {
  if (dest == self_) return;
  routes_.offer(dest, net::SeqNo{}, /*seq_known=*/false, hops, via_neighbor,
                sim_.now() + params_.active_route_timeout);
}

// ---------------------------------------------------------------- discovery

void AodvRouter::discover(net::NodeId dest) {
  auto& pending = discoveries_[dest];
  if (pending.timer != nullptr && pending.timer->pending()) return;  // in progress
  if (pending.timer == nullptr) {
    pending.timer = std::make_unique<sim::Timer>(
        sim_, [this, dest] { discovery_timeout(dest); }, sim::EventCategory::router);
  }
  ++pending.attempts;

  RreqMsg rreq;
  rreq.rreq_id = next_rreq_id();
  rreq.origin = self_;
  rreq.origin_seq = bump_own_seq();
  rreq.dest = dest;
  if (const RouteEntry* stale = routes_.find(dest); stale != nullptr && stale->seq_known) {
    rreq.dest_seq = stale->seq;
    rreq.dest_seq_known = true;
  }
  ++counters_.rreq_originated;
  broadcast_packet(rreq, params_.net_ttl);

  // Binary backoff on the wait between attempts.
  sim::Duration wait = params_.rreq_wait;
  for (std::uint32_t i = 1; i < pending.attempts; ++i) wait = wait * std::int64_t{2};
  pending.timer->restart(wait);
}

void AodvRouter::discovery_timeout(net::NodeId dest) {
  PendingDiscovery* pending = discoveries_.find(dest);
  if (pending == nullptr) return;
  if (routes_.find_valid(dest, sim_.now()) != nullptr) {
    flush_buffered(dest);
    return;
  }
  if (pending->attempts <= params_.rreq_retries) {
    discover(dest);
    return;
  }
  ++counters_.discovery_failures;
  counters_.no_route_drops += pending->buffered.size();
  discoveries_.erase(dest);
  on_route_discovery_failed(dest);
}

void AodvRouter::flush_buffered(net::NodeId dest) {
  PendingDiscovery* pending = discoveries_.find(dest);
  if (pending == nullptr) return;
  std::deque<net::Packet> buffered = std::move(pending->buffered);
  discoveries_.erase(dest);
  for (net::Packet& pkt : buffered) send_unicast(std::move(pkt));
}

// ---------------------------------------------------------------- receive

void AodvRouter::on_packet_received(const net::Packet& packet, net::NodeId from) {
  note_neighbor_alive(from);
  std::visit(
      net::overloaded{
          [&](const HelloMsg& hello) {
            // 1-hop route to the neighbor, refreshed every beacon.
            routes_.offer(hello.origin, hello.origin_seq, true, 1, hello.origin,
                          sim_.now() + params_.neighbor_lifetime());
          },
          [&](const RreqMsg& rreq) { process_rreq(packet, rreq, from); },
          [&](const RrepMsg& rrep) { process_rrep(packet, rrep, from); },
          [&](const RerrMsg& rerr) { process_rerr(rerr, from); },
          [&](const maodv::MactMsg&) { handle_multicast_packet(packet, from); },
          [&](const maodv::GrphMsg&) { handle_multicast_packet(packet, from); },
          [&](const net::MulticastData&) { handle_multicast_packet(packet, from); },
          [&](const odmrp::JoinQueryMsg&) { handle_multicast_packet(packet, from); },
          [&](const odmrp::JoinReplyMsg&) { handle_multicast_packet(packet, from); },
          [&](const gossip::GossipMsg&) {
            if (packet.dst == self_) {
              if (local_deliver_) local_deliver_(packet, from);
            } else {
              forward_unicast(packet, from);
            }
          },
          [&](const gossip::GossipReplyMsg&) {
            if (packet.dst == self_) {
              if (local_deliver_) local_deliver_(packet, from);
            } else {
              forward_unicast(packet, from);
            }
          },
          [&](const gossip::NearestMemberMsg&) {
            if (packet.dst == self_ && local_deliver_) local_deliver_(packet, from);
          },
          [&](const dtn::CustodyHandoffMsg&) {
            // One-hop custody handoffs are consumed by the CustodyRouter
            // decorator before the wrapped router's listener runs; without
            // the decorator nothing sends them.
          },
      },
      packet.payload);
}

void AodvRouter::forward_unicast(net::Packet pkt, net::NodeId from) {
  if (pkt.ttl <= 1) return;
  pkt.ttl--;
  const sim::SimTime now = sim_.now();
  // The path back to the packet's source runs through `from`; remember it.
  if (pkt.src != self_ && pkt.src != from) {
    routes_.offer(pkt.src, net::SeqNo{}, false, 0, from, now + params_.reverse_route_life);
  }
  if (RouteEntry* route = routes_.find_valid(pkt.dst, now)) {
    routes_.refresh(pkt.dst, now + params_.active_route_timeout);
    ++counters_.unicast_forwarded;
    mac_.send(route->next_hop, std::move(pkt));
    return;
  }
  ++counters_.no_route_drops;
  RerrMsg rerr;
  net::SeqNo seq;
  if (const RouteEntry* stale = routes_.find(pkt.dst); stale != nullptr) seq = stale->seq;
  rerr.unreachable.push_back({pkt.dst, seq});
  ++counters_.rerr_sent;
  broadcast_packet(std::move(rerr), 1);
}

// ------------------------------------------------------------------- RREQ

void AodvRouter::learn_reverse_routes(const RreqMsg& rreq, net::NodeId from) {
  const sim::SimTime now = sim_.now();
  routes_.offer(from, net::SeqNo{}, false, 1, from, now + params_.reverse_route_life);
  routes_.offer(rreq.origin, rreq.origin_seq, true,
                static_cast<std::uint8_t>(rreq.hop_count + 1), from,
                now + params_.reverse_route_life);
}

bool AodvRouter::rreq_seen_before(net::NodeId origin, std::uint32_t rreq_id) {
  const std::uint64_t key = rreq_key(origin, rreq_id);
  const sim::SimTime now = sim_.now();
  auto [expiry, inserted] =
      rreq_cache_.try_emplace(key, now + params_.path_discovery_time);
  if (!inserted && *expiry >= now) return true;
  *expiry = now + params_.path_discovery_time;
  // Opportunistic cleanup keeps the cache bounded on long runs.
  if (rreq_cache_.size() > 2048) {
    rreq_cache_.erase_if(
        [now](std::uint64_t, sim::SimTime& expires) { return expires < now; });
  }
  return false;
}

void AodvRouter::process_rreq(const net::Packet& pkt, const RreqMsg& rreq, net::NodeId from) {
  if (rreq.origin == self_) return;
  learn_reverse_routes(rreq, from);
  if (rreq_seen_before(rreq.origin, rreq.rreq_id)) return;

  bool answered = false;
  if (rreq.join || rreq.repair) {
    answered = try_answer_join_rreq(rreq, from);
  } else {
    answered = try_answer_unicast_rreq(rreq, from);
  }
  if (!answered && pkt.ttl > 1) {
    RreqMsg fwd = rreq;
    fwd.hop_count++;
    ++counters_.rreq_forwarded;
    broadcast_jittered(fwd, static_cast<std::uint8_t>(pkt.ttl - 1));
  }
}

bool AodvRouter::try_answer_unicast_rreq(const RreqMsg& rreq, net::NodeId from) {
  const sim::SimTime now = sim_.now();
  RrepMsg rrep;
  rrep.origin = rreq.origin;
  rrep.dest = rreq.dest;
  if (rreq.dest == self_) {
    // Draft: the destination's sequence number must be at least as fresh
    // as what the RREQ carries.
    if (rreq.dest_seq_known && rreq.dest_seq.fresher_than(own_seq_)) {
      own_seq_ = rreq.dest_seq;
    }
    bump_own_seq();
    rrep.dest_seq = own_seq_;
    rrep.hop_count = 0;
    rrep.lifetime = params_.active_route_timeout;
    send_rrep(from, rrep);
    return true;
  }
  RouteEntry* route = routes_.find_valid(rreq.dest, now);
  if (route == nullptr || !route->seq_known) return false;
  if (rreq.dest_seq_known && !route->seq.at_least_as_fresh_as(rreq.dest_seq)) return false;
  rrep.dest_seq = route->seq;
  rrep.hop_count = route->hops;
  rrep.lifetime = route->expires - now;
  send_rrep(from, rrep);
  return true;
}

void AodvRouter::send_rrep(net::NodeId to_neighbor, const RrepMsg& rrep) {
  net::Packet pkt;
  pkt.src = self_;
  pkt.dst = to_neighbor;  // hop-by-hop; each hop re-addresses toward origin
  pkt.ttl = params_.net_ttl;
  pkt.payload = rrep;
  ++counters_.rrep_sent;
  mac_.send(to_neighbor, std::move(pkt));
}

// ------------------------------------------------------------------- RREP

void AodvRouter::process_rrep(const net::Packet&, const RrepMsg& rrep, net::NodeId from) {
  const sim::SimTime now = sim_.now();
  // Forward route toward the RREP's destination (or the multicast tree
  // responder for join RREPs).
  const net::NodeId route_target = rrep.join ? rrep.responder : rrep.dest;
  if (route_target != self_ && route_target.is_valid()) {
    routes_.offer(route_target, rrep.dest_seq, true,
                  static_cast<std::uint8_t>(rrep.hop_count + 1), from,
                  now + rrep.lifetime);
  }

  if (rrep.join) {
    handle_join_rrep(rrep, from);
    return;
  }
  if (rrep.origin == self_) {
    flush_buffered(rrep.dest);
    return;
  }
  // Forward along the reverse route created by the RREQ flood.
  RouteEntry* back = routes_.find_valid(rrep.origin, now);
  if (back == nullptr) return;  // reverse route expired; RREP dies here
  RrepMsg fwd = rrep;
  fwd.hop_count++;
  ++counters_.rrep_forwarded;
  net::Packet pkt;
  pkt.src = self_;
  pkt.dst = back->next_hop;
  pkt.ttl = params_.net_ttl;
  pkt.payload = fwd;
  mac_.send(back->next_hop, std::move(pkt));
}

// ------------------------------------------------------------------- RERR

void AodvRouter::process_rerr(const RerrMsg& rerr, net::NodeId from) {
  std::vector<net::NodeId> newly_broken;
  for (const auto& u : rerr.unreachable) {
    RouteEntry* e = routes_.find(u.dest);
    if (e == nullptr || !e->valid || e->next_hop != from) continue;
    routes_.invalidate(u.dest);
    newly_broken.push_back(u.dest);
  }
  if (!newly_broken.empty()) report_broken_routes(newly_broken);
}

void AodvRouter::report_broken_routes(const std::vector<net::NodeId>& dests) {
  RerrMsg rerr;
  for (net::NodeId d : dests) {
    net::SeqNo seq;
    if (const RouteEntry* e = routes_.find(d); e != nullptr) seq = e->seq;
    rerr.unreachable.push_back({d, seq});
  }
  ++counters_.rerr_sent;
  broadcast_packet(std::move(rerr), 1);
}

// ------------------------------------------------------------- link state

void AodvRouter::note_neighbor_alive(net::NodeId neighbor) {
  neighbors_.heard(neighbor, sim_.now());
}

void AodvRouter::on_unicast_failed(const net::Packet&, net::NodeId next_hop) {
  ++counters_.link_breaks;
  ++counters_.link_breaks_mac;
  neighbors_.remove(next_hop);
  handle_link_failure(next_hop);
}

void AodvRouter::handle_link_failure(net::NodeId neighbor) {
  std::vector<net::NodeId> broken = routes_.dests_via(neighbor);
  for (net::NodeId d : broken) routes_.invalidate(d);
  if (!broken.empty()) report_broken_routes(broken);
  on_neighbor_lost(neighbor);
}

void AodvRouter::send_hello() {
  HelloMsg hello{self_, own_seq_};
  ++counters_.hello_sent;
  broadcast_packet(hello, 1);
}

void AodvRouter::sweep_neighbors() {
  const sim::SimTime cutoff = sim_.now() - params_.neighbor_lifetime();
  for (net::NodeId lost : neighbors_.sweep_expired(cutoff)) {
    ++counters_.link_breaks;
    ++counters_.link_breaks_hello;
    handle_link_failure(lost);
  }
}

}  // namespace ag::aodv
