// AODV control messages (IETF draft-ietf-manet-aodv-05), extended with the
// multicast (MAODV) fields carried by the same message types. Pure data —
// the wire format of the protocol.
#ifndef AG_AODV_MESSAGES_H
#define AG_AODV_MESSAGES_H

#include <cstdint>
#include <vector>

#include "net/ids.h"
#include "sim/time.h"

namespace ag::aodv {

struct RreqMsg {
  std::uint32_t rreq_id{0};  // unique per origin; (origin, rreq_id) dedups the flood
  net::NodeId origin;
  net::SeqNo origin_seq;
  net::NodeId dest;  // unicast target; invalid() for pure multicast joins
  net::SeqNo dest_seq;
  bool dest_seq_known{false};
  std::uint8_t hop_count{0};

  // MAODV extensions.
  bool join{false};    // J flag: requesting to join `group`
  bool repair{false};  // R flag: tree repair / partition merge
  net::GroupId group{net::GroupId::invalid()};
  net::SeqNo group_seq;           // last known group sequence number
  bool group_seq_known{false};
  // Multicast Group Leader extension: requester's hop count to the leader;
  // during repair only tree nodes strictly closer to the leader may reply.
  std::uint16_t mgl_hop_count{0};
  bool mgl_present{false};
};

struct RrepMsg {
  net::NodeId dest;  // route target this RREP describes (node or tree responder)
  net::SeqNo dest_seq;
  net::NodeId origin;  // RREQ originator the RREP travels back to
  std::uint8_t hop_count{0};
  sim::Duration lifetime{sim::Duration::ms(3000)};

  // MAODV extensions.
  bool join{false};
  net::GroupId group{net::GroupId::invalid()};
  net::SeqNo group_seq;
  net::NodeId group_leader{net::NodeId::invalid()};
  std::uint16_t mgl_hop_count{0};  // responder's distance to the group leader
  net::NodeId responder{net::NodeId::invalid()};  // tree node that generated this RREP
  bool responder_is_member{false};  // feeds the gossip member cache for free
};

// Route error: lists destinations that became unreachable through the
// sender. Broadcast to neighbors (we do not keep precursor lists; see
// DESIGN.md for the documented simplification).
struct RerrMsg {
  struct Unreachable {
    net::NodeId dest;
    net::SeqNo dest_seq;
  };
  std::vector<Unreachable> unreachable;
};

// 1-hop beacon: hello interval 600 ms, allowed loss 4 (paper section 5.1).
struct HelloMsg {
  net::NodeId origin;
  net::SeqNo origin_seq;
};

}  // namespace ag::aodv

#endif  // AG_AODV_MESSAGES_H
