// AODV unicast routing (IETF draft-05 subset): on-demand route discovery
// with RREQ/RREP, sequence-number freshness, hello-based neighbor
// detection, RERR propagation on link breaks, and packet buffering during
// discovery. Virtual hooks let MaodvRouter extend RREQ/RREP processing for
// multicast joins and handle multicast-only message types.
#ifndef AG_AODV_AODV_ROUTER_H
#define AG_AODV_AODV_ROUTER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "aodv/messages.h"
#include "aodv/neighbor_table.h"
#include "aodv/params.h"
#include "aodv/route_table.h"
#include "mac/csma_mac.h"
#include "net/dense_map.h"
#include "net/node_table.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "sim/timer.h"

namespace ag::aodv {

class AodvRouter : public mac::MacListener {
 public:
  AodvRouter(sim::Simulator& sim, mac::CsmaMac& mac, net::NodeId self,
             AodvParams params, sim::Rng rng);
  ~AodvRouter() override = default;

  // Begins hello beaconing and neighbor sweeping. Call once after wiring.
  virtual void start();

  [[nodiscard]] net::NodeId self() const { return self_; }
  [[nodiscard]] const AodvParams& params() const { return params_; }
  [[nodiscard]] RouteTable& route_table() { return routes_; }
  [[nodiscard]] NeighborTable& neighbors() { return neighbors_; }

  // Sends a routed unicast packet (pkt.dst is the final destination);
  // triggers route discovery and buffers when no route is known.
  void send_unicast(net::Packet pkt);

  // Sends a payload directly to a known neighbor, bypassing the route
  // table (hop-by-hop protocol traffic: gossip walks, nearest-member).
  void send_to_neighbor(net::NodeId neighbor, net::Payload payload);

  // Installs a route learned out-of-band (e.g. the reverse path of a
  // gossip walk), so replies do not need a fresh discovery.
  void route_hint(net::NodeId dest, net::NodeId via_neighbor, std::uint8_t hops);

  // Delivery of non-AODV unicast payloads addressed to this node
  // (gossip messages and replies, nearest-member updates).
  using LocalDeliver = std::function<void(const net::Packet&, net::NodeId from)>;
  void set_local_deliver(LocalDeliver deliver) { local_deliver_ = std::move(deliver); }

  struct Counters {
    std::uint64_t rreq_originated{0};
    std::uint64_t rreq_forwarded{0};
    std::uint64_t rrep_sent{0};
    std::uint64_t rrep_forwarded{0};
    std::uint64_t rerr_sent{0};
    std::uint64_t hello_sent{0};
    std::uint64_t unicast_forwarded{0};
    std::uint64_t no_route_drops{0};
    std::uint64_t discovery_failures{0};
    std::uint64_t link_breaks{0};
    std::uint64_t link_breaks_mac{0};    // unicast retry exhaustion
    std::uint64_t link_breaks_hello{0};  // hello timeout
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // MacListener:
  void on_packet_received(const net::Packet& packet, net::NodeId from) override;
  void on_unicast_failed(const net::Packet& packet, net::NodeId next_hop) override;

 protected:
  // Crash support shared with the derived routers: stops hello/sweep
  // beaconing and forgets routes, neighbors, RREQ dedup state and pending
  // discoveries. own_seq_ and rreq_id_ survive (stable storage) so peers'
  // freshness rules keep working across the reboot.
  void reset_unicast_state();

  // --- extension points for MAODV ---
  // Returns true if the join RREQ was answered (suppresses rebroadcast).
  virtual bool try_answer_join_rreq(const RreqMsg&, net::NodeId /*from*/) { return false; }
  virtual void handle_join_rrep(const RrepMsg&, net::NodeId /*from*/) {}
  // MACT / GRPH / MulticastData and anything else the base does not know.
  virtual void handle_multicast_packet(const net::Packet&, net::NodeId /*from*/) {}
  virtual void on_neighbor_lost(net::NodeId /*neighbor*/) {}
  virtual void on_route_discovery_failed(net::NodeId /*dest*/) {}

  // --- services shared with the derived router ---
  void broadcast_packet(net::Payload payload, std::uint8_t ttl);
  // Re-broadcast with a small uniform delay — the draft's BROADCAST_JITTER,
  // which decorrelates forwarding chains (RREQ floods, GRPH, tree data).
  void broadcast_jittered(net::Payload payload, std::uint8_t ttl,
                          sim::Duration max_jitter = sim::Duration::ms(10));
  void unicast_to_neighbor(net::NodeId neighbor, net::Packet pkt);
  net::SeqNo bump_own_seq() { return own_seq_ = own_seq_.next(); }
  [[nodiscard]] net::SeqNo own_seq() const { return own_seq_; }
  std::uint32_t next_rreq_id() { return rreq_id_++; }
  // Starts (or joins) a discovery for dest. MAODV reuses this for nothing;
  // unicast send paths call it internally.
  void discover(net::NodeId dest);
  // Creates/updates the reverse route used while processing any RREQ.
  void learn_reverse_routes(const RreqMsg& rreq, net::NodeId from);
  // RREQ flood dedup (shared so join RREQs dedup identically).
  bool rreq_seen_before(net::NodeId origin, std::uint32_t rreq_id);
  void note_neighbor_alive(net::NodeId neighbor);
  void send_rrep(net::NodeId to_neighbor, const RrepMsg& rrep);
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  Counters& mutable_counters() { return counters_; }

 private:
  struct PendingDiscovery {
    std::uint32_t attempts{0};
    std::deque<net::Packet> buffered;
    std::unique_ptr<sim::Timer> timer;
  };

  void send_hello();
  void sweep_neighbors();
  void process_rreq(const net::Packet& pkt, const RreqMsg& rreq, net::NodeId from);
  bool try_answer_unicast_rreq(const RreqMsg& rreq, net::NodeId from);
  void process_rrep(const net::Packet& pkt, const RrepMsg& rrep, net::NodeId from);
  void process_rerr(const RerrMsg& rerr, net::NodeId from);
  void forward_unicast(net::Packet pkt, net::NodeId from);
  void handle_link_failure(net::NodeId neighbor);
  void discovery_timeout(net::NodeId dest);
  void flush_buffered(net::NodeId dest);
  void report_broken_routes(const std::vector<net::NodeId>& dests);

  sim::Simulator& sim_;
  mac::CsmaMac& mac_;
  net::NodeId self_;
  AodvParams params_;
  sim::Rng rng_;

  RouteTable routes_;
  NeighborTable neighbors_;
  net::SeqNo own_seq_{net::SeqNo{1}};
  std::uint32_t rreq_id_{1};
  net::DenseMap<sim::SimTime> rreq_cache_;  // (origin,id) -> expiry
  net::NodeTable<PendingDiscovery> discoveries_;
  LocalDeliver local_deliver_;
  sim::PeriodicTimer hello_timer_;
  sim::PeriodicTimer sweep_timer_;
  Counters counters_;
};

}  // namespace ag::aodv

#endif  // AG_AODV_AODV_ROUTER_H
