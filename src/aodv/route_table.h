// The AODV Route Table (paper section 3): next hop, destination sequence
// number, hop count and lifetime per destination, with the draft's
// freshness rules for accepting new routing information.
#ifndef AG_AODV_ROUTE_TABLE_H
#define AG_AODV_ROUTE_TABLE_H

#include <cstdint>
#include <vector>

#include "net/ids.h"
#include "net/node_table.h"
#include "sim/time.h"

namespace ag::aodv {

// Packed for the 1000-node cache footprint: the 8-byte expiry leads so
// the three 4-byte ids follow with no alignment holes, and the flag
// bytes share the tail padding — 24 bytes per entry instead of the 32
// the old interleaved layout burned on padding. RouteTable is a flat
// NodeTable<RouteEntry>, so every AODV route lookup walks these
// back-to-back; 3 entries now fit in every pair of cache lines.
struct RouteEntry {
  sim::SimTime expires;
  net::NodeId dest;
  net::SeqNo seq;
  net::NodeId next_hop;
  std::uint8_t hops{0};
  bool seq_known{false};
  bool valid{false};
};
static_assert(sizeof(RouteEntry) == 24, "RouteEntry must stay 24 bytes");

class RouteTable {
 public:
  // Valid, unexpired entry or nullptr. Expired entries are invalidated
  // lazily on lookup.
  [[nodiscard]] RouteEntry* find_valid(net::NodeId dest, sim::SimTime now);
  [[nodiscard]] RouteEntry* find(net::NodeId dest);
  [[nodiscard]] const RouteEntry* find(net::NodeId dest) const;

  // Offers new routing information, applying the draft's update rule:
  // accept when the entry is missing or invalid, the sequence number is
  // fresher, or it is equal with a smaller hop count. Unknown-sequence
  // offers only ever replace invalid/unknown entries. Returns true if the
  // table changed.
  bool offer(net::NodeId dest, net::SeqNo seq, bool seq_known, std::uint8_t hops,
             net::NodeId next_hop, sim::SimTime expires);

  // Extends the lifetime of a valid entry (route was used).
  void refresh(net::NodeId dest, sim::SimTime expires);

  // Marks the entry invalid and bumps its sequence number (draft rule for
  // broken routes). No-op if absent. Returns the invalidated entry or null.
  RouteEntry* invalidate(net::NodeId dest);

  // All valid destinations currently routed through `next_hop`.
  [[nodiscard]] std::vector<net::NodeId> dests_via(net::NodeId next_hop) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  // Crash support: forget every route (state wipe on reboot).
  void clear() { entries_.clear(); }

 private:
  net::NodeTable<RouteEntry> entries_;
};

}  // namespace ag::aodv

#endif  // AG_AODV_ROUTE_TABLE_H
