#include "aodv/route_table.h"

namespace ag::aodv {

RouteEntry* RouteTable::find(net::NodeId dest) { return entries_.find(dest); }

const RouteEntry* RouteTable::find(net::NodeId dest) const {
  return entries_.find(dest);
}

RouteEntry* RouteTable::find_valid(net::NodeId dest, sim::SimTime now) {
  RouteEntry* e = find(dest);
  if (e == nullptr || !e->valid) return nullptr;
  if (e->expires < now) {
    e->valid = false;  // lazy expiry
    return nullptr;
  }
  return e;
}

bool RouteTable::offer(net::NodeId dest, net::SeqNo seq, bool seq_known,
                       std::uint8_t hops, net::NodeId next_hop, sim::SimTime expires) {
  auto [slot, inserted] = entries_.try_emplace(dest);
  RouteEntry& e = *slot;
  if (inserted) {
    e = RouteEntry{expires, dest, seq, next_hop, hops, seq_known, true};
    return true;
  }
  const bool fresher = seq_known && (!e.seq_known || seq.fresher_than(e.seq));
  const bool same_but_shorter =
      seq_known && e.seq_known && seq == e.seq && hops < e.hops;
  const bool replace = !e.valid || fresher || same_but_shorter ||
                       (!seq_known && !e.seq_known && hops < e.hops);
  if (!replace) {
    // Keep the route, but an equal offer through the same next hop still
    // refreshes the lifetime.
    if (e.valid && e.next_hop == next_hop && expires > e.expires) e.expires = expires;
    return false;
  }
  // Never lose sequence-number knowledge (draft: invalid entries retain
  // their last known sequence number).
  const bool kept_seq_known = e.seq_known && !seq_known;
  if (!kept_seq_known) {
    e.seq = seq;
    e.seq_known = seq_known;
  }
  e.hops = hops;
  e.next_hop = next_hop;
  e.expires = expires;
  e.valid = true;
  return true;
}

void RouteTable::refresh(net::NodeId dest, sim::SimTime expires) {
  RouteEntry* e = find(dest);
  if (e != nullptr && e->valid && expires > e->expires) e->expires = expires;
}

RouteEntry* RouteTable::invalidate(net::NodeId dest) {
  RouteEntry* e = find(dest);
  if (e == nullptr || !e->valid) return nullptr;
  e->valid = false;
  if (e->seq_known) e->seq = e->seq.next();
  return e;
}

std::vector<net::NodeId> RouteTable::dests_via(net::NodeId next_hop) const {
  std::vector<net::NodeId> out;
  entries_.for_each([&](net::NodeId dest, const RouteEntry& e) {
    if (e.valid && e.next_hop == next_hop) out.push_back(dest);
  });
  return out;
}

}  // namespace ag::aodv
