// Hello-based neighbor liveness (paper: hello interval 600 ms, allowed
// hello loss 4). Any frame from a neighbor counts as a sign of life.
#ifndef AG_AODV_NEIGHBOR_TABLE_H
#define AG_AODV_NEIGHBOR_TABLE_H

#include <vector>

#include "net/ids.h"
#include "net/node_table.h"
#include "sim/time.h"

namespace ag::aodv {

class NeighborTable {
 public:
  void heard(net::NodeId neighbor, sim::SimTime now) { last_heard_[neighbor] = now; }
  void remove(net::NodeId neighbor) { last_heard_.erase(neighbor); }

  [[nodiscard]] bool contains(net::NodeId neighbor) const {
    return last_heard_.contains(neighbor);
  }

  // Removes and returns all neighbors not heard since `cutoff`, in
  // ascending node order.
  std::vector<net::NodeId> sweep_expired(sim::SimTime cutoff);

  [[nodiscard]] std::size_t size() const { return last_heard_.size(); }

  // Crash support: forget every neighbor (state wipe on reboot).
  void clear() { last_heard_.clear(); }

 private:
  net::NodeTable<sim::SimTime> last_heard_;
};

}  // namespace ag::aodv

#endif  // AG_AODV_NEIGHBOR_TABLE_H
