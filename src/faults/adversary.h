// Adversarial-node axis as a decorator over any harness::MulticastRouter,
// interposed at exactly the seams dtn::CustodyRouter uses — the MAC
// listener and the router observer — so every protocol (and the custody
// tier stacked above it) composes with it untouched, and the phy/MAC hot
// path never learns adversaries exist.
//
// Event flow on a decorated node (custody stacked over adversary):
//
//   MAC ──listener──▶ CustodyRouter ──▶ AdversaryRouter ──▶ protocol
//   protocol ──observer──▶ AdversaryRouter ──▶ CustodyRouter ──▶ agent
//
// Two personalities share the class:
//
//  - Adversarial (role.adversarial): the node misbehaves per
//    AdversaryMode. blackhole swallows every relayed data payload at the
//    MAC seam (the MAC already ACKed — the node keeps signaling, so
//    routes keep running through it); selective_forward swallows a
//    drop_fraction slice of distinct messages — the verdict is drawn
//    once per message on the node's dedicated "adversary_drop" rng
//    stream and remembered, so flood redundancy cannot vote a dropped
//    message back through; gossip_poison additionally answers
//    gossip requests at the observer seam with fabricated duplicates of
//    messages it does not hold, wasting the initiator's recovery round.
//
//  - Honest monitor (trust.enabled on a non-adversarial node): keeps
//    per-neighbor trust counters and, once a neighbor trips a floor,
//    isolates it — refuses its control traffic and gossip replies at
//    ingress (never its data: no mode here corrupts payloads), filters
//    it out of tree_neighbors() (gossip peer selection), and suppresses
//    member-cache updates naming it. Egress toward it is counted but
//    not blocked — destroying the last route is worse than risking the
//    adversary's drop slice. Two detectors feed the tables:
//
//      * Forwarding watchdog (opt-in via TrustParams::watchdog, and only
//        on relay-everything substrates, i.e. the flooding family where
//        the protocol contract is "every node rebroadcasts every
//        payload"): a promiscuous MacSniffer tap
//        counts distinct data packets — the first appearance of a packet
//        obliges every live neighbor to relay it once (expected += 1
//        each), and every overheard relay credits its transmitter
//        (observed += 1). A diligent relay's ratio approaches the
//        capture probability of its one broadcast; a selective
//        forwarder's is scaled down by its drop fraction. Whoever sits
//        under forward_ratio_floor once min_expected packets accrue is
//        isolated. Tree substrates skip the watchdog entirely (an
//        honest tree leaf legitimately forwards nothing). A node that
//        relays *nothing* — the pure blackhole on flooding — goes
//        RF-silent, ages out of every live set, and is undetectable by
//        overhearing; the watchdog's quarry is the partial dropper.
//        Overhearing measures honesty x link capture x MAC congestion,
//        an unidentifiable product, so the watchdog carries an inherent
//        false-positive rate and defaults off; the junk-reply detector
//        below is the always-on, near-misfire-free half of the trust
//        layer (unsolicited honest pushes can very rarely trip it; the
//        adversary bench's fraction=0 column prices both detectors).
//      * Junk-reply scoring (any gossip substrate): the monitor records
//        the msg ids its own pull walks request; a gossip reply is junk
//        only when it duplicates a message this node already holds AND
//        never asked for (honest responders race, so late copies of
//        requested messages stay legitimate). A responder that is
//        overwhelmingly junk is isolated — fabricated duplicates outside
//        the pull's lost list are exactly the poisoner's signature.
//
//    All counters decay exponentially on the sim clock, applied lazily
//    at observation time — the trust layer schedules no events and draws
//    no randomness, so enabling it on an all-honest run changes nothing
//    until the moment an isolation would fire.
//
// Determinism: role assignment is synthesized on the dedicated
// "adversary" rng stream (fault_plan.h); the only in-run randomness is
// selective_forward's per-node "adversary_drop" stream. AG_ADVERSARY=off
// rebuilds the exact pre-adversary stack (harness::Network skips the
// decorator entirely).
#ifndef AG_FAULTS_ADVERSARY_H
#define AG_FAULTS_ADVERSARY_H

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_plan.h"
#include "gossip/routing_adapter.h"
#include "harness/multicast_router.h"
#include "mac/csma_mac.h"
#include "net/dense_map.h"
#include "net/node_table.h"
#include "net/packet.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace ag::faults {

class AdversaryRouter final : public harness::MulticastRouter,
                              public mac::MacListener,
                              public gossip::RouterObserver,
                              public mac::MacSniffer {
 public:
  // This node's assignment on the adversary axis. Honest by default.
  struct Role {
    bool adversarial{false};
    AdversaryMode mode{AdversaryMode::blackhole};
    double drop_fraction{0.7};  // selective_forward only
  };

  // `expect_all_relays` permits the forwarding watchdog: true only for
  // the flooding family, where every node is contractually a relay; the
  // watchdog additionally requires trust.watchdog. The promiscuous
  // sniffer tap is registered only when the watchdog is armed on an
  // honest monitor — tree protocols, adversaries, and junk-detector-only
  // monitors pay nothing per frame.
  AdversaryRouter(sim::Simulator& sim, mac::CsmaMac& mac,
                  std::unique_ptr<harness::MulticastRouter> inner, Role role,
                  const TrustParams& trust, bool expect_all_relays, sim::Rng drop_rng);

  // --- harness::MulticastRouter ---
  void start() override { inner_->start(); }
  // Trust tables are volatile state: a power-cycle (RebootPolicy::wipe)
  // forgets who it distrusted, unlike the custody store.
  void reset() override;
  void set_observer(gossip::RouterObserver* observer) override {
    observer_ = observer;
    inner_->set_observer(this);
  }
  void join_group(net::GroupId group) override { inner_->join_group(group); }
  void leave_group(net::GroupId group) override { inner_->leave_group(group); }
  std::uint32_t send_multicast(net::GroupId group,
                               std::uint16_t payload_bytes) override {
    return inner_->send_multicast(group, payload_bytes);
  }
  void add_totals(stats::NetworkTotals& totals) const override;

  // --- gossip::RoutingAdapter (isolation filtering, else passthrough) ---
  [[nodiscard]] net::NodeId self() const override { return inner_->self(); }
  [[nodiscard]] bool is_member(net::GroupId group) const override {
    return inner_->is_member(group);
  }
  [[nodiscard]] bool on_tree(net::GroupId group) const override {
    return inner_->on_tree(group);
  }
  [[nodiscard]] std::vector<net::NodeId> tree_neighbors(
      net::GroupId group) const override;
  void unicast(net::NodeId dest, net::Payload payload) override;
  void send_to_neighbor(net::NodeId neighbor, net::Payload payload) override;
  void route_hint(net::NodeId dest, net::NodeId via_neighbor,
                  std::uint8_t hops) override {
    inner_->route_hint(dest, via_neighbor, hops);
  }
  [[nodiscard]] std::uint8_t route_hops(net::NodeId dest) const override {
    return inner_->route_hops(dest);
  }

  // --- mac::MacListener (absorption / ingress isolation, else passthrough) ---
  void on_packet_received(const net::Packet& packet, net::NodeId from) override;
  void on_unicast_failed(const net::Packet& packet, net::NodeId next_hop) override {
    if (inner_listener_ != nullptr) inner_listener_->on_unicast_failed(packet, next_hop);
  }

  // --- gossip::RouterObserver (poison / junk scoring, else passthrough) ---
  void on_multicast_data(const net::MulticastData& data, net::NodeId from) override;
  void on_tree_neighbor_added(net::GroupId group, net::NodeId neighbor,
                              std::uint16_t member_distance_hint) override {
    if (observer_ != nullptr) {
      observer_->on_tree_neighbor_added(group, neighbor, member_distance_hint);
    }
  }
  void on_tree_neighbor_removed(net::GroupId group, net::NodeId neighbor) override {
    if (observer_ != nullptr) observer_->on_tree_neighbor_removed(group, neighbor);
  }
  void on_self_membership_changed(net::GroupId group, bool member) override {
    if (observer_ != nullptr) observer_->on_self_membership_changed(group, member);
  }
  void on_member_learned(net::GroupId group, net::NodeId member,
                         std::uint8_t hops) override;
  void on_gossip_packet(const net::Packet& packet, net::NodeId from) override;

  // --- mac::MacSniffer (forwarding watchdog; armed monitors only) ---
  void on_frame_overheard(const mac::Frame& frame) override;
  void on_frame_transmitted(const mac::Frame& frame) override;

  // --- introspection (harness::Network::result(), tests) ---
  [[nodiscard]] harness::MulticastRouter& inner() { return *inner_; }
  [[nodiscard]] const Role& role() const { return role_; }
  [[nodiscard]] bool monitoring() const { return monitor_; }
  [[nodiscard]] bool is_isolated(net::NodeId neighbor) const;
  [[nodiscard]] std::size_t isolated_count() const { return isolation_log_.size(); }

  struct Isolation {
    net::NodeId neighbor;
    sim::SimTime at;
  };
  // In firing order (the sim clock only moves forward).
  [[nodiscard]] const std::vector<Isolation>& isolation_log() const {
    return isolation_log_;
  }

  // Point-in-time view of one neighbor's trust state (tests, debugging).
  struct TrustSnapshot {
    bool known{false};
    bool isolated{false};
    double expected{0.0};
    double observed{0.0};
    double junk{0.0};
    double useful{0.0};
  };
  [[nodiscard]] TrustSnapshot trust_of(net::NodeId neighbor) const;

  struct Counters {
    // Adversarial roles.
    std::uint64_t data_absorbed{0};     // relayed payloads swallowed at the MAC seam
    std::uint64_t data_passed{0};       // selective_forward: payloads let through
    std::uint64_t poison_replies{0};    // fabricated duplicate replies sent
    std::uint64_t poison_swallowed{0};  // gossip requests consumed without a reply
    // Honest monitors.
    std::uint64_t ingress_dropped{0};   // control/replies refused from isolated
    std::uint64_t egress_blocked{0};    // sends toward isolated (counted, not cut)
    std::uint64_t junk_replies_seen{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  // Per-neighbor trust state; all mass decays with decay_tau_s.
  struct NeighborTrust {
    double expected{0.0};  // relays this neighbor owed (watchdog)
    double observed{0.0};  // relays actually overheard from it
    double junk{0.0};      // gossip replies that were already-held duplicates
    double useful{0.0};    // gossip replies that recovered something fresh
    sim::SimTime last_decay;
    sim::SimTime last_heard;
    bool isolated{false};
  };

  NeighborTrust& touch(net::NodeId neighbor, sim::SimTime now);
  void decay(NeighborTrust& t, sim::SimTime now) const;
  void isolate(net::NodeId neighbor, NeighborTrust& t, sim::SimTime now);
  // Watchdog bookkeeping for one overheard/own data frame: the first
  // appearance of a packet obliges every live neighbor to relay it once
  // (expected += 1 each); each overheard relay of an already-known packet
  // credits its transmitter (observed += 1). Fires the isolation floor.
  void watch_data_frame(const mac::Frame& frame, bool own, sim::SimTime now);
  // Records the msg ids this node's own pull walks ask for: a reply
  // answering a requested id is always legitimate, however late.
  void note_outgoing(const net::Payload& payload);
  void score_reply(const gossip::GossipReplyMsg& reply, sim::SimTime now);
  void poison(const gossip::GossipMsg& msg, net::NodeId from);
  // True when the adversarial role swallows this payload (data or a
  // gossip reply — everything the node was trusted to relay).
  [[nodiscard]] bool absorbs(const net::Packet& packet);

  sim::Simulator& sim_;
  mac::CsmaMac& mac_;
  std::unique_ptr<harness::MulticastRouter> inner_;
  mac::MacListener* inner_listener_;  // the inner router as a MAC listener
  Role role_;
  TrustParams trust_;
  const bool monitor_;   // honest node with the trust layer enabled
  const bool watchdog_;  // monitor on a relay-everything substrate
  sim::Rng drop_rng_;    // selective_forward draws; untouched otherwise
  gossip::RouterObserver* observer_{nullptr};

  net::NodeTable<NeighborTrust> trust_table_;
  net::DenseSet seen_;           // messages this node holds (junk-reply classifier)
  net::DenseSet requested_;      // msg ids this node's own pulls asked for
  net::DenseSet relay_seen_;     // packets the watchdog already credited
  net::DenseSet drop_decided_;   // selective_forward: msg ids already judged
  net::DenseSet drop_absorbed_;  // selective_forward: msg ids being dropped
  std::vector<Isolation> isolation_log_;
  std::vector<net::NodeId> live_scratch_;
  Counters counters_;
};

}  // namespace ag::faults

#endif  // AG_FAULTS_ADVERSARY_H
