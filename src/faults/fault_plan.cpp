#include "faults/fault_plan.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace ag::faults {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("FaultPlan: " + what);
}

}  // namespace

namespace {

// "crashes[3]" — every rejection names the offending plan entry so a bad
// sweep points straight at it instead of at "a node somewhere".
[[nodiscard]] std::string at(const char* list, std::size_t index) {
  return std::string(list) + "[" + std::to_string(index) + "]";
}

}  // namespace

void FaultPlan::validate(std::size_t node_count) const {
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    const CrashEvent& e = crashes[i];
    if (e.node >= node_count) {
      fail(at("crashes", i) + " targets node " + std::to_string(e.node) +
           " but the network has " + std::to_string(node_count) + " nodes");
    }
    if (e.at_s < 0.0) fail(at("crashes", i) + " time must be non-negative");
  }
  // Per-node crash intervals must not overlap or even touch: a node
  // cannot crash while it is already down, and a crash landing on the
  // exact reboot instant is ambiguous (the event queue is FIFO at equal
  // timestamps, so the crash could fire before the reboot and be lost).
  for (std::size_t i = 0; i < crashes.size(); ++i) {
    for (std::size_t j = i + 1; j < crashes.size(); ++j) {
      const CrashEvent& a = crashes[i];
      const CrashEvent& b = crashes[j];
      if (a.node != b.node) continue;
      const double a_end = a.down_for_s <= 0.0 ? std::numeric_limits<double>::infinity()
                                               : a.at_s + a.down_for_s;
      const double b_end = b.down_for_s <= 0.0 ? std::numeric_limits<double>::infinity()
                                               : b.at_s + b.down_for_s;
      if (a.at_s <= b_end && b.at_s <= a_end) {
        fail(at("crashes", j) + " crashes node " + std::to_string(a.node) +
             " while " + at("crashes", i) + " still has it down");
      }
    }
  }
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    const PartitionEvent& e = partitions[i];
    if (e.at_s < 0.0) fail(at("partitions", i) + " time must be non-negative");
    if (e.heal_after_s <= 0.0) {
      fail(at("partitions", i) + " heal_after_s must be positive");
    }
  }
  // Same closed-interval rule as crashes: a cut starting at the exact
  // heal instant of another could fire before that heal and be lost.
  for (std::size_t i = 0; i < partitions.size(); ++i) {
    for (std::size_t j = i + 1; j < partitions.size(); ++j) {
      const PartitionEvent& a = partitions[i];
      const PartitionEvent& b = partitions[j];
      if (a.at_s <= b.at_s + b.heal_after_s && b.at_s <= a.at_s + a.heal_after_s) {
        fail(at("partitions", j) + " overlaps or touches " + at("partitions", i) +
             "; the channel models a single cut at a time");
      }
    }
  }
  for (std::size_t i = 0; i < membership.size(); ++i) {
    const MembershipEvent& e = membership[i];
    if (e.node >= node_count) {
      fail(at("membership", i) + " targets node " + std::to_string(e.node) +
           " but the network has " + std::to_string(node_count) + " nodes");
    }
    if (e.at_s < 0.0) fail(at("membership", i) + " time must be non-negative");
  }
  for (std::size_t i = 0; i < adversaries.size(); ++i) {
    const AdversaryAssignment& e = adversaries[i];
    if (e.node >= node_count) {
      fail(at("adversaries", i) + " targets node " + std::to_string(e.node) +
           " but the network has " + std::to_string(node_count) + " nodes");
    }
    if (e.drop_fraction < 0.0 || e.drop_fraction > 1.0) {
      fail(at("adversaries", i) + " drop_fraction must be in [0, 1]");
    }
    for (std::size_t j = i + 1; j < adversaries.size(); ++j) {
      if (adversaries[j].node == e.node) {
        fail(at("adversaries", j) + " re-assigns node " + std::to_string(e.node) +
             " already compromised by " + at("adversaries", i));
      }
    }
  }
}

void synthesize_into(FaultPlan& plan, const FaultSpec& spec, std::size_t node_count,
                     std::size_t member_count, std::size_t source_index,
                     double duration_s, sim::Rng rng) {
  // Churn: leave+rejoin cycles drawn uniformly over the middle of the
  // run, one member (never the source) per cycle. Cycle start times are
  // sorted so the per-member disjointness bookkeeping works in time
  // order, and a busy member is redrawn a few times rather than dropped —
  // otherwise the realized churn would fall systematically short of
  // spec.churn_per_min.
  if (spec.churn_per_min > 0.0 && member_count > 1) {
    const auto cycles = static_cast<std::size_t>(spec.churn_per_min * duration_s / 60.0 + 0.5);
    std::vector<double> at_s(cycles);
    for (double& t : at_s) t = rng.uniform(0.15 * duration_s, 0.85 * duration_s);
    std::sort(at_s.begin(), at_s.end());
    std::vector<double> busy_until(member_count, 0.0);
    for (const double at : at_s) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        // Uniform over the members excluding the source.
        auto member = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(member_count) - 2));
        if (source_index < member_count && member >= source_index) ++member;
        if (at < busy_until[member]) continue;  // mid-cycle; redraw
        busy_until[member] = at + spec.churn_downtime_s;
        plan.leave(member, at);
        const double back = at + spec.churn_downtime_s;
        if (back < duration_s) plan.join(member, back);
        break;
      }
    }
  }

  // Crashes: a fixed fraction of distinct non-source nodes, each crashed
  // once somewhere in the middle of the run.
  if (spec.crash_fraction > 0.0 && node_count > 1) {
    std::vector<std::size_t> candidates;
    candidates.reserve(node_count - 1);
    for (std::size_t i = 0; i < node_count; ++i) {
      if (i != source_index) candidates.push_back(i);
    }
    auto victims = static_cast<std::size_t>(
        spec.crash_fraction * static_cast<double>(node_count) + 0.5);
    victims = std::min(victims, candidates.size());
    // Partial Fisher-Yates: the first `victims` entries end up a uniform
    // sample without replacement.
    for (std::size_t i = 0; i < victims; ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(i), static_cast<std::int64_t>(candidates.size()) - 1));
      std::swap(candidates[i], candidates[j]);
      const double at = rng.uniform(0.2 * duration_s, 0.7 * duration_s);
      plan.crash(candidates[i], at, spec.crash_downtime_s, spec.crash_policy);
    }
  }

  // One partition episode, centered unless the spec pins its start.
  if (spec.partition_duration_s > 0.0) {
    const double at = spec.partition_at_s >= 0.0
                          ? spec.partition_at_s
                          : std::max(0.0, (duration_s - spec.partition_duration_s) / 2.0);
    plan.partition_at_x(-1.0, at, spec.partition_duration_s);
  }
}

void synthesize_adversaries_into(FaultPlan& plan, const FaultSpec& spec,
                                 std::size_t node_count, std::size_t source_index,
                                 sim::Rng rng) {
  if (!spec.adversaries_any() || node_count < 2) return;
  std::vector<std::size_t> candidates;
  candidates.reserve(node_count - 1);
  for (std::size_t i = 0; i < node_count; ++i) {
    if (i != source_index) candidates.push_back(i);
  }
  auto compromised = static_cast<std::size_t>(
      spec.adversary_fraction * static_cast<double>(node_count) + 0.5);
  compromised = std::min(compromised, candidates.size());
  // Partial Fisher-Yates, same idiom as crash synthesis: the first
  // `compromised` entries end up a uniform sample without replacement.
  for (std::size_t i = 0; i < compromised; ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(candidates.size()) - 1));
    std::swap(candidates[i], candidates[j]);
    plan.adversary(candidates[i], spec.adversary_mode, spec.adversary_drop);
  }
}

}  // namespace ag::faults
