// Declarative fault & churn plans. A FaultPlan is a list of timed events —
// node crashes/reboots, a geometric channel partition, and dynamic group
// membership (leave/rejoin) — executed against a live network by the
// FaultInjector. Plans are either scripted directly (examples, tests) or
// synthesized deterministically from a FaultSpec (the sweepable axes:
// churn rate, crash fraction, partition duration).
#ifndef AG_FAULTS_FAULT_PLAN_H
#define AG_FAULTS_FAULT_PLAN_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace ag::faults {

// What a crashed node remembers when it comes back up. `wipe` models a
// power-cycle: routing tables, tree state and gossip buffers are gone
// (data-plane sequence counters survive, as if kept in stable storage, so
// peers' duplicate suppression stays coherent). `preserve` models a radio
// outage: the node was isolated but never lost state.
enum class RebootPolicy : std::uint8_t { wipe, preserve };

struct CrashEvent {
  std::size_t node{0};
  double at_s{0.0};
  // Seconds until the node reboots; <= 0 means it never comes back.
  double down_for_s{30.0};
  RebootPolicy policy{RebootPolicy::wipe};
};

// Severs the channel between the two node sets induced by the line
// a*x + b*y <= c, evaluated against node positions at activation time.
// a == b == 0 requests an automatic cut: a vertical line through the
// median x coordinate, which always yields two non-trivial halves.
struct PartitionEvent {
  double at_s{0.0};
  double heal_after_s{60.0};
  double a{0.0};
  double b{0.0};
  double c{0.0};
};

struct MembershipEvent {
  std::size_t node{0};
  double at_s{0.0};
  bool join{false};  // false = leave the group
};

// How a compromised node misbehaves (src/faults/adversary.h implements
// the behaviors as the AdversaryRouter decorator):
//  - blackhole: absorbs every relayed data payload but keeps signaling
//    (control traffic, MAC ACKs), so routing still routes through it.
//  - selective_forward: drops a fixed fraction of relayed payloads, drawn
//    from the node's dedicated rng stream.
//  - gossip_poison: consumes gossip requests addressed to it and answers
//    with fabricated duplicates of messages it does not hold, wasting the
//    initiator's recovery round.
enum class AdversaryMode : std::uint8_t { blackhole, selective_forward, gossip_poison };

// One compromised node. Part of the resolved FaultPlan so scripted and
// synthesized adversaries flow through the same validation and wiring.
struct AdversaryAssignment {
  std::size_t node{0};
  AdversaryMode mode{AdversaryMode::blackhole};
  // selective_forward only: probability a relayed payload is dropped.
  double drop_fraction{0.7};
};

// Trust layer configuration (the detection/isolation side of the
// adversary axis — see faults::AdversaryRouter). Disabled by default;
// enabling it on a run with zero adversaries must not change the run
// (the trust tables are bookkeeping only until an isolation fires).
struct TrustParams {
  bool enabled{false};
  // Exponential decay time constant for all trust counters (sim clock;
  // decay is applied lazily on observation — never via timer events).
  double decay_tau_s{30.0};
  // Forwarding watchdog: isolate a neighbor whose observed/expected
  // relay ratio sits below the floor once enough expectation mass has
  // accrued. Only armed on relay-everything substrates (flooding), where
  // "every node rebroadcasts every payload" is the protocol contract —
  // and only when explicitly requested: a promiscuous monitor measures
  // the *product* of honesty, link capture, and MAC queue congestion,
  // so a fringe neighbor under load is locally indistinguishable from a
  // selective forwarder and false positives are inherent (the classic
  // watchdog tradeoff). Off, the trust layer runs only the junk-reply
  // detector, which almost never misfires on honest traffic; the
  // adversary bench's fraction=0 column quantifies each detector's
  // false-positive cost.
  bool watchdog{false};
  double forward_ratio_floor{0.25};
  double min_expected{40.0};
  // Junk-reply scoring (any gossip substrate): isolate a responder whose
  // replies are overwhelmingly already-held duplicates.
  double junk_ratio_floor{0.8};
  double min_junk{3.0};
  // A neighbor accrues forwarding expectation only while heard within
  // this window — i.e. only while provably in radio range right now.
  // Kept tight on purpose: with mobility, a wide window keeps crediting
  // neighbors that have drifted out of range (whose relays are then
  // inaudible by physics, not malice), and those phantom debts are what
  // turn fringe nodes into watchdog false positives.
  double neighbor_ttl_s{2.0};
};

struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;
  std::vector<MembershipEvent> membership;
  std::vector<AdversaryAssignment> adversaries;

  // Timed-event emptiness: adversaries are roles, not events, so they
  // deliberately do not count here — an adversary-only plan must not
  // flip the fault-run paths (per-node sinks, the injector).
  [[nodiscard]] bool empty() const {
    return crashes.empty() && partitions.empty() && membership.empty();
  }
  [[nodiscard]] std::size_t event_count() const {
    return crashes.size() + partitions.size() + membership.size();
  }

  // Fluent builders for scripted scenarios.
  FaultPlan& crash(std::size_t node, double at_s, double down_for_s,
                   RebootPolicy policy = RebootPolicy::wipe) {
    crashes.push_back({node, at_s, down_for_s, policy});
    return *this;
  }
  // Vertical cut at x = line_x (auto-median when line_x is negative).
  FaultPlan& partition_at_x(double line_x, double at_s, double heal_after_s) {
    if (line_x < 0) {
      partitions.push_back({at_s, heal_after_s, 0.0, 0.0, 0.0});
    } else {
      partitions.push_back({at_s, heal_after_s, 1.0, 0.0, line_x});
    }
    return *this;
  }
  FaultPlan& leave(std::size_t node, double at_s) {
    membership.push_back({node, at_s, false});
    return *this;
  }
  FaultPlan& join(std::size_t node, double at_s) {
    membership.push_back({node, at_s, true});
    return *this;
  }
  FaultPlan& adversary(std::size_t node, AdversaryMode mode,
                       double drop_fraction = 0.7) {
    adversaries.push_back({node, mode, drop_fraction});
    return *this;
  }

  // Sanity-checks the plan against a concrete network: node indices in
  // range, non-negative times, positive heal delays, per-node crash
  // intervals non-overlapping, at most one partition active at a time
  // (the channel models a single cut), and adversary roles unique per
  // node. Rejections name the offending event index ("crashes[2]", ...)
  // so a bad sweep points straight at its plan entry. Throws
  // std::invalid_argument.
  void validate(std::size_t node_count) const;
};

// The sweepable fault axes: a spec is expanded into concrete events by
// synthesize_into, deterministically from its own rng stream. All fields
// zero (the default) means no faults at all.
struct FaultSpec {
  // Expected member leave+rejoin cycles per minute across the group
  // (the churn axis of the churn bench).
  double churn_per_min{0.0};
  double churn_downtime_s{20.0};
  // Fraction of nodes (excluding the source) crashed once mid-run.
  double crash_fraction{0.0};
  double crash_downtime_s{30.0};
  RebootPolicy crash_policy{RebootPolicy::wipe};
  // One partition episode of this length mid-run when > 0.
  double partition_duration_s{0.0};
  // Episode start; negative centers it in the run.
  double partition_at_s{-1.0};
  // Adversary axis: fraction of nodes (excluding the source) flipped
  // into `adversary_mode` for the whole run. Synthesized on its own rng
  // stream by synthesize_adversaries_into — and deliberately NOT part of
  // any(): adversaries are roles, not timed fault events, so arming the
  // axis at fraction zero must not flip the fault-run machinery.
  double adversary_fraction{0.0};
  AdversaryMode adversary_mode{AdversaryMode::blackhole};
  double adversary_drop{0.7};  // selective_forward drop probability

  [[nodiscard]] bool any() const {
    return churn_per_min > 0.0 || crash_fraction > 0.0 || partition_duration_s > 0.0;
  }
  [[nodiscard]] bool adversaries_any() const { return adversary_fraction > 0.0; }
};

// Appends the events a spec describes for one concrete run to `plan`.
// Deterministic in (spec, topology sizes, rng seed); the source node is
// never churned or crashed, so packets_sent stays a meaningful
// denominator. Members are node indices [0, member_count).
void synthesize_into(FaultPlan& plan, const FaultSpec& spec, std::size_t node_count,
                     std::size_t member_count, std::size_t source_index,
                     double duration_s, sim::Rng rng);

// Appends the adversary roles the spec describes: round(fraction *
// node_count) distinct non-source nodes, a uniform sample without
// replacement. Runs on its own dedicated rng stream ("adversary") so an
// armed-but-zero axis draws nothing and perturbs nothing.
void synthesize_adversaries_into(FaultPlan& plan, const FaultSpec& spec,
                                 std::size_t node_count, std::size_t source_index,
                                 sim::Rng rng);

// What a ScenarioConfig carries: scripted events plus a synthesizable
// spec. Both default empty — fault hooks are zero-cost when unused.
struct FaultConfig {
  FaultPlan plan;
  FaultSpec spec;

  [[nodiscard]] bool active() const { return !plan.empty() || spec.any(); }
};

}  // namespace ag::faults

#endif  // AG_FAULTS_FAULT_PLAN_H
