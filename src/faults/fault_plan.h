// Declarative fault & churn plans. A FaultPlan is a list of timed events —
// node crashes/reboots, a geometric channel partition, and dynamic group
// membership (leave/rejoin) — executed against a live network by the
// FaultInjector. Plans are either scripted directly (examples, tests) or
// synthesized deterministically from a FaultSpec (the sweepable axes:
// churn rate, crash fraction, partition duration).
#ifndef AG_FAULTS_FAULT_PLAN_H
#define AG_FAULTS_FAULT_PLAN_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/rng.h"

namespace ag::faults {

// What a crashed node remembers when it comes back up. `wipe` models a
// power-cycle: routing tables, tree state and gossip buffers are gone
// (data-plane sequence counters survive, as if kept in stable storage, so
// peers' duplicate suppression stays coherent). `preserve` models a radio
// outage: the node was isolated but never lost state.
enum class RebootPolicy : std::uint8_t { wipe, preserve };

struct CrashEvent {
  std::size_t node{0};
  double at_s{0.0};
  // Seconds until the node reboots; <= 0 means it never comes back.
  double down_for_s{30.0};
  RebootPolicy policy{RebootPolicy::wipe};
};

// Severs the channel between the two node sets induced by the line
// a*x + b*y <= c, evaluated against node positions at activation time.
// a == b == 0 requests an automatic cut: a vertical line through the
// median x coordinate, which always yields two non-trivial halves.
struct PartitionEvent {
  double at_s{0.0};
  double heal_after_s{60.0};
  double a{0.0};
  double b{0.0};
  double c{0.0};
};

struct MembershipEvent {
  std::size_t node{0};
  double at_s{0.0};
  bool join{false};  // false = leave the group
};

struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<PartitionEvent> partitions;
  std::vector<MembershipEvent> membership;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && partitions.empty() && membership.empty();
  }
  [[nodiscard]] std::size_t event_count() const {
    return crashes.size() + partitions.size() + membership.size();
  }

  // Fluent builders for scripted scenarios.
  FaultPlan& crash(std::size_t node, double at_s, double down_for_s,
                   RebootPolicy policy = RebootPolicy::wipe) {
    crashes.push_back({node, at_s, down_for_s, policy});
    return *this;
  }
  // Vertical cut at x = line_x (auto-median when line_x is negative).
  FaultPlan& partition_at_x(double line_x, double at_s, double heal_after_s) {
    if (line_x < 0) {
      partitions.push_back({at_s, heal_after_s, 0.0, 0.0, 0.0});
    } else {
      partitions.push_back({at_s, heal_after_s, 1.0, 0.0, line_x});
    }
    return *this;
  }
  FaultPlan& leave(std::size_t node, double at_s) {
    membership.push_back({node, at_s, false});
    return *this;
  }
  FaultPlan& join(std::size_t node, double at_s) {
    membership.push_back({node, at_s, true});
    return *this;
  }

  // Sanity-checks the plan against a concrete network: node indices in
  // range, non-negative times, positive heal delays, per-node crash
  // intervals non-overlapping, and at most one partition active at a time
  // (the channel models a single cut). Throws std::invalid_argument.
  void validate(std::size_t node_count) const;
};

// The sweepable fault axes: a spec is expanded into concrete events by
// synthesize_into, deterministically from its own rng stream. All fields
// zero (the default) means no faults at all.
struct FaultSpec {
  // Expected member leave+rejoin cycles per minute across the group
  // (the churn axis of the churn bench).
  double churn_per_min{0.0};
  double churn_downtime_s{20.0};
  // Fraction of nodes (excluding the source) crashed once mid-run.
  double crash_fraction{0.0};
  double crash_downtime_s{30.0};
  RebootPolicy crash_policy{RebootPolicy::wipe};
  // One partition episode of this length mid-run when > 0.
  double partition_duration_s{0.0};
  // Episode start; negative centers it in the run.
  double partition_at_s{-1.0};

  [[nodiscard]] bool any() const {
    return churn_per_min > 0.0 || crash_fraction > 0.0 || partition_duration_s > 0.0;
  }
};

// Appends the events a spec describes for one concrete run to `plan`.
// Deterministic in (spec, topology sizes, rng seed); the source node is
// never churned or crashed, so packets_sent stays a meaningful
// denominator. Members are node indices [0, member_count).
void synthesize_into(FaultPlan& plan, const FaultSpec& spec, std::size_t node_count,
                     std::size_t member_count, std::size_t source_index,
                     double duration_s, sim::Rng rng);

// What a ScenarioConfig carries: scripted events plus a synthesizable
// spec. Both default empty — fault hooks are zero-cost when unused.
struct FaultConfig {
  FaultPlan plan;
  FaultSpec spec;

  [[nodiscard]] bool active() const { return !plan.empty() || spec.any(); }
};

}  // namespace ag::faults

#endif  // AG_FAULTS_FAULT_PLAN_H
