#include "faults/adversary.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <variant>

#include "net/data.h"
#include "stats/run_result.h"

namespace ag::faults {

AdversaryRouter::AdversaryRouter(sim::Simulator& sim, mac::CsmaMac& mac,
                                 std::unique_ptr<harness::MulticastRouter> inner,
                                 Role role, const TrustParams& trust,
                                 bool expect_all_relays, sim::Rng drop_rng)
    : sim_{sim},
      mac_{mac},
      inner_{std::move(inner)},
      inner_listener_{dynamic_cast<mac::MacListener*>(inner_.get())},
      role_{role},
      trust_{trust},
      monitor_{trust.enabled && !role.adversarial},
      watchdog_{trust.enabled && trust.watchdog && !role.adversarial &&
                expect_all_relays},
      drop_rng_{std::move(drop_rng)} {
  // The inner router's constructor registered itself with the MAC;
  // re-register so every frame flows through the decorator first.
  mac_.set_listener(this);
  // The promiscuous tap costs one branch per frame network-wide, so it is
  // registered only where the forwarding watchdog can actually use it.
  if (watchdog_) mac_.set_sniffer(this);
}

void AdversaryRouter::reset() {
  inner_->reset();
  // A power-cycle forgets who it distrusted: trust is volatile state,
  // unlike the custody store or the data-plane sequence counters.
  trust_table_.clear();
  seen_.clear();
  requested_.clear();
  relay_seen_.clear();
  drop_decided_.clear();
  drop_absorbed_.clear();
  isolation_log_.clear();
}

bool AdversaryRouter::is_isolated(net::NodeId neighbor) const {
  const NeighborTrust* t = trust_table_.find(neighbor);
  return t != nullptr && t->isolated;
}

AdversaryRouter::TrustSnapshot AdversaryRouter::trust_of(net::NodeId neighbor) const {
  const NeighborTrust* t = trust_table_.find(neighbor);
  if (t == nullptr) return {};
  return {true, t->isolated, t->expected, t->observed, t->junk, t->useful};
}

// --- adversarial behaviors -------------------------------------------------

bool AdversaryRouter::absorbs(const net::Packet& packet) {
  // Everything the node was trusted to relay for others: application data
  // and the gossip replies that ride hop-by-hop unicasts. Control traffic
  // (walks, route discovery, tree maintenance) passes — the node keeps
  // signaling, so routes keep running through it.
  net::MsgId id;
  if (const auto* data = packet.get_if<net::MulticastData>()) {
    id = net::MsgId{data->origin, data->seq};
  } else if (const auto* reply = packet.get_if<gossip::GossipReplyMsg>()) {
    id = net::MsgId{reply->data.origin, reply->data.seq};
  } else {
    return false;
  }
  switch (role_.mode) {
    case AdversaryMode::blackhole:
      break;
    case AdversaryMode::selective_forward: {
      // The verdict is per message, not per frame: a flood delivers many
      // copies of one packet, and a fresh coin per copy would let it
      // through with probability 1 - drop^k — a node that barely
      // misbehaves under exactly the redundancy it is meant to attack.
      // Deciding once and remembering pins the effective forwarding rate
      // at 1 - drop_fraction. A gossip reply shares its message's
      // verdict: the node consistently pretends it never held it.
      const std::uint64_t key = net::msg_key(id);
      if (drop_decided_.insert(key) && drop_rng_.bernoulli(role_.drop_fraction)) {
        drop_absorbed_.insert(key);
      }
      if (!drop_absorbed_.contains(key)) {
        ++counters_.data_passed;
        return false;
      }
      break;
    }
    case AdversaryMode::gossip_poison:
      return false;  // relays honestly; the damage is in its fabricated replies
  }
  ++counters_.data_absorbed;
  return true;
}

void AdversaryRouter::poison(const gossip::GossipMsg& msg, net::NodeId from) {
  if (!msg.pull) {
    // Push round: nothing to answer. Eat the pushed payloads instead of
    // letting the agent store them.
    ++counters_.poison_swallowed;
    return;
  }
  // Look interested: install the reverse-path hint exactly like an honest
  // acceptor would, so the junk reply can route back to the initiator.
  inner_->route_hint(msg.initiator, from, std::max<std::uint8_t>(msg.hops_walked, 1));
  for (const gossip::SenderExpectation& exp : msg.expected) {
    // Fabricate a message the initiator already holds: a seq below its
    // expectation that is NOT in the lost buffer. A seq from the lost
    // buffer would genuinely recover the message (payloads carry no
    // content in the simulation), which is the opposite of poisoning.
    const std::uint32_t back_limit = std::min<std::uint32_t>(exp.expected_seq, 8);
    for (std::uint32_t back = 1; back <= back_limit; ++back) {
      const std::uint32_t seq = exp.expected_seq - back;
      bool genuinely_lost = false;
      for (const net::MsgId& lost : msg.lost) {
        if (lost.origin == exp.sender && lost.seq == seq) {
          genuinely_lost = true;
          break;
        }
      }
      if (genuinely_lost) continue;
      gossip::GossipReplyMsg junk;
      junk.group = msg.group;
      junk.responder = self();
      junk.data.group = msg.group;
      junk.data.origin = exp.sender;
      junk.data.seq = seq;
      junk.data.payload_bytes = 64;
      junk.data.sent_at = sim_.now();
      junk.data.hops = 0;
      inner_->unicast(msg.initiator, net::Payload{std::move(junk)});
      ++counters_.poison_replies;
      return;
    }
  }
  // No fabricable duplicate (the initiator expects nothing yet, or lost
  // everything recent): consume the round silently.
  ++counters_.poison_swallowed;
}

// --- trust bookkeeping -----------------------------------------------------

AdversaryRouter::NeighborTrust& AdversaryRouter::touch(net::NodeId neighbor,
                                                       sim::SimTime now) {
  auto [t, inserted] = trust_table_.try_emplace(neighbor, NeighborTrust{});
  if (inserted) t->last_decay = now;  // fresh entry: no mass to decay yet
  return *t;
}

void AdversaryRouter::decay(NeighborTrust& t, sim::SimTime now) const {
  const double dt = (now - t.last_decay).to_seconds();
  if (dt <= 0.0) return;
  t.last_decay = now;
  const double f = std::exp(-dt / trust_.decay_tau_s);
  t.expected *= f;
  t.observed *= f;
  t.junk *= f;
  t.useful *= f;
}

void AdversaryRouter::isolate(net::NodeId neighbor, NeighborTrust& t,
                              sim::SimTime now) {
  t.isolated = true;  // permanent: re-admission is future work (ROADMAP)
  isolation_log_.push_back({neighbor, now});
}

void AdversaryRouter::watch_data_frame(const mac::Frame& frame, bool own,
                                       sim::SimTime now) {
  const auto* data = frame.packet->get_if<net::MulticastData>();
  if (data == nullptr) return;
  const std::uint64_t key = net::msg_key(net::MsgId{data->origin, data->seq});
  const bool first = relay_seen_.insert(key);
  if (!own) {
    // The transmitter just relayed (or originated) this packet. Crediting
    // per distinct (packet, transmitter) pair would need a product table;
    // per overheard frame is close enough — an honest relay broadcasts a
    // given packet once, so double credit only follows a MAC retry.
    NeighborTrust& src = touch(frame.mac_src, now);
    decay(src, now);
    src.observed += 1.0;
  }
  if (!first) return;
  // First appearance of this packet: every live neighbor (the transmitter
  // included — it already earned its observed credit above) owes exactly
  // one relay of it. Expectation mass therefore counts distinct packets,
  // not overheard frames, so it cannot be inflated by dense regimes where
  // one packet is rebroadcast by a dozen neighbors. A diligent relay sits
  // near ratio = P(we capture its one relay), a blackhole near zero, a
  // selective forwarder near (1 - drop_fraction) x capture.
  live_scratch_.clear();
  const net::NodeId me = self();
  trust_table_.for_each([&](net::NodeId id, NeighborTrust& t) {
    if (id == me) return;
    if ((now - t.last_heard).to_seconds() > trust_.neighbor_ttl_s) return;
    live_scratch_.push_back(id);
  });
  for (const net::NodeId id : live_scratch_) {
    NeighborTrust& t = *trust_table_.find(id);
    decay(t, now);
    t.expected += 1.0;
    if (!t.isolated && t.expected >= trust_.min_expected &&
        t.observed < trust_.forward_ratio_floor * t.expected) {
      isolate(id, t, now);
    }
  }
}

void AdversaryRouter::note_outgoing(const net::Payload& payload) {
  const auto* msg = std::get_if<gossip::GossipMsg>(&payload);
  if (msg == nullptr || !msg->pull || msg->initiator != self()) return;
  for (const net::MsgId& lost : msg->lost) requested_.insert(net::msg_key(lost));
}

void AdversaryRouter::score_reply(const gossip::GossipReplyMsg& reply,
                                  sim::SimTime now) {
  // Deliberately does NOT touch last_heard: the responder may be several
  // hops away, and marking it live would feed the forwarding watchdog
  // expectations for a node we cannot actually overhear.
  NeighborTrust& t = touch(reply.responder, now);
  decay(t, now);
  const std::uint64_t key =
      net::msg_key(net::MsgId{reply.data.origin, reply.data.seq});
  const bool fresh = seen_.insert(key);
  if (fresh || requested_.contains(key)) {
    // Anything we asked for stays legitimate however late it lands:
    // honest responders race, and the slower copy of a requested message
    // is a duplicate but not evidence of lying. Junk is specifically a
    // duplicate we never requested — the poisoner's signature, since it
    // fabricates seqs *outside* the pull's lost list on purpose.
    t.useful += 1.0;
    return;
  }
  t.junk += 1.0;
  ++counters_.junk_replies_seen;
  if (!t.isolated && t.junk >= trust_.min_junk &&
      t.junk >= trust_.junk_ratio_floor * (t.junk + t.useful)) {
    isolate(reply.responder, t, now);
  }
}

// --- MAC seam --------------------------------------------------------------

void AdversaryRouter::on_packet_received(const net::Packet& packet, net::NodeId from) {
  if (role_.adversarial && absorbs(packet)) return;
  if (monitor_ && is_isolated(from) && !packet.is<net::MulticastData>()) {
    // Refuse control traffic and gossip replies from a distrusted
    // neighbor — but never its data. Every adversary mode here absorbs
    // or fabricates; none corrupts payloads, so a data packet is good no
    // matter whose radio relayed it, and dropping it would punish the
    // network (and the monitor itself) rather than the adversary.
    ++counters_.ingress_dropped;
    return;
  }
  if (inner_listener_ != nullptr) inner_listener_->on_packet_received(packet, from);
}

// --- sniffer seam (watchdog monitors only) ---------------------------------

void AdversaryRouter::on_frame_overheard(const mac::Frame& frame) {
  const sim::SimTime now = sim_.now();
  NeighborTrust& src = touch(frame.mac_src, now);
  src.last_heard = now;
  if (frame.packet == nullptr) return;
  watch_data_frame(frame, /*own=*/false, now);
}

void AdversaryRouter::on_frame_transmitted(const mac::Frame& frame) {
  // Our own transmission: if it is the first appearance of a data packet
  // (we originated it, or our relay beat every copy we could overhear),
  // the live neighborhood owes us its relays.
  if (frame.packet == nullptr) return;
  watch_data_frame(frame, /*own=*/true, sim_.now());
}

// --- observer seam ---------------------------------------------------------

void AdversaryRouter::on_multicast_data(const net::MulticastData& data,
                                        net::NodeId from) {
  // Everything delivered up is something this node now holds — the
  // baseline the junk-reply classifier compares replies against.
  if (monitor_) seen_.insert(net::msg_key(net::MsgId{data.origin, data.seq}));
  if (observer_ != nullptr) observer_->on_multicast_data(data, from);
}

void AdversaryRouter::on_member_learned(net::GroupId group, net::NodeId member,
                                        std::uint8_t hops) {
  // Keep distrusted nodes out of the member cache: a gossip walk must not
  // be unicast straight to an isolated "member".
  if (monitor_ && is_isolated(member)) return;
  if (observer_ != nullptr) observer_->on_member_learned(group, member, hops);
}

void AdversaryRouter::on_gossip_packet(const net::Packet& packet, net::NodeId from) {
  if (role_.adversarial && role_.mode == AdversaryMode::gossip_poison) {
    if (const auto* msg = packet.get_if<gossip::GossipMsg>()) {
      poison(*msg, from);
      return;
    }
  }
  if (monitor_) {
    if (const auto* reply = packet.get_if<gossip::GossipReplyMsg>()) {
      score_reply(*reply, sim_.now());
      if (is_isolated(reply->responder)) {
        ++counters_.ingress_dropped;
        return;
      }
    }
  }
  if (observer_ != nullptr) observer_->on_gossip_packet(packet, from);
}

// --- adapter filtering (gossip peer selection, route replies) --------------

std::vector<net::NodeId> AdversaryRouter::tree_neighbors(net::GroupId group) const {
  std::vector<net::NodeId> v = inner_->tree_neighbors(group);
  if (monitor_ && !isolation_log_.empty()) {
    std::erase_if(v, [this](net::NodeId id) { return is_isolated(id); });
  }
  return v;
}

// Isolation deliberately does NOT hard-block egress. A relayed reply
// whose only route hint runs through a distrusted next hop is worth
// sending anyway: a selective forwarder still passes its kept slice,
// while refusing to send loses the packet with certainty — and when the
// isolation was a watchdog false positive, the "distrusted" hop would
// have relayed faithfully. Keeping traffic away from adversaries is the
// job of peer selection (tree_neighbors) and the member-cache filter,
// which choose among alternatives instead of destroying the last one.
void AdversaryRouter::unicast(net::NodeId dest, net::Payload payload) {
  if (monitor_ && is_isolated(dest)) ++counters_.egress_blocked;
  if (monitor_) note_outgoing(payload);
  inner_->unicast(dest, std::move(payload));
}

void AdversaryRouter::send_to_neighbor(net::NodeId neighbor, net::Payload payload) {
  if (monitor_ && is_isolated(neighbor)) ++counters_.egress_blocked;
  if (monitor_) note_outgoing(payload);
  inner_->send_to_neighbor(neighbor, std::move(payload));
}

// --- accounting ------------------------------------------------------------

void AdversaryRouter::add_totals(stats::NetworkTotals& totals) const {
  if (role_.adversarial) ++totals.adversary_nodes;
  totals.adversary_absorbed += counters_.data_absorbed;
  totals.adversary_poisoned += counters_.poison_replies + counters_.poison_swallowed;
  totals.trust_filtered +=
      counters_.ingress_dropped + counters_.egress_blocked;
  // Isolation / false-positive / latency stats need the ground-truth role
  // map, so harness::Network::result() computes them from isolation_log().
  inner_->add_totals(totals);
}

}  // namespace ag::faults
