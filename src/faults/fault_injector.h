// Executes a FaultPlan against a live network: schedules every event on
// the simulator clock and fires host-provided hooks (the harness wires
// them to the channel, node stacks and sinks). The injector owns the
// crash/partition bookkeeping — pairing reboots with crashes, tracking
// downtime, and guarding against degenerate sequences (a crash landing on
// an already-down node is dropped rather than double-applied).
#ifndef AG_FAULTS_FAULT_INJECTOR_H
#define AG_FAULTS_FAULT_INJECTOR_H

#include <cstddef>
#include <functional>
#include <vector>

#include "faults/fault_plan.h"
#include "sim/simulator.h"
#include "stats/run_result.h"

namespace ag::faults {

// What the host network lets the injector do. All hooks must be set.
struct FaultHooks {
  // Take the node's radio down; wipe or preserve its stack state.
  std::function<void(std::size_t node, RebootPolicy)> crash;
  // Bring the radio back; restart wiped machinery and rejoin if needed.
  std::function<void(std::size_t node, RebootPolicy)> reboot;
  std::function<void(std::size_t node)> leave;
  std::function<void(std::size_t node)> join;
  // Compute the cut from current positions and install it in the channel.
  std::function<void(const PartitionEvent&)> partition_begin;
  std::function<void()> partition_heal;
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, FaultPlan plan, FaultHooks hooks);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedules every plan event on the simulator. Call once after the
  // network is fully wired.
  void arm();

  [[nodiscard]] bool node_down(std::size_t node) const {
    return node < down_since_.size() && down_since_[node].second;
  }
  [[nodiscard]] bool partition_active() const { return partition_active_; }

  // Snapshot of the fault record; open intervals (nodes still down, a
  // partition still active) are counted up to the current clock.
  [[nodiscard]] stats::FaultStats stats() const;

 private:
  void apply_crash(const CrashEvent& ev);
  void apply_reboot(std::size_t node, RebootPolicy policy);
  void apply_partition(const PartitionEvent& ev);
  void apply_heal();

  sim::Simulator& sim_;
  FaultPlan plan_;
  FaultHooks hooks_;
  // Per node: (down-since timestamp, currently-down flag).
  std::vector<std::pair<sim::SimTime, bool>> down_since_;
  bool partition_active_{false};
  sim::SimTime partition_since_;
  stats::FaultStats stats_;
};

}  // namespace ag::faults

#endif  // AG_FAULTS_FAULT_INJECTOR_H
