#include "faults/fault_injector.h"

#include <algorithm>
#include <cassert>

namespace ag::faults {

FaultInjector::FaultInjector(sim::Simulator& sim, FaultPlan plan, FaultHooks hooks)
    : sim_{sim}, plan_{std::move(plan)}, hooks_{std::move(hooks)} {
  assert(hooks_.crash && hooks_.reboot && hooks_.leave && hooks_.join &&
         hooks_.partition_begin && hooks_.partition_heal);
  std::size_t max_node = 0;
  for (const CrashEvent& e : plan_.crashes) max_node = std::max(max_node, e.node + 1);
  for (const MembershipEvent& e : plan_.membership) {
    max_node = std::max(max_node, e.node + 1);
  }
  down_since_.resize(max_node, {sim::SimTime::zero(), false});
}

void FaultInjector::arm() {
  for (const CrashEvent& ev : plan_.crashes) {
    sim_.schedule_at(sim::SimTime::seconds(ev.at_s), [this, ev] { apply_crash(ev); },
                     sim::EventCategory::fault);
  }
  for (const PartitionEvent& ev : plan_.partitions) {
    sim_.schedule_at(sim::SimTime::seconds(ev.at_s), [this, ev] { apply_partition(ev); },
                     sim::EventCategory::fault);
    sim_.schedule_at(sim::SimTime::seconds(ev.at_s + ev.heal_after_s),
                     [this] { apply_heal(); }, sim::EventCategory::fault);
  }
  for (const MembershipEvent& ev : plan_.membership) {
    sim_.schedule_at(sim::SimTime::seconds(ev.at_s),
                     [this, ev] {
                       if (ev.join) {
                         ++stats_.joins;
                         hooks_.join(ev.node);
                       } else {
                         ++stats_.leaves;
                         hooks_.leave(ev.node);
                       }
                     },
                     sim::EventCategory::fault);
  }
}

void FaultInjector::apply_crash(const CrashEvent& ev) {
  if (node_down(ev.node)) return;  // defensive; validate() rejects overlaps
  down_since_[ev.node] = {sim_.now(), true};
  ++stats_.crashes;
  hooks_.crash(ev.node, ev.policy);
  if (ev.down_for_s > 0.0) {
    sim_.schedule_after(sim::Duration::seconds(ev.down_for_s),
                        [this, node = ev.node, policy = ev.policy] {
                          apply_reboot(node, policy);
                        },
                        sim::EventCategory::fault);
  }
}

void FaultInjector::apply_reboot(std::size_t node, RebootPolicy policy) {
  if (!node_down(node)) return;
  stats_.node_down_s += (sim_.now() - down_since_[node].first).to_seconds();
  down_since_[node].second = false;
  ++stats_.reboots;
  hooks_.reboot(node, policy);
}

void FaultInjector::apply_partition(const PartitionEvent& ev) {
  if (partition_active_) return;  // defensive; validate() rejects overlaps
  partition_active_ = true;
  partition_since_ = sim_.now();
  ++stats_.partitions;
  hooks_.partition_begin(ev);
}

void FaultInjector::apply_heal() {
  if (!partition_active_) return;
  stats_.partitioned_s += (sim_.now() - partition_since_).to_seconds();
  partition_active_ = false;
  ++stats_.heals;
  hooks_.partition_heal();
}

stats::FaultStats FaultInjector::stats() const {
  stats::FaultStats out = stats_;
  for (const auto& [since, down] : down_since_) {
    if (down) out.node_down_s += (sim_.now() - since).to_seconds();
  }
  if (partition_active_) out.partitioned_s += (sim_.now() - partition_since_).to_seconds();
  return out;
}

}  // namespace ag::faults
