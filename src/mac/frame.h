// Link-layer frame: a shared immutable packet plus MAC addressing, or a
// bare ACK. The packet rides as a shared_ptr so one router enqueue flows
// copy-free through the MAC queue, the channel's shared frame, and every
// receiver (copy-on-write happens only when a relay mutates ttl/headers).
#ifndef AG_MAC_FRAME_H
#define AG_MAC_FRAME_H

#include <cstdint>

#include "net/data_plane.h"
#include "net/packet.h"

namespace ag::mac {

enum class FrameKind : std::uint8_t { data, ack };

struct Frame {
  FrameKind kind{FrameKind::data};
  net::NodeId mac_src;
  net::NodeId mac_dst;       // broadcast() for link broadcasts
  std::uint16_t mac_seq{0};  // per-sender counter: ACK matching + rx dedup
  net::PacketPtr packet;     // meaningful only for kind == data

  [[nodiscard]] std::uint32_t wire_bytes() const {
    constexpr std::uint32_t kMacDataOverhead = 34;  // 802.11 hdr 24 + LLC 6 + FCS 4
    constexpr std::uint32_t kAckBytes = 14;
    return kind == FrameKind::ack ? kAckBytes : kMacDataOverhead + packet->wire_bytes();
  }
};

}  // namespace ag::mac

#endif  // AG_MAC_FRAME_H
