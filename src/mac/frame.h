// Link-layer frame: a packet plus MAC addressing, or a bare ACK.
#ifndef AG_MAC_FRAME_H
#define AG_MAC_FRAME_H

#include <cstdint>

#include "net/packet.h"

namespace ag::mac {

enum class FrameKind : std::uint8_t { data, ack };

struct Frame {
  FrameKind kind{FrameKind::data};
  net::NodeId mac_src;
  net::NodeId mac_dst;       // broadcast() for link broadcasts
  std::uint16_t mac_seq{0};  // per-sender counter: ACK matching + rx dedup
  net::Packet packet;        // meaningful only for kind == data

  [[nodiscard]] std::uint32_t wire_bytes() const {
    constexpr std::uint32_t kMacDataOverhead = 34;  // 802.11 hdr 24 + LLC 6 + FCS 4
    constexpr std::uint32_t kAckBytes = 14;
    return kind == FrameKind::ack ? kAckBytes : kMacDataOverhead + packet.wire_bytes();
  }
};

}  // namespace ag::mac

#endif  // AG_MAC_FRAME_H
