// IEEE 802.11 DSSS DCF timing constants (2 Mbps, the paper's MAC).
#ifndef AG_MAC_MAC_PARAMS_H
#define AG_MAC_MAC_PARAMS_H

#include <cstdint>

#include "sim/time.h"

namespace ag::mac {

struct MacParams {
  sim::Duration slot{sim::Duration::us(20)};
  sim::Duration sifs{sim::Duration::us(10)};
  sim::Duration difs{sim::Duration::us(50)};
  std::uint32_t cw_min{31};
  std::uint32_t cw_max{1023};
  std::uint32_t retry_limit{7};
  std::size_t queue_limit{50};  // interface queue, drop tail (ns-2 default)
};

}  // namespace ag::mac

#endif  // AG_MAC_MAC_PARAMS_H
