// CSMA/CA MAC in the style of the 802.11 DCF: physical carrier sense,
// DIFS deference, slotted binary-exponential backoff that freezes while
// the medium is busy, positive ACK with retransmission for unicast, and
// unacknowledged single-shot broadcast. RTS/CTS and the NAV are omitted
// (64-byte data frames sit below any reasonable RTS threshold; see
// DESIGN.md). Failed unicasts surface as link-break feedback to routing.
//
// The contention countdown is event-elided by default: DIFS deference and
// the remaining backoff slots fuse into ONE scheduled deadline, and a
// busy transition pauses analytically — whole slots elapsed since DIFS
// completion are credited in O(1), the partial slot in progress is
// forfeited, exactly as the per-slot tick machine would have done. The
// per-slot reference machine stays alive behind AG_BATCHED_BACKOFF=off
// (same pattern as AG_SPATIAL_INDEX / AG_DENSE_TABLES) and whole runs
// are bit-identical either way; see ARCHITECTURE.md "MAC contention".
#ifndef AG_MAC_CSMA_MAC_H
#define AG_MAC_CSMA_MAC_H

#include <cstdint>
#include <deque>
#include <utility>

#include "mac/frame.h"
#include "mac/mac_params.h"
#include "net/data_plane.h"
#include "net/node_table.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "sim/rng.h"
#include "sim/timer.h"

namespace ag::mac {

// True unless AG_BATCHED_BACKOFF=off|0|false is set in the environment —
// the process-wide escape hatch that swaps the analytic fused-deadline
// contention countdown back onto the per-slot reference machine. Both
// engines produce bit-identical runs (pinned by
// batched_backoff_equivalence_test); the hatch exists to bisect
// contention-engine bugs and to re-verify the equivalence on any
// scenario. Read at CsmaMac construction.
[[nodiscard]] bool batched_backoff_enabled();

// Implemented by the routing layer.
class MacListener {
 public:
  virtual ~MacListener() = default;
  virtual void on_packet_received(const net::Packet& packet, net::NodeId from) = 0;
  // Retry limit exhausted: the link to next_hop is considered broken.
  virtual void on_unicast_failed(const net::Packet& packet, net::NodeId next_hop) = 0;
};

// Promiscuous observation tap: every in-range data frame the radio
// decodes (including unicasts addressed to other nodes, before the
// destination filter and rx dedup) plus this MAC's own data
// transmissions. Pure observation — a sniffer cannot alter what the MAC
// delivers or sends. Null by default: the only cost to the hot path when
// unset is one predictable branch per data frame. The trust layer
// (faults::AdversaryRouter) is the one consumer.
class MacSniffer {
 public:
  virtual ~MacSniffer() = default;
  virtual void on_frame_overheard(const Frame& frame) = 0;
  virtual void on_frame_transmitted(const Frame& frame) = 0;
};

class CsmaMac final : public phy::RadioListener {
 public:
  CsmaMac(sim::Simulator& sim, phy::Radio& radio, const phy::Channel& channel,
          net::NodeId self, MacParams params, sim::Rng rng);

  void set_listener(MacListener* listener) { listener_ = listener; }
  void set_sniffer(MacSniffer* sniffer) { sniffer_ = sniffer; }

  // Queues a shared packet for `mac_dst` (a neighbor or broadcast()).
  // Returns false when the interface queue is full (packet dropped). The
  // same allocation flows through the queue, the frame, and the channel.
  bool send(net::NodeId mac_dst, net::PacketPtr packet);
  // Convenience for call sites holding a fresh packet by value: wraps it
  // in the thread-local pool.
  bool send(net::NodeId mac_dst, net::Packet packet) {
    return send(mac_dst, net::PacketPool::local().make(std::move(packet)));
  }

  // Crash support (FaultInjector): drops the interface queue and every
  // retransmission/backoff state, as a power-cycle would. A frame already
  // on the air finishes harmlessly.
  void power_cycle();

  [[nodiscard]] net::NodeId self() const { return self_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] sim::SimTime now() const { return sim_.now(); }

  struct Counters {
    std::uint64_t unicast_sent{0};
    std::uint64_t broadcast_sent{0};
    std::uint64_t acks_sent{0};
    // ACKs we owed but never radiated because our radio was mid-
    // transmission when the SIFS expired (the sender will retry).
    std::uint64_t acks_suppressed{0};
    std::uint64_t retries{0};
    std::uint64_t unicast_failed{0};
    std::uint64_t queue_drops{0};
    std::uint64_t delivered_up{0};
    std::uint64_t dup_frames_dropped{0};
    // Whole backoff slots consumed by the countdown (each decrement of
    // backoff_slots_, whether ticked one event at a time or credited
    // analytically in a batch). Engine-independent by construction —
    // the equivalence suite pins it across AG_BATCHED_BACKOFF modes.
    std::uint64_t backoff_slots_credited{0};
    // DIFS waits the fused deadline absorbed: countdowns that served a
    // DIFS remainder *and* backoff slots in one event, where the
    // per-slot reference would have executed a separate mac_difs event
    // at the anchor. Always zero in the reference engine; executed
    // mac_difs events + difs_events_elided is engine-independent.
    std::uint64_t difs_events_elided{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

  // RadioListener:
  void on_frame_received(const Frame& frame) override;
  void on_medium_busy() override;
  void on_medium_idle() override;
  void on_transmit_complete() override;

 private:
  enum class State : std::uint8_t {
    idle,          // queue empty
    contending,    // waiting for DIFS + backoff countdown
    tx_data,       // our data frame is on the air
    tx_ack,        // our ACK is on the air (contention paused)
    awaiting_ack,  // unicast sent, ACK timer running
  };

  struct Outgoing {
    net::NodeId dst;
    net::PacketPtr packet;
  };

  void begin_access();
  void resume_contention();
  void pause_contention();
  void on_difs_elapsed();
  void on_slot_elapsed();
  void on_countdown_elapsed();
  void start_transmission();
  void on_ack_timeout();
  void transmission_succeeded();
  void give_up_current();
  void finish_current_and_continue();
  void draw_backoff();
  void send_ack(net::NodeId to, std::uint16_t seq);

  sim::Simulator& sim_;
  phy::Radio& radio_;
  const phy::Channel& channel_;
  net::NodeId self_;
  MacParams params_;
  sim::Rng rng_;
  MacListener* listener_{nullptr};
  MacSniffer* sniffer_{nullptr};

  std::deque<Outgoing> queue_;
  State state_{State::idle};
  std::uint32_t cw_;
  std::uint32_t backoff_slots_{0};
  std::uint32_t retries_{0};
  std::uint16_t next_mac_seq_{0};
  bool difs_done_{false};
  const bool batched_;  // analytic fused countdown vs per-slot reference

  sim::Timer access_timer_;  // fused deadline, or DIFS + per-slot ticks
  sim::Timer ack_timer_;
  // Batched engine: the instant DIFS deference completes for the armed
  // countdown — backoff slots are counted from here. Valid only while
  // access_timer_ is pending in batched mode.
  sim::SimTime countdown_anchor_;
  // The DIFS remainder the armed fused deadline covers in addition to
  // backoff slots (zero when DIFS was already served — the reference
  // engine would run a separate difs event at the anchor otherwise).
  // Valid under the same condition as the anchor; drives the
  // difs_events_elided accounting, including the exact-anchor tie rule.
  sim::Duration fused_difs_remaining_;
  // Upper bound on any in-range sender's quantized propagation delay
  // (from the channel's range and propagation speed), used by the
  // exact-anchor tie rule in pause_contention.
  sim::Duration max_propagation_;

  // Last mac_seq accepted per neighbor: drops MAC-level retransmission
  // duplicates (data received, ACK lost, sender retried).
  net::NodeTable<std::uint16_t> last_rx_seq_;

  Counters counters_;
};

}  // namespace ag::mac

#endif  // AG_MAC_CSMA_MAC_H
