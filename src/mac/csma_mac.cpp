#include "mac/csma_mac.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/env.h"

namespace ag::mac {

bool batched_backoff_enabled() { return !sim::env_flag_off("AG_BATCHED_BACKOFF"); }

CsmaMac::CsmaMac(sim::Simulator& sim, phy::Radio& radio, const phy::Channel& channel,
                 net::NodeId self, MacParams params, sim::Rng rng)
    : sim_{sim},
      radio_{radio},
      channel_{channel},
      self_{self},
      params_{params},
      rng_{rng},
      cw_{params.cw_min},
      batched_{batched_backoff_enabled()},
      // Nominal category only: every restart() below passes its own
      // (mac_slot or mac_difs depending on the phase being armed).
      access_timer_{sim,
                    [this] {
                      if (batched_) {
                        on_countdown_elapsed();
                      } else if (difs_done_) {
                        on_slot_elapsed();
                      } else {
                        on_difs_elapsed();
                      }
                    },
                    sim::EventCategory::mac_slot},
      ack_timer_{sim, [this] { on_ack_timeout(); }, sim::EventCategory::mac_ack_timeout} {
  // Mirror of the channel's per-receiver delay quantization
  // (floor(d/c) + 1 us, d <= transmission range).
  max_propagation_ = sim::Duration::us(
      static_cast<std::int64_t>(channel.params().transmission_range_m /
                                channel.params().propagation_mps * 1e6) +
      1);
  radio_.set_listener(this);
}

bool CsmaMac::send(net::NodeId mac_dst, net::PacketPtr packet) {
  if (queue_.size() >= params_.queue_limit) {
    ++counters_.queue_drops;
    return false;
  }
  queue_.push_back(Outgoing{mac_dst, std::move(packet)});
  if (state_ == State::idle) begin_access();
  return true;
}

void CsmaMac::power_cycle() {
  access_timer_.cancel();
  ack_timer_.cancel();
  queue_.clear();
  last_rx_seq_.clear();
  retries_ = 0;
  cw_ = params_.cw_min;
  backoff_slots_ = 0;
  difs_done_ = false;
  // A frame already on the air completes through the tx_ack path of
  // on_transmit_complete, which touches no queue state; everything else
  // returns straight to idle.
  state_ = radio_.transmitting() ? State::tx_ack : State::idle;
}

void CsmaMac::begin_access() {
  assert(!queue_.empty());
  state_ = State::contending;
  retries_ = 0;
  cw_ = params_.cw_min;
  // DCF rule: transmit after DIFS only if the medium was already idle when
  // the frame arrived; otherwise draw a random backoff. Without this,
  // every node that heard the same broadcast would retransmit in the same
  // slot and collide (the classic synchronized-forwarders storm).
  if (radio_.medium_busy() || radio_.idle_for() < params_.difs) {
    draw_backoff();
  } else {
    backoff_slots_ = 0;
    difs_done_ = false;
  }
  resume_contention();
}

void CsmaMac::resume_contention() {
  if (radio_.medium_busy()) return;  // on_medium_idle will call us again
  // Credit idle time already elapsed toward the DIFS wait.
  const sim::Duration already_idle = radio_.idle_for();
  const bool difs_served = already_idle >= params_.difs;
  if (batched_) {
    // Analytic countdown: the DIFS remainder and every pending backoff
    // slot fuse into one deadline. A busy transition before it fires
    // pauses by crediting whole elapsed slots (pause_contention); the
    // deadline firing means the medium stayed idle throughout, so the
    // whole countdown completed.
    difs_done_ = difs_served;
    if (difs_served && backoff_slots_ == 0) {
      start_transmission();
      return;
    }
    const sim::Duration difs_remaining =
        difs_served ? sim::Duration::zero() : params_.difs - already_idle;
    countdown_anchor_ = sim_.now() + difs_remaining;
    fused_difs_remaining_ =
        backoff_slots_ > 0 ? difs_remaining : sim::Duration::zero();
    access_timer_.restart(difs_remaining + params_.slot * backoff_slots_,
                          backoff_slots_ > 0 ? sim::EventCategory::mac_slot
                                             : sim::EventCategory::mac_difs);
    return;
  }
  if (difs_served) {
    difs_done_ = true;
    if (backoff_slots_ == 0) {
      start_transmission();
    } else {
      access_timer_.restart(params_.slot, sim::EventCategory::mac_slot);
    }
  } else {
    difs_done_ = false;
    access_timer_.restart(params_.difs - already_idle, sim::EventCategory::mac_difs);
  }
}

void CsmaMac::pause_contention() {
  if (batched_ && access_timer_.pending() && backoff_slots_ > 0) {
    // Credit every whole slot completed since DIFS deference finished and
    // forfeit the partial slot in progress — exactly the decrements the
    // per-slot tick chain would have applied by now. (A tick firing in
    // the same microsecond as the busy transition fires first — it was
    // scheduled at least a slot earlier, FIFO order — so an exact slot
    // boundary counts as completed; integer floor gives the same answer.)
    const sim::Duration since_anchor = sim_.now() - countdown_anchor_;
    if (!fused_difs_remaining_.is_zero() &&
        (since_anchor > sim::Duration::zero() ||
         (since_anchor == sim::Duration::zero() &&
          fused_difs_remaining_ > max_propagation_))) {
      // The countdown made it past the anchor, so the reference engine's
      // separate difs event fired there: strictly past is unambiguous,
      // and at the exact anchor the difs event was scheduled a full DIFS
      // remainder earlier while the pausing arrival was scheduled at
      // most one propagation delay earlier — FIFO order lets the difs
      // event win whenever the remainder exceeds that bound. Shorter
      // remainders could tie with the arrival's schedule instant, so
      // those coincidences are not counted.
      ++counters_.difs_events_elided;
    }
    if (since_anchor > sim::Duration::zero()) {
      const std::int64_t whole = since_anchor.count_us() / params_.slot.count_us();
      const auto credit = static_cast<std::uint32_t>(
          std::min<std::int64_t>(whole, backoff_slots_));
      backoff_slots_ -= credit;
      counters_.backoff_slots_credited += credit;
    }
  }
  access_timer_.cancel();
  difs_done_ = false;
}

void CsmaMac::on_difs_elapsed() {
  difs_done_ = true;
  if (backoff_slots_ == 0) {
    start_transmission();
  } else {
    access_timer_.restart(params_.slot, sim::EventCategory::mac_slot);
  }
}

void CsmaMac::on_slot_elapsed() {
  assert(backoff_slots_ > 0);
  --backoff_slots_;
  ++counters_.backoff_slots_credited;
  if (backoff_slots_ == 0) {
    start_transmission();
  } else {
    access_timer_.restart(params_.slot, sim::EventCategory::mac_slot);
  }
}

void CsmaMac::on_countdown_elapsed() {
  // The fused deadline survived to its expiry: no busy transition paused
  // us (a pause cancels the timer), so DIFS and every slot completed.
  assert(state_ == State::contending);
  difs_done_ = true;
  if (!fused_difs_remaining_.is_zero()) ++counters_.difs_events_elided;
  counters_.backoff_slots_credited += backoff_slots_;
  backoff_slots_ = 0;
  start_transmission();
}

void CsmaMac::start_transmission() {
  assert(state_ == State::contending);
  assert(!radio_.transmitting());
  const Outgoing& out = queue_.front();
  const Frame frame{FrameKind::data, self_, out.dst, next_mac_seq_, out.packet};
  state_ = State::tx_data;
  if (out.dst.is_broadcast()) {
    ++counters_.broadcast_sent;
  } else {
    ++counters_.unicast_sent;
    if (retries_ > 0) ++counters_.retries;
  }
  if (sniffer_ != nullptr) sniffer_->on_frame_transmitted(frame);
  radio_.transmit(frame);
}

void CsmaMac::on_transmit_complete() {
  if (state_ == State::tx_ack) {
    // ACK finished; resume whatever we were doing. on_medium_idle triggers
    // resume_contention when the air clears.
    state_ = queue_.empty() ? State::idle : State::contending;
    if (state_ == State::contending) resume_contention();
    return;
  }
  if (state_ != State::tx_data) return;
  const Outgoing& out = queue_.front();
  if (out.dst.is_broadcast()) {
    transmission_succeeded();
    return;
  }
  // Unicast: wait for the ACK. Timeout covers SIFS + ACK airtime + slack.
  state_ = State::awaiting_ack;
  const Frame ack{FrameKind::ack, out.dst, self_, 0, {}};
  const sim::Duration timeout =
      params_.sifs + channel_.airtime_of(ack) + params_.slot * 3;
  ack_timer_.restart(timeout);
}

void CsmaMac::on_ack_timeout() {
  assert(state_ == State::awaiting_ack);
  ++retries_;
  if (retries_ > params_.retry_limit) {
    ++counters_.unicast_failed;
    give_up_current();
    return;
  }
  cw_ = std::min(cw_ * 2 + 1, params_.cw_max);
  draw_backoff();
  state_ = State::contending;
  resume_contention();
}

void CsmaMac::transmission_succeeded() {
  ++next_mac_seq_;
  finish_current_and_continue();
}

void CsmaMac::give_up_current() {
  Outgoing out = std::move(queue_.front());
  ++next_mac_seq_;
  queue_.pop_front();
  state_ = queue_.empty() ? State::idle : State::contending;
  if (listener_ != nullptr) listener_->on_unicast_failed(*out.packet, out.dst);
  if (state_ == State::contending) {
    retries_ = 0;
    cw_ = params_.cw_min;
    draw_backoff();
    resume_contention();
  }
}

void CsmaMac::finish_current_and_continue() {
  queue_.pop_front();
  if (queue_.empty()) {
    state_ = State::idle;
    return;
  }
  state_ = State::contending;
  retries_ = 0;
  cw_ = params_.cw_min;
  // Post-transmission backoff decorrelates back-to-back senders.
  draw_backoff();
  resume_contention();
}

void CsmaMac::draw_backoff() {
  backoff_slots_ = static_cast<std::uint32_t>(rng_.uniform_int(0, cw_));
  difs_done_ = false;
}

void CsmaMac::on_medium_busy() {
  if (state_ == State::contending) pause_contention();
}

void CsmaMac::on_medium_idle() {
  if (state_ == State::contending) resume_contention();
}

void CsmaMac::on_frame_received(const Frame& frame) {
  if (frame.kind == FrameKind::ack) {
    if (state_ == State::awaiting_ack && frame.mac_dst == self_ &&
        frame.mac_src == queue_.front().dst && frame.mac_seq == next_mac_seq_) {
      ack_timer_.cancel();
      transmission_succeeded();
    }
    return;
  }
  // Data frame. The sniffer tap fires before the destination filter and
  // rx dedup: promiscuous observation sees every decodable transmission,
  // exactly what a watchdog-style trust monitor needs.
  if (sniffer_ != nullptr) sniffer_->on_frame_overheard(frame);
  if (frame.mac_dst == self_) {
    send_ack(frame.mac_src, frame.mac_seq);
    auto [seq, fresh] = last_rx_seq_.try_emplace(frame.mac_src, frame.mac_seq);
    if (!fresh) {
      if (*seq == frame.mac_seq) {
        ++counters_.dup_frames_dropped;  // retransmission we already accepted
        return;
      }
      *seq = frame.mac_seq;
    }
  } else if (!frame.mac_dst.is_broadcast()) {
    return;  // unicast for somebody else
  }
  ++counters_.delivered_up;
  if (listener_ != nullptr) listener_->on_packet_received(*frame.packet, frame.mac_src);
}

void CsmaMac::send_ack(net::NodeId to, std::uint16_t seq) {
  sim_.schedule_after(
      params_.sifs,
      [this, to, seq] {
        if (radio_.transmitting()) {
          // Rare overlap: our own frame went on the air before the SIFS
          // expired. The ACK is silently lost and the sender will retry —
          // counted so the loss is visible instead of indistinguishable
          // from an ACK collision.
          ++counters_.acks_suppressed;
          return;
        }
        // While awaiting an ACK ourselves, transmit without disturbing that
        // state machine (on_transmit_complete ignores the completion).
        if (state_ == State::contending) {
          pause_contention();
          state_ = State::tx_ack;
        } else if (state_ == State::idle) {
          state_ = State::tx_ack;
        }
        ++counters_.acks_sent;
        radio_.transmit(Frame{FrameKind::ack, self_, to, seq, {}});
      },
      // Accounted under `other` since PR 5 introduced the event mix;
      // kept there explicitly so the mix stays comparable across PRs.
      sim::EventCategory::other);
}

}  // namespace ag::mac
