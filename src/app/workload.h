// Traffic workload description (paper section 5.1): one member sources
// 64-byte packets every 200 ms from t=120 s to t=560 s — 2201 packets.
#ifndef AG_APP_WORKLOAD_H
#define AG_APP_WORKLOAD_H

#include <cstdint>

#include "sim/time.h"

namespace ag::app {

struct Workload {
  sim::SimTime start{sim::SimTime::seconds(120.0)};
  sim::SimTime end{sim::SimTime::seconds(560.0)};
  sim::Duration interval{sim::Duration::ms(200)};
  std::uint16_t payload_bytes{64};

  // Total packets the source will emit (inclusive endpoints).
  [[nodiscard]] std::uint32_t packet_count() const {
    if (end < start || interval.count_us() <= 0) return 0;
    return static_cast<std::uint32_t>((end - start).count_us() / interval.count_us()) + 1;
  }
};

}  // namespace ag::app

#endif  // AG_APP_WORKLOAD_H
