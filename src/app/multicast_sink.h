// Receiving application: counts unique deliveries (the paper's headline
// metric is "# pkts recvd" per member) and tracks delivery latency.
#ifndef AG_APP_MULTICAST_SINK_H
#define AG_APP_MULTICAST_SINK_H

#include <cstdint>

#include "net/data.h"
#include "sim/simulator.h"

namespace ag::app {

class MulticastSink {
 public:
  explicit MulticastSink(sim::Simulator& sim) : sim_{sim} {}

  // Wire as the GossipAgent's deliver callback (already deduplicated).
  void on_deliver(const net::MulticastData& data, bool via_gossip) {
    ++received_;
    if (via_gossip) ++via_gossip_;
    const double latency = (sim_.now() - data.sent_at).to_seconds();
    latency_sum_s_ += latency;
    if (latency > latency_max_s_) latency_max_s_ = latency;
  }

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t via_gossip() const { return via_gossip_; }
  [[nodiscard]] double mean_latency_s() const {
    return received_ == 0 ? 0.0 : latency_sum_s_ / static_cast<double>(received_);
  }
  [[nodiscard]] double max_latency_s() const { return latency_max_s_; }

 private:
  sim::Simulator& sim_;
  std::uint64_t received_{0};
  std::uint64_t via_gossip_{0};
  double latency_sum_s_{0.0};
  double latency_max_s_{0.0};
};

}  // namespace ag::app

#endif  // AG_APP_MULTICAST_SINK_H
