// Receiving application: counts unique deliveries (the paper's headline
// metric is "# pkts recvd" per member) and tracks delivery latency.
// Under dynamic membership (fault/churn runs) the sink also keeps its
// subscription intervals and counts a delivery only when the application
// is subscribed now AND was subscribed when the packet was sourced — a
// late gossip recovery of a packet from before a rejoin is not a success.
#ifndef AG_APP_MULTICAST_SINK_H
#define AG_APP_MULTICAST_SINK_H

#include <cstdint>
#include <vector>

#include "net/data.h"
#include "net/dense_map.h"
#include "session/session_manager.h"
#include "sim/simulator.h"

namespace ag::app {

class MulticastSink {
 public:
  explicit MulticastSink(sim::Simulator& sim) : sim_{sim} {}

  // [begin, end); end == SimTime::max() while the subscription is open.
  struct Interval {
    sim::SimTime begin;
    sim::SimTime end;
  };

  // Switches interval tracking on (first call) and records the boundary.
  // A sink never toggled counts every delivery, exactly as the paper's
  // static-membership experiments do.
  void set_subscribed(bool on) {
    const bool first = !tracking_;
    tracking_ = true;
    if (!first && on == subscribed_) return;
    subscribed_ = on;
    if (on) {
      intervals_.push_back({sim_.now(), sim::SimTime::max()});
    } else if (!intervals_.empty() && intervals_.back().end == sim::SimTime::max()) {
      intervals_.back().end = sim_.now();
    }
  }

  // True when the member was subscribed at `t` (always true untracked).
  [[nodiscard]] bool subscribed_at(sim::SimTime t) const {
    if (!tracking_) return true;
    for (const Interval& iv : intervals_) {
      if (t >= iv.begin && t < iv.end) return true;
    }
    return false;
  }

  // Wire as the GossipAgent's deliver callback (already deduplicated —
  // except across a leave/rejoin or crash wipe, which clears the gossip
  // layer's dedup tables; a tracking sink therefore keeps its own).
  void on_deliver(const net::MulticastData& data, bool via_gossip) {
    if (tracking_) {
      if (!subscribed_ || !subscribed_at(data.sent_at)) {
        ++out_of_subscription_;
        return;
      }
      if (!seen_.insert(net::msg_key(net::MsgId{data.origin, data.seq}))) {
        return;  // re-delivered after a state wipe; already credited
      }
    }
    ++received_;
    if (via_gossip) ++via_gossip_;
    const double latency = (sim_.now() - data.sent_at).to_seconds();
    latency_sum_s_ += latency;
    if (latency > latency_max_s_) latency_max_s_ = latency;
    // Fan the node-level delivery out to the hosted user sessions (the
    // "users served" metric). Fires only for uniquely counted deliveries,
    // so session credit inherits the sink's MsgId dedup.
    if (sessions_ != nullptr) sessions_->on_unique_delivery(data, sim_.now());
  }

  // Attaches the node's user-session multiplexer (nullptr = none hosted).
  void attach_sessions(session::SessionManager* sessions) { sessions_ = sessions; }

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t via_gossip() const { return via_gossip_; }
  // Deliveries refused because the member was not subscribed (tracking only).
  [[nodiscard]] std::uint64_t out_of_subscription() const { return out_of_subscription_; }
  [[nodiscard]] bool tracking() const { return tracking_; }
  [[nodiscard]] bool subscribed() const { return !tracking_ || subscribed_; }
  // An untracked sink counts as ever-subscribed (legacy accounting).
  [[nodiscard]] bool ever_subscribed() const { return !tracking_ || !intervals_.empty(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const { return intervals_; }
  [[nodiscard]] double mean_latency_s() const {
    return received_ == 0 ? 0.0 : latency_sum_s_ / static_cast<double>(received_);
  }
  [[nodiscard]] double max_latency_s() const { return latency_max_s_; }

 private:
  sim::Simulator& sim_;
  session::SessionManager* sessions_{nullptr};
  bool tracking_{false};
  bool subscribed_{false};
  std::vector<Interval> intervals_;
  net::DenseSet seen_;  // populated only while tracking
  std::uint64_t received_{0};
  std::uint64_t via_gossip_{0};
  std::uint64_t out_of_subscription_{0};
  double latency_sum_s_{0.0};
  double latency_max_s_{0.0};
};

}  // namespace ag::app

#endif  // AG_APP_MULTICAST_SINK_H
