// Constant-bit-rate multicast source application.
#ifndef AG_APP_MULTICAST_SOURCE_H
#define AG_APP_MULTICAST_SOURCE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "app/workload.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace ag::app {

class MulticastSource {
 public:
  // `send` multicasts one packet of the given payload size (wired to
  // MaodvRouter::send_multicast or FloodRouter::send_multicast).
  using SendFn = std::function<void(std::uint16_t payload_bytes)>;

  MulticastSource(sim::Simulator& sim, Workload workload, SendFn send)
      : sim_{sim},
        workload_{workload},
        send_{std::move(send)},
        // Application traffic stays under `other` (PR 5's category split
        // covers kernel/MAC/phy/router/fault events only).
        timer_{sim, [this] { tick(); }, sim::EventCategory::other} {}

  // Schedules the packet train; call once before the run.
  void start() {
    if (workload_.packet_count() == 0) return;
    timer_.restart(workload_.start - sim_.now());
  }

  [[nodiscard]] std::uint32_t sent() const { return sent_; }
  // When each packet left the application — the basis for per-member
  // eligibility accounting under dynamic membership.
  [[nodiscard]] const std::vector<sim::SimTime>& send_times() const { return send_times_; }

 private:
  void tick() {
    send_times_.push_back(sim_.now());
    send_(workload_.payload_bytes);
    ++sent_;
    if (sim_.now() + workload_.interval <= workload_.end) {
      timer_.restart(workload_.interval);
    }
  }

  sim::Simulator& sim_;
  Workload workload_;
  SendFn send_;
  sim::Timer timer_;
  std::uint32_t sent_{0};
  std::vector<sim::SimTime> send_times_;
};

}  // namespace ag::app

#endif  // AG_APP_MULTICAST_SOURCE_H
