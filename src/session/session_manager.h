// Per-node session multiplexer: scores each unique node-level delivery
// against every hosted user session in closed form — which sessions had
// subscribed by the packet's source time, and which were awake (or about
// to wake) when the node received it. Purely analytic: the manager
// schedules no events and draws randomness only from its own named rng
// stream at construction, so enabling sessions never perturbs mobility,
// MAC, gossip, or fault draws, and a run with sessions enabled is
// packet-for-packet identical to one without.
#ifndef AG_SESSION_SESSION_MANAGER_H
#define AG_SESSION_SESSION_MANAGER_H

#include <cstdint>
#include <vector>

#include "net/data.h"
#include "session/session_params.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ag::session {

// Network-wide "users served" accounting (flows through NetworkTotals
// into the BENCH_*.json files — emitted only when the layer is enabled).
struct SessionTotals {
  std::uint64_t sessions{0};      // logical user sessions hosted
  std::uint64_t users_served{0};  // (session, packet) deliveries credited
  std::uint64_t user_eligible{0}; // (session, packet) pairs in the denominator

  [[nodiscard]] double served_ratio() const {
    return user_eligible == 0
               ? 0.0
               : static_cast<double>(users_served) / static_cast<double>(user_eligible);
  }
};

class SessionManager {
 public:
  // `rng` must be a dedicated named stream (e.g. "session", node_index).
  SessionManager(const SessionParams& params, sim::Rng rng);

  // Called by the sink for each unique, in-subscription delivery: credits
  // every session that (a) had subscribed by the packet's source time and
  // (b) is awake at `now` or wakes within wake_ttl_s.
  void on_unique_delivery(const net::MulticastData& data, sim::SimTime now);

  // Sessions whose subscribe time is <= `ts` — the per-packet eligibility
  // denominator (starts are kept sorted; O(log sessions)).
  [[nodiscard]] std::uint64_t eligible_at(sim::SimTime ts) const;

  [[nodiscard]] std::uint64_t users_served() const { return served_; }
  [[nodiscard]] std::uint32_t session_count() const {
    return static_cast<std::uint32_t>(starts_.size());
  }

  // Introspection for tests: whether session `s` is awake at `t`.
  [[nodiscard]] bool awake(std::size_t s, sim::SimTime t) const;
  // Seconds until session `s` next wakes at `t` (0 when awake).
  [[nodiscard]] double next_wake_in_s(std::size_t s, sim::SimTime t) const;

 private:
  SessionParams params_;
  std::vector<double> starts_;  // subscribe times (s), sorted ascending
  std::vector<double> phases_;  // duty-cycle phase offsets (s), per session
  std::uint64_t served_{0};
};

}  // namespace ag::session

#endif  // AG_SESSION_SESSION_MANAGER_H
