// Configuration of the user-session layer: many logical users multiplexed
// onto each member node, each with its own subscribe start and a periodic
// sleep/duty-cycle schedule. Disabled by default (per_node == 0) — the
// layer is purely analytic (no simulator events), so enabling it changes
// accounting only, never protocol behaviour.
#ifndef AG_SESSION_SESSION_PARAMS_H
#define AG_SESSION_SESSION_PARAMS_H

#include <cstdint>

namespace ag::session {

struct SessionParams {
  // Logical users hosted per member node; 0 disables the layer.
  std::uint32_t per_node{0};

  // Sleep schedule: each session is awake for `duty * period_s` out of
  // every `period_s`, at a per-session phase offset. duty >= 1 means
  // always-on users.
  double period_s{60.0};
  double duty{1.0};

  // A sleeping session still counts as served when its next wake-up is at
  // most this far after the node-level delivery (the node holds the
  // payload for the user — the custody idea applied one layer up).
  double wake_ttl_s{30.0};

  // Session subscribe times are staggered uniformly over [0, spread): a
  // session is only eligible for packets sourced after it subscribed.
  double subscribe_spread_s{0.0};

  [[nodiscard]] bool enabled() const { return per_node > 0; }
};

}  // namespace ag::session

#endif  // AG_SESSION_SESSION_PARAMS_H
