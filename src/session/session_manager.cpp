#include "session/session_manager.h"

#include <algorithm>
#include <cmath>

namespace ag::session {

SessionManager::SessionManager(const SessionParams& params, sim::Rng rng)
    : params_{params} {
  starts_.reserve(params.per_node);
  phases_.reserve(params.per_node);
  const double spread = params.subscribe_spread_s > 0.0 ? params.subscribe_spread_s : 0.0;
  const double period = params.period_s > 0.0 ? params.period_s : 1.0;
  for (std::uint32_t s = 0; s < params.per_node; ++s) {
    starts_.push_back(spread > 0.0 ? rng.uniform(0.0, spread) : 0.0);
    phases_.push_back(rng.uniform(0.0, period));
  }
  // Sessions are exchangeable (start and phase drawn independently), so
  // sorting the starts only relabels them — and makes eligible_at a
  // binary search instead of a linear scan per sourced packet.
  std::sort(starts_.begin(), starts_.end());
}

bool SessionManager::awake(std::size_t s, sim::SimTime t) const {
  if (params_.duty >= 1.0) return true;
  if (params_.duty <= 0.0) return false;
  const double period = params_.period_s > 0.0 ? params_.period_s : 1.0;
  const double offset = std::fmod(t.to_seconds() + phases_[s], period);
  return offset < params_.duty * period;
}

double SessionManager::next_wake_in_s(std::size_t s, sim::SimTime t) const {
  if (awake(s, t)) return 0.0;
  const double period = params_.period_s > 0.0 ? params_.period_s : 1.0;
  const double offset = std::fmod(t.to_seconds() + phases_[s], period);
  return period - offset;
}

std::uint64_t SessionManager::eligible_at(sim::SimTime ts) const {
  const double t = ts.to_seconds();
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), t);
  return static_cast<std::uint64_t>(it - starts_.begin());
}

void SessionManager::on_unique_delivery(const net::MulticastData& data,
                                        sim::SimTime now) {
  const double sent = data.sent_at.to_seconds();
  for (std::size_t s = 0; s < starts_.size(); ++s) {
    if (starts_[s] > sent) continue;  // subscribed after the packet left
    if (awake(s, now) || next_wake_in_s(s, now) <= params_.wake_ttl_s) {
      ++served_;
    }
  }
}

}  // namespace ag::session
