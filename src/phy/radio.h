// Half-duplex radio: tracks its own transmission, every reception in
// progress, and carrier state. Two receptions overlapping in time corrupt
// each other (unit-disk interference, no capture); a node transmitting is
// deaf to incoming frames.
//
// This file is the per-receiver REFERENCE engine (one finish_reception
// event per reception) and the facade over the batched engine: when the
// channel runs phy::BatchedPhy (AG_BATCHED_PHY, PhyParams::
// use_batched_phy), radio state lives in the engine's flat per-node
// arrays and every method forwards — same listener callbacks in the
// same order, same counters, fewer events. See phy/batched_phy.h.
#ifndef AG_PHY_RADIO_H
#define AG_PHY_RADIO_H

#include <cstdint>
#include <memory>
#include <vector>

#include "mac/frame.h"
#include "sim/simulator.h"

namespace ag::phy {

class BatchedPhy;
class Channel;

// Implemented by the MAC layer.
class RadioListener {
 public:
  virtual ~RadioListener() = default;
  virtual void on_frame_received(const mac::Frame& frame) = 0;
  virtual void on_medium_busy() = 0;
  virtual void on_medium_idle() = 0;
  virtual void on_transmit_complete() = 0;
};

class Radio {
 public:
  Radio(sim::Simulator& sim, Channel& channel, std::size_t node_index);

  Radio(const Radio&) = delete;
  Radio& operator=(const Radio&) = delete;

  void set_listener(RadioListener* listener);
  [[nodiscard]] std::size_t node_index() const { return node_index_; }

  [[nodiscard]] bool transmitting() const;
  // True while transmitting or while any energy (even a corrupted frame)
  // is on the air at this node — physical carrier sense.
  [[nodiscard]] bool medium_busy() const;
  // How long the medium has been continuously idle (zero when busy).
  [[nodiscard]] sim::Duration idle_for() const;

  // Starts transmitting; any reception in progress is destroyed (half
  // duplex). Precondition: not already transmitting.
  void transmit(const mac::Frame& frame);

  // Channel-driven: a frame's first bit arrives; last bit at `end`. The
  // frame is the channel's shared immutable copy — every receiver of one
  // transmission holds the same allocation (zero-copy delivery).
  void begin_reception(std::shared_ptr<const mac::Frame> frame, sim::SimTime end);

  // Crash support: destroys every reception in progress (the radio lost
  // power mid-frame). Not counted as a collision — nothing interfered.
  void abort_receptions();

  // Counters for the stats module.
  struct Counters {
    std::uint64_t frames_sent{0};
    std::uint64_t frames_received{0};
    std::uint64_t frames_corrupted{0};  // lost to collision
    std::uint64_t frames_missed_while_tx{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  friend class BatchedPhy;  // engine mode: counters_ + listener_ access

  struct ActiveRx {
    std::shared_ptr<const mac::Frame> frame;
    sim::SimTime end;
    bool corrupt{false};
  };

  void finish_reception();
  void after_state_change(bool was_busy);

  sim::Simulator& sim_;
  Channel& channel_;
  std::size_t node_index_;
  RadioListener* listener_{nullptr};
  BatchedPhy* engine_;  // nullptr in the reference engine

  // Reference-engine state; untouched while engine_ is active.
  bool transmitting_{false};
  std::vector<ActiveRx> active_rx_;
  sim::SimTime idle_since_;  // valid when !medium_busy()
  Counters counters_;
};

}  // namespace ag::phy

#endif  // AG_PHY_RADIO_H
