#include "phy/radio.h"

#include <algorithm>
#include <cassert>

#include "phy/batched_phy.h"
#include "phy/channel.h"

namespace ag::phy {

Radio::Radio(sim::Simulator& sim, Channel& channel, std::size_t node_index)
    : sim_{sim},
      channel_{channel},
      node_index_{node_index},
      engine_{channel.batched_engine()} {}

void Radio::set_listener(RadioListener* listener) {
  listener_ = listener;
  // Keep the engine's flat listener table in sync: the hot busy/idle
  // notification path reads it instead of chasing Radio pointers.
  if (engine_ != nullptr) engine_->set_listener(node_index_, listener);
}

bool Radio::transmitting() const {
  if (engine_ != nullptr) return engine_->transmitting(node_index_);
  return transmitting_;
}

bool Radio::medium_busy() const {
  if (engine_ != nullptr) return engine_->medium_busy(node_index_);
  return transmitting_ || !active_rx_.empty();
}

sim::Duration Radio::idle_for() const {
  if (engine_ != nullptr) return engine_->idle_for(node_index_);
  if (medium_busy()) return sim::Duration::zero();
  return sim_.now() - idle_since_;
}

void Radio::abort_receptions() {
  if (engine_ != nullptr) {
    engine_->abort_receptions(node_index_);
    return;
  }
  for (ActiveRx& rx : active_rx_) rx.corrupt = true;
}

void Radio::transmit(const mac::Frame& frame) {
  if (engine_ != nullptr) {
    engine_->transmit(node_index_, frame);
    return;
  }
  assert(!transmitting_ && "MAC must serialize transmissions");
  const bool was_busy = medium_busy();
  transmitting_ = true;
  // Half duplex: anything being received is destroyed.
  for (ActiveRx& rx : active_rx_) {
    if (!rx.corrupt) {
      rx.corrupt = true;
      ++counters_.frames_missed_while_tx;
    }
  }
  ++counters_.frames_sent;
  channel_.transmit(node_index_, frame);
  sim_.schedule_after(
      channel_.airtime_of(frame),
      [this] {
        transmitting_ = false;
        after_state_change(/*was_busy=*/true);
        if (listener_ != nullptr) listener_->on_transmit_complete();
      },
      sim::EventCategory::phy_delivery);
  after_state_change(was_busy);
}

void Radio::begin_reception(std::shared_ptr<const mac::Frame> frame, sim::SimTime end) {
  if (engine_ != nullptr) {
    engine_->begin_reception(node_index_, std::move(frame), end);
    return;
  }
  const bool was_busy = medium_busy();
  ActiveRx rx{std::move(frame), end, /*corrupt=*/false};
  if (transmitting_) {
    rx.corrupt = true;
    ++counters_.frames_missed_while_tx;
  }
  if (!active_rx_.empty()) {
    // Collision: the new frame and every overlapping one are lost.
    for (ActiveRx& other : active_rx_) {
      if (!other.corrupt) {
        other.corrupt = true;
        ++counters_.frames_corrupted;
      }
    }
    if (!rx.corrupt) {
      rx.corrupt = true;
      ++counters_.frames_corrupted;
    }
  }
  active_rx_.push_back(std::move(rx));
  sim_.schedule_at(end, [this] { finish_reception(); },
                   sim::EventCategory::phy_delivery);
  after_state_change(was_busy);
}

void Radio::finish_reception() {
  // Receptions complete in arrival order only if airtimes are equal, so
  // find the entry whose end time is now.
  auto it = std::find_if(active_rx_.begin(), active_rx_.end(),
                         [&](const ActiveRx& rx) { return rx.end <= sim_.now(); });
  assert(it != active_rx_.end());
  const bool deliver = !it->corrupt;
  const std::shared_ptr<const mac::Frame> frame = std::move(it->frame);
  active_rx_.erase(it);
  after_state_change(/*was_busy=*/true);
  if (deliver) {
    ++counters_.frames_received;
    if (listener_ != nullptr) listener_->on_frame_received(*frame);
  }
}

void Radio::after_state_change(bool was_busy) {
  const bool busy = medium_busy();
  if (!busy) idle_since_ = sim_.now();
  if (listener_ == nullptr) return;
  if (busy && !was_busy) listener_->on_medium_busy();
  if (!busy && was_busy) listener_->on_medium_idle();
}

}  // namespace ag::phy
