// Physical-layer parameters (paper section 5.1: 2 Mbps radio, unit-disk
// transmission range varied per experiment).
#ifndef AG_PHY_PHY_PARAMS_H
#define AG_PHY_PHY_PARAMS_H

namespace ag::phy {

struct PhyParams {
  double transmission_range_m{75.0};
  double bitrate_bps{2e6};
  // PLCP preamble + header at 1 Mbps, 802.11 DSSS long preamble.
  double phy_overhead_us{192.0};
  double propagation_mps{3e8};
  // Receiver lookup via the grid spatial index (see phy/spatial_index.h).
  // Off falls back to the brute-force O(n) scan — delivery decisions are
  // bit-identical either way; the flag exists so the equivalence is
  // testable forever. The AG_SPATIAL_INDEX=off environment escape hatch
  // overrides this at Channel construction.
  bool use_spatial_index{true};
  // Batched phy delivery engine (see phy/batched_phy.h): one completion
  // event per frame plus analytic elision of doomed receptions. Off
  // falls back to the per-receiver reference engine in phy/radio.cpp —
  // runs are bit-identical either way, only event counts differ. The
  // AG_BATCHED_PHY=off environment escape hatch overrides this at
  // Channel construction.
  bool use_batched_phy{true};
};

}  // namespace ag::phy

#endif  // AG_PHY_PHY_PARAMS_H
