#include "phy/channel.h"

#include <cassert>
#include <cmath>

#include "mobility/vec2.h"
#include "phy/radio.h"
#include "sim/env.h"

namespace ag::phy {

bool spatial_index_env_off() { return sim::env_flag_off("AG_SPATIAL_INDEX"); }

Channel::Channel(sim::Simulator& sim, const mobility::MobilityModel& mobility,
                 PhyParams params)
    : sim_{sim},
      mobility_{mobility},
      params_{params},
      use_index_{params.use_spatial_index && !spatial_index_env_off()} {}

void Channel::attach(Radio* radio) {
  assert(radio != nullptr);
  assert(radio->node_index() == radios_.size() && "attach in node-index order");
  radios_.push_back(radio);
}

sim::Duration Channel::airtime_of(const mac::Frame& frame) const {
  const double payload_us = static_cast<double>(frame.wire_bytes()) * 8.0 * 1e6 / params_.bitrate_bps;
  return sim::Duration::us(static_cast<std::int64_t>(params_.phy_overhead_us + payload_us));
}

double Channel::distance_between(std::size_t a, std::size_t b) const {
  const sim::SimTime now = sim_.now();
  return mobility::distance(mobility_.position_of(a, now), mobility_.position_of(b, now));
}

void Channel::set_node_down(std::size_t node, bool down) {
  if (node >= radios_.size()) return;
  if (down_.size() < radios_.size()) down_.resize(radios_.size(), 0);
  down_[node] = down ? 1 : 0;
  // Going down kills any frame currently being received; the first-bit
  // guard in transmit() only covers frames that had not yet arrived.
  if (down) radios_[node]->abort_receptions();
}

void Channel::set_partition(std::vector<std::uint8_t> side_of_node) {
  assert(side_of_node.size() == radios_.size() && "one side per attached radio");
  partition_ = std::move(side_of_node);
}

void Channel::transmit(std::size_t sender, const mac::Frame& frame) {
  if (is_node_down(sender)) return;  // a downed radio radiates nothing
  ++transmissions_;
  const sim::SimTime now = sim_.now();
  const sim::Duration airtime = airtime_of(frame);
  const mobility::Vec2 from = mobility_.position_of(sender, now);
  const double range_sq =
      params_.transmission_range_m * params_.transmission_range_m;

  pending_.clear();
  auto consider = [&](std::size_t i) {
    if (i == sender) return;
    const double d_sq = mobility::distance_sq(from, mobility_.position_of(i, now));
    if (d_sq > range_sq) return;
    if (!down_.empty() && down_[i] != 0) {
      ++suppressed_down_;
      return;
    }
    if (!partition_.empty() && partition_[i] != partition_[sender]) {
      ++suppressed_partition_;
      return;
    }
    if (drop_hook_ && drop_hook_(sender, i)) return;
    const double d = std::sqrt(d_sq);  // true distance: propagation delay
    const auto prop_us =
        static_cast<std::int64_t>(d / params_.propagation_mps * 1e6) + 1;
    ++deliveries_;
    pending_.emplace_back(prop_us, static_cast<std::uint32_t>(i));
  };

  if (use_index_) {
    // (Re)build on first use or when radios were attached since — the
    // index covers exactly the receivers the scan would visit.
    if (index_ == nullptr || index_->node_count() != radios_.size()) {
      index_ = std::make_unique<SpatialIndex>(mobility_, radios_.size(),
                                              params_.transmission_range_m);
    }
    index_->refresh_if_stale(now);
    candidates_.clear();
    index_->collect_candidates(from, candidates_);
    for (const std::uint32_t i : candidates_) consider(i);
  } else {
    for (std::size_t i = 0; i < radios_.size(); ++i) consider(i);
  }
  if (pending_.empty()) return;

  // One immutable frame shared by every receiver (zero-copy delivery),
  // and one scheduled event per distinct propagation delay, delivering to
  // its receivers in ascending node order. Delivery times and ordering
  // are identical to scheduling one event per receiver (equal-time events
  // fire FIFO, and per-receiver events were scheduled in ascending node
  // order); at unit-disk ranges the quantized delay is the same for every
  // receiver, so this is almost always a single event per transmission.
  const auto shared = std::make_shared<const mac::Frame>(frame);
  constexpr std::int64_t kScheduled = -1;  // real delays are always >= 1 us
  std::size_t remaining = pending_.size();
  while (remaining > 0) {
    std::int64_t prop_us = kScheduled;  // first unscheduled delay this pass
    std::vector<std::uint32_t> rx;
    for (auto& [p, i] : pending_) {
      if (p == kScheduled || (prop_us != kScheduled && p != prop_us)) continue;
      prop_us = p;
      rx.push_back(i);
      p = kScheduled;
      --remaining;
    }
    const auto prop = sim::Duration::us(prop_us);
    const sim::SimTime end = now + prop + airtime;
    sim_.schedule_after(
        prop,
        [this, shared, end, rx = std::move(rx)] {
          for (const std::uint32_t i : rx) {
            if (is_node_down(i)) continue;  // crashed between send and first bit
            radios_[i]->begin_reception(shared, end);
          }
        },
        sim::EventCategory::phy_delivery);
  }
}

}  // namespace ag::phy
