#include "phy/channel.h"

#include <cassert>

#include "mobility/vec2.h"
#include "phy/radio.h"

namespace ag::phy {

Channel::Channel(sim::Simulator& sim, const mobility::MobilityModel& mobility,
                 PhyParams params)
    : sim_{sim}, mobility_{mobility}, params_{params} {}

void Channel::attach(Radio* radio) {
  assert(radio != nullptr);
  assert(radio->node_index() == radios_.size() && "attach in node-index order");
  radios_.push_back(radio);
}

sim::Duration Channel::airtime_of(const mac::Frame& frame) const {
  const double payload_us = static_cast<double>(frame.wire_bytes()) * 8.0 * 1e6 / params_.bitrate_bps;
  return sim::Duration::us(static_cast<std::int64_t>(params_.phy_overhead_us + payload_us));
}

double Channel::distance_between(std::size_t a, std::size_t b) const {
  const sim::SimTime now = sim_.now();
  return mobility::distance(mobility_.position_of(a, now), mobility_.position_of(b, now));
}

void Channel::set_node_down(std::size_t node, bool down) {
  if (node >= radios_.size()) return;
  if (down_.size() < radios_.size()) down_.resize(radios_.size(), 0);
  down_[node] = down ? 1 : 0;
  // Going down kills any frame currently being received; the first-bit
  // guard in transmit() only covers frames that had not yet arrived.
  if (down) radios_[node]->abort_receptions();
}

void Channel::set_partition(std::vector<std::uint8_t> side_of_node) {
  assert(side_of_node.size() == radios_.size() && "one side per attached radio");
  partition_ = std::move(side_of_node);
}

void Channel::transmit(std::size_t sender, const mac::Frame& frame) {
  if (is_node_down(sender)) return;  // a downed radio radiates nothing
  ++transmissions_;
  const sim::SimTime now = sim_.now();
  const sim::Duration airtime = airtime_of(frame);
  const mobility::Vec2 from = mobility_.position_of(sender, now);
  for (std::size_t i = 0; i < radios_.size(); ++i) {
    if (i == sender) continue;
    if (!down_.empty() && down_[i] != 0) continue;
    if (!partition_.empty() && partition_[i] != partition_[sender]) continue;
    const double d = mobility::distance(from, mobility_.position_of(i, now));
    if (d > params_.transmission_range_m) continue;
    if (drop_hook_ && drop_hook_(sender, i)) continue;
    const auto prop = sim::Duration::us(
        static_cast<std::int64_t>(d / params_.propagation_mps * 1e6) + 1);
    sim_.schedule_after(prop, [this, i, frame, end = now + prop + airtime] {
      if (is_node_down(i)) return;  // crashed between send and first bit
      radios_[i]->begin_reception(frame, end);
    });
  }
}

}  // namespace ag::phy
