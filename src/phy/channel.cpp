#include "phy/channel.h"

#include <cassert>
#include <cmath>
#include <cstddef>

#include "mobility/vec2.h"
#include "phy/batched_phy.h"
#include "phy/radio.h"
#include "sim/env.h"

namespace ag::phy {

bool spatial_index_env_off() { return sim::env_flag_off("AG_SPATIAL_INDEX"); }

bool batched_phy_enabled() { return !sim::env_flag_off("AG_BATCHED_PHY"); }

Channel::Channel(sim::Simulator& sim, const mobility::MobilityModel& mobility,
                 PhyParams params)
    : sim_{sim},
      mobility_{mobility},
      params_{params},
      use_index_{params.use_spatial_index && !spatial_index_env_off()},
      rx_pool_{std::make_shared<RxBufPool>()} {
  if (params.use_batched_phy && batched_phy_enabled()) {
    batched_ = std::make_unique<BatchedPhy>(sim_, *this);
  }
}

Channel::~Channel() = default;

void Channel::attach(Radio* radio) {
  assert(radio != nullptr);
  assert(radio->node_index() == radios_.size() && "attach in node-index order");
  radios_.push_back(radio);
  if (batched_ != nullptr) batched_->attach(radio);
}

sim::Duration Channel::airtime_of(const mac::Frame& frame) const {
  // Memoized per wire_bytes value: frame sizes repeat endlessly (ACKs,
  // hellos, the workload's payload), and this sat on the hottest path.
  const std::uint32_t bytes = frame.wire_bytes();
  if (bytes >= airtime_us_by_bytes_.size()) {
    airtime_us_by_bytes_.resize(bytes + 1, -1);
  }
  std::int64_t& us = airtime_us_by_bytes_[bytes];
  if (us < 0) {
    const double payload_us =
        static_cast<double>(bytes) * 8.0 * 1e6 / params_.bitrate_bps;
    us = static_cast<std::int64_t>(params_.phy_overhead_us + payload_us);
  }
  return sim::Duration::us(us);
}

std::uint64_t Channel::rx_elided() const {
  return batched_ != nullptr ? batched_->rx_elided() : 0;
}

std::uint64_t Channel::rx_coalesced() const {
  return batched_ != nullptr ? batched_->rx_coalesced() : 0;
}

std::shared_ptr<Channel::RxBuf> Channel::acquire_rx_buf() {
  std::unique_ptr<RxBuf> buf;
  if (!rx_pool_->free_list.empty()) {
    buf = std::move(rx_pool_->free_list.back());
    rx_pool_->free_list.pop_back();
    buf->clear();
  } else {
    buf = std::make_unique<RxBuf>();
  }
  // The deleter returns the buffer to the pool and holds the pool alive,
  // so buffers captured in event lambdas stay safe past Channel teardown
  // (harness::Network destroys the channel before the simulator).
  std::shared_ptr<RxBufPool> pool = rx_pool_;
  return {buf.release(),
          [pool = std::move(pool)](RxBuf* b) { pool->free_list.emplace_back(b); }};
}

double Channel::distance_between(std::size_t a, std::size_t b) const {
  const sim::SimTime now = sim_.now();
  return mobility::distance(mobility_.position_of(a, now), mobility_.position_of(b, now));
}

void Channel::set_node_down(std::size_t node, bool down) {
  if (node >= radios_.size()) return;
  if (down_.size() < radios_.size()) down_.resize(radios_.size(), 0);
  down_[node] = down ? 1 : 0;
  // Going down kills any frame currently being received; the first-bit
  // guard in transmit() only covers frames that had not yet arrived.
  if (down) radios_[node]->abort_receptions();
}

void Channel::set_partition(std::vector<std::uint8_t> side_of_node) {
  assert(side_of_node.size() == radios_.size() && "one side per attached radio");
  partition_ = std::move(side_of_node);
}

void Channel::transmit(std::size_t sender, const mac::Frame& frame) {
  if (is_node_down(sender)) return;  // a downed radio radiates nothing
  ++transmissions_;
  const sim::SimTime now = sim_.now();
  const sim::Duration airtime = airtime_of(frame);
  const mobility::Vec2 from = mobility_.position_of(sender, now);
  const double range_sq =
      params_.transmission_range_m * params_.transmission_range_m;

  pending_.clear();
  auto consider = [&](std::size_t i) {
    if (i == sender) return;
    const double d_sq = mobility::distance_sq(from, mobility_.position_of(i, now));
    if (d_sq > range_sq) return;
    if (!down_.empty() && down_[i] != 0) {
      ++suppressed_down_;
      return;
    }
    if (!partition_.empty() && partition_[i] != partition_[sender]) {
      ++suppressed_partition_;
      return;
    }
    if (drop_hook_ && drop_hook_(sender, i)) return;
    const double d = std::sqrt(d_sq);  // true distance: propagation delay
    const auto prop_us =
        static_cast<std::int64_t>(d / params_.propagation_mps * 1e6) + 1;
    ++deliveries_;
    pending_.emplace_back(prop_us, static_cast<std::uint32_t>(i));
  };

  if (use_index_) {
    // (Re)build on first use or when radios were attached since — the
    // index covers exactly the receivers the scan would visit.
    if (index_ == nullptr || index_->node_count() != radios_.size()) {
      // Tight margin (0.1 x range instead of the 0.25 default): smaller
      // cells mean fewer bucketed neighbors scanned and a sharper
      // range + margin prefilter per transmit, while the extra rebuilds
      // (epoch = margin / max_speed) stay a rounding error next to the
      // per-transmit scan. Candidate sets remain supersets of the true
      // receivers at any margin, so results are bit-identical.
      index_ = std::make_unique<SpatialIndex>(mobility_, radios_.size(),
                                              params_.transmission_range_m,
                                              /*margin_fraction=*/0.1);
    }
    index_->refresh_if_stale(now);
    // Epoch-cached candidate set: the cell scan + sort amortizes over
    // every transmission this sender makes before the next rebuild; the
    // exact range check below stays per-transmission.
    for (const std::uint32_t i : index_->candidates_for(sender, from)) consider(i);
  } else {
    for (std::size_t i = 0; i < radios_.size(); ++i) consider(i);
  }
  if (pending_.empty()) return;

  // One immutable frame shared by every receiver (zero-copy delivery),
  // and one scheduled event per distinct propagation delay, delivering to
  // its receivers in ascending node order. Delivery times and ordering
  // are identical to scheduling one event per receiver (equal-time events
  // fire FIFO, and per-receiver events were scheduled in ascending node
  // order); at unit-disk ranges the quantized delay is the same for every
  // receiver, so this is almost always a single event per transmission.
  //
  // Grouping is a single pass over pending_ (ascending node order):
  // each entry appends to its delay's pooled receiver buffer, distinct
  // delays kept in first-occurrence order — the same groups in the same
  // schedule order as scanning pending_ once per distinct delay, without
  // the quadratic rescan or a fresh heap allocation per event. The inner
  // scan is over *distinct delays* (1 at unit-disk ranges), not entries.
  const auto shared = std::make_shared<const mac::Frame>(frame);
  groups_.clear();
  for (const auto& [p, i] : pending_) {
    std::shared_ptr<RxBuf>* buf = nullptr;
    for (auto& [delay, b] : groups_) {
      if (delay == p) {
        buf = &b;
        break;
      }
    }
    if (buf == nullptr) {
      groups_.emplace_back(p, acquire_rx_buf());
      buf = &groups_.back().second;
    }
    (*buf)->push_back(i);
  }
  // Sender cell for the per-cell airtime timeline (batched engine with
  // the spatial index only; the brute-force scan runs every group down
  // the contended path).
  std::size_t cell_col = 0;
  std::size_t cell_row = 0;
  if (batched_ != nullptr && index_ != nullptr) {
    ensure_timeline();
    const auto cell = index_->cell_of(from);
    cell_col = cell.first;
    cell_row = cell.second;
  }
  for (auto& [prop_us, rx] : groups_) {
    const auto prop = sim::Duration::us(prop_us);
    const sim::SimTime end = now + prop + airtime;
    sim_.schedule_after(
        prop,
        [this, shared, end, cell_col, cell_row, rx = std::move(rx)] {
          deliver_to(*rx, shared, end, cell_col, cell_row);
        },
        sim::EventCategory::phy_delivery);
  }
  groups_.clear();  // drop the moved-from shells, keep the delay scratch
}

void Channel::deliver_to(const RxBuf& rx, const std::shared_ptr<const mac::Frame>& frame,
                         sim::SimTime end, std::size_t cell_col, std::size_t cell_row) {
  if (batched_ == nullptr) {
    for (const std::uint32_t i : rx) {
      if (is_node_down(i)) continue;  // crashed between send and first bit
      radios_[i]->begin_reception(frame, end);
    }
    return;
  }
  // Receptions begun directly on a Radio (unit tests) are tracked outside
  // the timeline, so the uncontended verdict stands down while any is in
  // flight.
  const bool uncontended = !cell_busy_until_.empty() &&
                           !batched_->has_unstamped_live() &&
                           timeline_clear(cell_col, cell_row, sim_.now());
  const std::size_t live = batched_->deliver_group(frame, end, rx, uncontended);
  if (live > 0 && !cell_busy_until_.empty()) stamp_timeline(cell_col, cell_row, end);
}

void Channel::ensure_timeline() {
  if (index_ == nullptr) return;
  if (!cell_busy_until_.empty() && timeline_nx_ == index_->cols() &&
      timeline_ny_ == index_->rows()) {
    return;
  }
  // (Re)size carries the global high-water mark into every cell, so a
  // stamp from a previous grid (index rebuilt for a new node count) can
  // never be forgotten while its frames are still in flight.
  sim::SimTime floor = sim::SimTime::zero();
  for (const sim::SimTime t : cell_busy_until_) {
    if (t > floor) floor = t;
  }
  timeline_nx_ = index_->cols();
  timeline_ny_ = index_->rows();
  timeline_wrap_x_ = index_->wraps_x();
  cell_busy_until_.assign(timeline_nx_ * timeline_ny_, floor);
}

void Channel::stamp_timeline(std::size_t col, std::size_t row, sim::SimTime end) {
  // 3x3 window around the sender's cell: cells are sized >= range, so
  // every receiver of the group lies inside it at stamp time.
  const auto nx = static_cast<std::ptrdiff_t>(timeline_nx_);
  const auto ny = static_cast<std::ptrdiff_t>(timeline_ny_);
  for (std::ptrdiff_t dr = -1; dr <= 1; ++dr) {
    const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(row) + dr;
    if (r < 0 || r >= ny) continue;
    for (std::ptrdiff_t dc = -1; dc <= 1; ++dc) {
      std::ptrdiff_t c = static_cast<std::ptrdiff_t>(col) + dc;
      if (timeline_wrap_x_) {
        c = (c + nx) % nx;  // highway wrap: modular column adjacency
      } else if (c < 0 || c >= nx) {
        continue;
      }
      sim::SimTime& cell = cell_busy_until_[static_cast<std::size_t>(r * nx + c)];
      if (end > cell) cell = end;
    }
  }
}

bool Channel::timeline_clear(std::size_t col, std::size_t row, sim::SimTime now) const {
  // 5x5 test window: one ring wider than the stamp, absorbing node
  // motion (and index staleness) between a stamp and this query. The
  // comparison is strict — a group completing exactly `now` may sweep
  // after this arrival in same-timestamp FIFO order, so its receivers
  // can still be mid-reception.
  const auto nx = static_cast<std::ptrdiff_t>(timeline_nx_);
  const auto ny = static_cast<std::ptrdiff_t>(timeline_ny_);
  for (std::ptrdiff_t dr = -2; dr <= 2; ++dr) {
    const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(row) + dr;
    if (r < 0 || r >= ny) continue;
    for (std::ptrdiff_t dc = -2; dc <= 2; ++dc) {
      std::ptrdiff_t c = static_cast<std::ptrdiff_t>(col) + dc;
      if (timeline_wrap_x_) {
        c = (c + nx) % nx;
      } else if (c < 0 || c >= nx) {
        continue;
      }
      if (cell_busy_until_[static_cast<std::size_t>(r * nx + c)] >= now) return false;
    }
  }
  return true;
}

}  // namespace ag::phy
