// Uniform-grid spatial index over mobility positions, the receiver-lookup
// accelerator for phy::Channel::transmit(). Replaces the brute-force
// O(n) scan over every attached radio with an O(degree) candidate lookup
// while keeping delivery decisions bit-identical:
//
//  - Cells are sized transmission_range + margin, where the margin is a
//    conservative max_speed * epoch bound on how far closed-form motion
//    can drift between bucket refreshes. Any receiver within true range
//    of the sender *now* was, at bucket time, within range + margin of
//    the sender's current position, so it sits in the 3x3 cell
//    neighborhood around the sender's current cell.
//  - Buckets refresh lazily: the first query past the epoch horizon (or
//    after a MobilityModel::position_generation() bump, e.g. a test
//    teleporting a node) rebuilds in O(n).
//  - Candidates are returned in ascending node index — the same order the
//    brute-force scan visits them — and the caller still applies the
//    exact range check, so schedules and results match the scan bit for
//    bit.
//  - Positions outside the model's declared bounds clamp into the border
//    cells. Clamping is monotone and 1-Lipschitz per axis, so two
//    positions within one cell length of each other stay within one cell
//    of each other after clamping: correctness degrades never, only
//    candidate-set tightness.
//  - Models with wraps_x() (highway wrap-around) use modular column
//    adjacency, so a car that wrapped between refresh and query is still
//    found in the border column on the other side.
#ifndef AG_PHY_SPATIAL_INDEX_H
#define AG_PHY_SPATIAL_INDEX_H

#include <cstdint>
#include <vector>

#include "mobility/mobility_model.h"
#include "sim/time.h"

namespace ag::phy {

class SpatialIndex {
 public:
  // Indexes nodes [0, node_count) of `mobility` (the channel's attached
  // radios; the model may know about more nodes). `margin_fraction` sets
  // the refresh trade-off: margin = margin_fraction * range, and the
  // epoch between rebuilds is margin / max_speed.
  SpatialIndex(const mobility::MobilityModel& mobility, std::size_t node_count,
               double range_m, double margin_fraction = 0.25);

  // Makes the buckets valid for queries at `now`: rebuilds when the epoch
  // expired or the model's position generation changed.
  void refresh_if_stale(sim::SimTime now);

  // Appends every node whose reception could be in range of a sender at
  // `from` (candidates; the caller applies the exact range check), in
  // ascending node index. Only valid after refresh_if_stale(now) with the
  // `now` the position was sampled at.
  void collect_candidates(mobility::Vec2 from, std::vector<std::uint32_t>& out) const;

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t cols() const { return nx_; }
  [[nodiscard]] std::size_t rows() const { return ny_; }
  [[nodiscard]] double cell_size_m() const { return cell_m_; }
  [[nodiscard]] double margin_m() const { return margin_m_; }
  // End of the current epoch: queries at or before this time are covered
  // by the margin (SimTime::max() for immobile models).
  [[nodiscard]] sim::SimTime valid_until() const { return valid_until_; }
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  void rebuild(sim::SimTime now);
  [[nodiscard]] std::size_t col_of(double x) const;
  [[nodiscard]] std::size_t row_of(double y) const;

  const mobility::MobilityModel& mobility_;
  std::size_t node_count_;
  double margin_m_;
  double cell_m_;
  // Column width. Equals cell_m_ except for wrap-x models, where columns
  // must divide the circumference exactly: a seam column narrower than
  // the cell would break the "±1 column mod nx" adjacency for circle
  // distances that span it, dropping true receivers across the wrap.
  double cell_x_m_;
  double max_speed_mps_;
  bool wrap_x_;
  mobility::Bounds bounds_;
  std::size_t nx_{1};
  std::size_t ny_{1};
  std::vector<std::vector<std::uint32_t>> cells_;  // nx_ * ny_, row-major
  sim::SimTime valid_until_{sim::SimTime::zero()};
  std::uint64_t seen_generation_{0};
  bool built_{false};
  std::uint64_t rebuilds_{0};
};

}  // namespace ag::phy

#endif  // AG_PHY_SPATIAL_INDEX_H
