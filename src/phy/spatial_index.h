// Uniform-grid spatial index over mobility positions, the receiver-lookup
// accelerator for phy::Channel::transmit(). Replaces the brute-force
// O(n) scan over every attached radio with an O(degree) candidate lookup
// while keeping delivery decisions bit-identical:
//
//  - Cells are sized transmission_range + 3 * margin, where the margin
//    is a conservative max_speed * epoch bound on how far closed-form
//    motion can drift between bucket refreshes. Any receiver within true
//    range of the sender *now* was, at bucket time, within range +
//    margin of the sender's current position, so it sits in the 3x3
//    cell neighborhood around the sender's current cell. The extra 2 *
//    margin of cell width serves the per-sender cached query
//    (candidates_for), whose anchor position may itself be up to 2 *
//    margin stale — see below.
//  - Buckets refresh lazily: the first query past the epoch horizon (or
//    after a MobilityModel::position_generation() bump, e.g. a test
//    teleporting a node) rebuilds in O(n).
//  - Candidates are returned in ascending node index — the same order the
//    brute-force scan visits them — and the caller still applies the
//    exact range check, so schedules and results match the scan bit for
//    bit.
//  - Buckets carry each node's position as of the rebuild, so the lookup
//    prefilters the 3x3 neighborhood down to nodes within range + margin
//    of the sender before sorting: a node farther than that from the
//    sender *now* is provably out of true range (it can have drifted at
//    most margin since the rebuild), so dropping it can never change a
//    delivery decision — it only spares the caller the exact check.
//  - Positions outside the model's declared bounds clamp into the border
//    cells. Clamping is monotone and 1-Lipschitz per axis, so two
//    positions within one cell length of each other stay within one cell
//    of each other after clamping: correctness degrades never, only
//    candidate-set tightness.
//  - Models with wraps_x() (highway wrap-around) use modular column
//    adjacency, so a car that wrapped between refresh and query is still
//    found in the border column on the other side.
#ifndef AG_PHY_SPATIAL_INDEX_H
#define AG_PHY_SPATIAL_INDEX_H

#include <cstdint>
#include <utility>
#include <vector>

#include "mobility/mobility_model.h"
#include "sim/time.h"

namespace ag::phy {

class SpatialIndex {
 public:
  // Indexes nodes [0, node_count) of `mobility` (the channel's attached
  // radios; the model may know about more nodes). `margin_fraction` sets
  // the refresh trade-off: margin = margin_fraction * range, and the
  // epoch between rebuilds is margin / max_speed.
  SpatialIndex(const mobility::MobilityModel& mobility, std::size_t node_count,
               double range_m, double margin_fraction = 0.25);

  // Makes the buckets valid for queries at `now`: rebuilds when the epoch
  // expired or the model's position generation changed.
  void refresh_if_stale(sim::SimTime now);

  // Appends every node whose reception could be in range of a sender at
  // `from` (candidates; the caller applies the exact range check), in
  // ascending node index. The set is prefiltered to nodes within
  // range + margin of `from` at bucket time, which is still a superset of
  // every true receiver. Only valid after refresh_if_stale(now) with the
  // `now` the position was sampled at.
  void collect_candidates(mobility::Vec2 from, std::vector<std::uint32_t>& out) const;

  // Per-sender cached variant of collect_candidates: the gathered set is
  // memoized for the whole bucket epoch, so a sender transmitting many
  // times between rebuilds pays the cell scan + sort once. The prefilter
  // reach widens to range + 3 * margin because the anchor `from` is the
  // sender's position at cache-fill time: by the epoch drift bound the
  // sender has moved at most 2 * margin since (both positions lie within
  // margin of its rebuild-time position) and each receiver at most
  // margin, so every true receiver of ANY transmission this epoch stays
  // inside the cached set — and cells are sized >= range + 3 * margin,
  // so the 3x3 neighborhood still covers the widened reach. The caller's
  // exact range check per transmission is unchanged, so delivery
  // decisions are bit-identical to the uncached query.
  const std::vector<std::uint32_t>& candidates_for(std::size_t sender,
                                                   mobility::Vec2 from);

  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::size_t cols() const { return nx_; }
  [[nodiscard]] std::size_t rows() const { return ny_; }
  // Grid cell of a position (clamped into the border cells), and whether
  // column adjacency wraps — exposed for the batched phy engine's
  // per-cell airtime timeline, which shares this grid's geometry.
  [[nodiscard]] std::pair<std::size_t, std::size_t> cell_of(mobility::Vec2 p) const {
    return {col_of(p.x), row_of(p.y)};
  }
  [[nodiscard]] bool wraps_x() const { return wrap_x_; }
  [[nodiscard]] double cell_size_m() const { return cell_m_; }
  [[nodiscard]] double margin_m() const { return margin_m_; }
  // End of the current epoch: queries at or before this time are covered
  // by the margin (SimTime::max() for immobile models).
  [[nodiscard]] sim::SimTime valid_until() const { return valid_until_; }
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }

 private:
  void rebuild(sim::SimTime now);
  // Shared gather core: appends every bucketed node within `reach` of
  // `from` (bucket-time positions), ascending node index.
  void gather(mobility::Vec2 from, double reach, std::vector<std::uint32_t>& out) const;
  [[nodiscard]] std::size_t col_of(double x) const;
  [[nodiscard]] std::size_t row_of(double y) const;

  // One bucket entry per node: the position sampled at the last rebuild
  // rides along with the id, so the candidate prefilter runs on
  // contiguous data instead of a virtual position_of() per candidate.
  struct Entry {
    double x;
    double y;
    std::uint32_t id;
  };

  const mobility::MobilityModel& mobility_;
  std::size_t node_count_;
  double range_m_;
  double margin_m_;
  double cell_m_;
  // Column width. Equals cell_m_ except for wrap-x models, where columns
  // must divide the circumference exactly: a seam column narrower than
  // the cell would break the "±1 column mod nx" adjacency for circle
  // distances that span it, dropping true receivers across the wrap.
  double cell_x_m_;
  double max_speed_mps_;
  bool wrap_x_;
  mobility::Bounds bounds_;
  std::size_t nx_{1};
  std::size_t ny_{1};
  std::vector<std::vector<Entry>> cells_;  // nx_ * ny_, row-major
  // candidates_for memoization: one candidate list per sender, stamped
  // with the rebuild counter it was gathered under.
  std::vector<std::vector<std::uint32_t>> cache_;
  std::vector<std::uint64_t> cache_stamp_;
  sim::SimTime valid_until_{sim::SimTime::zero()};
  std::uint64_t seen_generation_{0};
  bool built_{false};
  std::uint64_t rebuilds_{0};
};

}  // namespace ag::phy

#endif  // AG_PHY_SPATIAL_INDEX_H
