// Batched phy delivery engine: one completion event per transmitted
// frame instead of one finish_reception event per (frame x receiver),
// with analytic elision of receptions that are already doomed and
// strictly outlived by the receiver's other on-air state. Radio state
// lives in flat per-node arrays (SoA, keyed like net::NodeTable) swept
// in ascending node order, so every listener callback
// (on_medium_busy / on_medium_idle / on_frame_received) fires in
// exactly the order the per-receiver reference engine produces — full
// runs are bit-identical, only the simulator event counts differ.
//
// The reference per-receiver engine (phy/radio.cpp) stays selectable
// behind AG_BATCHED_PHY=off forever; batched_phy_equivalence_test pins
// the equivalence, and the elision accounting reconstructs the
// reference's executed phy_delivery event count exactly:
//   ref executed == batched executed + rx_elided + rx_coalesced.
//
// Why elision is sound only under a *strict* cover (end < busy_until):
// at equal end times the reference fires the busy->idle transition
// inside the LAST same-end finish event, so dropping the doomed
// reception would move the on_medium_idle callback to an earlier
// same-timestamp event and shift every MAC timer seeded from it.
#ifndef AG_PHY_BATCHED_PHY_H
#define AG_PHY_BATCHED_PHY_H

#include <cstdint>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "mac/frame.h"
#include "sim/simulator.h"

namespace ag::phy {

class Channel;
class Radio;
class RadioListener;

class BatchedPhy {
 public:
  BatchedPhy(sim::Simulator& sim, Channel& channel);

  // Grows the per-node arrays; called from Channel::attach in node order.
  void attach(Radio* radio);

  // Mirror of Radio::set_listener — the hot notification paths read the
  // flat table instead of chasing a Radio pointer per state change.
  void set_listener(std::size_t node, RadioListener* listener) {
    if (node >= listeners_.size()) listeners_.resize(node + 1, nullptr);
    listeners_[node] = listener;
  }

  // --- Radio facade (state queries on the SoA table) ---
  [[nodiscard]] bool transmitting(std::size_t node) const {
    return transmitting_[node] != 0;
  }
  [[nodiscard]] bool medium_busy(std::size_t node) const {
    return transmitting_[node] != 0 || rx_count_[node] > 0;
  }
  [[nodiscard]] sim::Duration idle_for(std::size_t node) const;

  // Radio::transmit body: corrupts in-flight receptions (half duplex),
  // hands the frame to the channel, schedules tx-complete. Schedule-call
  // order matches the reference exactly (arrival events, then the
  // tx-complete event), so FIFO ties break identically.
  void transmit(std::size_t node, const mac::Frame& frame);

  // Single-receiver reception (direct Radio::begin_reception calls, e.g.
  // unit tests). Tracked receptions from this path bypass the per-cell
  // airtime timeline, so they disable the uncontended fast path while in
  // flight (unstamped_live_).
  void begin_reception(std::size_t node, std::shared_ptr<const mac::Frame> frame,
                       sim::SimTime end);

  // Crash support: corrupts every reception in progress without touching
  // collision counters. Entries stay tracked (their completion events
  // still drain rx_count_), mirroring the reference's corrupt-in-place.
  void abort_receptions(std::size_t node) { has_clean_[node] = 0; }

  // --- Channel delivery path ---
  // Processes one frame's receiver group (ascending node order, downed
  // receivers already excluded by the caller): credits collision
  // counters, elides strictly-covered doomed receptions, and schedules
  // ONE completion event for the survivors. `uncontended` is the per-cell
  // airtime-timeline verdict: every receiver provably has no reception
  // in flight, so the collision branches are skipped wholesale. Returns
  // the number of tracked (live) receivers, 0 when fully elided.
  std::size_t deliver_group(const std::shared_ptr<const mac::Frame>& frame,
                            sim::SimTime end,
                            const std::vector<std::uint32_t>& rx,
                            bool uncontended);

  // --- elision accounting ---
  // Receptions resolved with no completion event ever scheduled, settled
  // against sim.now(): an elided end is credited once the reference's
  // finish event would have executed, so the reconstruction identity
  // holds exactly even for frames in flight at the run cutoff.
  [[nodiscard]] std::uint64_t rx_elided() const;
  // Live receivers beyond the first per completion event (L receivers
  // swept by one event = L-1 events the reference would have executed).
  [[nodiscard]] std::uint64_t rx_coalesced() const { return rx_coalesced_; }
  // True while a reception tracked outside the channel's cell timeline
  // is in flight (begin_reception path) — the fast path must stand down.
  [[nodiscard]] bool has_unstamped_live() const { return unstamped_live_ > 0; }

 private:
  // Arrival bookkeeping for one receiver. Returns true when the
  // reception must be tracked (false: analytically elided).
  bool arrive(std::size_t node, const mac::Frame* frame_key, sim::SimTime end);
  // finish_reception equivalent for one receiver of `frame`.
  void complete_one(std::size_t node, const std::shared_ptr<const mac::Frame>& frame);
  // Busy-state transition notifications, specialized per call site (the
  // post-mutation busy verdict is statically known at each): notify_busy
  // after a mutation that left the node busy, settle_if_idle after one
  // that may have drained the last on-air state.
  void notify_busy(std::size_t node, bool was_busy);
  void settle_if_idle(std::size_t node);
  void settle_elided() const;

  sim::Simulator& sim_;
  Channel& channel_;
  std::vector<Radio*> radios_;
  std::vector<RadioListener*> listeners_;  // kept in sync by Radio::set_listener

  // SoA radio state, indexed by node. At most one in-flight reception
  // per node can be clean (any overlap corrupts all, no capture), so the
  // clean slot is a flag + the frame's identity; corrupt receptions need
  // no identity at all, only the count that keeps carrier sense busy.
  std::vector<std::uint8_t> transmitting_;
  std::vector<std::uint32_t> rx_count_;       // tracked receptions in flight
  std::vector<std::uint8_t> has_clean_;
  std::vector<const mac::Frame*> clean_frame_; // valid while has_clean_
  // High-water mark over tracked busy state (tx end + reception ends).
  // Exact while the node is busy; reset at every busy->idle transition
  // so a stale value can never justify an elision across an idle gap.
  std::vector<sim::SimTime> busy_until_;
  std::vector<sim::SimTime> idle_since_;      // valid while !medium_busy

  // Min-heap of (would-be finish time, count) for elided receptions,
  // drained into rx_elided_ as sim.now() passes each end.
  using ElidedEntry = std::pair<sim::SimTime, std::uint64_t>;
  mutable std::priority_queue<ElidedEntry, std::vector<ElidedEntry>,
                              std::greater<ElidedEntry>>
      elided_pending_;
  mutable std::uint64_t rx_elided_{0};
  std::uint64_t rx_coalesced_{0};
  std::uint64_t unstamped_live_{0};
};

}  // namespace ag::phy

#endif  // AG_PHY_BATCHED_PHY_H
