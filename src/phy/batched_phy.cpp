#include "phy/batched_phy.h"

#include <cassert>

#include "phy/channel.h"
#include "phy/radio.h"

namespace ag::phy {

BatchedPhy::BatchedPhy(sim::Simulator& sim, Channel& channel)
    : sim_{sim}, channel_{channel} {}

void BatchedPhy::attach(Radio* radio) {
  assert(radio->node_index() == radios_.size() && "attach in node-index order");
  radios_.push_back(radio);
  if (listeners_.size() < radios_.size()) listeners_.resize(radios_.size(), nullptr);
  listeners_[radio->node_index()] = radio->listener_;
  transmitting_.push_back(0);
  rx_count_.push_back(0);
  has_clean_.push_back(0);
  clean_frame_.push_back(nullptr);
  busy_until_.push_back(sim::SimTime::zero());
  idle_since_.push_back(sim::SimTime::zero());
}

sim::Duration BatchedPhy::idle_for(std::size_t node) const {
  if (medium_busy(node)) return sim::Duration::zero();
  return sim_.now() - idle_since_[node];
}

void BatchedPhy::transmit(std::size_t node, const mac::Frame& frame) {
  assert(transmitting_[node] == 0 && "MAC must serialize transmissions");
  const bool was_busy = medium_busy(node);
  transmitting_[node] = 1;
  // Half duplex: anything being received is destroyed. At most one
  // in-flight reception can be clean, so that flag is the whole loop.
  if (has_clean_[node] != 0) {
    has_clean_[node] = 0;
    ++radios_[node]->counters_.frames_missed_while_tx;
  }
  ++radios_[node]->counters_.frames_sent;
  // Schedule-call order matches the reference Radio::transmit exactly:
  // the channel's arrival events first, the tx-complete event second.
  channel_.transmit(node, frame);
  const sim::Duration airtime = channel_.airtime_of(frame);
  const sim::SimTime tx_end = sim_.now() + airtime;
  if (tx_end > busy_until_[node]) busy_until_[node] = tx_end;
  sim_.schedule_after(
      airtime,
      [this, node] {
        transmitting_[node] = 0;
        settle_if_idle(node);
        RadioListener* l = listeners_[node];
        if (l != nullptr) l->on_transmit_complete();
      },
      sim::EventCategory::phy_delivery);
  notify_busy(node, was_busy);
}

bool BatchedPhy::arrive(std::size_t node, const mac::Frame* frame_key,
                        sim::SimTime end) {
  Radio::Counters& counters = radios_[node]->counters_;
  bool corrupt = false;
  if (transmitting_[node] != 0) {
    corrupt = true;
    ++counters.frames_missed_while_tx;
  }
  if (rx_count_[node] > 0) {
    // Collision: the new frame and every overlapping one are lost. Only
    // a clean overlapping frame changes state or counters.
    if (has_clean_[node] != 0) {
      has_clean_[node] = 0;
      ++counters.frames_corrupted;
    }
    if (!corrupt) {
      corrupt = true;
      ++counters.frames_corrupted;
    }
  }
  if (corrupt && end < busy_until_[node]) {
    // Doomed, and tracked state outlives it *strictly*: it can never
    // deliver, never extends carrier sense, and the busy->idle
    // transition belongs to the cover. Resolved with no event. (At
    // equal ends the reference fires on_medium_idle inside the last
    // same-end finish — this one — so equality must stay tracked.)
    // Stale busy_until_ components are always <= now (tracked items
    // leave the set exactly at their end), so only live state can
    // satisfy end < busy_until_.
    return false;
  }
  const bool was_busy = transmitting_[node] != 0 || rx_count_[node] > 0;
  ++rx_count_[node];
  if (end > busy_until_[node]) busy_until_[node] = end;
  if (!corrupt) {
    has_clean_[node] = 1;
    clean_frame_[node] = frame_key;
  }
  notify_busy(node, was_busy);  // rx_count_ > 0 now: the node is busy
  return true;
}

void BatchedPhy::complete_one(std::size_t node,
                              const std::shared_ptr<const mac::Frame>& frame) {
  // finish_reception, SoA form: the reception delivers iff it is the
  // node's clean slot (frame identity — every receiver of one
  // transmission shares the same allocation, and one transmission is
  // delivered at most once per node).
  const bool deliver = has_clean_[node] != 0 && clean_frame_[node] == frame.get();
  if (deliver) has_clean_[node] = 0;
  assert(rx_count_[node] > 0);
  --rx_count_[node];
  settle_if_idle(node);
  if (deliver) {
    ++radios_[node]->counters_.frames_received;
    RadioListener* l = listeners_[node];
    if (l != nullptr) l->on_frame_received(*frame);
  }
}

void BatchedPhy::begin_reception(std::size_t node,
                                 std::shared_ptr<const mac::Frame> frame,
                                 sim::SimTime end) {
  settle_elided();
  if (!arrive(node, frame.get(), end)) {
    elided_pending_.emplace(end, 1);
    return;
  }
  ++unstamped_live_;
  sim_.schedule_at(
      end,
      [this, node, frame] {
        --unstamped_live_;
        complete_one(node, frame);
      },
      sim::EventCategory::phy_delivery);
}

std::size_t BatchedPhy::deliver_group(const std::shared_ptr<const mac::Frame>& frame,
                                      sim::SimTime end,
                                      const std::vector<std::uint32_t>& rx,
                                      bool uncontended) {
  settle_elided();
  const mac::Frame* key = frame.get();
  std::shared_ptr<std::vector<std::uint32_t>> live = channel_.acquire_rx_buf();
  std::uint64_t elided = 0;
  if (uncontended && unstamped_live_ == 0) {
    // Cell-timeline fast path: no receiver has a reception in flight, so
    // the whole collision branch is provably dead — only the half-duplex
    // check remains per receiver.
    for (const std::uint32_t node : rx) {
      if (channel_.is_node_down(node)) continue;  // crashed before first bit
      if (transmitting_[node] != 0) {
        ++radios_[node]->counters_.frames_missed_while_tx;
        if (end < busy_until_[node]) {
          ++elided;
          continue;
        }
        ++rx_count_[node];
        if (end > busy_until_[node]) busy_until_[node] = end;
        // Still transmitting: was_busy and busy agree, no callback.
      } else {
        ++rx_count_[node];
        busy_until_[node] = end;  // idle before: stale components are <= now
        has_clean_[node] = 1;
        clean_frame_[node] = key;
        RadioListener* l = listeners_[node];
        if (l != nullptr) l->on_medium_busy();
      }
      live->push_back(node);
    }
  } else {
    for (const std::uint32_t node : rx) {
      if (channel_.is_node_down(node)) continue;  // crashed before first bit
      if (arrive(node, key, end)) {
        live->push_back(node);
      } else {
        ++elided;
      }
    }
  }
  if (elided > 0) elided_pending_.emplace(end, elided);
  if (live->empty()) return 0;  // fully elided: the frame needs no event at all
  sim_.schedule_at(
      end,
      [this, frame, live] {
        // Coalescing credit lands at execution time, exactly when the
        // reference's per-receiver finish events would have executed —
        // frames still in flight at the run cutoff credit nothing, so
        // the executed-event reconstruction holds across cutoffs.
        rx_coalesced_ += live->size() - 1;
        for (const std::uint32_t node : *live) complete_one(node, frame);
      },
      sim::EventCategory::phy_delivery);
  return live->size();
}

void BatchedPhy::notify_busy(std::size_t node, bool was_busy) {
  if (was_busy) return;  // no transition: the node was already busy
  RadioListener* l = listeners_[node];
  if (l != nullptr) l->on_medium_busy();
}

void BatchedPhy::settle_if_idle(std::size_t node) {
  if (transmitting_[node] != 0 || rx_count_[node] > 0) return;
  idle_since_[node] = sim_.now();
  // Every tracked contributor has ended; drop the high-water mark so
  // the strict-cover test never consults stale (<= now) state.
  busy_until_[node] = sim::SimTime::zero();
  RadioListener* l = listeners_[node];
  if (l != nullptr) l->on_medium_idle();
}

void BatchedPhy::settle_elided() const {
  const sim::SimTime now = sim_.now();
  while (!elided_pending_.empty() && elided_pending_.top().first <= now) {
    rx_elided_ += elided_pending_.top().second;
    elided_pending_.pop();
  }
}

std::uint64_t BatchedPhy::rx_elided() const {
  settle_elided();
  return rx_elided_;
}

}  // namespace ag::phy
