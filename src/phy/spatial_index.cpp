#include "phy/spatial_index.h"

#include <algorithm>
#include <cmath>

namespace ag::phy {

namespace {

// Epochs longer than ~30 years of simulated time are "forever" for any
// run this simulator hosts; the clamp keeps SimTime arithmetic safe.
constexpr double kMaxEpochS = 1e9;

}  // namespace

SpatialIndex::SpatialIndex(const mobility::MobilityModel& mobility,
                           std::size_t node_count, double range_m,
                           double margin_fraction)
    : mobility_{mobility},
      node_count_{node_count},
      range_m_{range_m},
      max_speed_mps_{mobility.max_speed_mps()},
      wrap_x_{mobility.wraps_x()} {
  margin_m_ = max_speed_mps_ > 0.0 ? margin_fraction * range_m : 0.0;
  // 3x margin: one for receiver drift since the rebuild, two more so the
  // per-sender cached query's stale anchor stays covered (see header).
  cell_m_ = range_m + 3.0 * margin_m_;
  bounds_ = mobility_.bounds();
  // More than ~sqrt(n) cells per axis cannot push mean occupancy below
  // one node per cell, so wider grids only waste memory: grow the cells
  // instead (larger-than-minimum cells never violate the neighborhood
  // invariant).
  const double k = std::max(1.0, std::ceil(std::sqrt(static_cast<double>(
                                     std::max<std::size_t>(node_count_, 1)))));
  cell_m_ = std::max({cell_m_, bounds_.width() / k, bounds_.height() / k});
  if (!(cell_m_ > 0.0)) cell_m_ = 1.0;  // point area, zero range: one cell
  if (wrap_x_ && bounds_.width() > cell_m_) {
    // Wrap seam: columns must tile the circumference exactly, so widen
    // them to width / floor(width / cell) — every column is then at
    // least cell_m_ wide and "within one column" holds in the circular
    // metric with no narrow seam column.
    nx_ = static_cast<std::size_t>(std::floor(bounds_.width() / cell_m_));
    cell_x_m_ = bounds_.width() / static_cast<double>(nx_);
  } else {
    nx_ = std::max<std::size_t>(1, static_cast<std::size_t>(
                                       std::ceil(bounds_.width() / cell_m_)));
    cell_x_m_ = cell_m_;
  }
  ny_ = std::max<std::size_t>(1, static_cast<std::size_t>(
                                     std::ceil(bounds_.height() / cell_m_)));
  cells_.resize(nx_ * ny_);
  seen_generation_ = mobility_.position_generation();
}

std::size_t SpatialIndex::col_of(double x) const {
  double rel = x - bounds_.min.x;
  if (wrap_x_ && bounds_.width() > 0.0) {
    rel = std::fmod(rel, bounds_.width());
    if (rel < 0.0) rel += bounds_.width();
  }
  const auto raw = static_cast<std::ptrdiff_t>(std::floor(rel / cell_x_m_));
  if (raw < 0) return 0;
  return std::min(static_cast<std::size_t>(raw), nx_ - 1);
}

std::size_t SpatialIndex::row_of(double y) const {
  const auto raw = static_cast<std::ptrdiff_t>(std::floor((y - bounds_.min.y) / cell_m_));
  if (raw < 0) return 0;
  return std::min(static_cast<std::size_t>(raw), ny_ - 1);
}

void SpatialIndex::refresh_if_stale(sim::SimTime now) {
  if (built_ && now <= valid_until_ &&
      seen_generation_ == mobility_.position_generation()) {
    return;
  }
  rebuild(now);
}

void SpatialIndex::rebuild(sim::SimTime now) {
  for (std::vector<Entry>& cell : cells_) cell.clear();
  for (std::size_t i = 0; i < node_count_; ++i) {
    const mobility::Vec2 p = mobility_.position_of(i, now);
    cells_[row_of(p.y) * nx_ + col_of(p.x)].push_back(
        Entry{p.x, p.y, static_cast<std::uint32_t>(i)});
  }
  valid_until_ =
      max_speed_mps_ > 0.0
          ? now + sim::Duration::seconds(
                      std::min(kMaxEpochS, margin_m_ / max_speed_mps_))
          : sim::SimTime::max();
  seen_generation_ = mobility_.position_generation();
  built_ = true;
  ++rebuilds_;
}

void SpatialIndex::collect_candidates(mobility::Vec2 from,
                                      std::vector<std::uint32_t>& out) const {
  gather(from, range_m_ + margin_m_, out);
}

const std::vector<std::uint32_t>& SpatialIndex::candidates_for(std::size_t sender,
                                                               mobility::Vec2 from) {
  if (cache_stamp_.size() != node_count_) {
    cache_stamp_.assign(node_count_, 0);  // rebuilds_ >= 1 after any refresh
    cache_.assign(node_count_, {});
  }
  std::vector<std::uint32_t>& out = cache_[sender];
  if (cache_stamp_[sender] != rebuilds_) {
    out.clear();
    gather(from, range_m_ + 3.0 * margin_m_, out);
    cache_stamp_[sender] = rebuilds_;
  }
  return out;
}

void SpatialIndex::gather(mobility::Vec2 from, double reach,
                          std::vector<std::uint32_t>& out) const {
  const std::size_t c0 = col_of(from.x);
  const std::size_t r0 = row_of(from.y);

  // The 3 candidate columns; wrap models use modular adjacency (deduped
  // for grids narrower than three columns).
  const auto snx = static_cast<std::ptrdiff_t>(nx_);
  std::size_t cols[3];
  std::size_t n_cols = 0;
  for (std::ptrdiff_t dc = -1; dc <= 1; ++dc) {
    std::ptrdiff_t c = static_cast<std::ptrdiff_t>(c0) + dc;
    if (wrap_x_) {
      c = (c + snx) % snx;
    } else if (c < 0 || c >= snx) {
      continue;
    }
    const auto col = static_cast<std::size_t>(c);
    bool dup = false;
    for (std::size_t k = 0; k < n_cols; ++k) dup = dup || cols[k] == col;
    if (!dup) cols[n_cols++] = col;
  }

  // Prefilter against the bucketed positions: a node can have moved at
  // most margin_m_ since the rebuild (wrap models move continuously on
  // the cylinder, so the circular x-distance obeys the same bound), so
  // any node farther than `reach` from `from` at bucket time is provably
  // out of true range for every query the reach was chosen for. The
  // channel's exact check rejects those without touching any counter, so
  // dropping them here is unobservable — it only replaces ~4x as many
  // virtual position_of() calls (and a ~4x larger sort) with one
  // contiguous distance test per bucketed neighbor. A circular dx that
  // comes out negative (possible only for positions outside the declared
  // bounds) underestimates the distance, which errs toward keeping the
  // candidate.
  const double reach_sq = reach * reach;
  const double width = bounds_.width();
  for (std::ptrdiff_t dr = -1; dr <= 1; ++dr) {
    const std::ptrdiff_t r = static_cast<std::ptrdiff_t>(r0) + dr;
    if (r < 0 || r >= static_cast<std::ptrdiff_t>(ny_)) continue;
    const auto row = static_cast<std::size_t>(r);
    for (std::size_t k = 0; k < n_cols; ++k) {
      for (const Entry& e : cells_[row * nx_ + cols[k]]) {
        double dx = std::abs(from.x - e.x);
        if (wrap_x_ && width - dx < dx) dx = width - dx;
        const double dy = from.y - e.y;
        if (dx * dx + dy * dy > reach_sq) continue;
        out.push_back(e.id);
      }
    }
  }
  // Ascending node order, so the channel visits candidates exactly as the
  // brute-force scan would and schedules identical event sequences.
  std::sort(out.begin(), out.end());
}

}  // namespace ag::phy
