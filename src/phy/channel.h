// Broadcast wireless medium with unit-disk propagation: every radio within
// transmission_range_m of the sender (positions taken at transmit start)
// receives the frame after the propagation delay.
//
// Receiver lookup goes through a grid spatial index (phy/spatial_index.h)
// keyed off mobility positions — O(degree) per transmit instead of the
// brute-force O(n) scan — and the frame is scheduled as one shared
// immutable copy across all receivers. PhyParams::use_spatial_index (or
// the AG_SPATIAL_INDEX=off environment variable) restores the brute-force
// scan; both paths make bit-identical delivery decisions.
#ifndef AG_PHY_CHANNEL_H
#define AG_PHY_CHANNEL_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mac/frame.h"
#include "mobility/mobility_model.h"
#include "phy/phy_params.h"
#include "phy/spatial_index.h"
#include "sim/simulator.h"

namespace ag::phy {

class Radio;

// True when AG_SPATIAL_INDEX=off|0|false is set in the environment — the
// process-wide escape hatch disabling the spatial index (see README).
[[nodiscard]] bool spatial_index_env_off();

class Channel {
 public:
  Channel(sim::Simulator& sim, const mobility::MobilityModel& mobility, PhyParams params);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Radios must be attached in node-index order.
  void attach(Radio* radio);

  [[nodiscard]] const PhyParams& params() const { return params_; }
  [[nodiscard]] sim::Duration airtime_of(const mac::Frame& frame) const;

  // Called by the sending radio; delivers to all radios in range.
  void transmit(std::size_t sender, const mac::Frame& frame);

  // Test hook: returns true to silently drop the copy from `sender` to
  // `receiver` (deterministic loss injection for recovery tests).
  using DropHook = std::function<bool(std::size_t sender, std::size_t receiver)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  // --- fault hooks (driven by the FaultInjector; zero-cost when unused) ---
  // A downed radio radiates nothing and hears nothing.
  void set_node_down(std::size_t node, bool down);
  [[nodiscard]] bool is_node_down(std::size_t node) const {
    return node < down_.size() && down_[node] != 0;
  }
  // Installs a cut: frames cross only between nodes on the same side.
  // `side_of_node` must have one entry per attached radio.
  void set_partition(std::vector<std::uint8_t> side_of_node);
  void clear_partition() { partition_.clear(); }
  [[nodiscard]] bool partition_active() const { return !partition_.empty(); }
  // Whether a frame between `a` and `b` would currently be suppressed by
  // a downed endpoint or an active cut (range not considered) — the same
  // predicate transmit() applies per receiver, exposed for observational
  // layers like the DTN contact monitor.
  [[nodiscard]] bool link_allowed(std::size_t a, std::size_t b) const {
    if (is_node_down(a) || is_node_down(b)) return false;
    return partition_.empty() ||
           (a < partition_.size() && b < partition_.size() &&
            partition_[a] == partition_[b]);
  }

  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  // --- phy-level work counters (what transmit() decided per receiver) ---
  // Receptions scheduled (one per in-range, un-suppressed receiver).
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  // In-range receivers skipped because the receiver was down...
  [[nodiscard]] std::uint64_t suppressed_down() const { return suppressed_down_; }
  // ...or on the other side of an active partition. Counting only
  // in-range receivers keeps all three counters identical whether the
  // spatial index or the brute-force scan found the receiver.
  [[nodiscard]] std::uint64_t suppressed_partition() const { return suppressed_partition_; }

  [[nodiscard]] double distance_between(std::size_t a, std::size_t b) const;

  // True when receiver lookup goes through the spatial index (params flag
  // and the AG_SPATIAL_INDEX environment override, resolved at
  // construction).
  [[nodiscard]] bool spatial_index_enabled() const { return use_index_; }
  // The live index, or nullptr before the first transmit / when disabled.
  [[nodiscard]] const SpatialIndex* spatial_index() const { return index_.get(); }

 private:
  sim::Simulator& sim_;
  const mobility::MobilityModel& mobility_;
  PhyParams params_;
  std::vector<Radio*> radios_;
  DropHook drop_hook_;
  std::vector<std::uint8_t> down_;       // empty until a fault downs a node
  std::vector<std::uint8_t> partition_;  // empty while no cut is active
  std::uint64_t transmissions_{0};
  std::uint64_t deliveries_{0};
  std::uint64_t suppressed_down_{0};
  std::uint64_t suppressed_partition_{0};
  bool use_index_;
  std::unique_ptr<SpatialIndex> index_;   // built lazily at first transmit
  std::vector<std::uint32_t> candidates_; // reused per transmit; no per-call alloc
  // Receivers of the in-flight transmit with their propagation delay (us),
  // in ascending node order. Receivers sharing a delay are delivered by
  // one batched event: at unit-disk ranges the +1 us quantization makes
  // the delay identical for every receiver, so a transmission schedules
  // one event instead of one per receiver — with execution order
  // identical to per-receiver events (FIFO ties, ascending node order).
  std::vector<std::pair<std::int64_t, std::uint32_t>> pending_;
};

}  // namespace ag::phy

#endif  // AG_PHY_CHANNEL_H
