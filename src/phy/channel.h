// Broadcast wireless medium with unit-disk propagation: every radio within
// transmission_range_m of the sender (positions taken at transmit start)
// receives the frame after the propagation delay.
#ifndef AG_PHY_CHANNEL_H
#define AG_PHY_CHANNEL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "mac/frame.h"
#include "mobility/mobility_model.h"
#include "phy/phy_params.h"
#include "sim/simulator.h"

namespace ag::phy {

class Radio;

class Channel {
 public:
  Channel(sim::Simulator& sim, const mobility::MobilityModel& mobility, PhyParams params);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Radios must be attached in node-index order.
  void attach(Radio* radio);

  [[nodiscard]] const PhyParams& params() const { return params_; }
  [[nodiscard]] sim::Duration airtime_of(const mac::Frame& frame) const;

  // Called by the sending radio; delivers to all radios in range.
  void transmit(std::size_t sender, const mac::Frame& frame);

  // Test hook: returns true to silently drop the copy from `sender` to
  // `receiver` (deterministic loss injection for recovery tests).
  using DropHook = std::function<bool(std::size_t sender, std::size_t receiver)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  [[nodiscard]] double distance_between(std::size_t a, std::size_t b) const;

 private:
  sim::Simulator& sim_;
  const mobility::MobilityModel& mobility_;
  PhyParams params_;
  std::vector<Radio*> radios_;
  DropHook drop_hook_;
  std::uint64_t transmissions_{0};
};

}  // namespace ag::phy

#endif  // AG_PHY_CHANNEL_H
