// Broadcast wireless medium with unit-disk propagation: every radio within
// transmission_range_m of the sender (positions taken at transmit start)
// receives the frame after the propagation delay.
//
// Receiver lookup goes through a grid spatial index (phy/spatial_index.h)
// keyed off mobility positions — O(degree) per transmit instead of the
// brute-force O(n) scan — and the frame is scheduled as one shared
// immutable copy across all receivers. PhyParams::use_spatial_index (or
// the AG_SPATIAL_INDEX=off environment variable) restores the brute-force
// scan; both paths make bit-identical delivery decisions.
#ifndef AG_PHY_CHANNEL_H
#define AG_PHY_CHANNEL_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mac/frame.h"
#include "mobility/mobility_model.h"
#include "phy/phy_params.h"
#include "phy/spatial_index.h"
#include "sim/simulator.h"

namespace ag::phy {

class BatchedPhy;
class Radio;

// True when AG_SPATIAL_INDEX=off|0|false is set in the environment — the
// process-wide escape hatch disabling the spatial index (see README).
[[nodiscard]] bool spatial_index_env_off();

// True unless AG_BATCHED_PHY=off|0|false is set in the environment — the
// process-wide escape hatch selecting the per-receiver reference phy
// engine (see README and phy/batched_phy.h). Combined with
// PhyParams::use_batched_phy at Channel construction.
[[nodiscard]] bool batched_phy_enabled();

class Channel {
 public:
  Channel(sim::Simulator& sim, const mobility::MobilityModel& mobility, PhyParams params);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Radios must be attached in node-index order.
  void attach(Radio* radio);

  [[nodiscard]] const PhyParams& params() const { return params_; }
  [[nodiscard]] sim::Duration airtime_of(const mac::Frame& frame) const;

  // Called by the sending radio; delivers to all radios in range.
  void transmit(std::size_t sender, const mac::Frame& frame);

  // Test hook: returns true to silently drop the copy from `sender` to
  // `receiver` (deterministic loss injection for recovery tests).
  using DropHook = std::function<bool(std::size_t sender, std::size_t receiver)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  // --- fault hooks (driven by the FaultInjector; zero-cost when unused) ---
  // A downed radio radiates nothing and hears nothing.
  void set_node_down(std::size_t node, bool down);
  [[nodiscard]] bool is_node_down(std::size_t node) const {
    return node < down_.size() && down_[node] != 0;
  }
  // Installs a cut: frames cross only between nodes on the same side.
  // `side_of_node` must have one entry per attached radio.
  void set_partition(std::vector<std::uint8_t> side_of_node);
  void clear_partition() { partition_.clear(); }
  [[nodiscard]] bool partition_active() const { return !partition_.empty(); }
  // Whether a frame between `a` and `b` would currently be suppressed by
  // a downed endpoint or an active cut (range not considered) — the same
  // predicate transmit() applies per receiver, exposed for observational
  // layers like the DTN contact monitor.
  [[nodiscard]] bool link_allowed(std::size_t a, std::size_t b) const {
    if (is_node_down(a) || is_node_down(b)) return false;
    return partition_.empty() ||
           (a < partition_.size() && b < partition_.size() &&
            partition_[a] == partition_[b]);
  }

  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  // --- phy-level work counters (what transmit() decided per receiver) ---
  // Receptions scheduled (one per in-range, un-suppressed receiver).
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  // In-range receivers skipped because the receiver was down...
  [[nodiscard]] std::uint64_t suppressed_down() const { return suppressed_down_; }
  // ...or on the other side of an active partition. Counting only
  // in-range receivers keeps all three counters identical whether the
  // spatial index or the brute-force scan found the receiver.
  [[nodiscard]] std::uint64_t suppressed_partition() const { return suppressed_partition_; }

  [[nodiscard]] double distance_between(std::size_t a, std::size_t b) const;

  // True when receiver lookup goes through the spatial index (params flag
  // and the AG_SPATIAL_INDEX environment override, resolved at
  // construction).
  [[nodiscard]] bool spatial_index_enabled() const { return use_index_; }
  // The live index, or nullptr before the first transmit / when disabled.
  [[nodiscard]] const SpatialIndex* spatial_index() const { return index_.get(); }

  // The batched delivery engine, or nullptr when the per-receiver
  // reference engine is selected (params flag and the AG_BATCHED_PHY
  // environment override, resolved at construction). Radios pick their
  // state backend from this at construction.
  [[nodiscard]] BatchedPhy* batched_engine() { return batched_.get(); }
  // --- batched-engine elision accounting (zero in the reference engine;
  // see stats::NetworkTotals::phy_events_elided) ---
  // Receptions resolved analytically with no completion event scheduled.
  [[nodiscard]] std::uint64_t rx_elided() const;
  // Live receivers beyond the first swept by one completion event.
  [[nodiscard]] std::uint64_t rx_coalesced() const;

 private:
  friend class BatchedPhy;

  // Pooled receiver buffers for the delivery/completion event lambdas.
  // The pool is shared_ptr-held because the lambdas (and their
  // pool-returning deleters) can outlive the Channel: harness::Network
  // destroys the channel before the simulator.
  using RxBuf = std::vector<std::uint32_t>;
  struct RxBufPool {
    std::vector<std::unique_ptr<RxBuf>> free_list;
  };
  [[nodiscard]] std::shared_ptr<RxBuf> acquire_rx_buf();

  // Delivery-time dispatch for one frame's receiver group: per-receiver
  // begin_reception in the reference engine, one batched-engine group
  // (with the cell-timeline verdict) otherwise.
  void deliver_to(const RxBuf& rx, const std::shared_ptr<const mac::Frame>& frame,
                  sim::SimTime end, std::size_t cell_col, std::size_t cell_row);

  // --- per-cell airtime timeline (batched engine + spatial index only) --
  // cell_busy_until_[row * nx + col] is a monotone high-water mark over
  // the completion times of every frame group delivered with its sender
  // in that cell, stamped over the 3x3 cell window that provably contains
  // all its receivers. A new group whose 5x5 window (one extra ring
  // absorbs node motion between stamp and query) is strictly below `now`
  // is uncontended: no receiver can have a reception in flight, so the
  // engine's collision branches are skipped in one pass per cell.
  // Monotone maxima are never decremented — fully-elided groups need no
  // cleanup event; stale future stamps only cost the fast path.
  void ensure_timeline();
  void stamp_timeline(std::size_t col, std::size_t row, sim::SimTime end);
  [[nodiscard]] bool timeline_clear(std::size_t col, std::size_t row,
                                    sim::SimTime now) const;
  sim::Simulator& sim_;
  const mobility::MobilityModel& mobility_;
  PhyParams params_;
  std::vector<Radio*> radios_;
  DropHook drop_hook_;
  std::vector<std::uint8_t> down_;       // empty until a fault downs a node
  std::vector<std::uint8_t> partition_;  // empty while no cut is active
  std::uint64_t transmissions_{0};
  std::uint64_t deliveries_{0};
  std::uint64_t suppressed_down_{0};
  std::uint64_t suppressed_partition_{0};
  bool use_index_;
  std::unique_ptr<SpatialIndex> index_;   // built lazily at first transmit
  std::unique_ptr<BatchedPhy> batched_;   // nullptr in the reference engine
  // Receivers of the in-flight transmit with their propagation delay (us),
  // in ascending node order. Receivers sharing a delay are delivered by
  // one batched event: at unit-disk ranges the +1 us quantization makes
  // the delay identical for every receiver, so a transmission schedules
  // one event instead of one per receiver — with execution order
  // identical to per-receiver events (FIFO ties, ascending node order).
  std::vector<std::pair<std::int64_t, std::uint32_t>> pending_;
  // Distinct propagation delays of the in-flight transmit, in first-
  // occurrence order, each owning a pooled receiver buffer — the reused
  // scratch of the single-pass group-by (the delay count is 1 at
  // unit-disk ranges, so the per-entry scan over it is O(1)).
  std::vector<std::pair<std::int64_t, std::shared_ptr<RxBuf>>> groups_;
  std::shared_ptr<RxBufPool> rx_pool_;
  // Memoized airtime_of per wire_bytes value (index = bytes): the same
  // FP divide/cast was recomputed for every transmission on the hottest
  // path. -1 marks an uncomputed slot.
  mutable std::vector<std::int64_t> airtime_us_by_bytes_;
  std::vector<sim::SimTime> cell_busy_until_;  // empty until ensure_timeline
  std::size_t timeline_nx_{0};
  std::size_t timeline_ny_{0};
  bool timeline_wrap_x_{false};
};

}  // namespace ag::phy

#endif  // AG_PHY_CHANNEL_H
