// Broadcast wireless medium with unit-disk propagation: every radio within
// transmission_range_m of the sender (positions taken at transmit start)
// receives the frame after the propagation delay.
#ifndef AG_PHY_CHANNEL_H
#define AG_PHY_CHANNEL_H

#include <cstdint>
#include <functional>
#include <vector>

#include "mac/frame.h"
#include "mobility/mobility_model.h"
#include "phy/phy_params.h"
#include "sim/simulator.h"

namespace ag::phy {

class Radio;

class Channel {
 public:
  Channel(sim::Simulator& sim, const mobility::MobilityModel& mobility, PhyParams params);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Radios must be attached in node-index order.
  void attach(Radio* radio);

  [[nodiscard]] const PhyParams& params() const { return params_; }
  [[nodiscard]] sim::Duration airtime_of(const mac::Frame& frame) const;

  // Called by the sending radio; delivers to all radios in range.
  void transmit(std::size_t sender, const mac::Frame& frame);

  // Test hook: returns true to silently drop the copy from `sender` to
  // `receiver` (deterministic loss injection for recovery tests).
  using DropHook = std::function<bool(std::size_t sender, std::size_t receiver)>;
  void set_drop_hook(DropHook hook) { drop_hook_ = std::move(hook); }

  // --- fault hooks (driven by the FaultInjector; zero-cost when unused) ---
  // A downed radio radiates nothing and hears nothing.
  void set_node_down(std::size_t node, bool down);
  [[nodiscard]] bool is_node_down(std::size_t node) const {
    return node < down_.size() && down_[node] != 0;
  }
  // Installs a cut: frames cross only between nodes on the same side.
  // `side_of_node` must have one entry per attached radio.
  void set_partition(std::vector<std::uint8_t> side_of_node);
  void clear_partition() { partition_.clear(); }
  [[nodiscard]] bool partition_active() const { return !partition_.empty(); }

  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  [[nodiscard]] double distance_between(std::size_t a, std::size_t b) const;

 private:
  sim::Simulator& sim_;
  const mobility::MobilityModel& mobility_;
  PhyParams params_;
  std::vector<Radio*> radios_;
  DropHook drop_hook_;
  std::vector<std::uint8_t> down_;       // empty until a fault downs a node
  std::vector<std::uint8_t> partition_;  // empty while no cut is active
  std::uint64_t transmissions_{0};
};

}  // namespace ag::phy

#endif  // AG_PHY_CHANNEL_H
