// Application-level multicast data. The same struct flows through the
// original multicast path and inside gossip replies, so recovery is
// indistinguishable from normal delivery above the gossip layer.
#ifndef AG_NET_DATA_H
#define AG_NET_DATA_H

#include <cstdint>

#include "net/ids.h"
#include "sim/time.h"

namespace ag::net {

struct MulticastData {
  GroupId group;
  NodeId origin;            // sending group member
  std::uint32_t seq{0};     // per-origin sequence number, starts at 0
  std::uint16_t payload_bytes{64};
  sim::SimTime sent_at;     // origin timestamp (latency accounting)
  std::uint8_t hops{0};     // hops traveled so far (member-cache distance hint)
};

// Identifies one multicast message: sequence numbers are per-origin
// (paper section 4.4: "the sequence number is a 2 tuple including the
// sender address and a sequence number").
struct MsgId {
  NodeId origin;
  std::uint32_t seq{0};

  constexpr auto operator<=>(const MsgId&) const = default;
};

}  // namespace ag::net

template <>
struct std::hash<ag::net::MsgId> {
  std::size_t operator()(const ag::net::MsgId& m) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(m.origin.value()) << 32) | m.seq);
  }
};

#endif  // AG_NET_DATA_H
