#include "net/data_plane.h"

#include "sim/env.h"

namespace ag::net {

bool dense_tables_enabled() { return !sim::env_flag_off("AG_DENSE_TABLES"); }

DataPlaneCounters& data_plane_counters() {
  thread_local DataPlaneCounters counters;
  return counters;
}

PacketPool& PacketPool::local() {
  thread_local PacketPool pool;
  return pool;
}

PacketPool::~PacketPool() {
  // ag-lint: allow(rawalloc, the pool IS the allocator: slab teardown)
  for (Packet* p : free_) delete p;
}

void PacketPool::clear() {
  // ag-lint: allow(rawalloc, the pool IS the allocator: slab teardown)
  for (Packet* p : free_) delete p;
  free_.clear();
}

PacketPtr PacketPool::make(Packet&& packet) {
  DataPlaneCounters& c = data_plane_counters();
  Packet* raw;
  if (!free_.empty()) {
    ++c.pool_hits;
    raw = free_.back();
    free_.pop_back();
    *raw = std::move(packet);
  } else {
    ++c.pool_misses;
    // ag-lint: allow(rawalloc, the pool IS the allocator: slab creation)
    raw = new Packet(std::move(packet));
  }
  return PacketPtr{raw, &PacketPool::recycle};
}

void PacketPool::recycle(const Packet* packet) {
  // Packets live and die on the thread that simulates them, so the local
  // pool here is the one that handed the slab out (or an equally good
  // free list on whatever thread drops the last reference).
  PacketPool& pool = local();
  auto* raw = const_cast<Packet*>(packet);
  if (pool.free_.size() >= kMaxFree) {
    // ag-lint: allow(rawalloc, the pool IS the allocator: overflow release)
    delete raw;
    return;
  }
  pool.free_.push_back(raw);
}

}  // namespace ag::net
