// Dense data-plane plumbing shared by every layer: the AG_DENSE_TABLES
// escape hatch, per-thread allocation/probe counters, and the pooled
// shared-packet allocator the zero-copy forwarding path rides on.
#ifndef AG_NET_DATA_PLANE_H
#define AG_NET_DATA_PLANE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"

namespace ag::net {

// True unless AG_DENSE_TABLES=off|0|false is set in the environment — the
// process-wide escape hatch that swaps every NodeTable/DenseMap onto an
// ordered std::map reference backend. Both backends iterate in ascending
// key order, so runs are bit-identical either way (pinned by the dense
// equivalence suite); the hatch exists to bisect dense-container bugs.
[[nodiscard]] bool dense_tables_enabled();

// Per-thread data-plane work counters. These count logical operations,
// not physical probe steps, so the dense and reference backends report
// identical numbers — Network diffs them per run into NetworkTotals and
// every BENCH_*.json.
struct DataPlaneCounters {
  std::uint64_t table_probes{0};  // NodeTable/DenseMap lookups + mutations
  std::uint64_t pool_hits{0};     // packets served from the free list
  std::uint64_t pool_misses{0};   // packets that had to allocate
};
[[nodiscard]] DataPlaneCounters& data_plane_counters();

// Shared immutable packet flowing router enqueue -> MAC queue -> Frame ->
// Channel -> every receiver. Copy-on-write: a relay that mutates
// ttl/hops/hop_count builds one fresh pooled packet; nothing downstream
// copies the payload again.
using PacketPtr = std::shared_ptr<const Packet>;

// Thread-local free list for the short-lived control packets (hellos,
// gossip walks and replies, RREQs, MACTs): reuses Packet slabs — and the
// vector capacity inside their payloads — so the per-hop forwarding path
// allocates at most a shared_ptr control block.
class PacketPool {
 public:
  [[nodiscard]] static PacketPool& local();

  // Wraps `packet` in a pooled shared slab (recycled when available).
  [[nodiscard]] PacketPtr make(Packet&& packet);

  // Drops the free list. harness::Network calls this at construction so
  // the per-run pool_hits/pool_misses split never depends on which runs
  // a worker thread happened to execute before — BENCH_*.json stays
  // byte-identical between serial and parallel builds. Slabs still in
  // flight are unaffected (they re-enter the emptied list when dropped).
  void clear();

  [[nodiscard]] std::size_t free_count() const { return free_.size(); }

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

 private:
  static void recycle(const Packet* packet);

  static constexpr std::size_t kMaxFree = 4096;
  std::vector<Packet*> free_;
};

// Convenience for the routers' send paths.
[[nodiscard]] inline PacketPtr make_packet(NodeId src, NodeId dst, std::uint8_t ttl,
                                           Payload payload) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.ttl = ttl;
  pkt.payload = std::move(payload);
  return PacketPool::local().make(std::move(pkt));
}

}  // namespace ag::net

#endif  // AG_NET_DATA_PLANE_H
