// Flat per-node (or per-group) state table: a vector indexed by
// Id::value() with a compact occupancy bitmap. Replaces the per-node
// std::unordered_map in the MAC/router/gossip hot paths — node ids are
// small and dense (0..n-1), so a lookup is one bounds check plus one bit
// test, and iteration is a bitmap scan in ascending key order.
//
// The AG_DENSE_TABLES=off escape hatch (net::dense_tables_enabled())
// swaps the storage for an ordered std::map reference backend at
// construction. Both backends iterate ascending, so simulations are
// bit-identical either way — the equivalence suite pins it.
//
// Contract notes:
//  - Keys must be real ids (never invalid()/broadcast()); enforced by
//    assert. Values must be default-constructible; erase() resets the
//    slot to T{}.
//  - Growth (first insert of a key beyond capacity) moves values: like
//    std::vector, pointers from find() are invalidated by inserts of new
//    keys, unlike std::unordered_map. Call sites were audited for this.
//  - for_each()/erase_if() visit keys in ascending order; the callback
//    must not insert into the table it is iterating (erasing the visited
//    entry through erase_if is fine).
#ifndef AG_NET_NODE_TABLE_H
#define AG_NET_NODE_TABLE_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "net/data_plane.h"
#include "net/ids.h"

namespace ag::net {

template <typename T, typename Key = NodeId>
class NodeTable {
 public:
  NodeTable() : dense_{dense_tables_enabled()} {}

  [[nodiscard]] T* find(Key key) {
    ++dpc_->table_probes;
    if (dense_) {
      const std::uint32_t k = key.value();
      return occupied(k) ? &slots_[k] : nullptr;
    }
    auto it = fallback_.find(key.value());
    return it == fallback_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const T* find(Key key) const {
    return const_cast<NodeTable*>(this)->find(key);
  }
  [[nodiscard]] bool contains(Key key) const { return find(key) != nullptr; }

  // Inserts a default-constructed value when the key is absent.
  [[nodiscard]] T& operator[](Key key) { return *try_emplace(key).first; }

  // Returns {value, inserted}. The existing value is untouched when the
  // key is already present.
  std::pair<T*, bool> try_emplace(Key key, T value = T{}) {
    ++dpc_->table_probes;
    const std::uint32_t k = checked(key);
    if (dense_) {
      grow_to(k);
      if (occupied(k)) return {&slots_[k], false};
      set_occupied(k);
      ++count_;
      slots_[k] = std::move(value);
      return {&slots_[k], true};
    }
    auto [it, inserted] = fallback_.try_emplace(k, std::move(value));
    return {&it->second, inserted};
  }

  bool erase(Key key) {
    ++dpc_->table_probes;
    const std::uint32_t k = key.value();
    if (dense_) {
      if (!occupied(k)) return false;
      clear_occupied(k);
      slots_[k] = T{};  // free captured state eagerly
      --count_;
      return true;
    }
    return fallback_.erase(k) > 0;
  }

  [[nodiscard]] std::size_t size() const { return dense_ ? count_ : fallback_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  void clear() {
    if (dense_) {
      for (std::size_t w = 0; w < occupied_.size(); ++w) {
        std::uint64_t bits = occupied_[w];
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          slots_[w * 64 + static_cast<std::size_t>(b)] = T{};
        }
        occupied_[w] = 0;
      }
      count_ = 0;
    } else {
      fallback_.clear();
    }
  }

  // Visits entries in ascending key order; f(Key, T&).
  template <typename F>
  void for_each(F&& f) {
    if (dense_) {
      for (std::size_t w = 0; w < occupied_.size(); ++w) {
        std::uint64_t bits = occupied_[w];
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          const std::uint32_t k = static_cast<std::uint32_t>(w * 64) +
                                  static_cast<std::uint32_t>(b);
          f(Key{k}, slots_[k]);
        }
      }
    } else {
      for (auto& [k, v] : fallback_) f(Key{k}, v);
    }
  }
  template <typename F>
  void for_each(F&& f) const {
    const_cast<NodeTable*>(this)->for_each(
        [&f](Key k, T& v) { f(k, static_cast<const T&>(v)); });
  }

  // Erases entries for which pred(Key, T&) returns true, visiting in
  // ascending key order. Returns the number erased.
  template <typename F>
  std::size_t erase_if(F&& pred) {
    std::size_t erased = 0;
    if (dense_) {
      for (std::size_t w = 0; w < occupied_.size(); ++w) {
        std::uint64_t bits = occupied_[w];
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          const std::uint32_t k = static_cast<std::uint32_t>(w * 64) +
                                  static_cast<std::uint32_t>(b);
          if (pred(Key{k}, slots_[k])) {
            occupied_[w] &= ~(std::uint64_t{1} << b);
            slots_[k] = T{};
            --count_;
            ++erased;
          }
        }
      }
    } else {
      for (auto it = fallback_.begin(); it != fallback_.end();) {
        if (pred(Key{it->first}, it->second)) {
          it = fallback_.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

 private:
  // Node/group ids are assigned densely from 0; anything near the
  // invalid()/broadcast() sentinels is a bug, and a huge key would
  // allocate a proportionally huge slot vector.
  static constexpr std::uint32_t kMaxKey = 1u << 22;

  static std::uint32_t checked(Key key) {
    assert(key.value() < kMaxKey && "NodeTable key out of dense range");
    return key.value();
  }

  [[nodiscard]] bool occupied(std::uint32_t k) const {
    return k < slots_.size() &&
           (occupied_[k / 64] & (std::uint64_t{1} << (k % 64))) != 0;
  }
  void set_occupied(std::uint32_t k) {
    occupied_[k / 64] |= std::uint64_t{1} << (k % 64);
  }
  void clear_occupied(std::uint32_t k) {
    occupied_[k / 64] &= ~(std::uint64_t{1} << (k % 64));
  }
  void grow_to(std::uint32_t k) {
    if (k < slots_.size()) return;
    std::size_t target = slots_.size() < 16 ? 16 : slots_.size() * 2;
    if (target <= k) target = static_cast<std::size_t>(k) + 1;
    slots_.resize(target);
    occupied_.resize((target + 63) / 64, 0);
  }

  bool dense_;
  DataPlaneCounters* dpc_{&data_plane_counters()};
  std::vector<T> slots_;
  std::vector<std::uint64_t> occupied_;
  std::size_t count_{0};
  std::map<std::uint32_t, T> fallback_;
};

// Set-of-ids facade over NodeTable (group membership, etc.).
template <typename Key = NodeId>
class IdSet {
 public:
  bool insert(Key key) { return table_.try_emplace(key).second; }
  bool erase(Key key) { return table_.erase(key); }
  [[nodiscard]] bool contains(Key key) const { return table_.contains(key); }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] bool empty() const { return table_.empty(); }
  void clear() { table_.clear(); }
  // Visits members in ascending key order; f(Key).
  template <typename F>
  void for_each(F&& f) const {
    table_.for_each([&f](Key k, const char&) { f(k); });
  }

 private:
  NodeTable<char, Key> table_;
};

}  // namespace ag::net

#endif  // AG_NET_NODE_TABLE_H
