#include "net/packet.h"

namespace ag::net {
namespace {

constexpr std::uint32_t kIpHeaderBytes = 20;

std::uint32_t payload_bytes(const Payload& p) {
  return std::visit(
      overloaded{
          [](const MulticastData& d) -> std::uint32_t {
            return 8u + d.payload_bytes;  // group/seq encapsulation + payload
          },
          [](const aodv::RreqMsg& m) -> std::uint32_t {
            return 24u + (m.join || m.repair ? 8u : 0u) + (m.mgl_present ? 4u : 0u);
          },
          [](const aodv::RrepMsg& m) -> std::uint32_t {
            return 20u + (m.join ? 16u : 0u);
          },
          [](const aodv::RerrMsg& m) -> std::uint32_t {
            return 4u + 8u * static_cast<std::uint32_t>(m.unreachable.size());
          },
          [](const aodv::HelloMsg&) -> std::uint32_t { return 12u; },
          [](const maodv::MactMsg&) -> std::uint32_t { return 12u; },
          [](const maodv::GrphMsg& m) -> std::uint32_t {
            return 16u + 4u * static_cast<std::uint32_t>(m.tree_children.size());
          },
          [](const gossip::GossipMsg& m) -> std::uint32_t {
            std::uint32_t bytes = 12u + 8u * static_cast<std::uint32_t>(m.lost.size()) +
                                  8u * static_cast<std::uint32_t>(m.expected.size());
            for (const net::MulticastData& d : m.pushed) bytes += 8u + d.payload_bytes;
            return bytes;
          },
          [](const gossip::GossipReplyMsg& m) -> std::uint32_t {
            return 12u + 8u + m.data.payload_bytes;
          },
          [](const gossip::NearestMemberMsg&) -> std::uint32_t { return 8u; },
          [](const odmrp::JoinQueryMsg&) -> std::uint32_t { return 16u; },
          [](const odmrp::JoinReplyMsg& m) -> std::uint32_t {
            return 8u + 12u * static_cast<std::uint32_t>(m.entries.size());
          },
          [](const dtn::CustodyHandoffMsg& m) -> std::uint32_t {
            // custody header (flags + timestamps) + data encapsulation.
            return 12u + 8u + m.data.payload_bytes;
          },
      },
      p);
}

}  // namespace

std::uint32_t Packet::wire_bytes() const { return kIpHeaderBytes + payload_bytes(payload); }

}  // namespace ag::net
