// Strongly typed identifiers shared by every layer of the stack.
#ifndef AG_NET_IDS_H
#define AG_NET_IDS_H

#include <compare>
#include <cstdint>
#include <functional>

namespace ag::net {

namespace detail {

// 32-bit id with a distinct C++ type per Tag so a GroupId can never be
// passed where a NodeId is expected.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  explicit constexpr Id(std::uint32_t value) : value_{value} {}

  static constexpr Id invalid() { return Id{0xFFFFFFFFu}; }
  static constexpr Id broadcast() { return Id{0xFFFFFFFEu}; }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool is_valid() const { return *this != invalid(); }
  [[nodiscard]] constexpr bool is_broadcast() const { return *this == broadcast(); }

  constexpr auto operator<=>(const Id&) const = default;

 private:
  std::uint32_t value_{0xFFFFFFFFu};
};

}  // namespace detail

using NodeId = detail::Id<struct NodeIdTag>;
using GroupId = detail::Id<struct GroupIdTag>;

// AODV destination sequence number with the draft's circular "fresher than"
// comparison (signed 32-bit difference, robust to wraparound).
class SeqNo {
 public:
  constexpr SeqNo() = default;
  explicit constexpr SeqNo(std::uint32_t value) : value_{value} {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool fresher_than(SeqNo other) const {
    return static_cast<std::int32_t>(value_ - other.value_) > 0;
  }
  [[nodiscard]] constexpr bool at_least_as_fresh_as(SeqNo other) const {
    return static_cast<std::int32_t>(value_ - other.value_) >= 0;
  }
  constexpr SeqNo next() const { return SeqNo{value_ + 1}; }
  constexpr bool operator==(const SeqNo&) const = default;

 private:
  std::uint32_t value_{0};
};

}  // namespace ag::net

template <typename Tag>
struct std::hash<ag::net::detail::Id<Tag>> {
  std::size_t operator()(const ag::net::detail::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

#endif  // AG_NET_IDS_H
