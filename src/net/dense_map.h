// Small open-addressing hash map for the sparse 64-bit keys the routers
// dedup on — (origin, seq) message ids, (origin, rreq_id) flood dedup,
// (group, node) pairs. Linear probing over a power-of-two slot array with
// tombstone reuse; a lookup is one multiply-shift hash plus a short probe
// run, with no per-node allocation.
//
// Iteration is deliberately restricted to erase_if(), in unspecified
// order: every current use is a commutative expiry purge, so the
// simulation cannot observe slot order. Order-sensitive iteration belongs
// in NodeTable (ascending) or an explicit side structure (HistoryTable's
// FIFO deque). The AG_DENSE_TABLES=off hatch swaps in an ordered std::map
// reference backend (see node_table.h; same observable behaviour).
#ifndef AG_NET_DENSE_MAP_H
#define AG_NET_DENSE_MAP_H

#include <cassert>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "net/data.h"
#include "net/data_plane.h"

namespace ag::net {

// Packs a MsgId into a DenseMap key. Origins are real node ids, so the
// top bits never collide with the empty/tombstone sentinels.
[[nodiscard]] inline std::uint64_t msg_key(const MsgId& id) {
  return (static_cast<std::uint64_t>(id.origin.value()) << 32) | id.seq;
}

template <typename V>
class DenseMap {
 public:
  DenseMap() : dense_{dense_tables_enabled()} {}

  [[nodiscard]] V* find(std::uint64_t key) {
    ++dpc_->table_probes;
    if (dense_) {
      if (slots_.empty()) return nullptr;
      std::size_t i = index_of(key);
      while (true) {
        Slot& s = slots_[i];
        if (s.key == key) return &s.value;
        if (s.key == kEmpty) return nullptr;
        i = (i + 1) & mask_;
      }
    }
    auto it = fallback_.find(key);
    return it == fallback_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const V* find(std::uint64_t key) const {
    return const_cast<DenseMap*>(this)->find(key);
  }
  [[nodiscard]] bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  // Returns {value, inserted}; the existing value is untouched when the
  // key is already present.
  std::pair<V*, bool> try_emplace(std::uint64_t key, V value = V{}) {
    ++dpc_->table_probes;
    assert(key < kTombstone && "DenseMap key collides with sentinel");
    if (!dense_) {
      auto [it, inserted] = fallback_.try_emplace(key, std::move(value));
      return {&it->second, inserted};
    }
    maybe_grow();
    std::size_t i = index_of(key);
    std::size_t first_tomb = kNoSlot;
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) return {&s.value, false};
      if (s.key == kTombstone && first_tomb == kNoSlot) first_tomb = i;
      if (s.key == kEmpty) {
        const std::size_t target = first_tomb == kNoSlot ? i : first_tomb;
        Slot& t = slots_[target];
        if (t.key == kTombstone) --tombstones_;
        t.key = key;
        t.value = std::move(value);
        ++count_;
        return {&t.value, true};
      }
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] V& operator[](std::uint64_t key) { return *try_emplace(key).first; }

  bool erase(std::uint64_t key) {
    ++dpc_->table_probes;
    if (!dense_) return fallback_.erase(key) > 0;
    if (slots_.empty()) return false;
    std::size_t i = index_of(key);
    while (true) {
      Slot& s = slots_[i];
      if (s.key == key) {
        s.key = kTombstone;
        s.value = V{};
        --count_;
        ++tombstones_;
        return true;
      }
      if (s.key == kEmpty) return false;
      i = (i + 1) & mask_;
    }
  }

  [[nodiscard]] std::size_t size() const { return dense_ ? count_ : fallback_.size(); }
  [[nodiscard]] bool empty() const { return size() == 0; }

  void clear() {
    if (dense_) {
      slots_.clear();
      mask_ = 0;
      count_ = 0;
      tombstones_ = 0;
    } else {
      fallback_.clear();
    }
  }

  // Erases entries for which pred(key, V&) returns true. Unspecified
  // order — use only for commutative purges (see header comment).
  template <typename F>
  std::size_t erase_if(F&& pred) {
    std::size_t erased = 0;
    if (dense_) {
      for (Slot& s : slots_) {
        if (s.key >= kTombstone) continue;
        if (pred(s.key, s.value)) {
          s.key = kTombstone;
          s.value = V{};
          --count_;
          ++tombstones_;
          ++erased;
        }
      }
    } else {
      for (auto it = fallback_.begin(); it != fallback_.end();) {
        if (pred(it->first, it->second)) {
          it = fallback_.erase(it);
          ++erased;
        } else {
          ++it;
        }
      }
    }
    return erased;
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  static constexpr std::uint64_t kTombstone = ~std::uint64_t{0} - 1;
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  struct Slot {
    std::uint64_t key{kEmpty};
    V value{};
  };

  [[nodiscard]] std::size_t index_of(std::uint64_t key) const {
    // splitmix64 finalizer: full-avalanche spread of packed-id keys.
    std::uint64_t h = key + 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(h ^ (h >> 31)) & mask_;
  }

  void maybe_grow() {
    if (slots_.empty()) {
      slots_.assign(16, Slot{});
      mask_ = 15;
      return;
    }
    // Keep load (live + tombstones) below 70%.
    if ((count_ + tombstones_ + 1) * 10 < slots_.size() * 7) return;
    // Double only when live entries justify it; otherwise rebuild at the
    // same size to flush tombstones.
    const std::size_t target =
        (count_ + 1) * 10 >= slots_.size() * 5 ? slots_.size() * 2 : slots_.size();
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(target, Slot{});
    mask_ = target - 1;
    count_ = 0;
    tombstones_ = 0;
    for (Slot& s : old) {
      if (s.key >= kTombstone) continue;
      std::size_t i = index_of(s.key);
      while (slots_[i].key != kEmpty) i = (i + 1) & mask_;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
      ++count_;
    }
  }

  bool dense_;
  DataPlaneCounters* dpc_{&data_plane_counters()};
  std::vector<Slot> slots_;
  std::size_t mask_{0};
  std::size_t count_{0};
  std::size_t tombstones_{0};
  std::map<std::uint64_t, V> fallback_;
};

// Set facade over DenseMap for message-id dedup windows.
class DenseSet {
 public:
  bool insert(std::uint64_t key) { return map_.try_emplace(key).second; }
  bool erase(std::uint64_t key) { return map_.erase(key); }
  [[nodiscard]] bool contains(std::uint64_t key) const { return map_.contains(key); }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

 private:
  DenseMap<char> map_;
};

}  // namespace ag::net

#endif  // AG_NET_DENSE_MAP_H
