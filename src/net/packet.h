// The network-layer packet: src/dst plus a typed payload. std::variant
// instead of byte serialization — the simulation never leaves one address
// space, and exhaustive std::visit gives compile-time coverage of every
// message type (adding a message without handling it breaks the build).
#ifndef AG_NET_PACKET_H
#define AG_NET_PACKET_H

#include <cstdint>
#include <variant>

#include "aodv/messages.h"
#include "dtn/messages.h"
#include "gossip/messages.h"
#include "maodv/messages.h"
#include "net/data.h"
#include "net/ids.h"
#include "odmrp/messages.h"

namespace ag::net {

using Payload =
    std::variant<MulticastData, aodv::RreqMsg, aodv::RrepMsg, aodv::RerrMsg,
                 aodv::HelloMsg, maodv::MactMsg, maodv::GrphMsg, gossip::GossipMsg,
                 gossip::GossipReplyMsg, gossip::NearestMemberMsg,
                 odmrp::JoinQueryMsg, odmrp::JoinReplyMsg, dtn::CustodyHandoffMsg>;

struct Packet {
  NodeId src;
  NodeId dst{NodeId::broadcast()};  // final destination; broadcast for floods
  std::uint8_t ttl{32};
  Payload payload;

  template <typename T>
  [[nodiscard]] bool is() const {
    return std::holds_alternative<T>(payload);
  }
  template <typename T>
  [[nodiscard]] const T* get_if() const {
    return std::get_if<T>(&payload);
  }
  template <typename T>
  [[nodiscard]] T* get_if() {
    return std::get_if<T>(&payload);
  }

  // Bytes this packet would occupy on the air (IP header + payload);
  // drives MAC airtime and therefore congestion behaviour.
  [[nodiscard]] std::uint32_t wire_bytes() const;
};

// Helper for exhaustive std::visit over Payload.
template <class... Ts>
struct overloaded : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
overloaded(Ts...) -> overloaded<Ts...>;

}  // namespace ag::net

#endif  // AG_NET_PACKET_H
