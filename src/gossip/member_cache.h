// The member cache (paper section 4.3): a bounded buffer of
// (node_addr, numhops, last_gossip) tuples learned for free from protocol
// traffic. Eviction follows the paper exactly: prefer evicting a member
// farther away than the newcomer; otherwise replace the member gossiped
// with most recently (avoids repeatedly gossiping with the same members).
#ifndef AG_GOSSIP_MEMBER_CACHE_H
#define AG_GOSSIP_MEMBER_CACHE_H

#include <cstdint>
#include <vector>

#include "net/ids.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace ag::gossip {

class MemberCache {
 public:
  explicit MemberCache(std::size_t capacity) : capacity_{capacity} {}

  struct Entry {
    net::NodeId node;
    std::uint16_t numhops{0};
    sim::SimTime last_gossip;
    sim::SimTime last_seen;  // latest traffic evidence (expiry under churn)
  };

  // Records that traffic from `member` was seen `numhops` away (0 hops =
  // distance unknown; keeps a previous estimate if present).
  void observe(net::NodeId member, std::uint16_t numhops, sim::SimTime now);

  // Stamps the time of an initiated gossip with `member`.
  void note_gossiped(net::NodeId member, sim::SimTime now);

  // Drops entries with no traffic evidence since `cutoff` — how departed
  // or crashed members age out under churn. Returns the number removed.
  std::size_t expire_older_than(sim::SimTime cutoff);

  // Uniformly random cached member; invalid() when empty.
  [[nodiscard]] net::NodeId pick_random(sim::Rng& rng) const;

  [[nodiscard]] bool contains(net::NodeId member) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

 private:
  [[nodiscard]] Entry* find(net::NodeId member);

  std::size_t capacity_;
  std::vector<Entry> entries_;
};

}  // namespace ag::gossip

#endif  // AG_GOSSIP_MEMBER_CACHE_H
