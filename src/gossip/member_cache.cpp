#include "gossip/member_cache.h"

#include <algorithm>

namespace ag::gossip {

MemberCache::Entry* MemberCache::find(net::NodeId member) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.node == member; });
  return it == entries_.end() ? nullptr : &*it;
}

bool MemberCache::contains(net::NodeId member) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) { return e.node == member; });
}

void MemberCache::observe(net::NodeId member, std::uint16_t numhops, sim::SimTime now) {
  if (Entry* e = find(member)) {
    if (numhops > 0) e->numhops = numhops;
    e->last_seen = now;
    return;
  }
  const std::uint16_t hops = numhops > 0 ? numhops : std::uint16_t{0xFFFF};
  if (entries_.size() < capacity_) {
    entries_.push_back(Entry{member, hops, sim::SimTime::zero(), now});
    return;
  }
  // Paper's rule: delete a member with greater numhops; if none, replace
  // the entry with the most recent last_gossip.
  auto farthest = std::max_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.numhops < b.numhops; });
  if (farthest != entries_.end() && farthest->numhops > hops) {
    *farthest = Entry{member, hops, sim::SimTime::zero(), now};
    return;
  }
  auto most_recent = std::max_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.last_gossip < b.last_gossip; });
  *most_recent = Entry{member, hops, sim::SimTime::zero(), now};
}

std::size_t MemberCache::expire_older_than(sim::SimTime cutoff) {
  const std::size_t before = entries_.size();
  std::erase_if(entries_, [&](const Entry& e) { return e.last_seen < cutoff; });
  return before - entries_.size();
}

void MemberCache::note_gossiped(net::NodeId member, sim::SimTime now) {
  if (Entry* e = find(member)) e->last_gossip = now;
}

net::NodeId MemberCache::pick_random(sim::Rng& rng) const {
  if (entries_.empty()) return net::NodeId::invalid();
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(entries_.size()) - 1));
  return entries_[idx].node;
}

}  // namespace ag::gossip
