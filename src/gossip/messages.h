// Anonymous Gossip wire messages (paper section 4.1 and 4.4).
#ifndef AG_GOSSIP_MESSAGES_H
#define AG_GOSSIP_MESSAGES_H

#include <cstdint>
#include <vector>

#include "net/data.h"
#include "net/ids.h"

namespace ag::gossip {

// Next message the initiator expects from one sender; anything older that
// is not in the lost buffer has been received.
struct SenderExpectation {
  net::NodeId sender;
  std::uint32_t expected_seq{0};
};

// The gossip message of section 4.1: group address, source address, lost
// buffer, number lost (the vector's size) and expected sequence numbers.
// `hops_walked` counts random-walk steps (tree propagation) and doubles as
// the distance estimate stored in the acceptor's member cache.
struct GossipMsg {
  net::GroupId group;
  net::NodeId initiator;
  std::vector<net::MsgId> lost;  // bounded by GossipParams::max_lost_in_message
  std::vector<SenderExpectation> expected;
  // Push / push-pull modes only: recent messages shipped proactively
  // (empty under the paper's pull protocol).
  std::vector<net::MulticastData> pushed;
  std::uint8_t hops_walked{0};
  bool cached{false};  // true: unicast straight to a cached member (section 4.3)
  bool pull{true};     // false: pure push round — acceptor must not answer
};

// Pull-mode reply (section 4.4): one recovered data message, unicast back
// to the gossip initiator.
struct GossipReplyMsg {
  net::GroupId group;
  net::NodeId responder;
  net::MulticastData data;
};

// Nearest-member MODIFY message (section 4.2): advertises, to one tree
// neighbor, the distance from the sender to the nearest group member
// reachable away from that neighbor.
struct NearestMemberMsg {
  net::GroupId group;
  std::uint16_t distance_hops{0};
};

}  // namespace ag::gossip

#endif  // AG_GOSSIP_MESSAGES_H
