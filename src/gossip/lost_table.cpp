#include "gossip/lost_table.h"

#include <algorithm>

namespace ag::gossip {

ReceiveOutcome LostTable::on_data(const net::MsgId& id) {
  std::uint32_t& expected = expected_[id.origin];
  if (id.seq == expected) {
    expected = id.seq + 1;
    return ReceiveOutcome::in_order;
  }
  if (id.seq > expected) {
    for (std::uint32_t s = expected; s < id.seq; ++s) {
      add_lost(net::MsgId{id.origin, s});
    }
    expected = id.seq + 1;
    return ReceiveOutcome::created_holes;
  }
  // Older than expected: either a recovery or a duplicate.
  if (lost_.erase(id) > 0) {
    // Lazy removal from insertion_order_ happens in most_recent().
    return ReceiveOutcome::recovered;
  }
  return ReceiveOutcome::duplicate;
}

void LostTable::add_lost(const net::MsgId& id) {
  if (!lost_.insert(id).second) return;
  insertion_order_.push_back(id);
  while (lost_.size() > capacity_) {
    // Drop the oldest hole: with a full table the node gives up on the
    // most stale losses first (bounded memory, paper's table size 200).
    while (!insertion_order_.empty() && !lost_.contains(insertion_order_.front())) {
      insertion_order_.pop_front();
    }
    if (insertion_order_.empty()) break;
    lost_.erase(insertion_order_.front());
    insertion_order_.pop_front();
    ++abandoned_;
  }
}

std::vector<net::MsgId> LostTable::most_recent(std::size_t max_count) const {
  std::vector<net::MsgId> out;
  out.reserve(std::min(max_count, lost_.size()));
  for (auto it = insertion_order_.rbegin();
       it != insertion_order_.rend() && out.size() < max_count; ++it) {
    if (lost_.contains(*it)) out.push_back(*it);
  }
  return out;
}

std::vector<SenderExpectation> LostTable::expectations() const {
  std::vector<SenderExpectation> out;
  out.reserve(expected_.size());
  for (const auto& [sender, seq] : expected_) out.push_back({sender, seq});
  return out;
}

std::uint32_t LostTable::expected_for(net::NodeId sender) const {
  auto it = expected_.find(sender);
  return it == expected_.end() ? 0 : it->second;
}

}  // namespace ag::gossip
