#include "gossip/lost_table.h"

#include <algorithm>

namespace ag::gossip {

ReceiveOutcome LostTable::on_data(const net::MsgId& id) {
  std::uint32_t& expected = expected_[id.origin];
  if (id.seq == expected) {
    expected = id.seq + 1;
    return ReceiveOutcome::in_order;
  }
  if (id.seq > expected) {
    for (std::uint32_t s = expected; s < id.seq; ++s) {
      add_lost(net::MsgId{id.origin, s});
    }
    expected = id.seq + 1;
    return ReceiveOutcome::created_holes;
  }
  // Older than expected: either a recovery or a duplicate.
  if (lost_.erase(net::msg_key(id))) {
    // Lazy removal from insertion_order_ happens in most_recent().
    return ReceiveOutcome::recovered;
  }
  return ReceiveOutcome::duplicate;
}

void LostTable::add_lost(const net::MsgId& id) {
  if (!lost_.insert(net::msg_key(id))) return;
  insertion_order_.push_back(id);
  while (lost_.size() > capacity_) {
    // Drop the oldest hole: with a full table the node gives up on the
    // most stale losses first (bounded memory, paper's table size 200).
    while (!insertion_order_.empty() &&
           !lost_.contains(net::msg_key(insertion_order_.front()))) {
      insertion_order_.pop_front();
    }
    if (insertion_order_.empty()) break;
    lost_.erase(net::msg_key(insertion_order_.front()));
    insertion_order_.pop_front();
    ++abandoned_;
  }
}

std::vector<net::MsgId> LostTable::most_recent(std::size_t max_count) const {
  std::vector<net::MsgId> out;
  out.reserve(std::min(max_count, lost_.size()));
  for (auto it = insertion_order_.rbegin();
       it != insertion_order_.rend() && out.size() < max_count; ++it) {
    if (lost_.contains(net::msg_key(*it))) out.push_back(*it);
  }
  return out;
}

std::vector<SenderExpectation> LostTable::expectations() const {
  std::vector<SenderExpectation> out;
  out.reserve(expected_.size());
  expected_.for_each([&](net::NodeId sender, const std::uint32_t& seq) {
    out.push_back({sender, seq});
  });
  return out;
}

std::uint32_t LostTable::expected_for(net::NodeId sender) const {
  const std::uint32_t* seq = expected_.find(sender);
  return seq == nullptr ? 0 : *seq;
}

}  // namespace ag::gossip
