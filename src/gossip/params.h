// Anonymous Gossip parameters. Paper-pinned values (section 5.1): one
// gossip message per second per member, at most 10 requested losses per
// message, member cache of 10, lost table of 200, history of 100. Values
// the paper leaves open (p_anon, p_accept, locality weighting) are
// explicit knobs here and are swept by the ablation benches.
#ifndef AG_GOSSIP_PARAMS_H
#define AG_GOSSIP_PARAMS_H

#include <cstddef>
#include <cstdint>

#include "sim/time.h"

namespace ag::gossip {

// Direction of information exchange (paper section 4.4, citing Demers et
// al.): the paper implements pull; push and push-pull are provided for
// the design-space ablation.
enum class ExchangeMode : std::uint8_t {
  pull,       // the paper's protocol: request losses, partner answers
  push,       // proactively ship recent history to the partner
  push_pull,  // both in one message
};

struct GossipParams {
  ExchangeMode exchange_mode{ExchangeMode::pull};
  // Most-recent history entries shipped per round in push modes.
  std::size_t push_budget{3};
  bool enabled{true};
  sim::Duration round_interval{sim::Duration::ms(1000)};
  sim::Duration round_jitter{sim::Duration::ms(200)};
  // Probability of an anonymous walk per round; otherwise cached gossip
  // (section 4.3). Falls back to the other mode when the chosen one has
  // no usable target.
  double p_anon{0.5};
  // Probability that a member hit by a walk accepts rather than
  // propagates (section 4.1: "randomly decides").
  double p_accept{0.5};
  std::size_t max_lost_in_message{10};
  std::size_t member_cache_size{10};
  // Age out member-cache entries not confirmed by traffic for this long —
  // how peers forget departed/crashed members under churn. zero() (the
  // default, and the paper's static-membership setting) disables aging.
  sim::Duration member_cache_ttl{sim::Duration::zero()};
  std::size_t lost_table_capacity{200};
  std::size_t history_capacity{100};
  // Safety bound on walk length; tree propagation already terminates at
  // leaves, this guards against transient loops mid-repair.
  std::uint8_t walk_ttl{16};
  // Locality bias (section 4.2): next hop chosen with weight
  // 1 / nearest_member^alpha. alpha = 0 disables the bias (ablation).
  double locality_alpha{2.0};
  bool locality_bias{true};
  // Nearest-member soft-state refresh, in gossip rounds (edge activation
  // is not atomic, so a MODIFY can be lost; refresh repairs the gradient).
  std::uint32_t nm_refresh_rounds{5};
  // Replies per handled gossip request (lost buffer answers plus
  // beyond-expected pushes share this budget).
  std::size_t reply_budget{10};
  sim::Duration reply_spacing{sim::Duration::ms(5)};
};

}  // namespace ag::gossip

#endif  // AG_GOSSIP_PARAMS_H
