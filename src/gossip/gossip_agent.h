// The Anonymous Gossip agent (paper section 4): runs the periodic gossip
// rounds at members, propagates anonymous walks at tree routers, answers
// pull requests from the history table, and recovers losses from gossip
// replies. Sits between the application and any multicast routing
// protocol implementing gossip::RoutingAdapter.
#ifndef AG_GOSSIP_GOSSIP_AGENT_H
#define AG_GOSSIP_GOSSIP_AGENT_H

#include <cstdint>
#include <functional>
#include <memory>

#include "gossip/history_table.h"
#include "gossip/lost_table.h"
#include "gossip/member_cache.h"
#include "gossip/messages.h"
#include "gossip/nearest_member.h"
#include "gossip/params.h"
#include "gossip/routing_adapter.h"
#include "net/node_table.h"
#include "sim/rng.h"
#include "sim/timer.h"

namespace ag::gossip {

class GossipAgent final : public RouterObserver {
 public:
  GossipAgent(sim::Simulator& sim, RoutingAdapter& adapter, GossipParams params,
              sim::Rng rng);

  // Application-facing delivery of unique data messages (both the normal
  // multicast path and gossip recoveries), in arrival order.
  using DeliverFn = std::function<void(const net::MulticastData&, bool via_gossip)>;
  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  // Starts the periodic gossip rounds (no-op when params.enabled is
  // false — the agent still tracks delivery for accounting).
  void start();

  // Crash support (FaultInjector, wipe policy): stops the rounds and
  // drops every group's tables and the nearest-member gradient. Counters
  // survive — they are cumulative run statistics. start() resumes.
  void reset();

  struct Counters {
    std::uint64_t delivered_unique{0};
    std::uint64_t delivered_via_gossip{0};
    std::uint64_t duplicates{0};
    std::uint64_t rounds{0};
    std::uint64_t walks_initiated{0};
    std::uint64_t cached_initiated{0};
    std::uint64_t walks_forwarded{0};
    std::uint64_t walks_accepted{0};
    std::uint64_t walks_dropped{0};
    std::uint64_t requests_handled{0};
    std::uint64_t replies_sent{0};
    std::uint64_t replies_received{0};
    std::uint64_t replies_useful{0};  // non-duplicate payloads (goodput)
    std::uint64_t nm_updates_sent{0};
  };
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] const GossipParams& params() const { return params_; }

  // Inspection hooks for tests and stats.
  [[nodiscard]] const LostTable* lost_table(net::GroupId group) const;
  [[nodiscard]] const HistoryTable* history(net::GroupId group) const;
  [[nodiscard]] const MemberCache* member_cache(net::GroupId group) const;
  [[nodiscard]] const NearestMemberTracker& nearest_member() const { return nm_; }

  // RouterObserver:
  void on_multicast_data(const net::MulticastData& data, net::NodeId from) override;
  void on_tree_neighbor_added(net::GroupId group, net::NodeId neighbor,
                              std::uint16_t member_distance_hint) override;
  void on_tree_neighbor_removed(net::GroupId group, net::NodeId neighbor) override;
  void on_self_membership_changed(net::GroupId group, bool member) override;
  void on_member_learned(net::GroupId group, net::NodeId member,
                         std::uint8_t hops) override;
  void on_gossip_packet(const net::Packet& packet, net::NodeId from) override;

 private:
  struct GroupState {
    LostTable lost;
    HistoryTable history;
    MemberCache cache;
    GroupState(const GossipParams& p)
        : lost{p.lost_table_capacity},
          history{p.history_capacity},
          cache{p.member_cache_size} {}
  };

  GroupState& state_for(net::GroupId group);
  void run_round();
  void gossip_once(net::GroupId group, GroupState& gs);
  [[nodiscard]] GossipMsg build_message(net::GroupId group, GroupState& gs) const;
  void start_anonymous_walk(net::GroupId group, GossipMsg msg);
  void handle_walk(const GossipMsg& msg, net::NodeId from);
  void forward_walk(const GossipMsg& msg, net::NodeId from);
  void handle_request(const GossipMsg& msg);
  void handle_reply(const GossipReplyMsg& reply);
  void accept_data(net::GroupId group, const net::MulticastData& data, bool via_gossip);
  // Weighted next-hop choice (excluding `exclude`); invalid() when empty.
  [[nodiscard]] net::NodeId choose_hop(net::GroupId group,
                                       net::NodeId exclude) ;

  sim::Simulator& sim_;
  RoutingAdapter& adapter_;
  GossipParams params_;
  sim::Rng rng_;
  DeliverFn deliver_;
  NearestMemberTracker nm_;
  // unique_ptr indirection keeps GroupState (and pointers into its
  // tables) stable across table growth.
  net::NodeTable<std::unique_ptr<GroupState>, net::GroupId> groups_;
  sim::PeriodicTimer round_timer_;
  std::uint32_t rounds_since_nm_refresh_{0};
  Counters counters_;
};

}  // namespace ag::gossip

#endif  // AG_GOSSIP_GOSSIP_AGENT_H
