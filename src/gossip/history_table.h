// The history table (paper section 4.4): a bounded FIFO of the most
// recently received data messages, indexed for O(1) lookup so gossip
// requests can be answered from it.
#ifndef AG_GOSSIP_HISTORY_TABLE_H
#define AG_GOSSIP_HISTORY_TABLE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "net/data.h"
#include "net/dense_map.h"

namespace ag::gossip {

class HistoryTable {
 public:
  explicit HistoryTable(std::size_t capacity) : capacity_{capacity} {}

  // Stores a copy; evicts the oldest entry when full. Duplicate ids are
  // ignored (first copy wins).
  void push(const net::MulticastData& data);

  [[nodiscard]] const net::MulticastData* find(const net::MsgId& id) const;
  [[nodiscard]] bool contains(const net::MsgId& id) const { return find(id) != nullptr; }

  // Messages from `origin` with seq >= from_seq, oldest first, at most
  // `max_count` — serves the "beyond expected" half of a pull request.
  [[nodiscard]] std::vector<net::MulticastData> collect_from(net::NodeId origin,
                                                             std::uint32_t from_seq,
                                                             std::size_t max_count) const;

  // The `max_count` most recently received messages (newest first) —
  // the payload of a push-mode gossip round.
  [[nodiscard]] std::vector<net::MulticastData> recent(std::size_t max_count) const;

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<net::MsgId> order_;  // front = oldest
  net::DenseMap<net::MulticastData> by_id_;  // keyed net::msg_key
};

}  // namespace ag::gossip

#endif  // AG_GOSSIP_HISTORY_TABLE_H
