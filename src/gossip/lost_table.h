// The lost table (paper section 4.4): per-sender expected sequence numbers
// plus the set of sequence numbers this node believes it is missing. An
// entry appears whenever a message arrives with a sequence number beyond
// the expected one; it disappears when the hole is filled (recovery).
#ifndef AG_GOSSIP_LOST_TABLE_H
#define AG_GOSSIP_LOST_TABLE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "gossip/messages.h"
#include "net/data.h"
#include "net/dense_map.h"
#include "net/node_table.h"

namespace ag::gossip {

enum class ReceiveOutcome : std::uint8_t {
  in_order,      // exactly the expected sequence number
  created_holes, // ahead of expected; the gap was recorded as lost
  recovered,     // filled a recorded hole
  duplicate,     // already received (or hole long since abandoned)
};

class LostTable {
 public:
  explicit LostTable(std::size_t capacity) : capacity_{capacity} {}

  // Classifies an arriving message and updates expected/lost bookkeeping.
  ReceiveOutcome on_data(const net::MsgId& id);

  [[nodiscard]] bool contains(const net::MsgId& id) const {
    return lost_.contains(net::msg_key(id));
  }
  [[nodiscard]] std::size_t size() const { return lost_.size(); }
  // Holes evicted because the table overflowed (never recoverable again).
  [[nodiscard]] std::uint64_t abandoned() const { return abandoned_; }

  // The most recent `max_count` losses — the paper places "the most recent
  // entries of the lost table" into the gossip message's lost buffer.
  [[nodiscard]] std::vector<net::MsgId> most_recent(std::size_t max_count) const;

  // Expected sequence number per known sender, in ascending sender order.
  [[nodiscard]] std::vector<SenderExpectation> expectations() const;
  [[nodiscard]] std::uint32_t expected_for(net::NodeId sender) const;

 private:
  void add_lost(const net::MsgId& id);

  std::size_t capacity_;
  net::NodeTable<std::uint32_t> expected_;
  net::DenseSet lost_;  // keyed net::msg_key
  std::deque<net::MsgId> insertion_order_;  // front = oldest
  std::uint64_t abandoned_{0};
};

}  // namespace ag::gossip

#endif  // AG_GOSSIP_LOST_TABLE_H
