// The nearest-member gradient (paper section 4.2): every tree router
// keeps, per activated next hop, the distance to the nearest group member
// reachable through that hop. Values propagate as small MODIFY messages
// only when they change, exactly as described in the paper (D with next
// hops {B, C, E} and values {b, c, e} advertises 1 + min(c, e) to B, etc.;
// a member advertises 1 to everyone).
#ifndef AG_GOSSIP_NEAREST_MEMBER_H
#define AG_GOSSIP_NEAREST_MEMBER_H

#include <cstdint>
#include <functional>

#include "net/ids.h"
#include "net/node_table.h"

namespace ag::gossip {

class NearestMemberTracker {
 public:
  static constexpr std::uint16_t kInfinity = 0xFFFF;

  // Sink for outgoing MODIFY messages: (group, neighbor, value).
  using SendFn = std::function<void(net::GroupId, net::NodeId, std::uint16_t)>;
  explicit NearestMemberTracker(SendFn send) : send_{std::move(send)} {}

  // Tree/membership events (driven by the RouterObserver callbacks).
  // `member_distance_hint` of 1 means the neighbor is known to be a member.
  void on_neighbor_added(net::GroupId group, net::NodeId neighbor,
                         std::uint16_t member_distance_hint);
  void on_neighbor_removed(net::GroupId group, net::NodeId neighbor);
  void on_self_membership(net::GroupId group, bool member);
  // MODIFY message received from a tree neighbor.
  void on_update_received(net::GroupId group, net::NodeId from, std::uint16_t value);

  // Distance to the nearest member through `neighbor` (kInfinity unknown).
  [[nodiscard]] std::uint16_t value_for(net::GroupId group, net::NodeId neighbor) const;
  // What this node would advertise to `exclude` right now.
  [[nodiscard]] std::uint16_t advertised_to(net::GroupId group, net::NodeId exclude) const;

  // Crash support: forget every group's gradient (state wipe on reboot).
  void clear() { groups_.clear(); }

  // Soft-state refresh: re-advertises current values to every neighbor,
  // bypassing change suppression. A MODIFY can be lost forever when it is
  // sent before the far side has activated the edge (tree activation is
  // not atomic across a link), so the gossip agent calls this every few
  // rounds.
  void republish_all();

 private:
  struct GroupState {
    bool self_member{false};
    net::NodeTable<std::uint16_t> values;          // per next hop
    net::NodeTable<std::uint16_t> last_advertised;  // change suppression
  };

  // Re-derives advertised values for every neighbor of `group` (ascending
  // node order) and sends MODIFY messages for those that changed.
  void publish(net::GroupId group);

  SendFn send_;
  net::NodeTable<GroupState, net::GroupId> groups_;
};

}  // namespace ag::gossip

#endif  // AG_GOSSIP_NEAREST_MEMBER_H
